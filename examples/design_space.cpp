// Design-space exploration: the trade-off a designer adopting the scheme
// actually navigates — PPA budget versus attack resilience, across split
// layers. Produces a frontier table for one benchmark.
//
// Run:  ./design_space [--bench=c2670] [--seed=1]
#include "attack/proximity.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/generator.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace sm;
  const util::Args args(argc, argv);
  const std::string bench = args.get("bench", "c2670");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  netlist::CellLibrary lib{6};
  const auto nl =
      workloads::generate(lib, workloads::iscas85_profile(bench), seed);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  flow.seed = seed;
  const auto original = core::layout_original(nl, flow);
  std::printf("%s baseline: power %.1f uW, delay %.0f ps\n\n", bench.c_str(),
              original.ppa.total_power_uw(), original.ppa.critical_path_ps);

  util::Table table({"PPA budget", "Swaps", "dPower", "dDelay",
                     "CCR(prot) M3", "CCR(prot) M5", "OER", "HD"});
  for (const double budget : {5.0, 10.0, 20.0, 40.0}) {
    core::RandomizeOptions r;
    r.seed = seed;
    r.max_swaps = std::max<std::size_t>(4, nl.num_gates() / 80);
    const auto design =
        core::protect_with_budget(nl, r, flow, original.ppa, budget, 4);

    auto attack_at = [&](int split) {
      const auto view = core::split_layout(
          design.erroneous, design.layout.placement, design.layout.routing,
          design.layout.tasks, design.layout.num_net_tasks, split);
      attack::ProximityOptions a;
      a.eval_patterns = 20000;
      return attack::proximity_attack(design.erroneous, nl,
                                      design.layout.placement, view,
                                      &design.ledger, a);
    };
    const auto at3 = attack_at(3);
    const auto at5 = attack_at(5);

    table.add_row(
        {util::Table::pct(budget, 0), std::to_string(design.ledger.entries.size()),
         util::Table::pct(util::pct_delta(original.ppa.total_power_uw(),
                                          design.layout.ppa.total_power_uw()),
                          1),
         util::Table::pct(
             util::pct_delta(original.ppa.critical_path_ps,
                             design.layout.ppa.critical_path_ps),
             1),
         util::Table::pct(100 * at3.ccr_protected(), 1),
         util::Table::pct(100 * at5.ccr_protected(), 1),
         util::Table::pct(100 * at3.rates.oer, 1),
         util::Table::pct(100 * at3.rates.hd, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading the frontier: larger budgets permit more swaps, which push\n"
      "the attacker's CCR on randomized connections toward zero while OER\n"
      "stays ~100%% — security is bought with (bounded) power/delay.\n");
  return 0;
}
