// Industrial-scale scenario: a superblue clone through the full flow with
// correction pins in M8 (the paper's large-benchmark configuration), then
// both attacks — crouting on the routing view and the network-flow attack
// on the netlist view — plus the Fig. 5-style per-layer wirelength profile.
//
// Run:  ./superblue_flow [--bench=superblue18] [--scale=0.01]
#include "attack/crouting.hpp"
#include "attack/proximity.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "metrics/report.hpp"
#include "util/args.hpp"
#include "workloads/generator.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace sm;
  const util::Args args(argc, argv);
  const std::string bench = args.get("bench", "superblue18");
  const double scale = args.get_double("scale", 0.01);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const auto spec = workloads::superblue_profile(bench, scale);
  netlist::CellLibrary lib{8};  // correction pins in M8
  const auto nl = workloads::generate(lib, spec, seed);
  std::printf("%s clone at scale %.3f: %zu gates (%.0f%% published size)\n",
              bench.c_str(), scale, nl.num_gates(), 100 * scale);

  core::FlowOptions flow;
  flow.lift_layer = 8;
  flow.placer.target_utilization = spec.utilization * 0.5;
  flow.seed = seed;

  const auto original = core::layout_original(nl, flow);
  core::RandomizeOptions rand_opts;
  rand_opts.seed = seed;
  const auto design = core::protect(nl, rand_opts, flow);
  std::printf("protected: %zu swaps, OER %.1f%%, restoration %s\n",
              design.ledger.entries.size(), 100 * design.oer,
              design.restored_ok ? "ok" : "FAILED");

  // Fig. 5-style layer profile of the randomized nets.
  const auto nets = design.ledger.protected_nets();
  auto profile = [&](const char* label, const route::RoutingResult& routing) {
    const auto share =
        metrics::layer_shares(metrics::per_layer_wirelength(routing, nets));
    std::printf("%-9s wirelength by layer:", label);
    for (int l = 1; l <= 10; ++l)
      std::printf(" M%d=%.0f%%", l, share[static_cast<std::size_t>(l)]);
    std::printf("\n");
  };
  profile("original", original.routing);
  profile("proposed", design.layout.routing);

  // crouting attack (routing-centric, Table 3 metrics), split after M4.
  for (const bool protected_run : {false, true}) {
    const auto& lay = protected_run ? design.layout : original;
    const auto& net_view = protected_run ? design.erroneous : nl;
    const auto view = core::split_layout(net_view, lay.placement, lay.routing,
                                         lay.tasks, lay.num_net_tasks, 4);
    const auto cr = attack::crouting_attack(view);
    std::printf("crouting on %s: %zu vpins, E[LS]@15/30/45 = %.1f/%.1f/%.1f\n",
                protected_run ? "proposed" : "original", cr.num_vpins,
                cr.candidate_list_size[0], cr.candidate_list_size[1],
                cr.candidate_list_size[2]);
  }

  // Network-flow attack on the protected FEOL.
  const auto view = core::split_layout(
      design.erroneous, design.layout.placement, design.layout.routing,
      design.layout.tasks, design.layout.num_net_tasks, 4);
  attack::ProximityOptions popts;
  popts.eval_patterns = 50000;
  const auto res = attack::proximity_attack(
      design.erroneous, nl, design.layout.placement, view, &design.ledger,
      popts);
  std::printf("network-flow attack: CCR(randomized) %.1f%%, OER %.1f%%, "
              "HD %.1f%%\n",
              100 * res.ccr_protected(), 100 * res.rates.oer,
              100 * res.rates.hd);
  return 0;
}
