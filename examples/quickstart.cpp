// Quickstart: the whole pipeline on one small benchmark, in ~60 lines.
//
//   1. generate an ISCAS-85-like netlist,
//   2. protect it (randomize + correction cells + lifting + BEOL restore),
//   3. attack the FEOL with the network-flow proximity attack,
//   4. print the security metrics the paper reports (CCR / OER / HD).
//
// Run:  ./quickstart [--bench=c880] [--seed=1]
#include "attack/proximity.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "util/args.hpp"
#include "workloads/generator.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace sm;
  const util::Args args(argc, argv);
  const std::string bench = args.get("bench", "c880");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // A Nangate-45-like library with correction-cell pins in M6.
  netlist::CellLibrary lib{6};
  const auto nl =
      workloads::generate(lib, workloads::iscas85_profile(bench), seed);
  std::printf("%s-like netlist: %zu gates, %zu nets, %zu PIs, %zu POs\n",
              bench.c_str(), nl.num_gates(), nl.num_nets(),
              nl.primary_inputs().size(), nl.primary_outputs().size());

  // Protect: randomize until OER ~ 100%, place & route the erroneous
  // netlist, embed correction cells, lift, restore through the BEOL.
  core::FlowOptions flow;
  flow.lift_layer = 6;
  flow.placer.target_utilization = 0.45;
  core::RandomizeOptions rand_opts;
  rand_opts.seed = seed;
  const auto design = core::protect(nl, rand_opts, flow);
  std::printf(
      "protected: %zu swaps, erroneous-netlist OER %.1f%% / HD %.1f%%, "
      "restoration %s\n",
      design.ledger.entries.size(), 100 * design.oer, 100 * design.hd,
      design.restored_ok ? "EQUIVALENT to original" : "FAILED");

  // Attack the FEOL (split after M4) with every published hint enabled.
  const auto view = core::split_layout(
      design.erroneous, design.layout.placement, design.layout.routing,
      design.layout.tasks, design.layout.num_net_tasks, /*split=*/4);
  const auto res = attack::proximity_attack(
      design.erroneous, nl, design.layout.placement, view, &design.ledger);
  std::printf("attack on protected FEOL: CCR(randomized nets) %.1f%%, "
              "OER %.1f%%, HD %.1f%%\n",
              100 * res.ccr_protected(), 100 * res.rates.oer,
              100 * res.rates.hd);

  // Reference point: the same attack on the unprotected layout.
  const auto original = core::layout_original(nl, flow);
  const auto v0 =
      core::split_layout(nl, original.placement, original.routing,
                         original.tasks, original.num_net_tasks, 4);
  const auto r0 =
      attack::proximity_attack(nl, nl, original.placement, v0, nullptr);
  std::printf("attack on original layout:  CCR %.1f%%, OER %.1f%%, HD %.1f%%\n",
              100 * r0.ccr(), 100 * r0.rates.oer, 100 * r0.rates.hd);

  std::printf("PPA: power %.1f -> %.1f uW, delay %.0f -> %.0f ps, "
              "die area unchanged (%.0f um^2)\n",
              original.ppa.total_power_uw(), design.layout.ppa.total_power_uw(),
              original.ppa.critical_path_ps, design.layout.ppa.critical_path_ps,
              design.layout.ppa.die_area_um2);
  return 0;
}
