// ISCAS-85 protection walkthrough with the paper's PPA budget loop, plus
// artifact export: the erroneous netlist as structural Verilog and the
// protected layout as (full and FEOL-split) DEF — the files the paper
// releases to the community.
//
// Run:  ./iscas_protection [--bench=c1908] [--budget=20] [--outdir=/tmp]
#include "core/defio.hpp"
#include "core/libgen.hpp"
#include "core/protect.hpp"
#include "netlist/verilog.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "workloads/generator.hpp"

#include <cstdio>
#include <fstream>

int main(int argc, char** argv) {
  using namespace sm;
  const util::Args args(argc, argv);
  const std::string bench = args.get("bench", "c1908");
  const double budget = args.get_double("budget", 20.0);
  const std::string outdir = args.get("outdir", "/tmp");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  netlist::CellLibrary lib{6};
  const auto nl =
      workloads::generate(lib, workloads::iscas85_profile(bench), seed);

  core::FlowOptions flow;
  flow.lift_layer = 6;
  flow.placer.target_utilization = 0.45;
  flow.seed = seed;

  const auto original = core::layout_original(nl, flow);
  std::printf("original %s: power %.1f uW, delay %.0f ps, wire %.0f um\n",
              bench.c_str(), original.ppa.total_power_uw(),
              original.ppa.critical_path_ps, original.ppa.wirelength_um);

  // The Fig. 2 loop: randomize, place, route, evaluate; repeat while the
  // PPA budget (default 20% for ISCAS-85) is not expended.
  core::RandomizeOptions rand_opts;
  rand_opts.seed = seed;
  rand_opts.max_swaps = std::max<std::size_t>(8, nl.num_gates() / 40);
  const auto design =
      core::protect_with_budget(nl, rand_opts, flow, original.ppa, budget, 4);

  const double d_pow = util::pct_delta(original.ppa.total_power_uw(),
                                       design.layout.ppa.total_power_uw());
  const double d_dly = util::pct_delta(original.ppa.critical_path_ps,
                                       design.layout.ppa.critical_path_ps);
  std::printf(
      "protected within %.0f%% budget: %zu swaps, OER %.1f%%, HD %.1f%%, "
      "power +%.1f%%, delay +%.1f%%, area +0%%\n",
      budget, design.ledger.entries.size(), 100 * design.oer, 100 * design.hd,
      d_pow, d_dly);
  std::printf("netlist-level restoration check: %s\n",
              design.restored_ok ? "equivalent" : "FAILED");

  // Export artifacts.
  const std::string base = outdir + "/" + bench;
  {
    std::ofstream os(base + "_erroneous.v");
    netlist::write_verilog(design.erroneous, os);
  }
  {
    std::ofstream os(base + "_protected.def");
    core::write_def(design.erroneous, design.layout.placement,
                    design.layout.routing, design.layout.tasks, os);
  }
  {
    std::ofstream os(base + "_feol_m4.def");
    core::write_split_def(design.erroneous, design.layout.placement,
                          design.layout.routing, design.layout.tasks,
                          design.layout.num_net_tasks, 4, os);
  }
  {
    std::ofstream os(base + "_correction_cells.lib");
    core::write_correction_liberty(lib, os);
  }
  {
    std::ofstream os(base + "_correction_cells.lef");
    core::write_correction_lef(lib, os);
  }
  {
    std::ofstream os(base + "_restore.tcl");
    std::vector<std::string> instances;
    for (std::size_t i = 0; i < design.plan.cells.size(); ++i)
      instances.push_back("u_corr_" + std::to_string(i));
    core::write_restore_constraints(instances, os);
  }
  std::printf(
      "wrote %s_{erroneous.v, protected.def, feol_m4.def, "
      "correction_cells.lib, correction_cells.lef, restore.tcl}\n",
      base.c_str());
  return 0;
}
