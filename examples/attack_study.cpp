// Attack anatomy: what each published hint contributes. Runs the
// network-flow proximity attack on an original layout with hints toggled —
// loops, load capacitance, dangling-wire direction, track alignment — and
// across split layers, showing why higher splits are cheaper to attack on
// unprotected layouts yet useless against the proposed defense.
//
// Run:  ./attack_study [--bench=c1355] [--seed=3]
#include "attack/proximity.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workloads/generator.hpp"

#include <cstdio>

int main(int argc, char** argv) {
  using namespace sm;
  const util::Args args(argc, argv);
  const std::string bench = args.get("bench", "c1355");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  netlist::CellLibrary lib{6};
  const auto nl =
      workloads::generate(lib, workloads::iscas85_profile(bench), seed);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  flow.seed = seed;
  const auto layout = core::layout_original(nl, flow);

  struct Variant {
    const char* name;
    attack::ProximityOptions opts;
  };
  attack::ProximityOptions base;
  base.eval_patterns = 20000;
  std::vector<Variant> variants;
  variants.push_back({"all hints", base});
  {
    auto o = base;
    o.use_direction = false;
    variants.push_back({"no direction hint", o});
  }
  {
    auto o = base;
    o.track_bonus = 1.0;
    variants.push_back({"no track alignment", o});
  }
  {
    auto o = base;
    o.use_load = false;
    variants.push_back({"no load constraint", o});
  }
  {
    auto o = base;
    o.use_loops = false;
    variants.push_back({"no loop avoidance", o});
  }
  {
    auto o = base;
    o.candidates_per_sink = 2;
    variants.push_back({"2 candidates/sink", o});
  }

  util::Table table({"Variant", "Split", "Open sinks", "CCR", "HD"});
  for (const auto& v : variants) {
    for (const int split : {3, 4, 5}) {
      const auto view =
          core::split_layout(nl, layout.placement, layout.routing,
                             layout.tasks, layout.num_net_tasks, split);
      const auto res = attack::proximity_attack(nl, nl, layout.placement,
                                                view, nullptr, v.opts);
      table.add_row({v.name, "M" + std::to_string(split),
                     std::to_string(res.open_sinks),
                     util::Table::pct(100 * res.ccr(), 1),
                     util::Table::pct(100 * res.rates.hd, 1)});
    }
    table.add_separator();
  }
  std::fputs(table.render().c_str(), stdout);

  // The same attack against the proposed defense, for contrast.
  core::RandomizeOptions rand_opts;
  rand_opts.seed = seed;
  const auto design = core::protect(nl, rand_opts, flow);
  const auto view = core::split_layout(
      design.erroneous, design.layout.placement, design.layout.routing,
      design.layout.tasks, design.layout.num_net_tasks, 4);
  const auto res = attack::proximity_attack(
      design.erroneous, nl, design.layout.placement, view, &design.ledger,
      base);
  std::printf("\nagainst the proposed defense (all hints, split M4): "
              "CCR(randomized) %.1f%%, OER %.1f%%, HD %.1f%%\n",
              100 * res.ccr_protected(), 100 * res.rates.oer,
              100 * res.rates.hd);
  return 0;
}
