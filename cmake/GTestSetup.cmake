# Locate GoogleTest: prefer the system install (the CI images and the
# reference container bake one in); fall back to FetchContent only when no
# system copy exists, so fully offline builds keep working.
include_guard(GLOBAL)

find_package(GTest QUIET)
if(NOT GTest_FOUND)
  message(STATUS "System GTest not found; fetching googletest v1.14.0")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
  )
  # Never install googletest alongside the project, and keep gtest's own
  # warnings out of our -Werror net.
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()
