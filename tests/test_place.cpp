// Placement tests: FM partitioner behaviour, floorplan sizing, legality,
// and the key security-relevant property — connected gates end up close.
#include "place/fm.hpp"
#include "place/placer.hpp"
#include "util/stats.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace sm::place;
using sm::netlist::CellId;
using sm::netlist::CellLibrary;
using sm::netlist::NetId;
using sm::netlist::Netlist;

TEST(Fm, EmptyProblem) {
  FmProblem p;
  const auto r = fm_bipartition(p);
  EXPECT_TRUE(r.side.empty());
  EXPECT_EQ(r.cut, 0);
}

TEST(Fm, SeparatesTwoCliques) {
  // Two 6-cliques joined by one edge: min cut = 1.
  FmProblem p;
  p.weight.assign(12, 1.0);
  auto clique = [&](std::uint32_t base) {
    for (std::uint32_t i = 0; i < 6; ++i)
      for (std::uint32_t j = i + 1; j < 6; ++j)
        p.edges.push_back({base + i, base + j});
  };
  clique(0);
  clique(6);
  p.edges.push_back({0, 6});
  p.seed = 3;
  const auto r = fm_bipartition(p);
  EXPECT_EQ(r.cut, 1);
  // Each clique is entirely on one side.
  for (std::uint32_t i = 1; i < 6; ++i) EXPECT_EQ(r.side[i], r.side[0]);
  for (std::uint32_t i = 7; i < 12; ++i) EXPECT_EQ(r.side[i], r.side[6]);
  EXPECT_NE(r.side[0], r.side[6]);
}

TEST(Fm, RespectsBalance) {
  FmProblem p;
  p.weight.assign(100, 1.0);
  for (std::uint32_t i = 0; i + 1 < 100; ++i) p.edges.push_back({i, i + 1});
  p.balance_tolerance = 0.1;
  const auto r = fm_bipartition(p);
  double w0 = 0;
  for (std::uint32_t i = 0; i < 100; ++i)
    if (r.side[i] == 0) w0 += 1.0;
  EXPECT_GE(w0, 40.0);
  EXPECT_LE(w0, 60.0);
  // A chain of 99 edges has a balanced min cut of 1.
  EXPECT_LE(r.cut, 3);
}

TEST(Fm, ExternalPinsBiasAssignment) {
  // Item 0 is pulled to side 0 by 3 external pins, item 1 to side 1.
  FmProblem p;
  p.weight.assign(2, 1.0);
  p.edges.push_back({0});
  p.edges.push_back({1});
  p.ext0 = {3, 0};
  p.ext1 = {0, 3};
  p.balance_tolerance = 0.6;  // allow any split
  const auto r = fm_bipartition(p);
  EXPECT_EQ(r.cut, 0);
  EXPECT_EQ(r.side[0], 0);
  EXPECT_EQ(r.side[1], 1);
}

TEST(Fm, CutSizeCountsExternal) {
  FmProblem p;
  p.weight.assign(1, 1.0);
  p.edges.push_back({0});
  p.ext0 = {0};
  p.ext1 = {1};  // external pin on side 1
  EXPECT_EQ(fm_cut_size(p, {0}), 1);  // item on 0, external on 1 -> cut
  EXPECT_EQ(fm_cut_size(p, {1}), 0);
}

TEST(Fm, DeterministicForSeed) {
  FmProblem p;
  p.weight.assign(40, 1.0);
  sm::util::Rng rng(9);
  for (int e = 0; e < 80; ++e)
    p.edges.push_back({static_cast<std::uint32_t>(rng.below(40)),
                       static_cast<std::uint32_t>(rng.below(40))});
  p.seed = 5;
  const auto a = fm_bipartition(p);
  const auto b = fm_bipartition(p);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.cut, b.cut);
}

class PlacerTest : public ::testing::Test {
 protected:
  CellLibrary lib;
};

TEST_F(PlacerTest, FloorplanMatchesUtilization) {
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c880"), 1);
  PlacerOptions opts;
  opts.target_utilization = 0.6;
  Placer placer(opts);
  const Floorplan fp = placer.make_floorplan(nl);
  double cell_area = 0;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    cell_area += nl.type_of(id).area_um2;
  const double util = cell_area / fp.die.area();
  EXPECT_NEAR(util, 0.6, 0.05);
  EXPECT_GT(fp.num_rows, 4);
}

TEST_F(PlacerTest, AllCellsInsideDie) {
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c880"), 1);
  Placer placer;
  const Placement pl = placer.place(nl);
  ASSERT_EQ(pl.pos.size(), nl.num_cells());
  const auto die = pl.floorplan.die.inflated(1e-6);
  for (CellId id = 0; id < nl.num_cells(); ++id)
    EXPECT_TRUE(die.contains(pl.pos[id]))
        << nl.cell(id).name << " at " << pl.pos[id];
}

TEST_F(PlacerTest, RowLegality) {
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c1355"), 2);
  Placer placer;
  const Placement pl = placer.place(nl);
  // Every standard cell sits on a row center, and cells in the same row
  // do not overlap.
  struct Span { double lo, hi; };
  std::map<int, std::vector<Span>> rows;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (nl.type_of(id).cls != sm::netlist::CellClass::Standard) continue;
    const double y = pl.pos[id].y;
    const double rowf =
        (y - pl.floorplan.die.lo.y) / pl.floorplan.row_height_um - 0.5;
    const int row = static_cast<int>(std::lround(rowf));
    EXPECT_NEAR(pl.floorplan.row_y(row), y, 1e-6);
    const double w = nl.type_of(id).width_um;
    rows[row].push_back({pl.pos[id].x - w / 2, pl.pos[id].x + w / 2});
  }
  for (auto& [row, spans] : rows) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.lo < b.lo; });
    for (std::size_t i = 1; i < spans.size(); ++i)
      EXPECT_GE(spans[i].lo, spans[i - 1].hi - 1e-6) << "overlap in row " << row;
  }
}

TEST_F(PlacerTest, DeterministicPlacement) {
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c432"), 3);
  Placer placer;
  const Placement a = placer.place(nl);
  const Placement b = placer.place(nl);
  for (CellId id = 0; id < nl.num_cells(); ++id) EXPECT_EQ(a.pos[id], b.pos[id]);
}

TEST_F(PlacerTest, PlacementBeatsRandomByALot) {
  // The security premise: a real placer puts connected gates close together.
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c1908"), 4);
  Placer placer;
  Placement pl = placer.place(nl);
  const double placed = total_hpwl(nl, pl);

  // Random placement baseline on the same floorplan.
  Placement rnd = pl;
  sm::util::Rng rng(7);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (nl.type_of(id).cls != sm::netlist::CellClass::Standard) continue;
    rnd.pos[id] = {rng.uniform(rnd.floorplan.die.lo.x, rnd.floorplan.die.hi.x),
                   rng.uniform(rnd.floorplan.die.lo.y, rnd.floorplan.die.hi.y)};
  }
  const double random_hpwl = total_hpwl(nl, rnd);
  EXPECT_LT(placed, random_hpwl * 0.55)
      << "placed=" << placed << " random=" << random_hpwl;
}

TEST_F(PlacerTest, HpwlHelpers) {
  Netlist nl(lib, "h");
  const NetId a = nl.add_primary_input("a");
  const CellId g = nl.add_cell("g", lib.id_of("BUF_X1"));
  nl.connect_input(g, 0, a);
  nl.add_primary_output("y", nl.cell(g).output);
  Placement pl;
  pl.floorplan.die = {{0, 0}, {10, 10}};
  pl.pos = {{0, 0}, {3, 4}, {10, 10}};  // pi, g, po
  EXPECT_DOUBLE_EQ(net_hpwl(nl, pl, a), 7.0);
  const auto d = driver_sink_distances(nl, pl, a);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0], 7.0);
  EXPECT_GT(total_hpwl(nl, pl), 0.0);
}

TEST_F(PlacerTest, DetailedPlaceDoesNotWorsen) {
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c432"), 6);
  Placer placer;
  Placement pl = placer.place(nl);
  const double before = total_hpwl(nl, pl);
  const double after = detailed_place(nl, pl, 2, 123);
  EXPECT_LE(after, before + 1e-9);
}

}  // namespace
