// Cross-module edge cases: degenerate inputs, boundary conditions, and
// defensive-behaviour checks that the main suites do not reach.
#include "core/correction.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "netlist/topo.hpp"
#include "netlist/verilog.hpp"
#include "route/router.hpp"
#include "util/stats.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace sm;
using netlist::CellId;
using netlist::CellLibrary;
using netlist::NetId;
using netlist::Netlist;
using util::Rect;

TEST(RouterEdge, EmptyTaskListIsFine) {
  netlist::MetalStack stack;
  route::Router router;
  const auto res = router.route({}, Rect{{0, 0}, {28, 28}}, stack);
  EXPECT_TRUE(res.routes.empty());
  EXPECT_EQ(res.stats.failed_nets, 0u);
  EXPECT_DOUBLE_EQ(res.stats.total_wire_um(), 0.0);
}

TEST(RouterEdge, SingleTerminalTask) {
  netlist::MetalStack stack;
  route::RouteTask t;
  t.net = 0;
  t.terminals = {{{10, 10}, 1}};
  route::Router router;
  const auto res = router.route({t}, Rect{{0, 0}, {28, 28}}, stack);
  ASSERT_EQ(res.routes.size(), 1u);
  EXPECT_TRUE(res.routes[0].success);  // nothing to connect = success
}

TEST(RouterEdge, CoincidentTerminals) {
  netlist::MetalStack stack;
  route::RouteTask t;
  t.net = 0;
  t.terminals = {{{10, 10}, 1}, {{10.2, 10.1}, 1}, {{10.4, 10.3}, 1}};
  route::Router router;
  const auto res = router.route({t}, Rect{{0, 0}, {28, 28}}, stack);
  EXPECT_TRUE(res.routes[0].success);
  // All in one gcell: no wiring needed at all.
  EXPECT_DOUBLE_EQ(res.stats.total_wire_um(), 0.0);
}

TEST(RouterEdge, MinLayerNineUsesTopPair) {
  netlist::MetalStack stack;
  route::RouteTask t;
  t.net = 0;
  t.terminals = {{{5, 5}, 1}, {{50, 50}, 1}};
  t.min_layer = 9;  // M9 (H) + M10 (V): both directions available
  route::Router router;
  const auto res = router.route({t}, Rect{{0, 0}, {56, 56}}, stack);
  ASSERT_TRUE(res.routes[0].success);
  for (const auto& seg : res.routes[0].segments) {
    if (!seg.is_via()) {
      EXPECT_GE(seg.a.layer, 9);
    }
  }
}

TEST(RouterEdge, MinLayerTopOnlyFailsGracefully) {
  // min_layer = M10 leaves a single horizontal layer: a diagonal connection
  // cannot route. The router must report failure, not crash or loop.
  netlist::MetalStack stack;
  route::RouteTask t;
  t.net = 0;
  t.terminals = {{{5, 5}, 1}, {{50, 50}, 1}};
  t.min_layer = 10;
  route::Router router;
  const auto res = router.route({t}, Rect{{0, 0}, {56, 56}}, stack);
  EXPECT_FALSE(res.routes[0].success);
  EXPECT_EQ(res.stats.failed_nets, 1u);
}

TEST(RouterEdge, FullBlockageForcesClimb) {
  netlist::MetalStack stack;
  route::RouterOptions opts;
  // Wall across the middle of the die on M1-M6.
  opts.blockages.push_back({Rect{{25, 0}, {31, 56}}, 1, 6});
  route::RouteTask t;
  t.net = 0;
  t.terminals = {{{5, 28}, 1}, {{50, 28}, 1}};
  route::Router router(opts);
  const auto res = router.route({t}, Rect{{0, 0}, {56, 56}}, stack);
  ASSERT_TRUE(res.routes[0].success);
  // The route must use some wiring above M6 to cross the wall.
  double high = 0;
  for (const auto& seg : res.routes[0].segments)
    if (!seg.is_via() && seg.a.layer >= 7)
      high += seg.gcell_length();
  EXPECT_GT(high, 0.0);
}

TEST(CorrectionEdge, MoreCellsThanNearbySites) {
  core::CorrectionPlan plan;
  plan.pin_layer = 6;
  for (int i = 0; i < 200; ++i) {
    core::CorrectionCell c;
    c.pos = {5.0, 5.0};
    plan.cells.push_back(c);
  }
  core::legalize_corrections(plan, Rect{{0, 0}, {30, 30}}, 1.4);
  // All placed inside the die, all distinct sites.
  std::set<std::pair<long, long>> sites;
  for (const auto& c : plan.cells) {
    EXPECT_GE(c.pos.x, 0.0);
    EXPECT_LE(c.pos.x, 30.0);
    EXPECT_TRUE(sites.insert({std::lround(c.pos.x * 10),
                              std::lround(c.pos.y * 10)}).second);
  }
}

TEST(SplitEdge, SplitAboveEverythingYieldsNoOpenFragments) {
  CellLibrary lib;
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c432"), 1);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  const auto layout = core::layout_original(nl, flow);
  const auto view = core::split_layout(nl, layout.placement, layout.routing,
                                       layout.tasks, layout.num_net_tasks, 9);
  EXPECT_EQ(view.num_vpins(), 0u);
  EXPECT_TRUE(view.open_sink_fragments().empty());
}

TEST(SplitEdge, RejectsInvalidSplitLayer) {
  CellLibrary lib;
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c432"), 1);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  const auto layout = core::layout_original(nl, flow);
  EXPECT_THROW(core::split_layout(nl, layout.placement, layout.routing,
                                  layout.tasks, layout.num_net_tasks, 0),
               std::invalid_argument);
  EXPECT_THROW(core::split_layout(nl, layout.placement, layout.routing,
                                  layout.tasks, layout.num_net_tasks, 10),
               std::invalid_argument);
}

TEST(SplitEdge, DanglingDirectionsPopulatedSomewhere) {
  CellLibrary lib;
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c2670"), 2);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  const auto layout = core::layout_original(nl, flow);
  const auto view = core::split_layout(nl, layout.placement, layout.routing,
                                       layout.tasks, layout.num_net_tasks, 3);
  std::size_t with_dir = 0, total = 0;
  for (const auto& f : view.fragments)
    for (const auto& v : f.vpins) {
      ++total;
      if (v.dir_dx != 0 || v.dir_dy != 0) ++with_dir;
    }
  ASSERT_GT(total, 0u);
  // Some vpins sit atop lateral M3 wiring and carry a direction hint.
  EXPECT_GT(with_dir, 0u);
}

TEST(VerilogEdge, EscapedIdentifiers) {
  CellLibrary lib;
  Netlist nl(lib, "weird top");  // space forces escaping
  const NetId a = nl.add_primary_input("in[0]");
  const CellId g = nl.add_cell("u$1", lib.id_of("INV_X1"));
  nl.connect_input(g, 0, a);
  nl.add_primary_output("out.q", nl.cell(g).output);
  const std::string v = netlist::to_verilog(nl);
  const Netlist back = netlist::read_verilog_string(lib, v);
  EXPECT_EQ(back.num_gates(), 1u);
  EXPECT_EQ(back.primary_inputs().size(), 1u);
  EXPECT_EQ(back.primary_outputs().size(), 1u);
}

TEST(RandomizerEdge, TinyNetlistWithNoLegalSwaps) {
  CellLibrary lib;
  Netlist nl(lib, "tiny");
  const NetId a = nl.add_primary_input("a");
  const CellId g = nl.add_cell("g", lib.id_of("INV_X1"));
  nl.connect_input(g, 0, a);
  nl.add_primary_output("y", nl.cell(g).output);
  core::RandomizeOptions opts;
  opts.max_swaps = 10;
  opts.min_swaps = 1;
  // Only two candidate sinks exist (g.A and the PO); a swap between them
  // would have to avoid self-nets and loops. Whatever happens, the result
  // must stay valid and acyclic.
  const auto result = core::randomize(nl, opts);
  EXPECT_NO_THROW(result.erroneous.validate());
  EXPECT_TRUE(netlist::is_acyclic(result.erroneous));
}

TEST(StatsEdge, SingleValueSummary) {
  const auto s = util::summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsEdge, HistogramZeroSpan) {
  util::Histogram h(5.0, 5.0, 4);
  h.add(5.0);
  h.add(4.0);
  EXPECT_EQ(h.total(), 2u);  // clamped into the first bucket, no crash
}

TEST(WorkloadEdge, MinimalSpec) {
  CellLibrary lib;
  workloads::GenSpec spec;
  spec.num_pi = 1;
  spec.num_po = 1;
  spec.num_gates = 1;
  const auto nl = workloads::generate(lib, spec, 3);
  nl.validate();
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_TRUE(netlist::is_acyclic(nl));
}

}  // namespace
