// GridIndex correctness: exact k-nearest (vs a brute-force scan with the
// same (distance, index) tie-break) on randomized point sets, expanding-ring
// lower-bound soundness, and degenerate grids (empty, single point, all
// points coincident, collinear boxes, queries far outside the bbox).
#include "util/grid_index.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace {

using sm::util::GridIndex;
using sm::util::Point;
using sm::util::manhattan;

std::vector<std::size_t> brute_k_nearest(const std::vector<Point>& pts,
                                         const Point& q, std::size_t k) {
  std::vector<std::pair<double, std::size_t>> all;
  for (std::size_t i = 0; i < pts.size(); ++i)
    all.push_back({manhattan(q, pts[i]), i});
  std::sort(all.begin(), all.end());
  all.resize(std::min(k, all.size()));
  std::vector<std::size_t> out;
  for (const auto& [d, i] : all) out.push_back(i);
  return out;
}

std::vector<Point> random_points(std::size_t n, std::uint64_t seed,
                                 double lo = 0.0, double hi = 500.0) {
  sm::util::Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) p = {rng.uniform(lo, hi), rng.uniform(lo, hi)};
  return pts;
}

TEST(GridIndex, KNearestMatchesBruteForceOnRandomSets) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto pts = random_points(400, seed);
    const GridIndex index(pts);
    sm::util::Rng rng(seed ^ 0xfeedULL);
    for (int trial = 0; trial < 50; ++trial) {
      const Point q{rng.uniform(-50, 550), rng.uniform(-50, 550)};
      for (const std::size_t k : {1u, 5u, 16u, 64u}) {
        EXPECT_EQ(index.k_nearest(q, k), brute_k_nearest(pts, q, k))
            << "seed " << seed << " trial " << trial << " k " << k;
      }
    }
  }
}

TEST(GridIndex, ExactOnDuplicatePointsViaIndexTieBreak) {
  // Many coincident points: distances tie, so the (distance, index) order
  // must fall back to point indices — and must agree with brute force.
  std::vector<Point> pts(20, Point{10, 10});
  pts.push_back({11, 10});
  pts.push_back({9, 10});
  const GridIndex index(pts);
  EXPECT_EQ(index.k_nearest({10, 10}, 5), brute_k_nearest(pts, {10, 10}, 5));
  EXPECT_EQ(index.k_nearest({12, 10}, 3), brute_k_nearest(pts, {12, 10}, 3));
}

TEST(GridIndex, DegenerateGeometries) {
  // Empty.
  const GridIndex empty((std::vector<Point>()));
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.k_nearest({0, 0}, 4).empty());

  // Single point.
  const GridIndex one(std::vector<Point>{{3, 4}});
  EXPECT_EQ(one.k_nearest({0, 0}, 4), (std::vector<std::size_t>{0}));

  // Zero-area bbox: all points on one vertical line.
  std::vector<Point> line;
  for (int i = 0; i < 64; ++i) line.push_back({7.0, static_cast<double>(i)});
  const GridIndex li(line);
  EXPECT_EQ(li.k_nearest({7, 31.4}, 3), brute_k_nearest(line, {7, 31.4}, 3));
  EXPECT_EQ(li.k_nearest({100, 0}, 5), brute_k_nearest(line, {100, 0}, 5));
}

TEST(GridIndex, KLargerThanSizeReturnsEverythingSorted) {
  const auto pts = random_points(10, 9);
  const GridIndex index(pts);
  const auto all = index.k_nearest({250, 250}, 100);
  EXPECT_EQ(all, brute_k_nearest(pts, {250, 250}, 100));
  EXPECT_EQ(all.size(), pts.size());
  EXPECT_TRUE(index.k_nearest({250, 250}, 0).empty());
}

TEST(GridIndex, RingEnumerationVisitsEveryPointOnce) {
  const auto pts = random_points(257, 4);
  const GridIndex index(pts);
  std::vector<int> seen(pts.size(), 0);
  index.for_each_ring(
      {250, 250}, [&](std::size_t i) { ++seen[i]; },
      [](double) { return true; });
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(GridIndex, RingLowerBoundIsSound) {
  // Every point visited after keep_expanding(lb) returned true must lie at
  // Manhattan distance >= the lb reported before its ring — otherwise a
  // pruned query could miss a closer point.
  const auto pts = random_points(300, 12);
  const GridIndex index(pts);
  sm::util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Point q{rng.uniform(0, 500), rng.uniform(0, 500)};
    double promised = 0.0;  // strongest bound issued so far
    index.for_each_ring(
        q,
        [&](std::size_t i) {
          EXPECT_GE(manhattan(q, pts[i]), promised - 1e-9);
        },
        [&](double lb) {
          EXPECT_GE(lb, promised - 1e-9);  // bounds only tighten
          promised = lb;
          return true;
        });
  }
}

}  // namespace
