// Tests for the event-sourced sweep store substrate: canonical JSON +
// FNV hashing (util/config_hash), the minimal JSON parser (util/json),
// store record round-trips, append/load/merge semantics (torn tails,
// last-wins duplicates), cell expansion, materialization — and the golden
// config-hash pins that hold hash stability across releases.
#include "sweep/store.hpp"

#include "util/config_hash.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace {

using namespace sm;

// ---------------------------------------------------------------- util ---

TEST(ConfigHash, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(util::format_double(0.0), "0");
  EXPECT_EQ(util::format_double(50.0), "50");
  EXPECT_EQ(util::format_double(-3.0), "-3");
  EXPECT_EQ(util::format_double(0.45), "0.45");
  EXPECT_EQ(util::format_double(0.1), "0.1");
  EXPECT_EQ(util::format_double(2.8), "2.8");
  // Bit-exact round trip even for values without short decimal forms.
  const double ugly = 1.0 / 3.0;
  EXPECT_EQ(std::strtod(util::format_double(ugly).c_str(), nullptr), ugly);
  const double tiny = 1e-17;
  EXPECT_EQ(std::strtod(util::format_double(tiny).c_str(), nullptr), tiny);
}

TEST(ConfigHash, Fnv1a64GoldenValues) {
  EXPECT_EQ(util::fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(util::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(util::fnv1a64("hello world"), 0x779a65e7023cd2e7ull);
}

TEST(ConfigHash, HashIsLowercaseHexOfFnv) {
  EXPECT_EQ(util::config_hash(""), "cbf29ce484222325");
  EXPECT_EQ(util::config_hash("a"), "af63dc4c8601ec8c");
}

TEST(ConfigHash, JsonWriterProducesCanonicalBytes) {
  util::JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array();
  w.value("x").value(0.5).value(true);
  w.begin_object().key("n").value(std::uint64_t{7}).end_object();
  w.end_array();
  w.key("c").raw("{\"inner\":[]}");
  w.key("d\"e").value("quote\"back\\slash\nnewline");
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"a\":1,\"b\":[\"x\",0.5,true,{\"n\":7}],"
            "\"c\":{\"inner\":[]},"
            "\"d\\\"e\":\"quote\\\"back\\\\slash\\nnewline\"}");
}

TEST(Json, ParsesWhatTheWriterWrites) {
  util::JsonWriter w;
  w.begin_object();
  w.key("name").value("c432");
  w.key("seed").value(std::uint64_t{18446744073709551615ull});
  w.key("neg").value(std::int64_t{-42});
  w.key("pi").value(3.125);
  w.key("flag").value(false);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.end_object();

  const auto v = util::json::parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string(), "c432");
  // Full 64-bit seeds survive (a double would lose the low bits).
  EXPECT_EQ(v.at("seed").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v.at("neg").as_int(), -42);
  EXPECT_EQ(v.at("pi").as_double(), 3.125);
  EXPECT_FALSE(v.at("flag").as_bool());
  ASSERT_TRUE(v.at("list").is_array());
  EXPECT_EQ(v.at("list").array.size(), 2u);
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), std::invalid_argument);
  EXPECT_THROW(v.at("name").as_u64(), std::invalid_argument);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(util::json::parse(""), std::invalid_argument);
  EXPECT_THROW(util::json::parse("{\"a\":1"), std::invalid_argument);
  EXPECT_THROW(util::json::parse("{\"a\":1} trailing"),
               std::invalid_argument);
  EXPECT_THROW(util::json::parse("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW(util::json::parse("{\"a\":1,\"a\":2}"), std::invalid_argument);
  EXPECT_THROW(util::json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(util::json::parse("nul"), std::invalid_argument);
  EXPECT_THROW(util::json::parse("\"open"), std::invalid_argument);
}

// --------------------------------------------------------------- store ---

sweep::StoreRecord sample_record() {
  sweep::StoreRecord rec;
  rec.config_hash = "00112233aabbccdd";
  rec.row.benchmark = "c432";
  rec.row.seed = 3;
  rec.row.split_layer = 4;
  rec.row.defense = sweep::Defense::Proposed;
  rec.row.ccr = 0.0537109375;
  rec.row.ccr_protected = 1.0 / 3.0;  // no short decimal form
  rec.row.oer = 0.9619140625;
  rec.row.hd = 0.4921875;
  rec.row.open_sinks = 123;
  rec.row.swaps = 17;
  rec.row.wall_ms = 321.625;
  rec.patterns = 2000;
  rec.scale = 0.02;
  rec.config_json = "{\"format\":\"sm-sweep-cell-v1\"}";
  return rec;
}

TEST(Store, RecordLineRoundTripsBitExact) {
  const auto rec = sample_record();
  const auto line = to_store_line(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto back = sweep::parse_store_line(line);
  EXPECT_EQ(back.config_hash, rec.config_hash);
  EXPECT_EQ(back.row.benchmark, rec.row.benchmark);
  EXPECT_EQ(back.row.seed, rec.row.seed);
  EXPECT_EQ(back.row.split_layer, rec.row.split_layer);
  EXPECT_EQ(back.row.defense, rec.row.defense);
  // Bitwise equality — the resume/materialize determinism contract rests
  // on doubles surviving the log unchanged.
  EXPECT_EQ(back.row.ccr, rec.row.ccr);
  EXPECT_EQ(back.row.ccr_protected, rec.row.ccr_protected);
  EXPECT_EQ(back.row.oer, rec.row.oer);
  EXPECT_EQ(back.row.hd, rec.row.hd);
  EXPECT_EQ(back.row.open_sinks, rec.row.open_sinks);
  EXPECT_EQ(back.row.swaps, rec.row.swaps);
  EXPECT_EQ(back.row.wall_ms, rec.row.wall_ms);
  EXPECT_EQ(back.patterns, rec.patterns);
  EXPECT_EQ(back.scale, rec.scale);
}

TEST(Store, ParseRejectsTornAndMistypedLines) {
  const auto line = to_store_line(sample_record());
  EXPECT_THROW(sweep::parse_store_line(line.substr(0, line.size() / 2)),
               std::invalid_argument);
  EXPECT_THROW(sweep::parse_store_line("{}"), std::invalid_argument);
  EXPECT_THROW(sweep::parse_store_line("not json at all"),
               std::invalid_argument);
}

TEST(Store, WriterAppendsAndLoadMerges) {
  const std::string path = testing::TempDir() + "sm_store_test_basic.jsonl";
  std::remove(path.c_str());

  auto a = sample_record();
  auto b = sample_record();
  b.config_hash = "ffeeddccbbaa9988";
  b.row.split_layer = 5;
  {
    sweep::StoreWriter w(path);
    w.append(a);
    w.append(b);
  }
  {
    // Appending to an existing log must append, not truncate; the same
    // key later in the log wins (event-sourced last-wins).
    auto a2 = a;
    a2.row.wall_ms = 999.0;
    sweep::StoreWriter w(path);
    w.append(a2);
  }

  const auto store = sweep::load_store({path}, /*must_exist=*/true);
  EXPECT_EQ(store.lines, 3u);
  EXPECT_EQ(store.skipped, 0u);
  EXPECT_EQ(store.duplicates, 1u);
  ASSERT_EQ(store.records.size(), 2u);
  EXPECT_EQ(store.records.at(a.config_hash).row.wall_ms, 999.0);
  EXPECT_EQ(store.records.at(b.config_hash).row.split_layer, 5);
  std::remove(path.c_str());
}

TEST(Store, LoadSkipsTornTailAndMergesFiles) {
  const std::string p1 = testing::TempDir() + "sm_store_test_shard0.jsonl";
  const std::string p2 = testing::TempDir() + "sm_store_test_shard1.jsonl";
  std::remove(p1.c_str());
  std::remove(p2.c_str());

  auto a = sample_record();
  auto b = sample_record();
  b.config_hash = "ffeeddccbbaa9988";
  {
    std::ofstream f1(p1);
    f1 << to_store_line(a) << '\n';
    // A crash mid-append tears the final line; the cell was never
    // acknowledged, so loading must skip it and keep everything before.
    const auto torn = to_store_line(b);
    f1 << torn.substr(0, torn.size() / 3);
  }
  {
    std::ofstream f2(p2);
    f2 << to_store_line(b) << '\n';
  }

  const auto store = sweep::load_store({p1, p2}, /*must_exist=*/true);
  EXPECT_EQ(store.skipped, 1u);
  EXPECT_EQ(store.records.size(), 2u);
  EXPECT_TRUE(store.records.count(a.config_hash));
  EXPECT_TRUE(store.records.count(b.config_hash));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Store, MissingFilePolicy) {
  const std::string path = testing::TempDir() + "sm_store_test_absent.jsonl";
  std::remove(path.c_str());
  // Resume of a first run: missing log is an empty store, not an error...
  const auto store = sweep::load_store({path}, /*must_exist=*/false);
  EXPECT_TRUE(store.records.empty());
  // ...but materialize of a typo'd path must fail loudly.
  EXPECT_THROW(sweep::load_store({path}, /*must_exist=*/true),
               std::runtime_error);
}

// --------------------------------------------------------- tail reader ---

TEST(StoreReader, PollReadsOnlyAppendedBytes) {
  const std::string path = testing::TempDir() + "sm_store_test_tail.jsonl";
  std::remove(path.c_str());
  auto a = sample_record();
  auto b = sample_record();
  b.config_hash = "ffeeddccbbaa9988";

  sweep::StoreWriter w(path);
  w.append(a);
  sweep::StoreReader r(path);
  sweep::StoreContents acc;
  EXPECT_EQ(r.poll(acc), 1u);
  const auto consumed = r.offset();
  EXPECT_GT(consumed, 0u);
  // An idle poll is O(0 new bytes): nothing merged, offset unmoved.
  EXPECT_EQ(r.poll(acc), 0u);
  EXPECT_EQ(r.offset(), consumed);
  w.append(b);
  EXPECT_EQ(r.poll(acc), 1u);
  EXPECT_GT(r.offset(), consumed);
  EXPECT_EQ(acc.records.size(), 2u);
  EXPECT_EQ(acc.lines, 2u);
  EXPECT_EQ(acc.skipped, 0u);
  std::remove(path.c_str());
}

TEST(StoreReader, UnterminatedTailWaitsForItsNewline) {
  const std::string path = testing::TempDir() + "sm_store_test_inflight.jsonl";
  std::remove(path.c_str());
  auto a = sample_record();
  auto b = sample_record();
  b.config_hash = "ffeeddccbbaa9988";
  const auto line_b = to_store_line(b);

  // A record still in flight: the reader must not judge the unterminated
  // tail — the writer commits whole lines, so the newline will come.
  {
    std::ofstream f(path);
    f << to_store_line(a) << '\n' << line_b.substr(0, line_b.size() / 2);
  }
  sweep::StoreReader r(path);
  sweep::StoreContents acc;
  EXPECT_EQ(r.poll(acc), 1u);
  const auto consumed = r.offset();
  EXPECT_EQ(acc.records.size(), 1u);
  EXPECT_EQ(acc.skipped, 0u);
  {
    std::ofstream f(path, std::ios::app);
    f << line_b.substr(line_b.size() / 2) << '\n';
  }
  EXPECT_EQ(r.poll(acc), 1u);
  EXPECT_GT(r.offset(), consumed);
  EXPECT_EQ(acc.records.size(), 2u);
  EXPECT_TRUE(acc.records.count(b.config_hash));
  EXPECT_EQ(acc.skipped, 0u);
  std::remove(path.c_str());
}

TEST(StoreReader, TornTailGluesIntoNextAppendAndSkips) {
  const std::string path = testing::TempDir() + "sm_store_test_glue.jsonl";
  std::remove(path.c_str());
  auto a = sample_record();
  auto b = sample_record();
  b.config_hash = "ffeeddccbbaa9988";
  auto c = sample_record();
  c.config_hash = "0123456789abcdef";

  {
    std::ofstream f(path);
    const auto torn = to_store_line(b);
    f << to_store_line(a) << '\n' << torn.substr(0, torn.size() / 3);
  }
  sweep::StoreReader r(path);
  sweep::StoreContents acc;
  EXPECT_EQ(r.poll(acc), 1u);
  // A crashed worker's torn tail never gets its newline; the next append
  // (O_APPEND) lands behind it and the glued bytes parse as one garbage
  // line — byte-for-byte what load_store sees in a merged log with a
  // mid-file tear. The record after the glue merges normally.
  {
    std::ofstream f(path, std::ios::app);
    f << to_store_line(c) << '\n';
  }
  EXPECT_EQ(r.poll(acc), 0u);
  EXPECT_EQ(acc.skipped, 1u);
  {
    std::ofstream f(path, std::ios::app);
    f << to_store_line(b) << '\n';
  }
  EXPECT_EQ(r.poll(acc), 1u);
  EXPECT_EQ(acc.records.size(), 2u);
  EXPECT_TRUE(acc.records.count(b.config_hash));
  EXPECT_FALSE(acc.records.count(c.config_hash));  // lost to the glue
  std::remove(path.c_str());
}

TEST(StoreReader, ConsumeTailMatchesLoadStore) {
  const std::string path = testing::TempDir() + "sm_store_test_eoftail.jsonl";
  std::remove(path.c_str());
  auto a = sample_record();
  auto b = sample_record();
  b.config_hash = "ffeeddccbbaa9988";
  {
    // EOF-terminated final line, no trailing newline: getline-at-EOF
    // territory, which only a consume_tail poll may enter.
    std::ofstream f(path);
    f << to_store_line(a) << '\n' << to_store_line(b);
  }
  sweep::StoreReader r(path);
  sweep::StoreContents acc;
  EXPECT_EQ(r.poll(acc, /*consume_tail=*/false), 1u);
  EXPECT_EQ(r.poll(acc, /*consume_tail=*/true), 1u);

  const auto ref = sweep::load_store({path}, /*must_exist=*/true);
  EXPECT_EQ(acc.records.size(), ref.records.size());
  EXPECT_EQ(acc.lines, ref.lines);
  EXPECT_EQ(acc.skipped, ref.skipped);
  EXPECT_EQ(acc.duplicates, ref.duplicates);
  for (const auto& [hash, rec] : ref.records) {
    ASSERT_TRUE(acc.records.count(hash));
    EXPECT_EQ(acc.records.at(hash).row.wall_ms, rec.row.wall_ms);
  }
  std::remove(path.c_str());
}

TEST(StoreReader, ShrunkenLogRestartsFromByteZero) {
  const std::string path = testing::TempDir() + "sm_store_test_shrink.jsonl";
  std::remove(path.c_str());
  auto a = sample_record();
  auto b = sample_record();
  b.config_hash = "ffeeddccbbaa9988";
  {
    std::ofstream f(path);
    f << to_store_line(a) << '\n' << to_store_line(b) << '\n';
  }
  sweep::StoreReader r(path);
  sweep::StoreContents acc;
  EXPECT_EQ(r.poll(acc), 2u);
  {
    // Log rotated/replaced under the reader: smaller file, fresh bytes.
    std::ofstream f(path, std::ios::trunc);
    f << to_store_line(b) << '\n';
  }
  EXPECT_EQ(r.poll(acc), 1u);  // keyed merge makes the re-read idempotent
  EXPECT_EQ(acc.records.size(), 2u);
  EXPECT_EQ(acc.duplicates, 1u);
  EXPECT_EQ(r.offset(), to_store_line(b).size() + 1);
  std::remove(path.c_str());
}

// ---------------------------------------------------- cells and hashes ---

TEST(StoreCells, ExpandIsGridMajorWithSplitInnermost) {
  sweep::Grid grid;
  grid.benchmarks = {"c432", "c880"};
  grid.seeds = {1, 2};
  grid.split_layers = {3, 5};
  sweep::Options opts;
  opts.patterns = 1000;

  const auto cells = sweep::expand_cells(grid, opts);
  ASSERT_EQ(cells.size(), grid.combinations());
  // Row order must match Result::rows: benchmark, seed, defense, split.
  EXPECT_EQ(cells[0].benchmark, "c432");
  EXPECT_EQ(cells[0].seed, 1u);
  EXPECT_EQ(cells[0].defense, sweep::Defense::Unprotected);
  EXPECT_EQ(cells[0].split_layer, 3);
  EXPECT_EQ(cells[1].split_layer, 5);
  EXPECT_EQ(cells[2].defense, sweep::Defense::Proposed);
  EXPECT_EQ(cells[0].task_index, cells[1].task_index);
  EXPECT_NE(cells[1].task_index, cells[2].task_index);
  EXPECT_EQ(cells.back().benchmark, "c880");
  EXPECT_EQ(cells.back().seed, 2u);
  EXPECT_EQ(cells.back().split_layer, 5);
  // Hashes are unique per cell.
  for (std::size_t i = 0; i < cells.size(); ++i)
    for (std::size_t j = i + 1; j < cells.size(); ++j)
      EXPECT_NE(cells[i].config_hash, cells[j].config_hash) << i << " " << j;
}

TEST(StoreCells, ExpandValidatesBenchmarksEvenWithoutSplits) {
  sweep::Grid grid;
  grid.benchmarks = {"c9999"};
  grid.split_layers.clear();
  EXPECT_THROW(sweep::expand_cells(grid, {}), std::invalid_argument);
}

TEST(StoreCells, HashIgnoresSchedulingOptions) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.split_layers = {4};
  sweep::Options a;
  a.patterns = 2000;
  sweep::Options b = a;
  b.jobs = 8;
  b.shard_index = 1;
  b.shard_count = 3;
  b.store_path = "elsewhere.jsonl";
  b.resume = true;
  const auto ca = sweep::expand_cells(grid, a);
  const auto cb = sweep::expand_cells(grid, b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i)
    EXPECT_EQ(ca[i].config_hash, cb[i].config_hash);
}

TEST(StoreCells, HashCoversEveryGridCoordinateAndPatterns) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4};
  grid.defenses = {sweep::Defense::Unprotected};
  sweep::Options opts;
  opts.patterns = 2000;
  const auto base = sweep::expand_cells(grid, opts)[0].config_hash;

  auto hash_with = [&](auto&& mutate) {
    sweep::Grid g = grid;
    sweep::Options o = opts;
    mutate(g, o);
    return sweep::expand_cells(g, o)[0].config_hash;
  };
  EXPECT_NE(hash_with([](sweep::Grid& g, sweep::Options&) {
              g.benchmarks = {"c880"};
            }),
            base);
  EXPECT_NE(hash_with([](sweep::Grid& g, sweep::Options&) {
              g.seeds = {2};
            }),
            base);
  EXPECT_NE(hash_with([](sweep::Grid& g, sweep::Options&) {
              g.split_layers = {5};
            }),
            base);
  EXPECT_NE(hash_with([](sweep::Grid& g, sweep::Options&) {
              g.defenses = {sweep::Defense::Proposed};
            }),
            base);
  EXPECT_NE(hash_with([](sweep::Grid&, sweep::Options& o) {
              o.patterns = 4000;
            }),
            base);
  EXPECT_NE(hash_with([](sweep::Grid& g, sweep::Options&) {
              g.scale = 0.05;
            }),
            base);
}

// Golden pins: these exact configurations must hash to these exact keys in
// every future release — otherwise existing stores silently stop resuming.
// If a hash change is intentional (recipe schema evolved), bump the
// "format" tag in cell_config_json and update these pins in the same PR.
TEST(StoreCells, GoldenConfigHashesAreStableAcrossReleases) {
  sweep::Grid grid;  // defaults: scale 0.02
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4};
  sweep::Options opts;
  opts.patterns = 2000;
  const auto cells = sweep::expand_cells(grid, opts);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].config_hash, "5b8b859189dacd44");  // unprotected
  EXPECT_EQ(cells[1].config_hash, "cd0f8c7f7faf748e");  // proposed

  sweep::Grid sb;
  sb.benchmarks = {"superblue1"};
  sb.seeds = {7};
  sb.split_layers = {5};
  sb.defenses = {sweep::Defense::Proposed};
  sb.scale = 0.1;
  sweep::Options sbo;
  sbo.patterns = 100000;
  EXPECT_EQ(sweep::expand_cells(sb, sbo)[0].config_hash, "22e14fde13acce6f");
}

TEST(StoreCells, DescribeNamesTheCell) {
  sweep::Grid grid;
  grid.benchmarks = {"c880"};
  grid.seeds = {3};
  grid.split_layers = {4};
  grid.defenses = {sweep::Defense::Proposed};
  const auto cells = sweep::expand_cells(grid, {});
  const auto text = sweep::describe(cells[0]);
  EXPECT_NE(text.find("c880"), std::string::npos);
  EXPECT_NE(text.find("seed=3"), std::string::npos);
  EXPECT_NE(text.find("M4"), std::string::npos);
  EXPECT_NE(text.find("proposed"), std::string::npos);
  EXPECT_NE(text.find(cells[0].config_hash), std::string::npos);
}

// --------------------------------------------------------- materialize ---

TEST(StoreMaterialize, RebuildsGridMajorRowsAndListsMissing) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4, 5};
  grid.defenses = {sweep::Defense::Unprotected};
  sweep::Options opts;
  opts.patterns = 1000;
  const auto cells = sweep::expand_cells(grid, opts);
  ASSERT_EQ(cells.size(), 2u);

  sweep::StoreContents store;
  sweep::StoreRecord rec;
  rec.config_hash = cells[1].config_hash;  // only the M5 cell is logged
  rec.row.benchmark = "c432";
  rec.row.seed = 1;
  rec.row.split_layer = 5;
  rec.row.defense = sweep::Defense::Unprotected;
  rec.row.ccr = 0.75;
  store.records[rec.config_hash] = rec;

  const auto mat = sweep::materialize(grid, opts, store);
  ASSERT_EQ(mat.result.rows.size(), 1u);
  EXPECT_EQ(mat.result.rows[0].split_layer, 5);
  EXPECT_EQ(mat.result.rows[0].ccr, 0.75);
  EXPECT_EQ(mat.result.resumed_cells, 1u);
  EXPECT_EQ(mat.result.computed_cells, 0u);
  ASSERT_EQ(mat.missing.size(), 1u);
  EXPECT_EQ(mat.missing[0].split_layer, 4);
  EXPECT_EQ(mat.missing[0].config_hash, cells[0].config_hash);
}

}  // namespace
