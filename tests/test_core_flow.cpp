// End-to-end protection flow tests: correction-cell planning, lifting,
// split views, restoration equivalence, and PPA accounting.
#include "core/baselines.hpp"
#include "core/correction.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace sm::core;
using sm::netlist::CellLibrary;
using sm::netlist::NetId;
using sm::netlist::Netlist;

class CoreFlowTest : public ::testing::Test {
 protected:
  CellLibrary lib{6};
  Netlist bench(const char* name = "c432", std::uint64_t seed = 3) const {
    return sm::workloads::generate(lib, sm::workloads::iscas85_profile(name),
                                   seed);
  }
  FlowOptions flow() const {
    FlowOptions f;
    f.lift_layer = 6;
    f.router.passes = 2;
    f.placer.detailed_passes = 1;
    return f;
  }
  RandomizeOptions rand_opts() const {
    RandomizeOptions r;
    r.seed = 5;
    r.check_patterns = 2048;
    return r;
  }
};

TEST_F(CoreFlowTest, CorrectionPlanPairsPerEntry) {
  const Netlist original = bench();
  auto rr = randomize(original, rand_opts());
  sm::place::Placer placer;
  const auto pl = placer.place(rr.erroneous);
  const auto plan = plan_corrections(rr.erroneous, rr.ledger, pl, 6);
  EXPECT_EQ(plan.cells.size(), rr.ledger.entries.size() * 2);
  EXPECT_EQ(plan.wires.size(), rr.ledger.entries.size() * 2);
  for (std::size_t e = 0; e < rr.ledger.entries.size(); ++e) {
    EXPECT_EQ(plan.cells[2 * e].tapped_net, rr.ledger.entries[e].net_a);
    EXPECT_EQ(plan.cells[2 * e + 1].tapped_net, rr.ledger.entries[e].net_b);
    // Pair wires connect A<->B of the same entry.
    EXPECT_EQ(plan.wires[2 * e].from_cell, 2 * e);
    EXPECT_EQ(plan.wires[2 * e].to_cell, 2 * e + 1);
    EXPECT_EQ(plan.wires[2 * e + 1].from_cell, 2 * e + 1);
  }
  // All cells inside the die.
  for (const auto& c : plan.cells)
    EXPECT_TRUE(pl.floorplan.die.inflated(1e-6).contains(c.pos));
}

TEST_F(CoreFlowTest, CorrectionLegalizationSeparatesCells) {
  CorrectionPlan plan;
  plan.pin_layer = 6;
  for (int i = 0; i < 25; ++i) {
    CorrectionCell c;
    c.pos = {10.0, 10.0};  // all stacked on one spot
    plan.cells.push_back(c);
  }
  legalize_corrections(plan, sm::util::Rect{{0, 0}, {50, 50}}, 1.4);
  std::set<std::pair<long, long>> sites;
  for (const auto& c : plan.cells) {
    const auto key = std::make_pair(std::lround(c.pos.x * 10),
                                    std::lround(c.pos.y * 10));
    EXPECT_TRUE(sites.insert(key).second) << "two cells share a site";
  }
}

TEST_F(CoreFlowTest, ProtectProducesConsistentDesign) {
  const Netlist original = bench();
  const auto design = protect(original, rand_opts(), flow());
  EXPECT_GE(design.oer, 0.9);
  EXPECT_TRUE(design.restored_ok);
  EXPECT_FALSE(design.ledger.entries.empty());
  // Task list: one task per net with sinks, then 2 wires per entry.
  EXPECT_EQ(design.layout.tasks.size() - design.layout.num_net_tasks,
            design.ledger.entries.size() * 2);
  EXPECT_EQ(design.layout.routing.routes.size(), design.layout.tasks.size());
  EXPECT_EQ(design.layout.routing.stats.failed_nets, 0u);
}

TEST_F(CoreFlowTest, ProtectedNetsAreLifted) {
  const Netlist original = bench();
  const auto design = protect(original, rand_opts(), flow());
  const auto protected_nets = design.ledger.protected_nets();
  const std::set<NetId> prot(protected_nets.begin(), protected_nets.end());
  for (std::size_t ti = 0; ti < design.layout.num_net_tasks; ++ti) {
    const auto& task = design.layout.tasks[ti];
    if (prot.count(task.net)) {
      EXPECT_EQ(task.min_layer, 6);
      // Protected nets route through their correction cells: at least one
      // extra terminal beyond driver+sinks.
      EXPECT_GT(task.terminals.size(),
                1 + design.erroneous.net(task.net).sinks.size());
    } else {
      EXPECT_EQ(task.min_layer, 1);
    }
  }
}

TEST_F(CoreFlowTest, BeolWiresStayAboveLiftLayer) {
  const Netlist original = bench();
  const auto design = protect(original, rand_opts(), flow());
  for (std::size_t ti = design.layout.num_net_tasks;
       ti < design.layout.tasks.size(); ++ti) {
    const auto& r = design.layout.routing.routes[ti];
    EXPECT_TRUE(r.success);
    for (const auto& seg : r.segments)
      EXPECT_GE(std::min(seg.a.layer, seg.b.layer), 6);
  }
}

TEST_F(CoreFlowTest, SplitViewFindsFragmentsAndVpins) {
  const Netlist original = bench();
  const auto layout = layout_original(original, flow());
  const auto view = split_layout(original, layout.placement, layout.routing,
                                 layout.tasks, layout.num_net_tasks, 3);
  EXPECT_GT(view.num_vpins(), 0u);
  EXPECT_FALSE(view.open_driver_fragments().empty());
  EXPECT_FALSE(view.open_sink_fragments().empty());
  // Every fragment belongs to a real net and has content.
  for (const auto& f : view.fragments) {
    EXPECT_LT(f.net, original.num_nets());
    EXPECT_TRUE(f.has_driver || !f.sinks.empty() || !f.vpins.empty());
  }
}

TEST_F(CoreFlowTest, SplitAtHigherLayerCutsFewerNets) {
  const Netlist original = bench();
  const auto layout = layout_original(original, flow());
  const auto low = split_layout(original, layout.placement, layout.routing,
                                layout.tasks, layout.num_net_tasks, 2);
  const auto high = split_layout(original, layout.placement, layout.routing,
                                 layout.tasks, layout.num_net_tasks, 6);
  EXPECT_GE(low.open_sink_fragments().size(),
            high.open_sink_fragments().size());
  EXPECT_GE(low.num_vpins(), high.num_vpins());
}

TEST_F(CoreFlowTest, ProtectedSplitExposesEveryProtectedNet) {
  const Netlist original = bench();
  const auto design = protect(original, rand_opts(), flow());
  const auto view =
      split_layout(design.erroneous, design.layout.placement,
                   design.layout.routing, design.layout.tasks,
                   design.layout.num_net_tasks, 4);
  // Lifted nets (min layer 6, split at 4) must appear as open fragments —
  // except the rare net whose terminals all share one gcell (its via stacks
  // merge into the driver's FEOL fragment, which the attacker indeed sees
  // as connected).
  std::set<NetId> open_nets;
  for (const auto fi : view.open_sink_fragments())
    open_nets.insert(view.fragments[fi].net);
  std::size_t total = 0, open = 0;
  for (const NetId n : design.ledger.protected_nets()) {
    if (design.erroneous.net(n).sinks.empty()) continue;
    ++total;
    if (open_nets.count(n)) ++open;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(static_cast<double>(open) / static_cast<double>(total), 0.7);
}

TEST_F(CoreFlowTest, NaiveLiftKeepsFunctionAndLifts) {
  const Netlist original = bench();
  const auto design = protect(original, rand_opts(), flow());
  const auto nets = design.ledger.protected_nets();
  const auto naive = layout_naive_lift(original, nets, flow());
  EXPECT_EQ(naive.plan.cells.size(), nets.size());
  EXPECT_EQ(naive.layout.routing.stats.failed_nets, 0u);
  // Lifting adds vias in every boundary below the lift layer vs original.
  const auto orig = layout_original(original, flow());
  for (int l = 1; l < 6; ++l)
    EXPECT_GT(naive.layout.routing.stats.vias[static_cast<std::size_t>(l)],
              orig.routing.stats.vias[static_cast<std::size_t>(l)]);
}

TEST_F(CoreFlowTest, PpaOverheadIsFiniteAndOrdered) {
  const Netlist original = bench();
  const auto orig = layout_original(original, flow());
  const auto design = protect(original, rand_opts(), flow());
  EXPECT_GT(orig.ppa.critical_path_ps, 0.0);
  EXPECT_GT(orig.ppa.total_power_uw(), 0.0);
  // Protection costs something but stays bounded. The unbudgeted run on a
  // tiny die lifts a large net fraction into the few M6+ tracks, so the
  // power multiple is large here; the paper's budget loop (exercised by
  // BudgetLoopRespectsBudget) is what bounds production overheads.
  EXPECT_GE(design.layout.ppa.total_power_uw(), orig.ppa.total_power_uw());
  EXPECT_LT(design.layout.ppa.total_power_uw(), orig.ppa.total_power_uw() * 12);
  EXPECT_GE(design.layout.ppa.critical_path_ps, orig.ppa.critical_path_ps);
  // Zero die-area overhead (correction cells have no device footprint).
  EXPECT_DOUBLE_EQ(design.layout.ppa.die_area_um2, orig.ppa.die_area_um2);
}

TEST_F(CoreFlowTest, BudgetLoopRespectsBudget) {
  const Netlist original = bench("c432", 9);
  const auto orig = layout_original(original, flow());
  RandomizeOptions r = rand_opts();
  r.max_swaps = 8;
  const auto design =
      protect_with_budget(original, r, flow(), orig.ppa, 25.0, 3);
  EXPECT_TRUE(design.restored_ok);
  EXPECT_GE(design.ledger.entries.size(), 1u);
}

TEST_F(CoreFlowTest, BaselinesProduceValidLayouts) {
  const Netlist original = bench();
  const auto perturbed = layout_placement_perturbed(
      original, flow(), PerturbStrategy::GType1, 0.15, 3);
  EXPECT_EQ(perturbed.routing.stats.failed_nets, 0u);

  const auto swapped = layout_pin_swapped(original, flow(), 10, 3);
  EXPECT_EQ(swapped.ledger.entries.size(), 10u);
  EXPECT_EQ(swapped.layout.routing.stats.failed_nets, 0u);

  const auto rperturb = layout_routing_perturbed(original, flow(), 0.1, 5, 3);
  EXPECT_EQ(rperturb.routing.stats.failed_nets, 0u);

  const auto blocked = layout_routing_blockage(original, flow(), 3, 8.0, 4, 3);
  EXPECT_EQ(blocked.routing.stats.failed_nets, 0u);
}

TEST_F(CoreFlowTest, BlockagesPushWiringUp) {
  const Netlist original = bench("c1908", 4);
  const auto orig = layout_original(original, flow());
  const auto blocked = layout_routing_blockage(original, flow(), 6, 10.0, 4, 3);
  double orig_high = 0, blocked_high = 0;
  for (int l = 5; l <= 10; ++l) {
    orig_high += orig.routing.stats.wire_um[static_cast<std::size_t>(l)];
    blocked_high += blocked.routing.stats.wire_um[static_cast<std::size_t>(l)];
  }
  EXPECT_GT(blocked_high, orig_high);
}

}  // namespace
