// Randomizer tests: swap mechanics, loop avoidance, OER-driven stopping,
// ledger bookkeeping, and restoration equivalence (the paper's core loop).
#include "core/randomizer.hpp"
#include "netlist/topo.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm::core;
using sm::netlist::CellLibrary;
using sm::netlist::Netlist;

class RandomizerTest : public ::testing::Test {
 protected:
  CellLibrary lib;
  Netlist bench() const {
    return sm::workloads::generate(lib, sm::workloads::iscas85_profile("c880"), 3);
  }
};

TEST_F(RandomizerTest, ReachesHighOer) {
  const Netlist original = bench();
  RandomizeOptions opts;
  opts.target_oer = 0.99;
  opts.seed = 11;
  const auto result = randomize(original, opts);
  EXPECT_GE(result.oer, 0.99);
  EXPECT_GT(result.swaps, 0u);
  EXPECT_GT(result.hd, 0.0);
  EXPECT_EQ(result.ledger.entries.size(), result.swaps);
}

TEST_F(RandomizerTest, ErroneousNetlistStaysAcyclicAndValid) {
  const Netlist original = bench();
  RandomizeOptions opts;
  opts.max_swaps = 200;
  opts.target_oer = 2.0;  // exhaust the budget
  opts.seed = 5;
  const auto result = randomize(original, opts);
  EXPECT_NO_THROW(result.erroneous.validate());
  EXPECT_TRUE(sm::netlist::is_acyclic(result.erroneous));
  EXPECT_EQ(result.swaps, 200u);
}

TEST_F(RandomizerTest, InterfacePreserved) {
  const Netlist original = bench();
  RandomizeOptions opts;
  opts.seed = 7;
  const auto result = randomize(original, opts);
  EXPECT_EQ(result.erroneous.num_cells(), original.num_cells());
  EXPECT_EQ(result.erroneous.num_nets(), original.num_nets());
  EXPECT_EQ(result.erroneous.primary_inputs(), original.primary_inputs());
  EXPECT_EQ(result.erroneous.primary_outputs(), original.primary_outputs());
}

TEST_F(RandomizerTest, RestorationIsExact) {
  const Netlist original = bench();
  RandomizeOptions opts;
  opts.seed = 13;
  auto result = randomize(original, opts);
  // The erroneous netlist differs...
  EXPECT_GT(result.oer, 0.5);
  // ...and restoring through the ledger recovers the exact connectivity.
  restore_netlist(result.erroneous, result.ledger);
  for (sm::netlist::CellId c = 0; c < original.num_cells(); ++c)
    EXPECT_EQ(result.erroneous.cell(c).inputs, original.cell(c).inputs);
  EXPECT_TRUE(sm::sim::equivalent(original, result.erroneous, 4096, 1));
}

TEST_F(RandomizerTest, DeterministicForSeed) {
  const Netlist original = bench();
  RandomizeOptions opts;
  opts.seed = 21;
  const auto a = randomize(original, opts);
  const auto b = randomize(original, opts);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_DOUBLE_EQ(a.oer, b.oer);
  ASSERT_EQ(a.ledger.entries.size(), b.ledger.entries.size());
  for (std::size_t i = 0; i < a.ledger.entries.size(); ++i) {
    EXPECT_EQ(a.ledger.entries[i].net_a, b.ledger.entries[i].net_a);
    EXPECT_EQ(a.ledger.entries[i].sink_a, b.ledger.entries[i].sink_a);
  }
}

TEST_F(RandomizerTest, LedgerProtectedNetsUniqueAndTouched) {
  const Netlist original = bench();
  RandomizeOptions opts;
  opts.seed = 2;
  const auto result = randomize(original, opts);
  const auto nets = result.ledger.protected_nets();
  ASSERT_FALSE(nets.empty());
  for (std::size_t i = 1; i < nets.size(); ++i) EXPECT_LT(nets[i - 1], nets[i]);
  for (const auto n : nets) EXPECT_LT(n, original.num_nets());
}

TEST_F(RandomizerTest, TrueConnectionsPointAtOriginalNets) {
  const Netlist original = bench();
  RandomizeOptions opts;
  opts.seed = 31;
  opts.max_swaps = 50;
  const auto result = randomize(original, opts);
  for (const auto& [net, sink] : result.ledger.true_connections()) {
    // The recorded true source must equal the original netlist connection.
    EXPECT_EQ(original.cell(sink.cell).inputs.at(
                  static_cast<std::size_t>(sink.pin)),
              net);
  }
}

TEST_F(RandomizerTest, SwapsChangeFunctionImmediately) {
  // Even a handful of swaps must produce nonzero OER on this XOR-rich logic.
  const Netlist original = bench();
  RandomizeOptions opts;
  opts.min_swaps = 2;
  opts.max_swaps = 8;
  opts.target_oer = 0.0;  // stop at first check
  opts.seed = 17;
  const auto result = randomize(original, opts);
  EXPECT_GT(result.oer, 0.0);
}

TEST_F(RandomizerTest, SequentialBenchmarkSupported) {
  const auto original = sm::workloads::generate(
      lib, sm::workloads::superblue_profile("superblue18", 0.003), 4);
  RandomizeOptions opts;
  opts.seed = 9;
  const auto result = randomize(original, opts);
  EXPECT_GE(result.oer, 0.9);
  EXPECT_TRUE(sm::netlist::is_acyclic(result.erroneous));
  auto restored = result.erroneous.clone();
  restore_netlist(restored, result.ledger);
  EXPECT_TRUE(sm::sim::equivalent(original, restored, 2048, 3));
}

}  // namespace
