// Repeater insertion (drive-strength fixing) tests.
#include "core/protect.hpp"
#include "place/buffering.hpp"
#include "place/placer.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm;
using netlist::CellId;
using netlist::CellLibrary;
using netlist::NetId;
using netlist::Netlist;

class BufferingTest : public ::testing::Test {
 protected:
  CellLibrary lib;
};

TEST_F(BufferingTest, PreservesFunction) {
  auto nl = workloads::generate(lib, workloads::iscas85_profile("c880"), 1);
  const auto golden = nl.clone();
  place::Placer placer;
  auto pl = placer.place(nl);
  const auto res = place::insert_buffers(nl, pl);
  EXPECT_GT(res.buffers_inserted, 0u);
  EXPECT_EQ(pl.pos.size(), nl.num_cells());
  EXPECT_TRUE(sim::equivalent(golden, nl, 4096, 7));
}

TEST_F(BufferingTest, StrengthTracksDistance) {
  // Hand-built: one driver, two nets — short and long.
  Netlist nl(lib, "b");
  const NetId a = nl.add_primary_input("a");
  const CellId g1 = nl.add_cell("near", lib.id_of("INV_X1"));
  nl.connect_input(g1, 0, a);
  const CellId g2 = nl.add_cell("far", lib.id_of("INV_X1"));
  nl.connect_input(g2, 0, nl.cell(g1).output);
  nl.add_primary_output("y", nl.cell(g2).output);

  place::Placement pl;
  pl.floorplan.die = {{0, 0}, {300, 300}};
  pl.floorplan.num_rows = 200;
  pl.pos = {{0, 1}, {2, 1}, {250, 1}, {252, 1}};  // pi, near, far, po

  place::BufferingOptions opts;
  opts.hpwl_threshold_um = 25;
  opts.strength8_um = 100;
  const auto res = place::insert_buffers(nl, pl, opts);
  // Only the long net (near -> far, ~248 um) gets a repeater, strength 8.
  ASSERT_EQ(res.buffers_inserted, 1u);
  EXPECT_EQ(nl.type_of(res.buffers[0]).name, "BUF_X8");
  // The repeater is electrically between `near` and `far`.
  const NetId mid = nl.cell(res.buffers[0]).output;
  EXPECT_EQ(nl.cell(g2).inputs[0], mid);
  EXPECT_EQ(nl.cell(res.buffers[0]).inputs[0], nl.cell(g1).output);
  nl.validate();
}

TEST_F(BufferingTest, SkipListRespected) {
  auto nl = workloads::generate(lib, workloads::iscas85_profile("c432"), 2);
  place::Placer placer;
  auto pl = placer.place(nl);
  // Skip everything: nothing may change.
  place::BufferingOptions opts;
  for (NetId n = 0; n < nl.num_nets(); ++n) opts.skip.push_back(n);
  const std::size_t cells_before = nl.num_cells();
  const auto res = place::insert_buffers(nl, pl, opts);
  EXPECT_EQ(res.buffers_inserted, 0u);
  EXPECT_EQ(nl.num_cells(), cells_before);
}

TEST_F(BufferingTest, FlowIntegrationKeepsEquivalence) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c880"), 3);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  flow.buffering = true;
  flow.buffering_opts.hpwl_threshold_um = 15.0;
  core::RandomizeOptions r;
  r.seed = 3;
  r.check_patterns = 1024;
  const auto design = core::protect(nl, r, flow);
  // Restoration must still hold with repeaters in the erroneous netlist.
  EXPECT_TRUE(design.restored_ok);
  EXPECT_GT(design.erroneous.num_cells(), nl.num_cells());  // repeaters added
  EXPECT_EQ(design.layout.routing.stats.failed_nets, 0u);
  // Protected nets were skipped: their connectivity is exactly the ledger's.
  for (const auto& e : design.ledger.entries) {
    EXPECT_EQ(design.erroneous.cell(e.sink_a.cell).inputs.at(
                  static_cast<std::size_t>(e.sink_a.pin)),
              e.net_b);
  }
}

TEST_F(BufferingTest, BufferedOriginalLayoutRoutes) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c1355"), 4);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  flow.buffering = true;
  const auto layout = core::layout_original(nl, flow);
  EXPECT_EQ(layout.routing.stats.failed_nets, 0u);
  EXPECT_GT(layout.ppa.total_power_uw(), 0.0);
}

}  // namespace
