// Attacker-axis determinism and correctness contracts. Every attacker the
// sweep grid can schedule (proximity / crouting / sat) and every baseline
// defense must honor the same guarantees the proximity-only sweep shipped
// with: metrics bit-identical for jobs in {1, 2, 8}, resumed == scratch,
// shard-union == unsharded — plus per-attacker row semantics (crouting's
// candidate-list metrics, the sat attacker's equivalence verdict) and the
// deterministic LayoutCache accounting when baseline defenses share one
// (bench, seed) placement.
#include "sweep/sweep.hpp"

#include "core/equivalence.hpp"
#include "sweep/store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using namespace sm;

// Every Row field except wall_ms, bitwise — including the attacker-axis
// fields (attacker, els, equiv).
void expect_rows_equal_modulo_wall(const std::vector<sweep::Row>& a,
                                   const std::vector<sweep::Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].benchmark, b[i].benchmark) << "row " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "row " << i;
    EXPECT_EQ(a[i].split_layer, b[i].split_layer) << "row " << i;
    EXPECT_EQ(a[i].defense, b[i].defense) << "row " << i;
    EXPECT_EQ(a[i].attacker, b[i].attacker) << "row " << i;
    EXPECT_EQ(a[i].ccr, b[i].ccr) << "row " << i;
    EXPECT_EQ(a[i].ccr_protected, b[i].ccr_protected) << "row " << i;
    EXPECT_EQ(a[i].oer, b[i].oer) << "row " << i;
    EXPECT_EQ(a[i].hd, b[i].hd) << "row " << i;
    EXPECT_EQ(a[i].open_sinks, b[i].open_sinks) << "row " << i;
    EXPECT_EQ(a[i].swaps, b[i].swaps) << "row " << i;
    EXPECT_EQ(a[i].els, b[i].els) << "row " << i;
    EXPECT_EQ(a[i].equiv, b[i].equiv) << "row " << i;
  }
}

std::string strip_wall_column(const std::string& csv) {
  std::string out;
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    out += line.substr(0, line.rfind(','));
    out += '\n';
  }
  return out;
}

TEST(AttackerAxis, NamesRoundTrip) {
  EXPECT_EQ(sweep::attacker_from_string("proximity"),
            sweep::Attacker::Proximity);
  EXPECT_EQ(sweep::attacker_from_string("crouting"), sweep::Attacker::CRouting);
  EXPECT_EQ(sweep::attacker_from_string("sat"), sweep::Attacker::Sat);
  EXPECT_STREQ(sweep::to_string(sweep::Attacker::Proximity), "proximity");
  EXPECT_STREQ(sweep::to_string(sweep::Attacker::CRouting), "crouting");
  EXPECT_STREQ(sweep::to_string(sweep::Attacker::Sat), "sat");
  EXPECT_THROW(sweep::attacker_from_string("psychic"), std::invalid_argument);
}

TEST(AttackerAxis, GridSpecParsesAttackerDimension) {
  const auto g = sweep::Grid::parse(
      "benchmarks=c432;attackers=proximity,crouting,sat");
  ASSERT_EQ(g.attackers.size(), 3u);
  EXPECT_EQ(g.attackers[0], sweep::Attacker::Proximity);
  EXPECT_EQ(g.attackers[1], sweep::Attacker::CRouting);
  EXPECT_EQ(g.attackers[2], sweep::Attacker::Sat);
  EXPECT_EQ(g.combinations(),
            1u * 1u * g.split_layers.size() * g.defenses.size() * 3u);
  EXPECT_THROW(sweep::Grid::parse("attackers=voodoo"), std::invalid_argument);
  // Default grid stays proximity-only — the pre-axis behavior.
  EXPECT_EQ(sweep::Grid{}.attackers,
            (std::vector<sweep::Attacker>{sweep::Attacker::Proximity}));
}

TEST(AttackerAxis, BaselineDefenseNamesRoundTrip) {
  using sweep::Defense;
  const std::pair<const char*, Defense> names[] = {
      {"place-perturb", Defense::PlacePerturb},
      {"g-color", Defense::GColor},
      {"g-type1", Defense::GType1},
      {"g-type2", Defense::GType2},
      {"pin-swap", Defense::PinSwap},
      {"route-perturb", Defense::RoutePerturb},
      {"route-blockage", Defense::RouteBlockage},
  };
  for (const auto& [name, d] : names) {
    EXPECT_EQ(sweep::defense_from_string(name), d) << name;
    EXPECT_STREQ(sweep::to_string(d), name);
    EXPECT_TRUE(sweep::is_baseline(d)) << name;
  }
  EXPECT_FALSE(sweep::is_baseline(Defense::Unprotected));
  EXPECT_FALSE(sweep::is_baseline(Defense::Proposed));
}

// The tentpole contract: one grid spanning both defenses and all three
// attackers yields bit-identical metrics for jobs in {1, 2, 8}. Mirrors
// test_sweep's proximity-only contract across the new axis.
TEST(AttackerAxis, JobsInvarianceAcrossAttackers) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting,
                    sweep::Attacker::Sat};
  sweep::Options opts;
  opts.patterns = 800;

  opts.jobs = 1;
  const auto serial = sweep::run(grid, opts);
  ASSERT_EQ(serial.rows.size(), grid.combinations());

  for (const std::size_t jobs : {2u, 8u}) {
    sweep::Options popts = opts;
    popts.jobs = jobs;
    const auto parallel = sweep::run(grid, popts);
    expect_rows_equal_modulo_wall(serial.rows, parallel.rows);
  }

  // Attacker is the innermost row coordinate.
  ASSERT_EQ(serial.rows.size(), 6u);
  EXPECT_EQ(serial.rows[0].attacker, sweep::Attacker::Proximity);
  EXPECT_EQ(serial.rows[1].attacker, sweep::Attacker::CRouting);
  EXPECT_EQ(serial.rows[2].attacker, sweep::Attacker::Sat);
  EXPECT_EQ(serial.rows[0].defense, sweep::Defense::Unprotected);
  EXPECT_EQ(serial.rows[3].defense, sweep::Defense::Proposed);

  for (const auto& row : serial.rows) {
    switch (row.attacker) {
      case sweep::Attacker::Proximity:
        // No equivalence check ran: the verdict stays N/A.
        EXPECT_EQ(row.equiv, -1);
        EXPECT_EQ(row.els, 0.0);
        break;
      case sweep::Attacker::CRouting:
        // Candidate confinement only — nothing recovered to simulate.
        EXPECT_EQ(row.oer, 0.0);
        EXPECT_EQ(row.hd, 0.0);
        EXPECT_EQ(row.equiv, -1);
        break;
      case sweep::Attacker::Sat:
        // The recovered netlist was equivalence-checked: 1/0/2, never N/A.
        EXPECT_NE(row.equiv, -1);
        break;
    }
  }

  // Verdict semantics on this grid: the unprotected layout of c432 routes
  // entirely below M4 (nothing to recover — the attack returns the original
  // wiring, provably Equivalent), while the proposed defense's erroneous
  // FEOL plus attack errors yield an Inequivalent recovery.
  const auto& unprot_sat = serial.rows[2];
  const auto& prop_sat = serial.rows[5];
  EXPECT_EQ(unprot_sat.equiv, 1);
  EXPECT_EQ(prop_sat.equiv, 0);
  // Sat rows carry the proximity metrics too (same matching, same seed).
  EXPECT_EQ(prop_sat.ccr, serial.rows[3].ccr);
  EXPECT_EQ(prop_sat.oer, serial.rows[3].oer);

  // CRouting against the proposed defense: every lifted sink is a vpin with
  // a bounded candidate list.
  const auto& prop_cr = serial.rows[4];
  EXPECT_GE(prop_cr.open_sinks, 1u);
  EXPECT_GE(prop_cr.els, 1.0);
  EXPECT_GE(prop_cr.ccr, 0.0);
  EXPECT_LE(prop_cr.ccr, 1.0);
}

// Baseline defenses through the sweep: jobs-invariant metrics AND
// deterministic shared-stage accounting. Three defenses of one (bench,
// seed) trigger exactly one netlist build and one placement — the
// placement-keeping baselines (place-perturb, route-perturb) reuse the
// cached stage-1 product instead of re-placing.
TEST(AttackerAxis, BaselineDefensesShareThePlacementStage) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4};
  grid.defenses = {sweep::Defense::Unprotected, sweep::Defense::PlacePerturb,
                   sweep::Defense::RoutePerturb};
  sweep::Options opts;
  opts.patterns = 600;

  opts.jobs = 1;
  const auto serial = sweep::run(grid, opts);
  opts.jobs = 8;
  const auto parallel = sweep::run(grid, opts);
  expect_rows_equal_modulo_wall(serial.rows, parallel.rows);

  // One (bench, seed) group: netlist and placement built once; the base
  // route belongs to Unprotected alone. Calls: 3 netlist (2 hits), 3
  // placed (2 hits — Unprotected's base_layout places internally, the two
  // baselines reuse), 1 base_layout (0 hits). Deterministic for any jobs.
  for (const auto* r : {&serial, &parallel}) {
    EXPECT_EQ(r->cache_stats.netlists, 1u);
    EXPECT_EQ(r->cache_stats.placements, 1u);
    EXPECT_EQ(r->cache_stats.base_routes, 1u);
    EXPECT_EQ(r->cache_stats.hits, 4u);
  }

  // The perturbation must actually change the attack surface relative to
  // the unprotected reference on at least one metric family: route-perturb
  // lifts nets above the split by construction.
  const auto& unprot = serial.rows[0];
  const auto& rperturb = serial.rows[2];
  EXPECT_EQ(rperturb.defense, sweep::Defense::RoutePerturb);
  EXPECT_GT(rperturb.open_sinks, unprot.open_sinks);
}

// Resume with attacker cells: a store logged for the crouting half of the
// grid resumes bit-identically into the full run. Mirrors test_sweep's
// ResumedEqualsFromScratch across the new axis.
TEST(AttackerAxis, ResumedEqualsFromScratchWithAttackerCells) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4, 5};
  grid.defenses = {sweep::Defense::Proposed};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting};
  sweep::Options opts;
  opts.patterns = 800;
  opts.jobs = 2;

  const auto scratch = sweep::run(grid, opts);
  ASSERT_EQ(scratch.rows.size(), 4u);

  const std::string store = testing::TempDir() + "sm_attacker_resume.jsonl";
  std::remove(store.c_str());

  // "Interrupted" run: only the M4 cells (both attackers) completed.
  sweep::Grid partial = grid;
  partial.split_layers = {4};
  sweep::Options popts = opts;
  popts.store_path = store;
  const auto first = sweep::run(partial, popts);
  EXPECT_EQ(first.computed_cells, 2u);

  sweep::Options ropts = opts;
  ropts.store_path = store;
  ropts.resume = true;
  const auto resumed = sweep::run(grid, ropts);
  EXPECT_EQ(resumed.resumed_cells, 2u);
  EXPECT_EQ(resumed.computed_cells, 2u);
  expect_rows_equal_modulo_wall(scratch.rows, resumed.rows);
  EXPECT_EQ(strip_wall_column(scratch.to_csv()),
            strip_wall_column(resumed.to_csv()));
  std::remove(store.c_str());
}

// Shard-union == unsharded for a >= 2 defenses x >= 2 attackers grid — the
// ISSUE's acceptance grid, CSV byte-identical modulo wall.
TEST(AttackerAxis, ShardUnionMaterializesToUnshardedAcrossAttackers) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting};
  sweep::Options opts;
  opts.patterns = 800;
  opts.jobs = 2;

  const auto whole = sweep::run(grid, opts);
  ASSERT_EQ(whole.rows.size(), 4u);  // 2 defenses x 2 attackers

  const std::string s0 = testing::TempDir() + "sm_attacker_shard0.jsonl";
  const std::string s1 = testing::TempDir() + "sm_attacker_shard1.jsonl";
  std::remove(s0.c_str());
  std::remove(s1.c_str());

  for (std::size_t i = 0; i < 2; ++i) {
    sweep::Options sopts = opts;
    sopts.shard_index = i;
    sopts.shard_count = 2;
    sopts.store_path = i == 0 ? s0 : s1;
    const auto part = sweep::run(grid, sopts);
    EXPECT_EQ(part.computed_cells, 2u);  // one task (= defense) per shard
  }

  const auto store = sweep::load_store({s1, s0}, /*must_exist=*/true);
  EXPECT_EQ(store.records.size(), 4u);
  const auto mat = sweep::materialize(grid, opts, store);
  EXPECT_TRUE(mat.missing.empty());
  expect_rows_equal_modulo_wall(whole.rows, mat.result.rows);
  EXPECT_EQ(strip_wall_column(whole.to_csv()),
            strip_wall_column(mat.result.to_csv()));
  std::remove(s0.c_str());
  std::remove(s1.c_str());
}

// A synthetic-ladder bench flows through the sweep like any published
// profile (workload detection, superblue-style flow tuning, store hashing).
TEST(AttackerAxis, SyntheticBenchSweepsAndResumes) {
  sweep::Grid grid;
  grid.benchmarks = {"synth1k"};
  grid.seeds = {1};
  grid.split_layers = {5};
  grid.defenses = {sweep::Defense::Unprotected};
  grid.attackers = {sweep::Attacker::CRouting};
  grid.scale = 0.25;  // 250 gates: smoke-sized
  sweep::Options opts;
  opts.patterns = 400;

  const auto res = sweep::run(grid, opts);
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_EQ(res.rows[0].benchmark, "synth1k");
  EXPECT_EQ(res.rows[0].attacker, sweep::Attacker::CRouting);

  const std::string store = testing::TempDir() + "sm_synth_store.jsonl";
  std::remove(store.c_str());
  sweep::Options sopts = opts;
  sopts.store_path = store;
  sweep::run(grid, sopts);
  sopts.resume = true;
  const auto resumed = sweep::run(grid, sopts);
  EXPECT_EQ(resumed.resumed_cells, 1u);
  EXPECT_EQ(resumed.computed_cells, 0u);
  expect_rows_equal_modulo_wall(res.rows, resumed.rows);
  std::remove(store.c_str());
}

// CSV and JSON exports carry the attacker axis; the CSV schema ends in
// task_wall_ms so wall-stripping tools (and CI's `cut`) stay one-column.
TEST(AttackerAxis, ExportsCarryAttackerElsEquiv) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4};
  grid.defenses = {sweep::Defense::Unprotected};
  grid.attackers = {sweep::Attacker::CRouting, sweep::Attacker::Sat};
  sweep::Options opts;
  opts.patterns = 400;
  const auto res = sweep::run(grid, opts);
  ASSERT_EQ(res.rows.size(), 2u);

  const auto csv = res.to_csv();
  EXPECT_NE(csv.find("benchmark,seed,split_layer,defense,attacker,ccr,"
                     "ccr_protected,oer,hd,open_sinks,swaps,els,equiv,"
                     "task_wall_ms"),
            std::string::npos);
  EXPECT_NE(csv.find(",crouting,"), std::string::npos);
  EXPECT_NE(csv.find(",sat,"), std::string::npos);

  const auto json = res.to_json();
  EXPECT_NE(json.find("\"attacker\": \"crouting\""), std::string::npos);
  EXPECT_NE(json.find("\"attacker\": \"sat\""), std::string::npos);
  EXPECT_NE(json.find("\"els\""), std::string::npos);
  EXPECT_NE(json.find("\"equiv\""), std::string::npos);
}

}  // namespace
