// Contract tests for the deterministic fault-injection substrate
// (util/fault.hpp): nth arming fires exactly once on exactly the nth hit,
// hash arming fires on every context-prefix match, unarmed points never
// fire, malformed specs throw without disturbing the installed schedule,
// and an SM_FAULT spec round-trips through a child process's environment
// (the path the sweep supervisor's chaos smokes rely on).
#include "util/fault.hpp"

#include "util/subprocess.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace {

using namespace sm;
using util::FaultPoint;

// Fault state is process-global; every test starts by installing its own
// schedule (fault_arm resets all hit counters), so order never matters.

TEST(FaultArm, BadSpecsThrow) {
  EXPECT_THROW(util::fault_arm("explode:1"), std::invalid_argument);
  EXPECT_THROW(util::fault_arm("crash-before-append"), std::invalid_argument);
  EXPECT_THROW(util::fault_arm("crash-before-append:0"),
               std::invalid_argument);
  EXPECT_THROW(util::fault_arm("crash-before-append:two"),
               std::invalid_argument);
  EXPECT_THROW(util::fault_arm("torn-write:hash="), std::invalid_argument);
  EXPECT_THROW(util::fault_arm("slow-cell:1:ms=abc"), std::invalid_argument);
  EXPECT_THROW(util::fault_arm("slow-cell:1:seconds=2"),
               std::invalid_argument);
  EXPECT_THROW(util::fault_arm("crash-before-append:1:ms=5:extra"),
               std::invalid_argument);
}

TEST(FaultArm, BadSpecLeavesPreviousScheduleInstalled) {
  util::fault_arm("crash-before-append:1");
  EXPECT_THROW(util::fault_arm("garbage:1"), std::invalid_argument);
  // The old schedule (and its counters) must survive the failed arm.
  EXPECT_TRUE(util::fault_hit(FaultPoint::CrashBeforeAppend).fire);
  util::fault_arm("");
}

TEST(FaultHit, UnarmedPointsNeverFireButStillCount) {
  util::fault_arm("");
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(util::fault_hit(FaultPoint::CrashBeforeAppend).fire);
    EXPECT_FALSE(util::fault_hit(FaultPoint::CrashAfterAppend).fire);
    EXPECT_FALSE(util::fault_hit(FaultPoint::TornWrite).fire);
    EXPECT_FALSE(util::fault_hit(FaultPoint::SlowCell).fire);
  }
  EXPECT_EQ(util::fault_hits(FaultPoint::CrashBeforeAppend), 5u);
  EXPECT_EQ(util::fault_hits(FaultPoint::SlowCell), 5u);
}

TEST(FaultHit, NthFiresExactlyOnceOnExactlyTheNthHit) {
  util::fault_arm("crash-before-append:3");
  for (std::size_t hit = 1; hit <= 6; ++hit) {
    const bool fired = util::fault_hit(FaultPoint::CrashBeforeAppend).fire;
    EXPECT_EQ(fired, hit == 3) << "hit " << hit;
    // Arming one point must not leak into the others.
    EXPECT_FALSE(util::fault_hit(FaultPoint::CrashAfterAppend).fire);
  }
  EXPECT_EQ(util::fault_hits(FaultPoint::CrashBeforeAppend), 6u);
}

TEST(FaultHit, ReArmResetsCountersAndOneShotState) {
  util::fault_arm("torn-write:2");
  EXPECT_FALSE(util::fault_hit(FaultPoint::TornWrite).fire);
  EXPECT_TRUE(util::fault_hit(FaultPoint::TornWrite).fire);
  // Same spec again: the hit counter and the one-shot flag both reset, so
  // the schedule replays from scratch.
  util::fault_arm("torn-write:2");
  EXPECT_EQ(util::fault_hits(FaultPoint::TornWrite), 0u);
  EXPECT_FALSE(util::fault_hit(FaultPoint::TornWrite).fire);
  EXPECT_TRUE(util::fault_hit(FaultPoint::TornWrite).fire);
  util::fault_arm("");
}

TEST(FaultHit, HashPrefixFiresOnEveryMatchingHit) {
  util::fault_arm("crash-before-append:hash=ab12");
  // Fires on every hit whose context starts with the prefix — a poison
  // cell kills every worker that touches it, not just the first.
  EXPECT_TRUE(
      util::fault_hit(FaultPoint::CrashBeforeAppend, "ab12deadbeef").fire);
  EXPECT_TRUE(
      util::fault_hit(FaultPoint::CrashBeforeAppend, "ab12deadbeef").fire);
  EXPECT_TRUE(util::fault_hit(FaultPoint::CrashBeforeAppend, "ab12").fire);
  // Non-matching contexts (and the empty context) stay inert forever.
  EXPECT_FALSE(util::fault_hit(FaultPoint::CrashBeforeAppend, "ab99").fire);
  EXPECT_FALSE(util::fault_hit(FaultPoint::CrashBeforeAppend, "ab1").fire);
  EXPECT_FALSE(util::fault_hit(FaultPoint::CrashBeforeAppend, "").fire);
  EXPECT_FALSE(util::fault_hit(FaultPoint::CrashBeforeAppend).fire);
  util::fault_arm("");
}

TEST(FaultHit, SlowCellCarriesSleepDuration) {
  util::fault_arm("slow-cell:1:ms=250");
  const auto a = util::fault_hit(FaultPoint::SlowCell);
  EXPECT_TRUE(a.fire);
  EXPECT_EQ(a.sleep_ms, 250u);
  // Default duration when ms= is omitted.
  util::fault_arm("slow-cell:1");
  EXPECT_EQ(util::fault_hit(FaultPoint::SlowCell).sleep_ms, 30000u);
  util::fault_arm("");
}

TEST(FaultHit, MultipleArmsScheduleIndependently) {
  util::fault_arm("crash-before-append:1,crash-after-append:2");
  EXPECT_TRUE(util::fault_hit(FaultPoint::CrashBeforeAppend).fire);
  EXPECT_FALSE(util::fault_hit(FaultPoint::CrashAfterAppend).fire);
  EXPECT_TRUE(util::fault_hit(FaultPoint::CrashAfterAppend).fire);
  EXPECT_FALSE(util::fault_hit(FaultPoint::TornWrite).fire);
  util::fault_arm("");
}

TEST(FaultHit, ArmFromEnvironment) {
  ::setenv("SM_FAULT", "torn-write:1", 1);
  util::fault_arm_from_env();
  ::unsetenv("SM_FAULT");
  EXPECT_TRUE(util::fault_hit(FaultPoint::TornWrite).fire);
  EXPECT_FALSE(util::fault_hit(FaultPoint::CrashBeforeAppend).fire);
  util::fault_arm("");
}

// ------------------------------------------------- child-process round trip

// Helper run *in a child process* by FaultEnv.RoundTripsThroughChildEnv:
// re-executes this test binary with SM_FAULT in the environment and no
// explicit fault_arm call, so the lazy arm-on-first-hit path is what gets
// exercised — exactly how a spawned sm_flow worker arms itself.
TEST(FaultChildMode, CrashWhenEnvArmed) {
  if (!std::getenv("SM_FAULT_TEST_CHILD"))
    GTEST_SKIP() << "helper body for FaultEnv.RoundTripsThroughChildEnv";
  // SM_FAULT=crash-before-append:2 — the first hit must pass, the second
  // must fire, and the crash must surface as kFaultCrashExit.
  if (util::fault_hit(FaultPoint::CrashBeforeAppend).fire)
    util::fault_crash(FaultPoint::CrashBeforeAppend);
  if (util::fault_hit(FaultPoint::CrashBeforeAppend).fire)
    util::fault_crash(FaultPoint::CrashBeforeAppend);
  // Reaching here means the nth trigger never fired: exit 0, which the
  // parent reads as round-trip failure when it expected a crash.
}

TEST(FaultEnv, RoundTripsThroughChildEnv) {
  const std::string exe = util::self_exe_path();
  ASSERT_FALSE(exe.empty());
  const std::vector<std::string> argv = {
      exe, "--gtest_filter=FaultChildMode.CrashWhenEnvArmed"};

  // Armed child: dies with the fault exit code on its second hit.
  auto armed = util::Child::spawn(
      argv, {{"SM_FAULT", "crash-before-append:2"},
             {"SM_FAULT_TEST_CHILD", "1"}});
  const auto st = armed.wait();
  EXPECT_TRUE(st.exited);
  EXPECT_EQ(st.code, util::kFaultCrashExit) << st.describe();

  // Unarmed child (empty SM_FAULT): both hits pass, process exits clean.
  auto unarmed = util::Child::spawn(
      argv, {{"SM_FAULT", ""}, {"SM_FAULT_TEST_CHILD", "1"}});
  EXPECT_TRUE(unarmed.wait().ok());
}

}  // namespace
