// Verilog writer/reader round-trip tests.
#include "netlist/netlist.hpp"
#include "netlist/topo.hpp"
#include "netlist/verilog.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm::netlist;

TEST(Verilog, PinNaming) {
  EXPECT_EQ(input_pin_name(0), "A");
  EXPECT_EQ(input_pin_name(2), "C");
  EXPECT_EQ(input_pin_index("A"), 0);
  EXPECT_EQ(input_pin_index("D"), 3);
  EXPECT_EQ(input_pin_index("Y"), -1);
  EXPECT_EQ(input_pin_index("AB"), -1);
}

TEST(Verilog, WriteContainsStructure) {
  CellLibrary lib;
  Netlist nl(lib, "t");
  const NetId a = nl.add_primary_input("a");
  const CellId g = nl.add_cell("u1", lib.id_of("INV_X1"));
  nl.connect_input(g, 0, a);
  nl.add_primary_output("y", nl.cell(g).output);
  const std::string v = to_verilog(nl);
  EXPECT_NE(v.find("module t"), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output y;"), std::string::npos);
  EXPECT_NE(v.find("INV_X1 u1"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, RoundTripPreservesFunction) {
  CellLibrary lib;
  sm::workloads::GenSpec spec;
  spec.name = "rt";
  spec.num_pi = 12;
  spec.num_po = 6;
  spec.num_gates = 150;
  const Netlist nl = sm::workloads::generate(lib, spec, 99);

  const Netlist back = read_verilog_string(lib, to_verilog(nl));
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  EXPECT_EQ(back.primary_inputs().size(), nl.primary_inputs().size());
  EXPECT_EQ(back.primary_outputs().size(), nl.primary_outputs().size());
  EXPECT_TRUE(sm::sim::equivalent(nl, back, 4096, 1));
}

TEST(Verilog, RoundTripSequential) {
  CellLibrary lib;
  sm::workloads::GenSpec spec;
  spec.name = "rtseq";
  spec.num_pi = 10;
  spec.num_po = 5;
  spec.num_gates = 120;
  spec.dff_fraction = 0.2;
  const Netlist nl = sm::workloads::generate(lib, spec, 7);
  const Netlist back = read_verilog_string(lib, to_verilog(nl));
  EXPECT_TRUE(sm::sim::equivalent(nl, back, 2048, 2));
}

TEST(Verilog, RejectsUnknownCell) {
  CellLibrary lib;
  const std::string bad =
      "module m (a, y);\n input a;\n output y;\n"
      " MYSTERY_X1 u1 (.A(a), .Y(y));\nendmodule\n";
  EXPECT_THROW(read_verilog_string(lib, bad), std::runtime_error);
}

TEST(Verilog, RejectsUndrivenNet) {
  CellLibrary lib;
  const std::string bad =
      "module m (a, y);\n input a;\n output y;\n wire w;\n"
      " INV_X1 u1 (.A(w), .Y(y));\nendmodule\n";
  EXPECT_THROW(read_verilog_string(lib, bad), std::runtime_error);
}

TEST(Verilog, ParsesCommentsAndWhitespace) {
  CellLibrary lib;
  const std::string src =
      "// header comment\nmodule m (a, y);\n"
      "  input a; // the input\n  output y;\n"
      "  INV_X1 u1 (.A(a), .Y(y));\nendmodule\n";
  const Netlist nl = read_verilog_string(lib, src);
  EXPECT_EQ(nl.num_gates(), 1u);
}

}  // namespace
