// STA and power model tests: arrival-time monotonicity, load dependence,
// parasitic extraction from routes, PPA report consistency.
#include "core/protect.hpp"
#include "sim/simulator.hpp"
#include "timing/sta.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm;
using netlist::CellId;
using netlist::CellLibrary;
using netlist::NetId;
using netlist::Netlist;
using timing::NetParasitics;
using timing::Sta;

class TimingTest : public ::testing::Test {
 protected:
  CellLibrary lib;
};

// Two-inverter chain with controllable wire parasitics.
struct Chain {
  Netlist nl;
  NetId in_net, mid_net, out_net;
  explicit Chain(const CellLibrary& lib) : nl(lib, "chain") {
    in_net = nl.add_primary_input("a");
    const CellId g1 = nl.add_cell("g1", lib.id_of("INV_X1"));
    nl.connect_input(g1, 0, in_net);
    mid_net = nl.cell(g1).output;
    const CellId g2 = nl.add_cell("g2", lib.id_of("INV_X1"));
    nl.connect_input(g2, 0, mid_net);
    out_net = nl.cell(g2).output;
    nl.add_primary_output("y", out_net);
  }
};

TEST_F(TimingTest, ArrivalAccumulatesAlongPath) {
  Chain c(lib);
  std::vector<NetParasitics> par(c.nl.num_nets());
  Sta sta;
  const auto arrival = sta.arrival_times(c.nl, par);
  EXPECT_GT(arrival[c.mid_net], 0.0);
  EXPECT_GT(arrival[c.out_net], arrival[c.mid_net]);
  EXPECT_DOUBLE_EQ(arrival[c.in_net], 0.0);  // PI launches at t=0
}

TEST_F(TimingTest, WireResistanceAddsDelay) {
  Chain c(lib);
  std::vector<NetParasitics> clean(c.nl.num_nets());
  std::vector<NetParasitics> loaded(c.nl.num_nets());
  loaded[c.mid_net].cap_ff = 50.0;
  loaded[c.mid_net].res_kohm = 2.0;
  Sta sta;
  const double d_clean = sta.critical_path_ps(c.nl, clean);
  const double d_loaded = sta.critical_path_ps(c.nl, loaded);
  EXPECT_GT(d_loaded, d_clean + 50.0);  // RC on the middle net must show up
}

TEST_F(TimingTest, StrongerDriverIsFaster) {
  auto delay_with = [&](const char* buf) {
    Netlist nl(lib, "d");
    const NetId a = nl.add_primary_input("a");
    const CellId g = nl.add_cell("g", lib.id_of(buf));
    nl.connect_input(g, 0, a);
    // Heavy fanout load.
    for (int i = 0; i < 6; ++i) {
      const CellId s = nl.add_cell("s" + std::to_string(i), lib.id_of("INV_X1"));
      nl.connect_input(s, 0, nl.cell(g).output);
      nl.add_primary_output("y" + std::to_string(i), nl.cell(s).output);
    }
    std::vector<NetParasitics> par(nl.num_nets());
    return Sta().critical_path_ps(nl, par);
  };
  EXPECT_LT(delay_with("BUF_X8"), delay_with("BUF_X1"));
}

TEST_F(TimingTest, NetExtraAddsDelayAndPower) {
  Chain c(lib);
  std::vector<NetParasitics> par(c.nl.num_nets());
  std::vector<timing::NetExtra> extra(c.nl.num_nets());
  extra[c.mid_net].delay_ps = 100.0;
  Sta sta;
  const double base = sta.critical_path_ps(c.nl, par);
  const double with = sta.critical_path_ps(c.nl, par, extra);
  EXPECT_NEAR(with - base, 100.0, 1e-9);
}

TEST_F(TimingTest, SequentialPathsCutAtDff) {
  // in -> INV -> DFF -> INV -> out: the critical path is the max of the two
  // half-paths, not their sum.
  Netlist nl(lib, "seq");
  const NetId a = nl.add_primary_input("a");
  const CellId i1 = nl.add_cell("i1", lib.id_of("INV_X1"));
  nl.connect_input(i1, 0, a);
  const CellId ff = nl.add_cell("ff", lib.dff());
  nl.connect_input(ff, 0, nl.cell(i1).output);
  const CellId i2 = nl.add_cell("i2", lib.id_of("INV_X1"));
  nl.connect_input(i2, 0, nl.cell(ff).output);
  nl.add_primary_output("y", nl.cell(i2).output);

  Netlist comb(lib, "comb");  // same depth without the DFF
  const NetId b = comb.add_primary_input("a");
  const CellId j1 = comb.add_cell("i1", lib.id_of("INV_X1"));
  comb.connect_input(j1, 0, b);
  const CellId j2 = comb.add_cell("i2", lib.id_of("INV_X1"));
  comb.connect_input(j2, 0, comb.cell(j1).output);
  comb.add_primary_output("y", comb.cell(j2).output);

  std::vector<NetParasitics> p1(nl.num_nets()), p2(comb.num_nets());
  Sta sta;
  EXPECT_LT(sta.critical_path_ps(nl, p1), sta.critical_path_ps(comb, p2));
}

TEST_F(TimingTest, ExtractParasiticsFromRoutes) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c432"), 1);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  const auto layout = core::layout_original(nl, flow);
  const auto par = timing::extract_parasitics(nl, layout.routing);
  ASSERT_EQ(par.size(), nl.num_nets());
  double total_cap = 0;
  for (const auto& p : par) {
    EXPECT_GE(p.cap_ff, 0.0);
    EXPECT_GE(p.res_kohm, 0.0);
    total_cap += p.cap_ff;
  }
  EXPECT_GT(total_cap, 0.0);
  // Longer wires must mean more capacitance: compare against the HPWL
  // estimate, which should correlate (same ballpark, not orders off).
  const auto est = timing::estimate_parasitics(nl, layout.placement);
  double est_cap = 0;
  for (const auto& p : est) est_cap += p.cap_ff;
  EXPECT_GT(total_cap, est_cap * 0.5);
  EXPECT_LT(total_cap, est_cap * 8.0);
}

TEST_F(TimingTest, PpaReportConsistency) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c880"), 2);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  const auto layout = core::layout_original(nl, flow);
  const auto& rep = layout.ppa;
  EXPECT_GT(rep.critical_path_ps, 0.0);
  EXPECT_GT(rep.dynamic_power_uw, 0.0);
  EXPECT_GT(rep.leakage_power_uw, 0.0);
  EXPECT_DOUBLE_EQ(rep.total_power_uw(),
                   rep.dynamic_power_uw + rep.leakage_power_uw);
  EXPECT_DOUBLE_EQ(rep.die_area_um2, layout.placement.floorplan.die.area());
  EXPECT_DOUBLE_EQ(rep.wirelength_um, layout.routing.stats.total_wire_um());
}

TEST_F(TimingTest, ActivityScalesDynamicPower) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c432"), 3);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  const auto layout = core::layout_original(nl, flow);
  Sta sta;
  const std::vector<double> quiet(nl.num_nets(), 0.01);
  const std::vector<double> busy(nl.num_nets(), 0.4);
  const auto rep_quiet =
      sta.analyze(nl, layout.placement, layout.routing, quiet);
  const auto rep_busy = sta.analyze(nl, layout.placement, layout.routing, busy);
  EXPECT_GT(rep_busy.dynamic_power_uw, rep_quiet.dynamic_power_uw * 10);
  EXPECT_DOUBLE_EQ(rep_busy.leakage_power_uw, rep_quiet.leakage_power_uw);
}

TEST_F(TimingTest, RejectsMismatchedParasitics) {
  Chain c(lib);
  std::vector<NetParasitics> wrong(c.nl.num_nets() + 3);
  EXPECT_THROW(Sta().arrival_times(c.nl, wrong), std::invalid_argument);
}

}  // namespace
