// Metrics helpers and DEF export/round-trip tests.
#include "core/defio.hpp"
#include "core/protect.hpp"
#include "metrics/report.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace sm;
using netlist::CellLibrary;
using netlist::NetId;

class MetricsTest : public ::testing::Test {
 protected:
  CellLibrary lib;
  core::FlowOptions flow() const {
    core::FlowOptions f;
    f.placer.target_utilization = 0.45;
    return f;
  }
};

TEST_F(MetricsTest, ConnectionDistancesCountEverySink) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c432"), 1);
  place::Placer placer;
  const auto pl = placer.place(nl);
  std::size_t sinks = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) sinks += nl.net(n).sinks.size();
  EXPECT_EQ(metrics::all_connection_distances(nl, pl).size(), sinks);

  const std::vector<NetId> subset{0, 1, 2};
  std::size_t expect = 0;
  for (const NetId n : subset) expect += nl.net(n).sinks.size();
  EXPECT_EQ(metrics::connection_distances(nl, pl, subset).size(), expect);
}

TEST_F(MetricsTest, LayerSharesSumTo100) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c880"), 2);
  const auto layout = core::layout_original(nl, flow());
  const auto wire = metrics::per_layer_wirelength(layout.routing);
  const auto share = metrics::layer_shares(wire);
  double sum = 0;
  for (const double s : share) sum += s;
  EXPECT_NEAR(sum, 100.0, 1e-6);
  // Restricting to a subset never yields more wire than the whole.
  const auto some = metrics::per_layer_wirelength(layout.routing, {0, 1, 2, 3});
  for (std::size_t l = 0; l < wire.size(); ++l) EXPECT_LE(some[l], wire[l] + 1e-9);
}

TEST_F(MetricsTest, LayerSharesEmptyIsZero) {
  std::array<double, netlist::MetalStack::kNumLayers + 1> none{};
  const auto share = metrics::layer_shares(none);
  for (const double s : share) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST_F(MetricsTest, ViaDeltaPercentAndAbsolute) {
  route::RoutingStats base, other;
  base.vias[1] = 100;
  other.vias[1] = 130;
  base.vias[7] = 0;
  other.vias[7] = 55;
  const auto d = metrics::via_delta(base, other);
  EXPECT_DOUBLE_EQ(d.pct[1], 30.0);
  EXPECT_EQ(d.cell(1), "30.00%");
  EXPECT_EQ(d.cell(7), "+55");
  EXPECT_EQ(d.cell(5), "0");
}

class DefTest : public ::testing::Test {
 protected:
  CellLibrary lib{6};
};

TEST_F(DefTest, FullExportContainsEverything) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c432"), 1);
  core::FlowOptions f;
  f.placer.target_utilization = 0.45;
  const auto layout = core::layout_original(nl, f);
  const std::string def =
      core::to_def(nl, layout.placement, layout.routing, layout.tasks);
  std::istringstream is(def);
  const auto s = core::read_def_summary(is);
  EXPECT_EQ(s.design, nl.name());
  EXPECT_EQ(s.components, nl.num_gates());
  EXPECT_EQ(s.nets, layout.tasks.size());
  std::size_t segs = 0;
  for (const auto c : s.segments) segs += c;
  EXPECT_GT(segs, nl.num_nets());  // routed wires exist
}

TEST_F(DefTest, SplitExportHidesBeol) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c880"), 2);
  core::FlowOptions f;
  f.placer.target_utilization = 0.45;
  core::RandomizeOptions r;
  r.seed = 4;
  const auto design = core::protect(nl, r, f);
  std::ostringstream full_os, split_os;
  core::write_def(design.erroneous, design.layout.placement,
                  design.layout.routing, design.layout.tasks, full_os);
  core::write_split_def(design.erroneous, design.layout.placement,
                        design.layout.routing, design.layout.tasks,
                        design.layout.num_net_tasks, 4, split_os);
  std::istringstream full_is(full_os.str()), split_is(split_os.str());
  const auto full = core::read_def_summary(full_is);
  const auto split = core::read_def_summary(split_is);

  // The FEOL view exposes vpins, has no wiring above the split layer, and
  // no BEOL restoration wires.
  EXPECT_GT(split.vpins, 0u);
  EXPECT_EQ(full.vpins, 0u);
  for (int l = 5; l <= 10; ++l)
    EXPECT_EQ(split.segments[static_cast<std::size_t>(l)], 0u);
  EXPECT_GT(full.segments[8] + full.segments[9], 0u);  // lifted wiring at M8+
  EXPECT_LT(split.nets, full.nets);  // restoration wires removed
  EXPECT_EQ(split.components, full.components);
}

TEST_F(DefTest, VpinCountMatchesSplitView) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c432"), 3);
  core::FlowOptions f;
  f.placer.target_utilization = 0.45;
  const auto layout = core::layout_original(nl, f);
  const auto view = core::split_layout(nl, layout.placement, layout.routing,
                                       layout.tasks, layout.num_net_tasks, 3);
  std::ostringstream os;
  core::write_split_def(nl, layout.placement, layout.routing, layout.tasks,
                        layout.num_net_tasks, 3, os);
  std::istringstream is(os.str());
  EXPECT_EQ(core::read_def_summary(is).vpins, view.num_vpins());
}

}  // namespace
