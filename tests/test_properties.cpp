// Property-based suites (TEST_P sweeps): the invariants the paper's flow
// must hold on *every* benchmark and seed, not just the ones unit tests
// happen to pick.
//
//  P1. Restoration is exact: protect() then netlist-level restore is
//      functionally equivalent to the original, for every benchmark.
//  P2. Interfaces are preserved: the erroneous netlist has the same cells,
//      PIs, POs, and DFFs as the original.
//  P3. The erroneous netlist is combinationally acyclic and valid.
//  P4. Lifted nets keep all lateral wiring at/above the lift layer.
//  P5. Zero die-area overhead: the protected die equals the original die.
//  P6. The fabricated layout routes completely (no failed nets).
//  P7. Determinism: the whole protect() flow is a pure function of
//      (netlist, options).
#include "core/protect.hpp"
#include "core/split.hpp"
#include "netlist/topo.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm;
using netlist::CellLibrary;
using netlist::NetId;

struct Case {
  std::string bench;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.bench + "_s" + std::to_string(info.param.seed);
}

class ProtectProperties : public ::testing::TestWithParam<Case> {
 protected:
  CellLibrary lib{6};
  core::FlowOptions flow() const {
    core::FlowOptions f;
    f.lift_layer = 6;
    f.router.passes = 2;
    f.placer.detailed_passes = 1;
    f.placer.target_utilization = 0.45;
    return f;
  }
  core::RandomizeOptions rand_opts() const {
    core::RandomizeOptions r;
    r.seed = GetParam().seed;
    r.check_patterns = 1024;
    r.max_swaps = 64;  // keep the sweep fast
    return r;
  }
};

TEST_P(ProtectProperties, EndToEndInvariants) {
  const auto nl = workloads::generate(
      lib, workloads::iscas85_profile(GetParam().bench), GetParam().seed);
  const auto original = core::layout_original(nl, flow());
  const auto design = core::protect(nl, rand_opts(), flow());

  // P1: restoration equivalence (checked inside protect, re-checked here).
  EXPECT_TRUE(design.restored_ok);
  auto restored = design.erroneous.clone();
  core::restore_netlist(restored, design.ledger);
  EXPECT_TRUE(sim::equivalent(nl, restored, 2048, GetParam().seed));

  // P2: interface preservation.
  EXPECT_EQ(design.erroneous.num_cells(), nl.num_cells());
  EXPECT_EQ(design.erroneous.num_nets(), nl.num_nets());
  EXPECT_EQ(design.erroneous.primary_inputs(), nl.primary_inputs());
  EXPECT_EQ(design.erroneous.primary_outputs(), nl.primary_outputs());

  // P3: acyclic + valid.
  EXPECT_TRUE(netlist::is_acyclic(design.erroneous));
  EXPECT_NO_THROW(design.erroneous.validate());

  // P4: lifting respected on every protected-net route.
  const auto protected_nets = design.ledger.protected_nets();
  const std::vector<bool> is_protected = [&] {
    std::vector<bool> v(nl.num_nets(), false);
    for (const NetId n : protected_nets) v[n] = true;
    return v;
  }();
  for (std::size_t ti = 0; ti < design.layout.num_net_tasks; ++ti) {
    const auto& route = design.layout.routing.routes[ti];
    if (route.net == netlist::kInvalidNet || !is_protected[route.net]) continue;
    for (const auto& seg : route.segments) {
      if (!seg.is_via()) {
        ASSERT_GE(seg.a.layer, 6)
            << "lateral wire below lift layer on net " << route.net;
      }
    }
  }

  // P5: zero area overhead.
  EXPECT_DOUBLE_EQ(design.layout.ppa.die_area_um2, original.ppa.die_area_um2);

  // P6: complete routing.
  EXPECT_EQ(design.layout.routing.stats.failed_nets, 0u);

  // P7: determinism.
  const auto again = core::protect(nl, rand_opts(), flow());
  EXPECT_EQ(again.ledger.entries.size(), design.ledger.entries.size());
  EXPECT_DOUBLE_EQ(again.oer, design.oer);
  EXPECT_DOUBLE_EQ(again.layout.ppa.total_power_uw(),
                   design.layout.ppa.total_power_uw());
}

TEST_P(ProtectProperties, SplitViewsAreConsistent) {
  const auto nl = workloads::generate(
      lib, workloads::iscas85_profile(GetParam().bench), GetParam().seed);
  const auto design = core::protect(nl, rand_opts(), flow());
  std::size_t prev_vpins = static_cast<std::size_t>(-1);
  for (const int split : {2, 3, 4, 5}) {
    const auto view = core::split_layout(
        design.erroneous, design.layout.placement, design.layout.routing,
        design.layout.tasks, design.layout.num_net_tasks, split);
    // Each fragment's net is real and each vpin sits at the split layer.
    for (const auto& f : view.fragments) {
      ASSERT_LT(f.net, design.erroneous.num_nets());
      for (const auto& v : f.vpins) ASSERT_EQ(v.grid.layer, split);
    }
    // vpins weakly decrease while the split stays below the lift layer...
    // not strictly (stacks are constant) — just require presence.
    EXPECT_GT(view.num_vpins(), 0u);
    prev_vpins = view.num_vpins();
  }
  (void)prev_vpins;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtectProperties,
    ::testing::Values(Case{"c432", 1}, Case{"c432", 2}, Case{"c880", 1},
                      Case{"c1355", 7}, Case{"c1908", 3}, Case{"c2670", 1},
                      Case{"c3540", 5}, Case{"c5315", 2}, Case{"c6288", 1},
                      Case{"c7552", 4}),
    case_name);

// Randomizer-specific property: swapping is an involution recorded in the
// ledger — replaying entries forward from the original reproduces the
// erroneous netlist exactly.
class LedgerReplay : public ::testing::TestWithParam<Case> {};

TEST_P(LedgerReplay, ForwardReplayReproducesErroneous) {
  CellLibrary lib{6};
  const auto nl = workloads::generate(
      lib, workloads::iscas85_profile(GetParam().bench), GetParam().seed);
  core::RandomizeOptions opts;
  opts.seed = GetParam().seed ^ 0xabcULL;
  opts.max_swaps = 32;
  const auto result = core::randomize(nl, opts);

  auto replay = nl.clone();
  for (const auto& e : result.ledger.entries) {
    replay.reconnect_sink(e.sink_a.cell, e.sink_a.pin, e.net_b);
    replay.reconnect_sink(e.sink_b.cell, e.sink_b.pin, e.net_a);
  }
  for (netlist::CellId c = 0; c < nl.num_cells(); ++c)
    ASSERT_EQ(replay.cell(c).inputs, result.erroneous.cell(c).inputs);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LedgerReplay,
                         ::testing::Values(Case{"c432", 9}, Case{"c1355", 11},
                                           Case{"c2670", 13}),
                         case_name);

}  // namespace
