// Tests for the fault-tolerant sweep supervisor (sweep/supervisor.hpp) and
// the quarantine semantics it layers onto the store: work-unit expansion,
// worker grid-spec round trips, deterministic backoff, the serve() loop
// against /bin/sh stand-in workers (success, poison cell, partial
// progress, watchdog, pre-stored state), failed-record serialization with
// ok-beats-failed merging, degraded materialization, and sweep resume
// skipping quarantined cells.
#include "sweep/supervisor.hpp"

#include "sweep/store.hpp"
#include "util/subprocess.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using namespace sm;

// A small 2-cell grid: one (benchmark, seed, defense) task, two splits.
sweep::Grid two_cell_grid() {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {3, 4};
  grid.defenses = {sweep::Defense::Unprotected};
  return grid;
}

// A synthetic completed record for `cell` — coordinates + dummy metrics,
// enough for load_store/serve to treat the cell as done.
sweep::StoreRecord record_for(const sweep::Grid& grid,
                              const sweep::Options& opts,
                              const sweep::CellRef& cell) {
  sweep::StoreRecord rec;
  rec.config_hash = cell.config_hash;
  rec.patterns = opts.patterns;
  rec.scale = grid.scale;
  rec.row.benchmark = cell.benchmark;
  rec.row.seed = cell.seed;
  rec.row.split_layer = cell.split_layer;
  rec.row.defense = cell.defense;
  rec.row.attacker = cell.attacker;
  rec.row.ccr = 0.5;
  rec.row.open_sinks = 7;
  return rec;
}

std::string temp_store(const char* name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const auto& l : lines) out << l << "\n";
}

// A ServeOptions::command that runs `script` through /bin/sh regardless of
// the work unit — the stand-in workers the serve() tests dispatch.
sweep::ServeOptions sh_serve(const std::string& store,
                             const std::string& script) {
  sweep::ServeOptions opts;
  opts.sweep.store_path = store;
  opts.cell_timeout_s = 60;
  opts.backoff_base_ms = 1;
  opts.command = [script](const sweep::WorkUnit&) {
    return std::vector<std::string>{"/bin/sh", "-c", script};
  };
  return opts;
}

// ------------------------------------------------------------- units ---

TEST(WorkUnits, PartitionCellsTaskMajor) {
  sweep::Grid grid;
  grid.benchmarks = {"c432", "c880"};
  grid.seeds = {1, 2};
  grid.split_layers = {3, 4};
  grid.defenses = {sweep::Defense::Unprotected, sweep::Defense::Proposed};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting};
  const sweep::Options opts;

  const auto cells = sweep::expand_cells(grid, opts);
  const auto units = sweep::work_units(grid, opts);
  ASSERT_EQ(units.size(), 8u);  // 2 benchmarks x 2 seeds x 2 defenses

  // Concatenating the units' cells reproduces expand_cells exactly, and
  // every unit is homogeneous in its task coordinates.
  std::size_t k = 0;
  for (const auto& u : units) {
    ASSERT_EQ(u.cells.size(), 4u);  // 2 splits x 2 attackers
    for (const auto& cell : u.cells) {
      EXPECT_EQ(cell.config_hash, cells[k].config_hash);
      EXPECT_EQ(cell.benchmark, u.benchmark);
      EXPECT_EQ(cell.seed, u.seed);
      EXPECT_EQ(cell.defense, u.defense);
      EXPECT_EQ(cell.task_index, u.task_index);
      ++k;
    }
  }
  EXPECT_EQ(k, cells.size());
}

TEST(WorkerGridSpec, RoundTripsToIdenticalHashes) {
  sweep::Grid grid;
  grid.benchmarks = {"c432", "c880"};
  grid.seeds = {1, 9};
  grid.split_layers = {3, 4, 5};
  grid.defenses = {sweep::Defense::Proposed, sweep::Defense::PinSwap};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting};
  grid.scale = 1.0 / 3.0;  // no short decimal form: bit-exactness matters
  const sweep::Options opts;

  for (const auto& unit : sweep::work_units(grid, opts)) {
    const auto spec = sweep::worker_grid_spec(grid, unit);
    const auto worker_grid = sweep::Grid::parse(spec);
    EXPECT_EQ(worker_grid.scale, grid.scale) << spec;
    const auto worker_cells = sweep::expand_cells(worker_grid, opts);
    ASSERT_EQ(worker_cells.size(), unit.cells.size()) << spec;
    for (std::size_t i = 0; i < worker_cells.size(); ++i)
      EXPECT_EQ(worker_cells[i].config_hash, unit.cells[i].config_hash)
          << spec;
  }
}

// ----------------------------------------------------------- backoff ---

TEST(Backoff, DeterministicJitteredAndCapped) {
  // Pure function of (attempt, base, seed, salt).
  EXPECT_EQ(sweep::backoff_delay_ms(0, 100, 1, 0), 0.0);
  EXPECT_EQ(sweep::backoff_delay_ms(3, 100, 1, 5),
            sweep::backoff_delay_ms(3, 100, 1, 5));
  // Exponential envelope with jitter in [1, 1.5).
  for (std::size_t attempt = 1; attempt <= 6; ++attempt) {
    const double expo = 100.0 * static_cast<double>(1u << (attempt - 1));
    const double d = sweep::backoff_delay_ms(attempt, 100, 1, 0);
    EXPECT_GE(d, expo) << attempt;
    EXPECT_LT(d, 1.5 * expo) << attempt;
  }
  // The exponential part caps at 60 s no matter how many attempts.
  const double huge = sweep::backoff_delay_ms(40, 1000, 1, 0);
  EXPECT_GE(huge, 60000.0);
  EXPECT_LT(huge, 90000.0);
  // Different salts (task indices) de-synchronize sibling retries.
  EXPECT_NE(sweep::backoff_delay_ms(1, 100, 1, 0),
            sweep::backoff_delay_ms(1, 100, 1, 1));
}

// ------------------------------------------------------------- serve ---

TEST(Serve, ValidatesOptions) {
  const auto grid = two_cell_grid();
  sweep::ServeOptions opts;  // no store path
  EXPECT_THROW(sweep::serve(grid, opts), std::invalid_argument);
  opts.sweep.store_path = temp_store("sm_serve_validate.jsonl");
  opts.sweep.resume = true;
  EXPECT_THROW(sweep::serve(grid, opts), std::invalid_argument);
  opts.sweep.resume = false;
  opts.sweep.shard_count = 2;
  EXPECT_THROW(sweep::serve(grid, opts), std::invalid_argument);
  opts.sweep.shard_count = 1;
  opts.cell_timeout_s = 0;
  EXPECT_THROW(sweep::serve(grid, opts), std::invalid_argument);
  opts.cell_timeout_s = 60;
  opts.max_retries = 0;
  EXPECT_THROW(sweep::serve(grid, opts), std::invalid_argument);
}

TEST(Serve, BadWorkerCommandSurfacesAsError) {
  const auto grid = two_cell_grid();
  auto opts = sh_serve(temp_store("sm_serve_exec_fail.jsonl"), "exit 0");
  opts.command = [](const sweep::WorkUnit&) {
    return std::vector<std::string>{"/no/such/binary/anywhere"};
  };
  EXPECT_THROW(sweep::serve(grid, opts), std::runtime_error);
}

TEST(Serve, ConvergesWhenWorkersAppendRecords) {
  const auto grid = two_cell_grid();
  const auto store = temp_store("sm_serve_happy.jsonl");
  const auto payload = temp_store("sm_serve_happy_payload.jsonl");

  sweep::ServeOptions opts;
  opts.sweep.store_path = store;
  const auto cells = sweep::expand_cells(grid, opts.sweep);
  ASSERT_EQ(cells.size(), 2u);
  std::vector<std::string> lines;
  for (const auto& cell : cells)
    lines.push_back(sweep::to_store_line(record_for(grid, opts.sweep, cell)));
  write_lines(payload, lines);

  opts = sh_serve(store, "cat " + payload + " >> " + store);
  const auto report = sweep::serve(grid, opts);
  EXPECT_EQ(report.total_cells, 2u);
  EXPECT_EQ(report.computed, 2u);
  EXPECT_EQ(report.workers_spawned, 1u);
  EXPECT_EQ(report.worker_deaths, 0u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.degraded());

  const auto loaded = sweep::load_store({store}, /*must_exist=*/true);
  EXPECT_EQ(loaded.records.size(), 2u);
  std::remove(store.c_str());
  std::remove(payload.c_str());
}

TEST(Serve, PartialProgressPerAttemptStillConverges) {
  // Each attempt lands exactly one record, then dies — the store makes
  // every attempt forward progress. The second attempt lands the last
  // missing record before dying, and a worker whose unit is complete
  // counts as a success even if it died on the way out (crash-after-append
  // is invisible), so only the first death is charged.
  const auto grid = two_cell_grid();
  const auto store = temp_store("sm_serve_partial.jsonl");
  const auto l0 = temp_store("sm_serve_partial_l0.jsonl");
  const auto l1 = temp_store("sm_serve_partial_l1.jsonl");

  sweep::ServeOptions opts;
  opts.sweep.store_path = store;
  const auto cells = sweep::expand_cells(grid, opts.sweep);
  ASSERT_EQ(cells.size(), 2u);
  write_lines(l0, {sweep::to_store_line(record_for(grid, opts.sweep, cells[0]))});
  write_lines(l1, {sweep::to_store_line(record_for(grid, opts.sweep, cells[1]))});

  const std::string script =
      "if ! grep -q " + cells[0].config_hash + " " + store + "; then cat " +
      l0 + " >> " + store + "; exit 70; fi; " +
      "if ! grep -q " + cells[1].config_hash + " " + store + "; then cat " +
      l1 + " >> " + store + "; exit 70; fi; exit 0";
  opts = sh_serve(store, script);
  opts.max_retries = 5;
  const auto report = sweep::serve(grid, opts);
  EXPECT_EQ(report.computed, 2u);
  EXPECT_EQ(report.workers_spawned, 2u);
  EXPECT_EQ(report.worker_deaths, 1u);  // the first attempt; the second won
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.degraded());
  std::remove(store.c_str());
  std::remove(l0.c_str());
  std::remove(l1.c_str());
}

TEST(Serve, QuarantinesPoisonCellsAfterMaxRetries) {
  const auto grid = two_cell_grid();
  const auto store = temp_store("sm_serve_poison.jsonl");
  auto opts = sh_serve(store, "exit 7");  // appends nothing, always dies
  opts.max_retries = 2;

  std::vector<std::string> log;
  opts.log = [&log](const std::string& m) { log.push_back(m); };
  const auto report = sweep::serve(grid, opts);

  // Blame walks the unit cell by cell: 2 deaths quarantine the first cell,
  // 2 more the second — bounded, no stall.
  EXPECT_EQ(report.total_cells, 2u);
  EXPECT_EQ(report.computed, 0u);
  EXPECT_EQ(report.worker_deaths, 4u);
  EXPECT_EQ(report.workers_spawned, 4u);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_TRUE(report.complete());
  EXPECT_TRUE(report.degraded());
  EXPECT_FALSE(log.empty());

  // The quarantine records are in the log, marked failed with the attempt
  // count, and a re-serve skips them without spawning anything.
  const auto loaded = sweep::load_store({store}, /*must_exist=*/true);
  ASSERT_EQ(loaded.records.size(), 2u);
  for (const auto& [hash, rec] : loaded.records) {
    EXPECT_TRUE(rec.failed) << hash;
    EXPECT_EQ(rec.attempts, 2u) << hash;
  }
  const auto again = sweep::serve(grid, opts);
  EXPECT_EQ(again.workers_spawned, 0u);
  EXPECT_EQ(again.pre_quarantined, 2u);
  EXPECT_TRUE(again.complete());
  EXPECT_TRUE(again.degraded());
  std::remove(store.c_str());
}

TEST(Serve, WatchdogKillsHungWorkers) {
  const auto grid = two_cell_grid();
  const auto store = temp_store("sm_serve_hang.jsonl");
  auto opts = sh_serve(store, "sleep 30");
  opts.cell_timeout_s = 0.05;  // 2 missing cells -> 100 ms deadline
  opts.max_retries = 1;        // first death quarantines

  const auto report = sweep::serve(grid, opts);
  EXPECT_EQ(report.watchdog_kills, 2u);
  EXPECT_EQ(report.worker_deaths, 2u);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_TRUE(report.complete());
  std::remove(store.c_str());
}

TEST(Serve, SpawnsNothingWhenStoreAlreadyCovers) {
  const auto grid = two_cell_grid();
  const auto store = temp_store("sm_serve_covered.jsonl");

  sweep::ServeOptions opts;
  opts.sweep.store_path = store;
  const auto cells = sweep::expand_cells(grid, opts.sweep);
  auto ok = record_for(grid, opts.sweep, cells[0]);
  auto failed = record_for(grid, opts.sweep, cells[1]);
  failed.failed = true;
  failed.attempts = 3;
  write_lines(store,
              {sweep::to_store_line(ok), sweep::to_store_line(failed)});

  // Worker command would fail loudly if it ever ran.
  opts = sh_serve(store, "exit 1");
  const auto report = sweep::serve(grid, opts);
  EXPECT_EQ(report.workers_spawned, 0u);
  EXPECT_EQ(report.already_stored, 1u);
  EXPECT_EQ(report.pre_quarantined, 1u);
  EXPECT_EQ(report.computed, 0u);
  EXPECT_TRUE(report.complete());
  EXPECT_TRUE(report.degraded());
  std::remove(store.c_str());
}

// -------------------------------------------------- quarantine records ---

TEST(StoreFailed, ConditionalKeysRoundTrip) {
  const auto grid = two_cell_grid();
  const sweep::Options opts;
  const auto cells = sweep::expand_cells(grid, opts);

  // Healthy records carry neither key — pre-quarantine logs stay
  // byte-identical.
  const auto ok_line = sweep::to_store_line(record_for(grid, opts, cells[0]));
  EXPECT_EQ(ok_line.find("\"status\""), std::string::npos);
  EXPECT_EQ(ok_line.find("\"attempts\""), std::string::npos);

  auto failed = record_for(grid, opts, cells[0]);
  failed.failed = true;
  failed.attempts = 3;
  const auto line = sweep::to_store_line(failed);
  EXPECT_NE(line.find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(line.find("\"attempts\":3"), std::string::npos);

  const auto parsed = sweep::parse_store_line(line);
  EXPECT_TRUE(parsed.failed);
  EXPECT_EQ(parsed.attempts, 3u);
  EXPECT_EQ(parsed.config_hash, failed.config_hash);

  // Unknown status values are torn/foreign lines, not quietly ok.
  std::string bad = line;
  const auto pos = bad.find("\"failed\"");
  bad.replace(pos, 8, "\"wedged\"");
  EXPECT_THROW(sweep::parse_store_line(bad), std::invalid_argument);
}

TEST(StoreFailed, OkBeatsFailedWhateverTheMergeOrder) {
  const auto grid = two_cell_grid();
  const sweep::Options opts;
  const auto cells = sweep::expand_cells(grid, opts);
  const auto ok = record_for(grid, opts, cells[0]);
  auto failed = record_for(grid, opts, cells[0]);
  failed.failed = true;
  failed.attempts = 2;

  const auto path = temp_store("sm_store_ok_beats_failed.jsonl");
  // failed then ok: last wins as usual.
  write_lines(path,
              {sweep::to_store_line(failed), sweep::to_store_line(ok)});
  auto store = sweep::load_store({path}, /*must_exist=*/true);
  EXPECT_FALSE(store.records.at(ok.config_hash).failed);

  // ok then failed: success is sticky — the quarantine marker loses.
  write_lines(path,
              {sweep::to_store_line(ok), sweep::to_store_line(failed)});
  store = sweep::load_store({path}, /*must_exist=*/true);
  EXPECT_FALSE(store.records.at(ok.config_hash).failed);
  EXPECT_EQ(store.records.at(ok.config_hash).row.ccr, ok.row.ccr);

  // failed then failed: ordinary last-wins among quarantine markers.
  auto failed5 = failed;
  failed5.attempts = 5;
  write_lines(path,
              {sweep::to_store_line(failed), sweep::to_store_line(failed5)});
  store = sweep::load_store({path}, /*must_exist=*/true);
  EXPECT_TRUE(store.records.at(ok.config_hash).failed);
  EXPECT_EQ(store.records.at(ok.config_hash).attempts, 5u);
  std::remove(path.c_str());
}

TEST(StoreFailed, MaterializeReportsQuarantinedSeparately) {
  sweep::Grid grid = two_cell_grid();
  grid.split_layers = {3, 4, 5};  // 3 cells: one ok, one failed, one absent
  const sweep::Options opts;
  const auto cells = sweep::expand_cells(grid, opts);
  ASSERT_EQ(cells.size(), 3u);

  auto failed = record_for(grid, opts, cells[1]);
  failed.failed = true;
  failed.attempts = 1;
  const auto path = temp_store("sm_store_mat_quarantine.jsonl");
  write_lines(path, {sweep::to_store_line(record_for(grid, opts, cells[0])),
                     sweep::to_store_line(failed)});

  const auto store = sweep::load_store({path}, /*must_exist=*/true);
  const auto mat = sweep::materialize(grid, opts, store);
  ASSERT_EQ(mat.result.rows.size(), 1u);
  EXPECT_EQ(mat.result.rows[0].split_layer, cells[0].split_layer);
  ASSERT_EQ(mat.quarantined.size(), 1u);
  EXPECT_EQ(mat.quarantined[0].config_hash, cells[1].config_hash);
  ASSERT_EQ(mat.missing.size(), 1u);
  EXPECT_EQ(mat.missing[0].config_hash, cells[2].config_hash);
  std::remove(path.c_str());
}

TEST(SweepResume, SkipsQuarantinedCellsWithoutRecomputing) {
  // A real (tiny) sweep: quarantine one of two cells in the store, resume —
  // the poisoned cell must be skipped (not re-run), its row excluded, and
  // the surviving row bit-identical to a from-scratch run.
  sweep::Grid grid = two_cell_grid();
  sweep::Options opts;
  opts.patterns = 500;

  const auto clean = sweep::run(grid, opts);
  ASSERT_EQ(clean.rows.size(), 2u);

  const auto cells = sweep::expand_cells(grid, opts);
  auto failed = record_for(grid, opts, cells[0]);
  failed.failed = true;
  failed.attempts = 3;
  const auto path = temp_store("sm_sweep_resume_quarantine.jsonl");
  write_lines(path, {sweep::to_store_line(failed)});

  opts.store_path = path;
  opts.resume = true;
  const auto resumed = sweep::run(grid, opts);
  EXPECT_EQ(resumed.quarantined_cells, 1u);
  EXPECT_EQ(resumed.computed_cells, 1u);
  EXPECT_EQ(resumed.resumed_cells, 0u);
  ASSERT_EQ(resumed.rows.size(), 1u);
  EXPECT_EQ(resumed.rows[0].split_layer, clean.rows[1].split_layer);
  EXPECT_EQ(resumed.rows[0].ccr, clean.rows[1].ccr);
  EXPECT_EQ(resumed.rows[0].oer, clean.rows[1].oer);
  EXPECT_EQ(resumed.rows[0].hd, clean.rows[1].hd);
  EXPECT_EQ(resumed.rows[0].open_sinks, clean.rows[1].open_sinks);
  // The quarantine marker still stands in the log (nothing overwrote it).
  const auto store = sweep::load_store({path}, /*must_exist=*/true);
  EXPECT_TRUE(store.records.at(cells[0].config_hash).failed);
  std::remove(path.c_str());
}

}  // namespace
