// Correction-cell library definition generator tests.
#include "core/libgen.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace sm;

TEST(LibGen, LibertyContainsAllPinsAndArcs) {
  netlist::CellLibrary lib{6};
  const std::string text = core::correction_liberty(lib);
  EXPECT_NE(text.find("cell (SM_CORR)"), std::string::npos);
  EXPECT_NE(text.find("cell (SM_LIFT)"), std::string::npos);
  for (const char* pin : {"pin (C)", "pin (D)", "pin (Y)", "pin (Z)"})
    EXPECT_NE(text.find(pin), std::string::npos) << pin;
  // Four timing arcs: both outputs list both inputs as related pins.
  std::size_t arcs = 0;
  for (std::size_t pos = text.find("related_pin"); pos != std::string::npos;
       pos = text.find("related_pin", pos + 1))
    ++arcs;
  EXPECT_GE(arcs, 5u);  // 4 for SM_CORR + 1 for SM_LIFT
  // Zero area: no die footprint.
  EXPECT_NE(text.find("area : 0"), std::string::npos);
}

TEST(LibGen, LefUsesConfiguredLayer) {
  netlist::CellLibrary lib6{6}, lib8{8};
  const std::string lef6 = core::correction_lef(lib6);
  const std::string lef8 = core::correction_lef(lib8);
  EXPECT_NE(lef6.find("LAYER M6"), std::string::npos);
  EXPECT_EQ(lef6.find("LAYER M8"), std::string::npos);
  EXPECT_NE(lef8.find("LAYER M8"), std::string::npos);
  // COVER class = overlap-legal macro.
  EXPECT_NE(lef6.find("CLASS COVER"), std::string::npos);
  for (const char* pin : {"PIN C", "PIN D", "PIN Y", "PIN Z"})
    EXPECT_NE(lef6.find(pin), std::string::npos) << pin;
}

TEST(LibGen, RestoreConstraintsDisableMisleadingArcs) {
  std::ostringstream os;
  core::write_restore_constraints({"u_corr_0", "u_corr_1"}, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("set_disable_timing u_corr_0 -from C -to Z"),
            std::string::npos);
  EXPECT_NE(text.find("set_disable_timing u_corr_1 -from D -to Y"),
            std::string::npos);
  // True arcs are never disabled.
  EXPECT_EQ(text.find("-from C -to Y"), std::string::npos);
  EXPECT_EQ(text.find("-from D -to Z"), std::string::npos);
}

}  // namespace
