// Routing property sweep across benchmarks and seeds (TEST_P):
// completeness, connectivity of every route, stats consistency, and
// determinism of the full netlist routing flow.
#include "core/protect.hpp"
#include "route/router.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace {

using namespace sm;
using netlist::CellLibrary;
using util::GridPoint;

struct RouteCase {
  std::string bench;
  std::uint64_t seed;
};

std::string route_case_name(const ::testing::TestParamInfo<RouteCase>& info) {
  return info.param.bench + "_s" + std::to_string(info.param.seed);
}

class RouterProperties : public ::testing::TestWithParam<RouteCase> {};

TEST_P(RouterProperties, CompleteConsistentDeterministic) {
  CellLibrary lib;
  const auto nl = workloads::generate(
      lib, workloads::iscas85_profile(GetParam().bench), GetParam().seed);
  core::FlowOptions flow;
  flow.placer.target_utilization = 0.45;
  flow.placer.seed = GetParam().seed;
  const auto layout = core::layout_original(nl, flow);

  // Completeness.
  ASSERT_EQ(layout.routing.stats.failed_nets, 0u);

  // Stats recomputed from segments match the reported stats.
  const auto re = route::collect_stats(layout.routing.grid, layout.routing.routes);
  EXPECT_EQ(re.total_vias(), layout.routing.stats.total_vias());
  EXPECT_DOUBLE_EQ(re.total_wire_um(), layout.routing.stats.total_wire_um());

  // Every route is a single connected component touching all its terminals
  // (checked on a sample of nets to bound runtime).
  const auto& grid = layout.routing.grid;
  for (std::size_t ti = 0; ti < layout.tasks.size(); ti += 7) {
    const auto& task = layout.tasks[ti];
    const auto& r = layout.routing.routes[ti];
    std::set<std::size_t> nodes;
    std::map<std::size_t, std::vector<std::size_t>> adj;
    for (const auto& seg : r.segments) {
      GridPoint cur = seg.a;
      while (!(cur == seg.b)) {
        GridPoint nxt = cur;
        if (cur.x != seg.b.x) nxt.x += (seg.b.x > cur.x) ? 1 : -1;
        else if (cur.y != seg.b.y) nxt.y += (seg.b.y > cur.y) ? 1 : -1;
        else nxt.layer += (seg.b.layer > cur.layer) ? 1 : -1;
        const auto ia = grid.index(cur), ib = grid.index(nxt);
        nodes.insert(ia);
        nodes.insert(ib);
        adj[ia].push_back(ib);
        adj[ib].push_back(ia);
        cur = nxt;
      }
    }
    if (nodes.empty()) continue;  // single-gcell net
    std::set<std::size_t> seen{*nodes.begin()};
    std::vector<std::size_t> stack{*nodes.begin()};
    while (!stack.empty()) {
      const auto n = stack.back();
      stack.pop_back();
      for (const auto m : adj[n])
        if (seen.insert(m).second) stack.push_back(m);
    }
    ASSERT_EQ(seen.size(), nodes.size()) << "disconnected route, task " << ti;
    for (const auto& term : task.terminals) {
      const GridPoint pin = grid.snap(term.pos, term.layer);
      ASSERT_TRUE(seen.count(grid.index(pin)) || nodes.count(grid.index(pin)))
          << "terminal unreached, task " << ti;
    }
  }

  // Determinism of the whole flow.
  const auto again = core::layout_original(nl, flow);
  EXPECT_DOUBLE_EQ(again.routing.stats.total_wire_um(),
                   layout.routing.stats.total_wire_um());
  EXPECT_EQ(again.routing.stats.total_vias(),
            layout.routing.stats.total_vias());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RouterProperties,
                         ::testing::Values(RouteCase{"c432", 1},
                                           RouteCase{"c880", 2},
                                           RouteCase{"c1355", 3},
                                           RouteCase{"c1908", 1},
                                           RouteCase{"c2670", 2},
                                           RouteCase{"c3540", 1}),
                         route_case_name);

}  // namespace
