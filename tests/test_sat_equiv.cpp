// SAT solver and layered equivalence-checker tests.
#include "core/equivalence.hpp"
#include "core/randomizer.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm;
using sat::Lit;
using sat::Result;
using sat::Solver;

TEST(SatSolver, TrivialSatAndUnsat) {
  {
    Solver s;
    const int a = s.new_var();
    s.add_clause({Lit::make(a, true)});
    EXPECT_EQ(s.solve(), Result::Sat);
    EXPECT_TRUE(s.value(a));
  }
  {
    Solver s;
    const int a = s.new_var();
    s.add_clause({Lit::make(a, true)});
    EXPECT_FALSE(s.add_clause({Lit::make(a, false)}));
    EXPECT_EQ(s.solve(), Result::Unsat);
  }
}

TEST(SatSolver, UnitPropagationChain) {
  Solver s;
  std::vector<int> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  // v0 and chain v_i -> v_{i+1}; finally !v9: UNSAT.
  s.add_clause({Lit::make(v[0], true)});
  for (int i = 0; i + 1 < 10; ++i)
    s.add_clause({Lit::make(v[i], false), Lit::make(v[i + 1], true)});
  s.add_clause({Lit::make(v[9], false)});
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(SatSolver, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes — classic small UNSAT needing search.
  Solver s;
  int p[3][2];
  for (auto& row : p)
    for (auto& x : row) x = s.new_var();
  for (int i = 0; i < 3; ++i)
    s.add_clause({Lit::make(p[i][0], true), Lit::make(p[i][1], true)});
  for (int h = 0; h < 2; ++h)
    for (int i = 0; i < 3; ++i)
      for (int j = i + 1; j < 3; ++j)
        s.add_clause({Lit::make(p[i][h], false), Lit::make(p[j][h], false)});
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(SatSolver, SatisfiableRandom3Sat) {
  // Planted-solution random 3-SAT: always satisfiable.
  Solver s;
  util::Rng rng(11);
  constexpr int kVars = 60;
  std::vector<int> vars;
  std::vector<bool> planted;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(s.new_var());
    planted.push_back(rng.chance(0.5));
  }
  for (int c = 0; c < 240; ++c) {
    std::vector<Lit> clause;
    bool satisfied = false;
    for (int k = 0; k < 3; ++k) {
      const int v = static_cast<int>(rng.below(kVars));
      const bool pos = rng.chance(0.5);
      clause.push_back(Lit::make(vars[static_cast<std::size_t>(v)], pos));
      if (pos == planted[static_cast<std::size_t>(v)]) satisfied = true;
    }
    if (!satisfied)  // flip one literal to agree with the planted model
      clause[0] = clause[0].negated();
    s.add_clause(clause);
  }
  ASSERT_EQ(s.solve(), Result::Sat);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  // PHP(7,6) is hard enough to exceed a 10-conflict budget.
  Solver s;
  constexpr int kP = 7, kH = 6;
  std::vector<std::vector<int>> p(kP, std::vector<int>(kH));
  for (auto& row : p)
    for (auto& x : row) x = s.new_var();
  for (int i = 0; i < kP; ++i) {
    std::vector<Lit> c;
    for (int h = 0; h < kH; ++h) c.push_back(Lit::make(p[i][h], true));
    s.add_clause(c);
  }
  for (int h = 0; h < kH; ++h)
    for (int i = 0; i < kP; ++i)
      for (int j = i + 1; j < kP; ++j)
        s.add_clause({Lit::make(p[i][h], false), Lit::make(p[j][h], false)});
  EXPECT_EQ(s.solve({}, 10), Result::Unknown);
}

class EquivTest : public ::testing::Test {
 protected:
  netlist::CellLibrary lib;
};

TEST_F(EquivTest, IdenticalNetlistsAreStructurallyEquivalent) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c880"), 1);
  const auto res = core::check_equivalence(nl, nl);
  EXPECT_EQ(res.verdict, core::EquivVerdict::Equivalent);
  EXPECT_EQ(res.method, "structural");
}

TEST_F(EquivTest, RestoredNetlistIsEquivalent) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c1355"), 2);
  core::RandomizeOptions opts;
  opts.seed = 5;
  auto rr = core::randomize(nl, opts);
  core::restore_netlist(rr.erroneous, rr.ledger);
  const auto res = core::check_equivalence(nl, rr.erroneous);
  EXPECT_EQ(res.verdict, core::EquivVerdict::Equivalent);
  EXPECT_EQ(res.method, "structural");  // restoration is structurally exact
}

TEST_F(EquivTest, ErroneousNetlistIsInequivalentWithCounterexample) {
  const auto nl = workloads::generate(lib, workloads::iscas85_profile("c880"), 3);
  core::RandomizeOptions opts;
  opts.seed = 7;
  const auto rr = core::randomize(nl, opts);
  const auto res = core::check_equivalence(nl, rr.erroneous);
  ASSERT_EQ(res.verdict, core::EquivVerdict::Inequivalent);
  EXPECT_EQ(res.method, "simulation");  // OER ~100%: one word suffices
  EXPECT_TRUE(core::counterexample_distinguishes(nl, rr.erroneous,
                                                 res.counterexample));
}

TEST_F(EquivTest, SatCatchesSimulationResistantDifference) {
  // y = AND(a0..a11) vs constant-0-ish circuit: differs only on the
  // all-ones input, which 256 random patterns on 12 inputs will miss with
  // probability (1 - 2^-12)^256 ~ 94%. Use a fixed seed where they do miss;
  // SAT must find the needle.
  auto build = [&](bool broken) {
    netlist::Netlist nl(lib, "needle");
    std::vector<netlist::NetId> ins;
    for (int i = 0; i < 12; ++i)
      ins.push_back(nl.add_primary_input("a" + std::to_string(i)));
    // Balanced AND tree of NAND+INV pairs.
    std::vector<netlist::NetId> layer = ins;
    int uid = 0;
    while (layer.size() > 1) {
      std::vector<netlist::NetId> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
        const auto g = nl.add_cell("and" + std::to_string(uid++),
                                   lib.id_of("AND2_X1"));
        nl.connect_input(g, 0, layer[i]);
        nl.connect_input(g, 1, layer[i + 1]);
        next.push_back(nl.cell(g).output);
      }
      if (layer.size() % 2 == 1) next.push_back(layer.back());
      layer = next;
    }
    netlist::NetId out = layer[0];
    if (broken) {
      // AND with an inverted copy of a0: kills the all-ones minterm only...
      // (a0 & !a0 = 0) — actually forces constant 0, differing exactly on
      // the single input where the tree evaluates to 1.
      const auto inv = nl.add_cell("binv", lib.id_of("INV_X1"));
      nl.connect_input(inv, 0, ins[0]);
      const auto g = nl.add_cell("band", lib.id_of("AND2_X1"));
      nl.connect_input(g, 0, out);
      nl.connect_input(g, 1, nl.cell(inv).output);
      out = nl.cell(g).output;
    }
    nl.add_primary_output("y", out);
    return nl;
  };
  const auto good = build(false);
  const auto bad = build(true);
  core::EquivOptions opts;
  opts.sim_patterns = 256;
  opts.seed = 1;
  const auto res = core::check_equivalence(good, bad, opts);
  ASSERT_EQ(res.verdict, core::EquivVerdict::Inequivalent);
  EXPECT_TRUE(core::counterexample_distinguishes(good, bad, res.counterexample));
  if (res.method == "sat") {
    // The counterexample must be the all-ones pattern on a1..a11 with a0=1.
    for (std::size_t i = 0; i < res.counterexample.size(); ++i)
      EXPECT_TRUE(res.counterexample[i]) << "input " << i;
  }
}

TEST_F(EquivTest, SatProvesFunctionallyEqualButStructurallyDifferent) {
  // NAND(a,b) vs INV(AND(a,b)): different structure, same function — the
  // structural layer fails, simulation finds nothing, SAT proves UNSAT.
  netlist::Netlist x(lib, "x");
  {
    const auto a = x.add_primary_input("a");
    const auto b = x.add_primary_input("b");
    const auto g = x.add_cell("g", lib.id_of("NAND2_X1"));
    x.connect_input(g, 0, a);
    x.connect_input(g, 1, b);
    x.add_primary_output("y", x.cell(g).output);
  }
  netlist::Netlist y(lib, "y");
  {
    const auto a = y.add_primary_input("a");
    const auto b = y.add_primary_input("b");
    const auto g = y.add_cell("g", lib.id_of("AND2_X1"));
    y.connect_input(g, 0, a);
    y.connect_input(g, 1, b);
    const auto inv = y.add_cell("i", lib.id_of("INV_X1"));
    y.connect_input(inv, 0, y.cell(g).output);
    y.add_primary_output("y", y.cell(inv).output);
  }
  const auto res = core::check_equivalence(x, y);
  EXPECT_EQ(res.verdict, core::EquivVerdict::Equivalent);
  EXPECT_EQ(res.method, "sat");
}

TEST_F(EquivTest, SequentialNetlistsSupported) {
  const auto nl = workloads::generate(
      lib, workloads::superblue_profile("superblue18", 0.002), 4);
  const auto res = core::check_equivalence(nl, nl);
  EXPECT_EQ(res.verdict, core::EquivVerdict::Equivalent);

  core::RandomizeOptions opts;
  opts.seed = 2;
  const auto rr = core::randomize(nl, opts);
  const auto bad = core::check_equivalence(nl, rr.erroneous);
  EXPECT_EQ(bad.verdict, core::EquivVerdict::Inequivalent);
}

TEST_F(EquivTest, MismatchedInterfacesThrow) {
  const auto a = workloads::generate(lib, workloads::iscas85_profile("c432"), 1);
  const auto b = workloads::generate(lib, workloads::iscas85_profile("c880"), 1);
  EXPECT_THROW(core::check_equivalence(a, b), std::invalid_argument);
}

// Exhaustive cross-validation on small random netlists: the layered checker
// must agree with brute-force simulation over all 2^n inputs.
class EquivExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivExhaustive, AgreesWithExhaustiveSimulation) {
  netlist::CellLibrary lib;
  workloads::GenSpec spec;
  spec.num_pi = 6;
  spec.num_po = 3;
  spec.num_gates = 24;
  const auto a = workloads::generate(lib, spec, GetParam());
  // Mutate: swap two sinks (usually changes function, sometimes not).
  core::RandomizeOptions ropts;
  ropts.seed = GetParam() * 31 + 7;
  ropts.max_swaps = 1;
  ropts.min_swaps = 1;
  ropts.target_oer = 2.0;
  const auto rr = core::randomize(a, ropts);

  const bool truly_equal = sim::equivalent(a, rr.erroneous, 64, 0) &&
                           sim::compare(a, rr.erroneous, 64, 1).oer == 0.0;
  core::EquivOptions opts;
  opts.sim_patterns = 64;  // 2^6 = 64 -> effectively exhaustive via random,
                           // but SAT settles any residual doubt
  const auto res = core::check_equivalence(a, rr.erroneous, opts);
  if (truly_equal) {
    EXPECT_NE(res.verdict, core::EquivVerdict::Inequivalent);
  } else {
    EXPECT_EQ(res.verdict, core::EquivVerdict::Inequivalent);
    EXPECT_TRUE(core::counterexample_distinguishes(a, rr.erroneous,
                                                   res.counterexample));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivExhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
