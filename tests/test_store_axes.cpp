// Config-hash coverage for the Attacker/Defense axis extension. The store's
// cross-release contract is two-sided: every NEW axis value gets a golden
// pin of its own (so future releases cannot silently re-key those cells),
// and every OLD proximity-only recipe must keep its pre-extension hash and
// parse (so stores written before the axis existed still resolve under
// --resume). The legacy pins themselves live in test_store.cpp; this suite
// owns everything the axis extension added.
#include "sweep/store.hpp"

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

namespace {

using namespace sm;

sweep::Grid quick_grid() {
  sweep::Grid grid;  // defaults: scale 0.02
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4};
  return grid;
}

std::string hash_of(const sweep::Grid& grid, const sweep::Options& opts,
                    sweep::Defense defense, sweep::Attacker attacker) {
  sweep::Grid g = grid;
  g.defenses = {defense};
  g.attackers = {attacker};
  const auto cells = sweep::expand_cells(g, opts);
  EXPECT_EQ(cells.size(), 1u);
  return cells.empty() ? "" : cells[0].config_hash;
}

// Golden pins for the attacker axis: these exact configurations must hash
// to these exact keys in every future release. If a hash change is
// intentional, bump the "format" tag in cell_config_json and update the
// pins (here AND in test_store.cpp) in the same PR.
TEST(StoreAxes, GoldenAttackerHashesAreStableAcrossReleases) {
  const sweep::Grid grid = quick_grid();
  sweep::Options opts;
  opts.patterns = 2000;
  using sweep::Attacker;
  using sweep::Defense;

  // The proximity attacker must hash exactly like the pre-axis recipe —
  // these are the test_store.cpp legacy pins, reproduced through the
  // attacker-aware expansion.
  EXPECT_EQ(hash_of(grid, opts, Defense::Unprotected, Attacker::Proximity),
            "5b8b859189dacd44");
  EXPECT_EQ(hash_of(grid, opts, Defense::Proposed, Attacker::Proximity),
            "cd0f8c7f7faf748e");

  EXPECT_EQ(hash_of(grid, opts, Defense::Unprotected, Attacker::CRouting),
            "ff689d1e8f1f73a2");
  EXPECT_EQ(hash_of(grid, opts, Defense::Unprotected, Attacker::Sat),
            "144e754137305bdd");
  EXPECT_EQ(hash_of(grid, opts, Defense::Proposed, Attacker::CRouting),
            "3abd1897e4750d50");
  EXPECT_EQ(hash_of(grid, opts, Defense::Proposed, Attacker::Sat),
            "2c1145d44bb7fc99");
}

// Golden pins for the baseline-defense axis values (proximity attacker).
TEST(StoreAxes, GoldenBaselineDefenseHashesAreStableAcrossReleases) {
  const sweep::Grid grid = quick_grid();
  sweep::Options opts;
  opts.patterns = 2000;
  using sweep::Attacker;
  using sweep::Defense;
  const std::pair<Defense, const char*> pins[] = {
      {Defense::PlacePerturb, "ee07b948a484c187"},
      {Defense::GColor, "0fb5a5a0215b7d33"},
      {Defense::GType1, "f10929e67465cde7"},
      {Defense::GType2, "3fe167646c985860"},
      {Defense::PinSwap, "4a2bbf3b093375f7"},
      {Defense::RoutePerturb, "2513d3cf496620b0"},
      {Defense::RouteBlockage, "be86064cb3829030"},
  };
  for (const auto& [defense, pin] : pins)
    EXPECT_EQ(hash_of(grid, opts, defense, Attacker::Proximity), pin)
        << sweep::to_string(defense);
}

// Golden pin for a workload-generator synthetic bench.
TEST(StoreAxes, GoldenSyntheticBenchHashIsStableAcrossReleases) {
  sweep::Grid grid;  // scale 0.02
  grid.benchmarks = {"synth4k"};
  grid.seeds = {1};
  grid.split_layers = {5};
  grid.defenses = {sweep::Defense::Unprotected};
  grid.attackers = {sweep::Attacker::CRouting};
  sweep::Options opts;
  opts.patterns = 2000;
  const auto cells = sweep::expand_cells(grid, opts);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].workload, sweep::Workload::Synthetic);
  EXPECT_EQ(cells[0].config_hash, "a3ceba943825c23d");
}

// Conditional-key invariant behind the pins: proximity cells never emit an
// "attacker" key, non-baseline defenses never emit a "baseline" block — the
// recipe of every pre-axis cell is byte-identical to what PR 7 hashed.
TEST(StoreAxes, RecipeKeysAreConditional) {
  const sweep::Grid grid = quick_grid();
  sweep::Options opts;
  opts.patterns = 2000;
  const auto prox = sweep::cell_config_json(
      grid, opts, "c432", sweep::Workload::Iscas85, 1,
      sweep::Defense::Unprotected, 4, sweep::Attacker::Proximity);
  EXPECT_EQ(prox.find("\"attacker\""), std::string::npos);
  EXPECT_EQ(prox.find("\"baseline\""), std::string::npos);

  const auto cr = sweep::cell_config_json(
      grid, opts, "c432", sweep::Workload::Iscas85, 1,
      sweep::Defense::RouteBlockage, 4, sweep::Attacker::CRouting);
  EXPECT_NE(cr.find("\"attacker\":\"crouting\""), std::string::npos);
  EXPECT_NE(cr.find("\"baseline\""), std::string::npos);
  EXPECT_NE(cr.find("\"blockages\""), std::string::npos);
  // Both are canonical JSON the store parser accepts.
  EXPECT_NO_THROW(util::json::parse(prox));
  EXPECT_NO_THROW(util::json::parse(cr));
}

// Scheduling knobs must stay excluded from the hash on the NEW axis values
// too — jobs/shard/resume/store changes resolve to the same cells.
TEST(StoreAxes, HashIgnoresSchedulingOptionsOnNewAxes) {
  sweep::Grid grid = quick_grid();
  grid.defenses = {sweep::Defense::GColor, sweep::Defense::PinSwap};
  grid.attackers = {sweep::Attacker::CRouting, sweep::Attacker::Sat};
  sweep::Options a;
  a.patterns = 2000;
  sweep::Options b = a;
  b.jobs = 8;
  b.shard_index = 1;
  b.shard_count = 3;
  b.store_path = "elsewhere.jsonl";
  b.resume = true;
  const auto ca = sweep::expand_cells(grid, a);
  const auto cb = sweep::expand_cells(grid, b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i)
    EXPECT_EQ(ca[i].config_hash, cb[i].config_hash);
}

// The hash covers the attacker coordinate: same cell, different attacker,
// different key — and every (defense, attacker) pair keys uniquely.
TEST(StoreAxes, HashCoversTheAttackerCoordinate) {
  sweep::Grid grid = quick_grid();
  grid.defenses = {sweep::Defense::Unprotected, sweep::Defense::Proposed,
                   sweep::Defense::PlacePerturb, sweep::Defense::GColor,
                   sweep::Defense::GType1, sweep::Defense::GType2,
                   sweep::Defense::PinSwap, sweep::Defense::RoutePerturb,
                   sweep::Defense::RouteBlockage};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting,
                    sweep::Attacker::Sat};
  sweep::Options opts;
  opts.patterns = 2000;
  const auto cells = sweep::expand_cells(grid, opts);
  ASSERT_EQ(cells.size(), 27u);
  for (std::size_t i = 0; i < cells.size(); ++i)
    for (std::size_t j = i + 1; j < cells.size(); ++j)
      EXPECT_NE(cells[i].config_hash, cells[j].config_hash)
          << sweep::describe(cells[i]) << " vs " << sweep::describe(cells[j]);
}

// Expansion order: attacker is the innermost coordinate (matches
// Result::rows), split next.
TEST(StoreAxes, ExpandPutsAttackerInnermost) {
  sweep::Grid grid = quick_grid();
  grid.split_layers = {3, 5};
  grid.defenses = {sweep::Defense::Unprotected};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting};
  const auto cells = sweep::expand_cells(grid, {});
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].split_layer, 3);
  EXPECT_EQ(cells[0].attacker, sweep::Attacker::Proximity);
  EXPECT_EQ(cells[1].split_layer, 3);
  EXPECT_EQ(cells[1].attacker, sweep::Attacker::CRouting);
  EXPECT_EQ(cells[2].split_layer, 5);
  EXPECT_EQ(cells[2].attacker, sweep::Attacker::Proximity);
  // All four belong to the same (bench, seed, defense) task.
  EXPECT_EQ(cells[0].task_index, cells[3].task_index);
}

// Cross-release resume: a record in the PRE-AXIS line schema (no attacker/
// els/equiv keys) parses with proximity defaults and resolves a cell of
// today's expansion — old stores keep working under --resume.
TEST(StoreAxes, LegacyProximityRecordsStillResolve) {
  const sweep::Grid grid = quick_grid();  // default defenses + proximity
  sweep::Options opts;
  opts.patterns = 2000;
  const auto cells = sweep::expand_cells(grid, opts);
  ASSERT_EQ(cells.size(), 2u);
  ASSERT_EQ(cells[0].config_hash, "5b8b859189dacd44");  // the legacy pin

  // Byte-for-byte the line schema PR 7 wrote (attacker axis unknown).
  const std::string legacy_line =
      "{\"benchmark\":\"c432\",\"ccr\":0.75,\"ccr_protected\":0.5,"
      "\"config_hash\":\"5b8b859189dacd44\",\"defense\":\"unprotected\","
      "\"hd\":0.25,\"oer\":0.875,\"open_sinks\":42,\"patterns\":2000,"
      "\"scale\":0.02,\"seed\":1,\"split_layer\":4,\"swaps\":0,"
      "\"wall_ms\":12.5}";
  const auto rec = sweep::parse_store_line(legacy_line);
  EXPECT_EQ(rec.row.attacker, sweep::Attacker::Proximity);
  EXPECT_EQ(rec.row.els, 0.0);
  EXPECT_EQ(rec.row.equiv, -1);
  EXPECT_EQ(rec.row.ccr, 0.75);

  const std::string path = testing::TempDir() + "sm_axes_legacy.jsonl";
  {
    std::ofstream f(path);
    f << legacy_line << '\n';
  }
  const auto store = sweep::load_store({path}, /*must_exist=*/true);
  const auto mat = sweep::materialize(grid, opts, store);
  ASSERT_EQ(mat.result.rows.size(), 1u);
  EXPECT_EQ(mat.result.rows[0].attacker, sweep::Attacker::Proximity);
  EXPECT_EQ(mat.result.rows[0].ccr, 0.75);
  ASSERT_EQ(mat.missing.size(), 1u);  // the proposed cell
  EXPECT_EQ(mat.missing[0].defense, sweep::Defense::Proposed);
  std::remove(path.c_str());
}

// New-schema records round-trip the attacker fields bit-exact.
TEST(StoreAxes, AttackerFieldsRoundTripThroughTheLine) {
  sweep::StoreRecord rec;
  rec.config_hash = "0123456789abcdef";
  rec.row.benchmark = "c880";
  rec.row.seed = 2;
  rec.row.split_layer = 5;
  rec.row.defense = sweep::Defense::GType2;
  rec.row.attacker = sweep::Attacker::CRouting;
  rec.row.els = 17.0 / 3.0;  // no short decimal form
  rec.row.equiv = 2;
  rec.patterns = 800;
  rec.scale = 0.02;
  const auto back = sweep::parse_store_line(to_store_line(rec));
  EXPECT_EQ(back.row.defense, sweep::Defense::GType2);
  EXPECT_EQ(back.row.attacker, sweep::Attacker::CRouting);
  EXPECT_EQ(back.row.els, rec.row.els);
  EXPECT_EQ(back.row.equiv, 2);
}

// Satellite: describe() prints the FULL canonical recipe coordinates —
// workload source and attacker included — so dry-run output is auditable.
TEST(StoreAxes, DescribeNamesEveryAxis) {
  sweep::Grid grid;
  grid.benchmarks = {"synth16k"};
  grid.seeds = {9};
  grid.split_layers = {6};
  grid.defenses = {sweep::Defense::RoutePerturb};
  grid.attackers = {sweep::Attacker::CRouting};
  const auto cells = sweep::expand_cells(grid, {});
  ASSERT_EQ(cells.size(), 1u);
  const auto text = sweep::describe(cells[0]);
  EXPECT_NE(text.find("synth16k"), std::string::npos);
  EXPECT_NE(text.find("(synthetic)"), std::string::npos);
  EXPECT_NE(text.find("seed=9"), std::string::npos);
  EXPECT_NE(text.find("M6"), std::string::npos);
  EXPECT_NE(text.find("route-perturb"), std::string::npos);
  EXPECT_NE(text.find("attacker=crouting"), std::string::npos);
  EXPECT_NE(text.find(cells[0].config_hash), std::string::npos);
}

// Satellite: the missing-cell listing is sorted by config hash — stable
// across shard visit orders, so CI can byte-diff stderr.
TEST(StoreAxes, MaterializeMissingIsSortedByConfigHash) {
  sweep::Grid grid = quick_grid();
  grid.split_layers = {3, 4, 5};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting};
  sweep::Options opts;
  opts.patterns = 2000;
  const auto mat = sweep::materialize(grid, opts, sweep::StoreContents{});
  ASSERT_EQ(mat.missing.size(), grid.combinations());
  EXPECT_TRUE(mat.missing.size() >= 2u);
  for (std::size_t i = 1; i < mat.missing.size(); ++i)
    EXPECT_LT(mat.missing[i - 1].config_hash, mat.missing[i].config_hash);
}

}  // namespace
