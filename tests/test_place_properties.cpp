// Placement property sweep: legality, determinism, and quality invariants
// across benchmarks and seeds (TEST_P).
#include "place/placer.hpp"
#include "util/rng.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <map>

namespace {

using namespace sm;
using netlist::CellId;
using netlist::CellLibrary;

struct PlaceCase {
  std::string bench;
  std::uint64_t seed;
  double util;
};

std::string place_case_name(const ::testing::TestParamInfo<PlaceCase>& info) {
  return info.param.bench + "_s" + std::to_string(info.param.seed) + "_u" +
         std::to_string(static_cast<int>(info.param.util * 100));
}

class PlacerProperties : public ::testing::TestWithParam<PlaceCase> {};

TEST_P(PlacerProperties, LegalDeterministicAndCompact) {
  CellLibrary lib;
  const auto nl = workloads::generate(
      lib, workloads::iscas85_profile(GetParam().bench), GetParam().seed);
  place::PlacerOptions opts;
  opts.target_utilization = GetParam().util;
  opts.seed = GetParam().seed;
  place::Placer placer(opts);
  const auto pl = placer.place(nl);

  // Legality: inside die, on row centers, no overlap within rows.
  const auto die = pl.floorplan.die.inflated(1e-6);
  std::map<int, std::vector<std::pair<double, double>>> rows;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    ASSERT_TRUE(die.contains(pl.pos[id])) << nl.cell(id).name;
    if (nl.type_of(id).cls != netlist::CellClass::Standard) continue;
    const double rowf =
        (pl.pos[id].y - pl.floorplan.die.lo.y) / pl.floorplan.row_height_um -
        0.5;
    const int row = static_cast<int>(std::lround(rowf));
    ASSERT_NEAR(pl.floorplan.row_y(row), pl.pos[id].y, 1e-6);
    const double w = nl.type_of(id).width_um;
    rows[row].push_back({pl.pos[id].x - w / 2, pl.pos[id].x + w / 2});
  }
  for (auto& [row, spans] : rows) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      ASSERT_GE(spans[i].first, spans[i - 1].second - 1e-6)
          << "overlap in row " << row;
  }

  // Determinism.
  const auto again = placer.place(nl);
  for (CellId id = 0; id < nl.num_cells(); ++id)
    ASSERT_EQ(pl.pos[id], again.pos[id]);

  // Quality: placed HPWL clearly beats a random shuffle of the same sites.
  auto shuffled = pl;
  std::vector<CellId> movable;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (nl.type_of(id).cls == netlist::CellClass::Standard)
      movable.push_back(id);
  util::Rng rng(GetParam().seed ^ 0x5a5aULL);
  for (std::size_t i = movable.size(); i-- > 1;) {
    const auto j = static_cast<std::size_t>(rng.below(i + 1));
    std::swap(shuffled.pos[movable[i]], shuffled.pos[movable[j]]);
  }
  EXPECT_LT(place::total_hpwl(nl, pl),
            place::total_hpwl(nl, shuffled) * 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacerProperties,
    ::testing::Values(PlaceCase{"c432", 1, 0.45}, PlaceCase{"c432", 5, 0.7},
                      PlaceCase{"c880", 2, 0.45}, PlaceCase{"c1355", 3, 0.6},
                      PlaceCase{"c1908", 4, 0.45}, PlaceCase{"c2670", 1, 0.5},
                      PlaceCase{"c3540", 2, 0.45}, PlaceCase{"c5315", 1, 0.45}),
    place_case_name);

}  // namespace
