// Unit tests for util::ThreadPool / util::parallel_for — the exactly-once
// contract, pool reuse, exception propagation (lowest failing index wins,
// remaining tasks still run), and thread-count-independent results via
// util::task_seed.
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace {

using namespace sm::util;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  pool.parallel_for(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 5; ++batch)
    pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, LowestFailingIndexWinsAndEveryTaskStillRuns) {
  constexpr std::size_t kN = 600;
  std::vector<std::atomic<int>> counts(kN);
  ThreadPool pool(4);
  try {
    pool.parallel_for(kN, [&](std::size_t i) {
      counts[i].fetch_add(1);
      if (i == 3 || i == 7 || i == 500)
        throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelFor, SerialPathKeepsTheSameExceptionRule) {
  std::vector<int> ran(10, 0);
  try {
    parallel_for(1, 10, [&](std::size_t i) {
      ran[i] = 1;
      if (i == 2 || i == 8) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "2");
  }
  for (const int r : ran) EXPECT_EQ(r, 1);
}

// The determinism contract the sweep subsystem rests on: per-task randomness
// derived from (master seed, task index) gives bit-identical results for any
// thread count.
TEST(ParallelFor, TaskSeededResultsAreThreadCountInvariant) {
  constexpr std::size_t kN = 257;
  constexpr std::uint64_t kMaster = 42;
  auto run = [&](std::size_t jobs) {
    std::vector<std::uint64_t> out(kN);
    parallel_for(jobs, kN, [&](std::size_t i) {
      Rng rng(task_seed(kMaster, i));
      std::uint64_t acc = 0;
      for (int k = 0; k < 100; ++k) acc ^= rng();
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelFor, ResolveJobsClampsToTaskCountAndHardware) {
  EXPECT_EQ(resolve_jobs(8, 3), 3u);
  EXPECT_EQ(resolve_jobs(2, 100), 2u);
  EXPECT_GE(resolve_jobs(0, 100), 1u);  // 0 = hardware concurrency
  EXPECT_EQ(resolve_jobs(5, 0), 1u);
  EXPECT_EQ(resolve_jobs(1, 1), 1u);
}

TEST(ParallelFor, JobsExceedingTasksStillRunsAll) {
  std::vector<std::atomic<int>> counts(3);
  parallel_for(16, 3, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(counts[i].load(), 1);
}

}  // namespace
