// Simulator correctness: gate truth tables, OER/HD semantics, determinism,
// sequential cut handling, toggle rates.
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm::netlist;
using sm::sim::Simulator;

class SimTest : public ::testing::Test {
 protected:
  CellLibrary lib;
};

// Evaluate a single-gate circuit on all input combinations packed in words.
std::uint64_t eval_gate(const CellLibrary& lib, const std::string& type,
                        const std::vector<std::uint64_t>& ins) {
  Netlist nl(lib, "g");
  const CellTypeId t = lib.id_of(type);
  const CellId g = nl.add_cell("u", t);
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const NetId n = nl.add_primary_input("i" + std::to_string(i));
    nl.connect_input(g, static_cast<int>(i), n);
  }
  nl.add_primary_output("y", nl.cell(g).output);
  Simulator s(nl);
  std::vector<std::uint64_t> out;
  s.eval(ins, out);
  return out.at(0);
}

TEST_F(SimTest, TruthTables) {
  const std::uint64_t a = 0b1100, b = 0b1010, c = 0b1111000011110000;
  EXPECT_EQ(eval_gate(lib, "INV_X1", {a}) & 0xF, 0b0011u);
  EXPECT_EQ(eval_gate(lib, "BUF_X2", {a}) & 0xF, 0b1100u);
  EXPECT_EQ(eval_gate(lib, "AND2_X1", {a, b}) & 0xF, 0b1000u);
  EXPECT_EQ(eval_gate(lib, "NAND2_X1", {a, b}) & 0xF, 0b0111u);
  EXPECT_EQ(eval_gate(lib, "OR2_X1", {a, b}) & 0xF, 0b1110u);
  EXPECT_EQ(eval_gate(lib, "NOR2_X1", {a, b}) & 0xF, 0b0001u);
  EXPECT_EQ(eval_gate(lib, "XOR2_X1", {a, b}) & 0xF, 0b0110u);
  EXPECT_EQ(eval_gate(lib, "XNOR2_X1", {a, b}) & 0xF, 0b1001u);
  // AOI21: !((A&B)|C); check a few bit positions.
  const std::uint64_t aoi = eval_gate(lib, "AOI21_X1", {a, b, 0b0001});
  EXPECT_EQ(aoi & 0xF, static_cast<std::uint64_t>(~((a & b) | 0b0001)) & 0xF);
  const std::uint64_t oai = eval_gate(lib, "OAI21_X1", {a, b, 0b0111});
  EXPECT_EQ(oai & 0xF, static_cast<std::uint64_t>(~((a | b) & 0b0111)) & 0xF);
  // MUX2: S ? B : A.
  const std::uint64_t mux = eval_gate(lib, "MUX2_X1", {a, b, c});
  EXPECT_EQ(mux, (a & ~c) | (b & c));
  // NAND3 with all-ones third input behaves like NAND2.
  EXPECT_EQ(eval_gate(lib, "NAND3_X1", {a, b, ~0ULL}) & 0xF, 0b0111u);
}

TEST_F(SimTest, DeepChainPropagates) {
  // A 100-inverter chain computes identity (even count).
  Netlist nl(lib, "chain");
  NetId cur = nl.add_primary_input("a");
  for (int i = 0; i < 100; ++i) {
    const CellId g = nl.add_cell("inv" + std::to_string(i), lib.id_of("INV_X1"));
    nl.connect_input(g, 0, cur);
    cur = nl.cell(g).output;
  }
  nl.add_primary_output("y", cur);
  Simulator s(nl);
  std::vector<std::uint64_t> out;
  s.eval({0xdeadbeefcafebabeULL}, out);
  EXPECT_EQ(out.at(0), 0xdeadbeefcafebabeULL);
}

TEST_F(SimTest, CompareIdenticalNetlistsIsZero) {
  CellLibrary l;
  const auto nl = sm::workloads::generate(l, sm::workloads::iscas85_profile("c432"), 5);
  const auto r = sm::sim::compare(nl, nl, 10000, 3);
  EXPECT_DOUBLE_EQ(r.oer, 0.0);
  EXPECT_DOUBLE_EQ(r.hd, 0.0);
  EXPECT_EQ(r.patterns, 10000u);
}

TEST_F(SimTest, CompareDetectsSingleInversion) {
  CellLibrary l;
  Netlist a(l, "a");
  const NetId in = a.add_primary_input("i");
  const CellId buf = a.add_cell("b", l.id_of("BUF_X1"));
  a.connect_input(buf, 0, in);
  a.add_primary_output("y", a.cell(buf).output);

  Netlist b(l, "b");
  const NetId in2 = b.add_primary_input("i");
  const CellId inv = b.add_cell("b", l.id_of("INV_X1"));
  b.connect_input(inv, 0, in2);
  b.add_primary_output("y", b.cell(inv).output);

  const auto r = sm::sim::compare(a, b, 1000, 3);
  EXPECT_DOUBLE_EQ(r.oer, 1.0);  // every pattern differs
  EXPECT_DOUBLE_EQ(r.hd, 1.0);   // the only output bit is always wrong
}

TEST_F(SimTest, HdReflectsPartialDamage) {
  // Two outputs; one correct, one inverted: HD = 0.5, OER = 1.0.
  CellLibrary l;
  auto build = [&](bool invert_second) {
    Netlist nl(l, "x");
    const NetId i0 = nl.add_primary_input("i0");
    const NetId i1 = nl.add_primary_input("i1");
    const CellId g0 = nl.add_cell("g0", l.id_of("BUF_X1"));
    nl.connect_input(g0, 0, i0);
    const CellId g1 = nl.add_cell("g1", l.id_of(invert_second ? "INV_X1" : "BUF_X1"));
    nl.connect_input(g1, 0, i1);
    nl.add_primary_output("y0", nl.cell(g0).output);
    nl.add_primary_output("y1", nl.cell(g1).output);
    return nl;
  };
  const auto r = sm::sim::compare(build(false), build(true), 640, 9);
  EXPECT_DOUBLE_EQ(r.hd, 0.5);
  EXPECT_DOUBLE_EQ(r.oer, 1.0);
}

TEST_F(SimTest, NonMultipleOf64PatternCount) {
  CellLibrary l;
  const auto nl = sm::workloads::generate(l, sm::workloads::iscas85_profile("c432"), 5);
  const auto r = sm::sim::compare(nl, nl, 100, 3);
  EXPECT_EQ(r.patterns, 100u);
}

TEST_F(SimTest, CompareRejectsMismatchedInterfaces) {
  CellLibrary l;
  sm::workloads::GenSpec s1;
  s1.num_pi = 4; s1.num_po = 2; s1.num_gates = 10;
  sm::workloads::GenSpec s2 = s1;
  s2.num_pi = 5;
  const auto a = sm::workloads::generate(l, s1, 1);
  const auto b = sm::workloads::generate(l, s2, 1);
  EXPECT_THROW(sm::sim::compare(a, b, 64, 0), std::invalid_argument);
}

TEST_F(SimTest, DffActsAsCutPoint) {
  // a -> INV -> ff -> INV -> y. Observers: y (PO side) and ff.D;
  // sources: a and ff.Q. The two stages are independent.
  CellLibrary l;
  Netlist nl(l, "seq");
  const NetId a = nl.add_primary_input("a");
  const CellId i1 = nl.add_cell("i1", l.id_of("INV_X1"));
  nl.connect_input(i1, 0, a);
  const CellId ff = nl.add_cell("ff", l.dff());
  nl.connect_input(ff, 0, nl.cell(i1).output);
  const CellId i2 = nl.add_cell("i2", l.id_of("INV_X1"));
  nl.connect_input(i2, 0, nl.cell(ff).output);
  nl.add_primary_output("y", nl.cell(i2).output);

  Simulator s(nl);
  EXPECT_EQ(s.num_sources(), 2u);    // a + ff.Q
  EXPECT_EQ(s.num_observers(), 2u);  // y + ff.D
  std::vector<std::uint64_t> out;
  s.eval({0xF0F0, 0x00FF}, out);
  EXPECT_EQ(out.at(0) & 0xFFFF, 0xFF00u);  // y = ~ff.Q
  EXPECT_EQ(out.at(1) & 0xFFFF, 0x0F0Fu);  // ff.D = ~a
}

TEST_F(SimTest, ToggleRatesBounded) {
  CellLibrary l;
  const auto nl = sm::workloads::generate(l, sm::workloads::iscas85_profile("c880"), 2);
  const auto act = sm::sim::toggle_rates(nl, 4096, 5);
  ASSERT_EQ(act.size(), nl.num_nets());
  double max_act = 0.0;
  for (double a : act) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 0.5);
    max_act = std::max(max_act, a);
  }
  EXPECT_GT(max_act, 0.3);  // PIs toggle near 0.5
}

TEST_F(SimTest, CompareJobsBitIdentical) {
  // XOR vs AND agree only on a stream-dependent subset of patterns, so this
  // actually exercises the per-block task_seed streams: any leak of the
  // worker count into the stimuli would move OER/HD.
  CellLibrary l;
  auto build = [&](const char* type) {
    Netlist nl(l, type);
    const NetId i0 = nl.add_primary_input("i0");
    const NetId i1 = nl.add_primary_input("i1");
    const CellId g = nl.add_cell("g", l.id_of(type));
    nl.connect_input(g, 0, i0);
    nl.connect_input(g, 1, i1);
    nl.add_primary_output("y", nl.cell(g).output);
    return nl;
  };
  const auto a = build("XOR2_X1");
  const auto b = build("AND2_X1");
  // 9000 patterns spans two full 4096-pattern blocks plus a partial one.
  const auto r1 = sm::sim::compare(a, b, 9000, 7, 1);
  const auto r4 = sm::sim::compare(a, b, 9000, 7, 4);
  EXPECT_EQ(r1.patterns, 9000u);
  EXPECT_EQ(r1.patterns, r4.patterns);
  EXPECT_EQ(r1.oer, r4.oer);  // bitwise: the contract is identity, not NEAR
  EXPECT_EQ(r1.hd, r4.hd);
  EXPECT_GT(r1.oer, 0.0);  // the rig is genuinely stream-sensitive
  EXPECT_LT(r1.oer, 1.0);
}

TEST_F(SimTest, ToggleRatesJobsBitIdentical) {
  CellLibrary l;
  const auto nl = sm::workloads::generate(l, sm::workloads::iscas85_profile("c880"), 2);
  const auto act1 = sm::sim::toggle_rates(nl, 20000, 5, 1);
  const auto act4 = sm::sim::toggle_rates(nl, 20000, 5, 4);
  ASSERT_EQ(act1.size(), act4.size());
  for (std::size_t n = 0; n < act1.size(); ++n) EXPECT_EQ(act1[n], act4[n]);
}

TEST_F(SimTest, EvalLanesMatchesScalarEval) {
  // eval_lanes<W> on a structure-of-arrays stimulus must reproduce W
  // independent scalar eval() calls word for word — the lane loop changes
  // the memory walk, never the logic.
  CellLibrary l;
  const auto nl = sm::workloads::generate(
      l, sm::workloads::iscas85_profile("c432"), 5);
  Simulator s(nl);
  constexpr std::size_t W = 4;
  sm::util::Rng rng(99);
  std::vector<std::uint64_t> soa(s.num_sources() * W);
  for (auto& w : soa) w = rng();
  std::vector<std::uint64_t> wide_out, wide_vals;
  s.eval_lanes<W>(soa, wide_out, wide_vals);
  ASSERT_EQ(wide_out.size(), s.num_observers() * W);
  for (std::size_t j = 0; j < W; ++j) {
    std::vector<std::uint64_t> lane_src(s.num_sources());
    for (std::size_t i = 0; i < lane_src.size(); ++i)
      lane_src[i] = soa[i * W + j];
    std::vector<std::uint64_t> out;
    s.eval(lane_src, out);
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], wide_out[i * W + j]) << "lane " << j << " obs " << i;
  }
}

TEST_F(SimTest, CompareLanesBitIdentical) {
  // The ISSUE-10 lane contract: every lane width draws the same per-block
  // task_seed stream in the same word-major order, so OER/HD are bitwise
  // equal for lanes 1, 4, and 8 — across worker counts, including a
  // partial tail block whose word count is not a lane multiple (9000
  // patterns = 141 words = 2 full blocks + 13 tail words).
  CellLibrary l;
  auto build = [&](const char* type) {
    Netlist nl(l, type);
    const NetId i0 = nl.add_primary_input("i0");
    const NetId i1 = nl.add_primary_input("i1");
    const CellId g = nl.add_cell("g", l.id_of(type));
    nl.connect_input(g, 0, i0);
    nl.connect_input(g, 1, i1);
    nl.add_primary_output("y", nl.cell(g).output);
    return nl;
  };
  const auto a = build("XOR2_X1");
  const auto b = build("AND2_X1");
  const auto ref = sm::sim::compare(a, b, 9000, 7, 1, 1);
  EXPECT_GT(ref.oer, 0.0);  // genuinely stream-sensitive rig
  EXPECT_LT(ref.oer, 1.0);
  for (const std::size_t lanes : {4ul, 8ul})
    for (const std::size_t jobs : {1ul, 3ul}) {
      const auto r = sm::sim::compare(a, b, 9000, 7, jobs, lanes);
      EXPECT_EQ(r.patterns, ref.patterns) << lanes << "x" << jobs;
      EXPECT_EQ(r.oer, ref.oer) << lanes << "x" << jobs;
      EXPECT_EQ(r.hd, ref.hd) << lanes << "x" << jobs;
    }
  // The default width (lanes = 0) is one of the identical widths.
  const auto rd = sm::sim::compare(a, b, 9000, 7, 1, 0);
  EXPECT_EQ(rd.oer, ref.oer);
  EXPECT_EQ(rd.hd, ref.hd);
}

TEST_F(SimTest, ToggleRatesLanesBitIdentical) {
  CellLibrary l;
  const auto nl = sm::workloads::generate(
      l, sm::workloads::iscas85_profile("c880"), 2);
  const auto ref = sm::sim::toggle_rates(nl, 20000, 5, 1, 1);
  for (const std::size_t lanes : {4ul, 8ul}) {
    const auto r = sm::sim::toggle_rates(nl, 20000, 5, 2, lanes);
    ASSERT_EQ(r.size(), ref.size());
    for (std::size_t n = 0; n < r.size(); ++n)
      ASSERT_EQ(r[n], ref[n]) << "lanes " << lanes << " net " << n;
  }
}

TEST_F(SimTest, LaneWidthValidated) {
  CellLibrary l;
  const auto nl = sm::workloads::generate(
      l, sm::workloads::iscas85_profile("c432"), 5);
  EXPECT_THROW(sm::sim::compare(nl, nl, 64, 0, 1, 3), std::invalid_argument);
  EXPECT_THROW(sm::sim::toggle_rates(nl, 64, 0, 1, 16),
               std::invalid_argument);
}

TEST_F(SimTest, DeterministicAcrossRuns) {
  CellLibrary l;
  const auto nl = sm::workloads::generate(l, sm::workloads::iscas85_profile("c1355"), 8);
  auto mutate = nl.clone();
  // Swap two sinks to create a different netlist, then check OER stability.
  const auto r1 = sm::sim::compare(nl, nl, 5000, 77);
  const auto r2 = sm::sim::compare(nl, nl, 5000, 77);
  EXPECT_DOUBLE_EQ(r1.hd, r2.hd);
  EXPECT_DOUBLE_EQ(r1.oer, r2.oer);
  (void)mutate;
}

}  // namespace
