// Attack tests — the paper's central security claims:
//   * the proximity attack succeeds on original layouts (high CCR, low HD),
//   * it fails on layouts protected by the proposed scheme (0% CCR on the
//     randomized connections, OER ~ 100%),
//   * crouting metrics grow for the protected layouts.
#include "attack/crouting.hpp"
#include "attack/proximity.hpp"
#include "core/baselines.hpp"
#include "core/protect.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm;
using core::FlowOptions;
using core::RandomizeOptions;
using netlist::CellLibrary;
using netlist::Netlist;

class AttackTest : public ::testing::Test {
 protected:
  CellLibrary lib{6};
  Netlist bench(const char* name = "c880", std::uint64_t seed = 3) const {
    return workloads::generate(lib, workloads::iscas85_profile(name), seed);
  }
  FlowOptions flow() const {
    // Mirror the bench harness setup (bench/common.hpp iscas_flow).
    FlowOptions f;
    f.lift_layer = 6;
    f.router.passes = 3;
    f.placer.detailed_passes = 2;
    f.placer.target_utilization = 0.45;
    return f;
  }
  attack::ProximityOptions quick_attack() const {
    attack::ProximityOptions a;
    a.eval_patterns = 20000;
    return a;
  }
};

TEST_F(AttackTest, OriginalLayoutIsHighlyVulnerable) {
  // Paper: ~94% CCR / 7% HD on original ISCAS-85 layouts, averaged over
  // splits M3/M4/M5. Our substrate reproduces the shape: near-perfect
  // recovery at M4/M5 (few, short cut nets), harder at M3.
  const Netlist original = bench();
  const auto layout = core::layout_original(original, flow());
  double ccr_sum = 0, hd_sum = 0;
  for (const int split : {3, 4, 5}) {
    const auto view = core::split_layout(original, layout.placement,
                                         layout.routing, layout.tasks,
                                         layout.num_net_tasks, split);
    const auto res = attack::proximity_attack(original, original,
                                              layout.placement, view, nullptr,
                                              quick_attack());
    ccr_sum += res.ccr();
    hd_sum += res.rates.hd;
  }
  EXPECT_GT(ccr_sum / 3, 0.6) << "proximity attack should succeed on original";
  EXPECT_LT(hd_sum / 3, 0.25);
}

TEST_F(AttackTest, ProtectedLayoutDefeatsAttack) {
  const Netlist original = bench();
  RandomizeOptions r;
  r.seed = 5;
  r.check_patterns = 2048;
  const auto design = core::protect(original, r, flow());
  const auto view = core::split_layout(
      design.erroneous, design.layout.placement, design.layout.routing,
      design.layout.tasks, design.layout.num_net_tasks, 4);
  const auto res =
      attack::proximity_attack(design.erroneous, original,
                               design.layout.placement, view, &design.ledger,
                               quick_attack());
  ASSERT_GT(res.protected_total, 0u);
  // Paper: 0% CCR on the randomized connections.
  EXPECT_LE(res.ccr_protected(), 0.05);
  // Paper: OER ~ 100%, HD ~ 40%.
  EXPECT_GT(res.rates.oer, 0.95);
  EXPECT_GT(res.rates.hd, 0.15);
}

TEST_F(AttackTest, HintsImproveTheAttack) {
  // Disabling the published hints must not make the attack better on the
  // original layout (sanity check that the hints are wired in).
  const Netlist original = bench("c1355", 7);
  const auto layout = core::layout_original(original, flow());
  const auto view = core::split_layout(original, layout.placement,
                                       layout.routing, layout.tasks,
                                       layout.num_net_tasks, 4);
  attack::ProximityOptions with = quick_attack();
  attack::ProximityOptions without = quick_attack();
  without.use_direction = false;
  without.use_load = false;
  without.candidates_per_sink = 2;
  const auto a = attack::proximity_attack(original, original, layout.placement,
                                          view, nullptr, with);
  const auto b = attack::proximity_attack(original, original, layout.placement,
                                          view, nullptr, without);
  EXPECT_GE(a.ccr() + 0.05, b.ccr());
}

TEST_F(AttackTest, RecoveredNetlistIsAcyclicAndComplete) {
  const Netlist original = bench();
  RandomizeOptions r;
  r.seed = 8;
  r.check_patterns = 1024;
  const auto design = core::protect(original, r, flow());
  const auto view = core::split_layout(
      design.erroneous, design.layout.placement, design.layout.routing,
      design.layout.tasks, design.layout.num_net_tasks, 4);
  const auto res =
      attack::proximity_attack(design.erroneous, original,
                               design.layout.placement, view, &design.ledger,
                               quick_attack());
  // compare() ran, meaning the recovered netlist was valid and acyclic.
  EXPECT_GT(res.rates.patterns, 0u);
  EXPECT_EQ(res.open_sinks, [&] {
    std::size_t n = 0;
    for (const auto fi : view.open_sink_fragments())
      n += view.fragments[fi].sinks.size();
    return n;
  }());
}

TEST_F(AttackTest, PinSwapBaselineWeakerThanProposed) {
  const Netlist original = bench("c1355", 2);
  // Pin swapping [3]: few real swaps, no lifting.
  const auto swapped = core::layout_pin_swapped(original, flow(), 6, 4);
  const auto view_swap = core::split_layout(
      swapped.erroneous, swapped.layout.placement, swapped.layout.routing,
      swapped.layout.tasks, swapped.layout.num_net_tasks, 4);
  const auto res_swap = attack::proximity_attack(
      swapped.erroneous, original, swapped.layout.placement, view_swap,
      &swapped.ledger, quick_attack());

  RandomizeOptions r;
  r.seed = 4;
  r.check_patterns = 1024;
  const auto design = core::protect(original, r, flow());
  const auto view_prop = core::split_layout(
      design.erroneous, design.layout.placement, design.layout.routing,
      design.layout.tasks, design.layout.num_net_tasks, 4);
  const auto res_prop = attack::proximity_attack(
      design.erroneous, original, design.layout.placement, view_prop,
      &design.ledger, quick_attack());

  // Overall CCR: pin swapping perturbs only a handful of connections, so the
  // attacker still recovers far more of the cut connections than against the
  // proposed scheme. (HD is NOT the differentiator — the paper's Table 5
  // reports 26-50% HD for [3], comparable to the proposed 40%, because even
  // a few wrong central nets wreck many outputs.)
  EXPECT_GT(res_swap.ccr(), res_prop.ccr() + 0.3);
}

TEST_F(AttackTest, JobsBitIdenticalOnRealLayout) {
  // End-to-end version of the ISSUE-4 determinism criterion: the sharded
  // attack (candidate generation + repair orderings + sim blocks) on an
  // actual routed layout is bit-identical to the serial run, with the
  // spatial index forced on.
  const Netlist original = bench();
  const auto layout = core::layout_original(original, flow());
  const auto view = core::split_layout(original, layout.placement,
                                       layout.routing, layout.tasks,
                                       layout.num_net_tasks, 3);
  attack::ProximityOptions opts = quick_attack();
  opts.index_min_drivers = 0;
  opts.jobs = 1;
  const auto serial = attack::proximity_attack(original, original,
                                               layout.placement, view,
                                               nullptr, opts);
  opts.jobs = 4;
  const auto parallel = attack::proximity_attack(original, original,
                                                 layout.placement, view,
                                                 nullptr, opts);
  EXPECT_EQ(serial.open_sinks, parallel.open_sinks);
  EXPECT_EQ(serial.matched, parallel.matched);
  EXPECT_EQ(serial.correct, parallel.correct);
  EXPECT_EQ(serial.rates.oer, parallel.rates.oer);
  EXPECT_EQ(serial.rates.hd, parallel.rates.hd);
  EXPECT_EQ(serial.rates.patterns, parallel.rates.patterns);
}

// ISSUE-10: the warm-started MCMF repair loop (one live solver across
// loop-repair rounds, only the removed arcs re-routed) must produce the
// IDENTICAL assignment — not merely equal cost — as the cold path that
// rebuilds and re-solves the reduced network every round. The rigs below
// split at M3, where the flow's optimum collides with combinational-loop
// constraints for many rounds (c2670: ~20 repair rounds), so the contract
// is exercised for real, not vacuously.
class WarmColdRig : public AttackTest {
 protected:
  void expect_warm_equals_cold(const char* name, int split,
                               core::FlowOptions f) {
    const Netlist original = bench(name);
    const auto layout = core::layout_original(original, f);
    const auto view = core::split_layout(original, layout.placement,
                                         layout.routing, layout.tasks,
                                         layout.num_net_tasks, split);
    attack::ProximityOptions opts = quick_attack();
    opts.eval_patterns = 256;  // the matcher is under test, not the sim
    opts.mcmf_warm = true;
    const auto warm = attack::proximity_attack(original, original,
                                               layout.placement, view,
                                               nullptr, opts);
    opts.mcmf_warm = false;
    const auto cold = attack::proximity_attack(original, original,
                                               layout.placement, view,
                                               nullptr, opts);
    EXPECT_EQ(warm.open_sinks, cold.open_sinks);
    EXPECT_EQ(warm.matched, cold.matched);
    EXPECT_EQ(warm.correct, cold.correct);  // assignment-level equality
    EXPECT_EQ(warm.rates.oer, cold.rates.oer);
    EXPECT_EQ(warm.rates.hd, cold.rates.hd);
    EXPECT_EQ(warm.rates.patterns, cold.rates.patterns);
    EXPECT_GT(warm.matched, 0u);
  }
};

TEST_F(WarmColdRig, C880) { expect_warm_equals_cold("c880", 3, flow()); }

TEST_F(WarmColdRig, C2670) { expect_warm_equals_cold("c2670", 3, flow()); }

TEST_F(WarmColdRig, C7552) {
  // The bench_micro AttackRig recipe (bench/bench_micro.cpp
  // BM_AttackCandidatesIndexed): c7552, router passes 2, split M3 — the
  // rig the ISSUE-10 ≥20% serial speedup is measured on.
  core::FlowOptions f = flow();
  f.router.passes = 2;
  expect_warm_equals_cold("c7552", 3, f);
}

TEST_F(AttackTest, CRoutingCountsCandidates) {
  const Netlist original = bench();
  const auto layout = core::layout_original(original, flow());
  // Split at M3: c880 originals cross M4 only marginally (seed-dependent,
  // and 0 vpins would make every metric vacuous), while M3 always cuts a
  // healthy handful of nets.
  const auto view = core::split_layout(original, layout.placement,
                                       layout.routing, layout.tasks,
                                       layout.num_net_tasks, 3);
  const auto res = attack::crouting_attack(view);
  EXPECT_FALSE(res.failed);
  EXPECT_EQ(res.num_vpins, view.num_vpins());
  ASSERT_EQ(res.candidate_list_size.size(), 3u);
  // Larger boxes admit more candidates.
  EXPECT_LE(res.candidate_list_size[0], res.candidate_list_size[1]);
  EXPECT_LE(res.candidate_list_size[1], res.candidate_list_size[2]);
  EXPECT_LE(res.match_in_list[0], res.match_in_list[2]);
  EXPECT_GT(res.match_in_list[2], 0.5);  // true partner usually nearby
}

TEST_F(AttackTest, CRoutingEmptyViewFails) {
  core::SplitView empty;
  const auto res = attack::crouting_attack(empty);
  EXPECT_TRUE(res.failed);
  EXPECT_EQ(res.num_vpins, 0u);
}

TEST_F(AttackTest, ProposedIncreasesVpinsOverOriginal) {
  const Netlist original = bench("c1908", 5);
  const auto layout = core::layout_original(original, flow());
  RandomizeOptions r;
  r.seed = 6;
  r.check_patterns = 1024;
  const auto design = core::protect(original, r, flow());
  const auto v_orig = core::split_layout(original, layout.placement,
                                         layout.routing, layout.tasks,
                                         layout.num_net_tasks, 5);
  const auto v_prop = core::split_layout(
      design.erroneous, design.layout.placement, design.layout.routing,
      design.layout.tasks, design.layout.num_net_tasks, 5);
  EXPECT_GT(v_prop.num_vpins(), v_orig.num_vpins());
}

}  // namespace
