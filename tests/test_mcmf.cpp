// Min-cost max-flow kernel tests (the matching engine of the network-flow
// proximity attack): cold-solve correctness, the incremental warm-start API
// (remove_edge/update_edge/resolve), and the randomized cold==warm equality
// harness the ISSUE-10 determinism contract rests on.
#include "attack/mcmf.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace {

using sm::attack::MinCostFlow;

TEST(Mcmf, SimplePath) {
  MinCostFlow f(3);
  const int e0 = f.add_edge(0, 1, 2, 1.0);
  const int e1 = f.add_edge(1, 2, 2, 1.0);
  const auto [flow, cost] = f.solve(0, 2, 5);
  EXPECT_EQ(flow, 2);
  EXPECT_DOUBLE_EQ(cost, 4.0);
  EXPECT_EQ(f.flow_on(e0), 2);
  EXPECT_EQ(f.flow_on(e1), 2);
}

TEST(Mcmf, PrefersCheaperPath) {
  // 0 -> 1 -> 3 (cost 2) and 0 -> 2 -> 3 (cost 10); one unit should take the
  // cheap route.
  MinCostFlow f(4);
  const int cheap1 = f.add_edge(0, 1, 1, 1.0);
  f.add_edge(1, 3, 1, 1.0);
  const int rich1 = f.add_edge(0, 2, 1, 5.0);
  f.add_edge(2, 3, 1, 5.0);
  const auto [flow, cost] = f.solve(0, 3, 1);
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_EQ(f.flow_on(cheap1), 1);
  EXPECT_EQ(f.flow_on(rich1), 0);
}

TEST(Mcmf, OptimalAssignmentBeatsGreedy) {
  // Assignment where greedy nearest-first is suboptimal:
  //   sinks {A, B}, drivers {X, Y}; costs A-X=1, A-Y=2, B-X=1.5, B-Y=100.
  // Greedy takes A-X (1) then B-Y (100) = 101; optimal is A-Y + B-X = 3.5.
  MinCostFlow f(6);  // 0=s, 1=A, 2=B, 3=X, 4=Y, 5=t
  f.add_edge(0, 1, 1, 0);
  f.add_edge(0, 2, 1, 0);
  const int ax = f.add_edge(1, 3, 1, 1.0);
  const int ay = f.add_edge(1, 4, 1, 2.0);
  const int bx = f.add_edge(2, 3, 1, 1.5);
  const int by = f.add_edge(2, 4, 1, 100.0);
  f.add_edge(3, 5, 1, 0);
  f.add_edge(4, 5, 1, 0);
  const auto [flow, cost] = f.solve(0, 5, 2);
  EXPECT_EQ(flow, 2);
  EXPECT_DOUBLE_EQ(cost, 3.5);
  EXPECT_EQ(f.flow_on(ay), 1);
  EXPECT_EQ(f.flow_on(bx), 1);
  EXPECT_EQ(f.flow_on(ax), 0);
  EXPECT_EQ(f.flow_on(by), 0);
}

TEST(Mcmf, RespectsCapacities) {
  // One driver with capacity 2 must not absorb 3 sinks.
  MinCostFlow f(6);  // 0=s, 1..3=sinks, 4=driver, 5=t
  for (int i = 1; i <= 3; ++i) {
    f.add_edge(0, i, 1, 0);
    f.add_edge(i, 4, 1, 1.0);
  }
  f.add_edge(4, 5, 2, 0);
  const auto [flow, cost] = f.solve(0, 5, 3);
  EXPECT_EQ(flow, 2);
  EXPECT_DOUBLE_EQ(cost, 2.0);
}

TEST(Mcmf, DisconnectedReturnsPartialFlow) {
  MinCostFlow f(4);
  f.add_edge(0, 1, 1, 1.0);
  // node 2, 3 unreachable
  const auto [flow, cost] = f.solve(0, 3, 1);
  EXPECT_EQ(flow, 0);
  EXPECT_DOUBLE_EQ(cost, 0.0);
}

TEST(Mcmf, NegativePreferenceViaResiduals) {
  // Rerouting: first unit takes the cheap middle edge; the second must
  // reroute around it. Classic flow-cancellation correctness check.
  //   s=0, t=3; edges: 0->1 (2, c1), 1->3 (1, c1), 0->2 (1, c3),
  //   1->2 (1, c0), 2->3 (2, c1).
  MinCostFlow f(4);
  f.add_edge(0, 1, 2, 1.0);
  f.add_edge(1, 3, 1, 1.0);
  f.add_edge(0, 2, 1, 3.0);
  f.add_edge(1, 2, 1, 0.0);
  f.add_edge(2, 3, 2, 1.0);
  const auto [flow, cost] = f.solve(0, 3, 3);
  EXPECT_EQ(flow, 3);
  // min cost: unit1 0-1-3 (2), unit2 0-1-2-3 (2), unit3 0-2-3 (4) = 8.
  EXPECT_DOUBLE_EQ(cost, 8.0);
}

TEST(Mcmf, MaxFlowSmallerThanSaturation) {
  // The network could carry 3 units; a budget of 1 must route exactly the
  // single cheapest unit and leave the rest of the capacity untouched.
  MinCostFlow f(5);  // 0=s, 1..2=mid, 4=t
  const int cheap = f.add_edge(0, 1, 2, 1.0);
  f.add_edge(1, 4, 2, 1.0);
  const int rich = f.add_edge(0, 2, 1, 5.0);
  f.add_edge(2, 4, 1, 5.0);
  const auto [flow, cost] = f.solve(0, 4, 1);
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_EQ(f.flow_on(cheap), 1);
  EXPECT_EQ(f.flow_on(rich), 0);
}

TEST(Mcmf, SolveBudgetAccumulates) {
  // Two solve(s, t, 1) calls equal one solve(s, t, 2): the budget is
  // cumulative and each call only routes the *additional* units.
  MinCostFlow inc(5);
  MinCostFlow once(5);
  for (MinCostFlow* f : {&inc, &once}) {
    f->add_edge(0, 1, 2, 1.0);
    f->add_edge(1, 4, 2, 1.0);
    f->add_edge(0, 2, 1, 5.0);
    f->add_edge(2, 4, 1, 5.0);
  }
  inc.solve(0, 4, 1);
  const auto [fi, ci] = inc.solve(0, 4, 1);
  const auto [fo, co] = once.solve(0, 4, 2);
  EXPECT_EQ(fi, fo);
  EXPECT_EQ(ci, co);  // identical flows => identical edge-order cost sum
}

TEST(Mcmf, ZeroCapacityArcsAreInert) {
  // Zero-capacity arcs (pre-solve and post-solve) never carry flow and
  // never divert the search, however cheap they claim to be.
  MinCostFlow f(4);
  const int dead = f.add_edge(0, 2, 0, -100.0);
  const int a = f.add_edge(0, 1, 1, 1.0);
  const int b = f.add_edge(1, 3, 1, 1.0);
  const int dead2 = f.add_edge(2, 3, 0, -100.0);
  const auto [flow, cost] = f.solve(0, 3, 2);
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_EQ(f.flow_on(dead), 0);
  EXPECT_EQ(f.flow_on(dead2), 0);
  const int dead3 = f.add_edge(0, 3, 0, -100.0);  // post-solve, still cap 0
  const auto [flow2, cost2] = f.resolve();
  EXPECT_EQ(flow2, 1);
  EXPECT_DOUBLE_EQ(cost2, 2.0);
  EXPECT_EQ(f.flow_on(dead3), 0);
  EXPECT_EQ(f.flow_on(a), 1);
  EXPECT_EQ(f.flow_on(b), 1);
}

TEST(Mcmf, RemoveEdgeReroutesWarm) {
  // Remove the carrying edge after a solve; resolve() must re-route onto
  // the expensive path and report the same totals as a cold solve of the
  // reduced network.
  MinCostFlow f(4);
  const int cheap = f.add_edge(0, 1, 1, 1.0);
  f.add_edge(1, 3, 1, 1.0);
  const int rich = f.add_edge(0, 2, 1, 5.0);
  f.add_edge(2, 3, 1, 5.0);
  f.solve(0, 3, 1);
  ASSERT_EQ(f.flow_on(cheap), 1);
  f.remove_edge(cheap);
  const auto [flow, cost] = f.resolve();
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, 10.0);
  EXPECT_EQ(f.flow_on(cheap), 0);
  EXPECT_EQ(f.flow_on(rich), 1);
}

TEST(Mcmf, RemoveLastPathDropsFlow) {
  // When no alternative path exists the delivered flow itself must shrink
  // (the repair routes the sink-side deficit back from t).
  MinCostFlow f(3);
  const int e = f.add_edge(0, 1, 1, 1.0);
  f.add_edge(1, 2, 1, 1.0);
  f.solve(0, 2, 1);
  f.remove_edge(e);
  const auto [flow, cost] = f.resolve();
  EXPECT_EQ(flow, 0);
  EXPECT_DOUBLE_EQ(cost, 0.0);
}

TEST(Mcmf, UpdateEdgeNegativeReducedCostResidual) {
  // Post-solve cost updates that flip residual reduced costs negative (both
  // directions: a now-attractive empty arc, and a now-overpriced carrying
  // arc) must leave resolve() at the cold optimum of the updated network.
  MinCostFlow f(4);
  const int top = f.add_edge(0, 1, 1, 1.0);
  const int top2 = f.add_edge(1, 3, 1, 1.0);
  const int bot = f.add_edge(0, 2, 1, 5.0);
  const int bot2 = f.add_edge(2, 3, 1, 5.0);
  f.solve(0, 3, 1);
  ASSERT_EQ(f.flow_on(top), 1);
  // Make the carried path expensive and the empty one attractive — the
  // updated forward arc 0->2 now has negative reduced cost against the old
  // potentials, and the reverse of 0->1 does as well.
  f.update_edge(top, 1, 50.0);
  f.update_edge(bot, 1, 0.5);
  const auto [flow, cost] = f.resolve();
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, 5.5);
  EXPECT_EQ(f.flow_on(top), 0);
  EXPECT_EQ(f.flow_on(top2), 0);
  EXPECT_EQ(f.flow_on(bot), 1);
  EXPECT_EQ(f.flow_on(bot2), 1);
}

TEST(Mcmf, CapacityBelowFlowPushesOverhangBack) {
  // Shrinking a carrying edge below its flow must shed exactly the
  // overhang; the remaining capacity keeps flowing.
  MinCostFlow f(3);
  const int e0 = f.add_edge(0, 1, 3, 1.0);
  const int e1 = f.add_edge(1, 2, 3, 1.0);
  f.solve(0, 2, 3);
  ASSERT_EQ(f.flow_on(e0), 3);
  f.update_edge(e0, 1, 1.0);
  const auto [flow, cost] = f.resolve();
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_EQ(f.flow_on(e0), 1);
  EXPECT_EQ(f.flow_on(e1), 1);
}

TEST(Mcmf, AddEdgeAfterSolveParticipates) {
  // A cheaper edge added post-solve (negative reduced cost on arrival) must
  // take over the unit on resolve().
  MinCostFlow f(4);
  const int rich = f.add_edge(0, 2, 1, 5.0);
  const int rich2 = f.add_edge(2, 3, 1, 5.0);
  f.solve(0, 3, 1);
  ASSERT_EQ(f.flow_on(rich), 1);
  const int cheap = f.add_edge(0, 1, 1, 1.0);
  const int cheap2 = f.add_edge(1, 3, 1, 1.0);
  const auto [flow, cost] = f.resolve();
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_EQ(f.flow_on(cheap), 1);
  EXPECT_EQ(f.flow_on(cheap2), 1);
  EXPECT_EQ(f.flow_on(rich), 0);
  EXPECT_EQ(f.flow_on(rich2), 0);
}

TEST(Mcmf, NegativeCostEdgesSolveCold) {
  // Pre-solve negative costs route through the Bellman-Ford potential
  // bootstrap (the graph is acyclic, so no negative cycle exists).
  MinCostFlow f(3);
  f.add_edge(0, 1, 1, -5.0);
  f.add_edge(1, 2, 1, 1.0);
  const auto [flow, cost] = f.solve(0, 2, 1);
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, -4.0);
}

TEST(Mcmf, NegativeCycleThrows) {
  MinCostFlow f(3);
  f.add_edge(0, 1, 1, 1.0);
  f.add_edge(1, 2, 1, -3.0);
  f.add_edge(2, 1, 1, 1.0);  // 1 -> 2 -> 1 costs -2
  EXPECT_THROW(f.solve(0, 2, 1), std::logic_error);
}

TEST(Mcmf, ApiMisuseThrows) {
  MinCostFlow f(3);
  const int e = f.add_edge(0, 1, 1, 1.0);
  f.add_edge(1, 2, 1, 1.0);
  EXPECT_THROW(f.resolve(), std::logic_error);       // resolve before solve
  EXPECT_THROW(f.solve(0, 0, 1), std::invalid_argument);  // s == t
  EXPECT_THROW(f.update_edge(e, -1, 1.0), std::invalid_argument);
  f.solve(0, 2, 1);
  EXPECT_THROW(f.solve(1, 2, 1), std::logic_error);  // terminals are fixed
}

// The cold==warm equality harness: random assignment-shaped networks, a
// random history of post-solve perturbations (edge removals, capacity and
// cost updates, late edge additions, extra budget), then a bitwise
// comparison of the warm solver's final state against a cold solver built
// directly on the final network. Not merely equal cost — every edge's flow
// must match, which is the property the attack's loop-repair rounds rely
// on. Costs follow the warm-start contract's integer-exact domain (as the
// attack's do): a random integer base in the high bits plus 28 random
// tie-break bits in the low bits, so every sum the solver forms is an
// exact integer below 2^53 and the optimum is unique by the isolation
// lemma — the pinned (cost, node, edge-id) tie-break has nothing left to
// decide.
TEST(Mcmf, RandomizedColdEqualsWarm) {
  constexpr int kTrials = 1200;
  std::size_t perturbations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    sm::util::Rng rng(0x12345678ULL + static_cast<std::uint64_t>(trial));
    const int ns = static_cast<int>(rng.range(1, 10));
    const int nd = static_cast<int>(rng.range(1, 6));
    const int n = 2 + ns + nd;
    const int S = 0, T = 1;
    const auto sink_node = [&](int si) { return 2 + si; };
    const auto drv_node = [&](int di) { return 2 + ns + di; };

    struct Spec {
      int from, to, cap;
      double cost;
    };
    std::vector<Spec> specs;
    MinCostFlow warm(n);
    const auto add = [&](int from, int to, int cap, double cost) {
      const int id = warm.add_edge(from, to, cap, cost);
      EXPECT_EQ(id, static_cast<int>(specs.size()));
      specs.push_back({from, to, cap, cost});
      return id;
    };
    const auto rand_cost = [&] {
      // Integer-valued doubles, base * 2^28 + 28 random low bits: exact
      // arithmetic throughout the solver, unique optimum w.p.
      // 1 - edges/2^28 per trial (isolation lemma).
      const double base = static_cast<double>(rng.below(1u << 10));
      const double tie = static_cast<double>(rng.below(1u << 28));
      return base * 268435456.0 + tie;
    };
    for (int si = 0; si < ns; ++si) add(S, sink_node(si), 1, 0.0);
    for (int di = 0; di < nd; ++di)
      add(drv_node(di), T, static_cast<int>(rng.range(0, 3)), 0.0);
    for (int si = 0; si < ns; ++si)
      for (int di = 0; di < nd; ++di) {
        if (rng.uniform() < 0.3) continue;  // sparse candidate lists
        add(sink_node(si), drv_node(di), static_cast<int>(rng.range(0, 2)),
            rand_cost());
      }

    int budget = static_cast<int>(rng.range(1, ns));
    warm.solve(S, T, budget);

    const int rounds = static_cast<int>(rng.range(1, 4));
    for (int round = 0; round < rounds; ++round) {
      const int ops = static_cast<int>(rng.range(1, 4));
      for (int op = 0; op < ops; ++op, ++perturbations) {
        switch (rng.range(0, 3)) {
          case 0: {  // remove a random edge (capacity 0, cost kept)
            const auto id = static_cast<std::size_t>(
                rng.below(specs.size()));
            warm.remove_edge(static_cast<int>(id));
            specs[id].cap = 0;
            break;
          }
          case 1: {  // re-cost / re-size a random edge
            const auto id = static_cast<std::size_t>(
                rng.below(specs.size()));
            const int cap = static_cast<int>(rng.range(0, 3));
            // Occasionally negative: the graph is a DAG, so any cost sign
            // is cycle-safe, and negative reduced costs must saturate.
            // The offset is itself an exact integer so the cost domain
            // stays integer-valued.
            const double cost =
                rand_cost() - (rng.uniform() < 0.2 ? 50.0 * 268435456.0 : 0.0);
            warm.update_edge(static_cast<int>(id), cap, cost);
            specs[id].cap = cap;
            specs[id].cost = cost;
            break;
          }
          case 2: {  // late candidate edge
            const int si = static_cast<int>(rng.range(0, ns - 1));
            const int di = static_cast<int>(rng.range(0, nd - 1));
            add(sink_node(si), drv_node(di),
                static_cast<int>(rng.range(0, 2)), rand_cost());
            break;
          }
          default: {  // grow the budget
            const int extra = static_cast<int>(rng.range(1, 2));
            budget += extra;
            warm.solve(S, T, extra);
            break;
          }
        }
      }
      warm.resolve();
    }

    MinCostFlow cold(n);
    for (const auto& s : specs) cold.add_edge(s.from, s.to, s.cap, s.cost);
    const auto [cf, cc] = cold.solve(S, T, budget);
    EXPECT_EQ(cf, warm.flow()) << "trial " << trial;
    EXPECT_EQ(cc, warm.cost()) << "trial " << trial;
    for (std::size_t id = 0; id < specs.size(); ++id)
      ASSERT_EQ(cold.flow_on(static_cast<int>(id)),
                warm.flow_on(static_cast<int>(id)))
          << "trial " << trial << " edge " << id;
    // Feasibility invariants, independent of the cold reference.
    std::vector<int> net(static_cast<std::size_t>(n), 0);
    for (std::size_t id = 0; id < specs.size(); ++id) {
      const int fl = warm.flow_on(static_cast<int>(id));
      ASSERT_GE(fl, 0);
      ASSERT_LE(fl, specs[id].cap);
      net[static_cast<std::size_t>(specs[id].from)] -= fl;
      net[static_cast<std::size_t>(specs[id].to)] += fl;
    }
    ASSERT_EQ(net[static_cast<std::size_t>(T)], warm.flow());
    ASSERT_EQ(net[static_cast<std::size_t>(S)], -warm.flow());
    for (int v = 2; v < n; ++v) ASSERT_EQ(net[static_cast<std::size_t>(v)], 0);
  }
  // The harness must actually exercise the incremental API at scale.
  EXPECT_GE(perturbations, 1000u);
}

}  // namespace
