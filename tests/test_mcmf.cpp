// Min-cost max-flow kernel tests (the matching engine of the network-flow
// proximity attack).
#include "attack/mcmf.hpp"

#include <gtest/gtest.h>

namespace {

using sm::attack::MinCostFlow;

TEST(Mcmf, SimplePath) {
  MinCostFlow f(3);
  const int e0 = f.add_edge(0, 1, 2, 1.0);
  const int e1 = f.add_edge(1, 2, 2, 1.0);
  const auto [flow, cost] = f.solve(0, 2, 5);
  EXPECT_EQ(flow, 2);
  EXPECT_DOUBLE_EQ(cost, 4.0);
  EXPECT_EQ(f.flow_on(e0), 2);
  EXPECT_EQ(f.flow_on(e1), 2);
}

TEST(Mcmf, PrefersCheaperPath) {
  // 0 -> 1 -> 3 (cost 2) and 0 -> 2 -> 3 (cost 10); one unit should take the
  // cheap route.
  MinCostFlow f(4);
  const int cheap1 = f.add_edge(0, 1, 1, 1.0);
  f.add_edge(1, 3, 1, 1.0);
  const int rich1 = f.add_edge(0, 2, 1, 5.0);
  f.add_edge(2, 3, 1, 5.0);
  const auto [flow, cost] = f.solve(0, 3, 1);
  EXPECT_EQ(flow, 1);
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_EQ(f.flow_on(cheap1), 1);
  EXPECT_EQ(f.flow_on(rich1), 0);
}

TEST(Mcmf, OptimalAssignmentBeatsGreedy) {
  // Assignment where greedy nearest-first is suboptimal:
  //   sinks {A, B}, drivers {X, Y}; costs A-X=1, A-Y=2, B-X=1.5, B-Y=100.
  // Greedy takes A-X (1) then B-Y (100) = 101; optimal is A-Y + B-X = 3.5.
  MinCostFlow f(6);  // 0=s, 1=A, 2=B, 3=X, 4=Y, 5=t
  f.add_edge(0, 1, 1, 0);
  f.add_edge(0, 2, 1, 0);
  const int ax = f.add_edge(1, 3, 1, 1.0);
  const int ay = f.add_edge(1, 4, 1, 2.0);
  const int bx = f.add_edge(2, 3, 1, 1.5);
  const int by = f.add_edge(2, 4, 1, 100.0);
  f.add_edge(3, 5, 1, 0);
  f.add_edge(4, 5, 1, 0);
  const auto [flow, cost] = f.solve(0, 5, 2);
  EXPECT_EQ(flow, 2);
  EXPECT_DOUBLE_EQ(cost, 3.5);
  EXPECT_EQ(f.flow_on(ay), 1);
  EXPECT_EQ(f.flow_on(bx), 1);
  EXPECT_EQ(f.flow_on(ax), 0);
  EXPECT_EQ(f.flow_on(by), 0);
}

TEST(Mcmf, RespectsCapacities) {
  // One driver with capacity 2 must not absorb 3 sinks.
  MinCostFlow f(6);  // 0=s, 1..3=sinks, 4=driver, 5=t
  for (int i = 1; i <= 3; ++i) {
    f.add_edge(0, i, 1, 0);
    f.add_edge(i, 4, 1, 1.0);
  }
  f.add_edge(4, 5, 2, 0);
  const auto [flow, cost] = f.solve(0, 5, 3);
  EXPECT_EQ(flow, 2);
  EXPECT_DOUBLE_EQ(cost, 2.0);
}

TEST(Mcmf, DisconnectedReturnsPartialFlow) {
  MinCostFlow f(4);
  f.add_edge(0, 1, 1, 1.0);
  // node 2, 3 unreachable
  const auto [flow, cost] = f.solve(0, 3, 1);
  EXPECT_EQ(flow, 0);
  EXPECT_DOUBLE_EQ(cost, 0.0);
}

TEST(Mcmf, NegativePreferenceViaResiduals) {
  // Rerouting: first unit takes the cheap middle edge; the second must
  // reroute around it. Classic flow-cancellation correctness check.
  //   s=0, t=3; edges: 0->1 (2, c1), 1->3 (1, c1), 0->2 (1, c3),
  //   1->2 (1, c0), 2->3 (2, c1).
  MinCostFlow f(4);
  f.add_edge(0, 1, 2, 1.0);
  f.add_edge(1, 3, 1, 1.0);
  f.add_edge(0, 2, 1, 3.0);
  f.add_edge(1, 2, 1, 0.0);
  f.add_edge(2, 3, 2, 1.0);
  const auto [flow, cost] = f.solve(0, 3, 3);
  EXPECT_EQ(flow, 3);
  // min cost: unit1 0-1-3 (2), unit2 0-1-2-3 (2), unit3 0-2-3 (4) = 8.
  EXPECT_DOUBLE_EQ(cost, 8.0);
}

}  // namespace
