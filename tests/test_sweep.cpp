// Tests for the parallel attack-sweep driver: grid spec parsing, empty-grid
// edge cases, export formats, and the headline guarantee — CCR/OER/HD
// bit-identical between --jobs=1 and --jobs=8 on the same grid.
#include "sweep/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace sm;

TEST(SweepGrid, ParsesFullSpec) {
  const auto g = sweep::Grid::parse(
      "benchmarks=c432,c880;seeds=1,2;splits=3,5;defenses=proposed;"
      "scale=0.05");
  EXPECT_EQ(g.benchmarks, (std::vector<std::string>{"c432", "c880"}));
  EXPECT_EQ(g.seeds, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(g.split_layers, (std::vector<int>{3, 5}));
  ASSERT_EQ(g.defenses.size(), 1u);
  EXPECT_EQ(g.defenses[0], sweep::Defense::Proposed);
  EXPECT_DOUBLE_EQ(g.scale, 0.05);
  EXPECT_EQ(g.combinations(), 2u * 2u * 2u * 1u);
}

TEST(SweepGrid, OmittedKeysKeepDefaults) {
  const auto g = sweep::Grid::parse("benchmarks=c432");
  EXPECT_EQ(g.seeds, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(g.split_layers, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(g.defenses.size(), 2u);
}

TEST(SweepGrid, SkipsEmptyListEntries) {
  const auto g = sweep::Grid::parse("benchmarks=c432,,c880,;seeds=7,");
  EXPECT_EQ(g.benchmarks, (std::vector<std::string>{"c432", "c880"}));
  EXPECT_EQ(g.seeds, (std::vector<std::uint64_t>{7}));
}

TEST(SweepGrid, RejectsMalformedSpecs) {
  EXPECT_THROW(sweep::Grid::parse("bogus-key=1"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("no-equals"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("seeds=abc"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("defenses=voodoo"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("scale=much"), std::invalid_argument);
  // Trailing garbage must not be silently truncated (stoi-style parsing).
  EXPECT_THROW(sweep::Grid::parse("splits=4junk"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("seeds=-1"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("scale=0.05x"), std::invalid_argument);
}

TEST(SweepGrid, SetSharesTheValidatedPathWithParse) {
  sweep::Grid g;
  g.set("splits", "3,5,");
  EXPECT_EQ(g.split_layers, (std::vector<int>{3, 5}));
  g.set("seeds", "11");
  EXPECT_EQ(g.seeds, (std::vector<std::uint64_t>{11}));
  EXPECT_THROW(g.set("splits", "4junk"), std::invalid_argument);
  EXPECT_THROW(g.set("wat", "1"), std::invalid_argument);
}

TEST(SweepDefense, RoundTripsNames) {
  EXPECT_EQ(sweep::defense_from_string("unprotected"),
            sweep::Defense::Unprotected);
  EXPECT_EQ(sweep::defense_from_string("original"),
            sweep::Defense::Unprotected);
  EXPECT_EQ(sweep::defense_from_string("proposed"), sweep::Defense::Proposed);
  EXPECT_EQ(sweep::defense_from_string("protected"), sweep::Defense::Proposed);
  EXPECT_STREQ(sweep::to_string(sweep::Defense::Proposed), "proposed");
}

TEST(Sweep, EmptyGridProducesEmptyResult) {
  sweep::Grid grid;  // no benchmarks
  const auto res = sweep::run(grid, {});
  EXPECT_TRUE(res.rows.empty());
  EXPECT_EQ(grid.combinations(), 0u);
  // Renderers and exporters must cope with zero rows.
  EXPECT_FALSE(res.table().render().empty());
  EXPECT_FALSE(res.summary().render().empty());
  EXPECT_NE(res.to_csv().find("benchmark,seed"), std::string::npos);
  EXPECT_NE(res.to_json().find("\"rows\": []"), std::string::npos);
}

TEST(Sweep, EmptySplitListProducesEmptyResult) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.split_layers.clear();
  const auto res = sweep::run(grid, {});
  EXPECT_TRUE(res.rows.empty());
}

TEST(Sweep, UnknownBenchmarkThrowsBeforeRunning) {
  sweep::Grid grid;
  grid.benchmarks = {"c432", "c9999"};
  EXPECT_THROW(sweep::run(grid, {}), std::invalid_argument);
}

// The acceptance criterion: the same grid swept with 1 and with 8 worker
// threads yields bit-identical attack metrics (only wall-clock may differ).
TEST(Sweep, EightJobsBitIdenticalToOneJob) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1, 2};
  grid.split_layers = {4};
  // Both defenses: Proposed exercises protect(); Unprotected the baseline.
  sweep::Options opts;
  opts.patterns = 1500;

  opts.jobs = 1;
  const auto serial = sweep::run(grid, opts);
  opts.jobs = 8;
  const auto parallel = sweep::run(grid, opts);

  EXPECT_EQ(serial.jobs, 1u);
  // Result::jobs is the resolved count: 8 requested, but only 4 tasks
  // (2 seeds x 2 defenses) exist to run on.
  EXPECT_EQ(parallel.jobs, 4u);
  ASSERT_EQ(serial.rows.size(), grid.combinations());
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const auto& a = serial.rows[i];
    const auto& b = parallel.rows[i];
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.split_layer, b.split_layer);
    EXPECT_EQ(a.defense, b.defense);
    EXPECT_EQ(a.ccr, b.ccr);  // bitwise, not NEAR: the contract is identity
    EXPECT_EQ(a.ccr_protected, b.ccr_protected);
    EXPECT_EQ(a.oer, b.oer);
    EXPECT_EQ(a.hd, b.hd);
    EXPECT_EQ(a.open_sinks, b.open_sinks);
    EXPECT_EQ(a.swaps, b.swaps);
  }
  // Sanity on the metrics themselves. Unprotected layouts of tiny circuits
  // may route entirely below the split (zero open sinks), but the proposed
  // defense lifts wires above it by construction.
  for (const auto& row : serial.rows) {
    if (row.defense == sweep::Defense::Proposed) {
      EXPECT_GE(row.open_sinks, 1u);
      EXPECT_GE(row.swaps, 1u);
    }
  }

  // Shared-stage accounting: the grid spans 2 (bench, seed) groups × 2
  // defenses, and each shared stage ran exactly once per group — the
  // netlist for both defenses, placement + base route for Unprotected.
  // The counters are part of the determinism contract too.
  for (const auto* r : {&serial, &parallel}) {
    EXPECT_EQ(r->cache_stats.netlists, 2u);
    EXPECT_EQ(r->cache_stats.placements, 2u);
    EXPECT_EQ(r->cache_stats.base_routes, 2u);
    EXPECT_EQ(r->cache_stats.hits, 2u);  // the Proposed tasks' netlist reuse
  }
}

TEST(Sweep, ExportsContainEveryRow) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {3};
  grid.split_layers = {4, 5};
  grid.defenses = {sweep::Defense::Unprotected};
  sweep::Options opts;
  opts.patterns = 500;
  const auto res = sweep::run(grid, opts);
  ASSERT_EQ(res.rows.size(), 2u);

  const auto csv = res.to_csv();
  EXPECT_NE(csv.find("c432,3,4,unprotected"), std::string::npos);
  EXPECT_NE(csv.find("c432,3,5,unprotected"), std::string::npos);

  const auto json = res.to_json();
  EXPECT_NE(json.find("\"split_layer\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"split_layer\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"defense\": \"unprotected\""), std::string::npos);

  // Two splits of one (benchmark, seed, defense) task share one layout —
  // and therefore report the same task wall time.
  EXPECT_EQ(res.rows[0].wall_ms, res.rows[1].wall_ms);
}

}  // namespace
