// Tests for the parallel attack-sweep driver: grid spec parsing, empty-grid
// edge cases, export formats, and the determinism guarantees — CCR/OER/HD
// bit-identical between --jobs=1 and --jobs=8, between a resumed and a
// from-scratch run, and between merged shard stores and the unsharded sweep.
#include "sweep/sweep.hpp"

#include "sweep/store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace {

using namespace sm;

// Every Row field except wall_ms, bitwise — the resume/shard determinism
// contract explicitly excludes wall time (task-granular provenance).
void expect_rows_equal_modulo_wall(const std::vector<sweep::Row>& a,
                                   const std::vector<sweep::Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].benchmark, b[i].benchmark) << "row " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "row " << i;
    EXPECT_EQ(a[i].split_layer, b[i].split_layer) << "row " << i;
    EXPECT_EQ(a[i].defense, b[i].defense) << "row " << i;
    EXPECT_EQ(a[i].ccr, b[i].ccr) << "row " << i;
    EXPECT_EQ(a[i].ccr_protected, b[i].ccr_protected) << "row " << i;
    EXPECT_EQ(a[i].oer, b[i].oer) << "row " << i;
    EXPECT_EQ(a[i].hd, b[i].hd) << "row " << i;
    EXPECT_EQ(a[i].open_sinks, b[i].open_sinks) << "row " << i;
    EXPECT_EQ(a[i].swaps, b[i].swaps) << "row " << i;
    EXPECT_EQ(a[i].attacker, b[i].attacker) << "row " << i;
    EXPECT_EQ(a[i].els, b[i].els) << "row " << i;
    EXPECT_EQ(a[i].equiv, b[i].equiv) << "row " << i;
  }
}

// Drop the trailing wall_ms column from every CSV line (it is the last
// column — the same `cut -d, -f1-10` idiom CI uses for byte comparisons).
std::string strip_wall_column(const std::string& csv) {
  std::string out;
  std::istringstream in(csv);
  std::string line;
  while (std::getline(in, line)) {
    out += line.substr(0, line.rfind(','));
    out += '\n';
  }
  return out;
}

TEST(SweepGrid, ParsesFullSpec) {
  const auto g = sweep::Grid::parse(
      "benchmarks=c432,c880;seeds=1,2;splits=3,5;defenses=proposed;"
      "scale=0.05");
  EXPECT_EQ(g.benchmarks, (std::vector<std::string>{"c432", "c880"}));
  EXPECT_EQ(g.seeds, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(g.split_layers, (std::vector<int>{3, 5}));
  ASSERT_EQ(g.defenses.size(), 1u);
  EXPECT_EQ(g.defenses[0], sweep::Defense::Proposed);
  EXPECT_DOUBLE_EQ(g.scale, 0.05);
  EXPECT_EQ(g.combinations(), 2u * 2u * 2u * 1u);
}

TEST(SweepGrid, OmittedKeysKeepDefaults) {
  const auto g = sweep::Grid::parse("benchmarks=c432");
  EXPECT_EQ(g.seeds, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(g.split_layers, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(g.defenses.size(), 2u);
}

TEST(SweepGrid, SkipsEmptyListEntries) {
  const auto g = sweep::Grid::parse("benchmarks=c432,,c880,;seeds=7,");
  EXPECT_EQ(g.benchmarks, (std::vector<std::string>{"c432", "c880"}));
  EXPECT_EQ(g.seeds, (std::vector<std::uint64_t>{7}));
}

TEST(SweepGrid, RejectsMalformedSpecs) {
  EXPECT_THROW(sweep::Grid::parse("bogus-key=1"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("no-equals"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("seeds=abc"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("defenses=voodoo"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("scale=much"), std::invalid_argument);
  // Trailing garbage must not be silently truncated (stoi-style parsing).
  EXPECT_THROW(sweep::Grid::parse("splits=4junk"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("seeds=-1"), std::invalid_argument);
  EXPECT_THROW(sweep::Grid::parse("scale=0.05x"), std::invalid_argument);
}

TEST(SweepGrid, SetSharesTheValidatedPathWithParse) {
  sweep::Grid g;
  g.set("splits", "3,5,");
  EXPECT_EQ(g.split_layers, (std::vector<int>{3, 5}));
  g.set("seeds", "11");
  EXPECT_EQ(g.seeds, (std::vector<std::uint64_t>{11}));
  g.set("split-layers", "4");  // alias of "splits"
  EXPECT_EQ(g.split_layers, (std::vector<int>{4}));
  EXPECT_THROW(g.set("splits", "4junk"), std::invalid_argument);
  EXPECT_THROW(g.set("wat", "1"), std::invalid_argument);
}

TEST(SweepGrid, SetRejectsBadValues) {
  sweep::Grid g;
  EXPECT_THROW(g.set("defenses", "fortress"), std::invalid_argument);
  EXPECT_THROW(g.set("seeds", "1,two"), std::invalid_argument);
  EXPECT_THROW(g.set("seeds", "0x10"), std::invalid_argument);
  EXPECT_THROW(g.set("scale", "1e"), std::invalid_argument);
  EXPECT_THROW(g.set("scale", ""), std::invalid_argument);
  // An empty value empties the dimension (a zero-cell grid, not an error).
  g.set("seeds", "");
  EXPECT_TRUE(g.seeds.empty());
  EXPECT_EQ(g.combinations(), 0u);
}

TEST(SweepDefense, RoundTripsNames) {
  EXPECT_EQ(sweep::defense_from_string("unprotected"),
            sweep::Defense::Unprotected);
  EXPECT_EQ(sweep::defense_from_string("original"),
            sweep::Defense::Unprotected);
  EXPECT_EQ(sweep::defense_from_string("proposed"), sweep::Defense::Proposed);
  EXPECT_EQ(sweep::defense_from_string("protected"), sweep::Defense::Proposed);
  EXPECT_STREQ(sweep::to_string(sweep::Defense::Proposed), "proposed");
}

TEST(Sweep, EmptyGridProducesEmptyResult) {
  sweep::Grid grid;  // no benchmarks
  const auto res = sweep::run(grid, {});
  EXPECT_TRUE(res.rows.empty());
  EXPECT_EQ(grid.combinations(), 0u);
  // Renderers and exporters must cope with zero rows.
  EXPECT_FALSE(res.table().render().empty());
  EXPECT_FALSE(res.summary().render().empty());
  EXPECT_NE(res.to_csv().find("benchmark,seed"), std::string::npos);
  EXPECT_NE(res.to_json().find("\"rows\": []"), std::string::npos);
}

TEST(Sweep, EmptySplitListProducesEmptyResult) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.split_layers.clear();
  const auto res = sweep::run(grid, {});
  EXPECT_TRUE(res.rows.empty());
}

TEST(Sweep, UnknownBenchmarkThrowsBeforeRunning) {
  sweep::Grid grid;
  grid.benchmarks = {"c432", "c9999"};
  EXPECT_THROW(sweep::run(grid, {}), std::invalid_argument);
}

// The acceptance criterion: the same grid swept with 1 and with 8 worker
// threads yields bit-identical attack metrics (only wall-clock may differ).
TEST(Sweep, EightJobsBitIdenticalToOneJob) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1, 2};
  grid.split_layers = {4};
  // Both defenses: Proposed exercises protect(); Unprotected the baseline.
  sweep::Options opts;
  opts.patterns = 1500;

  opts.jobs = 1;
  const auto serial = sweep::run(grid, opts);
  opts.jobs = 8;
  const auto parallel = sweep::run(grid, opts);

  EXPECT_EQ(serial.jobs, 1u);
  // Result::jobs is the resolved count: 8 requested, but only 4 tasks
  // (2 seeds x 2 defenses) exist to run on.
  EXPECT_EQ(parallel.jobs, 4u);
  ASSERT_EQ(serial.rows.size(), grid.combinations());
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const auto& a = serial.rows[i];
    const auto& b = parallel.rows[i];
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.split_layer, b.split_layer);
    EXPECT_EQ(a.defense, b.defense);
    EXPECT_EQ(a.ccr, b.ccr);  // bitwise, not NEAR: the contract is identity
    EXPECT_EQ(a.ccr_protected, b.ccr_protected);
    EXPECT_EQ(a.oer, b.oer);
    EXPECT_EQ(a.hd, b.hd);
    EXPECT_EQ(a.open_sinks, b.open_sinks);
    EXPECT_EQ(a.swaps, b.swaps);
  }
  // Sanity on the metrics themselves. Unprotected layouts of tiny circuits
  // may route entirely below the split (zero open sinks), but the proposed
  // defense lifts wires above it by construction.
  for (const auto& row : serial.rows) {
    if (row.defense == sweep::Defense::Proposed) {
      EXPECT_GE(row.open_sinks, 1u);
      EXPECT_GE(row.swaps, 1u);
    }
  }

  // Shared-stage accounting: the grid spans 2 (bench, seed) groups × 2
  // defenses, and each shared stage ran exactly once per group — the
  // netlist for both defenses, placement + base route for Unprotected.
  // The counters are part of the determinism contract too.
  for (const auto* r : {&serial, &parallel}) {
    EXPECT_EQ(r->cache_stats.netlists, 2u);
    EXPECT_EQ(r->cache_stats.placements, 2u);
    EXPECT_EQ(r->cache_stats.base_routes, 2u);
    EXPECT_EQ(r->cache_stats.hits, 2u);  // the Proposed tasks' netlist reuse
  }
}

TEST(Sweep, ExportsContainEveryRow) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {3};
  grid.split_layers = {4, 5};
  grid.defenses = {sweep::Defense::Unprotected};
  sweep::Options opts;
  opts.patterns = 500;
  const auto res = sweep::run(grid, opts);
  ASSERT_EQ(res.rows.size(), 2u);

  const auto csv = res.to_csv();
  EXPECT_NE(csv.find("c432,3,4,unprotected"), std::string::npos);
  EXPECT_NE(csv.find("c432,3,5,unprotected"), std::string::npos);

  const auto json = res.to_json();
  EXPECT_NE(json.find("\"split_layer\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"split_layer\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"defense\": \"unprotected\""), std::string::npos);

  // Two splits of one (benchmark, seed, defense) task share one layout —
  // and therefore report the same task wall time.
  EXPECT_EQ(res.rows[0].wall_ms, res.rows[1].wall_ms);
}

TEST(Sweep, RejectsInvalidShardAndResumeOptions) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  sweep::Options opts;
  opts.shard_count = 0;
  EXPECT_THROW(sweep::run(grid, opts), std::invalid_argument);
  opts.shard_count = 2;
  opts.shard_index = 2;
  EXPECT_THROW(sweep::run(grid, opts), std::invalid_argument);
  sweep::Options resume_only;
  resume_only.resume = true;  // resume without a store to resume from
  EXPECT_THROW(sweep::run(grid, resume_only), std::invalid_argument);
}

// Acceptance: a sweep interrupted after part of the grid (here: a sub-grid
// run that logged only the M4 cells) resumes into a result bit-identical
// to a from-scratch run — resumed rows come from the log, missing splits
// of partially-logged tasks are recomputed, and only wall_ms may differ.
TEST(Sweep, ResumedEqualsFromScratch) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1};
  grid.split_layers = {4, 5};
  sweep::Options opts;
  opts.patterns = 800;
  opts.jobs = 2;

  const auto scratch = sweep::run(grid, opts);
  ASSERT_EQ(scratch.rows.size(), 4u);
  EXPECT_EQ(scratch.computed_cells, 4u);
  EXPECT_EQ(scratch.resumed_cells, 0u);

  const std::string store = testing::TempDir() + "sm_sweep_resume.jsonl";
  std::remove(store.c_str());

  // "Interrupted" run: same recipe, but only the M4 split completed.
  sweep::Grid partial = grid;
  partial.split_layers = {4};
  sweep::Options popts = opts;
  popts.store_path = store;
  const auto first = sweep::run(partial, popts);
  EXPECT_EQ(first.computed_cells, 2u);

  // Resume the full grid: the two logged M4 cells are filled from the
  // store, the two M5 cells are computed (their tasks re-run, but attack
  // seeds depend only on the grid seed and split layer).
  sweep::Options ropts = opts;
  ropts.store_path = store;
  ropts.resume = true;
  const auto resumed = sweep::run(grid, ropts);
  EXPECT_EQ(resumed.resumed_cells, 2u);
  EXPECT_EQ(resumed.computed_cells, 2u);
  expect_rows_equal_modulo_wall(scratch.rows, resumed.rows);
  EXPECT_EQ(strip_wall_column(scratch.to_csv()),
            strip_wall_column(resumed.to_csv()));

  // Resuming again finds every cell logged: nothing left to compute.
  const auto done = sweep::run(grid, ropts);
  EXPECT_EQ(done.resumed_cells, 4u);
  EXPECT_EQ(done.computed_cells, 0u);
  expect_rows_equal_modulo_wall(scratch.rows, done.rows);
  std::remove(store.c_str());
}

// Acceptance: --shard 0/2 and --shard 1/2 together cover the grid exactly
// once, and the union of their stores materializes to the same table as
// the unsharded sweep (CSV byte-identical once wall_ms is stripped).
TEST(Sweep, ShardUnionMaterializesToUnsharded) {
  sweep::Grid grid;
  grid.benchmarks = {"c432"};
  grid.seeds = {1, 2};
  grid.split_layers = {4};
  sweep::Options opts;
  opts.patterns = 800;
  opts.jobs = 2;

  const auto whole = sweep::run(grid, opts);
  ASSERT_EQ(whole.rows.size(), 4u);

  const std::string s0 = testing::TempDir() + "sm_sweep_shard0.jsonl";
  const std::string s1 = testing::TempDir() + "sm_sweep_shard1.jsonl";
  std::remove(s0.c_str());
  std::remove(s1.c_str());

  std::vector<sweep::Row> shard_rows;
  for (std::size_t i = 0; i < 2; ++i) {
    sweep::Options sopts = opts;
    sopts.shard_index = i;
    sopts.shard_count = 2;
    sopts.store_path = i == 0 ? s0 : s1;
    const auto part = sweep::run(grid, sopts);
    EXPECT_EQ(part.shard_index, i);
    EXPECT_EQ(part.shard_count, 2u);
    EXPECT_EQ(part.rows.size(), 2u);  // 4 tasks round-robined across 2
    EXPECT_EQ(part.computed_cells, 2u);
    shard_rows.insert(shard_rows.end(), part.rows.begin(), part.rows.end());
  }
  // The shards partition the tasks: together they saw each cell once.
  EXPECT_EQ(shard_rows.size(), whole.rows.size());

  // Merge the two logs (order must not matter — records are keyed) and
  // materialize the full grid from them.
  const auto store = sweep::load_store({s1, s0}, /*must_exist=*/true);
  EXPECT_EQ(store.records.size(), 4u);
  EXPECT_EQ(store.duplicates, 0u);
  const auto mat = sweep::materialize(grid, opts, store);
  EXPECT_TRUE(mat.missing.empty());
  expect_rows_equal_modulo_wall(whole.rows, mat.result.rows);
  EXPECT_EQ(strip_wall_column(whole.to_csv()),
            strip_wall_column(mat.result.to_csv()));
  std::remove(s0.c_str());
  std::remove(s1.c_str());
}

}  // namespace
