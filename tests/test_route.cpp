// Router tests: grid math, connectivity of produced routes, min-layer
// (lifting) constraints, via/wirelength accounting, congestion negotiation.
#include "place/placer.hpp"
#include "route/router.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace {

using namespace sm::route;
using sm::netlist::CellLibrary;
using sm::netlist::MetalStack;
using sm::util::GridPoint;
using sm::util::Point;
using sm::util::Rect;

TEST(RouteGridTest, IndexRoundTrip) {
  RouteGrid g(Rect{{0, 0}, {28, 14}}, 2.8, 10);
  EXPECT_EQ(g.nx(), 10);
  EXPECT_EQ(g.ny(), 5);
  for (int l = 1; l <= 10; ++l)
    for (int y = 0; y < g.ny(); ++y)
      for (int x = 0; x < g.nx(); ++x) {
        const GridPoint p{x, y, l};
        EXPECT_EQ(g.at(g.index(p)), p);
      }
}

TEST(RouteGridTest, SnapClampsToBounds) {
  RouteGrid g(Rect{{0, 0}, {28, 14}}, 2.8, 10);
  EXPECT_EQ(g.snap({-5, -5}, 1), (GridPoint{0, 0, 1}));
  EXPECT_EQ(g.snap({100, 100}, 12), (GridPoint{9, 4, 10}));
  const GridPoint mid = g.snap({14, 7}, 3);
  EXPECT_TRUE(g.in_bounds(mid));
}

TEST(RouteGridTest, CapacityTracksPitch) {
  RouteGrid g(Rect{{0, 0}, {28, 28}}, 2.8, 10);
  MetalStack stack;
  // Finer pitch at M3 gives more tracks than coarse M9.
  EXPECT_GT(g.capacity(stack, 3), g.capacity(stack, 9));
  EXPECT_GE(g.capacity(stack, 9), 1);
}

TEST(RouteGridTest, RejectsBadParameters) {
  EXPECT_THROW(RouteGrid(Rect{{0, 0}, {10, 10}}, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(RouteGrid(Rect{{0, 0}, {10, 10}}, 2.8, 1), std::invalid_argument);
}

/// Verify that a NetRoute's segments form one connected component that
/// touches the gcells of all terminals.
void check_connected(const RouteGrid& grid, const NetRoute& r,
                     const std::vector<Terminal>& terminals) {
  ASSERT_TRUE(r.success);
  // Expand segments into node sets.
  std::set<std::size_t> nodes;
  std::map<std::size_t, std::vector<std::size_t>> adj;
  auto link = [&](const GridPoint& a, const GridPoint& b) {
    const auto ia = grid.index(a), ib = grid.index(b);
    nodes.insert(ia);
    nodes.insert(ib);
    adj[ia].push_back(ib);
    adj[ib].push_back(ia);
  };
  for (const auto& seg : r.segments) {
    GridPoint cur = seg.a;
    while (!(cur == seg.b)) {
      GridPoint nxt = cur;
      if (cur.x != seg.b.x) nxt.x += (seg.b.x > cur.x) ? 1 : -1;
      else if (cur.y != seg.b.y) nxt.y += (seg.b.y > cur.y) ? 1 : -1;
      else nxt.layer += (seg.b.layer > cur.layer) ? 1 : -1;
      link(cur, nxt);
      cur = nxt;
    }
    nodes.insert(grid.index(seg.a));
  }
  ASSERT_FALSE(nodes.empty());
  // BFS from the first node.
  std::set<std::size_t> seen{*nodes.begin()};
  std::vector<std::size_t> stack{*nodes.begin()};
  while (!stack.empty()) {
    const auto n = stack.back();
    stack.pop_back();
    for (const auto m : adj[n])
      if (seen.insert(m).second) stack.push_back(m);
  }
  EXPECT_EQ(seen.size(), nodes.size()) << "route is disconnected";
  for (const auto& t : terminals) {
    const GridPoint pin = grid.snap(t.pos, t.layer);
    EXPECT_TRUE(seen.count(grid.index(pin)))
        << "terminal at " << pin << " not reached";
  }
}

class RouterTest : public ::testing::Test {
 protected:
  MetalStack stack;
  Rect die{{0, 0}, {56, 56}};
};

TEST_F(RouterTest, TwoPinNetStraightLine) {
  RouteTask t;
  t.net = 0;
  t.terminals = {{{5, 5}, 1}, {{45, 5}, 1}};
  Router router;
  const auto res = router.route({t}, die, stack);
  ASSERT_EQ(res.routes.size(), 1u);
  check_connected(res.grid, res.routes[0], t.terminals);
  // Mostly horizontal run: wirelength concentrated on few layers; via count
  // small (only pin access).
  EXPECT_GT(res.stats.total_wire_um(), 30.0);
  EXPECT_LT(res.stats.total_wire_um(), 80.0);
}

TEST_F(RouterTest, MultiPinNetConnectsAllTerminals) {
  RouteTask t;
  t.net = 7;
  t.terminals = {{{5, 5}, 1}, {{45, 45}, 1}, {{5, 45}, 1}, {{45, 5}, 1},
                 {{25, 25}, 1}};
  Router router;
  const auto res = router.route({t}, die, stack);
  check_connected(res.grid, res.routes[0], t.terminals);
}

TEST_F(RouterTest, MinLayerConstraintRespected) {
  RouteTask t;
  t.net = 1;
  t.terminals = {{{5, 5}, 1}, {{45, 45}, 1}};
  t.min_layer = 6;
  Router router;
  const auto res = router.route({t}, die, stack);
  ASSERT_TRUE(res.routes[0].success);
  check_connected(res.grid, res.routes[0], t.terminals);
  // All *wire* segments at or above M6; only via stacks below.
  for (const auto& seg : res.routes[0].segments) {
    if (!seg.is_via()) {
      EXPECT_GE(seg.a.layer, 6) << "wire below the lift layer";
    }
  }
  // Lifting forces vias through every layer boundary 1..6.
  for (int l = 1; l < 6; ++l) EXPECT_GE(res.stats.vias[static_cast<std::size_t>(l)], 2u);
}

TEST_F(RouterTest, UnconstrainedShortNetStaysLow) {
  RouteTask t;
  t.net = 2;
  t.terminals = {{{20, 20}, 1}, {{26, 20}, 1}};
  Router router;
  const auto res = router.route({t}, die, stack);
  ASSERT_TRUE(res.routes[0].success);
  double high_wire = 0, low_wire = 0;
  for (int l = 1; l <= 10; ++l) {
    if (l >= 5) high_wire += res.stats.wire_um[static_cast<std::size_t>(l)];
    else low_wire += res.stats.wire_um[static_cast<std::size_t>(l)];
  }
  EXPECT_EQ(high_wire, 0.0);  // via cost keeps a short net in M1-M4
  EXPECT_GT(low_wire, 0.0);
}

TEST_F(RouterTest, StatsViasMatchSegments) {
  RouteTask t;
  t.net = 3;
  t.terminals = {{{5, 5}, 1}, {{45, 45}, 1}};
  t.min_layer = 4;
  Router router;
  const auto res = router.route({t}, die, stack);
  const RoutingStats recomputed = collect_stats(res.grid, res.routes);
  EXPECT_EQ(recomputed.total_vias(), res.stats.total_vias());
  EXPECT_DOUBLE_EQ(recomputed.total_wire_um(), res.stats.total_wire_um());
}

TEST_F(RouterTest, DeterministicRouting) {
  std::vector<RouteTask> tasks;
  sm::util::Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    RouteTask t;
    t.net = static_cast<sm::netlist::NetId>(i);
    t.terminals = {{{rng.uniform(0, 56), rng.uniform(0, 56)}, 1},
                   {{rng.uniform(0, 56), rng.uniform(0, 56)}, 1}};
    tasks.push_back(std::move(t));
  }
  Router router;
  const auto a = router.route(tasks, die, stack);
  const auto b = router.route(tasks, die, stack);
  EXPECT_DOUBLE_EQ(a.stats.total_wire_um(), b.stats.total_wire_um());
  EXPECT_EQ(a.stats.total_vias(), b.stats.total_vias());
}

TEST_F(RouterTest, CongestionSpreadsTraffic) {
  // Many parallel nets share a narrow corridor (pins spread over a few
  // gcell rows, as a legalized placement would). Negotiation must spread
  // them so overflow ends at (or very near) zero and never worse than a
  // single-pass route.
  auto corridor_tasks = [&] {
    std::vector<RouteTask> tasks;
    for (int i = 0; i < 48; ++i) {
      RouteTask t;
      t.net = static_cast<sm::netlist::NetId>(i);
      const double y = 14.0 + (i % 12) * 2.8;
      t.terminals = {{{2, y}, 1}, {{54, y}, 1}};
      tasks.push_back(std::move(t));
    }
    return tasks;
  };
  RouterOptions one_pass;
  one_pass.passes = 1;
  const auto base = Router(one_pass).route(corridor_tasks(), die, stack);
  RouterOptions negotiated;
  negotiated.passes = 6;
  const auto res = Router(negotiated).route(corridor_tasks(), die, stack);
  EXPECT_EQ(res.stats.failed_nets, 0u);
  EXPECT_LE(res.stats.overflowed_gcells, base.stats.overflowed_gcells);
  EXPECT_LE(res.stats.overflowed_gcells, 2u);
}

/// Byte-level equality of two routing results: per-net success flags and
/// exact segment lists, plus the aggregate stats and overflow count.
void expect_identical_routing(const RoutingResult& a, const RoutingResult& b) {
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    const auto& ra = a.routes[i];
    const auto& rb = b.routes[i];
    EXPECT_EQ(ra.net, rb.net);
    EXPECT_EQ(ra.success, rb.success);
    ASSERT_EQ(ra.segments.size(), rb.segments.size()) << "net index " << i;
    for (std::size_t s = 0; s < ra.segments.size(); ++s) {
      EXPECT_EQ(ra.segments[s].a, rb.segments[s].a) << "net " << i;
      EXPECT_EQ(ra.segments[s].b, rb.segments[s].b) << "net " << i;
    }
  }
  EXPECT_EQ(a.stats.total_vias(), b.stats.total_vias());
  EXPECT_DOUBLE_EQ(a.stats.total_wire_um(), b.stats.total_wire_um());
  EXPECT_EQ(a.stats.failed_nets, b.stats.failed_nets);
  EXPECT_EQ(a.stats.overflowed_gcells, b.stats.overflowed_gcells);
}

// The tentpole guarantee: sharding the negotiation rounds over any number
// of workers yields byte-identical routes — jobs only changes wall time.
TEST_F(RouterTest, JobsDoNotChangeRoutes) {
  CellLibrary lib;
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c880"), 5);
  sm::place::Placer placer;
  const auto pl = placer.place(nl);
  const auto tasks = make_tasks(nl, pl);

  RouterOptions opts;
  opts.gcell_um = 1.4;  // fine grid so negotiation actually has work to do
  opts.passes = 4;
  opts.jobs = 1;
  const auto serial = Router(opts).route(tasks, pl.floorplan.die, lib.metal());
  for (const std::size_t jobs : {2u, 8u}) {
    opts.jobs = jobs;
    const auto sharded =
        Router(opts).route(tasks, pl.floorplan.die, lib.metal());
    expect_identical_routing(serial, sharded);
  }
}

// Congested corridor under sharding: the greedy keep/rip selection and the
// snapshot-commit rounds must stay byte-identical when every round
// actually rips and re-routes nets.
TEST_F(RouterTest, JobsDoNotChangeCongestedRoutes) {
  std::vector<RouteTask> tasks;
  for (int i = 0; i < 48; ++i) {
    RouteTask t;
    t.net = static_cast<sm::netlist::NetId>(i);
    const double y = 14.0 + (i % 12) * 2.8;
    t.terminals = {{{2, y}, 1}, {{54, y}, 1}};
    tasks.push_back(std::move(t));
  }
  RouterOptions opts;
  opts.passes = 6;
  opts.jobs = 1;
  const auto serial = Router(opts).route(tasks, die, stack);
  opts.jobs = 8;
  const auto sharded = Router(opts).route(tasks, die, stack);
  expect_identical_routing(serial, sharded);
}

// The per-net tie-break streams must depend on the router seed (different
// seeds may legitimately break ties differently) but never on jobs.
TEST_F(RouterTest, TieJitterIsSeededAndBounded) {
  RouteTask t;
  t.net = 0;
  t.terminals = {{{5, 5}, 1}, {{45, 5}, 1}};
  RouterOptions opts;
  opts.seed = 1;
  const auto a = Router(opts).route({t}, die, stack);
  opts.seed = 2;
  const auto b = Router(opts).route({t}, die, stack);
  // Jitter breaks ties only: the shortest-path length is unaffected.
  EXPECT_DOUBLE_EQ(a.stats.total_wire_um(), b.stats.total_wire_um());
  EXPECT_EQ(a.stats.failed_nets, 0u);
  EXPECT_EQ(b.stats.failed_nets, 0u);
}

TEST_F(RouterTest, MakeTasksFromNetlist) {
  CellLibrary lib;
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c432"), 1);
  sm::place::Placer placer;
  const auto pl = placer.place(nl);
  const auto tasks = make_tasks(nl, pl);
  // One task per net with sinks; driver first.
  EXPECT_GT(tasks.size(), nl.num_gates());
  for (const auto& t : tasks) {
    EXPECT_GE(t.terminals.size(), 2u);
    EXPECT_EQ(t.terminals[0].pos, pl.of(nl.net(t.net).driver));
  }
}

TEST_F(RouterTest, FullNetlistRoutes) {
  CellLibrary lib;
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c880"), 2);
  sm::place::Placer placer;
  const auto pl = placer.place(nl);
  const auto tasks = make_tasks(nl, pl);
  Router router;
  const auto res = router.route(tasks, pl.floorplan.die, stack);
  EXPECT_EQ(res.stats.failed_nets, 0u);
  EXPECT_GT(res.stats.total_wire_um(), 0.0);
  // Original layouts keep most wiring low (the Fig. 5 premise).
  double low = 0, high = 0;
  for (int l = 1; l <= 4; ++l) low += res.stats.wire_um[static_cast<std::size_t>(l)];
  for (int l = 5; l <= 10; ++l) high += res.stats.wire_um[static_cast<std::size_t>(l)];
  EXPECT_GT(low, high);
}

}  // namespace
