// Workload generator tests: structural parameters, connectivity, determinism,
// and parameterized sweeps over all named profiles.
#include "netlist/topo.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm::workloads;
using sm::netlist::CellLibrary;
using sm::netlist::Netlist;

TEST(Workloads, DeterministicForSeed) {
  CellLibrary lib;
  const auto a = generate(lib, iscas85_profile("c432"), 11);
  const auto b = generate(lib, iscas85_profile("c432"), 11);
  ASSERT_EQ(a.num_cells(), b.num_cells());
  for (std::size_t i = 0; i < a.num_cells(); ++i) {
    EXPECT_EQ(a.cell(i).type, b.cell(i).type);
    EXPECT_EQ(a.cell(i).inputs, b.cell(i).inputs);
  }
  EXPECT_TRUE(sm::sim::equivalent(a, b, 1024, 3));
}

TEST(Workloads, DifferentSeedsGiveDifferentCircuits) {
  CellLibrary lib;
  const auto a = generate(lib, iscas85_profile("c432"), 1);
  const auto b = generate(lib, iscas85_profile("c432"), 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.num_cells(), b.num_cells()); ++i)
    if (a.cell(i).inputs != b.cell(i).inputs) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Workloads, RejectsBadSpec) {
  CellLibrary lib;
  GenSpec s;
  s.num_pi = 0;
  EXPECT_THROW(generate(lib, s, 0), std::invalid_argument);
  EXPECT_THROW(iscas85_profile("c9999"), std::invalid_argument);
  EXPECT_THROW(superblue_profile("superblue99"), std::invalid_argument);
  EXPECT_THROW(superblue_profile("superblue1", 0.0), std::invalid_argument);
  EXPECT_THROW(superblue_profile("superblue1", 1.5), std::invalid_argument);
}

class IscasProfiles : public ::testing::TestWithParam<std::string> {};

TEST_P(IscasProfiles, MatchesPublishedParameters) {
  CellLibrary lib;
  const GenSpec spec = iscas85_profile(GetParam());
  const Netlist nl = generate(lib, spec, 42);
  nl.validate();
  EXPECT_EQ(nl.primary_inputs().size(), static_cast<std::size_t>(spec.num_pi));
  // Generator may add a few extra observer ports for sinkless nets.
  EXPECT_GE(nl.primary_outputs().size(), static_cast<std::size_t>(spec.num_po));
  EXPECT_LE(nl.primary_outputs().size(),
            static_cast<std::size_t>(spec.num_po) + 64u);
  EXPECT_EQ(nl.num_gates(), static_cast<std::size_t>(spec.num_gates));
  EXPECT_TRUE(sm::netlist::is_acyclic(nl));
  // ISCAS-85 is combinational.
  for (sm::netlist::CellId c = 0; c < nl.num_cells(); ++c)
    EXPECT_FALSE(nl.is_dff(c));
}

TEST_P(IscasProfiles, EveryNetObservable) {
  CellLibrary lib;
  const Netlist nl = generate(lib, iscas85_profile(GetParam()), 7);
  for (sm::netlist::NetId n = 0; n < nl.num_nets(); ++n)
    EXPECT_FALSE(nl.net(n).sinks.empty())
        << "net " << nl.net(n).name << " has no sinks";
}

TEST_P(IscasProfiles, SimulatableAndNonConstant) {
  CellLibrary lib;
  const Netlist nl = generate(lib, iscas85_profile(GetParam()), 3);
  sm::sim::Simulator s(nl);
  std::vector<std::uint64_t> in(s.num_sources()), out, out2;
  sm::util::Rng rng(5);
  for (auto& w : in) w = rng();
  s.eval(in, out);
  for (auto& w : in) w = rng();
  s.eval(in, out2);
  // At least one observer reacts to input changes (overwhelmingly likely).
  bool any = false;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] != out2[i]) any = true;
  EXPECT_TRUE(any);
}

INSTANTIATE_TEST_SUITE_P(AllIscas, IscasProfiles,
                         ::testing::ValuesIn(iscas85_names()),
                         [](const auto& info) { return info.param; });

class SuperblueProfiles : public ::testing::TestWithParam<std::string> {};

TEST_P(SuperblueProfiles, ScaledGenerationIsSane) {
  CellLibrary lib;
  const double scale = 0.004;  // keep unit tests fast
  const GenSpec spec = superblue_profile(GetParam(), scale);
  const Netlist nl = generate(lib, spec, 42);
  nl.validate();
  EXPECT_TRUE(sm::netlist::is_acyclic(nl));
  EXPECT_EQ(nl.num_gates(), static_cast<std::size_t>(spec.num_gates));
  // Sequential share lands near the spec.
  std::size_t dffs = 0;
  for (sm::netlist::CellId c = 0; c < nl.num_cells(); ++c)
    if (nl.is_dff(c)) ++dffs;
  const double frac = static_cast<double>(dffs) /
                      static_cast<double>(nl.num_gates());
  EXPECT_NEAR(frac, spec.dff_fraction, 0.02);
  EXPECT_GT(spec.utilization, 0.5);
  EXPECT_LT(spec.utilization, 0.8);
}

TEST_P(SuperblueProfiles, ScaleControlsSize) {
  const auto small = superblue_profile(GetParam(), 0.002);
  const auto large = superblue_profile(GetParam(), 0.01);
  EXPECT_LT(small.num_gates, large.num_gates);
  EXPECT_LE(small.num_pi, large.num_pi);
}

INSTANTIATE_TEST_SUITE_P(AllSuperblue, SuperblueProfiles,
                         ::testing::ValuesIn(superblue_names()),
                         [](const auto& info) { return info.param; });

TEST(Workloads, SequentialCircuitsSimulate) {
  CellLibrary lib;
  const auto nl = generate(lib, superblue_profile("superblue18", 0.003), 1);
  sm::sim::Simulator s(nl);
  EXPECT_GT(s.num_sources(), nl.primary_inputs().size());  // DFF outputs add sources
  const auto r = sm::sim::compare(nl, nl, 640, 4);
  EXPECT_DOUBLE_EQ(r.oer, 0.0);
}

TEST(Workloads, SyntheticLadderScalesPastTheSuites) {
  // The ladder is strictly increasing and starts above the largest ISCAS
  // clone (c7552: 3512 gates) from its second rung.
  int prev = 0;
  for (const auto& name : synthetic_names()) {
    const auto spec = synthetic_profile(name);
    EXPECT_GT(spec.num_gates, prev) << name;
    prev = spec.num_gates;
  }
  EXPECT_GT(synthetic_profile("synth4k").num_gates, 3512);
  EXPECT_GE(synthetic_profile("synth128k").num_gates, 128000);
  // Scale shrinks like superblue: gates linearly, I/O with sqrt.
  const auto small = synthetic_profile("synth16k", 0.01);
  const auto full = synthetic_profile("synth16k", 1.0);
  EXPECT_LT(small.num_gates, full.num_gates);
  EXPECT_LT(small.num_pi, full.num_pi);
  EXPECT_THROW(synthetic_profile("synth9k"), std::invalid_argument);
  EXPECT_THROW(synthetic_profile("synth4k", 0.0), std::invalid_argument);
  EXPECT_THROW(synthetic_profile("synth4k", 1.5), std::invalid_argument);
}

TEST(Workloads, SyntheticProfilesGenerateValidNetlists) {
  CellLibrary lib;
  const auto spec = synthetic_profile("synth1k", 0.25);
  const auto nl = generate(lib, spec, 3);  // validate() runs inside
  EXPECT_GE(nl.num_gates(), 200u);
  // Deterministic in (spec, seed) like every other profile.
  const auto again = generate(lib, spec, 3);
  EXPECT_EQ(nl.num_gates(), again.num_gates());
  EXPECT_EQ(nl.num_nets(), again.num_nets());
}

TEST(Workloads, FanoutRespectsLimits) {
  CellLibrary lib;
  GenSpec s;
  s.num_pi = 20;
  s.num_po = 10;
  s.num_gates = 500;
  s.max_fanout = 8;
  const auto nl = generate(lib, s, 13);
  // Fanout limit is advisory for connectivity repair, but the bulk of nets
  // must stay moderate.
  std::size_t big = 0;
  for (sm::netlist::NetId n = 0; n < nl.num_nets(); ++n)
    if (nl.net(n).sinks.size() > 16) ++big;
  EXPECT_LT(big, nl.num_nets() / 10);
}

}  // namespace
