// Unit tests for sm::util — RNG determinism/uniformity, geometry, stats,
// table rendering, CLI argument parsing.
#include "util/args.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <stdexcept>

namespace {

using namespace sm::util;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(9);
  const auto s = rng.sample_indices(100, 10);
  ASSERT_EQ(s.size(), 10u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToN) {
  Rng rng(9);
  const auto s = rng.sample_indices(4, 10);
  EXPECT_EQ(s.size(), 4u);
}

TEST(Geometry, ManhattanAndEuclidean) {
  const Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
}

TEST(Geometry, RectBasics) {
  Rect r{{0, 0}, {10, 4}};
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 40.0);
  EXPECT_DOUBLE_EQ(r.half_perimeter(), 14.0);
  EXPECT_TRUE(r.contains({5, 2}));
  EXPECT_FALSE(r.contains({11, 2}));
  EXPECT_EQ(r.center(), (Point{5, 2}));
}

TEST(Geometry, RectExpandAndOverlap) {
  Rect r = Rect::around({1, 1});
  r.expand({5, -2});
  EXPECT_DOUBLE_EQ(r.lo.y, -2.0);
  EXPECT_DOUBLE_EQ(r.hi.x, 5.0);
  const Rect other{{4, 0}, {6, 1}};
  EXPECT_TRUE(r.overlaps(other));
  const Rect far{{100, 100}, {101, 101}};
  EXPECT_FALSE(r.overlaps(far));
}

TEST(Stats, SummaryKnownValues) {
  const auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(summarize({1, 2, 3, 10}).median, 2.5);
}

TEST(Stats, EmptySample) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 100.0);
}

TEST(Stats, HistogramClampsOutliers) {
  Histogram h(0, 10, 5);
  h.add(-100);
  h.add(100);
  h.add(5);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Stats, PctDelta) {
  EXPECT_DOUBLE_EQ(pct_delta(100, 130), 30.0);
  EXPECT_DOUBLE_EQ(pct_delta(100, 70), -30.0);
  EXPECT_DOUBLE_EQ(pct_delta(0, 50), 0.0);
}

TEST(Table, RendersAllCells) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333"});
  const std::string out = t.render();
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_EQ(t.rows(), 3u);  // separator counts as a row slot
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
  EXPECT_EQ(Table::count(1234567), "1,234,567");
  EXPECT_EQ(Table::count(999), "999");
}

TEST(Args, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "pos", "--alpha=3", "--beta", "4", "--flag"};
  Args args(6, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 4);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Args, Fallbacks) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, GetCountRejectsNegativeAndGarbage) {
  const char* argv[] = {"prog", "--jobs=4", "--bad=-1", "--worse=abc",
                        "--trail=4x"};
  Args args(5, argv);
  EXPECT_EQ(args.get_count("jobs", 1), 4u);
  EXPECT_EQ(args.get_count("missing", 7), 7u);
  EXPECT_THROW(args.get_count("bad", 1), std::invalid_argument);
  EXPECT_THROW(args.get_count("worse", 1), std::invalid_argument);
  EXPECT_THROW(args.get_count("trail", 1), std::invalid_argument);
}

TEST(SplitList, SplitsAndSkipsEmptyEntries) {
  EXPECT_EQ(split_list("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  // Trailing, doubled, and leading separators must not inject "" items
  // (the --benchmarks=c432, regression).
  EXPECT_EQ(split_list("c432,"), (std::vector<std::string>{"c432"}));
  EXPECT_EQ(split_list("a,,b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_list(",x"), (std::vector<std::string>{"x"}));
  EXPECT_TRUE(split_list("").empty());
  EXPECT_TRUE(split_list(",,,").empty());
  EXPECT_EQ(split_list("k=v;w=z", ';'),
            (std::vector<std::string>{"k=v", "w=z"}));
}

TEST(TaskSeed, DeterministicAndIndexSensitive) {
  EXPECT_EQ(task_seed(1, 0), task_seed(1, 0));
  EXPECT_NE(task_seed(1, 0), task_seed(1, 1));
  EXPECT_NE(task_seed(1, 0), task_seed(2, 0));
  // Streams seeded from adjacent task indices must diverge immediately.
  Rng a(task_seed(9, 4)), b(task_seed(9, 5));
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
