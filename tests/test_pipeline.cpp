// Staged layout pipeline + LayoutCache tests: stage composition equals the
// monolithic flows, cached stage products are bit-identical to from-scratch
// computation, stages build exactly once per key (also under concurrency),
// and the buffering variant carries its sized netlist through the stages.
#include "core/pipeline.hpp"

#include "util/thread_pool.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace {

using namespace sm::core;
using sm::netlist::CellLibrary;
using sm::netlist::Netlist;

class PipelineTest : public ::testing::Test {
 protected:
  CellLibrary lib{6};
  Netlist bench(const char* name = "c432", std::uint64_t seed = 3) const {
    return sm::workloads::generate(lib, sm::workloads::iscas85_profile(name),
                                   seed);
  }
  FlowOptions flow() const {
    FlowOptions f;
    f.lift_layer = 6;
    f.router.passes = 2;
    f.placer.detailed_passes = 1;
    return f;
  }
  RandomizeOptions rand_opts() const {
    RandomizeOptions r;
    r.seed = 5;
    r.check_patterns = 2048;
    return r;
  }
};

void expect_same_layout(const LayoutResult& a, const LayoutResult& b) {
  ASSERT_EQ(a.placement.pos.size(), b.placement.pos.size());
  for (std::size_t i = 0; i < a.placement.pos.size(); ++i)
    EXPECT_EQ(a.placement.pos[i], b.placement.pos[i]);
  ASSERT_EQ(a.routing.routes.size(), b.routing.routes.size());
  for (std::size_t i = 0; i < a.routing.routes.size(); ++i) {
    const auto& ra = a.routing.routes[i];
    const auto& rb = b.routing.routes[i];
    ASSERT_EQ(ra.segments.size(), rb.segments.size()) << "net index " << i;
    for (std::size_t s = 0; s < ra.segments.size(); ++s) {
      EXPECT_EQ(ra.segments[s].a, rb.segments[s].a);
      EXPECT_EQ(ra.segments[s].b, rb.segments[s].b);
    }
  }
  EXPECT_DOUBLE_EQ(a.routing.stats.total_wire_um(),
                   b.routing.stats.total_wire_um());
  EXPECT_EQ(a.routing.stats.total_vias(), b.routing.stats.total_vias());
  EXPECT_DOUBLE_EQ(a.ppa.total_power_uw(), b.ppa.total_power_uw());
  EXPECT_DOUBLE_EQ(a.ppa.critical_path_ps, b.ppa.critical_path_ps);
}

TEST_F(PipelineTest, StagedPipelineEqualsLayoutOriginal) {
  const Netlist nl = bench();
  const auto opts = flow();
  const auto monolithic = layout_original(nl, opts);
  const PlacedDesign placed = place_design(nl, opts);
  const auto staged = route_design(nl, placed, opts);
  expect_same_layout(monolithic, staged);
  EXPECT_FALSE(placed.sized.has_value());
}

TEST_F(PipelineTest, BufferingStageCarriesSizedNetlist) {
  const Netlist nl = bench("c880", 2);
  auto opts = flow();
  opts.buffering = true;
  const PlacedDesign placed = place_design(nl, opts);
  ASSERT_TRUE(placed.sized.has_value());
  EXPECT_GE(placed.sized->num_gates(), nl.num_gates());
  EXPECT_EQ(&placed.physical(nl), &*placed.sized);
  const auto staged = route_design(nl, placed, opts);
  ASSERT_TRUE(staged.sized_netlist.has_value());
  expect_same_layout(layout_original(nl, opts), staged);
}

TEST_F(PipelineTest, CachedBaseLayoutEqualsFromScratch) {
  const auto opts = flow();
  LayoutCache cache;
  const auto& nl = cache.netlist("c432/3", [&] { return bench(); });
  const auto& base = cache.base_layout("c432/3", nl, opts);
  expect_same_layout(layout_original(bench(), opts), base);
  // The second request is a hit returning the same object.
  EXPECT_EQ(&cache.base_layout("c432/3", nl, opts), &base);
  const auto st = cache.stats();
  EXPECT_EQ(st.netlists, 1u);
  EXPECT_EQ(st.placements, 1u);  // base_layout built stage 1 implicitly
  EXPECT_EQ(st.base_routes, 1u);
  EXPECT_GE(st.hits, 1u);
}

// The satellite criterion: a protect() run fed from the cache's shared
// netlist is bit-identical to a from-scratch run — reusing the cached
// stage products never perturbs a defense.
TEST_F(PipelineTest, CachedNetlistProtectEqualsFromScratch) {
  const auto opts = flow();
  LayoutCache cache;
  const auto& cached_nl = cache.netlist("c432/3", [&] { return bench(); });
  const auto from_cache = protect(cached_nl, rand_opts(), opts);
  const auto from_scratch = protect(bench(), rand_opts(), opts);
  EXPECT_EQ(from_cache.ledger.entries.size(),
            from_scratch.ledger.entries.size());
  EXPECT_EQ(from_cache.oer, from_scratch.oer);
  EXPECT_EQ(from_cache.hd, from_scratch.hd);
  EXPECT_EQ(from_cache.restored_ok, from_scratch.restored_ok);
  expect_same_layout(from_cache.layout, from_scratch.layout);
}

TEST_F(PipelineTest, StagesBuildOncePerKeyAndLazily) {
  const auto opts = flow();
  LayoutCache cache;
  std::atomic<int> builds{0};
  auto builder = [&] {
    ++builds;
    return bench();
  };
  const auto& a = cache.netlist("k1", builder);
  const auto& b = cache.netlist("k1", builder);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(builds.load(), 1);
  // A different key builds independently.
  cache.netlist("k2", builder);
  EXPECT_EQ(builds.load(), 2);
  // Nothing routed or placed yet: stages are lazy.
  auto st = cache.stats();
  EXPECT_EQ(st.placements, 0u);
  EXPECT_EQ(st.base_routes, 0u);
  // placed() alone must not trigger a route.
  cache.placed("k1", a, opts);
  st = cache.stats();
  EXPECT_EQ(st.placements, 1u);
  EXPECT_EQ(st.base_routes, 0u);
}

TEST_F(PipelineTest, ConcurrentCallersShareOneBuild) {
  const auto opts = flow();
  LayoutCache cache;
  const Netlist nl = bench();
  std::vector<const LayoutResult*> seen(16, nullptr);
  sm::util::parallel_for(8, seen.size(), [&](std::size_t i) {
    seen[i] = &cache.base_layout("k", nl, opts);
  });
  for (const auto* p : seen) EXPECT_EQ(p, seen[0]);
  const auto st = cache.stats();
  EXPECT_EQ(st.placements, 1u);  // built once, inside the winning builder
  EXPECT_EQ(st.base_routes, 1u);
  EXPECT_EQ(st.hits, seen.size() - 1);  // every other caller reused it
}

}  // namespace
