// Partition-tree tests: cutline balance on skewed net distributions,
// disjointness/containment of the spatial assignment, crossing nets at
// branch nodes, and the router-level guarantee the tree exists for —
// routed layouts byte-identical across every (jobs, partition_depth)
// combination, with the rounds escape hatch keeping its own identity.
#include "place/placer.hpp"
#include "route/partition_tree.hpp"
#include "route/router.hpp"
#include "workloads/generator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

using namespace sm::route;
using sm::netlist::CellLibrary;
using sm::util::GridRect;

PartitionNet net_at(std::size_t task, std::int32_t x0, std::int32_t y0,
                    std::int32_t x1, std::int32_t y1,
                    std::uint64_t work = 1) {
  return {task, GridRect{x0, y0, x1, y1}, work};
}

/// Sum of net work in the subtree rooted at `node`.
std::uint64_t subtree_work(const PartitionTree& t, int node) {
  if (node < 0) return 0;
  const auto& n = t.nodes()[static_cast<std::size_t>(node)];
  std::uint64_t w = 0;
  for (const auto idx : n.nets) w += t.nets()[idx].work;
  return w + subtree_work(t, n.left) + subtree_work(t, n.right);
}

bool is_ancestor(const PartitionTree& t, int anc, int node) {
  for (int p = node; p >= 0;
       p = t.nodes()[static_cast<std::size_t>(p)].parent)
    if (p == anc) return true;
  return false;
}

TEST(PartitionTreeTest, EmptyAndTinyInputs) {
  EXPECT_TRUE(PartitionTree().empty());
  EXPECT_TRUE(PartitionTree(GridRect{0, 0, 63, 63}, {}).empty());
  // Below min_nets the root stays a leaf holding everything, input order
  // preserved.
  std::vector<PartitionNet> nets;
  for (std::size_t i = 0; i < 5; ++i)
    nets.push_back(net_at(i, 2 * static_cast<std::int32_t>(i), 0,
                          2 * static_cast<std::int32_t>(i) + 1, 1));
  const PartitionTree t(GridRect{0, 0, 63, 63}, nets);
  ASSERT_EQ(t.nodes().size(), 1u);
  EXPECT_TRUE(t.nodes()[0].is_leaf());
  EXPECT_EQ(t.depth(), 0);
  ASSERT_EQ(t.nodes()[0].nets.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(t.nodes()[0].nets[i], i);
}

// The cutline must track the work median, not the geometric center: with
// the work piled into the left quarter of the region, a center cut would
// put ~80% of it on one side, while the prefix-sum scan should land inside
// the dense cluster and split the work nearly evenly.
TEST(PartitionTreeTest, CutlineBalancesSkewedWork) {
  std::vector<PartitionNet> nets;
  // 80 tight nets packed into x ∈ [0, 31]...
  for (std::size_t i = 0; i < 80; ++i) {
    const auto x = static_cast<std::int32_t>((2 * i) % 30);
    const auto y = static_cast<std::int32_t>((3 * i) % 120);
    nets.push_back(net_at(i, x, y, x + 1, y + 1));
  }
  // ...and 20 spread over the remaining three quarters.
  for (std::size_t i = 0; i < 20; ++i) {
    const auto x = static_cast<std::int32_t>(64 + (3 * i) % 60);
    const auto y = static_cast<std::int32_t>((7 * i) % 120);
    nets.push_back(net_at(80 + i, x, y, x + 1, y + 1));
  }
  const PartitionTree t(GridRect{0, 0, 127, 127}, nets);
  const auto& root = t.nodes()[0];
  ASSERT_FALSE(root.is_leaf());
  const std::uint64_t total = 100;
  const std::uint64_t left = subtree_work(t, root.left);
  const std::uint64_t right = subtree_work(t, root.right);
  // Nearly even split; a geometric-center cut would score ~80/20.
  EXPECT_GE(left, total * 35 / 100);
  EXPECT_GE(right, total * 35 / 100);
  // The cut itself sits inside the dense cluster, far left of center.
  const auto& lregion = t.nodes()[static_cast<std::size_t>(root.left)].region;
  EXPECT_LT(lregion.x1, 64);
}

// Spatial soundness: every net's window is contained in its node's region,
// children nest inside parents, siblings are disjoint — and therefore nets
// of incomparable nodes (the ones the router routes concurrently) never
// overlap. This is the whole determinism argument in one invariant.
TEST(PartitionTreeTest, AssignmentsAreContainedAndSiblingsDisjoint) {
  std::vector<PartitionNet> nets;
  // Deterministic pseudo-random windows of mixed size.
  std::uint64_t s = 12345;
  auto next = [&s](std::uint64_t mod) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int32_t>((s >> 33) % mod);
  };
  for (std::size_t i = 0; i < 200; ++i) {
    const std::int32_t x = next(120), y = next(120);
    const std::int32_t w = next(24), h = next(24);
    nets.push_back(net_at(i, x, y, std::min(x + w, 127),
                          std::min(y + h, 127), 1 + (i % 3)));
  }
  const PartitionTree t(GridRect{0, 0, 127, 127}, nets);
  ASSERT_GE(t.depth(), 2) << "test wants a non-trivial tree";

  std::size_t assigned = 0;
  for (const auto& node : t.nodes()) {
    for (const auto idx : node.nets) {
      EXPECT_TRUE(node.region.contains(t.nets()[idx].window))
          << "net window escapes its node region";
      ++assigned;
    }
    if (node.left >= 0) {
      const auto& l = t.nodes()[static_cast<std::size_t>(node.left)];
      EXPECT_TRUE(node.region.contains(l.region));
      EXPECT_EQ(l.parent, static_cast<int>(&node - t.nodes().data()));
    }
    if (node.right >= 0) {
      const auto& r = t.nodes()[static_cast<std::size_t>(node.right)];
      EXPECT_TRUE(node.region.contains(r.region));
    }
    if (node.left >= 0 && node.right >= 0) {
      EXPECT_FALSE(
          t.nodes()[static_cast<std::size_t>(node.left)].region.overlaps(
              t.nodes()[static_cast<std::size_t>(node.right)].region));
    }
  }
  EXPECT_EQ(assigned, nets.size()) << "every net lands at exactly one node";

  // Windows of nets in incomparable nodes never overlap.
  std::vector<int> owner(nets.size(), -1);
  for (std::size_t n = 0; n < t.nodes().size(); ++n)
    for (const auto idx : t.nodes()[n].nets) owner[idx] = static_cast<int>(n);
  for (std::size_t a = 0; a < nets.size(); ++a)
    for (std::size_t b = a + 1; b < nets.size(); ++b) {
      if (is_ancestor(t, owner[a], owner[b]) ||
          is_ancestor(t, owner[b], owner[a]))
        continue;
      EXPECT_FALSE(t.nets()[a].window.overlaps(t.nets()[b].window))
          << "nets " << a << " and " << b
          << " overlap across incomparable nodes";
    }
}

// A net straddling every useful cutline must stay at the branch node, not
// get pushed into either child.
TEST(PartitionTreeTest, CrossingNetsStayAtBranch) {
  std::vector<PartitionNet> nets;
  for (std::size_t i = 0; i < 40; ++i) {
    const auto y = static_cast<std::int32_t>((3 * i) % 120);
    nets.push_back(net_at(i, 2, y, 12, y + 2));          // left cluster
    nets.push_back(net_at(40 + i, 110, y, 124, y + 2));  // right cluster
  }
  // Spans the full region, so it crosses every cut on either axis.
  nets.push_back(net_at(80, 0, 0, 127, 127));
  const PartitionTree t(GridRect{0, 0, 127, 127}, nets);
  const auto& root = t.nodes()[0];
  ASSERT_FALSE(root.is_leaf());
  bool at_root = false;
  for (const auto idx : root.nets) at_root |= (t.nets()[idx].task == 80);
  EXPECT_TRUE(at_root) << "full-span net must stay at the root";
  // The two clusters end up in different subtrees.
  const std::uint64_t left = subtree_work(t, root.left);
  const std::uint64_t right = subtree_work(t, root.right);
  EXPECT_GE(left, 40u);
  EXPECT_GE(right, 40u);
}

/// Byte-level equality of two routing results (mirrors test_route.cpp).
void expect_identical_routing(const RoutingResult& a, const RoutingResult& b) {
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    const auto& ra = a.routes[i];
    const auto& rb = b.routes[i];
    EXPECT_EQ(ra.success, rb.success);
    ASSERT_EQ(ra.segments.size(), rb.segments.size()) << "net index " << i;
    for (std::size_t s = 0; s < ra.segments.size(); ++s) {
      EXPECT_EQ(ra.segments[s].a, rb.segments[s].a) << "net " << i;
      EXPECT_EQ(ra.segments[s].b, rb.segments[s].b) << "net " << i;
    }
  }
  EXPECT_EQ(a.stats.total_vias(), b.stats.total_vias());
  EXPECT_DOUBLE_EQ(a.stats.total_wire_um(), b.stats.total_wire_um());
  EXPECT_EQ(a.stats.failed_nets, b.stats.failed_nets);
  EXPECT_EQ(a.stats.overflowed_gcells, b.stats.overflowed_gcells);
}

// The tentpole guarantee: with the tree scheduler, routed layouts are
// byte-identical across every jobs × partition_depth combination — jobs
// and the fan-out depth are pure scheduling knobs.
TEST(PartitionRouteTest, JobsAndDepthDoNotChangeRoutes) {
  CellLibrary lib;
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c880"), 5);
  sm::place::Placer placer;
  const auto pl = placer.place(nl);
  const auto tasks = make_tasks(nl, pl);

  RouterOptions opts;
  opts.gcell_um = 1.4;  // fine grid so negotiation actually has work to do
  opts.passes = 4;
  opts.partition = RoutePartition::Tree;
  opts.jobs = 1;
  opts.partition_depth = -1;
  const auto baseline =
      Router(opts).route(tasks, pl.floorplan.die, lib.metal());
  EXPECT_EQ(baseline.stats.failed_nets, 0u);

  for (const std::size_t jobs : {1u, 2u, 8u}) {
    for (const int depth : {0, 1, 3, -1}) {
      if (jobs == 1 && depth == -1) continue;  // that is the baseline
      opts.jobs = jobs;
      opts.partition_depth = depth;
      const auto other =
          Router(opts).route(tasks, pl.floorplan.die, lib.metal());
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " depth=" + std::to_string(depth));
      expect_identical_routing(baseline, other);
    }
  }
}

// Congested corridor under the tree scheduler: rip-up rounds active, live
// congestion commits, still jobs-identical.
TEST(PartitionRouteTest, CongestedRoutesIdenticalAcrossJobs) {
  std::vector<RouteTask> tasks;
  for (int i = 0; i < 48; ++i) {
    RouteTask t;
    t.net = static_cast<sm::netlist::NetId>(i);
    const double y = 14.0 + (i % 12) * 2.8;
    t.terminals = {{{2, y}, 1}, {{54, y}, 1}};
    tasks.push_back(std::move(t));
  }
  const sm::netlist::MetalStack stack;
  const sm::util::Rect die{{0, 0}, {56, 56}};
  RouterOptions opts;
  opts.passes = 6;
  opts.partition = RoutePartition::Tree;
  opts.jobs = 1;
  const auto serial = Router(opts).route(tasks, die, stack);
  EXPECT_EQ(serial.stats.failed_nets, 0u);
  opts.jobs = 8;
  opts.partition_depth = 2;
  const auto parallel = Router(opts).route(tasks, die, stack);
  expect_identical_routing(serial, parallel);
}

// The PR-5 escape hatch still works and keeps its own jobs-invariance.
// (Tree and rounds may produce different — individually deterministic —
// layouts; this only pins the rounds scheduler's contract.)
TEST(PartitionRouteTest, RoundsEscapeHatchStillJobsIdentical) {
  CellLibrary lib;
  const auto nl = sm::workloads::generate(
      lib, sm::workloads::iscas85_profile("c432"), 3);
  sm::place::Placer placer;
  const auto pl = placer.place(nl);
  const auto tasks = make_tasks(nl, pl);

  RouterOptions opts;
  opts.passes = 3;
  opts.partition = RoutePartition::Rounds;
  opts.jobs = 1;
  const auto serial = Router(opts).route(tasks, pl.floorplan.die, lib.metal());
  opts.jobs = 8;
  const auto sharded =
      Router(opts).route(tasks, pl.floorplan.die, lib.metal());
  expect_identical_routing(serial, sharded);
}

TEST(PartitionRouteTest, PartitionFlagParsing) {
  EXPECT_EQ(route_partition_from_string("tree"), RoutePartition::Tree);
  EXPECT_EQ(route_partition_from_string("rounds"), RoutePartition::Rounds);
  EXPECT_THROW(route_partition_from_string("spiral"), std::invalid_argument);
  EXPECT_STREQ(to_string(RoutePartition::Tree), "tree");
  EXPECT_STREQ(to_string(RoutePartition::Rounds), "rounds");
}

}  // namespace
