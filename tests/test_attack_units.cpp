// Proximity-attack unit tests on hand-constructed split views: with
// geometry under full control, the matcher's behaviour is exactly
// predictable — nearest-pairing, capacity limits, loop refusal, completion.
#include "attack/proximity.hpp"
#include "core/split.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace {

using namespace sm;
using core::Fragment;
using core::SplitView;
using core::VPin;
using netlist::CellId;
using netlist::CellLibrary;
using netlist::NetId;
using netlist::Netlist;

VPin vpin(double x, double y, int dx = 0, int dy = 0) {
  VPin v;
  v.pos = {x, y};
  v.grid = {static_cast<int>(x), static_cast<int>(y), 3};
  v.dir_dx = dx;
  v.dir_dy = dy;
  return v;
}

/// Two drivers (nets n1, n2) and two sinks (g1 pin0, g2 pin0); erroneous
/// FEOL wiring is absent — the view alone tells the attacker what's open.
struct Rig {
  CellLibrary lib;
  Netlist nl;
  NetId n1, n2;
  CellId g1, g2;
  place::Placement pl;

  Rig() : nl(lib, "rig") {
    n1 = nl.add_primary_input("a");
    n2 = nl.add_primary_input("b");
    g1 = nl.add_cell("g1", lib.id_of("INV_X1"));
    g2 = nl.add_cell("g2", lib.id_of("INV_X1"));
    // True wiring: a->g1, b->g2 (this is `original` for scoring).
    nl.connect_input(g1, 0, n1);
    nl.connect_input(g2, 0, n2);
    nl.add_primary_output("y1", nl.cell(g1).output);
    nl.add_primary_output("y2", nl.cell(g2).output);
    pl.floorplan.die = {{0, 0}, {100, 100}};
    pl.pos.assign(nl.num_cells(), {50, 50});
  }

  /// View where driver i sits at (xi, y) and sink j at (xj', y).
  SplitView view(double d1x, double d2x, double s1x, double s2x) const {
    SplitView v;
    v.split_layer = 3;
    auto drv = [&](NetId n, double x) {
      Fragment f;
      f.net = n;
      f.has_driver = true;
      f.anchor = {x, 10};
      f.vpins = {vpin(x, 10)};
      return f;
    };
    auto snk = [&](CellId c, NetId feol_net, double x) {
      Fragment f;
      f.net = feol_net;  // the net whose route reaches this sink in FEOL
      f.sinks = {{c, 0}};
      f.anchor = {x, 10};
      f.vpins = {vpin(x, 10)};
      return f;
    };
    v.fragments = {drv(n1, d1x), drv(n2, d2x), snk(g1, n1, s1x),
                   snk(g2, n2, s2x)};
    return v;
  }
};

TEST(AttackUnits, NearestPairingWins) {
  Rig rig;
  // d1 at 10, d2 at 80; s1 at 12 (near d1), s2 at 78 (near d2).
  const auto view = rig.view(10, 80, 12, 78);
  attack::ProximityOptions opts;
  opts.eval_patterns = 64;
  const auto res = attack::proximity_attack(rig.nl, rig.nl, rig.pl, view,
                                            nullptr, opts);
  EXPECT_EQ(res.open_sinks, 2u);
  EXPECT_EQ(res.correct, 2u);  // both sinks matched to their true drivers
  EXPECT_DOUBLE_EQ(res.ccr(), 1.0);
  EXPECT_DOUBLE_EQ(res.rates.oer, 0.0);
}

TEST(AttackUnits, GlobalAssignmentResolvesCompetition) {
  Rig rig;
  // Both sinks closest to d1, but d1 can plausibly take only... without
  // capacity pressure the flow still must give one sink to d2; least total
  // cost assigns the nearer sink to d1.
  const auto view = rig.view(10, 90, 12, 20);
  attack::ProximityOptions opts;
  opts.eval_patterns = 64;
  opts.use_load = true;
  // Drivers are PI pads (5 kOhm): budget 10/5 = 2 fF ~ capacity 1 sink.
  opts.load_budget_ff_per_ks = 10.0;
  const auto res = attack::proximity_attack(rig.nl, rig.nl, rig.pl, view,
                                            nullptr, opts);
  EXPECT_EQ(res.open_sinks, 2u);
  // s1 (at 12) -> d1 correct; s2 (at 20) forced to d2 -> also correct.
  EXPECT_EQ(res.correct, 2u);
}

TEST(AttackUnits, DirectionHintBreaksTies) {
  Rig rig;
  auto view = rig.view(40, 60, 50, 50);  // both sinks equidistant-ish
  // Driver 1's dangling wire points right toward the sinks; driver 2's
  // points away. With direction on, d1 is preferred for the nearer sink.
  view.fragments[0].vpins = {vpin(40, 10, +1, 0)};
  view.fragments[1].vpins = {vpin(60, 10, +1, 0)};  // points away from 50
  attack::ProximityOptions with;
  with.eval_patterns = 64;
  attack::ProximityOptions without = with;
  without.use_direction = false;
  const auto a = attack::proximity_attack(rig.nl, rig.nl, rig.pl, view,
                                          nullptr, with);
  const auto b = attack::proximity_attack(rig.nl, rig.nl, rig.pl, view,
                                          nullptr, without);
  // Both resolve completely; direction must not reduce accuracy.
  EXPECT_GE(a.correct, b.correct);
  EXPECT_EQ(a.open_sinks, 2u);
}

TEST(AttackUnits, LoopAvoidanceRefusesCycle) {
  // Chain: pi -> g1 -> (open) g2 -> y. The only WRONG match for g2's input
  // would be g2's own downstream... construct: g2 input open; candidate
  // drivers are pi's net and g2's own output net. Matching g2.in to
  // g2.out closes a combinational loop and must be refused.
  CellLibrary lib;
  Netlist nl(lib, "loopy");
  const NetId a = nl.add_primary_input("a");
  const CellId g2 = nl.add_cell("g2", lib.id_of("INV_X1"));
  nl.connect_input(g2, 0, a);  // truth: a -> g2
  nl.add_primary_output("y", nl.cell(g2).output);
  place::Placement pl;
  pl.floorplan.die = {{0, 0}, {100, 100}};
  pl.pos.assign(nl.num_cells(), {50, 50});

  SplitView view;
  view.split_layer = 3;
  Fragment far_drv;  // the true driver, but FAR away
  far_drv.net = a;
  far_drv.has_driver = true;
  far_drv.anchor = {95, 95};
  far_drv.vpins = {vpin(95, 95)};
  Fragment self_drv;  // g2's own output, RIGHT next to the sink
  self_drv.net = nl.cell(g2).output;
  self_drv.has_driver = true;
  self_drv.anchor = {11, 10};
  self_drv.vpins = {vpin(11, 10)};
  Fragment sink;
  sink.net = a;
  sink.sinks = {{g2, 0}};
  sink.anchor = {10, 10};
  sink.vpins = {vpin(10, 10)};
  view.fragments = {far_drv, self_drv, sink};

  attack::ProximityOptions opts;
  opts.eval_patterns = 64;
  const auto res = attack::proximity_attack(nl, nl, pl, view, nullptr, opts);
  // The nearest candidate closes a loop; the attack must take the far true
  // driver instead and end with a valid, correct netlist.
  EXPECT_EQ(res.open_sinks, 1u);
  EXPECT_EQ(res.correct, 1u);
  EXPECT_GT(res.rates.patterns, 0u);  // recovered netlist was simulable
}

TEST(AttackUnits, LoadBudgetTracksSinkCapacitance) {
  // Hint (iii) regression: the driver's load budget (fF) must translate into
  // a fanout count via the *measured* open-sink-fragment capacitance, not a
  // hard-coded average. Two runs with identical geometry, differing only in
  // the sink cells' input capacitance: both sinks sit next to driver 1, but
  // the true wiring is a->g1, b->g2.
  //   budget = 50 fF-kOhm / 5 kOhm (pad) = 10 fF.
  //   BUF_X8 sinks (8.0 fF): capacity 1 -> the flow must hand g2 to its
  //     true (distant) driver, recovering both connections.
  //   INV_X1 sinks (1.6 fF): capacity 6 -> driver 1 swallows both sinks and
  //     only g1 is recovered.
  // A capacity indifferent to sink capacitance cannot produce both outcomes.
  auto correct_with_sinks = [](const char* sink_type) {
    CellLibrary lib;
    Netlist nl(lib, "loadrig");
    const NetId a = nl.add_primary_input("a");
    const NetId b = nl.add_primary_input("b");
    const CellId g1 = nl.add_cell("g1", lib.id_of(sink_type));
    const CellId g2 = nl.add_cell("g2", lib.id_of(sink_type));
    nl.connect_input(g1, 0, a);
    nl.connect_input(g2, 0, b);
    nl.add_primary_output("y1", nl.cell(g1).output);
    nl.add_primary_output("y2", nl.cell(g2).output);
    place::Placement pl;
    pl.floorplan.die = {{0, 0}, {100, 100}};
    pl.pos.assign(nl.num_cells(), {50, 50});

    SplitView view;
    view.split_layer = 3;
    auto drv = [&](NetId n, double x) {
      Fragment f;
      f.net = n;
      f.has_driver = true;
      f.anchor = {x, 10};
      f.vpins = {vpin(x, 10)};
      return f;
    };
    auto snk = [&](CellId c, NetId n, double x) {
      Fragment f;
      f.net = n;
      f.sinks = {{c, 0}};
      f.anchor = {x, 10};
      f.vpins = {vpin(x, 10)};
      return f;
    };
    view.fragments = {drv(a, 10), drv(b, 90), snk(g1, a, 12), snk(g2, b, 14)};

    attack::ProximityOptions opts;
    opts.eval_patterns = 64;
    opts.use_load = true;
    opts.load_budget_ff_per_ks = 50.0;
    const auto res =
        attack::proximity_attack(nl, nl, pl, view, nullptr, opts);
    EXPECT_EQ(res.open_sinks, 2u);
    return res.correct;
  };
  EXPECT_EQ(correct_with_sinks("BUF_X8"), 2u);
  EXPECT_EQ(correct_with_sinks("INV_X1"), 1u);
}

/// Randomized many-fragment view for the spatial-index and sharding tests:
/// `nd` PI-driven nets (open driver fragments) and `nsk` INV sinks (open
/// sink fragments, true driver = net j % nd), fragments scattered uniformly
/// with 1-3 vpins each (random offsets exercise the index's spread slack,
/// random stub directions the cost lower bound).
struct RandomRig {
  CellLibrary lib;
  Netlist nl;
  place::Placement pl;
  SplitView view;

  RandomRig(std::size_t nd, std::size_t nsk, std::uint64_t seed)
      : nl(lib, "randrig") {
    sm::util::Rng rng(seed);
    std::vector<NetId> nets;
    for (std::size_t i = 0; i < nd; ++i)
      nets.push_back(nl.add_primary_input("a" + std::to_string(i)));
    std::vector<CellId> cells;
    for (std::size_t j = 0; j < nsk; ++j) {
      const CellId c = nl.add_cell("g" + std::to_string(j), lib.id_of("INV_X1"));
      nl.connect_input(c, 0, nets[j % nd]);
      nl.add_primary_output("y" + std::to_string(j), nl.cell(c).output);
      cells.push_back(c);
    }
    pl.floorplan.die = {{0, 0}, {1000, 1000}};
    pl.pos.assign(nl.num_cells(), {500, 500});

    view.split_layer = 3;
    auto fragment = [&](NetId net) {
      Fragment f;
      f.net = net;
      f.anchor = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
      const int nv = static_cast<int>(rng.range(1, 3));
      for (int v = 0; v < nv; ++v) {
        const double x = f.anchor.x + rng.uniform(-20, 20);
        const double y = f.anchor.y + rng.uniform(-20, 20);
        VPin vp = vpin(x, y, static_cast<int>(rng.range(-1, 1)),
                       static_cast<int>(rng.range(-1, 1)));
        f.vpins.push_back(vp);
      }
      return f;
    };
    for (std::size_t i = 0; i < nd; ++i) {
      Fragment f = fragment(nets[i]);
      f.has_driver = true;
      view.fragments.push_back(f);
    }
    for (std::size_t j = 0; j < nsk; ++j) {
      Fragment f = fragment(nets[j % nd]);
      f.sinks = {{cells[j], 0}};
      view.fragments.push_back(f);
    }
  }
};

bool same_result(const attack::ProximityResult& a,
                 const attack::ProximityResult& b) {
  return a.open_sinks == b.open_sinks && a.matched == b.matched &&
         a.correct == b.correct && a.protected_total == b.protected_total &&
         a.protected_correct == b.protected_correct &&
         a.rates.oer == b.rates.oer && a.rates.hd == b.rates.hd &&
         a.rates.patterns == b.rates.patterns;
}

TEST(AttackUnits, SpatialIndexMatchesBruteForce) {
  // The ISSUE-4 contract: indexed candidate generation returns the same
  // (pair_cost, driver) ranking as the all-pairs scan, so the whole attack
  // result — matching and simulated OER/HD — is bit-identical.
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    RandomRig rig(120, 150, seed);
    attack::ProximityOptions opts;
    opts.eval_patterns = 256;
    opts.candidates_per_sink = 8;
    auto run = [&](int threshold) {
      opts.index_min_drivers = threshold;
      return attack::proximity_attack(rig.nl, rig.nl, rig.pl, rig.view,
                                      nullptr, opts);
    };
    const auto brute = run(std::numeric_limits<int>::max());
    const auto indexed = run(0);
    EXPECT_TRUE(same_result(brute, indexed)) << "seed " << seed;
    EXPECT_EQ(brute.open_sinks, 150u);
  }
}

TEST(AttackUnits, SpatialIndexMatchesBruteForceWithDiagonalStubsLowBonus) {
  // Regression for the pruning bound: RandomRig emits diagonal stub
  // directions, whose cosine against the unnormalized dir vector reaches
  // sqrt(2) — a floor derived from cos <= 1 over-prunes once
  // direction_bonus drops. The sound floor is 1 - (1-bonus)*sqrt(2).
  for (const double bonus : {0.3, 0.45, 0.6}) {
    for (const std::uint64_t seed : {5u, 23u, 41u, 77u}) {
      RandomRig rig(120, 150, seed);
      attack::ProximityOptions opts;
      opts.eval_patterns = 256;
      opts.candidates_per_sink = 8;
      opts.direction_bonus = bonus;
      auto run = [&](int threshold) {
        opts.index_min_drivers = threshold;
        return attack::proximity_attack(rig.nl, rig.nl, rig.pl, rig.view,
                                        nullptr, opts);
      };
      EXPECT_TRUE(
          same_result(run(std::numeric_limits<int>::max()), run(0)))
          << "bonus " << bonus << " seed " << seed;
    }
  }
}

TEST(AttackUnits, SpatialIndexMatchesBruteForceWithAllHints) {
  RandomRig rig(100, 100, 7);
  attack::ProximityOptions opts;
  opts.eval_patterns = 256;
  opts.candidates_per_sink = 6;
  opts.use_strength_prior = true;  // exercises the prior term of the bound
  opts.anchor_weight = 0.1;        // and the anchor term
  auto run = [&](int threshold) {
    opts.index_min_drivers = threshold;
    return attack::proximity_attack(rig.nl, rig.nl, rig.pl, rig.view, nullptr,
                                    opts);
  };
  EXPECT_TRUE(
      same_result(run(std::numeric_limits<int>::max()), run(0)));
}

TEST(AttackUnits, JobsDoNotChangeResults) {
  // ISSUE-4 acceptance: N-job attack bit-identical to 1 job, with the
  // spatial index active (threshold 0) and inactive.
  RandomRig rig(90, 120, 21);
  attack::ProximityOptions opts;
  opts.eval_patterns = 9000;  // spans multiple sim blocks
  opts.candidates_per_sink = 8;
  for (const int threshold : {0, std::numeric_limits<int>::max()}) {
    opts.index_min_drivers = threshold;
    opts.jobs = 1;
    const auto serial =
        attack::proximity_attack(rig.nl, rig.nl, rig.pl, rig.view, nullptr, opts);
    opts.jobs = 4;
    const auto parallel =
        attack::proximity_attack(rig.nl, rig.nl, rig.pl, rig.view, nullptr, opts);
    EXPECT_TRUE(same_result(serial, parallel)) << "threshold " << threshold;
  }
}

TEST(AttackUnits, EmptyViewIsPerfectScore) {
  Rig rig;
  SplitView empty;
  empty.split_layer = 3;
  attack::ProximityOptions opts;
  opts.eval_patterns = 64;
  const auto res = attack::proximity_attack(rig.nl, rig.nl, rig.pl, empty,
                                            nullptr, opts);
  EXPECT_EQ(res.open_sinks, 0u);
  EXPECT_DOUBLE_EQ(res.ccr(), 1.0);  // nothing hidden, everything "known"
  EXPECT_DOUBLE_EQ(res.rates.oer, 0.0);
}

}  // namespace
