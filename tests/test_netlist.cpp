// Unit tests for sm::netlist — library contents, netlist construction and
// mutation invariants, topological utilities, loop detection.
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/topo.hpp"

#include <gtest/gtest.h>

namespace {

using namespace sm::netlist;

class NetlistTest : public ::testing::Test {
 protected:
  CellLibrary lib{6};
};

TEST_F(NetlistTest, LibraryHasExpectedCells) {
  EXPECT_NO_THROW(lib.id_of("INV_X1"));
  EXPECT_NO_THROW(lib.id_of("NAND2_X1"));
  EXPECT_NO_THROW(lib.id_of("BUF_X8"));
  EXPECT_NO_THROW(lib.id_of("SM_CORR"));
  EXPECT_NO_THROW(lib.id_of("SM_LIFT"));
  EXPECT_THROW(lib.id_of("NOPE_X1"), std::invalid_argument);
  EXPECT_FALSE(lib.find("NOPE_X1").has_value());
}

TEST_F(NetlistTest, CorrectionCellProperties) {
  const CellType& corr = lib.type(lib.correction_cell());
  EXPECT_EQ(corr.cls, CellClass::Correction);
  EXPECT_EQ(corr.pin_layer, 6);
  EXPECT_DOUBLE_EQ(corr.area_um2, 0.0);  // zero die-area contribution
  // Power/timing borrowed from BUF_X2 (paper Sec. 4).
  const CellType& buf2 = lib.type(lib.id_of("BUF_X2"));
  EXPECT_DOUBLE_EQ(corr.input_cap_ff, buf2.input_cap_ff);
  EXPECT_DOUBLE_EQ(corr.drive_res_kohm, buf2.drive_res_kohm);

  CellLibrary lib8{8};
  EXPECT_EQ(lib8.type(lib8.correction_cell()).pin_layer, 8);
}

TEST_F(NetlistTest, MetalStackShape) {
  const MetalStack& m = lib.metal();
  EXPECT_EQ(m.num_layers(), 10);
  EXPECT_EQ(m.layer(1).name, "M1");
  EXPECT_EQ(m.layer(10).name, "M10");
  EXPECT_EQ(m.layer(1).preferred, Direction::Horizontal);
  EXPECT_EQ(m.layer(2).preferred, Direction::Vertical);
  // Upper layers are coarser and less resistive.
  EXPECT_GT(m.layer(9).pitch_um, m.layer(1).pitch_um);
  EXPECT_LT(m.layer(9).res_ohm_per_um, m.layer(1).res_ohm_per_um);
  EXPECT_THROW(m.layer(0), std::out_of_range);
  EXPECT_THROW(m.layer(11), std::out_of_range);
}

TEST_F(NetlistTest, BufferStrengthLookup) {
  EXPECT_EQ(lib.type(lib.buffer(8)).name, "BUF_X8");
  EXPECT_THROW(lib.buffer(3), std::invalid_argument);
}

// Build: y = NAND(a, b); z = INV(y)
Netlist make_small(const CellLibrary& lib) {
  Netlist nl(lib, "small");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_primary_input("b");
  const CellId g1 = nl.add_cell("g1", lib.id_of("NAND2_X1"));
  nl.connect_input(g1, 0, a);
  nl.connect_input(g1, 1, b);
  const CellId g2 = nl.add_cell("g2", lib.id_of("INV_X1"));
  nl.connect_input(g2, 0, nl.cell(g1).output);
  nl.add_primary_output("z", nl.cell(g2).output);
  return nl;
}

TEST_F(NetlistTest, ConstructionInvariants) {
  const Netlist nl = make_small(lib);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.num_gates(), 2u);
  const CellId g1 = nl.find_cell("g1");
  ASSERT_NE(g1, kInvalidCell);
  EXPECT_EQ(nl.net(nl.cell(g1).output).sinks.size(), 1u);
}

TEST_F(NetlistTest, ReconnectSinkMovesFanout) {
  Netlist nl = make_small(lib);
  const CellId g2 = nl.find_cell("g2");
  const CellId g1 = nl.find_cell("g1");
  const NetId a = nl.primary_input_net(0);
  const NetId g1_out = nl.cell(g1).output;

  nl.reconnect_sink(g2, 0, a);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_TRUE(nl.net(g1_out).sinks.empty());
  // Net `a` now feeds both g1 and g2.
  EXPECT_EQ(nl.net(a).sinks.size(), 2u);
}

TEST_F(NetlistTest, ValidateCatchesUnconnectedPin) {
  Netlist nl(lib, "bad");
  const NetId a = nl.add_primary_input("a");
  const CellId g = nl.add_cell("g", lib.id_of("NAND2_X1"));
  nl.connect_input(g, 0, a);  // pin 1 left open
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST_F(NetlistTest, TopologicalOrderRespectsDependencies) {
  const Netlist nl = make_small(lib);
  const auto order = topological_order(nl);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), nl.num_cells());
  std::vector<std::size_t> pos(nl.num_cells());
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  const CellId g1 = nl.find_cell("g1"), g2 = nl.find_cell("g2");
  EXPECT_LT(pos[g1], pos[g2]);
}

TEST_F(NetlistTest, LevelizeDepths) {
  const Netlist nl = make_small(lib);
  const auto level = levelize(nl);
  // Sources (PIs/ports) are level 0; a gate fed only by PIs is level 0 too
  // (no combinational predecessor), its fanout gate is level 1.
  const CellId g1 = nl.find_cell("g1"), g2 = nl.find_cell("g2");
  EXPECT_EQ(level[g1], 0);
  EXPECT_EQ(level[g2], 1);
}

TEST_F(NetlistTest, LoopDetection) {
  Netlist nl = make_small(lib);
  const CellId g1 = nl.find_cell("g1");
  const CellId g2 = nl.find_cell("g2");
  // Feeding g2's output back into g1 closes a combinational loop.
  EXPECT_TRUE(creates_combinational_loop(nl, g2, g1));
  // Feeding a PI forward never loops.
  EXPECT_FALSE(creates_combinational_loop(nl, nl.net(nl.primary_input_net(0)).driver, g2));
  // Self-loop counts.
  EXPECT_TRUE(creates_combinational_loop(nl, g1, g1));

  // Actually closing the loop makes the netlist cyclic.
  nl.reconnect_sink(g1, 1, nl.cell(g2).output);
  EXPECT_FALSE(is_acyclic(nl));
  EXPECT_THROW(levelize(nl), std::logic_error);
}

TEST_F(NetlistTest, DffBreaksCombinationalLoops) {
  Netlist nl(lib, "seq");
  const NetId a = nl.add_primary_input("a");
  const CellId ff = nl.add_cell("ff", lib.dff());
  const CellId g = nl.add_cell("g", lib.id_of("AND2_X1"));
  nl.connect_input(g, 0, a);
  nl.connect_input(g, 1, nl.cell(ff).output);
  nl.connect_input(ff, 0, nl.cell(g).output);  // g -> ff -> g: sequential loop
  nl.add_primary_output("z", nl.cell(g).output);
  nl.validate();
  EXPECT_TRUE(is_acyclic(nl));  // DFF breaks the cycle
  EXPECT_FALSE(creates_combinational_loop(nl, ff, g));
}

TEST_F(NetlistTest, CombinationalFanoutStopsAtDff) {
  Netlist nl(lib, "seq2");
  const NetId a = nl.add_primary_input("a");
  const CellId inv = nl.add_cell("inv", lib.id_of("INV_X1"));
  nl.connect_input(inv, 0, a);
  const CellId ff = nl.add_cell("ff", lib.dff());
  nl.connect_input(ff, 0, nl.cell(inv).output);
  const CellId inv2 = nl.add_cell("inv2", lib.id_of("INV_X1"));
  nl.connect_input(inv2, 0, nl.cell(ff).output);
  nl.add_primary_output("z", nl.cell(inv2).output);

  const auto fan = combinational_fanout(nl, a);
  // inv and ff are reached; inv2 is beyond the sequential boundary.
  EXPECT_NE(std::find(fan.begin(), fan.end(), inv), fan.end());
  EXPECT_NE(std::find(fan.begin(), fan.end(), ff), fan.end());
  EXPECT_EQ(std::find(fan.begin(), fan.end(), inv2), fan.end());
}

TEST_F(NetlistTest, CloneIsIndependent) {
  Netlist nl = make_small(lib);
  Netlist copy = nl.clone();
  const CellId g2 = copy.find_cell("g2");
  copy.reconnect_sink(g2, 0, copy.primary_input_net(0));
  // Original unaffected.
  const CellId g1 = nl.find_cell("g1");
  EXPECT_EQ(nl.net(nl.cell(g1).output).sinks.size(), 1u);
}

TEST(FnArity, MatchesFunctions) {
  EXPECT_EQ(fn_arity(LogicFn::Inv, 1), 1);
  EXPECT_EQ(fn_arity(LogicFn::Mux2, 3), 3);
  EXPECT_EQ(fn_arity(LogicFn::Nand, 4), 4);
  EXPECT_EQ(fn_arity(LogicFn::Const1, 0), 0);
}

}  // namespace
