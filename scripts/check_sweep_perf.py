#!/usr/bin/env python3
"""CI perf-regression smoke for the sweep driver.

Compares the wall time of a fresh quick-mode sweep against the most recent
``quick_wall_ms`` baseline recorded in BENCH_sweep.json, and fails when the
fresh run is slower by more than a generous factor. The fresh measurement
comes from either

* the ``--json`` export of ``sm_flow sweep --quick`` (its ``wall_ms``
  whole-sweep field), or
* a ``--store`` JSONL log: per-record ``wall_ms`` is the *task* wall shared
  by every split of one (benchmark, seed, defense) triple, so the script
  dedupes by that key (last record wins, mirroring the store's merge rule)
  and sums the task walls. That sum is serial compute, not elapsed wall —
  still exactly the right scale for an order-of-magnitude tripwire. The factor is deliberately loose
(default 10x): CI machines differ wildly from the hosts the baselines were
measured on, and this check only exists to catch order-of-magnitude
regressions — an accidentally quadratic loop, a debug build, a scheduler
that stopped parallelizing — not single-digit percent drift. Track real
performance by re-measuring BENCH_sweep.json entries on a pinned host.

Usage:
    check_sweep_perf.py FRESH_JSON_OR_STORE_JSONL BASELINE_JSON [--factor=F]

Baseline selection: the latest BENCH_sweep.json entry carrying a
``quick_wall_ms`` field, preferring entries whose ``host_hardware_threads``
matches this machine (same tier); if no entry has the field at all — old
checkouts predate it — the check passes with a notice, so the script can
ride in CI before the first baseline lands.

The baseline may also be BENCH_micro.json. In that mode the fresh file is
a google-benchmark JSON export (``--benchmark_out=... \
--benchmark_out_format=json``) and every fresh rig that has a recorded
``results_ms`` baseline (latest entry per rig name wins) is compared
individually against factor x its baseline, using real (wall) time.
Rigs without a baseline are skipped with a notice — new rigs ride through
CI before their first BENCH_micro.json entry lands.

Exit status: 0 pass, 1 regression, 2 usage/parse error.
"""

import json
import os
import sys

DEFAULT_FACTOR = 10.0


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        print(f"check_sweep_perf: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def store_wall_ms(path):
    """Summed per-task wall from a store JSONL log, or None if `path` is
    not one. Splits of one task share the task's wall, so records are
    deduped by (benchmark, seed, defense) with last-wins — the same merge
    rule load_store applies — before summing. Torn tail lines (a crashed
    shard) are skipped, like the store loader does."""
    walls = {}
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn final line of a crashed run
                if not isinstance(rec, dict) or "config_hash" not in rec:
                    return None  # some other JSON file, not a store log
                if rec.get("status") == "failed":
                    # Quarantine marker (supervisor gave up on the cell):
                    # no metrics, wall_ms 0 — summing it is harmless but
                    # letting it *overwrite* the task key would zero out a
                    # real task wall recorded by a sibling split's record.
                    continue
                key = (rec.get("benchmark"), rec.get("seed"),
                       rec.get("defense"))
                walls[key] = rec.get("wall_ms", 0.0)
    except OSError:
        return None
    total = sum(w for w in walls.values() if isinstance(w, (int, float)))
    return total if total > 0 else None


def fresh_wall_ms(path):
    """Wall time of the fresh run: sweep --json export or store JSONL."""
    wall = store_wall_ms(path)
    if wall is not None:
        return wall
    fresh = load(path)
    wall = fresh.get("wall_ms") if isinstance(fresh, dict) else None
    return wall if isinstance(wall, (int, float)) and wall > 0 else None


_TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def micro_baseline(entries):
    """Latest recorded ms per rig name from BENCH_micro.json entries.

    Every section of an entry whose value is a dict carrying a
    ``results_ms`` dict contributes its rigs; later entries override
    earlier ones, so each rig resolves to its most recent baseline (and
    the PR that recorded it). Returns {} when the baseline file carries no
    micro sections at all — the caller falls back to sweep mode."""
    rigs = {}
    if not isinstance(entries, list):
        return rigs
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        for section in entry.values():
            if not isinstance(section, dict):
                continue
            results = section.get("results_ms")
            if not isinstance(results, dict):
                continue
            for name, ms in results.items():
                if isinstance(ms, (int, float)) and ms > 0:
                    rigs[name] = (float(ms), entry.get("pr", "?"))
    return rigs


def fresh_micro(path):
    """{rig name: real-time ms} from a google-benchmark JSON export, or
    None if `path` is not one. Median aggregates (from
    --benchmark_repetitions) take precedence over raw iteration rows so a
    repeated run compares its medians, matching how BENCH_micro.json
    entries were recorded."""
    try:
        with open(path) as fh:
            fresh = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(fresh, dict) or "benchmarks" not in fresh:
        return None
    rigs, medians = {}, {}
    for row in fresh["benchmarks"]:
        if not isinstance(row, dict):
            continue
        scale = _TIME_UNIT_TO_MS.get(row.get("time_unit"), 1e-6)
        time_ms = row.get("real_time")
        if not isinstance(time_ms, (int, float)):
            continue
        time_ms *= scale
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[row.get("run_name")] = time_ms
        else:
            rigs.setdefault(row.get("name"), time_ms)
    rigs.update(medians)
    rigs.pop(None, None)
    return rigs


def check_micro(fresh_rigs, baseline_rigs, factor):
    """Per-rig factor check; returns the exit status."""
    if not baseline_rigs:
        print("check_sweep_perf: no results_ms baselines recorded yet — "
              "passing (record one in BENCH_micro.json)")
        return 0
    compared = regressions = 0
    for name in sorted(fresh_rigs):
        if name not in baseline_rigs:
            print(f"check_sweep_perf: {name}: no baseline yet — skipping")
            continue
        base_ms, pr = baseline_rigs[name]
        limit_ms = base_ms * factor
        fresh_ms = fresh_rigs[name]
        compared += 1
        verdict = "ok"
        if fresh_ms > limit_ms:
            regressions += 1
            verdict = "REGRESSION"
        print(f"check_sweep_perf: {name}: fresh {fresh_ms:.3f} ms vs "
              f"baseline {base_ms:.3f} ms (PR {pr}), limit {limit_ms:.3f} "
              f"ms — {verdict}")
    if regressions:
        print(f"check_sweep_perf: {regressions} of {compared} rigs over "
              f"{factor:g}x their recorded baseline", file=sys.stderr)
        return 1
    if not compared:
        print("check_sweep_perf: no fresh rig matched a recorded baseline "
              "— passing (check the --benchmark_filter against "
              "BENCH_micro.json)")
    return 0


def pick_baseline(entries, host_threads):
    """Latest entry with quick_wall_ms, same-tier entries preferred."""
    if not isinstance(entries, list):
        print("check_sweep_perf: baseline JSON is not a list", file=sys.stderr)
        sys.exit(2)
    with_quick = [
        e for e in entries if isinstance(e, dict) and "quick_wall_ms" in e
    ]
    same_tier = [
        e for e in with_quick
        if e.get("host_hardware_threads") == host_threads
    ]
    pool = same_tier or with_quick
    return pool[-1] if pool else None


def main(argv):
    factor = DEFAULT_FACTOR
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--factor="):
            try:
                factor = float(arg.split("=", 1)[1])
            except ValueError:
                print(f"check_sweep_perf: bad {arg} (want --factor=NUMBER)",
                      file=sys.stderr)
                return 2
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    fresh_rigs = fresh_micro(paths[0])
    if fresh_rigs is not None:
        return check_micro(fresh_rigs, micro_baseline(load(paths[1])),
                           factor)

    wall_ms = fresh_wall_ms(paths[0])
    if wall_ms is None:
        print(f"check_sweep_perf: no usable wall_ms in {paths[0]}",
              file=sys.stderr)
        return 2

    host_threads = os.cpu_count() or 1
    baseline = pick_baseline(load(paths[1]), host_threads)
    if baseline is None:
        print("check_sweep_perf: no quick_wall_ms baseline recorded yet — "
              "passing (record one in BENCH_sweep.json)")
        return 0

    try:
        base_ms = float(baseline["quick_wall_ms"])
    except (TypeError, ValueError):
        print("check_sweep_perf: baseline quick_wall_ms "
              f"{baseline.get('quick_wall_ms')!r} is not a number "
              "(fix the BENCH_sweep.json entry)", file=sys.stderr)
        return 2
    limit_ms = base_ms * factor
    tier = baseline.get("host_hardware_threads")
    tier_note = ("same tier" if tier == host_threads else
                 f"baseline tier {tier}, this host {host_threads}")
    print(f"check_sweep_perf: fresh {wall_ms:.0f} ms vs baseline "
          f"{base_ms:.0f} ms (PR {baseline.get('pr', '?')}, {tier_note}), "
          f"limit {limit_ms:.0f} ms (factor {factor:g})")
    if wall_ms > limit_ms:
        print(f"check_sweep_perf: REGRESSION — quick sweep took "
              f"{wall_ms:.0f} ms, over {factor:g}x the recorded "
              f"{base_ms:.0f} ms baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
