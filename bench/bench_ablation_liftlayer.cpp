// Ablation (DESIGN.md Sec. 6): where to put the correction-cell pins?
// The paper uses M6 for ISCAS-85 and M8 for superblue, and argues that
// splitting after higher layers lowers the commercial cost of SM. This
// sweep lifts one benchmark to M4/M6/M8 and reports, per lift layer:
// via counts above the split, PPA overheads, and the attack outcome when
// the layout is split just below the pins.
#include "attack/proximity.hpp"
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header("Ablation: correction-cell pin layer (lift layer)");

  const std::string name = suite.only.empty() ? "c1355" : suite.only.front();

  util::Table table({"Lift layer", "Split", "dPower", "dDelay", "Total vias",
                     "CCR(prot)", "OER", "HD"});
  for (const int lift : {4, 6, 8}) {
    netlist::CellLibrary lib{lift};
    const auto nl =
        workloads::generate(lib, workloads::iscas85_profile(name), suite.seed);
    auto flow = bench::iscas_flow(suite.seed);
    flow.lift_layer = lift;
    const auto original = core::layout_original(nl, flow);
    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);

    const int split = lift - 1;  // split just below the correction pins
    const auto view = core::split_layout(
        design.erroneous, design.layout.placement, design.layout.routing,
        design.layout.tasks, design.layout.num_net_tasks, split);
    attack::ProximityOptions a;
    a.eval_patterns = suite.patterns / 2;
    const auto res =
        attack::proximity_attack(design.erroneous, nl, design.layout.placement,
                                 view, &design.ledger, a);

    table.add_row(
        {"M" + std::to_string(lift), "M" + std::to_string(split),
         util::Table::pct(util::pct_delta(original.ppa.total_power_uw(),
                                          design.layout.ppa.total_power_uw()),
                          1),
         util::Table::pct(
             util::pct_delta(original.ppa.critical_path_ps,
                             design.layout.ppa.critical_path_ps),
             1),
         util::Table::count(design.layout.routing.stats.total_vias()),
         util::Table::pct(100 * res.ccr_protected(), 1),
         util::Table::pct(100 * res.rates.oer, 1),
         util::Table::pct(100 * res.rates.hd, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nHigher lift layers need deeper via stacks (more vias, more RC) but\n"
      "permit splitting after higher layers, which lowers the commercial\n"
      "cost of split manufacturing (paper Sec. 1/6).\n");
  return 0;
}
