// Fig. 5: contribution of each metal layer to the wirelength of the
// randomized nets, for Original / Lifted / Proposed superblue layouts.
// Expected shape: original wiring concentrates in M1-M4; naive lifting and
// the proposed scheme move the majority above the lift layer (M8 pins), the
// proposed scheme most decisively.
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header(
      "Fig. 5: per-layer wirelength share of randomized nets (%)");

  std::vector<std::string> header{"Benchmark", "Layout"};
  for (int l = 1; l <= 10; ++l) header.push_back("M" + std::to_string(l));
  util::Table table(header);

  for (const auto& name : bench::pick(workloads::superblue_names(), suite)) {
    const auto spec = workloads::superblue_profile(name, suite.scale);
    netlist::CellLibrary lib{8};
    const auto nl = workloads::generate(lib, spec, suite.seed);
    const auto flow = bench::superblue_flow(suite.seed, spec);

    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);
    const auto nets = design.ledger.protected_nets();
    const auto original = core::layout_original(nl, flow);
    const auto lifted = core::layout_naive_lift(nl, nets, flow);

    auto row = [&](const char* label, const route::RoutingResult& routing) {
      const auto share =
          metrics::layer_shares(metrics::per_layer_wirelength(routing, nets));
      std::vector<std::string> r{name, label};
      for (int l = 1; l <= 10; ++l)
        r.push_back(util::Table::pct(share[static_cast<std::size_t>(l)], 1));
      table.add_row(r);
    };
    row("Original", original.routing);
    row("Lifted", lifted.layout.routing);
    row("Proposed", design.layout.routing);
    table.add_separator();
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
