// Table 4: network-flow proximity attack [5] vs placement-centric defenses
// on the ISCAS-85 suite. Metrics averaged over splits after M3, M4, M5 (the
// paper's setup). Columns:
//   Original          — unprotected layout,
//   PlacePerturb [5]  — selective gate-location perturbation,
//   Random/G-Color/G-Type1/G-Type2 [8] — Sengupta et al. strategies (CCR),
//   Proposed          — this paper's scheme (CCR on randomized connections,
//                       OER/HD of the attacker's recovered netlist).
//
// Expected shape: Original highly attackable (high CCR, low HD); placement
// perturbation helps marginally; the proposed scheme reaches 0% CCR with
// OER ~100% and HD ~40%.
#include "attack/proximity.hpp"
#include "common.hpp"

namespace {

struct Score {
  double ccr = 0, oer = 0, hd = 0;
};

using namespace sm;

Score attack_avg(const netlist::Netlist& feol, const netlist::Netlist& truth,
                 const core::LayoutResult& layout,
                 const core::SwapLedger* ledger, std::size_t patterns,
                 bool protected_ccr, std::size_t attack_jobs) {
  Score s;
  attack::ProximityOptions opts;
  opts.eval_patterns = patterns;
  opts.jobs = attack_jobs;  // intra-attack sharding; metrics jobs-invariant
  for (const int split : {3, 4, 5}) {
    const auto view =
        core::split_layout(feol, layout.placement, layout.routing,
                           layout.tasks, layout.num_net_tasks, split);
    const auto res = attack::proximity_attack(feol, truth, layout.placement,
                                              view, ledger, opts);
    s.ccr += protected_ccr ? res.ccr_protected() : res.ccr();
    s.oer += res.rates.oer;
    s.hd += res.rates.hd;
  }
  s.ccr /= 3;
  s.oer /= 3;
  s.hd /= 3;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header(
      "Table 4: proximity attack vs placement-perturbation defenses "
      "(ISCAS-85, averaged over splits M3/M4/M5)");

  const auto names = bench::pick(workloads::iscas85_names(), suite);
  struct PerBench {
    Score so, sp, sprop;
    double s_rand = 0, s_col = 0, s_t1 = 0, s_t2 = 0;
  };
  std::vector<PerBench> results(names.size());

  bench::for_each_benchmark(names, suite, [&](std::size_t i) {
    netlist::CellLibrary lib{6};
    const auto nl = workloads::generate(
        lib, workloads::iscas85_profile(names[i]), suite.seed);
    const auto flow =
        bench::apply_layout_flags(bench::iscas_flow(suite.seed), suite);
    PerBench& r = results[i];

    const auto original = core::layout_original(nl, flow);
    r.so = attack_avg(nl, nl, original, nullptr, suite.patterns, false, suite.attack_jobs);

    // [5]: selective, small perturbation (the paper reports only a marginal
    // improvement over unprotected layouts).
    const auto perturbed = core::layout_placement_perturbed(
        nl, flow, core::PerturbStrategy::Random, 0.05, suite.seed, 0.1);
    r.sp = attack_avg(nl, nl, perturbed, nullptr, suite.patterns, false, suite.attack_jobs);

    auto strategy_ccr = [&](core::PerturbStrategy st) {
      const auto lay = core::layout_placement_perturbed(nl, flow, st, 0.25,
                                                        suite.seed, 0.2);
      return attack_avg(nl, nl, lay, nullptr, suite.patterns / 4, false, suite.attack_jobs).ccr;
    };
    r.s_rand = strategy_ccr(core::PerturbStrategy::Random);
    r.s_col = strategy_ccr(core::PerturbStrategy::GColor);
    r.s_t1 = strategy_ccr(core::PerturbStrategy::GType1);
    r.s_t2 = strategy_ccr(core::PerturbStrategy::GType2);

    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);
    r.sprop = attack_avg(design.erroneous, nl, design.layout, &design.ledger,
                         suite.patterns, true, suite.attack_jobs);
  });

  util::Table table({"Benchmark", "Orig CCR", "Orig OER", "Orig HD",
                     "Perturb[5] CCR", "Perturb[5] HD", "Random[8] CCR",
                     "G-Color[8] CCR", "G-Type1[8] CCR", "G-Type2[8] CCR",
                     "Prop CCR", "Prop OER", "Prop HD"});
  Score avg_orig, avg_prop;
  int count = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const PerBench& r = results[i];
    table.add_row({names[i], util::Table::pct(100 * r.so.ccr, 1),
                   util::Table::pct(100 * r.so.oer, 1),
                   util::Table::pct(100 * r.so.hd, 1),
                   util::Table::pct(100 * r.sp.ccr, 1),
                   util::Table::pct(100 * r.sp.hd, 1),
                   util::Table::pct(100 * r.s_rand, 1),
                   util::Table::pct(100 * r.s_col, 1),
                   util::Table::pct(100 * r.s_t1, 1),
                   util::Table::pct(100 * r.s_t2, 1),
                   util::Table::pct(100 * r.sprop.ccr, 1),
                   util::Table::pct(100 * r.sprop.oer, 1),
                   util::Table::pct(100 * r.sprop.hd, 1)});
    avg_orig.ccr += r.so.ccr;
    avg_orig.oer += r.so.oer;
    avg_orig.hd += r.so.hd;
    avg_prop.ccr += r.sprop.ccr;
    avg_prop.oer += r.sprop.oer;
    avg_prop.hd += r.sprop.hd;
    ++count;
  }
  if (count > 0) {
    table.add_separator();
    table.add_row({"Average", util::Table::pct(100 * avg_orig.ccr / count, 1),
                   util::Table::pct(100 * avg_orig.oer / count, 1),
                   util::Table::pct(100 * avg_orig.hd / count, 1), "", "", "",
                   "", "", "", util::Table::pct(100 * avg_prop.ccr / count, 1),
                   util::Table::pct(100 * avg_prop.oer / count, 1),
                   util::Table::pct(100 * avg_prop.hd / count, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
