// Shared plumbing for the per-table/figure bench harnesses.
//
// Every bench accepts:
//   --scale=<f>     superblue clone scale (default 0.01 of published size)
//   --seed=<n>      master seed (default 1)
//   --patterns=<n>  simulation patterns for OER/HD (default 100000;
//                   the paper uses 1,000,000 — pass --patterns=1000000 to
//                   match, at ~10x the runtime)
//   --quick         clip benchmark lists for smoke runs
//   --benchmarks=a,b,c   explicit benchmark subset (empty entries skipped,
//                        so a trailing comma is harmless)
//   --jobs=<n>      worker threads for the per-benchmark loop (default 1;
//                   0 = hardware concurrency). Results are bit-identical
//                   for any value — benches compute into index-addressed
//                   slots and render tables in benchmark order afterwards.
//   --attack-jobs=<n>  worker threads *inside* each proximity attack
//                   (candidate generation + OER/HD simulation blocks);
//                   default 1. Also bit-identical for any value. Prefer
//                   --jobs when sweeping many benchmarks and --attack-jobs
//                   when drilling into one large instance — combining both
//                   oversubscribes the machine.
//   --route-jobs=<n>   worker threads inside each router run (negotiation
//                   rounds shard their net re-routes); default 1, routes
//                   bit-identical for any value. Same stacking caveat as
//                   --attack-jobs.
//   --route-passes=<n>   router rip-up-and-reroute rounds (default: the
//                   suite tuning, currently 3)
//   --route-partition=tree|rounds   router re-route scheduler: the spatial
//                   partition tree with live in-region congestion (default)
//                   or the legacy snapshot-commit rounds (changes which
//                   layout is produced; each is deterministic on its own)
//   --partition-depth=<n>   tree depth where the router's parallel tasks
//                   fan out (default auto; pure scheduling — layouts are
//                   bit-identical for every value)
//   --detailed-passes=<n>  placer greedy-swap refinement sweeps (default:
//                   the per-suite tuning, 2 ISCAS / 1 superblue)
//
//   The three layout-engine flags are applied via apply_layout_flags(),
//   currently wired into the table 1/4/5 benches — the remaining benches
//   parse but ignore them (like --jobs on the serial benches; see
//   docs/CLI.md for the wiring status).
#pragma once

#include "core/baselines.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/generator.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace sm::bench {

struct SuiteOptions {
  double scale = 0.01;
  std::uint64_t seed = 1;
  std::size_t patterns = 100000;
  bool quick = false;
  std::size_t jobs = 1;         ///< threads for the benchmark loop; 0 = hw
  std::size_t attack_jobs = 1;  ///< threads inside each proximity attack
  std::size_t route_jobs = 1;   ///< threads inside each router run
  std::size_t route_passes = 0; ///< router negotiation rounds; 0 = suite default
  route::RoutePartition route_partition =
      route::RoutePartition::Tree;  ///< re-route scheduler
  int partition_depth = -1;     ///< tree fan-out depth; -1 = auto
  int detailed_passes = -1;     ///< placer refinement sweeps; -1 = suite default
  std::vector<std::string> only;  ///< benchmark filter (empty = all)
};

inline SuiteOptions parse_suite(int argc, const char* const* argv) {
  util::Args args(argc, argv);
  SuiteOptions s;
  s.scale = args.get_double("scale", s.scale);
  s.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  s.patterns = static_cast<std::size_t>(
      args.get_int("patterns", static_cast<std::int64_t>(s.patterns)));
  s.quick = args.get_bool("quick", false);
  s.jobs = args.get_count("jobs", 1);
  s.attack_jobs = args.get_count("attack-jobs", 1);
  s.route_jobs = args.get_count("route-jobs", 1);
  if (args.has("route-passes")) {
    s.route_passes = args.get_count("route-passes", 0);
    if (s.route_passes == 0)
      throw std::invalid_argument("bench: --route-passes must be >= 1");
  }
  if (args.has("route-partition"))
    s.route_partition =
        route::route_partition_from_string(args.get("route-partition", ""));
  if (args.has("partition-depth"))
    s.partition_depth =
        static_cast<int>(args.get_count("partition-depth", 0));
  if (args.has("detailed-passes"))
    s.detailed_passes =
        static_cast<int>(args.get_count("detailed-passes", 0));
  s.only = util::split_list(args.get("benchmarks", ""));
  return s;
}

/// Apply the layout-engine flags (--route-passes / --route-jobs /
/// --detailed-passes) on top of a suite's tuned FlowOptions. Unset flags
/// keep the suite tuning (sentinels 0 / -1), so retuning a suite default
/// can never be silently undone by a flag nobody passed.
inline core::FlowOptions apply_layout_flags(core::FlowOptions f,
                                            const SuiteOptions& s) {
  if (s.route_passes > 0) f.router.passes = static_cast<int>(s.route_passes);
  f.router.jobs = s.route_jobs;
  f.router.partition = s.route_partition;
  f.router.partition_depth = s.partition_depth;
  if (s.detailed_passes >= 0) f.placer.detailed_passes = s.detailed_passes;
  return f;
}

/// Run body(i) for every picked benchmark index over suite.jobs threads.
/// body must write only into its own index's slot of a pre-sized results
/// vector; the caller renders rows in index order after this returns, which
/// keeps the printed tables bit-identical for any --jobs value.
inline void for_each_benchmark(const std::vector<std::string>& names,
                               const SuiteOptions& s,
                               const std::function<void(std::size_t)>& body) {
  util::parallel_for(s.jobs, names.size(), body);
}

inline std::vector<std::string> pick(const std::vector<std::string>& all,
                                     const SuiteOptions& s,
                                     std::size_t quick_count = 2) {
  if (!s.only.empty()) return s.only;
  if (s.quick)
    return {all.begin(),
            all.begin() + static_cast<std::ptrdiff_t>(
                              std::min(quick_count, all.size()))};
  return all;
}

/// Flow options for ISCAS-85 runs: correction pins in M6 (paper Sec. 5.1).
inline core::FlowOptions iscas_flow(std::uint64_t seed) {
  core::FlowOptions f;
  f.lift_layer = 6;
  f.seed = seed;
  f.router.passes = 3;
  f.placer.seed = seed;
  f.placer.target_utilization = 0.45;  // congestion-free at our router
  f.placer.detailed_passes = 2;
  return f;
}

/// Flow options for superblue runs: correction pins in M8 (paper Sec. 5.1).
/// The published utilizations are derated x0.5 so the substrate router stays
/// congestion-free, mirroring the paper's "appropriate utilization rates".
inline core::FlowOptions superblue_flow(std::uint64_t seed,
                                        const workloads::GenSpec& spec) {
  core::FlowOptions f;
  f.lift_layer = 8;
  f.seed = seed;
  f.router.passes = 3;
  f.placer.seed = seed;
  f.placer.target_utilization = spec.utilization * 0.5;
  f.placer.detailed_passes = 1;
  return f;
}

inline core::RandomizeOptions default_randomize(std::uint64_t seed) {
  core::RandomizeOptions r;
  r.seed = seed;
  r.target_oer = 0.995;
  r.check_patterns = 4096;
  return r;
}

inline void print_header(const char* what) {
  std::printf("\n==== %s ====\n", what);
  std::printf(
      "(synthetic benchmark clones; expect the paper's *shape*, not its "
      "absolute numbers — see EXPERIMENTS.md)\n\n");
}

}  // namespace sm::bench
