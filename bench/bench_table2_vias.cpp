// Table 2: additional vias of naively lifted and proposed layouts over the
// original superblue layouts, per layer boundary V12..V910 and in total.
// The same randomized net set is used across layouts (fair comparison), die
// outlines are identical (zero area overhead).
//
// Expected shape: naive lifting adds a fraction of a percent up to a few
// percent; the proposed scheme adds tens of percent in the upper boundaries
// because every protected net is lifted to M8 *and* two BEOL restoration
// wires per swap are routed up there.
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header(
      "Table 2: additional vias over original layouts (superblue)");

  std::vector<std::string> header{"Benchmark", "Layout"};
  for (int l = 1; l <= 9; ++l)
    header.push_back("V" + std::to_string(l) + std::to_string(l + 1));
  header.push_back("Total");
  util::Table table(header);

  for (const auto& name : bench::pick(workloads::superblue_names(), suite)) {
    const auto spec = workloads::superblue_profile(name, suite.scale);
    netlist::CellLibrary lib{8};
    const auto nl = workloads::generate(lib, spec, suite.seed);
    const auto flow = bench::superblue_flow(suite.seed, spec);

    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);
    const auto nets = design.ledger.protected_nets();
    const auto original = core::layout_original(nl, flow);
    const auto lifted = core::layout_naive_lift(nl, nets, flow);

    std::vector<std::string> row{name + " (" +
                                     util::Table::count(nl.num_nets()) +
                                     " nets)",
                                 "Original"};
    for (int l = 1; l <= 9; ++l)
      row.push_back(util::Table::count(
          original.routing.stats.vias[static_cast<std::size_t>(l)]));
    row.push_back(util::Table::count(original.routing.stats.total_vias()));
    table.add_row(row);

    auto delta_row = [&](const char* label, const route::RoutingStats& st) {
      const auto d = metrics::via_delta(original.routing.stats, st);
      std::vector<std::string> r{"", label};
      for (int l = 1; l <= 9; ++l) r.push_back(d.cell(l));
      r.push_back(util::Table::pct(d.total_pct, 2));
      table.add_row(r);
    };
    delta_row("Lifted (%)", lifted.layout.routing.stats);
    delta_row("Proposed (%)", design.layout.routing.stats);

    // Zero die-area overhead check (paper: "We ensure zero die-area
    // overhead and all layouts are DRC-clean").
    if (design.layout.ppa.die_area_um2 != original.ppa.die_area_um2)
      std::printf("WARNING: die area changed for %s\n", name.c_str());
    table.add_separator();
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
