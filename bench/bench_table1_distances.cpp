// Table 1: distances between truly connected gates (microns) for Original,
// naively Lifted, and Proposed layouts of the superblue benchmarks.
//
// The original/lifted layouts place the original netlist, so truly connected
// gates sit close (small mean/median). The proposed layout places the
// *erroneous* netlist, so the distances of the true connections are
// randomized: the paper reports a ~15-20x larger mean with a wide spread.
// Distances are measured over the randomized (protected) net set, identical
// across the three layouts (as in the paper's fair-comparison setup).
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header("Table 1: distances between connected gates (um)");

  const auto names = bench::pick(workloads::superblue_names(), suite);
  // One distance summary per layout flavour, computed into the benchmark's
  // own slot so --jobs=N renders the same table as --jobs=1.
  struct PerBench {
    util::Summary original, lifted, proposed;
  };
  std::vector<PerBench> results(names.size());

  bench::for_each_benchmark(names, suite, [&](std::size_t i) {
    const auto spec = workloads::superblue_profile(names[i], suite.scale);
    netlist::CellLibrary lib{8};
    const auto nl = workloads::generate(lib, spec, suite.seed);
    const auto flow =
        bench::apply_layout_flags(bench::superblue_flow(suite.seed, spec), suite);

    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);
    const auto nets = design.ledger.protected_nets();

    const auto original = core::layout_original(nl, flow);
    const auto lifted = core::layout_naive_lift(nl, nets, flow);

    auto dist = [&](const place::Placement& pl) {
      return util::summarize(metrics::connection_distances(nl, pl, nets));
    };
    results[i].original = dist(original.placement);
    results[i].lifted = dist(lifted.layout.placement);
    // Proposed: true connections measured on the erroneous placement.
    results[i].proposed = dist(design.layout.placement);
  });

  util::Table table({"Benchmark", "Layout", "Mean", "Median", "Std. Dev."});
  for (std::size_t i = 0; i < names.size(); ++i) {
    auto row = [&](const char* layout, const util::Summary& s) {
      table.add_row({names[i], layout, util::Table::num(s.mean, 2),
                     util::Table::num(s.median, 2),
                     util::Table::num(s.stddev, 2)});
    };
    row("Original", results[i].original);
    row("Lifted", results[i].lifted);
    row("Proposed", results[i].proposed);
    table.add_separator();
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
