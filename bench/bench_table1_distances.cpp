// Table 1: distances between truly connected gates (microns) for Original,
// naively Lifted, and Proposed layouts of the superblue benchmarks.
//
// The original/lifted layouts place the original netlist, so truly connected
// gates sit close (small mean/median). The proposed layout places the
// *erroneous* netlist, so the distances of the true connections are
// randomized: the paper reports a ~15-20x larger mean with a wide spread.
// Distances are measured over the randomized (protected) net set, identical
// across the three layouts (as in the paper's fair-comparison setup).
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header("Table 1: distances between connected gates (um)");

  util::Table table({"Benchmark", "Layout", "Mean", "Median", "Std. Dev."});
  for (const auto& name : bench::pick(workloads::superblue_names(), suite)) {
    const auto spec = workloads::superblue_profile(name, suite.scale);
    netlist::CellLibrary lib{8};
    const auto nl = workloads::generate(lib, spec, suite.seed);
    const auto flow = bench::superblue_flow(suite.seed, spec);

    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);
    const auto nets = design.ledger.protected_nets();

    const auto original = core::layout_original(nl, flow);
    const auto lifted = core::layout_naive_lift(nl, nets, flow);

    auto row = [&](const char* layout, const place::Placement& pl) {
      const auto d = metrics::connection_distances(nl, pl, nets);
      const auto s = util::summarize(d);
      table.add_row({name, layout, util::Table::num(s.mean, 2),
                     util::Table::num(s.median, 2),
                     util::Table::num(s.stddev, 2)});
    };
    row("Original", original.placement);
    row("Lifted", lifted.layout.placement);
    // Proposed: true connections measured on the erroneous placement.
    row("Proposed", design.layout.placement);
    table.add_separator();
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
