// Table 3: crouting attack [6] on superblue layouts split after the layer
// below the correction pins: #vpins and average candidate-list size E[LS]
// for bounding boxes of 15/30/45 um (plus match-in-list, which the attack
// uses internally). Expected shape: the proposed layouts expose more vpins
// and (usually) larger candidate lists than original/lifted ones — every
// seemingly small E[LS] increase is a polynomial-scale solution-space blowup.
#include "attack/crouting.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header("Table 3: crouting attack (vpins and E[LS])");

  util::Table table({"Benchmark", "Layout", "#VPins", "E[LS] 15", "E[LS] 30",
                     "E[LS] 45", "Match 15", "Match 45"});
  // The paper's million-gate originals expose vpins even at M7/M8 splits;
  // our scaled clones route unprotected nets entirely below M5, so an upper
  // split would leave the original layouts with zero vpins ("N/A"). Split
  // after M4 instead: all three layouts expose vpins there, and the lifted/
  // proposed nets (pins in M8) are always cut.
  const int split_layer = 3;

  for (const auto& name : bench::pick(workloads::superblue_names(), suite)) {
    const auto spec = workloads::superblue_profile(name, suite.scale);
    netlist::CellLibrary lib{8};
    const auto nl = workloads::generate(lib, spec, suite.seed);
    const auto flow = bench::superblue_flow(suite.seed, spec);

    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);
    const auto nets = design.ledger.protected_nets();
    const auto original = core::layout_original(nl, flow);
    const auto lifted = core::layout_naive_lift(nl, nets, flow);

    auto row = [&](const char* label, const netlist::Netlist& feol_nl,
                   const core::LayoutResult& layout) {
      const auto view =
          core::split_layout(feol_nl, layout.placement, layout.routing,
                             layout.tasks, layout.num_net_tasks, split_layer);
      const auto res = attack::crouting_attack(view);
      if (res.failed) {
        table.add_row({name, label, "N/A", "N/A", "N/A", "N/A", "N/A", "N/A"});
        return;
      }
      table.add_row({name, label, util::Table::count(res.num_vpins),
                     util::Table::num(res.candidate_list_size[0], 2),
                     util::Table::num(res.candidate_list_size[1], 2),
                     util::Table::num(res.candidate_list_size[2], 2),
                     util::Table::pct(100 * res.match_in_list[0], 1),
                     util::Table::pct(100 * res.match_in_list[2], 1)});
    };
    row("Original", nl, original);
    row("Lifted", nl, lifted.layout);
    row("Proposed", design.erroneous, design.layout);
    table.add_separator();
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
