// Ablation: attack strength as a function of the split layer, for the
// original and the protected layout of one benchmark. On original layouts
// higher splits expose ever fewer cut nets (cheap to attack); the protected
// layout keeps every randomized connection above the correction layer, so
// the attacker's CCR stays pinned near zero at every split below it —
// which is precisely the paper's "split after higher layers at no security
// loss" argument.
//
// The rig is a thin front-end over the sweep grid driver: the ablation is
// the cross product (one benchmark) × splits {2,3,4,5} × defenses ×
// attackers, so it inherits the sweep's determinism contracts (bit-identical
// for any --jobs), its shared-stage LayoutCache, and — with --store — the
// event-sourced result log (re-runs with --resume recompute nothing).
//
// Extra flags on top of bench/common.hpp:
//   --defenses=a,b     defense axis (default unprotected,proposed)
//   --attackers=a,b    attacker axis (default proximity,crouting)
//   --splits=a,b       split-layer axis (default 2,3,4,5)
//   --store=<path>     append results to an event-sourced JSONL log
//   --resume           skip cells already present in --store
#include "common.hpp"
#include "sweep/sweep.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  util::Args args(argc, argv);
  bench::print_header("Ablation: split layer vs attack outcome");

  sweep::Grid grid;
  grid.benchmarks = {suite.only.empty() ? "c1908" : suite.only.front()};
  grid.seeds = {suite.seed};
  grid.split_layers = {2, 3, 4, 5};
  grid.defenses = {sweep::Defense::Unprotected, sweep::Defense::Proposed};
  grid.attackers = {sweep::Attacker::Proximity, sweep::Attacker::CRouting};
  grid.scale = suite.scale;
  if (args.has("splits")) grid.set("splits", args.get("splits", ""));
  if (args.has("defenses")) grid.set("defenses", args.get("defenses", ""));
  if (args.has("attackers")) grid.set("attackers", args.get("attackers", ""));

  sweep::Options opts;
  opts.jobs = suite.jobs;
  opts.patterns = suite.patterns / 2;
  opts.store_path = args.get("store", "");
  opts.resume = args.get_bool("resume", false);

  const auto result = sweep::run(grid, opts);
  std::fputs(result.table().render().c_str(), stdout);
  std::printf(
      "\n%zu cells (%zu computed, %zu from store), jobs=%zu, %.0f ms\n",
      result.rows.size(), result.computed_cells, result.resumed_cells,
      result.jobs, result.wall_ms);
  return 0;
}
