// Ablation: attack strength as a function of the split layer, for the
// original and the protected layout of one benchmark. On original layouts
// higher splits expose ever fewer cut nets (cheap to attack); the protected
// layout keeps every randomized connection above the correction layer, so
// the attacker's CCR stays pinned near zero at every split below it —
// which is precisely the paper's "split after higher layers at no security
// loss" argument.
#include "attack/proximity.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header("Ablation: split layer vs attack outcome");

  const std::string name = suite.only.empty() ? "c1908" : suite.only.front();
  netlist::CellLibrary lib{6};
  const auto nl =
      workloads::generate(lib, workloads::iscas85_profile(name), suite.seed);
  const auto flow = bench::iscas_flow(suite.seed);
  const auto original = core::layout_original(nl, flow);
  const auto design =
      core::protect(nl, bench::default_randomize(suite.seed), flow);

  util::Table table({"Split", "Orig open sinks", "Orig CCR", "Orig HD",
                     "Prop open sinks", "Prop CCR(prot)", "Prop OER",
                     "Prop HD"});
  for (const int split : {2, 3, 4, 5}) {
    attack::ProximityOptions a;
    a.eval_patterns = suite.patterns / 2;
    const auto v0 =
        core::split_layout(nl, original.placement, original.routing,
                           original.tasks, original.num_net_tasks, split);
    const auto r0 =
        attack::proximity_attack(nl, nl, original.placement, v0, nullptr, a);
    const auto vp = core::split_layout(
        design.erroneous, design.layout.placement, design.layout.routing,
        design.layout.tasks, design.layout.num_net_tasks, split);
    const auto rp =
        attack::proximity_attack(design.erroneous, nl, design.layout.placement,
                                 vp, &design.ledger, a);
    table.add_row({"M" + std::to_string(split), std::to_string(r0.open_sinks),
                   util::Table::pct(100 * r0.ccr(), 1),
                   util::Table::pct(100 * r0.rates.hd, 1),
                   std::to_string(rp.open_sinks),
                   util::Table::pct(100 * rp.ccr_protected(), 1),
                   util::Table::pct(100 * rp.rates.oer, 1),
                   util::Table::pct(100 * rp.rates.hd, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
