// Fig. 4: distribution of driver/sink distances for original (a), naively
// lifted (b), and proposed (c) layouts of superblue18. The paper shows
// scatter plots; we render ASCII histograms — the signature is identical:
// (a) and (b) concentrate near zero, (c) spreads to hundreds of microns.
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header("Fig. 4: driver/sink distance distribution (superblue18)");

  const std::string name =
      suite.only.empty() ? "superblue18" : suite.only.front();
  const auto spec = workloads::superblue_profile(name, suite.scale);
  netlist::CellLibrary lib{8};
  const auto nl = workloads::generate(lib, spec, suite.seed);
  const auto flow = bench::superblue_flow(suite.seed, spec);

  const auto design =
      core::protect(nl, bench::default_randomize(suite.seed), flow);
  const auto nets = design.ledger.protected_nets();
  const auto original = core::layout_original(nl, flow);
  const auto lifted = core::layout_naive_lift(nl, nets, flow);

  auto show = [&](const char* label, const place::Placement& pl) {
    const auto d = metrics::connection_distances(nl, pl, nets);
    const auto s = util::summarize(d);
    std::printf("--- %s (%zu connections, max %.1f um) ---\n", label, s.count,
                s.max);
    util::Histogram h(0.0, std::max(s.max, 1.0), 12);
    for (const double v : d) h.add(v);
    std::fputs(h.ascii(44).c_str(), stdout);
    std::printf("\n");
  };
  show("(a) Original", original.placement);
  show("(b) Naively lifted", lifted.layout.placement);
  show("(c) Proposed", design.layout.placement);
  return 0;
}
