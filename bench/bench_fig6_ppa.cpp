// Fig. 6: PPA overheads (die area, power, delay) of the proposed scheme on
// ISCAS-85, contrasted with the Sengupta et al. [8] randomization
// strategies. The proposed scheme uses the paper's 20% PPA budget loop.
//
// Expected shape: zero area overhead for the proposed scheme (correction
// cells have no device-layer footprint); power/delay overheads bounded by
// the budget; the [8]-style strategies cost more because they fight the
// placer (longer wires everywhere instead of targeted lifting).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header(
      "Fig. 6: PPA overheads vs [8] (ISCAS-85, 20% budget for Proposed)");

  util::Table table({"Benchmark", "Prop dArea", "Prop dPower", "Prop dDelay",
                     "[8]Random dPower", "[8]Random dDelay",
                     "[8]G-Type1 dPower", "[8]G-Type1 dDelay"});
  double pa = 0, pp = 0, pd = 0, rp = 0, rd = 0;
  int count = 0;

  for (const auto& name : bench::pick(workloads::iscas85_names(), suite)) {
    netlist::CellLibrary lib{6};
    const auto nl =
        workloads::generate(lib, workloads::iscas85_profile(name), suite.seed);
    const auto flow = bench::iscas_flow(suite.seed);

    const auto original = core::layout_original(nl, flow);
    core::RandomizeOptions r = bench::default_randomize(suite.seed);
    r.max_swaps = std::max<std::size_t>(4, nl.num_gates() / 40);
    const auto design =
        core::protect_with_budget(nl, r, flow, original.ppa, 20.0, 3);

    const auto rand8 = core::layout_placement_perturbed(
        nl, flow, core::PerturbStrategy::Random, 0.25, suite.seed, 0.2);
    const auto gt1 = core::layout_placement_perturbed(
        nl, flow, core::PerturbStrategy::GType1, 0.25, suite.seed, 0.2);

    const double d_area = util::pct_delta(original.ppa.die_area_um2,
                                          design.layout.ppa.die_area_um2);
    const double d_pow = util::pct_delta(original.ppa.total_power_uw(),
                                         design.layout.ppa.total_power_uw());
    const double d_dly = util::pct_delta(original.ppa.critical_path_ps,
                                         design.layout.ppa.critical_path_ps);
    const double r_pow = util::pct_delta(original.ppa.total_power_uw(),
                                         rand8.ppa.total_power_uw());
    const double r_dly = util::pct_delta(original.ppa.critical_path_ps,
                                         rand8.ppa.critical_path_ps);
    const double g_pow = util::pct_delta(original.ppa.total_power_uw(),
                                         gt1.ppa.total_power_uw());
    const double g_dly = util::pct_delta(original.ppa.critical_path_ps,
                                         gt1.ppa.critical_path_ps);

    table.add_row({name, util::Table::pct(d_area, 2),
                   util::Table::pct(d_pow, 1), util::Table::pct(d_dly, 1),
                   util::Table::pct(r_pow, 1), util::Table::pct(r_dly, 1),
                   util::Table::pct(g_pow, 1), util::Table::pct(g_dly, 1)});
    pa += d_area;
    pp += d_pow;
    pd += d_dly;
    rp += r_pow;
    rd += r_dly;
    ++count;
  }
  if (count > 0) {
    table.add_separator();
    table.add_row({"Average", util::Table::pct(pa / count, 2),
                   util::Table::pct(pp / count, 1),
                   util::Table::pct(pd / count, 1),
                   util::Table::pct(rp / count, 1),
                   util::Table::pct(rd / count, 1), "", ""});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
