// Table 6: comparison with the routing-blockage defense of Magana et al. [7]
// on additional via counts. Layouts are split after M6 and the true
// connectivity restored in M8 (correction pins in M8). Reported: the
// percentage increase of V67 and V78 over the original layout, for the
// blockage defense and for the proposed scheme.
//
// Expected shape: both defenses push vias upward; the proposed scheme
// increases the upper-boundary via counts more (paper: 59%/75% average vs
// 29%/53% for routing blockage).
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header(
      "Table 6: additional upper-layer vias vs routing blockage [7] "
      "(split after M6, restore in M8)");

  util::Table table({"Benchmark", "Blockage[7] dV67", "Blockage[7] dV78",
                     "Proposed dV67", "Proposed dV78"});
  double b67 = 0, b78 = 0, p67 = 0, p78 = 0;
  int count = 0;

  for (const auto& name : bench::pick(workloads::superblue_names(), suite)) {
    const auto spec = workloads::superblue_profile(name, suite.scale);
    netlist::CellLibrary lib{8};
    const auto nl = workloads::generate(lib, spec, suite.seed);
    const auto flow = bench::superblue_flow(suite.seed, spec);

    const auto original = core::layout_original(nl, flow);
    // [7]: a handful of mid-stack blockages (the defense perturbs routing
    // implicitly and conservatively; the paper reports roughly half the via
    // increase of the proposed scheme).
    const auto blocked = core::layout_routing_blockage(
        nl, flow, 5, original.placement.floorplan.die.width() / 14.0, 5,
        suite.seed);
    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);

    const auto db = metrics::via_delta(original.routing.stats,
                                       blocked.routing.stats);
    const auto dp = metrics::via_delta(original.routing.stats,
                                       design.layout.routing.stats);
    table.add_row({name, db.cell(6), db.cell(7), dp.cell(6), dp.cell(7)});
    // Scaled clones route originals below M6, so baselines are often zero;
    // average the absolute via additions instead of percentages.
    b67 += static_cast<double>(db.other[6]) - static_cast<double>(db.base[6]);
    b78 += static_cast<double>(db.other[7]) - static_cast<double>(db.base[7]);
    p67 += static_cast<double>(dp.other[6]) - static_cast<double>(dp.base[6]);
    p78 += static_cast<double>(dp.other[7]) - static_cast<double>(dp.base[7]);
    ++count;
  }
  if (count > 0) {
    table.add_separator();
    table.add_row({"Average added", util::Table::num(b67 / count, 0),
                   util::Table::num(b78 / count, 0),
                   util::Table::num(p67 / count, 0),
                   util::Table::num(p78 / count, 0)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
