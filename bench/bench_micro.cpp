// Micro-benchmarks (google-benchmark): throughput of the substrate pieces —
// bit-parallel simulation, randomization, FM placement, maze routing, the
// proximity attack. Useful for tracking performance regressions; not part
// of the paper's evaluation.
#include "attack/mcmf.hpp"
#include "attack/proximity.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "sim/simulator.hpp"
#include "util/grid_index.hpp"
#include "util/rng.hpp"
#include "workloads/generator.hpp"

#include <benchmark/benchmark.h>

#include <limits>
#include <utility>

namespace {

using namespace sm;

const netlist::CellLibrary& lib() {
  static netlist::CellLibrary instance{6};
  return instance;
}

netlist::Netlist make_bench(const char* name) {
  return workloads::generate(lib(), workloads::iscas85_profile(name), 7);
}

void BM_Simulation64Patterns(benchmark::State& state) {
  const auto nl = make_bench("c2670");
  sim::Simulator s(nl);
  std::vector<std::uint64_t> in(s.num_sources(), 0x123456789abcdefULL), out;
  for (auto _ : state) {
    s.eval(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

// BM_CompareOerHd / BM_CompareThroughputJobs pin lanes=1 (the pre-ISSUE-10
// scalar word path) so the rigs stay comparable across releases; the
// *Lanes variants below sweep the wide-word widths. OER/HD are
// bit-identical for every lane width (tests/test_sim.cpp) — only the wall
// time moves.
void BM_CompareOerHd(benchmark::State& state) {
  const auto nl = make_bench("c880");
  for (auto _ : state) {
    const auto r = sim::compare(nl, nl, 4096, 3, 1, 1);
    benchmark::DoNotOptimize(r);
  }
}

// Arg = lane width (uint64 words evaluated per gate visit).
void BM_CompareOerHdLanes(benchmark::State& state) {
  const auto nl = make_bench("c880");
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto r = sim::compare(nl, nl, 4096, 3, 1, lanes);
    benchmark::DoNotOptimize(r);
  }
}

// Sim throughput of the block-parallel compare path: patterns/second over
// the per-block task_seed streams. Arg = worker threads (results are
// bit-identical across them; only the wall time moves).
void BM_CompareThroughputJobs(benchmark::State& state) {
  const auto nl = make_bench("c2670");
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPatterns = 65536;
  for (auto _ : state) {
    const auto r = sim::compare(nl, nl, kPatterns, 3, jobs, 1);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kPatterns));
}

// Serial wide-word throughput: Arg = lane width.
void BM_CompareThroughputLanes(benchmark::State& state) {
  const auto nl = make_bench("c2670");
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPatterns = 65536;
  for (auto _ : state) {
    const auto r = sim::compare(nl, nl, kPatterns, 3, 1, lanes);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kPatterns));
}

void BM_Randomize(benchmark::State& state) {
  const auto nl = make_bench("c880");
  core::RandomizeOptions opts;
  opts.check_patterns = 1024;
  for (auto _ : state) {
    const auto r = core::randomize(nl, opts);
    benchmark::DoNotOptimize(r.swaps);
  }
}

void BM_Place(benchmark::State& state) {
  const auto nl = make_bench("c880");
  place::Placer placer;
  for (auto _ : state) {
    const auto pl = placer.place(nl);
    benchmark::DoNotOptimize(pl.pos.size());
  }
}

void BM_Route(benchmark::State& state) {
  const auto nl = make_bench("c880");
  place::Placer placer;
  const auto pl = placer.place(nl);
  const auto tasks = route::make_tasks(nl, pl);
  route::RouterOptions opts;
  opts.gcell_um = 1.4;
  route::Router router(opts);
  for (auto _ : state) {
    const auto r = router.route(tasks, pl.floorplan.die, lib().metal());
    benchmark::DoNotOptimize(r.stats.total_vias());
  }
}

// Router throughput on a full placed netlist, one rig per scheduler.
// RouteNets{,Jobs} pin the PR-5 round-based snapshot-commit scheduler
// (RoutePartition::Rounds) so the two schedulers stay comparable across
// releases; RoutePartitionTree{,Jobs} run the spatial partition tree with
// live in-region congestion (the default). Within each scheduler, routes
// are bit-identical for every jobs value (tests/test_route.cpp,
// tests/test_partition_tree.cpp) — only the wall time moves. The fine
// gcell and extra passes make negotiation do real rip-up work, which is
// the stage both parallel schemes target.
struct RouteRig {
  netlist::Netlist nl;
  place::Placement pl;
  std::vector<route::RouteTask> tasks;

  static const RouteRig& instance() {
    static RouteRig rig = [] {
      auto nl = make_bench("c2670");
      place::Placer placer;
      auto pl = placer.place(nl);
      auto tasks = route::make_tasks(nl, pl);
      return RouteRig{std::move(nl), std::move(pl), std::move(tasks)};
    }();
    return rig;
  }
};

void route_nets(benchmark::State& state, route::RoutePartition partition,
                std::size_t jobs) {
  const auto& rig = RouteRig::instance();
  route::RouterOptions opts;
  opts.gcell_um = 1.4;
  opts.passes = 4;
  opts.partition = partition;
  opts.jobs = jobs;
  route::Router router(opts);
  for (auto _ : state) {
    const auto r = router.route(rig.tasks, rig.pl.floorplan.die, lib().metal());
    benchmark::DoNotOptimize(r.stats.total_vias());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rig.tasks.size()));
}

void BM_RouteNets(benchmark::State& state) {
  route_nets(state, route::RoutePartition::Rounds, 1);
}

void BM_RouteNetsJobs(benchmark::State& state) {
  route_nets(state, route::RoutePartition::Rounds,
             static_cast<std::size_t>(state.range(0)));
}

void BM_RoutePartitionTree(benchmark::State& state) {
  route_nets(state, route::RoutePartition::Tree, 1);
}

void BM_RoutePartitionTreeJobs(benchmark::State& state) {
  route_nets(state, route::RoutePartition::Tree,
             static_cast<std::size_t>(state.range(0)));
}

void BM_ProximityAttack(benchmark::State& state) {
  const auto nl = make_bench("c880");
  core::FlowOptions flow;
  flow.router.passes = 2;
  const auto layout = core::layout_original(nl, flow);
  const auto view = core::split_layout(nl, layout.placement, layout.routing,
                                       layout.tasks, layout.num_net_tasks, 3);
  attack::ProximityOptions opts;
  opts.eval_patterns = 1024;
  for (auto _ : state) {
    const auto res = attack::proximity_attack(nl, nl, layout.placement, view,
                                              nullptr, opts);
    benchmark::DoNotOptimize(res.correct);
  }
}

// Candidate-generation cost of the proximity attack: the same split view
// attacked with the spatial index forced on (threshold 0) vs forced off
// (threshold INT_MAX -> brute-force all-pairs pair_cost). eval_patterns is
// tiny so the matcher dominates; both variants produce identical metrics.
struct AttackRig {
  netlist::Netlist nl;
  core::LayoutResult layout;
  core::SplitView view;

  static const AttackRig& instance() {
    static AttackRig rig = [] {
      core::FlowOptions flow;
      flow.router.passes = 2;
      auto nl = make_bench("c7552");
      auto layout = core::layout_original(nl, flow);
      auto view = core::split_layout(nl, layout.placement, layout.routing,
                                     layout.tasks, layout.num_net_tasks, 3);
      return AttackRig{std::move(nl), std::move(layout), std::move(view)};
    }();
    return rig;
  }
};

void attack_candidates(benchmark::State& state, int index_min_drivers,
                       std::size_t jobs, bool mcmf_warm = true) {
  const auto& rig = AttackRig::instance();
  attack::ProximityOptions opts;
  opts.eval_patterns = 64;
  opts.index_min_drivers = index_min_drivers;
  opts.jobs = jobs;
  opts.mcmf_warm = mcmf_warm;
  for (auto _ : state) {
    const auto res = attack::proximity_attack(
        rig.nl, rig.nl, rig.layout.placement, rig.view, nullptr, opts);
    benchmark::DoNotOptimize(res.correct);
  }
}

void BM_AttackCandidatesBrute(benchmark::State& state) {
  attack_candidates(state, std::numeric_limits<int>::max(), 1);
}

void BM_AttackCandidatesIndexed(benchmark::State& state) {
  attack_candidates(state, 0, 1);
}

// The ISSUE-10 comparison rig: the identical attack with the per-round
// cold rebuild instead of the live warm-started solver. Metrics are
// bit-identical to BM_AttackCandidatesIndexed (tests/test_attack.cpp
// WarmColdRig.C7552) — only the matcher's wall time moves.
void BM_AttackCandidatesColdMcmf(benchmark::State& state) {
  attack_candidates(state, 0, 1, /*mcmf_warm=*/false);
}

void BM_AttackCandidatesIndexedJobs(benchmark::State& state) {
  attack_candidates(state, 0, static_cast<std::size_t>(state.range(0)));
}

// ---- MCMF solver rigs (ISSUE-10) ----
// A random assignment-shaped network mirroring the attack's loop-repair
// instances: S → sinks (cap 1, cost 0), sink → candidate drivers (cap 1,
// integer-exact costs per the warm-start contract), drivers → T (small
// caps). BM_McmfSolveCold prices the cold path's per-round rebuild;
// BM_McmfRepairWarm prices the warm path's per-round repair (a handful of
// arcs knocked out, then resolve() reuses the surviving flow and
// potentials).
constexpr int kMcmfSinks = 256;
constexpr int kMcmfDrivers = 300;
constexpr int kMcmfCandidates = 8;

struct McmfNet {
  attack::MinCostFlow flow{2 + kMcmfSinks + kMcmfDrivers};
  // The sink→driver arcs (id, cost) — the ones loop repair knocks out.
  std::vector<std::pair<int, double>> sink_edges;
  int s = 0;
  int t = 1;
};

McmfNet mcmf_build() {
  McmfNet net;
  const auto sink_node = [](int si) { return 2 + si; };
  const auto drv_node = [](int di) { return 2 + kMcmfSinks + di; };
  util::Rng rng(23);
  for (int si = 0; si < kMcmfSinks; ++si)
    net.flow.add_edge(net.s, sink_node(si), 1, 0.0);
  for (int di = 0; di < kMcmfDrivers; ++di)
    net.flow.add_edge(drv_node(di), net.t,
                      static_cast<int>(rng.range(1, 3)), 0.0);
  for (int si = 0; si < kMcmfSinks; ++si)
    for (int c = 0; c < kMcmfCandidates; ++c) {
      const int di = static_cast<int>(rng.below(kMcmfDrivers));
      const double cost =
          static_cast<double>(rng.below(1u << 20)) * 268435456.0 +
          static_cast<double>(rng.below(1u << 28));
      net.sink_edges.emplace_back(
          net.flow.add_edge(sink_node(si), drv_node(di), 1, cost), cost);
    }
  return net;
}

void BM_McmfSolveCold(benchmark::State& state) {
  for (auto _ : state) {
    auto net = mcmf_build();
    net.flow.solve(net.s, net.t, kMcmfSinks);
    benchmark::DoNotOptimize(net.flow.cost());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_McmfRepairWarm(benchmark::State& state) {
  auto net = mcmf_build();
  net.flow.solve(net.s, net.t, kMcmfSinks);
  constexpr int kKnockout = 8;  // ~ one loop-repair round's removals
  std::size_t cursor = 0;
  for (auto _ : state) {
    // Knock out a rolling window of candidate arcs (cap 0 keeps the edge
    // ids alive, as the attack's loop repair does), repair, then restore
    // and repair again so the steady state is iteration-invariant.
    const std::size_t base = cursor;
    cursor = (cursor + kKnockout) % net.sink_edges.size();
    for (int k = 0; k < kKnockout; ++k) {
      const auto& [id, cost] =
          net.sink_edges[(base + static_cast<std::size_t>(k)) %
                         net.sink_edges.size()];
      net.flow.update_edge(id, 0, cost);
    }
    net.flow.resolve();
    for (int k = 0; k < kKnockout; ++k) {
      const auto& [id, cost] =
          net.sink_edges[(base + static_cast<std::size_t>(k)) %
                         net.sink_edges.size()];
      net.flow.update_edge(id, 1, cost);
    }
    net.flow.resolve();
    benchmark::DoNotOptimize(net.flow.cost());
  }
  state.SetItemsProcessed(state.iterations());
}

// Raw expanding-ring query throughput against a brute-force linear scan on
// the same uniformly random point set.
void BM_GridIndexKNearest(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  std::vector<util::Point> pts(n);
  for (auto& p : pts) p = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
  const util::GridIndex index(pts);
  std::size_t q = 0;
  for (auto _ : state) {
    const auto nn = index.k_nearest(pts[q++ % n], 16);
    benchmark::DoNotOptimize(nn);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_Simulation64Patterns);
BENCHMARK(BM_CompareOerHd);
BENCHMARK(BM_CompareOerHdLanes)->Arg(1)->Arg(4)->Arg(8);
BENCHMARK(BM_CompareThroughputJobs)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_CompareThroughputLanes)->Arg(1)->Arg(4)->Arg(8);
BENCHMARK(BM_Randomize);
BENCHMARK(BM_Place);
BENCHMARK(BM_Route);
BENCHMARK(BM_RouteNets)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouteNetsJobs)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_RoutePartitionTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RoutePartitionTreeJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProximityAttack);
BENCHMARK(BM_AttackCandidatesBrute)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackCandidatesIndexed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackCandidatesColdMcmf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_McmfSolveCold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_McmfRepairWarm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackCandidatesIndexedJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GridIndexKNearest)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
