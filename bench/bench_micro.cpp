// Micro-benchmarks (google-benchmark): throughput of the substrate pieces —
// bit-parallel simulation, randomization, FM placement, maze routing, the
// proximity attack. Useful for tracking performance regressions; not part
// of the paper's evaluation.
#include "attack/proximity.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "sim/simulator.hpp"
#include "util/grid_index.hpp"
#include "util/rng.hpp"
#include "workloads/generator.hpp"

#include <benchmark/benchmark.h>

#include <limits>
#include <utility>

namespace {

using namespace sm;

const netlist::CellLibrary& lib() {
  static netlist::CellLibrary instance{6};
  return instance;
}

netlist::Netlist make_bench(const char* name) {
  return workloads::generate(lib(), workloads::iscas85_profile(name), 7);
}

void BM_Simulation64Patterns(benchmark::State& state) {
  const auto nl = make_bench("c2670");
  sim::Simulator s(nl);
  std::vector<std::uint64_t> in(s.num_sources(), 0x123456789abcdefULL), out;
  for (auto _ : state) {
    s.eval(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_CompareOerHd(benchmark::State& state) {
  const auto nl = make_bench("c880");
  for (auto _ : state) {
    const auto r = sim::compare(nl, nl, 4096, 3);
    benchmark::DoNotOptimize(r);
  }
}

// Sim throughput of the block-parallel compare path: patterns/second over
// the per-block task_seed streams. Arg = worker threads (results are
// bit-identical across them; only the wall time moves).
void BM_CompareThroughputJobs(benchmark::State& state) {
  const auto nl = make_bench("c2670");
  const std::size_t jobs = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPatterns = 65536;
  for (auto _ : state) {
    const auto r = sim::compare(nl, nl, kPatterns, 3, jobs);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kPatterns));
}

void BM_Randomize(benchmark::State& state) {
  const auto nl = make_bench("c880");
  core::RandomizeOptions opts;
  opts.check_patterns = 1024;
  for (auto _ : state) {
    const auto r = core::randomize(nl, opts);
    benchmark::DoNotOptimize(r.swaps);
  }
}

void BM_Place(benchmark::State& state) {
  const auto nl = make_bench("c880");
  place::Placer placer;
  for (auto _ : state) {
    const auto pl = placer.place(nl);
    benchmark::DoNotOptimize(pl.pos.size());
  }
}

void BM_Route(benchmark::State& state) {
  const auto nl = make_bench("c880");
  place::Placer placer;
  const auto pl = placer.place(nl);
  const auto tasks = route::make_tasks(nl, pl);
  route::RouterOptions opts;
  opts.gcell_um = 1.4;
  route::Router router(opts);
  for (auto _ : state) {
    const auto r = router.route(tasks, pl.floorplan.die, lib().metal());
    benchmark::DoNotOptimize(r.stats.total_vias());
  }
}

// Router throughput on a full placed netlist, one rig per scheduler.
// RouteNets{,Jobs} pin the PR-5 round-based snapshot-commit scheduler
// (RoutePartition::Rounds) so the two schedulers stay comparable across
// releases; RoutePartitionTree{,Jobs} run the spatial partition tree with
// live in-region congestion (the default). Within each scheduler, routes
// are bit-identical for every jobs value (tests/test_route.cpp,
// tests/test_partition_tree.cpp) — only the wall time moves. The fine
// gcell and extra passes make negotiation do real rip-up work, which is
// the stage both parallel schemes target.
struct RouteRig {
  netlist::Netlist nl;
  place::Placement pl;
  std::vector<route::RouteTask> tasks;

  static const RouteRig& instance() {
    static RouteRig rig = [] {
      auto nl = make_bench("c2670");
      place::Placer placer;
      auto pl = placer.place(nl);
      auto tasks = route::make_tasks(nl, pl);
      return RouteRig{std::move(nl), std::move(pl), std::move(tasks)};
    }();
    return rig;
  }
};

void route_nets(benchmark::State& state, route::RoutePartition partition,
                std::size_t jobs) {
  const auto& rig = RouteRig::instance();
  route::RouterOptions opts;
  opts.gcell_um = 1.4;
  opts.passes = 4;
  opts.partition = partition;
  opts.jobs = jobs;
  route::Router router(opts);
  for (auto _ : state) {
    const auto r = router.route(rig.tasks, rig.pl.floorplan.die, lib().metal());
    benchmark::DoNotOptimize(r.stats.total_vias());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rig.tasks.size()));
}

void BM_RouteNets(benchmark::State& state) {
  route_nets(state, route::RoutePartition::Rounds, 1);
}

void BM_RouteNetsJobs(benchmark::State& state) {
  route_nets(state, route::RoutePartition::Rounds,
             static_cast<std::size_t>(state.range(0)));
}

void BM_RoutePartitionTree(benchmark::State& state) {
  route_nets(state, route::RoutePartition::Tree, 1);
}

void BM_RoutePartitionTreeJobs(benchmark::State& state) {
  route_nets(state, route::RoutePartition::Tree,
             static_cast<std::size_t>(state.range(0)));
}

void BM_ProximityAttack(benchmark::State& state) {
  const auto nl = make_bench("c880");
  core::FlowOptions flow;
  flow.router.passes = 2;
  const auto layout = core::layout_original(nl, flow);
  const auto view = core::split_layout(nl, layout.placement, layout.routing,
                                       layout.tasks, layout.num_net_tasks, 3);
  attack::ProximityOptions opts;
  opts.eval_patterns = 1024;
  for (auto _ : state) {
    const auto res = attack::proximity_attack(nl, nl, layout.placement, view,
                                              nullptr, opts);
    benchmark::DoNotOptimize(res.correct);
  }
}

// Candidate-generation cost of the proximity attack: the same split view
// attacked with the spatial index forced on (threshold 0) vs forced off
// (threshold INT_MAX -> brute-force all-pairs pair_cost). eval_patterns is
// tiny so the matcher dominates; both variants produce identical metrics.
struct AttackRig {
  netlist::Netlist nl;
  core::LayoutResult layout;
  core::SplitView view;

  static const AttackRig& instance() {
    static AttackRig rig = [] {
      core::FlowOptions flow;
      flow.router.passes = 2;
      auto nl = make_bench("c7552");
      auto layout = core::layout_original(nl, flow);
      auto view = core::split_layout(nl, layout.placement, layout.routing,
                                     layout.tasks, layout.num_net_tasks, 3);
      return AttackRig{std::move(nl), std::move(layout), std::move(view)};
    }();
    return rig;
  }
};

void attack_candidates(benchmark::State& state, int index_min_drivers,
                       std::size_t jobs) {
  const auto& rig = AttackRig::instance();
  attack::ProximityOptions opts;
  opts.eval_patterns = 64;
  opts.index_min_drivers = index_min_drivers;
  opts.jobs = jobs;
  for (auto _ : state) {
    const auto res = attack::proximity_attack(
        rig.nl, rig.nl, rig.layout.placement, rig.view, nullptr, opts);
    benchmark::DoNotOptimize(res.correct);
  }
}

void BM_AttackCandidatesBrute(benchmark::State& state) {
  attack_candidates(state, std::numeric_limits<int>::max(), 1);
}

void BM_AttackCandidatesIndexed(benchmark::State& state) {
  attack_candidates(state, 0, 1);
}

void BM_AttackCandidatesIndexedJobs(benchmark::State& state) {
  attack_candidates(state, 0, static_cast<std::size_t>(state.range(0)));
}

// Raw expanding-ring query throughput against a brute-force linear scan on
// the same uniformly random point set.
void BM_GridIndexKNearest(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  std::vector<util::Point> pts(n);
  for (auto& p : pts) p = {rng.uniform(0, 1000), rng.uniform(0, 1000)};
  const util::GridIndex index(pts);
  std::size_t q = 0;
  for (auto _ : state) {
    const auto nn = index.k_nearest(pts[q++ % n], 16);
    benchmark::DoNotOptimize(nn);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_Simulation64Patterns);
BENCHMARK(BM_CompareOerHd);
BENCHMARK(BM_CompareThroughputJobs)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_Randomize);
BENCHMARK(BM_Place);
BENCHMARK(BM_Route);
BENCHMARK(BM_RouteNets)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouteNetsJobs)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_RoutePartitionTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RoutePartitionTreeJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProximityAttack);
BENCHMARK(BM_AttackCandidatesBrute)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackCandidatesIndexed)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AttackCandidatesIndexedJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GridIndexKNearest)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
