// Micro-benchmarks (google-benchmark): throughput of the substrate pieces —
// bit-parallel simulation, randomization, FM placement, maze routing, the
// proximity attack. Useful for tracking performance regressions; not part
// of the paper's evaluation.
#include "attack/proximity.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace sm;

const netlist::CellLibrary& lib() {
  static netlist::CellLibrary instance{6};
  return instance;
}

netlist::Netlist make_bench(const char* name) {
  return workloads::generate(lib(), workloads::iscas85_profile(name), 7);
}

void BM_Simulation64Patterns(benchmark::State& state) {
  const auto nl = make_bench("c2670");
  sim::Simulator s(nl);
  std::vector<std::uint64_t> in(s.num_sources(), 0x123456789abcdefULL), out;
  for (auto _ : state) {
    s.eval(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_CompareOerHd(benchmark::State& state) {
  const auto nl = make_bench("c880");
  for (auto _ : state) {
    const auto r = sim::compare(nl, nl, 4096, 3);
    benchmark::DoNotOptimize(r);
  }
}

void BM_Randomize(benchmark::State& state) {
  const auto nl = make_bench("c880");
  core::RandomizeOptions opts;
  opts.check_patterns = 1024;
  for (auto _ : state) {
    const auto r = core::randomize(nl, opts);
    benchmark::DoNotOptimize(r.swaps);
  }
}

void BM_Place(benchmark::State& state) {
  const auto nl = make_bench("c880");
  place::Placer placer;
  for (auto _ : state) {
    const auto pl = placer.place(nl);
    benchmark::DoNotOptimize(pl.pos.size());
  }
}

void BM_Route(benchmark::State& state) {
  const auto nl = make_bench("c880");
  place::Placer placer;
  const auto pl = placer.place(nl);
  const auto tasks = route::make_tasks(nl, pl);
  route::RouterOptions opts;
  opts.gcell_um = 1.4;
  route::Router router(opts);
  for (auto _ : state) {
    const auto r = router.route(tasks, pl.floorplan.die, lib().metal());
    benchmark::DoNotOptimize(r.stats.total_vias());
  }
}

void BM_ProximityAttack(benchmark::State& state) {
  const auto nl = make_bench("c880");
  core::FlowOptions flow;
  flow.router.passes = 2;
  const auto layout = core::layout_original(nl, flow);
  const auto view = core::split_layout(nl, layout.placement, layout.routing,
                                       layout.tasks, layout.num_net_tasks, 3);
  attack::ProximityOptions opts;
  opts.eval_patterns = 1024;
  for (auto _ : state) {
    const auto res = attack::proximity_attack(nl, nl, layout.placement, view,
                                              nullptr, opts);
    benchmark::DoNotOptimize(res.correct);
  }
}

BENCHMARK(BM_Simulation64Patterns);
BENCHMARK(BM_CompareOerHd);
BENCHMARK(BM_Randomize);
BENCHMARK(BM_Place);
BENCHMARK(BM_Route);
BENCHMARK(BM_ProximityAttack);

}  // namespace

BENCHMARK_MAIN();
