// Ablation (DESIGN.md Sec. 6): how much randomization is enough?
// Sweeps the swap budget on one ISCAS-85 benchmark and reports OER/HD of
// the erroneous netlist, attack CCR/OER/HD, and the PPA overheads — the
// trade-off the paper's Fig. 2 budget loop navigates. Also toggles the
// OER-driven stop against fixed budgets.
#include "attack/proximity.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header("Ablation: swap budget vs security and PPA cost");

  const std::string name = suite.only.empty() ? "c880" : suite.only.front();
  netlist::CellLibrary lib{6};
  const auto nl =
      workloads::generate(lib, workloads::iscas85_profile(name), suite.seed);
  const auto flow = bench::iscas_flow(suite.seed);
  const auto original = core::layout_original(nl, flow);

  util::Table table({"Swaps", "Err OER", "Err HD", "Attack CCR(prot)",
                     "Attack OER", "Attack HD", "dPower", "dDelay"});

  for (const std::size_t budget : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    if (suite.quick && budget > 8) break;
    core::RandomizeOptions r;
    r.seed = suite.seed;
    r.max_swaps = budget;
    r.min_swaps = budget;
    r.target_oer = 2.0;  // fixed budget, no OER stop
    r.batch = std::max<std::size_t>(1, budget / 2);
    const auto design = core::protect(nl, r, flow);

    attack::ProximityOptions a;
    a.eval_patterns = suite.patterns / 2;
    const auto view = core::split_layout(
        design.erroneous, design.layout.placement, design.layout.routing,
        design.layout.tasks, design.layout.num_net_tasks, 4);
    const auto res =
        attack::proximity_attack(design.erroneous, nl, design.layout.placement,
                                 view, &design.ledger, a);

    table.add_row(
        {std::to_string(design.ledger.entries.size()),
         util::Table::pct(100 * design.oer, 1),
         util::Table::pct(100 * design.hd, 1),
         util::Table::pct(100 * res.ccr_protected(), 1),
         util::Table::pct(100 * res.rates.oer, 1),
         util::Table::pct(100 * res.rates.hd, 1),
         util::Table::pct(util::pct_delta(original.ppa.total_power_uw(),
                                          design.layout.ppa.total_power_uw()),
                          1),
         util::Table::pct(
             util::pct_delta(original.ppa.critical_path_ps,
                             design.layout.ppa.critical_path_ps),
             1)});
  }
  std::fputs(table.render().c_str(), stdout);

  // The OER-driven stopping rule (the paper's criterion) for reference.
  const auto design =
      core::protect(nl, bench::default_randomize(suite.seed), flow);
  std::printf("\nOER-driven stop: %zu swaps -> OER %.1f%%, HD %.1f%%\n",
              design.ledger.entries.size(), 100 * design.oer,
              100 * design.hd);
  return 0;
}
