// Table 5: network-flow proximity attack [5] vs routing-centric defenses on
// the ISCAS-85 suite (averaged over splits M3/M4/M5):
//   Pin swapping [3]        — a few real connection swaps, no lifting,
//   Routing perturbation [12] — selected nets elevated/detoured,
//   Proposed                — this paper's scheme.
//
// Expected shape: pin swapping leaves the bulk of connections recoverable
// (paper: 87% CCR); routing perturbation lands in between (paper: ~72%);
// the proposed scheme reaches 0% CCR / ~100% OER / ~40% HD.
#include "attack/proximity.hpp"
#include "common.hpp"

namespace {

using namespace sm;

struct Score {
  double ccr = 0, oer = 0, hd = 0;
};

Score attack_avg(const netlist::Netlist& feol, const netlist::Netlist& truth,
                 const core::LayoutResult& layout,
                 const core::SwapLedger* ledger, std::size_t patterns,
                 bool protected_ccr, std::size_t attack_jobs) {
  Score s;
  attack::ProximityOptions opts;
  opts.eval_patterns = patterns;
  opts.jobs = attack_jobs;  // intra-attack sharding; metrics jobs-invariant
  for (const int split : {3, 4, 5}) {
    const auto view =
        core::split_layout(feol, layout.placement, layout.routing,
                           layout.tasks, layout.num_net_tasks, split);
    const auto res = attack::proximity_attack(feol, truth, layout.placement,
                                              view, ledger, opts);
    s.ccr += protected_ccr ? res.ccr_protected() : res.ccr();
    s.oer += res.rates.oer;
    s.hd += res.rates.hd;
  }
  s.ccr /= 3;
  s.oer /= 3;
  s.hd /= 3;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header(
      "Table 5: proximity attack vs routing-perturbation defenses "
      "(ISCAS-85, averaged over splits M3/M4/M5)");

  const auto names = bench::pick(workloads::iscas85_names(), suite);
  struct PerBench {
    Score so, ssw, srp, sp;
  };
  std::vector<PerBench> results(names.size());

  bench::for_each_benchmark(names, suite, [&](std::size_t i) {
    netlist::CellLibrary lib{6};
    const auto nl = workloads::generate(
        lib, workloads::iscas85_profile(names[i]), suite.seed);
    const auto flow =
        bench::apply_layout_flags(bench::iscas_flow(suite.seed), suite);
    PerBench& r = results[i];

    const auto original = core::layout_original(nl, flow);
    r.so = attack_avg(nl, nl, original, nullptr, suite.patterns, false, suite.attack_jobs);

    // [3]: swap roughly 2% of the nets' connections.
    const std::size_t swaps =
        std::max<std::size_t>(4, nl.num_nets() / 50);
    const auto pinswap = core::layout_pin_swapped(nl, flow, swaps, suite.seed);
    r.ssw = attack_avg(pinswap.erroneous, nl, pinswap.layout, &pinswap.ledger,
                       suite.patterns, false, suite.attack_jobs);

    // [12]: elevate 15% of the nets above M5.
    const auto rperturb =
        core::layout_routing_perturbed(nl, flow, 0.15, 6, suite.seed);
    r.srp = attack_avg(nl, nl, rperturb, nullptr, suite.patterns, false, suite.attack_jobs);

    const auto design =
        core::protect(nl, bench::default_randomize(suite.seed), flow);
    r.sp = attack_avg(design.erroneous, nl, design.layout, &design.ledger,
                      suite.patterns, true, suite.attack_jobs);
  });

  util::Table table({"Benchmark", "Orig CCR", "Orig HD", "PinSwap[3] CCR",
                     "PinSwap[3] HD", "RoutePerturb[12] CCR",
                     "RoutePerturb[12] OER", "RoutePerturb[12] HD", "Prop CCR",
                     "Prop OER", "Prop HD"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const PerBench& r = results[i];
    table.add_row({names[i], util::Table::pct(100 * r.so.ccr, 1),
                   util::Table::pct(100 * r.so.hd, 1),
                   util::Table::pct(100 * r.ssw.ccr, 1),
                   util::Table::pct(100 * r.ssw.hd, 1),
                   util::Table::pct(100 * r.srp.ccr, 1),
                   util::Table::pct(100 * r.srp.oer, 1),
                   util::Table::pct(100 * r.srp.hd, 1),
                   util::Table::pct(100 * r.sp.ccr, 1),
                   util::Table::pct(100 * r.sp.oer, 1),
                   util::Table::pct(100 * r.sp.hd, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
