// Ablation: misleading drive strengths (paper Sec. 3).
//
// With drive-strength fixing enabled, long nets get large repeaters. On an
// original layout the attacker can exploit that (a BUFX8 hints at a distant
// sink); on the erroneous layout the same hint describes the *wrong*
// netlist. This bench measures attack CCR with and without the strength
// prior, on buffered original vs buffered protected layouts.
#include "attack/proximity.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const auto suite = bench::parse_suite(argc, argv);
  bench::print_header("Ablation: drive-strength hint (BUFX8 argument)");

  const std::string name = suite.only.empty() ? "c1908" : suite.only.front();
  netlist::CellLibrary lib{6};
  const auto nl =
      workloads::generate(lib, workloads::iscas85_profile(name), suite.seed);
  auto flow = bench::iscas_flow(suite.seed);
  flow.buffering = true;
  flow.buffering_opts.hpwl_threshold_um = 15.0;

  const auto original = core::layout_original(nl, flow);
  const auto design =
      core::protect(nl, bench::default_randomize(suite.seed), flow);

  util::Table table(
      {"Layout", "Strength prior", "Split", "CCR", "OER", "HD"});
  for (const bool prior : {false, true}) {
    attack::ProximityOptions a;
    a.eval_patterns = suite.patterns / 2;
    a.use_strength_prior = prior;
    for (const int split : {3, 4}) {
      // The buffered layout's routes reference the repeater-sized netlist;
      // the attacker sees that sized netlist in the FEOL, and scoring uses
      // it as ground truth too (repeaters are functionally transparent).
      const auto& sized = original.physical(nl);
      const auto v0 =
          core::split_layout(sized, original.placement, original.routing,
                             original.tasks, original.num_net_tasks, split);
      const auto r0 = attack::proximity_attack(sized, sized,
                                               original.placement, v0,
                                               nullptr, a);
      table.add_row({"original", prior ? "on" : "off",
                     "M" + std::to_string(split),
                     util::Table::pct(100 * r0.ccr(), 1),
                     util::Table::pct(100 * r0.rates.oer, 1),
                     util::Table::pct(100 * r0.rates.hd, 1)});
      const auto vp = core::split_layout(
          design.erroneous, design.layout.placement, design.layout.routing,
          design.layout.tasks, design.layout.num_net_tasks, split);
      const auto rp =
          attack::proximity_attack(design.erroneous, design.restored,
                                   design.layout.placement, vp,
                                   &design.ledger, a);
      table.add_row({"proposed", prior ? "on" : "off",
                     "M" + std::to_string(split),
                     util::Table::pct(100 * rp.ccr_protected(), 1),
                     util::Table::pct(100 * rp.rates.oer, 1),
                     util::Table::pct(100 * rp.rates.hd, 1)});
    }
    table.add_separator();
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
