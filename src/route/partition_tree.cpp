#include "route/partition_tree.hpp"

#include <algorithm>
#include <numeric>

namespace sm::route {
namespace {

/// One candidate cutline, scored. Lexicographic order picks the winner:
/// smallest critical-path estimate, then best balance, then the wider axis
/// (vertical cut on a square region), then the lowest coordinate — all
/// pure functions of the inputs, so the tree build stays deterministic.
struct Cut {
  std::uint64_t score = ~0ULL;    ///< max(left, right) + crossing work
  std::uint64_t imbalance = ~0ULL;///< |left - right| work
  int axis_penalty = 0;           ///< 0 = wider axis, 1 = narrower axis
  int axis = 0;                   ///< 0 = vertical cut (x), 1 = horizontal (y)
  std::int32_t pos = 0;           ///< last column/row of the low side
  std::uint64_t sided = 0;        ///< work that actually left the node

  bool beats(const Cut& o) const {
    if (score != o.score) return score < o.score;
    // A cut's score never exceeds the node's total work, and an all-crossing
    // cut scores exactly that — so preferring larger `sided` at equal score
    // both favours cuts that feed the children and makes "best.sided == 0"
    // an exact no-cut-helps test.
    if (sided != o.sided) return sided > o.sided;
    if (imbalance != o.imbalance) return imbalance < o.imbalance;
    if (axis_penalty != o.axis_penalty) return axis_penalty < o.axis_penalty;
    if (axis != o.axis) return axis < o.axis;
    return pos < o.pos;
  }
};

/// Scan one axis of `region` with prefix sums: after one O(extent + nets)
/// pass, every candidate cut knows the work strictly on each side and the
/// crossing remainder in O(1).
void scan_axis(int axis, const util::GridRect& region,
               const std::vector<PartitionNet>& all,
               const std::vector<std::size_t>& nets, std::int32_t min_extent,
               int axis_penalty, Cut& best) {
  const std::int32_t lo = axis == 0 ? region.x0 : region.y0;
  const std::int32_t hi = axis == 0 ? region.x1 : region.y1;
  const std::int32_t first = lo + min_extent - 1;  // low side >= min_extent
  const std::int32_t last = hi - min_extent;       // high side >= min_extent
  if (first > last) return;

  const std::size_t extent = static_cast<std::size_t>(hi - lo + 1);
  // ends[i]: work of nets whose window ends at coordinate lo+i;
  // starts[i]: work of nets whose window starts at lo+i.
  std::vector<std::uint64_t> ends(extent, 0), starts(extent, 0);
  std::uint64_t total = 0;
  for (const auto ni : nets) {
    const auto& w = all[ni].window;
    const std::int32_t b = axis == 0 ? w.x0 : w.y0;
    const std::int32_t e = axis == 0 ? w.x1 : w.y1;
    ends[static_cast<std::size_t>(e - lo)] += all[ni].work;
    starts[static_cast<std::size_t>(b - lo)] += all[ni].work;
    total += all[ni].work;
  }
  std::partial_sum(ends.begin(), ends.end(), ends.begin());
  // suffix sum: starts[i] = work of nets starting at >= lo+i
  for (std::size_t i = extent - 1; i-- > 0;) starts[i] += starts[i + 1];

  for (std::int32_t c = first; c <= last; ++c) {
    const std::uint64_t left = ends[static_cast<std::size_t>(c - lo)];
    const std::uint64_t right = starts[static_cast<std::size_t>(c + 1 - lo)];
    const std::uint64_t cross = total - left - right;
    Cut cut;
    cut.score = std::max(left, right) + cross;
    cut.imbalance = left > right ? left - right : right - left;
    cut.axis_penalty = axis_penalty;
    cut.axis = axis;
    cut.pos = c;
    cut.sided = left + right;
    if (cut.beats(best)) best = cut;
  }
}

}  // namespace

PartitionTree::PartitionTree(const util::GridRect& bounds,
                             std::vector<PartitionNet> nets,
                             const Limits& limits) {
  if (nets.empty() || bounds.empty()) return;
  nets_ = std::move(nets);
  PartitionNode root;
  root.region = bounds;
  nodes_.push_back(std::move(root));
  std::vector<std::size_t> all(nets_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  build(0, std::move(all), limits);

  for (const auto& n : nodes_) depth_ = std::max(depth_, n.depth);
  levels_.resize(static_cast<std::size_t>(depth_) + 1);
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i)
    levels_[static_cast<std::size_t>(nodes_[static_cast<std::size_t>(i)].depth)]
        .push_back(i);
}

void PartitionTree::build(int node, std::vector<std::size_t> nets,
                          const Limits& limits) {
  const util::GridRect region = nodes_[static_cast<std::size_t>(node)].region;
  const int depth = nodes_[static_cast<std::size_t>(node)].depth;
  if (nets.size() < limits.min_nets || depth >= limits.max_depth) {
    nodes_[static_cast<std::size_t>(node)].nets = std::move(nets);
    return;
  }

  // Prefer cutting the wider dimension; scan both and keep the best cut.
  const int wide_axis = region.width() >= region.height() ? 0 : 1;
  Cut best;
  scan_axis(0, region, nets_, nets, limits.min_extent, wide_axis == 0 ? 0 : 1,
            best);
  scan_axis(1, region, nets_, nets, limits.min_extent, wide_axis == 1 ? 0 : 1,
            best);
  // No legal cut (region too thin) or no net ever leaves the node (every
  // window straddles every candidate cutline): splitting buys nothing.
  if (best.score == ~0ULL || best.sided == 0) {
    nodes_[static_cast<std::size_t>(node)].nets = std::move(nets);
    return;
  }

  util::GridRect lo_region = region, hi_region = region;
  if (best.axis == 0) {
    lo_region.x1 = best.pos;
    hi_region.x0 = best.pos + 1;
  } else {
    lo_region.y1 = best.pos;
    hi_region.y0 = best.pos + 1;
  }

  std::vector<std::size_t> lo_nets, hi_nets, crossing;
  for (const auto ni : nets) {
    const auto& w = nets_[ni].window;
    if (lo_region.contains(w))
      lo_nets.push_back(ni);
    else if (hi_region.contains(w))
      hi_nets.push_back(ni);
    else
      crossing.push_back(ni);
  }
  nodes_[static_cast<std::size_t>(node)].nets = std::move(crossing);

  // Children are created only when they hold nets: an empty child cannot
  // route anything and would only pad the level lists.
  auto add_child = [&](const util::GridRect& r) {
    PartitionNode child;
    child.region = r;
    child.parent = node;
    child.depth = depth + 1;
    nodes_.push_back(std::move(child));
    return static_cast<int>(nodes_.size()) - 1;
  };
  if (!lo_nets.empty()) {
    const int c = add_child(lo_region);
    nodes_[static_cast<std::size_t>(node)].left = c;
    build(c, std::move(lo_nets), limits);
  }
  if (!hi_nets.empty()) {
    const int c = add_child(hi_region);
    nodes_[static_cast<std::size_t>(node)].right = c;
    build(c, std::move(hi_nets), limits);
  }
}

}  // namespace sm::route
