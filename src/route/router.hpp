// Grid router: A* maze routing per two-pin connection with PathFinder-style
// negotiated congestion (history + present overuse costs, rip-up and
// re-route of overflowing nets).
//
// This substitutes for Cadence Innovus' routing step (DESIGN.md Sec. 2).
// The paper's evaluation consumes exactly what this router produces:
//   - per-layer wirelength shares (Fig. 5),
//   - via counts between adjacent layers V12..V910 (Tables 2 and 6),
//   - the route geometry at the split layer, i.e. vpins and dangling-wire
//     directions (crouting attack, Table 3; proximity attack, Tables 4/5).
//
// Wire lifting (the paper's correction/naive-lift cells prepare nets for
// lifting to M6/M8) is expressed with RouteTask::min_layer: every route
// segment of such a task must run at or above that layer; terminals reach
// it through via stacks, exactly like the pins of the custom cells.
//
// Negotiation is round-based with a snapshot-commit discipline so the net
// re-routes of one round can shard over a util::ThreadPool: every round
// first selects the nets to rip up (greedy keep-up-to-capacity in a fixed
// net order), then re-routes them in fixed-size chunks — the nets of one
// chunk route in parallel against the frozen usage/history committed so
// far, then commit in the same fixed order before the next chunk starts.
// The chunk partition is a function of the net count alone, searches never
// observe sibling routes of their own chunk, and each net breaks cost ties
// with its own util::task_seed-derived jitter stream, so the result is
// bit-identical for every RouterOptions::jobs value (tests/test_route.cpp
// holds this as a regression).
#pragma once

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/grid.hpp"
#include "util/geometry.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace sm::route {

/// A point a route must electrically reach.
struct Terminal {
  util::Point pos;
  int layer = 1;  ///< metal layer of the physical pin
};

/// One routing job (usually one net).
struct RouteTask {
  netlist::NetId net = netlist::kInvalidNet;  ///< tag for reporting
  std::vector<Terminal> terminals;            ///< first is the driver
  int min_layer = 1;  ///< all wiring must run at or above this layer
};

/// A straight wire piece on one layer, or a via (same x/y, adjacent layers).
struct RouteSegment {
  util::GridPoint a, b;
  bool is_via() const { return a.layer != b.layer; }
  int gcell_length() const { return util::manhattan(a, b); }
};

struct NetRoute {
  netlist::NetId net = netlist::kInvalidNet;
  std::vector<RouteSegment> segments;
  bool success = false;
  int min_layer = 1;
};

struct RoutingStats {
  /// Wirelength in microns per layer; index 1..10 (0 unused).
  std::array<double, netlist::MetalStack::kNumLayers + 1> wire_um{};
  /// Via counts; index l counts vias between layer l and l+1 (1..9).
  std::array<std::uint64_t, netlist::MetalStack::kNumLayers> vias{};
  std::size_t failed_nets = 0;
  std::size_t overflowed_gcells = 0;

  double total_wire_um() const;
  std::uint64_t total_vias() const;
};

struct RoutingResult {
  RouteGrid grid;
  std::vector<NetRoute> routes;  ///< parallel to the task list
  RoutingStats stats;
};

/// A routing blockage: lateral wiring is forbidden inside `region` on layers
/// [min_layer, max_layer]; vias may still pass through (pin escape stays
/// possible). This models the routing-blockage defense of Magana et al. [7].
struct Blockage {
  util::Rect region;
  int min_layer = 1;
  int max_layer = 10;
};

struct RouterOptions {
  double gcell_um = 2.8;
  int passes = 3;            ///< rip-up & re-route rounds (>= 1)
  double via_cost = 3.5;     ///< cost of one layer crossing (vs 1 per gcell)
  double overflow_penalty = 4.0;
  double history_increment = 1.5;
  /// Per-net deterministic tie-break noise added to each node cost, drawn
  /// from util::task_seed(seed, task index). Decorrelates otherwise
  /// identical nets (they stop stacking on one track). The per-node
  /// amplitude is this value divided by the grid extent, so even summed
  /// over a die-spanning path the total perturbation stays below
  /// tie_jitter — far under the cost of any real detour (one gcell step
  /// = 1.0) — and route quality is unaffected. 0 disables it.
  double tie_jitter = 0.05;
  std::uint64_t seed = 1;
  /// Worker threads for each round's net re-routes; 0 = hardware
  /// concurrency. Routes are bit-identical for every value.
  std::size_t jobs = 1;
  std::vector<Blockage> blockages;
};

class Router {
 public:
  explicit Router(RouterOptions opts = {}) : opts_(opts) {}

  /// Route all tasks inside `die`. Deterministic in (tasks, options);
  /// RouterOptions::jobs never changes the result, only the wall time.
  RoutingResult route(const std::vector<RouteTask>& tasks,
                      const util::Rect& die,
                      const netlist::MetalStack& stack) const;

 private:
  RouterOptions opts_;
};

/// Build one RouteTask per net of a placed netlist (driver pin first).
/// `min_layer_of` may be empty (all nets unconstrained) or indexed by NetId.
std::vector<RouteTask> make_tasks(const netlist::Netlist& nl,
                                  const place::Placement& pl,
                                  const std::vector<int>& min_layer_of = {});

/// Recompute aggregate statistics from per-net routes (exposed for tests).
RoutingStats collect_stats(const RouteGrid& grid,
                           const std::vector<NetRoute>& routes);

}  // namespace sm::route
