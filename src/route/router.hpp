// Grid router: A* maze routing per two-pin connection with PathFinder-style
// negotiated congestion (history + present overuse costs, rip-up and
// re-route of overflowing nets).
//
// This substitutes for Cadence Innovus' routing step (DESIGN.md Sec. 2).
// The paper's evaluation consumes exactly what this router produces:
//   - per-layer wirelength shares (Fig. 5),
//   - via counts between adjacent layers V12..V910 (Tables 2 and 6),
//   - the route geometry at the split layer, i.e. vpins and dangling-wire
//     directions (crouting attack, Table 3; proximity attack, Tables 4/5).
//
// Wire lifting (the paper's correction/naive-lift cells prepare nets for
// lifting to M6/M8) is expressed with RouteTask::min_layer: every route
// segment of such a task must run at or above that layer; terminals reach
// it through via stacks, exactly like the pins of the custom cells.
//
// Negotiation is round-based: every round selects the nets to rip up
// (greedy keep-up-to-capacity in a fixed net order) and re-routes them over
// a util::ThreadPool. Two re-route schedulers exist (RouterOptions::
// partition):
//
//   Tree (default) — a ParaDRo-style spatial partition tree over the
//   ripped nets' search windows (route/partition_tree.hpp). Each net's A*
//   is clipped to its terminal bbox inflated by bbox_margin; the net lands
//   at the deepest tree node whose region contains that window. Sibling
//   subtrees route *concurrently against live congestion* — a net only
//   touches usage inside its own window, sibling regions are disjoint, so
//   no interleaving of sibling work is observable. Within a node, nets
//   route and commit one by one in the fixed net order; a node's own
//   (cutline-crossing) nets route only after both child subtrees finished.
//   Nets that fail inside their clipped window re-route serially at the
//   root with the full grid after the tree pass. The only net pairs whose
//   windows overlap are same-node or ancestor/descendant pairs, and the
//   tree order fixes both — so routes are bit-identical for every `jobs`
//   AND every `partition_depth` (the depth only caps where parallel tasks
//   fan out; the tree itself is a pure function of nets + grid).
//
//   Rounds (escape hatch, --route-partition=rounds) — the former
//   snapshot-commit scheme: ripped nets re-route in fixed-size chunks
//   against the frozen usage/history committed so far, then commit in
//   fixed order before the next chunk starts.
//
// Both schedulers draw each net's cost-tie jitter from its own
// util::task_seed stream and lease epoch-stamped per-worker Searchers, so
// which thread routes which net never leaks into results
// (tests/test_route.cpp and tests/test_partition_tree.cpp hold the
// bit-identity as regressions).
#pragma once

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/grid.hpp"
#include "util/geometry.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sm::route {

/// A point a route must electrically reach.
struct Terminal {
  util::Point pos;
  int layer = 1;  ///< metal layer of the physical pin
};

/// One routing job (usually one net).
struct RouteTask {
  netlist::NetId net = netlist::kInvalidNet;  ///< tag for reporting
  std::vector<Terminal> terminals;            ///< first is the driver
  int min_layer = 1;  ///< all wiring must run at or above this layer
};

/// A straight wire piece on one layer, or a via (same x/y, adjacent layers).
struct RouteSegment {
  util::GridPoint a, b;
  bool is_via() const { return a.layer != b.layer; }
  int gcell_length() const { return util::manhattan(a, b); }
};

struct NetRoute {
  netlist::NetId net = netlist::kInvalidNet;
  std::vector<RouteSegment> segments;
  bool success = false;
  int min_layer = 1;
};

struct RoutingStats {
  /// Wirelength in microns per layer; index 1..10 (0 unused).
  std::array<double, netlist::MetalStack::kNumLayers + 1> wire_um{};
  /// Via counts; index l counts vias between layer l and l+1 (1..9).
  std::array<std::uint64_t, netlist::MetalStack::kNumLayers> vias{};
  std::size_t failed_nets = 0;
  std::size_t overflowed_gcells = 0;

  double total_wire_um() const;
  std::uint64_t total_vias() const;
};

struct RoutingResult {
  RouteGrid grid;
  std::vector<NetRoute> routes;  ///< parallel to the task list
  RoutingStats stats;
};

/// A routing blockage: lateral wiring is forbidden inside `region` on layers
/// [min_layer, max_layer]; vias may still pass through (pin escape stays
/// possible). This models the routing-blockage defense of Magana et al. [7].
struct Blockage {
  util::Rect region;
  int min_layer = 1;
  int max_layer = 10;
};

/// Scheduler for a negotiation round's net re-routes (header comment above).
enum class RoutePartition {
  Tree,    ///< spatial partition tree, live in-region congestion (default)
  Rounds,  ///< legacy snapshot-commit chunks against frozen congestion
};

/// Parse "tree"/"rounds" (std::invalid_argument otherwise) — the CLI and
/// bench --route-partition flags share this validated path.
RoutePartition route_partition_from_string(const std::string& name);
const char* to_string(RoutePartition p);

struct RouterOptions {
  double gcell_um = 2.8;
  int passes = 3;            ///< rip-up & re-route rounds (>= 1)
  double via_cost = 3.5;     ///< cost of one layer crossing (vs 1 per gcell)
  double overflow_penalty = 4.0;
  double history_increment = 1.5;
  /// Per-net deterministic tie-break noise added to each node cost, drawn
  /// from util::task_seed(seed, task index). Decorrelates otherwise
  /// identical nets (they stop stacking on one track). The per-node
  /// amplitude is this value divided by the grid extent, so even summed
  /// over a die-spanning path the total perturbation stays below
  /// tie_jitter — far under the cost of any real detour (one gcell step
  /// = 1.0) — and route quality is unaffected. 0 disables it.
  double tie_jitter = 0.05;
  std::uint64_t seed = 1;
  /// Worker threads for each round's net re-routes; 0 = hardware
  /// concurrency. Routes are bit-identical for every value.
  std::size_t jobs = 1;
  /// Re-route scheduler (header comment). Tree changes which routes are
  /// produced vs Rounds (live instead of frozen congestion, clipped
  /// searches) — both are individually deterministic.
  RoutePartition partition = RoutePartition::Tree;
  /// Tree depth at which parallel tasks fan out: below it, whole subtrees
  /// run as one sequential task (coarser tasks, fewer barriers); above it,
  /// each tree level is a parallel batch. Scheduling granularity ONLY —
  /// never changes routes. < 0 = auto (enough fan-out for ~4 tasks per
  /// worker, clamped to the tree's own depth, which the grid extent and
  /// net spread bound).
  int partition_depth = -1;
  /// Gcells added on every side of a net's terminal bbox to form its
  /// clipped search window under Tree (detour headroom). Affects routes
  /// (it is part of the problem, not the schedule).
  int bbox_margin = 8;
  std::vector<Blockage> blockages;
};

class Router {
 public:
  explicit Router(RouterOptions opts = {}) : opts_(opts) {}

  /// Route all tasks inside `die`. Deterministic in (tasks, options);
  /// RouterOptions::jobs never changes the result, only the wall time.
  RoutingResult route(const std::vector<RouteTask>& tasks,
                      const util::Rect& die,
                      const netlist::MetalStack& stack) const;

 private:
  RouterOptions opts_;
};

/// Build one RouteTask per net of a placed netlist (driver pin first).
/// `min_layer_of` may be empty (all nets unconstrained) or indexed by NetId.
std::vector<RouteTask> make_tasks(const netlist::Netlist& nl,
                                  const place::Placement& pl,
                                  const std::vector<int>& min_layer_of = {});

/// Recompute aggregate statistics from per-net routes (exposed for tests).
RoutingStats collect_stats(const RouteGrid& grid,
                           const std::vector<NetRoute>& routes);

}  // namespace sm::route
