#include "route/router.hpp"

#include "route/partition_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

namespace sm::route {

using netlist::MetalStack;
using util::GridPoint;
using util::Point;

double RoutingStats::total_wire_um() const {
  double s = 0;
  for (const double w : wire_um) s += w;
  return s;
}

std::uint64_t RoutingStats::total_vias() const {
  std::uint64_t s = 0;
  for (const auto v : vias) s += v;
  return s;
}

const char* to_string(RoutePartition p) {
  return p == RoutePartition::Tree ? "tree" : "rounds";
}

RoutePartition route_partition_from_string(const std::string& name) {
  if (name == "tree") return RoutePartition::Tree;
  if (name == "rounds") return RoutePartition::Rounds;
  throw std::invalid_argument("route: unknown partition scheme '" + name +
                              "' (want tree|rounds)");
}

std::vector<RouteTask> make_tasks(const netlist::Netlist& nl,
                                  const place::Placement& pl,
                                  const std::vector<int>& min_layer_of) {
  std::vector<RouteTask> tasks;
  tasks.reserve(nl.num_nets());
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& net = nl.net(n);
    if (net.sinks.empty()) continue;  // nothing to connect
    RouteTask t;
    t.net = n;
    t.min_layer = (n < min_layer_of.size()) ? min_layer_of[n] : 1;
    t.terminals.push_back({pl.of(net.driver), nl.type_of(net.driver).pin_layer});
    for (const auto& s : net.sinks)
      t.terminals.push_back({pl.of(s.cell), nl.type_of(s.cell).pin_layer});
    tasks.push_back(std::move(t));
  }
  return tasks;
}

RoutingStats collect_stats(const RouteGrid& grid,
                           const std::vector<NetRoute>& routes) {
  RoutingStats st;
  for (const auto& r : routes) {
    if (!r.success) {
      ++st.failed_nets;
      continue;
    }
    for (const auto& seg : r.segments) {
      if (seg.is_via()) {
        const int lo = std::min(seg.a.layer, seg.b.layer);
        const int hi = std::max(seg.a.layer, seg.b.layer);
        for (int l = lo; l < hi; ++l) ++st.vias[static_cast<std::size_t>(l)];
      } else {
        st.wire_um[static_cast<std::size_t>(seg.a.layer)] +=
            seg.gcell_length() * grid.gcell_um();
      }
    }
  }
  return st;
}

namespace {

/// Round-shared congestion state: committed usage, negotiation history,
/// blockages, per-layer capacities, and the PathFinder pressure schedule.
/// During a round's parallel re-route phase it is strictly read-only (the
/// snapshot every Searcher prices against); all mutation — the greedy keep
/// selection, usage commits, history bumps — happens single-threaded
/// between rounds. That snapshot-commit discipline is what makes the
/// router's output independent of RouterOptions::jobs.
class CongestionState {
 public:
  CongestionState(const RouteGrid& grid, const MetalStack& stack,
                  const RouterOptions& opts)
      : grid_(&grid), opts_(&opts) {
    const std::size_t n = grid.num_nodes();
    usage_.assign(n, 0);
    history_.assign(n, 0.0f);
    cap_.resize(static_cast<std::size_t>(grid.layers()) + 1);
    for (int l = 1; l <= grid.layers(); ++l)
      cap_[static_cast<std::size_t>(l)] = grid.capacity(stack, l);

    blocked_.assign(n, 0);
    for (const auto& b : opts.blockages) {
      const GridPoint lo = grid.snap(b.region.lo, 1);
      const GridPoint hi = grid.snap(b.region.hi, 1);
      for (int l = std::max(1, b.min_layer);
           l <= std::min(grid.layers(), b.max_layer); ++l)
        for (int y = lo.y; y <= hi.y; ++y)
          for (int x = lo.x; x <= hi.x; ++x)
            blocked_[grid.index({x, y, l})] = 1;
    }
  }

  int capacity(int layer) const { return cap_[static_cast<std::size_t>(layer)]; }
  int usage_at(std::size_t idx) const { return usage_[idx]; }
  bool blocked(std::size_t idx) const { return blocked_[idx] != 0; }

  /// Would one more net through `idx` stay within the layer's capacity?
  bool fits(std::size_t idx, int layer) const {
    return usage_[idx] + 1 <= cap_[static_cast<std::size_t>(layer)];
  }

  void add_usage(std::size_t idx, int delta) {
    usage_[idx] = static_cast<std::int32_t>(usage_[idx] + delta);
  }

  void clear_usage() { std::fill(usage_.begin(), usage_.end(), 0); }

  /// PathFinder cost of stepping onto node `idx`. The present-overuse
  /// penalty grows with each negotiation round (set_pressure), the classic
  /// PathFinder schedule that forces convergence.
  double node_cost(std::size_t idx, int layer) const {
    const int over = usage_[idx] + 1 - cap_[static_cast<std::size_t>(layer)];
    double c = 1.0 + static_cast<double>(history_[idx]);
    if (over > 0) c += opts_->overflow_penalty * pressure_ * over;
    return c;
  }

  void set_pressure(double p) { pressure_ = p; }

  void bump_history() {
    for (std::size_t i = 0; i < usage_.size(); ++i) {
      const GridPoint g = grid_->at(i);
      const int over = usage_[i] - cap_[static_cast<std::size_t>(g.layer)];
      if (over > 0)
        history_[i] += static_cast<float>(opts_->history_increment * over);
    }
  }

  std::size_t count_overflow() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < usage_.size(); ++i) {
      const GridPoint g = grid_->at(i);
      if (usage_[i] > cap_[static_cast<std::size_t>(g.layer)]) ++n;
    }
    return n;
  }

 private:
  const RouteGrid* grid_;
  const RouterOptions* opts_;
  std::vector<std::int32_t> usage_;
  std::vector<float> history_;
  std::vector<std::uint8_t> blocked_;
  std::vector<int> cap_;
  double pressure_ = 1.0;
};

/// Per-worker A* search state with epoch-stamped arrays, so repeated
/// searches cost O(visited), not O(grid). Reads the round's frozen
/// CongestionState and never writes it. Which worker's Searcher routes
/// which net is scheduling-dependent but provably irrelevant: every search
/// bumps its epoch first, so no state of any previous search (on this or
/// any other net) is ever read.
class Searcher {
 public:
  Searcher(const RouteGrid& grid, const MetalStack& stack,
           const RouterOptions& opts, const CongestionState& cong)
      : grid_(&grid), opts_(&opts), cong_(&cong) {
    const std::size_t n = grid.num_nodes();
    gscore_.assign(n, 0.0f);
    parent_.assign(n, 0);
    epoch_mark_.assign(n, 0);
    closed_mark_.assign(n, 0);
    target_mark_.assign(n, 0);
    tree_mark_.assign(n, 0);
    wx1_ = grid.nx() - 1;
    wy1_ = grid.ny() - 1;
    // Layer metadata resolved once: MetalStack::layer() is an out-of-line
    // call that shows up at 27M A* edge relaxations per sweep.
    preferred_.resize(static_cast<std::size_t>(grid.layers()) + 1);
    for (int l = 1; l <= grid.layers(); ++l)
      preferred_[static_cast<std::size_t>(l)] = stack.layer(l).preferred;
  }

  /// Select the net about to be routed: its deterministic tie-break stream.
  /// The per-node amplitude is tie_jitter normalized by the grid extent, so
  /// even summed over a die-spanning path the total perturbation stays
  /// below tie_jitter — far below one real step — and can never make a
  /// genuinely longer route win, only break exact ties.
  void set_net(std::uint64_t jitter_seed) {
    jitter_seed_ = jitter_seed;
    const double norm = static_cast<double>(grid_->nx() + grid_->ny()) +
                        2.0 * static_cast<double>(grid_->layers());
    jitter_scale_ = opts_->tie_jitter * 0x1.0p-53 / norm;
  }

  /// Clip every subsequent search to the lateral window `w` (layers stay
  /// unrestricted — via stacks and lifted wiring need them all). The tree
  /// scheduler sets each net's own inflated bbox here; that containment is
  /// what makes sibling subtrees non-interacting. Rounds mode never calls
  /// this and keeps the constructor's full-grid window.
  void set_window(const util::GridRect& w) {
    wx0_ = w.x0;
    wy0_ = w.y0;
    wx1_ = w.x1;
    wy1_ = w.y1;
  }

  /// Epoch-stamped membership set for the net tree under construction —
  /// O(1) insert/lookup where the previous router did a linear scan.
  void tree_reset() { ++tree_epoch_; }
  bool tree_add(std::size_t idx) {
    if (tree_mark_[idx] == tree_epoch_) return false;
    tree_mark_[idx] = tree_epoch_;
    return true;
  }
  bool tree_has(std::size_t idx) const {
    return tree_mark_[idx] == tree_epoch_;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// A* from `start` to any node in `targets` (marked via target_mark_).
  /// Layers below `min_layer` are off-limits. Returns the reached target
  /// node or npos; parent_ encodes the path.
  std::size_t search(std::size_t start, const std::vector<std::size_t>& targets,
                     int min_layer) {
    ++epoch_;
    // Mark targets and compute their bbox for the heuristic.
    tminx_ = tminy_ = std::numeric_limits<int>::max();
    tmaxx_ = tmaxy_ = std::numeric_limits<int>::min();
    for (const auto t : targets) {
      closed_mark_[t] = 0;  // ensure not stale-closed
      target_set_.push_back(t);
      const GridPoint g = grid_->at(t);
      tminx_ = std::min(tminx_, g.x);
      tmaxx_ = std::max(tmaxx_, g.x);
      tminy_ = std::min(tminy_, g.y);
      tmaxy_ = std::max(tmaxy_, g.y);
      target_mark_[t] = epoch_;
    }

    // Manual binary heap over a member buffer: a search allocates nothing
    // once the buffer has grown (std::priority_queue would be a fresh
    // vector per call — measurable at this call volume).
    heap_.clear();
    gscore_[start] = 0.0f;
    epoch_mark_[start] = epoch_;
    parent_[start] = static_cast<std::uint32_t>(start);
    heap_.emplace_back(heuristic(grid_->at(start)), start);

    std::size_t found = npos;
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
      const auto [f, node] = heap_.back();
      heap_.pop_back();
      if (closed_mark_[node] == epoch_) continue;
      closed_mark_[node] = epoch_;
      if (target_mark_[node] == epoch_) {
        found = node;
        break;
      }
      const GridPoint g = grid_->at(node);
      auto try_step = [&](const GridPoint& ng, double step_cost) {
        if (!grid_->in_bounds(ng) || ng.layer < min_layer) return;
        if (ng.x < wx0_ || ng.x > wx1_ || ng.y < wy0_ || ng.y > wy1_) return;
        const std::size_t ni = grid_->index(ng);
        // Blockages forbid lateral wiring; vias (layer changes) pass.
        if (ng.layer == g.layer && cong_->blocked(ni)) return;
        if (closed_mark_[ni] == epoch_) return;
        const double ng_cost = static_cast<double>(gscore_[node]) + step_cost +
                               cong_->node_cost(ni, ng.layer) + jitter(ni);
        if (epoch_mark_[ni] == epoch_ &&
            static_cast<double>(gscore_[ni]) <= ng_cost)
          return;
        epoch_mark_[ni] = epoch_;
        gscore_[ni] = static_cast<float>(ng_cost);
        parent_[ni] = static_cast<std::uint32_t>(node);
        heap_.emplace_back(ng_cost + heuristic(ng), ni);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
      };
      const auto dir = preferred_[static_cast<std::size_t>(g.layer)];
      if (dir == netlist::Direction::Horizontal) {
        try_step({g.x - 1, g.y, g.layer}, 0.0);
        try_step({g.x + 1, g.y, g.layer}, 0.0);
      } else {
        try_step({g.x, g.y - 1, g.layer}, 0.0);
        try_step({g.x, g.y + 1, g.layer}, 0.0);
      }
      try_step({g.x, g.y, g.layer - 1}, opts_->via_cost);
      try_step({g.x, g.y, g.layer + 1}, opts_->via_cost);
    }

    // Clear target marks for the next search.
    for (const auto t : target_set_) target_mark_[t] = 0;
    target_set_.clear();
    return found;
  }

  /// Walk parents from `node` back to the search start.
  std::vector<std::size_t> backtrack(std::size_t node) const {
    std::vector<std::size_t> path{node};
    while (parent_[node] != node) {
      node = parent_[node];
      path.push_back(node);
    }
    return path;
  }

 private:
  /// Takes the point, not the index: callers already hold the GridPoint,
  /// and the at() division is real money at 27M relaxations per sweep.
  double heuristic(const GridPoint& g) const {
    double h = 0;
    if (g.x < tminx_) h += tminx_ - g.x;
    if (g.x > tmaxx_) h += g.x - tmaxx_;
    if (g.y < tminy_) h += tminy_ - g.y;
    if (g.y > tmaxy_) h += g.y - tmaxy_;
    return h;  // >= remaining steps, each of cost >= 1 (jitter only adds)
  }

  /// Deterministic per-(net, node) tie-break noise in [0, tie_jitter).
  /// A pure function of the net's seed and the node index — never of the
  /// executing thread — so a net prices ties identically in any schedule.
  /// One multiply + xorshift: runs on every A* edge relaxation, where the
  /// full splitmix64 chain measurably shows up; tie-breaking only needs
  /// decorrelation between nets, not PRNG-grade uniformity.
  double jitter(std::size_t idx) const {
    std::uint64_t s = (jitter_seed_ ^ static_cast<std::uint64_t>(idx)) *
                      0x9e3779b97f4a7c15ULL;
    s ^= s >> 29;
    return jitter_scale_ * static_cast<double>(s >> 11);
  }

  const RouteGrid* grid_;
  const RouterOptions* opts_;
  const CongestionState* cong_;
  std::vector<float> gscore_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> epoch_mark_;
  std::vector<std::uint32_t> closed_mark_;
  std::vector<std::uint32_t> target_mark_;
  std::vector<std::uint32_t> tree_mark_;
  std::vector<std::size_t> target_set_;
  std::vector<std::pair<double, std::size_t>> heap_;  ///< (f, node) min-heap
  std::vector<netlist::Direction> preferred_;  ///< per-layer wire direction
  std::uint32_t epoch_ = 0;
  std::uint32_t tree_epoch_ = 0;
  std::uint64_t jitter_seed_ = 0;
  double jitter_scale_ = 0.0;
  int tminx_ = 0, tmaxx_ = 0, tminy_ = 0, tmaxy_ = 0;
  std::int32_t wx0_ = 0, wy0_ = 0, wx1_ = 0, wy1_ = 0;  ///< search window
};

/// Mutex-guarded free list of Searchers: a worker leases one per net and
/// returns it afterwards, so a round needs at most `jobs` searchers total
/// (each is O(grid) memory). The lease order depends on scheduling; the
/// Searcher epoch discipline makes that irrelevant to the routes.
class SearcherPool {
 public:
  SearcherPool(const RouteGrid& grid, const MetalStack& stack,
               const RouterOptions& opts, const CongestionState& cong)
      : grid_(&grid), stack_(&stack), opts_(&opts), cong_(&cong) {}

  std::unique_ptr<Searcher> acquire() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        auto s = std::move(free_.back());
        free_.pop_back();
        return s;
      }
    }
    return std::make_unique<Searcher>(*grid_, *stack_, *opts_, *cong_);
  }

  void release(std::unique_ptr<Searcher> s) {
    const std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(s));
  }

 private:
  const RouteGrid* grid_;
  const MetalStack* stack_;
  const RouterOptions* opts_;
  const CongestionState* cong_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Searcher>> free_;
};

/// Compress a node path into straight wire segments and single via segments.
void emit_segments(const RouteGrid& grid, const std::vector<std::size_t>& path,
                   std::vector<RouteSegment>& out) {
  if (path.size() < 2) return;
  GridPoint run_start = grid.at(path.back());
  GridPoint prev = run_start;
  // Walk from search start to end (path is backtracked, so reverse).
  for (std::size_t k = path.size() - 1; k-- > 0;) {
    const GridPoint cur = grid.at(path[k]);
    if (cur.layer != prev.layer) {  // via step
      if (!(run_start == prev)) out.push_back({run_start, prev});
      out.push_back({prev, cur});
      run_start = cur;
    } else if ((run_start.x != prev.x && cur.y != prev.y) ||
               (run_start.y != prev.y && cur.x != prev.x)) {
      // Direction change: close the finished run; the new run starts at
      // prev so the prev->cur step is not lost.
      out.push_back({run_start, prev});
      run_start = prev;
    }
    prev = cur;
  }
  if (!(run_start == prev)) out.push_back({run_start, prev});
}

/// Nodes a (terminal) via stack occupies from the pin layer up to `to_layer`.
void stack_nodes(const RouteGrid& grid, const Terminal& t, int to_layer,
                 std::vector<std::size_t>& out) {
  const GridPoint base = grid.snap(t.pos, t.layer);
  const int lo = std::min(base.layer, to_layer);
  const int hi = std::max(base.layer, to_layer);
  for (int l = lo; l <= hi; ++l)
    out.push_back(grid.index({base.x, base.y, l}));
}

struct TaskState {
  std::vector<std::size_t> nodes;  ///< all grid nodes the net occupies
  NetRoute route;
};

/// Route one net against the round's frozen congestion snapshot. Writes
/// only `st` (the committed usage is untouched — the caller commits whole
/// rounds in fixed net order), so any number of these can run concurrently
/// on distinct nets.
void route_net(const RouteGrid& grid, const RouteTask& task, Searcher& s,
               TaskState& st) {
  st.route = NetRoute{};
  st.route.net = task.net;
  st.route.min_layer = task.min_layer;
  st.nodes.clear();
  if (task.terminals.empty()) return;
  const int ml = std::max(1, task.min_layer);

  // Seed the net tree with the driver terminal's via stack.
  s.tree_reset();
  std::vector<std::size_t> tree;
  auto tree_push = [&](std::size_t idx) {
    if (s.tree_add(idx)) tree.push_back(idx);
  };
  {
    std::vector<std::size_t> stack_idx;
    stack_nodes(grid, task.terminals[0], ml, stack_idx);
    for (const auto idx : stack_idx) tree_push(idx);
  }
  if (ml > task.terminals[0].layer) {
    const GridPoint b = grid.snap(task.terminals[0].pos, task.terminals[0].layer);
    st.route.segments.push_back({b, {b.x, b.y, ml}});
  }
  bool ok = true;

  // Connect remaining terminals nearest-first (Prim-like order).
  std::vector<std::size_t> remaining;
  for (std::size_t k = 1; k < task.terminals.size(); ++k) remaining.push_back(k);
  std::stable_sort(remaining.begin(), remaining.end(),
                   [&](std::size_t a, std::size_t b) {
                     return util::manhattan(task.terminals[a].pos,
                                            task.terminals[0].pos) <
                            util::manhattan(task.terminals[b].pos,
                                            task.terminals[0].pos);
                   });

  for (const std::size_t k : remaining) {
    const Terminal& term = task.terminals[k];
    const GridPoint entry_pin = grid.snap(term.pos, term.layer);
    const GridPoint entry{entry_pin.x, entry_pin.y, std::max(entry_pin.layer, ml)};
    const std::size_t entry_idx = grid.index(entry);

    // Degenerate: terminal already on the tree.
    if (!s.tree_has(entry_idx)) {
      const std::size_t hit = s.search(entry_idx, tree, ml);
      if (hit == Searcher::npos) {
        ok = false;
        continue;
      }
      const auto path = s.backtrack(hit);
      emit_segments(grid, path, st.route.segments);
      // path runs hit -> ... -> entry (backtrack order); add all to tree.
      for (const auto nidx : path) tree_push(nidx);
    }
    // Terminal via stack (pin layer up to the entry layer).
    if (entry.layer > entry_pin.layer) {
      st.route.segments.push_back({entry_pin, entry});
      for (int l = entry_pin.layer; l <= entry.layer; ++l)
        tree_push(grid.index({entry.x, entry.y, l}));
    }
  }

  st.route.success = ok;
  // Pin-layer nodes at the terminals do not consume routing capacity:
  // pin access is already accounted in the per-layer capacity derate, and
  // several pins legitimately share one gcell. Everything else does.
  std::vector<std::size_t> pin_nodes;
  for (const auto& term : task.terminals)
    pin_nodes.push_back(grid.index(grid.snap(term.pos, term.layer)));
  std::sort(pin_nodes.begin(), pin_nodes.end());
  for (const auto nidx : tree)
    if (!std::binary_search(pin_nodes.begin(), pin_nodes.end(), nidx))
      st.nodes.push_back(nidx);
}

}  // namespace

RoutingResult Router::route(const std::vector<RouteTask>& tasks,
                            const util::Rect& die,
                            const MetalStack& stack) const {
  RoutingResult result;
  result.grid = RouteGrid(die, opts_.gcell_um, stack.num_layers());
  const RouteGrid& grid = result.grid;
  CongestionState cong(grid, stack, opts_);

  std::vector<TaskState> state(tasks.size());

  // Fixed net order: short nets first (they have the least flexibility).
  // This is simultaneously the greedy-keep order and the commit order, so
  // the whole negotiation is a pure function of (tasks, options).
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto task_span = [&](const RouteTask& t) {
    util::Rect box = util::Rect::around(t.terminals.empty() ? Point{}
                                                            : t.terminals[0].pos);
    for (const auto& term : t.terminals) box.expand(term.pos);
    return box.half_perimeter();
  };
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return task_span(tasks[a]) < task_span(tasks[b]);
  });

  // One pool for every round's re-route batch (fresh-pool-per-round would
  // violate thread_pool.hpp's hot-loop guidance). Serial when jobs
  // resolves to 1.
  const std::size_t jobs = util::resolve_jobs(opts_.jobs, tasks.size());
  std::optional<util::ThreadPool> pool;
  if (jobs > 1 && tasks.size() > 1) pool.emplace(jobs);
  SearcherPool searchers(grid, stack, opts_, cong);

  // Rounds scheduler (escape hatch): route `ripped` (already in commit
  // order) chunk by chunk — the nets of one chunk route in parallel against
  // the usage committed by all earlier chunks (plus the kept nets), then
  // commit in order before the next chunk starts. The chunk partition
  // depends only on the net count — never on jobs — so results stay
  // bit-identical for any worker count.
  auto route_rounds_batch = [&](const std::vector<std::size_t>& ripped) {
    const std::size_t chunk = std::max<std::size_t>(16, ripped.size() / 64);
    for (std::size_t begin = 0; begin < ripped.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, ripped.size());
      auto run_one = [&](std::size_t k) {
        const std::size_t ti = ripped[begin + k];
        auto s = searchers.acquire();
        s->set_net(util::task_seed(opts_.seed, ti));
        route_net(grid, tasks[ti], *s, state[ti]);
        searchers.release(std::move(s));
      };
      if (pool && end - begin > 1)
        pool->parallel_for(end - begin, run_one);
      else
        for (std::size_t k = 0; k < end - begin; ++k) run_one(k);
      // Commit this chunk in fixed net order.
      for (std::size_t k = begin; k < end; ++k)
        for (const auto nidx : state[ripped[k]].nodes) cong.add_usage(nidx, 1);
    }
  };

  // Tree scheduler: per-net clipped search windows (terminal bbox +
  // bbox_margin, a property of the *problem*, computed once up front) and
  // a work estimate for cutline balancing.
  const util::GridRect grid_rect{0, 0, grid.nx() - 1, grid.ny() - 1};
  std::vector<util::GridRect> window;
  std::vector<std::uint64_t> work;
  if (opts_.partition == RoutePartition::Tree) {
    window.resize(tasks.size());
    work.resize(tasks.size());
    const std::int32_t margin =
        static_cast<std::int32_t>(std::max(0, opts_.bbox_margin));
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      util::GridRect b;
      for (const auto& term : tasks[i].terminals) {
        const GridPoint g = grid.snap(term.pos, term.layer);
        b.expand(g.x, g.y);
      }
      if (b.empty()) b = util::GridRect::around(0, 0);
      // A* cost scales with the connection count and the bbox span.
      work[i] =
          (static_cast<std::uint64_t>(b.half_perimeter()) + 1) *
          std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(tasks[i].terminals.size()) - 1);
      window[i] = b.inflated(margin).clamped(grid_rect);
    }
  }

  // Tree depth at which parallel tasks fan out. Pure scheduling: any value
  // yields the same routes (see run_subtree's order argument below).
  auto spawn_depth = [&](int tree_depth) {
    if (opts_.partition_depth >= 0)
      return std::min(opts_.partition_depth, tree_depth);
    int d = 0;  // auto: fan out until ~4 tasks per worker are possible
    while (d < tree_depth && (std::size_t{1} << d) < 4 * jobs) ++d;
    return d;
  };

  // Route one net inside its window and commit immediately: Tree mode's
  // *live* congestion. Safe concurrently across sibling subtrees — a net
  // reads and writes usage only inside its own window, which the tree
  // keeps inside its node's region, and sibling regions are disjoint.
  auto route_one_live = [&](std::size_t ti, Searcher& s) {
    s.set_net(util::task_seed(opts_.seed, ti));
    s.set_window(window[ti]);
    route_net(grid, tasks[ti], s, state[ti]);
    for (const auto nidx : state[ti].nodes) cong.add_usage(nidx, 1);
  };

  // One negotiation round under the tree scheduler. Determinism argument:
  // the only net pairs that can observe each other's usage are pairs with
  // overlapping windows, and such pairs always sit on one root-to-leaf
  // path (same node, or ancestor/descendant — siblings' regions are
  // disjoint, so their nets' windows cannot overlap). Any execution that
  // (a) routes each node's nets in their fixed stored order and (b)
  // finishes both child subtrees before the node's own cutline-crossing
  // nets therefore produces identical routes — sequential post-order,
  // level-synchronous parallel, and every partition_depth in between.
  auto route_tree_batch = [&](const std::vector<std::size_t>& ripped) {
    if (ripped.empty()) return;
    std::vector<PartitionNet> pnets;
    pnets.reserve(ripped.size());
    for (const auto ti : ripped) pnets.push_back({ti, window[ti], work[ti]});
    const PartitionTree tree(grid_rect, std::move(pnets));

    auto run_node = [&](const PartitionNode& n, Searcher& s) {
      for (const auto idx : n.nets) route_one_live(tree.nets()[idx].task, s);
    };
    // Sequential post-order over a whole subtree: children first, then the
    // node's crossing nets — property (b) above, single-threaded.
    auto run_subtree = [&](int root, Searcher& s) {
      struct Frame {
        int node;
        bool expanded;
      };
      std::vector<Frame> stack{{root, false}};
      while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        const PartitionNode& n = tree.nodes()[static_cast<std::size_t>(f.node)];
        if (f.expanded || n.is_leaf()) {
          run_node(n, s);
          continue;
        }
        stack.push_back({f.node, true});
        if (n.right >= 0) stack.push_back({n.right, false});
        if (n.left >= 0) stack.push_back({n.left, false});
      }
    };

    if (!pool) {
      auto s = searchers.acquire();
      run_subtree(0, *s);
      searchers.release(std::move(s));
    } else {
      const int fan = spawn_depth(tree.depth());
      // Phase 1: every maximal subtree rooted at the fan-out depth is one
      // sequential task; the tasks run concurrently (disjoint regions).
      {
        const auto& ids = tree.level(fan);
        pool->parallel_for(ids.size(), [&](std::size_t k) {
          auto s = searchers.acquire();
          run_subtree(ids[k], *s);
          searchers.release(std::move(s));
        });
      }
      // Phase 2: the remaining levels bottom-up, one parallel batch per
      // level. A node's children live at the next deeper level (phase 1 or
      // an earlier batch), so they are committed — and the parallel_for
      // join sequences the batches.
      for (int level = fan - 1; level >= 0; --level) {
        const auto& ids = tree.level(level);
        pool->parallel_for(ids.size(), [&](std::size_t k) {
          auto s = searchers.acquire();
          run_node(tree.nodes()[static_cast<std::size_t>(ids[k])], *s);
          searchers.release(std::move(s));
        });
      }
    }

    // Clipping can make a routable net fail (a forced detour past the
    // margin). Retry those serially with the full grid, in fixed net order
    // after everything else committed — same schedule for any jobs/depth.
    bool any_failed = false;
    for (const auto ti : ripped) any_failed |= !state[ti].route.success;
    if (any_failed) {
      auto s = searchers.acquire();
      s->set_window(grid_rect);
      for (const auto ti : ripped) {
        if (state[ti].route.success) continue;
        for (const auto nidx : state[ti].nodes) cong.add_usage(nidx, -1);
        s->set_net(util::task_seed(opts_.seed, ti));
        route_net(grid, tasks[ti], *s, state[ti]);
        for (const auto nidx : state[ti].nodes) cong.add_usage(nidx, 1);
      }
      searchers.release(std::move(s));
    }
  };

  auto route_batch = [&](const std::vector<std::size_t>& ripped) {
    if (opts_.partition == RoutePartition::Tree)
      route_tree_batch(ripped);
    else
      route_rounds_batch(ripped);
  };

  // Round 0: route everything.
  std::vector<std::size_t> ripped = order;
  route_batch(ripped);

  // Negotiated congestion, snapshot-commit style: keep nets greedily up to
  // each node's capacity (in commit order), rip the excess, re-route the
  // ripped nets in parallel against the kept usage + bumped history, commit,
  // repeat. Unlike rip-everything-overflowing, the kept nets pin the tracks
  // they legally fill, so re-routed nets see full tracks as expensive and
  // spread instead of oscillating in lockstep.
  for (int pass = 1; pass < opts_.passes; ++pass) {
    if (cong.count_overflow() == 0) break;
    cong.bump_history();
    cong.set_pressure(1.0 + static_cast<double>(pass));

    ripped.clear();
    cong.clear_usage();
    for (const auto ti : order) {
      TaskState& st = state[ti];
      bool rip = !st.route.success;
      if (!rip) {
        for (const auto nidx : st.nodes) {
          if (!cong.fits(nidx, grid.at(nidx).layer)) {
            rip = true;
            break;
          }
        }
      }
      if (rip) {
        st.nodes.clear();
        st.route.segments.clear();
        ripped.push_back(ti);
      } else {
        for (const auto nidx : st.nodes) cong.add_usage(nidx, 1);
      }
    }
    route_batch(ripped);
  }

  result.routes.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    result.routes[i] = std::move(state[i].route);
  result.stats = collect_stats(grid, result.routes);
  result.stats.overflowed_gcells = cong.count_overflow();
  return result;
}

}  // namespace sm::route
