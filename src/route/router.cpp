#include "route/router.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace sm::route {

using netlist::MetalStack;
using util::GridPoint;
using util::Point;

double RoutingStats::total_wire_um() const {
  double s = 0;
  for (const double w : wire_um) s += w;
  return s;
}

std::uint64_t RoutingStats::total_vias() const {
  std::uint64_t s = 0;
  for (const auto v : vias) s += v;
  return s;
}

std::vector<RouteTask> make_tasks(const netlist::Netlist& nl,
                                  const place::Placement& pl,
                                  const std::vector<int>& min_layer_of) {
  std::vector<RouteTask> tasks;
  tasks.reserve(nl.num_nets());
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const auto& net = nl.net(n);
    if (net.sinks.empty()) continue;  // nothing to connect
    RouteTask t;
    t.net = n;
    t.min_layer = (n < min_layer_of.size()) ? min_layer_of[n] : 1;
    t.terminals.push_back({pl.of(net.driver), nl.type_of(net.driver).pin_layer});
    for (const auto& s : net.sinks)
      t.terminals.push_back({pl.of(s.cell), nl.type_of(s.cell).pin_layer});
    tasks.push_back(std::move(t));
  }
  return tasks;
}

RoutingStats collect_stats(const RouteGrid& grid,
                           const std::vector<NetRoute>& routes) {
  RoutingStats st;
  for (const auto& r : routes) {
    if (!r.success) {
      ++st.failed_nets;
      continue;
    }
    for (const auto& seg : r.segments) {
      if (seg.is_via()) {
        const int lo = std::min(seg.a.layer, seg.b.layer);
        const int hi = std::max(seg.a.layer, seg.b.layer);
        for (int l = lo; l < hi; ++l) ++st.vias[static_cast<std::size_t>(l)];
      } else {
        st.wire_um[static_cast<std::size_t>(seg.a.layer)] +=
            seg.gcell_length() * grid.gcell_um();
      }
    }
  }
  return st;
}

namespace {

/// Shared search state with epoch-stamped per-search arrays so repeated A*
/// runs cost O(visited), not O(grid).
class Maze {
 public:
  Maze(const RouteGrid& grid, const MetalStack& stack,
       const RouterOptions& opts)
      : grid_(&grid), stack_(&stack), opts_(&opts) {
    const std::size_t n = grid.num_nodes();
    usage_.assign(n, 0);
    history_.assign(n, 0.0f);
    gscore_.assign(n, 0.0f);
    parent_.assign(n, 0);
    epoch_mark_.assign(n, 0);
    closed_mark_.assign(n, 0);
    target_mark_map_.assign(n, 0);
    cap_.resize(static_cast<std::size_t>(grid.layers()) + 1);
    for (int l = 1; l <= grid.layers(); ++l)
      cap_[static_cast<std::size_t>(l)] = grid.capacity(stack, l);

    blocked_.assign(n, 0);
    for (const auto& b : opts.blockages) {
      const GridPoint lo = grid.snap(b.region.lo, 1);
      const GridPoint hi = grid.snap(b.region.hi, 1);
      for (int l = std::max(1, b.min_layer);
           l <= std::min(grid.layers(), b.max_layer); ++l)
        for (int y = lo.y; y <= hi.y; ++y)
          for (int x = lo.x; x <= hi.x; ++x)
            blocked_[grid.index({x, y, l})] = 1;
    }
  }

  const RouteGrid& grid() const { return *grid_; }

  int capacity(int layer) const { return cap_[static_cast<std::size_t>(layer)]; }
  int usage_at(std::size_t idx) const { return usage_[idx]; }

  void add_usage(std::size_t idx, int delta) {
    usage_[idx] = static_cast<std::int32_t>(usage_[idx] + delta);
  }

  /// PathFinder cost of stepping onto node `idx`. The present-overuse
  /// penalty grows with each negotiation round (set_pressure), the classic
  /// PathFinder schedule that forces convergence.
  double node_cost(std::size_t idx, int layer) const {
    const int over = usage_[idx] + 1 - cap_[static_cast<std::size_t>(layer)];
    double c = 1.0 + static_cast<double>(history_[idx]);
    if (over > 0) c += opts_->overflow_penalty * pressure_ * over;
    return c;
  }

  void set_pressure(double p) { pressure_ = p; }

  void bump_history() {
    for (std::size_t i = 0; i < usage_.size(); ++i) {
      const GridPoint g = grid_->at(i);
      const int over = usage_[i] - cap_[static_cast<std::size_t>(g.layer)];
      if (over > 0)
        history_[i] += static_cast<float>(opts_->history_increment * over);
    }
  }

  std::size_t count_overflow() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < usage_.size(); ++i) {
      const GridPoint g = grid_->at(i);
      if (usage_[i] > cap_[static_cast<std::size_t>(g.layer)]) ++n;
    }
    return n;
  }

  /// A* from `start` to any node in `targets` (marked via target_mark_).
  /// Layers below `min_layer` are off-limits. Returns the reached target
  /// node or npos; parents_ encodes the path.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t search(std::size_t start, const std::vector<std::size_t>& targets,
                     int min_layer) {
    ++epoch_;
    // Mark targets and compute their bbox for the heuristic.
    target_epoch_ = epoch_;
    tminx_ = tminy_ = std::numeric_limits<int>::max();
    tmaxx_ = tmaxy_ = std::numeric_limits<int>::min();
    for (const auto t : targets) {
      closed_mark_[t] = 0;  // ensure not stale-closed
      target_set_.push_back(t);
      const GridPoint g = grid_->at(t);
      tminx_ = std::min(tminx_, g.x);
      tmaxx_ = std::max(tmaxx_, g.x);
      tminy_ = std::min(tminy_, g.y);
      tmaxy_ = std::max(tmaxy_, g.y);
      target_mark(t) = epoch_;
    }

    using QItem = std::pair<double, std::size_t>;  // (f, node)
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> open;
    gscore_[start] = 0.0f;
    epoch_mark_[start] = epoch_;
    parent_[start] = static_cast<std::uint32_t>(start);
    open.emplace(heuristic(start), start);

    std::size_t found = npos;
    while (!open.empty()) {
      const auto [f, node] = open.top();
      open.pop();
      if (closed_mark_[node] == epoch_) continue;
      closed_mark_[node] = epoch_;
      if (target_mark(node) == epoch_) {
        found = node;
        break;
      }
      const GridPoint g = grid_->at(node);
      auto try_step = [&](const GridPoint& ng, double step_cost) {
        if (!grid_->in_bounds(ng) || ng.layer < min_layer) return;
        const std::size_t ni = grid_->index(ng);
        // Blockages forbid lateral wiring; vias (layer changes) pass.
        if (ng.layer == g.layer && blocked_[ni]) return;
        if (closed_mark_[ni] == epoch_) return;
        const double ng_cost = static_cast<double>(gscore_[node]) + step_cost +
                               node_cost(ni, ng.layer);
        if (epoch_mark_[ni] == epoch_ &&
            static_cast<double>(gscore_[ni]) <= ng_cost)
          return;
        epoch_mark_[ni] = epoch_;
        gscore_[ni] = static_cast<float>(ng_cost);
        parent_[ni] = static_cast<std::uint32_t>(node);
        open.emplace(ng_cost + heuristic(ni), ni);
      };
      const auto dir = stack_->layer(g.layer).preferred;
      if (dir == netlist::Direction::Horizontal) {
        try_step({g.x - 1, g.y, g.layer}, 0.0);
        try_step({g.x + 1, g.y, g.layer}, 0.0);
      } else {
        try_step({g.x, g.y - 1, g.layer}, 0.0);
        try_step({g.x, g.y + 1, g.layer}, 0.0);
      }
      try_step({g.x, g.y, g.layer - 1}, opts_->via_cost);
      try_step({g.x, g.y, g.layer + 1}, opts_->via_cost);
    }

    // Clear target marks for next search.
    for (const auto t : target_set_) target_mark(t) = 0;
    target_set_.clear();
    return found;
  }

  /// Walk parents from `node` back to the search start.
  std::vector<std::size_t> backtrack(std::size_t node) const {
    std::vector<std::size_t> path{node};
    while (parent_[node] != node) {
      node = parent_[node];
      path.push_back(node);
    }
    return path;
  }

 private:
  double heuristic(std::size_t idx) const {
    const GridPoint g = grid_->at(idx);
    double h = 0;
    if (g.x < tminx_) h += tminx_ - g.x;
    if (g.x > tmaxx_) h += g.x - tmaxx_;
    if (g.y < tminy_) h += tminy_ - g.y;
    if (g.y > tmaxy_) h += g.y - tmaxy_;
    return h;  // >= remaining steps, each of cost >= 1
  }

  std::uint32_t& target_mark(std::size_t idx) { return target_mark_map_[idx]; }

  const RouteGrid* grid_;
  const MetalStack* stack_;
  const RouterOptions* opts_;
  std::vector<std::int32_t> usage_;
  std::vector<float> history_;
  std::vector<float> gscore_;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> epoch_mark_;
  std::vector<std::uint32_t> closed_mark_;
  std::vector<std::uint32_t> target_mark_map_;
  std::vector<std::uint8_t> blocked_;
  std::vector<std::size_t> target_set_;
  std::vector<int> cap_;
  std::uint32_t epoch_ = 0;
  std::uint32_t target_epoch_ = 0;
  double pressure_ = 1.0;
  int tminx_ = 0, tmaxx_ = 0, tminy_ = 0, tmaxy_ = 0;
};

/// Compress a node path into straight wire segments and single via segments.
void emit_segments(const RouteGrid& grid, const std::vector<std::size_t>& path,
                   std::vector<RouteSegment>& out) {
  if (path.size() < 2) return;
  GridPoint run_start = grid.at(path.back());
  GridPoint prev = run_start;
  // Walk from search start to end (path is backtracked, so reverse).
  for (std::size_t k = path.size() - 1; k-- > 0;) {
    const GridPoint cur = grid.at(path[k]);
    if (cur.layer != prev.layer) {  // via step
      if (!(run_start == prev)) out.push_back({run_start, prev});
      out.push_back({prev, cur});
      run_start = cur;
    } else if ((run_start.x != prev.x && cur.y != prev.y) ||
               (run_start.y != prev.y && cur.x != prev.x)) {
      // Direction change: close the finished run; the new run starts at
      // prev so the prev->cur step is not lost.
      out.push_back({run_start, prev});
      run_start = prev;
    }
    prev = cur;
  }
  if (!(run_start == prev)) out.push_back({run_start, prev});
}

/// Nodes a (terminal) via stack occupies from the pin layer up to `to_layer`.
void stack_nodes(const RouteGrid& grid, const Terminal& t, int to_layer,
                 std::vector<std::size_t>& out) {
  const GridPoint base = grid.snap(t.pos, t.layer);
  const int lo = std::min(base.layer, to_layer);
  const int hi = std::max(base.layer, to_layer);
  for (int l = lo; l <= hi; ++l)
    out.push_back(grid.index({base.x, base.y, l}));
}

struct TaskState {
  std::vector<std::size_t> nodes;  ///< all grid nodes the net occupies
  NetRoute route;
};

}  // namespace

RoutingResult Router::route(const std::vector<RouteTask>& tasks,
                            const util::Rect& die,
                            const MetalStack& stack) const {
  RoutingResult result;
  result.grid = RouteGrid(die, opts_.gcell_um, stack.num_layers());
  const RouteGrid& grid = result.grid;
  Maze maze(grid, stack, opts_);

  std::vector<TaskState> state(tasks.size());

  // Route order: short nets first (they have the least flexibility).
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto task_span = [&](const RouteTask& t) {
    util::Rect box = util::Rect::around(t.terminals.empty() ? Point{}
                                                            : t.terminals[0].pos);
    for (const auto& term : t.terminals) box.expand(term.pos);
    return box.half_perimeter();
  };
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return task_span(tasks[a]) < task_span(tasks[b]);
  });

  auto route_one = [&](std::size_t ti) {
    const RouteTask& task = tasks[ti];
    TaskState& st = state[ti];
    st.route = NetRoute{};
    st.route.net = task.net;
    st.route.min_layer = task.min_layer;
    st.nodes.clear();
    if (task.terminals.empty()) return;
    const int ml = std::max(1, task.min_layer);

    // Seed the net tree with the driver terminal's via stack.
    std::vector<std::size_t> tree;
    stack_nodes(grid, task.terminals[0], ml, tree);
    if (ml > task.terminals[0].layer) {
      const GridPoint b = grid.snap(task.terminals[0].pos, task.terminals[0].layer);
      st.route.segments.push_back({b, {b.x, b.y, ml}});
    }
    bool ok = true;

    // Connect remaining terminals nearest-first (Prim-like order).
    std::vector<std::size_t> remaining;
    for (std::size_t k = 1; k < task.terminals.size(); ++k) remaining.push_back(k);
    std::stable_sort(remaining.begin(), remaining.end(),
                     [&](std::size_t a, std::size_t b) {
                       return util::manhattan(task.terminals[a].pos,
                                              task.terminals[0].pos) <
                              util::manhattan(task.terminals[b].pos,
                                              task.terminals[0].pos);
                     });

    for (const std::size_t k : remaining) {
      const Terminal& term = task.terminals[k];
      const GridPoint entry_pin = grid.snap(term.pos, term.layer);
      const GridPoint entry{entry_pin.x, entry_pin.y, std::max(entry_pin.layer, ml)};
      const std::size_t entry_idx = grid.index(entry);

      // Degenerate: terminal already on the tree.
      const bool on_tree =
          std::find(tree.begin(), tree.end(), entry_idx) != tree.end();
      std::size_t hit = entry_idx;
      if (!on_tree) {
        hit = maze.search(entry_idx, tree, ml);
        if (hit == Maze::npos) {
          ok = false;
          continue;
        }
        const auto path = maze.backtrack(hit);
        emit_segments(grid, path, st.route.segments);
        // path runs hit -> ... -> entry (backtrack order); add all to tree.
        for (const auto nidx : path)
          if (std::find(tree.begin(), tree.end(), nidx) == tree.end())
            tree.push_back(nidx);
      }
      // Terminal via stack (pin layer up to the entry layer).
      if (entry.layer > entry_pin.layer) {
        st.route.segments.push_back({entry_pin, entry});
        for (int l = entry_pin.layer; l <= entry.layer; ++l) {
          const std::size_t nidx = grid.index({entry.x, entry.y, l});
          if (std::find(tree.begin(), tree.end(), nidx) == tree.end())
            tree.push_back(nidx);
        }
      }
    }

    st.route.success = ok;
    // Pin-layer nodes at the terminals do not consume routing capacity:
    // pin access is already accounted in the per-layer capacity derate, and
    // several pins legitimately share one gcell. Everything else does.
    std::vector<std::size_t> pin_nodes;
    for (const auto& term : task.terminals)
      pin_nodes.push_back(grid.index(grid.snap(term.pos, term.layer)));
    std::sort(pin_nodes.begin(), pin_nodes.end());
    st.nodes.clear();
    for (const auto nidx : tree)
      if (!std::binary_search(pin_nodes.begin(), pin_nodes.end(), nidx))
        st.nodes.push_back(nidx);
    for (const auto nidx : st.nodes) maze.add_usage(nidx, 1);
  };

  // Initial pass.
  for (const auto ti : order) route_one(ti);

  // Negotiated congestion: rip up nets crossing overflowed nodes, bump
  // history, re-route.
  for (int pass = 1; pass < opts_.passes; ++pass) {
    if (maze.count_overflow() == 0) break;
    maze.bump_history();
    maze.set_pressure(1.0 + static_cast<double>(pass));
    std::vector<std::size_t> ripped;
    for (const auto ti : order) {
      TaskState& st = state[ti];
      bool over = !st.route.success;
      for (const auto nidx : st.nodes) {
        const GridPoint g = grid.at(nidx);
        if (maze.usage_at(nidx) > maze.capacity(g.layer)) {
          over = true;
          break;
        }
      }
      if (over) {
        for (const auto nidx : st.nodes) maze.add_usage(nidx, -1);
        st.nodes.clear();
        st.route.segments.clear();
        ripped.push_back(ti);
      }
    }
    for (const auto ti : ripped) route_one(ti);
  }

  result.routes.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    result.routes[i] = std::move(state[i].route);
  result.stats = collect_stats(grid, result.routes);
  result.stats.overflowed_gcells = maze.count_overflow();
  return result;
}

}  // namespace sm::route
