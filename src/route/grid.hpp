// Routing grid: the die tessellated into gcells, replicated across the ten
// metal layers. Wires run along a layer's preferred direction; vias connect
// vertically adjacent layers at a gcell.
#pragma once

#include "netlist/tech.hpp"
#include "util/geometry.hpp"

#include <cstdint>
#include <vector>

namespace sm::route {

class RouteGrid {
 public:
  RouteGrid() = default;
  /// Tessellate `die` into gcells of roughly `gcell_um` pitch.
  RouteGrid(const util::Rect& die, double gcell_um, int num_layers);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int layers() const { return layers_; }
  double gcell_um() const { return gcell_um_; }
  const util::Rect& die() const { return die_; }

  std::size_t num_nodes() const {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_) *
           static_cast<std::size_t>(layers_);
  }

  /// Dense node index for (x, y, layer). Layer is 1-based.
  std::size_t index(const util::GridPoint& g) const {
    return (static_cast<std::size_t>(g.layer - 1) * static_cast<std::size_t>(ny_) +
            static_cast<std::size_t>(g.y)) *
               static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(g.x);
  }
  util::GridPoint at(std::size_t idx) const {
    const auto nxy = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
    util::GridPoint g;
    g.layer = static_cast<std::int32_t>(idx / nxy) + 1;
    const std::size_t rem = idx % nxy;
    g.y = static_cast<std::int32_t>(rem / static_cast<std::size_t>(nx_));
    g.x = static_cast<std::int32_t>(rem % static_cast<std::size_t>(nx_));
    return g;
  }

  /// Snap a physical point to the containing gcell on `layer`.
  util::GridPoint snap(const util::Point& p, int layer = 1) const;
  /// Center of a gcell in microns.
  util::Point to_um(const util::GridPoint& g) const;

  bool in_bounds(const util::GridPoint& g) const {
    return g.x >= 0 && g.x < nx_ && g.y >= 0 && g.y < ny_ && g.layer >= 1 &&
           g.layer <= layers_;
  }

  /// Routing-track capacity of one gcell on `layer` (tracks crossing it).
  int capacity(const netlist::MetalStack& stack, int layer) const;

 private:
  util::Rect die_;
  double gcell_um_ = 2.8;
  int nx_ = 1, ny_ = 1, layers_ = 10;
};

}  // namespace sm::route
