// Spatial partition tree over net search windows — the ParaDRo/VTR
// structure that lets PathFinder route nets *truly concurrently* against
// live congestion instead of sharding rounds against a frozen snapshot.
//
// The tree recursively bisects the routing grid with axis-aligned cutlines.
// Each net carries an inclusive window (its terminal bounding box inflated
// by RouterOptions::bbox_margin — the region its A* search is clipped to)
// and lands at the *deepest* node whose region contains that window; nets
// straddling a cutline stay at the branch node. Because sibling regions are
// disjoint and a net only ever reads or writes congestion inside its own
// window, the nets of two sibling subtrees can route concurrently with live
// usage updates and still produce schedule-independent results. The router
// exploits exactly that (route/router.cpp).
//
// Cutline selection is prefix-sum based: for every candidate coordinate the
// builder knows, in O(1) after an O(extent + nets) scan, the estimated
// routing work strictly left of the cut, strictly right of it, and crossing
// it. It picks the cut minimizing max(left, right) + crossing — the
// critical-path estimate of the node when the children run concurrently and
// the crossing nets serialize after them — over both axes.
//
// Determinism: the tree is a pure function of (bounds, nets, limits). It
// never looks at thread counts, and the router's schedule knobs
// (RouterOptions::jobs, partition_depth) never reach the builder — which is
// what keeps routed layouts byte-identical across all of them
// (tests/test_partition_tree.cpp, tests/test_route.cpp).
#pragma once

#include "util/geometry.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sm::route {

/// One net as the tree builder sees it.
struct PartitionNet {
  std::size_t task = 0;    ///< caller's net/task index (opaque to the tree)
  util::GridRect window;   ///< search window; containment decides placement
  std::uint64_t work = 1;  ///< routing-work estimate for cutline balancing
};

struct PartitionNode {
  util::GridRect region;
  /// Indices into PartitionTree::nets(), preserving the caller's input
  /// order — the router's fixed commit order within a node.
  std::vector<std::size_t> nets;
  int parent = -1;
  int left = -1, right = -1;
  int depth = 0;

  bool is_leaf() const { return left < 0 && right < 0; }
};

/// Build-termination knobs (all pure inputs to the tree shape; the router
/// leaves them at their defaults so the tree stays a canonical function of
/// the nets and the grid).
struct PartitionLimits {
  /// Nodes with fewer nets stay leaves (splitting is pure overhead).
  std::size_t min_nets = 16;
  /// Never cut a region into a side thinner than this many gcells.
  std::int32_t min_extent = 4;
  /// Hard recursion bound (regions halve, so this is never the binding
  /// constraint on real grids; it bounds adversarial inputs).
  int max_depth = 64;
};

class PartitionTree {
 public:
  using Limits = PartitionLimits;

  PartitionTree() = default;

  /// Build over `nets` (in the caller's commit-priority order; every node
  /// keeps its slice of them in that order). Windows must lie inside
  /// `bounds`. Pure function of the arguments.
  PartitionTree(const util::GridRect& bounds, std::vector<PartitionNet> nets,
                const Limits& limits = PartitionLimits());

  bool empty() const { return nodes_.empty(); }
  /// Node 0 is the root when the tree is non-empty.
  const std::vector<PartitionNode>& nodes() const { return nodes_; }
  const std::vector<PartitionNet>& nets() const { return nets_; }
  /// Deepest node depth (root = 0); -1 when empty.
  int depth() const { return depth_; }

  /// Node indices grouped by depth: level(d) lists every node whose depth
  /// is exactly d, in node-index order. The router's level-synchronous
  /// scheduler walks these deepest-first.
  const std::vector<int>& level(int d) const { return levels_[static_cast<std::size_t>(d)]; }

 private:
  void build(int node, std::vector<std::size_t> nets, const Limits& limits);

  std::vector<PartitionNode> nodes_;
  std::vector<PartitionNet> nets_;
  std::vector<std::vector<int>> levels_;
  int depth_ = -1;
};

}  // namespace sm::route
