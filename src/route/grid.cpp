#include "route/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sm::route {

RouteGrid::RouteGrid(const util::Rect& die, double gcell_um, int num_layers)
    : die_(die), gcell_um_(gcell_um), layers_(num_layers) {
  if (gcell_um <= 0) throw std::invalid_argument("RouteGrid: gcell_um <= 0");
  if (num_layers < 2) throw std::invalid_argument("RouteGrid: need >= 2 layers");
  nx_ = std::max(1, static_cast<int>(std::ceil(die.width() / gcell_um)));
  ny_ = std::max(1, static_cast<int>(std::ceil(die.height() / gcell_um)));
}

util::GridPoint RouteGrid::snap(const util::Point& p, int layer) const {
  util::GridPoint g;
  g.x = std::clamp(static_cast<int>((p.x - die_.lo.x) / gcell_um_), 0, nx_ - 1);
  g.y = std::clamp(static_cast<int>((p.y - die_.lo.y) / gcell_um_), 0, ny_ - 1);
  g.layer = std::clamp(layer, 1, layers_);
  return g;
}

util::Point RouteGrid::to_um(const util::GridPoint& g) const {
  return {die_.lo.x + (static_cast<double>(g.x) + 0.5) * gcell_um_,
          die_.lo.y + (static_cast<double>(g.y) + 0.5) * gcell_um_};
}

int RouteGrid::capacity(const netlist::MetalStack& stack, int layer) const {
  // Tracks per gcell, derated: M1 loses most tracks to pin access and
  // intra-cell wiring, the top layers to power distribution. Rounding is
  // to-nearest so fine grids do not collapse capacity to 1 track.
  const double pitch = stack.layer(layer).pitch_um;
  const double derate = (layer == 1) ? 0.40 : (layer >= 9 ? 0.6 : 0.80);
  return std::max(1, static_cast<int>(gcell_um_ / pitch * derate + 0.5));
}

}  // namespace sm::route
