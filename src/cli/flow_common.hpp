// Shared plumbing of the sm_flow subcommands: benchmark selection, flow
// option parsing, and the protect-run cache each stage builds on. The whole
// pipeline is deterministic in (bench, scale, seed), so subcommands simply
// recompute the stages they need instead of serializing intermediate state.
#pragma once

#include "core/protect.hpp"
#include "core/split.hpp"
#include "netlist/netlist.hpp"
#include "util/args.hpp"
#include "workloads/generator.hpp"

#include <cstdint>
#include <string>

namespace sm::cli {

/// Options every subcommand understands (parsed from util::Args).
struct FlowSetup {
  std::string bench = "c880";
  bool superblue = false;     ///< bench is a superblue profile
  double scale = 0.02;        ///< superblue clone scale
  std::uint64_t seed = 1;
  int split_layer = 4;
  std::size_t patterns = 100000;  ///< simulation patterns for OER/HD
  double target_oer = 0.995;
  workloads::GenSpec spec;
  core::FlowOptions flow;
  core::RandomizeOptions rand_opts;
};

/// Parse the common options and resolve the benchmark profile. Throws
/// std::invalid_argument for unknown benchmark names.
FlowSetup parse_setup(const util::Args& args);

/// Generate the benchmark netlist for a setup.
netlist::Netlist make_netlist(const netlist::CellLibrary& lib,
                              const FlowSetup& setup);

/// Run the paper's protection flow for a setup.
core::ProtectedDesign run_protect(const netlist::Netlist& nl,
                                  const FlowSetup& setup);

/// FEOL view of a layout after the split cut.
core::SplitView run_split(const netlist::Netlist& physical,
                          const core::LayoutResult& layout,
                          const FlowSetup& setup);

/// Write `text` to `path` ("-" or "" = stdout). Returns false on I/O error.
bool write_output(const std::string& path, const std::string& text);

}  // namespace sm::cli
