#include "cli/flow_common.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <stdexcept>

namespace sm::cli {

FlowSetup parse_setup(const util::Args& args) {
  FlowSetup s;
  s.bench = args.get("bench", s.bench);
  s.scale = args.get_double("scale", s.scale);
  s.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  s.split_layer = static_cast<int>(args.get_int("split-layer", s.split_layer));
  s.patterns = static_cast<std::size_t>(
      args.get_int("patterns", static_cast<std::int64_t>(s.patterns)));
  s.target_oer = args.get_double("target-oer", s.target_oer);

  const auto& sb = workloads::superblue_names();
  const auto& synth = workloads::synthetic_names();
  const bool is_sb = std::find(sb.begin(), sb.end(), s.bench) != sb.end();
  const bool is_synth =
      std::find(synth.begin(), synth.end(), s.bench) != synth.end();
  // Synthetic ladder benches take the superblue tuning: both are large flat
  // designs routed with M8 pins and a derated utilization.
  s.superblue = is_sb || is_synth;
  s.spec = is_sb      ? workloads::superblue_profile(s.bench, s.scale)
           : is_synth ? workloads::synthetic_profile(s.bench, s.scale)
                      : workloads::iscas85_profile(s.bench);

  // Same flow tuning the benches use (bench/common.hpp): M6 pins for ISCAS,
  // M8 for superblue, utilization derated for a congestion-free router.
  s.flow.seed = s.seed;
  s.flow.placer.seed = s.seed;
  if (s.superblue) {
    s.flow.lift_layer = 8;
    s.flow.placer.target_utilization = s.spec.utilization * 0.5;
    s.flow.placer.detailed_passes = 1;
  } else {
    s.flow.lift_layer = 6;
    s.flow.placer.target_utilization = 0.45;
    s.flow.placer.detailed_passes = 2;
  }
  s.flow.lift_layer =
      static_cast<int>(args.get_int("lift-layer", s.flow.lift_layer));
  s.flow.buffering = args.get_bool("buffering", false);

  // Layout-engine knobs, strictly validated like the sweep's numeric flags
  // (get_count throws on anything but plain digits). --jobs shards the
  // router's negotiation rounds — and, for attack/report, the attack
  // phases too; the phases run one after another, so this never stacks
  // thread pools. All results are bit-identical for any --jobs value.
  s.flow.router.jobs = args.get_count("jobs", 1);
  // --route-partition=rounds falls back to the PR-5 snapshot-commit
  // scheduler; --partition-depth caps the tree's parallel fan-out depth
  // (scheduling only — routed layouts are identical for every value).
  if (args.has("route-partition"))
    s.flow.router.partition =
        route::route_partition_from_string(args.get("route-partition", ""));
  if (args.has("partition-depth"))
    s.flow.router.partition_depth =
        static_cast<int>(args.get_count("partition-depth", 0));
  const std::size_t route_passes = args.get_count("route-passes", 3);
  if (route_passes == 0)
    throw std::invalid_argument("--route-passes must be >= 1");
  s.flow.router.passes = static_cast<int>(route_passes);
  if (args.has("detailed-passes"))
    s.flow.placer.detailed_passes =
        static_cast<int>(args.get_count("detailed-passes", 0));

  s.rand_opts.seed = s.seed;
  s.rand_opts.target_oer = s.target_oer;
  s.rand_opts.check_patterns = 4096;
  return s;
}

netlist::Netlist make_netlist(const netlist::CellLibrary& lib,
                              const FlowSetup& setup) {
  return workloads::generate(lib, setup.spec, setup.seed);
}

core::ProtectedDesign run_protect(const netlist::Netlist& nl,
                                  const FlowSetup& setup) {
  return core::protect(nl, setup.rand_opts, setup.flow);
}

core::SplitView run_split(const netlist::Netlist& physical,
                          const core::LayoutResult& layout,
                          const FlowSetup& setup) {
  return core::split_layout(physical, layout.placement, layout.routing,
                            layout.tasks, layout.num_net_tasks,
                            setup.split_layer);
}

bool write_output(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::cout << text;
    return static_cast<bool>(std::cout);
  }
  std::ofstream os(path);
  os << text;
  if (!os) {
    std::cerr << "sm_flow: cannot write " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace sm::cli
