// sm_flow: unified driver for the paper's pipeline (Patnaik et al., DAC'18).
//
//   sm_flow protect  — randomize, place, embed correction cells, lift, route,
//                      restore through the BEOL; prints swaps/OER/HD/PPA and
//                      optionally exports the erroneous Verilog / layout DEF.
//   sm_flow split    — cut the layout after the split layer; prints the
//                      FEOL fragment statistics an attacker would start from
//                      and optionally exports the FEOL-only DEF with VPINS.
//   sm_flow attack   — run the network-flow proximity attack on the FEOL;
//                      prints CCR / CCR-protected / OER / HD.
//   sm_flow report   — protected vs unprotected side-by-side: security and
//                      PPA in one table (the quickstart, tabulated).
//   sm_flow sweep    — parallel attack sweep over {benchmarks × seeds ×
//                      split layers × defenses} through util::ThreadPool;
//                      bit-identical metrics for any --jobs value. With
//                      --store the sweep appends every completed cell to an
//                      append-only JSONL log (crash-safe resume via
//                      --resume, deterministic --shard i/N splits).
//   sm_flow materialize — rebuild the sweep tables from store logs alone.
//   sm_flow serve    — fault-tolerant sweep supervisor: dispatches missing
//                      grid cells to child `sm_flow sweep` worker processes
//                      it forks and monitors (per-cell watchdog, retry with
//                      backoff, poison-cell quarantine). Survives worker
//                      crashes, hangs, and torn logs; converges to the same
//                      materialized table as a clean run.
//   sm_flow list     — available benchmark profiles.
//
// Every stage is deterministic in (bench, scale, seed), so later stages
// recompute earlier ones instead of deserializing them; use --out-* to export
// the artifacts a real tapeout handoff would ship.
#include "cli/flow_common.hpp"

#include "attack/proximity.hpp"
#include "core/defio.hpp"
#include "netlist/verilog.hpp"
#include "sweep/store.hpp"
#include "sweep/supervisor.hpp"
#include "sweep/sweep.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <exception>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

namespace sm::cli {
namespace {

int usage(std::FILE* to) {
  std::fputs(
      "usage: sm_flow <command> [--options]\n"
      "\n"
      "commands:\n"
      "  protect   run the full protection flow and print its summary\n"
      "            [--out-verilog=F] erroneous netlist  [--out-def=F] layout\n"
      "  split     cut the layout, print FEOL fragment/vpin statistics\n"
      "            [--out-def=F] FEOL-only DEF with VPINS  [--unprotected]\n"
      "            (both: --jobs shards the router; layouts are\n"
      "            bit-identical for any --jobs value)\n"
      "  attack    proximity attack on the FEOL; CCR/OER/HD\n"
      "            [--unprotected] [--no-direction] [--no-load] [--no-loops]\n"
      "            [--candidates=N] [--jobs=N] [--index-threshold=N]\n"
      "            [--mcmf=warm|cold] loop-repair solver: warm keeps one\n"
      "            live min-cost-flow and re-routes only removed arcs\n"
      "            (default), cold rebuilds each round; both produce the\n"
      "            identical assignment\n"
      "            [--sim-lanes=N] simulation lane width 1|4|8 (0 = auto);\n"
      "            OER/HD are bit-identical for any lane width\n"
      "            (results are bit-identical for any --jobs value)\n"
      "  report    protected vs unprotected security + PPA table\n"
      "            [--jobs=N] [--index-threshold=N]\n"
      "  sweep     parallel attack sweep over {benchmarks x seeds x split\n"
      "            layers x defenses x attackers}; metrics are bit-identical\n"
      "            for any --jobs value\n"
      "            [--jobs=N] [--grid=SPEC] [--benchmarks=a,b] [--seeds=1,2]\n"
      "            [--splits=3,4,5] [--defenses=unprotected,proposed,\n"
      "              place-perturb,g-color,g-type1,g-type2,pin-swap,\n"
      "              route-perturb,route-blockage]\n"
      "            [--attackers=proximity,crouting,sat] attacker axis:\n"
      "            network-flow proximity, crouting (concerted-routing\n"
      "            candidate lists), sat (proximity + SAT/sim equivalence\n"
      "            check of the recovered netlist)\n"
      "            [--quick] [--csv=F] [--json=F] [--summary-only]\n"
      "            (--bench/--seed/--split-layer/--attacker alias the grid\n"
      "            dimensions)\n"
      "            [--store=F] append every completed cell to an append-only\n"
      "            JSONL result log keyed by config hash (fsync per cell)\n"
      "            [--resume] skip cells already in the store, compute only\n"
      "            the missing ones (bit-identical to a from-scratch run)\n"
      "            [--shard=i/N] run only task i mod N of the grid; shard\n"
      "            logs merge (cat) into one store\n"
      "            [--dry-run] print the expanded cell list with config\n"
      "            hashes and shard assignments, then exit without running\n"
      "  materialize  rebuild sweep tables from store logs without running\n"
      "            anything: --store=F[,F2,...] plus the sweep grid flags;\n"
      "            [--csv=F] [--json=F] [--summary-only]\n"
      "            exit codes: 0 complete, 1 cells missing from the logs\n"
      "            (incomplete), 2 only quarantined/failed cells absent\n"
      "            (degraded) — both listed sorted on stderr\n"
      "  serve     fault-tolerant sweep supervisor: computes the missing\n"
      "            cells of the grid by forking `sm_flow sweep` worker\n"
      "            processes and riding through their failures\n"
      "            --store=F (required) plus the sweep grid flags\n"
      "            [--workers=N] concurrent worker processes (default 1)\n"
      "            [--cell-timeout=SEC] watchdog wall-clock budget per\n"
      "            missing cell, SIGKILL on expiry (default 300)\n"
      "            [--max-retries=K] worker deaths charged to a cell before\n"
      "            it is quarantined as \"status\":\"failed\" (default 3)\n"
      "            [--backoff-base=MS] first retry delay, doubled per\n"
      "            attempt with deterministic jitter (default 100)\n"
      "            [--verbose] per-worker lifecycle log on stdout\n"
      "            exit codes: 0 converged complete, 2 converged degraded\n"
      "            (some cells quarantined)\n"
      "  list      available benchmark profiles\n"
      "\n"
      "common options:\n"
      "  --bench=NAME     ISCAS-85 or superblue profile (default c880)\n"
      "  --scale=F        superblue clone scale (default 0.02)\n"
      "  --seed=N         master seed (default 1)\n"
      "  --split-layer=N  FEOL/BEOL cut after metal N (default 4)\n"
      "  --lift-layer=N   correction-cell pin layer (default M6/M8)\n"
      "  --patterns=N     simulation patterns for OER/HD (default 100000)\n"
      "  --target-oer=F   randomization stop threshold (default 0.995)\n"
      "  --buffering      enable post-placement drive-strength fixing\n"
      "  --jobs=N         worker threads (router rounds; attack phases for\n"
      "                   attack/report; sweep tasks). 0 = hardware\n"
      "  --route-passes=N router rip-up-and-reroute rounds (default 3)\n"
      "  --route-partition=tree|rounds  router re-route scheduler: spatial\n"
      "                   partition tree with live in-region congestion\n"
      "                   (default) or the legacy snapshot-commit rounds\n"
      "  --partition-depth=N  tree depth where parallel tasks fan out\n"
      "                   (default auto; never changes the layout)\n"
      "  --detailed-passes=N  placer refinement sweeps (default M6 2, M8 1)\n",
      to);
  return to == stderr ? 2 : 0;
}

void print_netlist_line(const char* bench, const netlist::Netlist& nl) {
  std::printf("%s-like netlist: %zu gates, %zu nets, %zu PIs, %zu POs\n",
              bench, nl.num_gates(), nl.num_nets(),
              nl.primary_inputs().size(), nl.primary_outputs().size());
}

void print_protect_summary(const core::ProtectedDesign& design) {
  std::printf(
      "protected: %zu swaps, erroneous-netlist OER %.1f%% / HD %.1f%%, "
      "restoration %s\n",
      design.ledger.entries.size(), 100 * design.oer, 100 * design.hd,
      design.restored_ok ? "EQUIVALENT to original" : "FAILED");
  std::printf("PPA: power %.1f uW, critical path %.0f ps, die %.0f um^2, "
              "wirelength %.0f um\n",
              design.layout.ppa.total_power_uw(),
              design.layout.ppa.critical_path_ps, design.layout.ppa.die_area_um2,
              design.layout.ppa.wirelength_um);
}

/// Output path for `--out-X=FILE`. A bare `--out-X` parses as the flag
/// value "true" (util::Args flag syntax); route that to stdout rather than
/// creating a file literally named "true".
std::string out_path(const util::Args& args, const std::string& key) {
  const std::string v = args.get(key, "-");
  return v == "true" ? "-" : v;
}

attack::ProximityOptions attack_options(const util::Args& args,
                                        const FlowSetup& setup) {
  attack::ProximityOptions a;
  a.eval_patterns = setup.patterns;
  a.seed = setup.seed;
  a.use_direction = !args.has("no-direction");
  a.use_load = !args.has("no-load");
  a.use_loops = !args.has("no-loops");
  a.use_strength_prior = args.get_bool("strength-prior", false);
  a.candidates_per_sink =
      static_cast<int>(args.get_int("candidates", a.candidates_per_sink));
  // Sharding + spatial-index knobs; CCR/OER/HD are bit-identical for any
  // --jobs value and for indexed vs brute-force candidate generation.
  a.jobs = args.get_count("jobs", 1);
  a.index_min_drivers =
      static_cast<int>(args.get_int("index-threshold", a.index_min_drivers));
  // Solver + lane knobs: metrics are bit-identical across both (the warm
  // MCMF and every lane width reproduce the cold/scalar results exactly —
  // test- and CI-enforced), so these only move the wall clock.
  const std::string mcmf = args.get("mcmf", "warm");
  if (mcmf == "warm")
    a.mcmf_warm = true;
  else if (mcmf == "cold")
    a.mcmf_warm = false;
  else
    throw std::invalid_argument("--mcmf must be 'warm' or 'cold'");
  a.sim_lanes = static_cast<std::size_t>(args.get_int("sim-lanes", 0));
  return a;
}

int cmd_protect(const util::Args& args, const FlowSetup& setup) {
  netlist::CellLibrary lib{setup.flow.lift_layer};
  const auto nl = make_netlist(lib, setup);
  print_netlist_line(setup.bench.c_str(), nl);
  const auto design = run_protect(nl, setup);
  print_protect_summary(design);

  if (args.has("out-verilog") &&
      !write_output(out_path(args, "out-verilog"),
                    netlist::to_verilog(design.erroneous)))
    return 1;
  if (args.has("out-def") &&
      !write_output(out_path(args, "out-def"),
                    core::to_def(design.erroneous, design.layout.placement,
                                 design.layout.routing, design.layout.tasks)))
    return 1;
  return design.restored_ok ? 0 : 1;
}

int cmd_split(const util::Args& args, const FlowSetup& setup) {
  netlist::CellLibrary lib{setup.flow.lift_layer};
  const auto nl = make_netlist(lib, setup);
  const bool unprotected = args.has("unprotected");

  std::optional<core::ProtectedDesign> design;
  std::optional<core::LayoutResult> original;
  if (unprotected)
    original = core::layout_original(nl, setup.flow);
  else
    design = run_protect(nl, setup);
  const netlist::Netlist* physical =
      unprotected ? &original->physical(nl) : &design->erroneous;
  const core::LayoutResult* layout =
      unprotected ? &*original : &design->layout;

  const auto view = run_split(*physical, *layout, setup);
  const auto drivers = view.open_driver_fragments();
  const auto sinks = view.open_sink_fragments();
  std::size_t open_pins = 0;
  for (const auto fi : sinks) open_pins += view.fragments[fi].sinks.size();
  std::printf("%s layout of %s, split after M%d:\n",
              unprotected ? "unprotected" : "protected", setup.bench.c_str(),
              setup.split_layer);
  std::printf("  %zu FEOL fragments, %zu vpins\n", view.fragments.size(),
              view.num_vpins());
  std::printf("  %zu open driver fragments, %zu open sink fragments "
              "(%zu hidden sink pins)\n",
              drivers.size(), sinks.size(), open_pins);

  if (args.has("out-def")) {
    std::ostringstream os;
    core::write_split_def(*physical, layout->placement, layout->routing,
                          layout->tasks, layout->num_net_tasks,
                          setup.split_layer, os);
    if (!write_output(out_path(args, "out-def"), os.str())) return 1;
  }
  return 0;
}

int cmd_attack(const util::Args& args, const FlowSetup& setup) {
  netlist::CellLibrary lib{setup.flow.lift_layer};
  const auto nl = make_netlist(lib, setup);
  const auto opts = attack_options(args, setup);

  if (args.has("unprotected")) {
    const auto original = core::layout_original(nl, setup.flow);
    const auto& sized = original.physical(nl);
    const auto view = run_split(sized, original, setup);
    const auto res = attack::proximity_attack(sized, sized,
                                              original.placement, view,
                                              nullptr, opts);
    std::printf("attack on unprotected %s (split M%d): CCR %.1f%%, "
                "OER %.1f%%, HD %.1f%%  (%zu/%zu sinks correct)\n",
                setup.bench.c_str(), setup.split_layer, 100 * res.ccr(),
                100 * res.rates.oer, 100 * res.rates.hd, res.correct,
                res.open_sinks);
    return 0;
  }

  const auto design = run_protect(nl, setup);
  const auto view = run_split(design.erroneous, design.layout, setup);
  const auto res =
      attack::proximity_attack(design.erroneous, design.restored,
                               design.layout.placement, view, &design.ledger,
                               opts);
  std::printf("attack on protected %s (split M%d): CCR %.1f%%, "
              "CCR(randomized nets) %.1f%%, OER %.1f%%, HD %.1f%%\n",
              setup.bench.c_str(), setup.split_layer, 100 * res.ccr(),
              100 * res.ccr_protected(), 100 * res.rates.oer,
              100 * res.rates.hd);
  return 0;
}

int cmd_report(const util::Args& args, const FlowSetup& setup) {
  netlist::CellLibrary lib{setup.flow.lift_layer};
  const auto nl = make_netlist(lib, setup);
  print_netlist_line(setup.bench.c_str(), nl);
  const auto opts = attack_options(args, setup);

  const auto original = core::layout_original(nl, setup.flow);
  const auto design = run_protect(nl, setup);

  const auto& sized = original.physical(nl);
  const auto v0 = run_split(sized, original, setup);
  const auto r0 = attack::proximity_attack(sized, sized, original.placement,
                                           v0, nullptr, opts);
  const auto vp = run_split(design.erroneous, design.layout, setup);
  const auto rp =
      attack::proximity_attack(design.erroneous, design.restored,
                               design.layout.placement, vp, &design.ledger,
                               opts);

  std::printf("protection: %zu swaps, restoration %s\n",
              design.ledger.entries.size(),
              design.restored_ok ? "EQUIVALENT" : "FAILED");
  util::Table table({"Layout", "CCR", "OER", "HD", "Power uW", "Delay ps",
                     "Wirelength um"});
  table.add_row({"original", util::Table::pct(100 * r0.ccr(), 1),
                 util::Table::pct(100 * r0.rates.oer, 1),
                 util::Table::pct(100 * r0.rates.hd, 1),
                 util::Table::num(original.ppa.total_power_uw(), 1),
                 util::Table::num(original.ppa.critical_path_ps, 0),
                 util::Table::num(original.ppa.wirelength_um, 0)});
  table.add_row({"proposed", util::Table::pct(100 * rp.ccr_protected(), 1),
                 util::Table::pct(100 * rp.rates.oer, 1),
                 util::Table::pct(100 * rp.rates.hd, 1),
                 util::Table::num(design.layout.ppa.total_power_uw(), 1),
                 util::Table::num(design.layout.ppa.critical_path_ps, 0),
                 util::Table::num(design.layout.ppa.wirelength_um, 0)});
  std::fputs(table.render().c_str(), stdout);
  return design.restored_ok ? 0 : 1;
}

/// Grid + patterns parsing shared by `sweep` and `materialize` — the two
/// must expand identical cells (and therefore identical config hashes) for
/// the same flags, or a materialize could never find what a sweep stored.
sweep::Grid grid_from_args(const util::Args& args, bool quick) {
  sweep::Grid grid =
      args.has("grid") ? sweep::Grid::parse(args.get("grid", "")) : sweep::Grid{};
  // Same validated parsing as the --grid spec (sweep::Grid::set), so
  // malformed values fail loudly instead of being silently truncated. The
  // singular forms every other subcommand takes (--bench/--seed/
  // --split-layer) alias their plural grid dimension — muscle memory from
  // `sm_flow attack` must not be silently dropped.
  const std::pair<const char*, const char*> kGridFlags[] = {
      {"benchmarks", "benchmarks"}, {"bench", "benchmarks"},
      {"seeds", "seeds"},           {"seed", "seeds"},
      {"splits", "splits"},         {"split-layer", "splits"},
      {"defenses", "defenses"},     {"attackers", "attackers"},
      {"attacker", "attackers"},
  };
  for (const auto& [flag, key] : kGridFlags)
    if (args.has(flag)) grid.set(key, args.get(flag, ""));
  if (args.has("scale")) grid.set("scale", args.get("scale", ""));

  if (grid.benchmarks.empty())
    grid.benchmarks = quick ? std::vector<std::string>{"c432", "c880"}
                            : workloads::iscas85_names();
  if (quick && !args.has("grid") && !args.has("splits") &&
      !args.has("split-layer"))
    grid.split_layers = {4};
  return grid;
}

/// "--shard=i/N" → (i, N). Strict: plain digits, one '/', i < N, N >= 1.
std::pair<std::size_t, std::size_t> parse_shard(const std::string& spec) {
  const auto slash = spec.find('/');
  const auto digits = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s)
      if (c < '0' || c > '9') return false;
    return true;
  };
  if (slash == std::string::npos || !digits(spec.substr(0, slash)) ||
      !digits(spec.substr(slash + 1)))
    throw std::invalid_argument("sweep: bad --shard '" + spec +
                                "' (want i/N, e.g. 0/2)");
  const std::size_t index = std::stoull(spec.substr(0, slash));
  const std::size_t count = std::stoull(spec.substr(slash + 1));
  if (count == 0 || index >= count)
    throw std::invalid_argument("sweep: --shard index " + spec +
                                " out of range");
  return {index, count};
}

void print_result_tables(const util::Args& args, const sweep::Result& result) {
  if (!args.has("summary-only"))
    std::fputs(result.table().render().c_str(), stdout);
  std::printf("\nmean over seeds and split layers:\n");
  std::fputs(result.summary().render().c_str(), stdout);
}

int export_result(const util::Args& args, const sweep::Result& result) {
  if (args.has("csv") &&
      !write_output(out_path(args, "csv"), result.to_csv()))
    return 1;
  if (args.has("json") &&
      !write_output(out_path(args, "json"), result.to_json()))
    return 1;
  return 0;
}

/// sm_flow sweep: expand the grid from --grid/--benchmarks/--seeds/--splits/
/// --defenses (individual flags override the --grid spec), run it over
/// --jobs threads, print the per-cell and summary tables, and export CSV/
/// JSON on request. --quick clips the default grid for smoke runs.
/// --store/--resume/--shard bring in the event-sourced result log
/// (sweep/store.hpp); --dry-run prints the expanded cell list (with config
/// hashes and shard assignments) and exits without computing anything.
int cmd_sweep(const util::Args& args) {
  const bool quick = args.get_bool("quick", false);
  const sweep::Grid grid = grid_from_args(args, quick);

  sweep::Options opts;
  opts.jobs = args.get_count("jobs", 1);
  opts.patterns = args.get_count("patterns", quick ? 2000 : 100000);
  opts.store_path = args.has("store") ? args.get("store", "") : "";
  opts.resume = args.get_bool("resume", false);
  if (args.has("shard"))
    std::tie(opts.shard_index, opts.shard_count) =
        parse_shard(args.get("shard", ""));
  if (opts.resume && opts.store_path.empty())
    throw std::invalid_argument("sweep: --resume requires --store=FILE");

  if (args.get_bool("dry-run", false)) {
    // Shard planning / store debugging view: every cell the flags expand
    // to, its config hash (the store key), and which shard would run it.
    const auto cells = sweep::expand_cells(grid, opts);
    std::printf("sweep dry run: %zu cells (%zu benchmarks x %zu seeds x "
                "%zu splits x %zu defenses x %zu attackers), %zu shards\n",
                cells.size(), grid.benchmarks.size(), grid.seeds.size(),
                grid.split_layers.size(), grid.defenses.size(),
                grid.attackers.size(), opts.shard_count);
    for (const auto& cell : cells) {
      const std::size_t shard = cell.task_index % opts.shard_count;
      const bool mine = shard == opts.shard_index;
      std::printf("  shard %zu%s  %s\n", shard,
                  opts.shard_count > 1 ? (mine ? " *" : "  ") : "",
                  sweep::describe(cell).c_str());
    }
    return 0;
  }

  std::printf("sweep: %zu cells (%zu benchmarks x %zu seeds x %zu splits x "
              "%zu defenses x %zu attackers), --jobs=%zu",
              grid.combinations(), grid.benchmarks.size(), grid.seeds.size(),
              grid.split_layers.size(), grid.defenses.size(),
              grid.attackers.size(), opts.jobs);
  if (opts.shard_count > 1)
    std::printf(", shard %zu/%zu", opts.shard_index, opts.shard_count);
  if (!opts.store_path.empty())
    std::printf(", store %s%s", opts.store_path.c_str(),
                opts.resume ? " (resume)" : "");
  std::printf("\n");

  const auto result = sweep::run(grid, opts);
  print_result_tables(args, result);
  std::printf("\nsweep wall time: %.0f ms (%zu cells, %zu worker threads)\n",
              result.wall_ms, result.rows.size(), result.jobs);
  if (!opts.store_path.empty()) {
    std::printf("store: %zu cells computed and appended, %zu resumed from "
                "%s\n",
                result.computed_cells, result.resumed_cells,
                opts.store_path.c_str());
    if (result.quarantined_cells)
      std::printf("store: %zu quarantined cells skipped (failed records)\n",
                  result.quarantined_cells);
  }
  return export_result(args, result);
}

/// sm_flow materialize: rebuild the sweep tables for a grid purely from
/// store logs — the query side of the event-sourced store. Accepts several
/// comma-separated logs (shard outputs) and merges them last-wins. Exit
/// codes tell scripts "incomplete" from "degraded" apart: 1 when any cell
/// has no record at all (run more sweeps), 2 when the only absences are
/// quarantined cells (every attempt at them died — rerunning won't help
/// without a fix). Both listings land on stderr, sorted by config hash.
int cmd_materialize(const util::Args& args) {
  if (!args.has("store"))
    throw std::invalid_argument("materialize: --store=FILE[,FILE...] is "
                                "required");
  const auto paths = util::split_list(args.get("store", ""));
  if (paths.empty())
    throw std::invalid_argument("materialize: --store lists no files");

  const bool quick = args.get_bool("quick", false);
  const sweep::Grid grid = grid_from_args(args, quick);
  sweep::Options opts;
  opts.patterns = args.get_count("patterns", quick ? 2000 : 100000);

  const auto store = sweep::load_store(paths, /*must_exist=*/true);
  std::printf("materialize: %zu records from %zu log(s) (%zu lines, "
              "%zu skipped, %zu superseded duplicates)\n",
              store.records.size(), paths.size(), store.lines, store.skipped,
              store.duplicates);

  const auto mat = sweep::materialize(grid, opts, store);
  print_result_tables(args, mat.result);
  std::printf("\nmaterialized %zu/%zu grid cells from the store\n",
              mat.result.rows.size(), grid.combinations());
  if (const int rc = export_result(args, mat.result); rc != 0) return rc;
  // The degradation report (stderr, cells sorted by config hash so shard
  // order never changes the bytes — CI diffs this). Torn lines are
  // labelled too: a nonzero count is normal after a crashed run (the cell
  // a tear would have held was never acknowledged) but worth eyes.
  if (store.skipped > 0)
    std::fprintf(stderr,
                 "materialize: %zu torn line(s) skipped (unacknowledged "
                 "crash tails)\n",
                 store.skipped);
  if (!mat.quarantined.empty()) {
    std::fprintf(stderr,
                 "materialize: %zu cells quarantined (workers died "
                 "repeatedly; no metrics):\n",
                 mat.quarantined.size());
    for (const auto& cell : mat.quarantined)
      std::fprintf(stderr, "  %s\n", sweep::describe(cell).c_str());
  }
  if (!mat.missing.empty()) {
    std::fprintf(stderr, "materialize: %zu cells missing from the store:\n",
                 mat.missing.size());
    for (const auto& cell : mat.missing)
      std::fprintf(stderr, "  %s\n", sweep::describe(cell).c_str());
    return 1;  // incomplete: cells with no record at all
  }
  return mat.quarantined.empty() ? 0 : 2;  // 2 = complete but degraded
}

/// sm_flow serve: the fault-tolerant supervisor (sweep/supervisor.hpp).
/// Expands the grid, diffs it against the store log, and dispatches the
/// missing cells to child `sm_flow sweep --resume` workers — re-exec'ing
/// this very binary — with a per-cell watchdog, retry/backoff, and
/// poison-cell quarantine. Exits 0 when the grid converged complete, 2
/// when it converged degraded (cells quarantined).
int cmd_serve(const util::Args& args) {
  const bool quick = args.get_bool("quick", false);
  const sweep::Grid grid = grid_from_args(args, quick);

  sweep::ServeOptions sopts;
  sopts.sweep.patterns = args.get_count("patterns", quick ? 2000 : 100000);
  sopts.sweep.store_path = args.has("store") ? args.get("store", "") : "";
  if (sopts.sweep.store_path.empty())
    throw std::invalid_argument("serve: --store=FILE is required");
  sopts.workers = args.get_count("workers", 1);
  sopts.cell_timeout_s = args.get_double("cell-timeout", 300.0);
  sopts.max_retries = args.get_count("max-retries", 3);
  sopts.backoff_base_ms = args.get_double("backoff-base", 100.0);
  if (args.get_bool("verbose", false))
    sopts.log = [](const std::string& msg) {
      std::printf("serve: %s\n", msg.c_str());
    };

  std::printf("serve: %zu cells (%zu benchmarks x %zu seeds x %zu splits x "
              "%zu defenses x %zu attackers), --workers=%zu, "
              "--cell-timeout=%.0fs, --max-retries=%zu, store %s\n",
              grid.combinations(), grid.benchmarks.size(), grid.seeds.size(),
              grid.split_layers.size(), grid.defenses.size(),
              grid.attackers.size(), sopts.workers, sopts.cell_timeout_s,
              sopts.max_retries, sopts.sweep.store_path.c_str());

  const auto report = sweep::serve(grid, sopts);
  std::printf("serve: converged in %.0f ms — %zu cells (%zu already stored, "
              "%zu computed, %zu quarantined now, %zu quarantined before), "
              "%zu workers spawned, %zu deaths (%zu watchdog kills)\n",
              report.wall_ms, report.total_cells, report.already_stored,
              report.computed, report.quarantined, report.pre_quarantined,
              report.workers_spawned, report.worker_deaths,
              report.watchdog_kills);
  if (report.degraded())
    std::fprintf(stderr,
                 "serve: DEGRADED — %zu cells quarantined; `sm_flow "
                 "materialize` lists them (exit 2)\n",
                 report.pre_quarantined + report.quarantined);
  return report.degraded() ? 2 : 0;
}

int cmd_list() {
  std::printf("ISCAS-85 profiles:\n ");
  for (const auto& n : workloads::iscas85_names()) std::printf(" %s", n.c_str());
  std::printf("\nsuperblue profiles (use with --scale):\n ");
  for (const auto& n : workloads::superblue_names())
    std::printf(" %s", n.c_str());
  std::printf("\nsynthetic scaling ladder (use with --scale):\n ");
  for (const auto& n : workloads::synthetic_names())
    std::printf(" %s", n.c_str());
  std::printf("\n");
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage(stderr);
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return usage(stdout);
  if (cmd == "list") return cmd_list();

  const util::Args args(argc - 1, argv + 1);
  // sweep/materialize carry their own grid of benchmarks/seeds/splits; the
  // single-run FlowSetup does not apply.
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "materialize") return cmd_materialize(args);
  if (cmd == "serve") return cmd_serve(args);
  const FlowSetup setup = parse_setup(args);
  if (cmd == "protect") return cmd_protect(args, setup);
  if (cmd == "split") return cmd_split(args, setup);
  if (cmd == "attack") return cmd_attack(args, setup);
  if (cmd == "report") return cmd_report(args, setup);
  std::fprintf(stderr, "sm_flow: unknown command '%s'\n", cmd.c_str());
  return usage(stderr);
}

}  // namespace
}  // namespace sm::cli

int main(int argc, char** argv) {
  try {
    return sm::cli::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sm_flow: %s\n", e.what());
    return 1;
  }
}
