// Bit-parallel logic simulation.
//
// The paper computes OER (output error rate) and HD (Hamming distance)
// with Synopsys VCS over 1,000,000 random test patterns. We evaluate 64
// patterns per machine word with a levelized netlist walk — exact, fast,
// and deterministic given a seed.
//
// Sequential handling: DFF outputs are treated as pseudo primary inputs
// (driven with random patterns) and DFF inputs as pseudo primary outputs
// (included in the HD/OER comparison). This is the standard combinational-
// core comparison and is well-defined here because the randomization defense
// never adds or removes cells — original and erroneous netlists always have
// identical DFF sets.
//
// Block parallelism: compare() and toggle_rates() group pattern words into
// fixed-size blocks (kPatternsPerBlock patterns each). Every block draws its
// stimuli from an independent RNG stream seeded with util::task_seed(seed,
// block_index) and evaluates through its own value buffers, so blocks can
// run concurrently on a thread pool; per-block popcounts are reduced in
// block-index order afterwards. The block partition is a function of the
// pattern count alone — never of `jobs` — so results are bit-identical for
// any worker count.
#pragma once

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <vector>

namespace sm::sim {

/// Compiled evaluator for one netlist. Construction levelizes once; eval()
/// may then be called repeatedly with different pattern words.
class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return *nl_; }

  /// Number of pattern sources: primary inputs + DFF outputs.
  std::size_t num_sources() const { return sources_.size(); }
  /// Number of observation points: primary outputs + DFF inputs.
  std::size_t num_observers() const { return observers_.size(); }

  /// Evaluate one 64-pattern batch. `source_words` has num_sources() words
  /// (bit b of word i = value of source i under pattern b); `observer_words`
  /// receives num_observers() words.
  void eval(const std::vector<std::uint64_t>& source_words,
            std::vector<std::uint64_t>& observer_words) const;

  /// Same, but through a caller-owned per-net value buffer (resized to
  /// num_nets() on entry). Concurrent eval() calls on one Simulator are safe
  /// exactly when every thread passes its own buffer — this is the overload
  /// the block-parallel compare()/toggle_rates() paths use.
  void eval(const std::vector<std::uint64_t>& source_words,
            std::vector<std::uint64_t>& observer_words,
            std::vector<std::uint64_t>& values) const;

  /// Wide-lane evaluation: W pattern words (64*W patterns) per call, laid
  /// out structure-of-arrays — source i's words at source_words[i*W..i*W+W),
  /// net n's words at values[n*W..n*W+W) — so every gate touches W
  /// contiguous words and the levelized walk auto-vectorizes. Instantiated
  /// for W = 1, 4, 8 (kWordsPerBlock is divisible by all three, keeping the
  /// block partition intact). eval() is exactly eval_lanes<1>.
  template <std::size_t W>
  void eval_lanes(const std::vector<std::uint64_t>& source_words,
                  std::vector<std::uint64_t>& observer_words,
                  std::vector<std::uint64_t>& values) const;

  /// Net values from the most recent buffer-less eval() (indexed by NetId).
  const std::vector<std::uint64_t>& net_values() const { return values_; }

 private:
  const netlist::Netlist* nl_;
  std::vector<netlist::CellId> order_;        ///< combinational eval order
  std::vector<netlist::NetId> sources_;       ///< nets driven by PI/DFF-out
  std::vector<netlist::NetId> observers_;     ///< nets feeding PO/DFF-in
  mutable std::vector<std::uint64_t> values_; ///< per-net 64-pattern word
};

/// OER/HD between a golden netlist and a device-under-test, stimulated with
/// identical random patterns.
struct ErrorRates {
  double oer = 0.0;        ///< fraction of patterns with >=1 wrong observer bit
  double hd = 0.0;         ///< fraction of wrong observer bits overall
  std::size_t patterns = 0;
};

/// Patterns per RNG block of compare()/toggle_rates(). Fixed — the block
/// partition (and therefore every metric) must not depend on `jobs`.
inline constexpr std::size_t kPatternsPerBlock = 4096;

/// Lane width compare()/toggle_rates() use when asked for `lanes == 0`.
/// Every supported width (1, 4, 8) yields byte-identical metrics — each
/// block still draws the same util::task_seed RNG stream in the same
/// word-major order; lanes only change how many words evaluate per
/// levelized walk.
inline constexpr std::size_t kDefaultSimLanes = 8;

/// Compare two netlists with `patterns` random stimuli (rounded up to a
/// multiple of 64). Requires matching source/observer counts (the
/// randomization defense preserves them). Throws std::invalid_argument
/// otherwise. `jobs` shards the pattern blocks over worker threads
/// (0 = hardware concurrency); `lanes` picks the SIMD lane width (1, 4, or
/// 8; 0 = kDefaultSimLanes). Results are bit-identical for any jobs and
/// lanes values.
ErrorRates compare(const netlist::Netlist& golden, const netlist::Netlist& dut,
                   std::size_t patterns, std::uint64_t seed,
                   std::size_t jobs = 1, std::size_t lanes = 0);

/// True when `patterns` random stimuli produce identical observer responses.
/// (Simulation-based equivalence; exhaustive when the netlist has <= 20
/// sources and patterns >= 2^sources.)
bool equivalent(const netlist::Netlist& a, const netlist::Netlist& b,
                std::size_t patterns, std::uint64_t seed);

/// Per-net switching activity estimate: 2*p*(1-p) where p is the signal
/// probability measured over `patterns` random stimuli. Used for dynamic
/// power in sm::timing. `jobs` and `lanes` as in compare(); the per-net
/// one-counts are integer sums over blocks, so any merge order (and any
/// lane width) yields identical rates.
std::vector<double> toggle_rates(const netlist::Netlist& nl,
                                 std::size_t patterns, std::uint64_t seed,
                                 std::size_t jobs = 1, std::size_t lanes = 0);

}  // namespace sm::sim
