#include "sim/simulator.hpp"

#include "netlist/topo.hpp"
#include "util/thread_pool.hpp"

#include <array>
#include <bit>
#include <mutex>
#include <stdexcept>

// Word-parallel simulation leans on C++20 <bit> (std::popcount); without
// this guard a -std=c++17 build dies deep inside the evaluation loop with
// inscrutable lookup errors.
#if !defined(__cpp_lib_bitops) || __cpp_lib_bitops < 201907L
#error "sm requires C++20 <bit> (std::popcount/std::countr_zero); build with -std=c++20 or newer"
#endif

namespace sm::sim {

using netlist::Cell;
using netlist::CellId;
using netlist::kInvalidNet;
using netlist::LogicFn;
using netlist::Net;
using netlist::NetId;
using netlist::Netlist;

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  const auto order = netlist::topological_order(nl);
  if (!order)
    throw std::logic_error("Simulator: netlist has a combinational cycle");
  // Keep only combinational gates in evaluation order; sources/observers are
  // collected separately, in deterministic id order.
  for (const CellId id : *order)
    if (nl.is_combinational(id)) order_.push_back(id);

  for (const CellId pi : nl.primary_inputs()) sources_.push_back(nl.cell(pi).output);
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (nl.is_dff(id)) sources_.push_back(nl.cell(id).output);

  for (const CellId po : nl.primary_outputs())
    observers_.push_back(nl.cell(po).inputs.at(0));
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (nl.is_dff(id)) observers_.push_back(nl.cell(id).inputs.at(0));

  values_.assign(nl.num_nets(), 0);
}

void Simulator::eval(const std::vector<std::uint64_t>& source_words,
                     std::vector<std::uint64_t>& observer_words) const {
  eval_lanes<1>(source_words, observer_words, values_);
}

void Simulator::eval(const std::vector<std::uint64_t>& source_words,
                     std::vector<std::uint64_t>& observer_words,
                     std::vector<std::uint64_t>& values) const {
  eval_lanes<1>(source_words, observer_words, values);
}

template <std::size_t W>
void Simulator::eval_lanes(const std::vector<std::uint64_t>& source_words,
                           std::vector<std::uint64_t>& observer_words,
                           std::vector<std::uint64_t>& values) const {
  if (source_words.size() != sources_.size() * W)
    throw std::invalid_argument("Simulator::eval: source word count mismatch");
  if (values.size() != nl_->num_nets() * W)
    values.assign(nl_->num_nets() * W, 0);
  for (std::size_t i = 0; i < sources_.size(); ++i)
    for (std::size_t j = 0; j < W; ++j)
      values[sources_[i] * W + j] = source_words[i * W + j];

  // Each gate reads/writes W contiguous words; the fixed-trip j-loops below
  // compile to straight-line vector code for W = 4/8.
  const auto in = [&](const Cell& c, std::size_t k) {
    return &values[static_cast<std::size_t>(c.inputs[k]) * W];
  };
  for (const CellId id : order_) {
    const Cell& c = nl_->cell(id);
    const LogicFn fn = nl_->type_of(id).fn;
    std::uint64_t v[W] = {};
    switch (fn) {
      case LogicFn::Const0:
        for (std::size_t j = 0; j < W; ++j) v[j] = 0;
        break;
      case LogicFn::Const1:
        for (std::size_t j = 0; j < W; ++j) v[j] = ~0ULL;
        break;
      case LogicFn::Buf: {
        const std::uint64_t* a = in(c, 0);
        for (std::size_t j = 0; j < W; ++j) v[j] = a[j];
        break;
      }
      case LogicFn::Inv: {
        const std::uint64_t* a = in(c, 0);
        for (std::size_t j = 0; j < W; ++j) v[j] = ~a[j];
        break;
      }
      case LogicFn::And:
      case LogicFn::Nand: {
        for (std::size_t j = 0; j < W; ++j) v[j] = ~0ULL;
        for (const NetId net : c.inputs) {
          const std::uint64_t* a = &values[static_cast<std::size_t>(net) * W];
          for (std::size_t j = 0; j < W; ++j) v[j] &= a[j];
        }
        if (fn == LogicFn::Nand)
          for (std::size_t j = 0; j < W; ++j) v[j] = ~v[j];
        break;
      }
      case LogicFn::Or:
      case LogicFn::Nor: {
        for (std::size_t j = 0; j < W; ++j) v[j] = 0;
        for (const NetId net : c.inputs) {
          const std::uint64_t* a = &values[static_cast<std::size_t>(net) * W];
          for (std::size_t j = 0; j < W; ++j) v[j] |= a[j];
        }
        if (fn == LogicFn::Nor)
          for (std::size_t j = 0; j < W; ++j) v[j] = ~v[j];
        break;
      }
      case LogicFn::Xor: {
        const std::uint64_t* a = in(c, 0);
        const std::uint64_t* b = in(c, 1);
        for (std::size_t j = 0; j < W; ++j) v[j] = a[j] ^ b[j];
        break;
      }
      case LogicFn::Xnor: {
        const std::uint64_t* a = in(c, 0);
        const std::uint64_t* b = in(c, 1);
        for (std::size_t j = 0; j < W; ++j) v[j] = ~(a[j] ^ b[j]);
        break;
      }
      case LogicFn::Aoi21: {
        const std::uint64_t* a = in(c, 0);
        const std::uint64_t* b = in(c, 1);
        const std::uint64_t* s = in(c, 2);
        for (std::size_t j = 0; j < W; ++j) v[j] = ~((a[j] & b[j]) | s[j]);
        break;
      }
      case LogicFn::Oai21: {
        const std::uint64_t* a = in(c, 0);
        const std::uint64_t* b = in(c, 1);
        const std::uint64_t* s = in(c, 2);
        for (std::size_t j = 0; j < W; ++j) v[j] = ~((a[j] | b[j]) & s[j]);
        break;
      }
      case LogicFn::Mux2: {
        const std::uint64_t* a = in(c, 0);
        const std::uint64_t* b = in(c, 1);
        const std::uint64_t* s = in(c, 2);
        for (std::size_t j = 0; j < W; ++j)
          v[j] = (a[j] & ~s[j]) | (b[j] & s[j]);
        break;
      }
      case LogicFn::Dff:
      case LogicFn::Port:
        continue;  // not combinational; handled via sources/observers
    }
    if (c.output != kInvalidNet) {
      std::uint64_t* o = &values[static_cast<std::size_t>(c.output) * W];
      for (std::size_t j = 0; j < W; ++j) o[j] = v[j];
    }
  }

  observer_words.resize(observers_.size() * W);
  for (std::size_t i = 0; i < observers_.size(); ++i)
    for (std::size_t j = 0; j < W; ++j)
      observer_words[i * W + j] = values[observers_[i] * W + j];
}

template void Simulator::eval_lanes<1>(const std::vector<std::uint64_t>&,
                                       std::vector<std::uint64_t>&,
                                       std::vector<std::uint64_t>&) const;
template void Simulator::eval_lanes<4>(const std::vector<std::uint64_t>&,
                                       std::vector<std::uint64_t>&,
                                       std::vector<std::uint64_t>&) const;
template void Simulator::eval_lanes<8>(const std::vector<std::uint64_t>&,
                                       std::vector<std::uint64_t>&,
                                       std::vector<std::uint64_t>&) const;

namespace {

std::size_t words_for(std::size_t patterns) { return (patterns + 63) / 64; }

constexpr std::size_t kWordsPerBlock = kPatternsPerBlock / 64;
static_assert(kPatternsPerBlock % 64 == 0);
// Every supported lane width tiles a block exactly, so lane groups never
// straddle a block (= RNG stream) boundary.
static_assert(kWordsPerBlock % kDefaultSimLanes == 0);

std::size_t blocks_for(std::size_t patterns) {
  return (words_for(patterns) + kWordsPerBlock - 1) / kWordsPerBlock;
}

/// Drive `fn(batch_total, masks)` for every W-word lane group of block `b`,
/// with the block's own task_seed RNG stream. The stream is drawn word-major
/// then source-major — exactly the order the scalar path consumed it — so
/// the (block, word) -> stimulus mapping is byte-identical for every lane
/// width (and independent of the worker count). Tail lanes past the last
/// pattern word are zero-filled without consuming RNG draws and masked out.
template <std::size_t W, class Fn>
void run_block_lanes(std::size_t b, std::size_t patterns, std::uint64_t seed,
                     std::vector<std::uint64_t>& src, std::size_t num_sources,
                     Fn&& fn) {
  util::Rng rng(util::task_seed(seed, b));
  const std::size_t w_end =
      std::min(words_for(patterns), (b + 1) * kWordsPerBlock);
  for (std::size_t w = b * kWordsPerBlock; w < w_end; w += W) {
    const std::size_t real = std::min(W, w_end - w);
    if (real < W) std::fill(src.begin(), src.end(), 0);
    for (std::size_t j = 0; j < real; ++j)
      for (std::size_t i = 0; i < num_sources; ++i) src[i * W + j] = rng();
    std::array<std::uint64_t, W> masks;
    std::size_t batch_total = 0;
    for (std::size_t j = 0; j < W; ++j) {
      if (j >= real) {
        masks[j] = 0;
        continue;
      }
      const std::size_t batch =
          std::min<std::size_t>(64, patterns - (w + j) * 64);
      masks[j] = batch == 64 ? ~0ULL : ((1ULL << batch) - 1);
      batch_total += batch;
    }
    fn(batch_total, masks);
  }
}

template <std::size_t W>
ErrorRates compare_lanes(const Netlist& golden, const Netlist& dut,
                         std::size_t patterns, std::uint64_t seed,
                         std::size_t jobs) {
  Simulator sg(golden);
  Simulator sd(dut);
  if (sg.num_sources() != sd.num_sources() ||
      sg.num_observers() != sd.num_observers())
    throw std::invalid_argument("compare: source/observer count mismatch");

  struct BlockCounts {
    std::size_t wrong_bits = 0;
    std::size_t wrong_patterns = 0;
    std::size_t patterns = 0;
  };
  const std::size_t blocks = blocks_for(patterns);
  std::vector<BlockCounts> counts(blocks);
  util::parallel_for(jobs, blocks, [&](std::size_t b) {
    std::vector<std::uint64_t> src(sg.num_sources() * W);
    std::vector<std::uint64_t> out_g, out_d, val_g, val_d;
    BlockCounts& c = counts[b];
    run_block_lanes<W>(
        b, patterns, seed, src, sg.num_sources(),
        [&](std::size_t batch_total, const std::array<std::uint64_t, W>& m) {
          sg.eval_lanes<W>(src, out_g, val_g);
          sd.eval_lanes<W>(src, out_d, val_d);
          std::uint64_t any_diff[W] = {};
          std::size_t wrong_bits = 0;
          for (std::size_t i = 0; i < sg.num_observers(); ++i)
            for (std::size_t j = 0; j < W; ++j) {
              const std::uint64_t diff =
                  (out_g[i * W + j] ^ out_d[i * W + j]) & m[j];
              wrong_bits += static_cast<std::size_t>(std::popcount(diff));
              any_diff[j] |= diff;
            }
          c.wrong_bits += wrong_bits;
          for (std::size_t j = 0; j < W; ++j)
            c.wrong_patterns +=
                static_cast<std::size_t>(std::popcount(any_diff[j]));
          c.patterns += batch_total;
        });
  });

  std::size_t wrong_bits = 0, wrong_patterns = 0, total_patterns = 0;
  for (const auto& c : counts) {
    wrong_bits += c.wrong_bits;
    wrong_patterns += c.wrong_patterns;
    total_patterns += c.patterns;
  }

  ErrorRates r;
  r.patterns = total_patterns;
  if (total_patterns == 0 || sg.num_observers() == 0) return r;
  r.oer = static_cast<double>(wrong_patterns) / static_cast<double>(total_patterns);
  r.hd = static_cast<double>(wrong_bits) /
         static_cast<double>(total_patterns * sg.num_observers());
  return r;
}

template <std::size_t W>
std::vector<double> toggle_rates_lanes(const Netlist& nl,
                                       std::size_t patterns,
                                       std::uint64_t seed, std::size_t jobs) {
  Simulator s(nl);
  std::vector<std::size_t> ones(nl.num_nets(), 0);
  std::size_t total = 0;
  std::mutex merge;
  const std::size_t blocks = blocks_for(patterns);
  util::parallel_for(jobs, blocks, [&](std::size_t b) {
    std::vector<std::uint64_t> src(s.num_sources() * W);
    std::vector<std::uint64_t> out, vals;
    std::vector<std::size_t> local(nl.num_nets(), 0);
    std::size_t local_total = 0;
    run_block_lanes<W>(
        b, patterns, seed, src, s.num_sources(),
        [&](std::size_t batch_total, const std::array<std::uint64_t, W>& m) {
          s.eval_lanes<W>(src, out, vals);
          for (NetId n = 0; n < nl.num_nets(); ++n) {
            std::size_t c = 0;
            for (std::size_t j = 0; j < W; ++j)
              c += static_cast<std::size_t>(std::popcount(vals[n * W + j] & m[j]));
            local[n] += c;
          }
          local_total += batch_total;
        });
    // Integer sums commute, so the merge order cannot leak into the rates.
    const std::lock_guard<std::mutex> g(merge);
    for (NetId n = 0; n < nl.num_nets(); ++n) ones[n] += local[n];
    total += local_total;
  });
  std::vector<double> act(nl.num_nets(), 0.0);
  if (total == 0) return act;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const double p = static_cast<double>(ones[n]) / static_cast<double>(total);
    act[n] = 2.0 * p * (1.0 - p);  // random-stimulus switching probability
  }
  return act;
}

std::size_t resolve_lanes(std::size_t lanes) {
  const std::size_t w = lanes == 0 ? kDefaultSimLanes : lanes;
  if (w != 1 && w != 4 && w != 8)
    throw std::invalid_argument("sim lanes must be 1, 4, or 8");
  return w;
}

}  // namespace

ErrorRates compare(const Netlist& golden, const Netlist& dut,
                   std::size_t patterns, std::uint64_t seed,
                   std::size_t jobs, std::size_t lanes) {
  switch (resolve_lanes(lanes)) {
    case 1: return compare_lanes<1>(golden, dut, patterns, seed, jobs);
    case 4: return compare_lanes<4>(golden, dut, patterns, seed, jobs);
    default: return compare_lanes<8>(golden, dut, patterns, seed, jobs);
  }
}

bool equivalent(const Netlist& a, const Netlist& b, std::size_t patterns,
                std::uint64_t seed) {
  const ErrorRates r = compare(a, b, patterns, seed);
  return r.oer == 0.0;
}

std::vector<double> toggle_rates(const Netlist& nl, std::size_t patterns,
                                 std::uint64_t seed, std::size_t jobs,
                                 std::size_t lanes) {
  switch (resolve_lanes(lanes)) {
    case 1: return toggle_rates_lanes<1>(nl, patterns, seed, jobs);
    case 4: return toggle_rates_lanes<4>(nl, patterns, seed, jobs);
    default: return toggle_rates_lanes<8>(nl, patterns, seed, jobs);
  }
}

}  // namespace sm::sim
