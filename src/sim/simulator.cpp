#include "sim/simulator.hpp"

#include "netlist/topo.hpp"
#include "util/thread_pool.hpp"

#include <bit>
#include <mutex>
#include <stdexcept>

// Word-parallel simulation leans on C++20 <bit> (std::popcount); without
// this guard a -std=c++17 build dies deep inside the evaluation loop with
// inscrutable lookup errors.
#if !defined(__cpp_lib_bitops) || __cpp_lib_bitops < 201907L
#error "sm requires C++20 <bit> (std::popcount/std::countr_zero); build with -std=c++20 or newer"
#endif

namespace sm::sim {

using netlist::Cell;
using netlist::CellId;
using netlist::kInvalidNet;
using netlist::LogicFn;
using netlist::Net;
using netlist::NetId;
using netlist::Netlist;

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  const auto order = netlist::topological_order(nl);
  if (!order)
    throw std::logic_error("Simulator: netlist has a combinational cycle");
  // Keep only combinational gates in evaluation order; sources/observers are
  // collected separately, in deterministic id order.
  for (const CellId id : *order)
    if (nl.is_combinational(id)) order_.push_back(id);

  for (const CellId pi : nl.primary_inputs()) sources_.push_back(nl.cell(pi).output);
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (nl.is_dff(id)) sources_.push_back(nl.cell(id).output);

  for (const CellId po : nl.primary_outputs())
    observers_.push_back(nl.cell(po).inputs.at(0));
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (nl.is_dff(id)) observers_.push_back(nl.cell(id).inputs.at(0));

  values_.assign(nl.num_nets(), 0);
}

void Simulator::eval(const std::vector<std::uint64_t>& source_words,
                     std::vector<std::uint64_t>& observer_words) const {
  eval(source_words, observer_words, values_);
}

void Simulator::eval(const std::vector<std::uint64_t>& source_words,
                     std::vector<std::uint64_t>& observer_words,
                     std::vector<std::uint64_t>& values) const {
  if (source_words.size() != sources_.size())
    throw std::invalid_argument("Simulator::eval: source word count mismatch");
  if (values.size() != nl_->num_nets()) values.assign(nl_->num_nets(), 0);
  for (std::size_t i = 0; i < sources_.size(); ++i)
    values[sources_[i]] = source_words[i];

  for (const CellId id : order_) {
    const Cell& c = nl_->cell(id);
    const LogicFn fn = nl_->type_of(id).fn;
    std::uint64_t v = 0;
    switch (fn) {
      case LogicFn::Const0: v = 0; break;
      case LogicFn::Const1: v = ~0ULL; break;
      case LogicFn::Buf: v = values[c.inputs[0]]; break;
      case LogicFn::Inv: v = ~values[c.inputs[0]]; break;
      case LogicFn::And:
      case LogicFn::Nand: {
        v = ~0ULL;
        for (const NetId in : c.inputs) v &= values[in];
        if (fn == LogicFn::Nand) v = ~v;
        break;
      }
      case LogicFn::Or:
      case LogicFn::Nor: {
        v = 0;
        for (const NetId in : c.inputs) v |= values[in];
        if (fn == LogicFn::Nor) v = ~v;
        break;
      }
      case LogicFn::Xor: v = values[c.inputs[0]] ^ values[c.inputs[1]]; break;
      case LogicFn::Xnor: v = ~(values[c.inputs[0]] ^ values[c.inputs[1]]); break;
      case LogicFn::Aoi21:
        v = ~((values[c.inputs[0]] & values[c.inputs[1]]) | values[c.inputs[2]]);
        break;
      case LogicFn::Oai21:
        v = ~((values[c.inputs[0]] | values[c.inputs[1]]) & values[c.inputs[2]]);
        break;
      case LogicFn::Mux2: {
        const std::uint64_t s = values[c.inputs[2]];
        v = (values[c.inputs[0]] & ~s) | (values[c.inputs[1]] & s);
        break;
      }
      case LogicFn::Dff:
      case LogicFn::Port:
        continue;  // not combinational; handled via sources/observers
    }
    if (c.output != kInvalidNet) values[c.output] = v;
  }

  observer_words.resize(observers_.size());
  for (std::size_t i = 0; i < observers_.size(); ++i)
    observer_words[i] = values[observers_[i]];
}

namespace {

std::size_t words_for(std::size_t patterns) { return (patterns + 63) / 64; }

constexpr std::size_t kWordsPerBlock = kPatternsPerBlock / 64;
static_assert(kPatternsPerBlock % 64 == 0);

std::size_t blocks_for(std::size_t patterns) {
  return (words_for(patterns) + kWordsPerBlock - 1) / kWordsPerBlock;
}

/// Drive `fn(word_index, stimulus, mask)` for every pattern word of block
/// `b`, with the block's own task_seed RNG stream. The (block, word) ->
/// stimulus mapping is independent of the worker count.
template <class Fn>
void run_block(std::size_t b, std::size_t patterns, std::uint64_t seed,
               std::vector<std::uint64_t>& src, Fn&& fn) {
  util::Rng rng(util::task_seed(seed, b));
  const std::size_t w_end = std::min(words_for(patterns),
                                     (b + 1) * kWordsPerBlock);
  for (std::size_t w = b * kWordsPerBlock; w < w_end; ++w) {
    const std::size_t batch = std::min<std::size_t>(64, patterns - w * 64);
    const std::uint64_t mask = batch == 64 ? ~0ULL : ((1ULL << batch) - 1);
    for (auto& word : src) word = rng();
    fn(batch, mask);
  }
}

}  // namespace

ErrorRates compare(const Netlist& golden, const Netlist& dut,
                   std::size_t patterns, std::uint64_t seed,
                   std::size_t jobs) {
  Simulator sg(golden);
  Simulator sd(dut);
  if (sg.num_sources() != sd.num_sources() ||
      sg.num_observers() != sd.num_observers())
    throw std::invalid_argument("compare: source/observer count mismatch");

  struct BlockCounts {
    std::size_t wrong_bits = 0;
    std::size_t wrong_patterns = 0;
    std::size_t patterns = 0;
  };
  const std::size_t blocks = blocks_for(patterns);
  std::vector<BlockCounts> counts(blocks);
  util::parallel_for(jobs, blocks, [&](std::size_t b) {
    std::vector<std::uint64_t> src(sg.num_sources());
    std::vector<std::uint64_t> out_g, out_d, val_g, val_d;
    BlockCounts& c = counts[b];
    run_block(b, patterns, seed, src,
              [&](std::size_t batch, std::uint64_t mask) {
                sg.eval(src, out_g, val_g);
                sd.eval(src, out_d, val_d);
                std::uint64_t any_diff = 0;
                for (std::size_t i = 0; i < out_g.size(); ++i) {
                  const std::uint64_t diff = (out_g[i] ^ out_d[i]) & mask;
                  c.wrong_bits += static_cast<std::size_t>(std::popcount(diff));
                  any_diff |= diff;
                }
                c.wrong_patterns +=
                    static_cast<std::size_t>(std::popcount(any_diff));
                c.patterns += batch;
              });
  });

  std::size_t wrong_bits = 0, wrong_patterns = 0, total_patterns = 0;
  for (const auto& c : counts) {
    wrong_bits += c.wrong_bits;
    wrong_patterns += c.wrong_patterns;
    total_patterns += c.patterns;
  }

  ErrorRates r;
  r.patterns = total_patterns;
  if (total_patterns == 0 || sg.num_observers() == 0) return r;
  r.oer = static_cast<double>(wrong_patterns) / static_cast<double>(total_patterns);
  r.hd = static_cast<double>(wrong_bits) /
         static_cast<double>(total_patterns * sg.num_observers());
  return r;
}

bool equivalent(const Netlist& a, const Netlist& b, std::size_t patterns,
                std::uint64_t seed) {
  const ErrorRates r = compare(a, b, patterns, seed);
  return r.oer == 0.0;
}

std::vector<double> toggle_rates(const Netlist& nl, std::size_t patterns,
                                 std::uint64_t seed, std::size_t jobs) {
  Simulator s(nl);
  std::vector<std::size_t> ones(nl.num_nets(), 0);
  std::size_t total = 0;
  std::mutex merge;
  const std::size_t blocks = blocks_for(patterns);
  util::parallel_for(jobs, blocks, [&](std::size_t b) {
    std::vector<std::uint64_t> src(s.num_sources());
    std::vector<std::uint64_t> out, vals;
    std::vector<std::size_t> local(nl.num_nets(), 0);
    std::size_t local_total = 0;
    run_block(b, patterns, seed, src,
              [&](std::size_t batch, std::uint64_t mask) {
                s.eval(src, out, vals);
                for (NetId n = 0; n < nl.num_nets(); ++n)
                  local[n] +=
                      static_cast<std::size_t>(std::popcount(vals[n] & mask));
                local_total += batch;
              });
    // Integer sums commute, so the merge order cannot leak into the rates.
    const std::lock_guard<std::mutex> g(merge);
    for (NetId n = 0; n < nl.num_nets(); ++n) ones[n] += local[n];
    total += local_total;
  });
  std::vector<double> act(nl.num_nets(), 0.0);
  if (total == 0) return act;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const double p = static_cast<double>(ones[n]) / static_cast<double>(total);
    act[n] = 2.0 * p * (1.0 - p);  // random-stimulus switching probability
  }
  return act;
}

}  // namespace sm::sim
