#include "metrics/report.hpp"

#include "util/table.hpp"

namespace sm::metrics {

using netlist::NetId;
using netlist::Netlist;

std::vector<double> connection_distances(const Netlist& truth,
                                         const place::Placement& pl,
                                         const std::vector<NetId>& nets) {
  std::vector<double> out;
  for (const NetId n : nets) {
    const auto d = place::driver_sink_distances(truth, pl, n);
    out.insert(out.end(), d.begin(), d.end());
  }
  return out;
}

std::vector<double> all_connection_distances(const Netlist& truth,
                                             const place::Placement& pl) {
  std::vector<NetId> nets(truth.num_nets());
  for (NetId n = 0; n < truth.num_nets(); ++n) nets[n] = n;
  return connection_distances(truth, pl, nets);
}

std::array<double, netlist::MetalStack::kNumLayers + 1> per_layer_wirelength(
    const route::RoutingResult& routing, const std::vector<NetId>& nets) {
  std::array<double, netlist::MetalStack::kNumLayers + 1> wire{};
  std::vector<bool> want;
  bool filter = !nets.empty();
  if (filter) {
    std::size_t max_net = 0;
    for (const NetId n : nets) max_net = std::max<std::size_t>(max_net, n);
    want.assign(max_net + 1, false);
    for (const NetId n : nets) want[n] = true;
  }
  for (const auto& r : routing.routes) {
    if (r.net == netlist::kInvalidNet) continue;
    if (filter && (r.net >= want.size() || !want[r.net])) continue;
    for (const auto& seg : r.segments) {
      if (seg.is_via()) continue;
      wire[static_cast<std::size_t>(seg.a.layer)] +=
          seg.gcell_length() * routing.grid.gcell_um();
    }
  }
  return wire;
}

std::array<double, netlist::MetalStack::kNumLayers + 1> layer_shares(
    const std::array<double, netlist::MetalStack::kNumLayers + 1>& wire) {
  std::array<double, netlist::MetalStack::kNumLayers + 1> share{};
  double total = 0;
  for (const double w : wire) total += w;
  if (total <= 0) return share;
  for (std::size_t i = 0; i < wire.size(); ++i) share[i] = 100.0 * wire[i] / total;
  return share;
}

ViaDelta via_delta(const route::RoutingStats& base,
                   const route::RoutingStats& other) {
  ViaDelta d;
  for (std::size_t l = 1; l < base.vias.size(); ++l) {
    d.base[l] = base.vias[l];
    d.other[l] = other.vias[l];
    d.pct[l] = util::pct_delta(static_cast<double>(base.vias[l]),
                               static_cast<double>(other.vias[l]));
  }
  d.total_pct = util::pct_delta(static_cast<double>(base.total_vias()),
                                static_cast<double>(other.total_vias()));
  return d;
}

std::string ViaDelta::cell(int layer_boundary) const {
  const auto l = static_cast<std::size_t>(layer_boundary);
  if (base[l] > 0) return util::Table::pct(pct[l], 2);
  if (other[l] == 0) return "0";
  return "+" + util::Table::count(other[l]);
}

}  // namespace sm::metrics
