// Evaluation metrics shared by the benches (Tables 1-6, Figs. 4-6).
#pragma once

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"
#include "util/stats.hpp"

#include <array>
#include <string>
#include <vector>

namespace sm::metrics {

/// Manhattan distances between *truly connected* gates: for every net in
/// `nets` (connectivity read from `truth`), the driver-to-sink distance of
/// each connection under placement `pl`. This is the paper's Table 1 / Fig. 4
/// quantity — for the proposed defense, `truth` is the original netlist but
/// `pl` places the erroneous one, so the distances are randomized.
std::vector<double> connection_distances(const netlist::Netlist& truth,
                                         const place::Placement& pl,
                                         const std::vector<netlist::NetId>& nets);

/// Distances for all nets of `truth`.
std::vector<double> all_connection_distances(const netlist::Netlist& truth,
                                             const place::Placement& pl);

/// Per-layer wirelength (um, index 1..10) restricted to routes whose net tag
/// is in `nets` (empty = all net-tagged routes). Fig. 5's quantity.
std::array<double, netlist::MetalStack::kNumLayers + 1> per_layer_wirelength(
    const route::RoutingResult& routing,
    const std::vector<netlist::NetId>& nets = {});

/// Percentage share per layer (sums to 100 unless empty).
std::array<double, netlist::MetalStack::kNumLayers + 1> layer_shares(
    const std::array<double, netlist::MetalStack::kNumLayers + 1>& wire);

/// Via-count deltas of `other` over `base`, per boundary V12..V910 plus the
/// total (Table 2's Lifted%/Proposed% rows). When the baseline count is zero
/// a percentage is meaningless; `cell()` then renders the absolute addition.
struct ViaDelta {
  std::array<double, netlist::MetalStack::kNumLayers> pct{};  ///< index 1..9
  std::array<std::uint64_t, netlist::MetalStack::kNumLayers> base{};
  std::array<std::uint64_t, netlist::MetalStack::kNumLayers> other{};
  double total_pct = 0.0;

  /// "12.34%" when base[l] > 0, "+N" otherwise.
  std::string cell(int layer_boundary) const;
};
ViaDelta via_delta(const route::RoutingStats& base,
                   const route::RoutingStats& other);

}  // namespace sm::metrics
