// Event-sourced sweep store: append-only result log + materialized tables.
//
// The sweep's headline tables are a {benchmark × seed × split × defense}
// cross product, and before this module every invocation recomputed the
// whole grid in memory — one crash or config tweak lost every completed
// cell. The store follows the event-sourced scrape→materialize shape: the
// *log* is the source of truth (one immutable JSON record per completed
// cell, appended and fsync'd the moment its task finishes), and tables are
// *materializations* rebuilt from the log on demand.
//
//   run(store)  ──append──▶  results.jsonl  ──materialize──▶  Result tables
//                             (JSONL, one                      (CSV/JSON/
//                              record/cell)                     summary)
//
// Records are keyed by a config hash — util::config_hash over the cell's
// canonical recipe JSON: (benchmark, seed, split_layer, defense, attacker,
// patterns, scale, flow options via core::canonical_flow_json, randomize
// options for protected cells, baseline recipe constants for baseline
// defenses). Anything that can change a metric is in the hash;
// scheduling knobs (jobs, partition_depth, shard assignment) and wall
// time are NOT — two runs differing only in those resolve to the same
// cell. tests/test_store.cpp pins golden hashes across releases.
//
// Consequences the sweep builds on:
//   - crash-safe resume: `run` with Options::resume skips cells whose hash
//     is already in the log and computes only the missing ones; a resumed
//     run's rows are bit-identical to a from-scratch run (wall_ms aside);
//   - sharding: `--shard i/N` deterministically splits the task list, each
//     shard appends to its own log, and the concatenation of shard logs
//     materializes byte-identically to the unsharded sweep's table
//     (records are keyed, so merge order is irrelevant and duplicate keys
//     are last-wins);
//   - provenance: every record embeds the full canonical recipe, so any
//     table row can be traced to the exact configuration that produced it.
//
// wall_ms provenance: the stored wall time is the *task* wall (one layout
// shared by all split layers of a (benchmark, seed, defense) triple), it
// is excluded from the config hash, and it is the one field outside the
// resume/shard determinism contract — scripts/check_sweep_perf.py reads
// perf baselines from it, tables merely display it.
#pragma once

#include "sweep/sweep.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sm::sweep {

/// Identity of one grid cell within a sweep configuration.
struct CellRef {
  std::size_t task_index = 0;  ///< (benchmark, seed, defense) triple, grid-major
  std::size_t split_index = 0;    ///< position in Grid::split_layers
  std::size_t attacker_index = 0; ///< position in Grid::attackers
  std::string benchmark;
  std::uint64_t seed = 0;
  Defense defense = Defense::Unprotected;
  int split_layer = 0;
  Attacker attacker = Attacker::Proximity;
  Workload workload = Workload::Iscas85;
  std::string config_hash;  ///< util::config_hash(cell_config_json(...))
};

/// "c432 (iscas85) seed=1 M4 unprotected attacker=proximity [<hash>]" — the
/// full canonical recipe coordinates, so dry-run and missing-cell listings
/// are auditable by eye across every axis.
std::string describe(const CellRef& cell);

/// The canonical recipe JSON a cell's config hash digests. Pure function
/// of its arguments; `sm_flow sweep --dry-run` prints the derived hashes
/// and tests/test_store.cpp + tests/test_store_axes.cpp pin golden values.
/// Axis extensions append *conditional* keys only (an "attacker" key for
/// non-proximity attackers, a "baseline" parameter block for baseline
/// defenses), so every pre-extension proximity-only record keeps its hash
/// and old stores keep resolving under --resume.
std::string cell_config_json(const Grid& grid, const Options& opts,
                             const std::string& benchmark, Workload workload,
                             std::uint64_t seed, Defense defense,
                             int split_layer, Attacker attacker);

/// Expand the grid into grid-major cells (benchmark, seed, defense major;
/// then split, attacker innermost — exactly the row order of Result::rows)
/// with config hashes. Validates every benchmark name up front
/// (std::invalid_argument) even when the split list is empty. Shard
/// options do NOT filter here — callers own that
/// (`task_index % shard_count == shard_index`).
std::vector<CellRef> expand_cells(const Grid& grid, const Options& opts);

/// One event in the log: a completed cell and its full recipe. `row`
/// carries the grid coordinates and metrics; `row.wall_ms` is the task
/// wall time (see header note — provenance only, outside the hash and the
/// determinism contract).
struct StoreRecord {
  std::string config_hash;
  Row row;
  std::size_t patterns = 0;
  double scale = 0.0;
  std::string config_json;  ///< full canonical recipe (may be empty on load)
  /// Quarantine marker (sweep/supervisor.hpp): a cell whose workers died
  /// --max-retries times is recorded with `failed` set — its `row` carries
  /// the grid coordinates but no metrics — so resume skips it instead of
  /// re-dying on it and materialize reports it separately from missing
  /// cells. Serialized as a *conditional* `"status":"failed"` key (plus the
  /// attempt count), so every healthy record's bytes — and therefore every
  /// pre-existing log — are untouched.
  bool failed = false;
  std::size_t attempts = 0;  ///< worker deaths that led to the quarantine
};

/// Serialize to one JSONL line (no trailing newline) / parse one line.
/// Doubles round-trip exactly (util::format_double), so a materialized row
/// is bit-identical to the computed one. parse throws std::invalid_argument
/// on torn or malformed lines.
std::string to_store_line(const StoreRecord& rec);
StoreRecord parse_store_line(const std::string& line);

/// Append-only log writer: opens O_APPEND, writes one record per line and
/// fsyncs each append — a crash never loses an acknowledged cell and at
/// most tears the final line (which load_store tolerates). Creating a new
/// log also fsyncs the parent directory: an fsync'd file in an un-fsync'd
/// directory can vanish wholesale on power loss. Thread-safe: workers
/// append as their tasks complete, each line is written with a single
/// write(2) (looped on EINTR/short writes). append() is also where the
/// util/fault injection points live (slow-cell, crash-before-append,
/// torn-write, crash-after-append — in that order, with the record's
/// config hash as context), because a record append is exactly the
/// durability edge every crash-safety claim is about.
class StoreWriter {
 public:
  explicit StoreWriter(std::string path);  ///< throws std::runtime_error
  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  void append(const StoreRecord& rec);  ///< throws std::runtime_error on I/O
  const std::string& path() const { return path_; }

 private:
  std::mutex mu_;
  std::string path_;
  int fd_ = -1;
};

/// A loaded (possibly merged) store: records keyed by config hash,
/// duplicate keys last-wins — so `cat shard0.jsonl shard1.jsonl` or
/// re-running a sweep into the same log are both valid stores. One
/// exception to last-wins: a completed (ok) record is never overwritten by
/// a `failed` quarantine record — success is sticky, whatever order shard
/// logs merge in (a failed record only marks that workers died *while the
/// cell was missing*).
struct StoreContents {
  std::map<std::string, StoreRecord> records;
  std::size_t lines = 0;       ///< non-empty lines seen
  std::size_t skipped = 0;     ///< unparsable lines (torn crash tails)
  std::size_t duplicates = 0;  ///< keys overwritten by a later record
};

/// Read and merge store logs in order. With `must_exist` false a missing
/// file contributes nothing (first run of a resumable sweep); with true it
/// throws std::runtime_error (materialize of a typo'd path must not
/// silently produce an empty table).
StoreContents load_store(const std::vector<std::string>& paths,
                         bool must_exist);

/// Incremental tail reader over one store log. Remembers the byte offset
/// of the consumed prefix, so polling after an append costs O(new bytes)
/// instead of O(log) — the supervisor polls once per worker event, and
/// before this class every poll re-parsed the whole log from byte 0.
/// Line parsing and merge semantics are exactly load_store's (keyed,
/// last-wins, success sticky); load_store itself is one
/// construct-and-drain of this reader per path, so the two can never
/// disagree about a log's contents.
class StoreReader {
 public:
  explicit StoreReader(std::string path) : path_(std::move(path)) {}

  /// Parse every line appended since the last poll and merge it into
  /// `into` (the caller keeps one StoreContents across polls). A trailing
  /// line not yet '\n'-terminated is left unconsumed: a concurrent
  /// StoreWriter lands each record with a single O_APPEND write(2) of a
  /// terminated line, so an unterminated tail is either a record still in
  /// flight or a torn crash line — and once the next append lands behind
  /// a torn tail, the glued "tail+record" line parses as garbage and is
  /// counted in `skipped`, byte-for-byte what load_store sees in a merged
  /// log with a mid-file tear. Only a final poll with `consume_tail` true
  /// (no writer left) judges a still-unterminated tail, exactly as
  /// load_store's getline does at EOF. A missing file contributes
  /// nothing; a file that shrank (log rotated or replaced) resets the
  /// reader to byte 0 and re-merges — records are keyed, so re-reads are
  /// idempotent. Returns the number of records merged.
  std::size_t poll(StoreContents& into, bool consume_tail = false);

  const std::string& path() const { return path_; }
  std::uint64_t offset() const { return offset_; }  ///< consumed-prefix bytes

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
};

/// Rebuild a Result from the log: grid-major rows for every cell whose
/// hash the store holds, absent cells listed in `missing`. The table is a
/// pure materialization — compute fields (jobs, cache_stats, sweep
/// wall_ms) stay zero/defaults and every row's wall_ms comes from its
/// record.
/// `missing` = cells with no record at all (the sweep is *incomplete*);
/// `quarantined` = cells whose record is a failed quarantine marker (the
/// sweep is *degraded* — every attempt died). Both sorted by config hash.
struct Materialized {
  Result result;
  std::vector<CellRef> missing;
  std::vector<CellRef> quarantined;
};
Materialized materialize(const Grid& grid, const Options& opts,
                         const StoreContents& store);

}  // namespace sm::sweep
