// Parallel attack-sweep driver.
//
// The paper's headline tables are a cross product — benchmarks × seeds ×
// split layers × defenses × attackers, each cell an independent
// place/route/(protect)/split/attack pipeline — which makes them
// embarrassingly parallel. This module expands such a product (`Grid`) into
// tasks, runs them over a util::ThreadPool, and aggregates the CCR/OER/HD
// metrics into a util::Table plus CSV/JSON exports.
//
// Determinism guarantee: every metric in the result depends only on the
// grid coordinates of its row — (benchmark, seed, split layer, defense,
// attacker) plus the sweep options — never on the number of worker threads
// or on scheduling order. Per-task randomness is derived with
// util::task_seed from the row's own grid seed, and rows live at fixed
// grid-major indices, so `run(grid, {.jobs = 8})` is bit-identical to
// `.jobs = 1` (only the wall-clock fields differ). tests/test_sweep.cpp and
// tests/test_sweep_attackers.cpp hold this as a regression for every
// attacker.
//
// Work granularity: one task per (benchmark, seed, defense) triple; the
// task's layout is computed once, split at every split layer of the grid,
// and each split view is attacked by every attacker (a layout does not
// depend on where it is later cut or who attacks it — recomputing it per
// cell would only burn CPU). Each (task × split × attacker) triple lands in
// its own pre-assigned result row.
//
// Cross-defense sharing: every defense of one (benchmark, seed) pair starts
// from the same generated netlist, attacks on the unprotected reference
// start from the same base placement and route, and the placement-keeping
// baselines (placement perturbation re-places nothing; routing perturbation
// / blockage re-route the base placement) start from the shared base
// placement. Those stage products live in a core::LayoutCache shared by the
// whole sweep (one entry per (benchmark, seed)), built at most once by
// whichever task needs them first; Result::cache_stats counts the builds —
// the base placement runs exactly once per (benchmark, seed), which
// tests/test_sweep.cpp asserts. (protect() and the pin-swap baseline still
// place their *erroneous* netlists: those placements are the defense
// mechanism itself and cannot be shared.)
//
// Persistence: the run loop is event-sourced around per-cell completion
// callbacks — with Options::store_path set, every finished cell is
// appended (fsync'd) to an append-only JSONL log keyed by a config hash
// of the cell's full recipe, and sweeps can resume (skip logged cells) or
// shard (--shard i/N task split whose logs merge into one store). The
// determinism guarantee extends to both: resumed == from-scratch and
// merged shards == unsharded, bit-identical modulo wall_ms and
// test-enforced. sweep/store.hpp is the substrate.
#pragma once

#include "core/pipeline.hpp"
#include "util/table.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sm::sweep {

/// Layout/defense configuration attacked by a sweep cell. Beyond the
/// paper's own flow the axis covers the prior-art baselines of
/// core/baselines.hpp, so every comparison row of Tables 4/5/6 is one
/// reproducible grid cell.
enum class Defense {
  Unprotected,    ///< plain layout of the original netlist
  Proposed,       ///< the paper's randomize + correct + lift flow
  PlacePerturb,   ///< Wang [5]: random bounded placement swaps
  GColor,         ///< Sengupta [8]: swaps within equal-fan-in classes
  GType1,         ///< Sengupta [8]: swaps within identical cell types
  GType2,         ///< Sengupta [8]: swaps within same logic function
  PinSwap,        ///< Rajendran [3]: real connection swaps, BEOL-corrected
  RoutePerturb,   ///< Wang [12]: net elevation/detour above the split
  RouteBlockage,  ///< Magana [7]: lateral blockages force wires upward
};

const char* to_string(Defense d);
/// Parse a defense name ("unprotected"/"original", "proposed"/"protected",
/// "place-perturb", "g-color", "g-type1", "g-type2", "pin-swap",
/// "route-perturb", "route-blockage"). Throws std::invalid_argument
/// otherwise.
Defense defense_from_string(const std::string& name);

/// True for the prior-art baselines (everything but Unprotected/Proposed).
bool is_baseline(Defense d);

/// The fixed recipe parameters of a baseline defense — the bench-harness
/// precedents (Tables 4/5/6), centralized so the run loop and the config
/// hash can never disagree. Sizes that depend on the instance (swap count,
/// blockage size) are expressed as rules (divisors), not absolutes: the
/// rule is what the hash covers.
struct BaselineRecipe {
  double fraction = 0.0;      ///< gate/net fraction perturbed
  double radius_frac = 0.0;   ///< swap radius as a die-width fraction
  std::size_t min_swaps = 0;  ///< pin-swap floor
  std::size_t swap_divisor = 0;  ///< swaps = max(min_swaps, nets / divisor)
  int blockages = 0;             ///< blockage count
  int blockage_max_layer = 0;    ///< blockages span M1..this
  int width_divisor = 0;  ///< blockage size = die width / width_divisor
};
/// The recipe for `d`; zeros for non-baseline defenses.
BaselineRecipe baseline_recipe(Defense d);

/// Attack model evaluated against a sweep cell's FEOL.
enum class Attacker {
  Proximity,  ///< network-flow proximity attack (recovers a netlist)
  CRouting,   ///< routing-centric candidate confinement (Magana [6])
  Sat,        ///< proximity recovery + SAT equivalence dis-correlation
};

const char* to_string(Attacker a);
/// Parse "proximity", "crouting", or "sat". Throws std::invalid_argument
/// otherwise.
Attacker attacker_from_string(const std::string& name);

/// Where a benchmark's generator spec comes from.
enum class Workload {
  Iscas85,    ///< published ISCAS-85 profile
  Superblue,  ///< published superblue profile, scaled by Grid::scale
  Synthetic,  ///< workloads::synthetic_profile (cell counts past the suites)
};

const char* to_string(Workload w);

/// The cross product a sweep evaluates. Benchmarks may mix ISCAS-85,
/// superblue (`scale` applies), and synthetic workload-generator names.
struct Grid {
  std::vector<std::string> benchmarks;
  std::vector<std::uint64_t> seeds = {1};
  std::vector<int> split_layers = {3, 4, 5};
  std::vector<Defense> defenses = {Defense::Unprotected, Defense::Proposed};
  std::vector<Attacker> attackers = {Attacker::Proximity};
  double scale = 0.02;  ///< superblue clone scale

  /// Rows run(...) will produce: the full product size.
  std::size_t combinations() const;

  /// Apply one grid key ("benchmarks", "seeds", "splits"/"split-layers",
  /// "defenses", "attackers", "scale") with a comma-separated value,
  /// replacing that dimension. Empty list entries are skipped. Throws
  /// std::invalid_argument on unknown keys, defenses, attackers, or
  /// malformed numbers — the --grid spec and the individual CLI flags
  /// share this validated path.
  void set(const std::string& key, const std::string& value);

  /// Parse a compact spec: semicolon-separated key=value pairs applied via
  /// set(), e.g.
  ///   "benchmarks=c432,c880;seeds=1,2;splits=3,4,5;defenses=proposed;"
  ///   "attackers=proximity,crouting;scale=0.02"
  /// Omitted keys keep the defaults above.
  static Grid parse(const std::string& spec);
};

struct Options {
  std::size_t jobs = 1;           ///< worker threads; 0 = hardware concurrency
  std::size_t patterns = 100000;  ///< simulation patterns for OER/HD

  /// Append-only result log (sweep/store.hpp). Empty = no store. When set,
  /// every completed cell is appended (and fsync'd) the moment its task
  /// finishes, so a crash loses only in-flight work.
  std::string store_path;
  /// Skip cells whose config hash already exists in `store_path` and
  /// compute only the missing ones; skipped rows are filled from the log.
  /// The resumed result is bit-identical to a from-scratch run (wall_ms
  /// aside) — test-enforced. Requires store_path; a missing log file is a
  /// fresh start, not an error.
  bool resume = false;
  /// Deterministic task split across processes: this invocation runs only
  /// tasks with `task_index % shard_count == shard_index` and its rows
  /// cover exactly those tasks' cells (still grid-major). Shard logs merge
  /// into one store — union-materialize equals the unsharded sweep,
  /// test-enforced. shard_count must be >= 1 and shard_index < shard_count.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

/// The exact FlowOptions / RandomizeOptions every sweep cell of
/// (benchmark, seed) uses — also the recipe the store's config hash covers
/// (core::canonical_flow_json). Scheduling knobs (router jobs) are applied
/// separately by the run loop and excluded from the hash.
core::FlowOptions task_flow(const std::string& benchmark, Workload workload,
                            std::uint64_t seed, double scale);
core::RandomizeOptions task_randomize(std::uint64_t seed);

/// One evaluated grid cell. The metric columns are attacker-polymorphic:
///  - proximity: CCR / CCR-protected / OER / HD / open_sinks as before;
///  - crouting: open_sinks = #vpins, ccr = ccr_protected = match-in-list at
///    the middle bounding box, els = E[LS] there, oer = hd = 0 (crouting
///    confines the solution space, it recovers nothing to simulate);
///  - sat: proximity metrics plus `equiv` — the core::equivalence verdict
///    of the recovered netlist against the original (the dis-correlation
///    check: a defense "wins" when recovery is provably inequivalent).
struct Row {
  std::string benchmark;
  std::uint64_t seed = 0;
  int split_layer = 0;
  Defense defense = Defense::Unprotected;
  Attacker attacker = Attacker::Proximity;

  double ccr = 0.0;            ///< correct-connection rate, all open sinks
  double ccr_protected = 0.0;  ///< CCR restricted to randomized connections
  double oer = 0.0;            ///< recovered vs original netlist
  double hd = 0.0;
  std::size_t open_sinks = 0;
  std::size_t swaps = 0;    ///< defense swaps (0 for Unprotected)
  double els = 0.0;  ///< crouting E[LS] at the middle bbox; 0 otherwise
  /// SAT-attacker equivalence verdict of the recovered netlist vs the
  /// original: 1 Equivalent, 0 Inequivalent, 2 Unknown (budget exhausted
  /// or incomparable), -1 not applicable (non-sat attackers).
  int equiv = -1;
  /// Task wall time, recorded at task granularity (all splits of one
  /// (benchmark, seed, defense) task share one timer because they share
  /// one layout). Provenance only: excluded from the store's config hash
  /// and from every determinism contract (jobs-identity, resumed ==
  /// from-scratch, merged shards == unsharded) — on resume it covers only
  /// the splits actually recomputed, and rows filled from the store carry
  /// the wall of the run that originally computed them.
  double wall_ms = 0.0;
};

struct Result {
  /// Grid-major: benchmark, seed, defense, split, attacker (innermost).
  /// Under sharding, only the cells of this shard's tasks (grid-major
  /// among them) — the full table comes from materializing the merged
  /// shard logs.
  std::vector<Row> rows;
  std::size_t jobs = 1;   ///< resolved worker count actually used
  /// Router threads inside each task: the leftover worker budget when the
  /// grid has fewer tasks than requested workers (budget / jobs), so
  /// single-cell sweeps still exploit the pool at the router level. 1 on a
  /// full grid. Never changes metrics — the router is jobs-invariant.
  std::size_t router_jobs = 1;
  double wall_ms = 0.0;   ///< whole-sweep wall time
  /// Shared-stage build counters: netlists/base placements/base routes
  /// each run exactly once per (benchmark, seed) that needed them,
  /// independent of how many defenses rode on top (hits counts the
  /// reuses). The erroneous-netlist placements inside protect() are
  /// intentionally uncached and not counted here.
  core::LayoutCache::Stats cache_stats;
  /// Cells actually computed this invocation vs filled from the resume
  /// store; computed + resumed == rows.size().
  std::size_t computed_cells = 0;
  std::size_t resumed_cells = 0;
  /// Cells the resume store quarantined ("status":"failed" records written
  /// by sweep/supervisor.hpp after repeated worker deaths): skipped, not
  /// recomputed — a worker re-running a poison cell would just die again —
  /// and excluded from rows (they have no metrics). Always 0 without
  /// --resume or without a supervisor in the picture.
  std::size_t quarantined_cells = 0;
  std::size_t shard_index = 0;  ///< echo of Options (0/1 when unsharded)
  std::size_t shard_count = 1;

  /// Per-row table (one line per grid cell).
  util::Table table() const;
  /// Mean CCR/OER/HD per (benchmark, defense), averaged over seeds and
  /// split layers — the shape the paper's Tables 4/5 report.
  util::Table summary() const;
  std::string to_csv() const;
  std::string to_json() const;
};

/// Run the sweep. Throws std::invalid_argument for unknown benchmark names
/// and invalid shard/resume combinations (before any task runs);
/// exceptions thrown by a task propagate after the whole batch finishes
/// (lowest row index wins, see util::parallel_for). With
/// Options::store_path set, each completed cell is appended to the
/// append-only log as its task finishes (sweep/store.hpp); with resume,
/// cells already in the log are skipped and their rows filled from it.
Result run(const Grid& grid, const Options& opts);

}  // namespace sm::sweep
