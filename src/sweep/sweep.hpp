// Parallel attack-sweep driver.
//
// The paper's headline tables are a cross product — benchmarks × seeds ×
// split layers × defense configurations, each cell an independent
// place/route/(protect)/split/attack pipeline — which makes them
// embarrassingly parallel. This module expands such a product (`Grid`) into
// tasks, runs them over a util::ThreadPool, and aggregates the CCR/OER/HD
// metrics into a util::Table plus CSV/JSON exports.
//
// Determinism guarantee: every metric in the result depends only on the
// grid coordinates of its row — (benchmark, seed, split layer, defense) plus
// the sweep options — never on the number of worker threads or on scheduling
// order. Per-task randomness is derived with util::task_seed from the row's
// own grid seed, and rows live at fixed grid-major indices, so
// `run(grid, {.jobs = 8})` is bit-identical to `.jobs = 1` (only the wall
// -clock fields differ). tests/test_sweep.cpp holds this as a regression.
//
// Work granularity: one task per (benchmark, seed, defense) triple; the
// task's layout is computed once and attacked at every split layer of the
// grid (a layout does not depend on where it is later cut — recomputing it
// per split would only burn CPU). Each (task × split) pair lands in its own
// pre-assigned result row.
//
// Cross-defense sharing: every defense of one (benchmark, seed) pair starts
// from the same generated netlist, and attacks on the unprotected reference
// start from the same base placement and route. Those stage products live
// in a core::LayoutCache shared by the whole sweep (one entry per
// (benchmark, seed)), built at most once by whichever task needs them
// first; Result::cache_stats counts the builds — the base placement runs
// exactly once per (benchmark, seed), which tests/test_sweep.cpp asserts.
// (protect() still places each protected defense's *erroneous* netlist:
// that placement is the defense mechanism itself and cannot be shared.)
#pragma once

#include "core/pipeline.hpp"
#include "util/table.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sm::sweep {

/// Layout/defense configuration attacked by a sweep cell.
enum class Defense {
  Unprotected,  ///< plain layout of the original netlist
  Proposed,     ///< the paper's randomize + correct + lift flow
};

const char* to_string(Defense d);
/// Parse "unprotected"/"original" or "proposed"/"protected". Throws
/// std::invalid_argument otherwise.
Defense defense_from_string(const std::string& name);

/// The cross product a sweep evaluates. Benchmarks may mix ISCAS-85 and
/// superblue names (`scale` applies to the superblue ones).
struct Grid {
  std::vector<std::string> benchmarks;
  std::vector<std::uint64_t> seeds = {1};
  std::vector<int> split_layers = {3, 4, 5};
  std::vector<Defense> defenses = {Defense::Unprotected, Defense::Proposed};
  double scale = 0.02;  ///< superblue clone scale

  /// Rows run(...) will produce: the full product size.
  std::size_t combinations() const;

  /// Apply one grid key ("benchmarks", "seeds", "splits"/"split-layers",
  /// "defenses", "scale") with a comma-separated value, replacing that
  /// dimension. Empty list entries are skipped. Throws
  /// std::invalid_argument on unknown keys, defenses, or malformed numbers
  /// — the --grid spec and the individual CLI flags share this validated
  /// path.
  void set(const std::string& key, const std::string& value);

  /// Parse a compact spec: semicolon-separated key=value pairs applied via
  /// set(), e.g.
  ///   "benchmarks=c432,c880;seeds=1,2;splits=3,4,5;defenses=proposed;scale=0.02"
  /// Omitted keys keep the defaults above.
  static Grid parse(const std::string& spec);
};

struct Options {
  std::size_t jobs = 1;           ///< worker threads; 0 = hardware concurrency
  std::size_t patterns = 100000;  ///< simulation patterns for OER/HD
};

/// One evaluated grid cell.
struct Row {
  std::string benchmark;
  std::uint64_t seed = 0;
  int split_layer = 0;
  Defense defense = Defense::Unprotected;

  double ccr = 0.0;            ///< correct-connection rate, all open sinks
  double ccr_protected = 0.0;  ///< CCR restricted to randomized connections
  double oer = 0.0;            ///< recovered vs original netlist
  double hd = 0.0;
  std::size_t open_sinks = 0;
  std::size_t swaps = 0;    ///< defense swaps (0 for Unprotected)
  double wall_ms = 0.0;     ///< task wall time, NOT part of the determinism
                            ///< contract (splits of a task share one timer)
};

struct Result {
  std::vector<Row> rows;  ///< grid-major: benchmark, seed, defense, split
  std::size_t jobs = 1;   ///< resolved worker count actually used
  /// Router threads inside each task: the leftover worker budget when the
  /// grid has fewer tasks than requested workers (budget / jobs), so
  /// single-cell sweeps still exploit the pool at the router level. 1 on a
  /// full grid. Never changes metrics — the router is jobs-invariant.
  std::size_t router_jobs = 1;
  double wall_ms = 0.0;   ///< whole-sweep wall time
  /// Shared-stage build counters: netlists/base placements/base routes
  /// each run exactly once per (benchmark, seed) that needed them,
  /// independent of how many defenses rode on top (hits counts the
  /// reuses). The erroneous-netlist placements inside protect() are
  /// intentionally uncached and not counted here.
  core::LayoutCache::Stats cache_stats;

  /// Per-row table (one line per grid cell).
  util::Table table() const;
  /// Mean CCR/OER/HD per (benchmark, defense), averaged over seeds and
  /// split layers — the shape the paper's Tables 4/5 report.
  util::Table summary() const;
  std::string to_csv() const;
  std::string to_json() const;
};

/// Run the sweep. Throws std::invalid_argument for unknown benchmark names
/// (before any task runs); exceptions thrown by a task propagate after the
/// whole batch finishes (lowest row index wins, see util::parallel_for).
Result run(const Grid& grid, const Options& opts);

}  // namespace sm::sweep
