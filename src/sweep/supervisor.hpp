// Fault-tolerant sweep supervisor: the long-running coordinator layer on
// top of the event-sourced store.
//
// `sm_flow sweep` computes cells in-process: one crash, hang, or OOM takes
// the whole grid down and recovery is a manual --resume. At
// millions-of-cells scale the system must ride through those failures on
// its own, so `serve()` moves the computation into *child worker
// processes* it forks and monitors, and keeps only coordination state —
// which is itself reconstructible from the store log at any time:
//
//             ┌────────────────────────────────────────────┐
//             │ serve(): expand grid → load store → missing │
//             │   dispatch / watchdog / retry / quarantine  │
//             └──┬──────────────┬──────────────┬────────────┘
//        fork+exec         fork+exec      SIGKILL on deadline
//           ▼                  ▼                ▼
//   sm_flow sweep --resume   worker …         worker …        (children)
//           │ append (fsync'd, O_APPEND)        │
//           └──────────────► results.jsonl ◄────┘
//                        (single source of truth)
//
// Robustness semantics, all test- and CI-enforced:
//  - one *work unit* = one (benchmark, seed, defense) task (its cells
//    share a layout); the worker is `sm_flow sweep` on a single-task grid
//    with --resume, so it recomputes exactly the missing cells and appends
//    each one durably — supervisor and worker share no protocol beyond
//    the store log, which is why worker death loses nothing acknowledged;
//  - watchdog: each dispatch gets a wall-clock budget of
//    cell_timeout_s × (missing cells), SIGKILL on expiry — a hung worker
//    (deadlock, runaway solver) is indistinguishable from a dead one
//    one deadline later;
//  - retry with exponential backoff + deterministic jitter
//    (backoff_delay_ms): a dead worker's task re-queues, and because the
//    worker resumes from the store, every attempt that landed at least one
//    record is forward progress;
//  - blame and quarantine: after a death, the first still-missing cell in
//    task order is charged (records append in cell order, so it is the
//    cell that was in flight); a cell charged max_retries times is
//    *quarantined* — a "status":"failed" record is appended under its
//    config hash (sweep/store.hpp) and the sweep continues without it.
//    Resume skips quarantined cells, materialize reports them separately
//    and exits 2 ("degraded") instead of 1 ("incomplete").
//
// Convergence invariant (the headline, held by CI chaos smokes): under any
// schedule of injected worker deaths (util/fault.hpp points, armed via
// SM_FAULT which workers inherit) in which each cell can eventually
// complete, serve() converges and the materialized table is byte-identical
// (modulo wall columns) to a clean single-process sweep — worker death,
// torn log tails, and restarts are invisible in the results.
//
// serve() itself stays fault-free by construction: it disarms this
// process's SM_FAULT schedule on entry (children still inherit the
// environment), computes nothing, and holds no result state — if the
// supervisor itself dies, re-running serve() resumes from the log exactly
// like a worker would.
#pragma once

#include "sweep/store.hpp"
#include "sweep/sweep.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sm::sweep {

/// One dispatchable work unit: a (benchmark, seed, defense) task and all
/// of its grid cells (task-major order, attacker innermost — the order
/// records append in, which blame attribution relies on).
struct WorkUnit {
  std::size_t task_index = 0;
  std::string benchmark;
  std::uint64_t seed = 0;
  Defense defense = Defense::Unprotected;
  std::vector<CellRef> cells;
};

struct ServeOptions {
  /// Sweep options forwarded to workers. store_path is required (the log
  /// IS the coordination medium); resume/shard fields are owned by the
  /// supervisor and must be left at their defaults.
  Options sweep;
  std::size_t workers = 1;     ///< max concurrent worker processes; 0 = hw
  double cell_timeout_s = 300; ///< watchdog budget per missing cell
  std::size_t max_retries = 3; ///< worker deaths before a cell is quarantined
  double backoff_base_ms = 100;  ///< first retry delay; doubles per attempt
  std::uint64_t backoff_seed = 1;  ///< jitter stream seed
  /// Override the worker command for a unit (tests dispatch /bin/sh stand-
  /// ins); null = the real thing, self_exe_path() + "sweep" on a
  /// single-task --grid with --resume --store.
  std::function<std::vector<std::string>(const WorkUnit&)> command;
  /// Progress sink ("spawned…", "worker died…", "quarantined…"); null =
  /// silent.
  std::function<void(const std::string&)> log;
};

struct ServeReport {
  std::size_t total_cells = 0;
  std::size_t already_stored = 0;  ///< complete before we started
  std::size_t pre_quarantined = 0; ///< failed records already in the log
  std::size_t computed = 0;        ///< cells that landed during this serve
  std::size_t quarantined = 0;     ///< cells this serve quarantined
  std::size_t workers_spawned = 0;
  std::size_t worker_deaths = 0;   ///< crashes + watchdog kills
  std::size_t watchdog_kills = 0;  ///< subset of worker_deaths
  double wall_ms = 0;

  /// Every cell accounted for: nothing missing, though possibly degraded.
  bool complete() const {
    return already_stored + computed + pre_quarantined + quarantined ==
           total_cells;
  }
  bool degraded() const { return pre_quarantined + quarantined > 0; }
};

/// Deterministic retry delay: backoff_base_ms · 2^(attempt-1), capped at
/// 60 s, times a jitter factor in [1, 1.5) drawn from (seed, salt,
/// attempt) — pure function, so a retry schedule is reproducible and
/// testable. `salt` is the work unit's task index (de-synchronizes
/// sibling tasks that died together).
double backoff_delay_ms(std::size_t attempt, double base_ms,
                        std::uint64_t seed, std::uint64_t salt);

/// The grid spec ("benchmarks=…;seeds=…;…") of the single-task grid a
/// worker runs for `unit` — Grid::parse of it expands exactly the unit's
/// cells with identical config hashes (round-trip is test-enforced; scale
/// rides through util::format_double so the double is bit-exact).
std::string worker_grid_spec(const Grid& grid, const WorkUnit& unit);

/// Expand the grid into work units (every task, in task order).
std::vector<WorkUnit> work_units(const Grid& grid, const Options& opts);

/// Run the supervisor until every cell of `grid` is stored or quarantined.
/// Throws std::invalid_argument on option misuse (no store path, sharded
/// sweep options, zero timeout/retries) and std::runtime_error when
/// workers cannot be spawned at all.
ServeReport serve(const Grid& grid, const ServeOptions& opts);

}  // namespace sm::sweep
