#include "sweep/store.hpp"

#include "core/pipeline.hpp"
#include "util/config_hash.hpp"
#include "util/json.hpp"
#include "workloads/generator.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace sm::sweep {

std::string describe(const CellRef& cell) {
  std::ostringstream os;
  os << cell.benchmark << " seed=" << cell.seed << " M" << cell.split_layer
     << ' ' << to_string(cell.defense) << " [" << cell.config_hash << ']';
  return os.str();
}

std::string cell_config_json(const Grid& grid, const Options& opts,
                             const std::string& benchmark, bool superblue,
                             std::uint64_t seed, Defense defense,
                             int split_layer) {
  // Lexicographic keys — the canonical-JSON convention. The "format" tag
  // versions the recipe schema itself: field additions/removals bump it so
  // an old log can never silently satisfy a new recipe.
  util::JsonWriter w;
  w.begin_object();
  w.key("benchmark").value(benchmark);
  w.key("defense").value(to_string(defense));
  w.key("flow").raw(
      core::canonical_flow_json(task_flow(benchmark, superblue, seed,
                                          grid.scale)));
  w.key("format").value("sm-sweep-cell-v1");
  w.key("patterns").value(opts.patterns);
  if (defense == Defense::Proposed) {
    // Randomization exists only inside protect(); hashing it into
    // unprotected cells would invalidate them on randomizer tuning
    // changes that cannot affect their metrics.
    const auto r = task_randomize(seed);
    w.key("randomize").begin_object();
    w.key("check_patterns").value(r.check_patterns);
    w.key("seed").value(r.seed);
    w.key("target_oer").value(r.target_oer);
    w.end_object();
  }
  w.key("scale").value(grid.scale);
  w.key("seed").value(seed);
  w.key("split_layer").value(split_layer);
  w.end_object();
  return w.str();
}

std::vector<CellRef> expand_cells(const Grid& grid, const Options& opts) {
  // Validate every benchmark before expanding anything — a typo must throw
  // even when the split list is empty and no cells would exist.
  const auto& sb = workloads::superblue_names();
  const auto& iscas = workloads::iscas85_names();
  std::vector<bool> is_superblue(grid.benchmarks.size());
  for (std::size_t bi = 0; bi < grid.benchmarks.size(); ++bi) {
    const auto& bench = grid.benchmarks[bi];
    is_superblue[bi] = std::find(sb.begin(), sb.end(), bench) != sb.end();
    if (!is_superblue[bi] &&
        std::find(iscas.begin(), iscas.end(), bench) == iscas.end())
      throw std::invalid_argument("sweep: unknown benchmark '" + bench + "'");
  }

  std::vector<CellRef> cells;
  cells.reserve(grid.combinations());
  std::size_t task_index = 0;
  for (std::size_t bi = 0; bi < grid.benchmarks.size(); ++bi) {
    for (const auto seed : grid.seeds) {
      for (const auto defense : grid.defenses) {
        for (std::size_t li = 0; li < grid.split_layers.size(); ++li) {
          CellRef c;
          c.task_index = task_index;
          c.split_index = li;
          c.benchmark = grid.benchmarks[bi];
          c.seed = seed;
          c.defense = defense;
          c.split_layer = grid.split_layers[li];
          c.superblue = is_superblue[bi];
          c.config_hash = util::config_hash(
              cell_config_json(grid, opts, c.benchmark, c.superblue, seed,
                               defense, c.split_layer));
          cells.push_back(std::move(c));
        }
        ++task_index;
      }
    }
  }
  return cells;
}

std::string to_store_line(const StoreRecord& rec) {
  util::JsonWriter w;
  w.begin_object();
  w.key("benchmark").value(rec.row.benchmark);
  w.key("ccr").value(rec.row.ccr);
  w.key("ccr_protected").value(rec.row.ccr_protected);
  if (!rec.config_json.empty()) w.key("config").raw(rec.config_json);
  w.key("config_hash").value(rec.config_hash);
  w.key("defense").value(to_string(rec.row.defense));
  w.key("hd").value(rec.row.hd);
  w.key("oer").value(rec.row.oer);
  w.key("open_sinks").value(rec.row.open_sinks);
  w.key("patterns").value(rec.patterns);
  w.key("scale").value(rec.scale);
  w.key("seed").value(rec.row.seed);
  w.key("split_layer").value(rec.row.split_layer);
  w.key("swaps").value(rec.row.swaps);
  w.key("wall_ms").value(rec.row.wall_ms);
  w.end_object();
  return w.str();
}

StoreRecord parse_store_line(const std::string& line) {
  const auto v = util::json::parse(line);
  if (!v.is_object())
    throw std::invalid_argument("store: record line is not an object");
  StoreRecord rec;
  rec.config_hash = v.at("config_hash").as_string();
  rec.row.benchmark = v.at("benchmark").as_string();
  rec.row.seed = v.at("seed").as_u64();
  rec.row.split_layer = static_cast<int>(v.at("split_layer").as_int());
  rec.row.defense = defense_from_string(v.at("defense").as_string());
  rec.row.ccr = v.at("ccr").as_double();
  rec.row.ccr_protected = v.at("ccr_protected").as_double();
  rec.row.oer = v.at("oer").as_double();
  rec.row.hd = v.at("hd").as_double();
  rec.row.open_sinks = static_cast<std::size_t>(v.at("open_sinks").as_u64());
  rec.row.swaps = static_cast<std::size_t>(v.at("swaps").as_u64());
  rec.row.wall_ms = v.at("wall_ms").as_double();
  rec.patterns = static_cast<std::size_t>(v.at("patterns").as_u64());
  rec.scale = v.at("scale").as_double();
  return rec;
}

StoreWriter::StoreWriter(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0)
    throw std::runtime_error("store: cannot open '" + path_ +
                             "': " + std::strerror(errno));
}

StoreWriter::~StoreWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void StoreWriter::append(const StoreRecord& rec) {
  std::string line = to_store_line(rec);
  line += '\n';
  const std::lock_guard<std::mutex> lock(mu_);
  // One write(2) per record: O_APPEND makes concurrent appends (other
  // shards pointed at the same log) land whole-line, and the fsync makes
  // the record durable before the task is considered complete.
  std::size_t off = 0;
  while (off < line.size()) {
    const auto n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("store: write to '" + path_ +
                               "' failed: " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0)
    throw std::runtime_error("store: fsync of '" + path_ +
                             "' failed: " + std::strerror(errno));
}

StoreContents load_store(const std::vector<std::string>& paths,
                         bool must_exist) {
  StoreContents out;
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) {
      if (must_exist)
        throw std::runtime_error("store: cannot read '" + path + "'");
      continue;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ++out.lines;
      StoreRecord rec;
      try {
        rec = parse_store_line(line);
      } catch (const std::invalid_argument&) {
        // A crash can tear the final line of a log (and a merged store
        // inherits such tails mid-file); the record it would have held
        // was never acknowledged, so skipping is the correct recovery.
        ++out.skipped;
        continue;
      }
      auto [it, inserted] =
          out.records.insert_or_assign(rec.config_hash, std::move(rec));
      (void)it;
      if (!inserted) ++out.duplicates;
    }
  }
  return out;
}

Materialized materialize(const Grid& grid, const Options& opts,
                         const StoreContents& store) {
  Materialized out;
  const auto cells = expand_cells(grid, opts);
  out.result.rows.reserve(cells.size());
  for (const auto& cell : cells) {
    const auto it = store.records.find(cell.config_hash);
    if (it == store.records.end()) {
      out.missing.push_back(cell);
      continue;
    }
    out.result.rows.push_back(it->second.row);
    ++out.result.resumed_cells;
  }
  return out;
}

}  // namespace sm::sweep
