#include "sweep/store.hpp"

#include "core/pipeline.hpp"
#include "util/config_hash.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "workloads/generator.hpp"

#include <chrono>
#include <thread>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace sm::sweep {

std::string describe(const CellRef& cell) {
  std::ostringstream os;
  os << cell.benchmark << " (" << to_string(cell.workload) << ") seed="
     << cell.seed << " M" << cell.split_layer << ' ' << to_string(cell.defense)
     << " attacker=" << to_string(cell.attacker) << " [" << cell.config_hash
     << ']';
  return os.str();
}

std::string cell_config_json(const Grid& grid, const Options& opts,
                             const std::string& benchmark, Workload workload,
                             std::uint64_t seed, Defense defense,
                             int split_layer, Attacker attacker) {
  // Lexicographic keys — the canonical-JSON convention. The "format" tag
  // versions the recipe schema itself: field additions/removals bump it so
  // an old log can never silently satisfy a new recipe. Axis extensions
  // stay *conditional* ("attacker" only when non-proximity, "baseline" only
  // for baseline defenses) so the hash of every recipe expressible before
  // the axis existed is unchanged — the cross-release resume contract
  // pinned by tests/test_store.cpp.
  const core::FlowOptions flow = task_flow(benchmark, workload, seed,
                                           grid.scale);
  util::JsonWriter w;
  w.begin_object();
  if (attacker != Attacker::Proximity)
    w.key("attacker").value(to_string(attacker));
  if (is_baseline(defense)) {
    // The baseline's non-flow recipe constants. Anything here that changed
    // would change the produced layout, so it belongs in the hash.
    const BaselineRecipe r = baseline_recipe(defense);
    w.key("baseline").begin_object();
    switch (defense) {
      case Defense::PlacePerturb:
      case Defense::GColor:
      case Defense::GType1:
      case Defense::GType2:
        w.key("fraction").value(r.fraction);
        w.key("radius_frac").value(r.radius_frac);
        break;
      case Defense::PinSwap:
        w.key("min_swaps").value(r.min_swaps);
        w.key("swap_divisor").value(r.swap_divisor);
        break;
      case Defense::RoutePerturb:
        w.key("elevate_to").value(flow.lift_layer);
        w.key("fraction").value(r.fraction);
        break;
      case Defense::RouteBlockage:
        w.key("blockages").value(r.blockages);
        w.key("max_layer").value(r.blockage_max_layer);
        w.key("width_divisor").value(r.width_divisor);
        break;
      case Defense::Unprotected:
      case Defense::Proposed:
        break;  // not baselines; unreachable under is_baseline()
    }
    w.end_object();
  }
  w.key("benchmark").value(benchmark);
  w.key("defense").value(to_string(defense));
  w.key("flow").raw(core::canonical_flow_json(flow));
  w.key("format").value("sm-sweep-cell-v1");
  w.key("patterns").value(opts.patterns);
  if (defense == Defense::Proposed) {
    // Randomization exists only inside protect(); hashing it into
    // unprotected cells would invalidate them on randomizer tuning
    // changes that cannot affect their metrics.
    const auto r = task_randomize(seed);
    w.key("randomize").begin_object();
    w.key("check_patterns").value(r.check_patterns);
    w.key("seed").value(r.seed);
    w.key("target_oer").value(r.target_oer);
    w.end_object();
  }
  w.key("scale").value(grid.scale);
  w.key("seed").value(seed);
  w.key("split_layer").value(split_layer);
  w.end_object();
  return w.str();
}

std::vector<CellRef> expand_cells(const Grid& grid, const Options& opts) {
  // Validate every benchmark before expanding anything — a typo must throw
  // even when the split list is empty and no cells would exist.
  const auto& sb = workloads::superblue_names();
  const auto& iscas = workloads::iscas85_names();
  const auto& synth = workloads::synthetic_names();
  std::vector<Workload> workload(grid.benchmarks.size());
  for (std::size_t bi = 0; bi < grid.benchmarks.size(); ++bi) {
    const auto& bench = grid.benchmarks[bi];
    if (std::find(sb.begin(), sb.end(), bench) != sb.end())
      workload[bi] = Workload::Superblue;
    else if (std::find(synth.begin(), synth.end(), bench) != synth.end())
      workload[bi] = Workload::Synthetic;
    else if (std::find(iscas.begin(), iscas.end(), bench) != iscas.end())
      workload[bi] = Workload::Iscas85;
    else
      throw std::invalid_argument("sweep: unknown benchmark '" + bench + "'");
  }

  std::vector<CellRef> cells;
  cells.reserve(grid.combinations());
  std::size_t task_index = 0;
  for (std::size_t bi = 0; bi < grid.benchmarks.size(); ++bi) {
    for (const auto seed : grid.seeds) {
      for (const auto defense : grid.defenses) {
        for (std::size_t li = 0; li < grid.split_layers.size(); ++li) {
          for (std::size_t ai = 0; ai < grid.attackers.size(); ++ai) {
            CellRef c;
            c.task_index = task_index;
            c.split_index = li;
            c.attacker_index = ai;
            c.benchmark = grid.benchmarks[bi];
            c.seed = seed;
            c.defense = defense;
            c.split_layer = grid.split_layers[li];
            c.attacker = grid.attackers[ai];
            c.workload = workload[bi];
            c.config_hash = util::config_hash(
                cell_config_json(grid, opts, c.benchmark, c.workload, seed,
                                 defense, c.split_layer, c.attacker));
            cells.push_back(std::move(c));
          }
        }
        ++task_index;
      }
    }
  }
  return cells;
}

std::string to_store_line(const StoreRecord& rec) {
  // Quarantine fields are *conditional* (failed records only) so every
  // healthy record — i.e. every record in every pre-quarantine log — keeps
  // its exact bytes; tests/test_store.cpp pins the round-trip.
  util::JsonWriter w;
  w.begin_object();
  w.key("attacker").value(to_string(rec.row.attacker));
  if (rec.failed) w.key("attempts").value(rec.attempts);
  w.key("benchmark").value(rec.row.benchmark);
  w.key("ccr").value(rec.row.ccr);
  w.key("ccr_protected").value(rec.row.ccr_protected);
  if (!rec.config_json.empty()) w.key("config").raw(rec.config_json);
  w.key("config_hash").value(rec.config_hash);
  w.key("defense").value(to_string(rec.row.defense));
  w.key("els").value(rec.row.els);
  w.key("equiv").value(rec.row.equiv);
  w.key("hd").value(rec.row.hd);
  w.key("oer").value(rec.row.oer);
  w.key("open_sinks").value(rec.row.open_sinks);
  w.key("patterns").value(rec.patterns);
  w.key("scale").value(rec.scale);
  w.key("seed").value(rec.row.seed);
  w.key("split_layer").value(rec.row.split_layer);
  if (rec.failed) w.key("status").value("failed");
  w.key("swaps").value(rec.row.swaps);
  w.key("wall_ms").value(rec.row.wall_ms);
  w.end_object();
  return w.str();
}

StoreRecord parse_store_line(const std::string& line) {
  const auto v = util::json::parse(line);
  if (!v.is_object())
    throw std::invalid_argument("store: record line is not an object");
  StoreRecord rec;
  rec.config_hash = v.at("config_hash").as_string();
  rec.row.benchmark = v.at("benchmark").as_string();
  rec.row.seed = v.at("seed").as_u64();
  rec.row.split_layer = static_cast<int>(v.at("split_layer").as_int());
  rec.row.defense = defense_from_string(v.at("defense").as_string());
  // Attacker-axis fields are absent from pre-axis logs (whose records are
  // all proximity cells by construction) — default rather than reject, so
  // old stores keep resolving under --resume.
  if (const auto* a = v.find("attacker"))
    rec.row.attacker = attacker_from_string(a->as_string());
  if (const auto* e = v.find("els")) rec.row.els = e->as_double();
  if (const auto* q = v.find("equiv"))
    rec.row.equiv = static_cast<int>(q->as_int());
  // Quarantine marker (absent = ok; every pre-quarantine record is ok by
  // construction). Anything but the two known statuses is a torn/foreign
  // line, not a record to guess about.
  if (const auto* s = v.find("status")) {
    const auto& status = s->as_string();
    if (status == "failed")
      rec.failed = true;
    else if (status != "ok")
      throw std::invalid_argument("store: unknown record status '" + status +
                                  "'");
  }
  if (const auto* a = v.find("attempts"))
    rec.attempts = static_cast<std::size_t>(a->as_u64());
  rec.row.ccr = v.at("ccr").as_double();
  rec.row.ccr_protected = v.at("ccr_protected").as_double();
  rec.row.oer = v.at("oer").as_double();
  rec.row.hd = v.at("hd").as_double();
  rec.row.open_sinks = static_cast<std::size_t>(v.at("open_sinks").as_u64());
  rec.row.swaps = static_cast<std::size_t>(v.at("swaps").as_u64());
  rec.row.wall_ms = v.at("wall_ms").as_double();
  rec.patterns = static_cast<std::size_t>(v.at("patterns").as_u64());
  rec.scale = v.at("scale").as_double();
  return rec;
}

StoreWriter::StoreWriter(std::string path) : path_(std::move(path)) {
  const bool existed = ::access(path_.c_str(), F_OK) == 0;
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0)
    throw std::runtime_error("store: cannot open '" + path_ +
                             "': " + std::strerror(errno));
  if (!existed) {
    // Durability of the file's *existence*: fsync on the data fd makes the
    // records durable, but the directory entry pointing at a brand-new log
    // lives in the parent directory — without syncing that too, a power
    // loss can forget the whole file, fsync'd records and all. Best-effort
    // (some filesystems refuse directory fsync): the failure mode is the
    // pre-fix status quo, not corruption.
    const auto slash = path_.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "."
                            : slash == 0               ? "/"
                                         : path_.substr(0, slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
}

StoreWriter::~StoreWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void StoreWriter::append(const StoreRecord& rec) {
  std::string line = to_store_line(rec);
  line += '\n';
  const std::lock_guard<std::mutex> lock(mu_);
  // Injection points (inert unless SM_FAULT arms them, util/fault.hpp):
  // the append is the durability edge every crash-safety claim is about,
  // so this is where chaos tests make workers hang, die, and tear lines.
  if (const auto slow =
          util::fault_hit(util::FaultPoint::SlowCell, rec.config_hash);
      slow.fire)
    std::this_thread::sleep_for(std::chrono::milliseconds(slow.sleep_ms));
  if (util::fault_hit(util::FaultPoint::CrashBeforeAppend, rec.config_hash)
          .fire)
    util::fault_crash(util::FaultPoint::CrashBeforeAppend);
  const bool tear =
      util::fault_hit(util::FaultPoint::TornWrite, rec.config_hash).fire;
  if (tear) line.resize(line.size() / 2);  // half a record, no newline
  // One write(2) per record: O_APPEND makes concurrent appends (other
  // shards and serve workers pointed at the same log) land whole-line, and
  // the fsync makes the record durable before the task is considered
  // complete. EINTR and short writes are retried, not treated as failures.
  std::size_t off = 0;
  while (off < line.size()) {
    const auto n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("store: write to '" + path_ +
                               "' failed: " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    throw std::runtime_error("store: fsync of '" + path_ +
                             "' failed: " + std::strerror(errno));
  }
  if (tear) util::fault_crash(util::FaultPoint::TornWrite);
  if (util::fault_hit(util::FaultPoint::CrashAfterAppend, rec.config_hash)
          .fire)
    util::fault_crash(util::FaultPoint::CrashAfterAppend);
}

namespace {

/// One log line into the merged view — the single merge rule both
/// load_store and StoreReader::poll apply. Returns true if a record
/// landed (new key or overwrite), false for unparsable lines.
bool merge_store_line(const std::string& line, StoreContents& out) {
  ++out.lines;
  StoreRecord rec;
  try {
    rec = parse_store_line(line);
  } catch (const std::invalid_argument&) {
    // A crash can tear the final line of a log (and a merged store
    // inherits such tails mid-file); the record it would have held
    // was never acknowledged, so skipping is the correct recovery.
    ++out.skipped;
    return false;
  }
  const auto it = out.records.find(rec.config_hash);
  if (it == out.records.end()) {
    out.records.emplace(rec.config_hash, std::move(rec));
  } else {
    ++out.duplicates;
    // Last-wins, except success is sticky: a quarantine marker only
    // says workers died while the cell was missing, so it never
    // supersedes a completed record, whatever order shard logs merge.
    if (!(rec.failed && !it->second.failed)) it->second = std::move(rec);
  }
  return true;
}

}  // namespace

std::size_t StoreReader::poll(StoreContents& into, bool consume_tail) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) return 0;
  const auto size = static_cast<std::uint64_t>(end);
  // Append-only logs never shrink; a smaller file means the log was
  // rotated or replaced under us — start over (keyed merge is idempotent).
  if (size < offset_) offset_ = 0;
  if (size == offset_) return 0;
  in.seekg(static_cast<std::streamoff>(offset_));
  std::string buf(static_cast<std::size_t>(size - offset_), '\0');
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  buf.resize(static_cast<std::size_t>(in.gcount()));
  std::size_t merged = 0;
  std::size_t pos = 0;
  std::size_t consumed = 0;
  while (pos < buf.size()) {
    const auto nl = buf.find('\n', pos);
    if (nl == std::string::npos) break;
    const std::string line = buf.substr(pos, nl - pos);
    pos = nl + 1;
    consumed = pos;
    if (!line.empty() && merge_store_line(line, into)) ++merged;
  }
  if (consume_tail && pos < buf.size()) {
    // The EOF-terminated final line, exactly as std::getline reads it.
    const std::string line = buf.substr(pos);
    consumed = buf.size();
    if (!line.empty() && merge_store_line(line, into)) ++merged;
  }
  offset_ += consumed;
  return merged;
}

StoreContents load_store(const std::vector<std::string>& paths,
                         bool must_exist) {
  StoreContents out;
  for (const auto& path : paths) {
    if (must_exist && !std::ifstream(path))
      throw std::runtime_error("store: cannot read '" + path + "'");
    StoreReader(path).poll(out, /*consume_tail=*/true);
  }
  return out;
}

Materialized materialize(const Grid& grid, const Options& opts,
                         const StoreContents& store) {
  Materialized out;
  const auto cells = expand_cells(grid, opts);
  out.result.rows.reserve(cells.size());
  for (const auto& cell : cells) {
    const auto it = store.records.find(cell.config_hash);
    if (it == store.records.end()) {
      out.missing.push_back(cell);
      continue;
    }
    if (it->second.failed) {
      // Quarantined: every attempt at this cell killed its worker. It is
      // not a row (there are no metrics) and not missing (re-running won't
      // help) — callers report it as the third state, "degraded".
      out.quarantined.push_back(cell);
      continue;
    }
    out.result.rows.push_back(it->second.row);
    ++out.result.resumed_cells;
  }
  // Missing/quarantined cells sort by config hash, not discovery order:
  // shard filters visit cells in different orders, and CI byte-diffs the
  // stderr listing.
  const auto by_hash = [](const CellRef& a, const CellRef& b) {
    return a.config_hash < b.config_hash;
  };
  std::sort(out.missing.begin(), out.missing.end(), by_hash);
  std::sort(out.quarantined.begin(), out.quarantined.end(), by_hash);
  return out;
}

}  // namespace sm::sweep
