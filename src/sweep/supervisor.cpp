#include "sweep/supervisor.hpp"

#include "util/config_hash.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/subprocess.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

namespace sm::sweep {
namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Scheduling state of one work unit. Everything here is reconstructible
/// from the store log plus the attempt counters — the supervisor owns no
/// results, which is why its own death loses nothing either.
struct TaskState {
  WorkUnit unit;
  std::vector<std::size_t> missing;  ///< indices into unit.cells, ascending
  double not_before_ms = 0;          ///< backoff gate (steady-clock ms)
  bool queued = false;
};

struct Running {
  util::Child child;
  std::size_t task = 0;
  double deadline_ms = 0;
};

std::vector<std::string> default_command(const Grid& grid,
                                         const ServeOptions& opts,
                                         const WorkUnit& unit) {
  const std::string exe = util::self_exe_path();
  if (exe.empty())
    throw std::runtime_error(
        "serve: cannot resolve /proc/self/exe for worker dispatch");
  return {exe,
          "sweep",
          "--grid=" + worker_grid_spec(grid, unit),
          "--patterns=" + std::to_string(opts.sweep.patterns),
          "--store=" + opts.sweep.store_path,
          "--resume",
          "--summary-only"};
}

/// The quarantine record: grid coordinates + attempt count, no metrics.
StoreRecord quarantine_record(const Grid& grid, const Options& opts,
                              const CellRef& cell, std::size_t attempts) {
  StoreRecord rec;
  rec.config_hash = cell.config_hash;
  rec.failed = true;
  rec.attempts = attempts;
  rec.patterns = opts.patterns;
  rec.scale = grid.scale;
  rec.row.benchmark = cell.benchmark;
  rec.row.seed = cell.seed;
  rec.row.split_layer = cell.split_layer;
  rec.row.defense = cell.defense;
  rec.row.attacker = cell.attacker;
  rec.config_json =
      cell_config_json(grid, opts, cell.benchmark, cell.workload, cell.seed,
                       cell.defense, cell.split_layer, cell.attacker);
  return rec;
}

}  // namespace

double backoff_delay_ms(std::size_t attempt, double base_ms,
                        std::uint64_t seed, std::uint64_t salt) {
  if (attempt == 0) return 0;
  // Exponential, capped well below the watchdog scale: a backoff that
  // outgrows the work it gates is just a slower form of stalling.
  const std::size_t shift = std::min<std::size_t>(attempt - 1, 9);
  const double expo = std::min(base_ms * static_cast<double>(1ull << shift),
                               60000.0);
  // Jitter in [1, 1.5): a fleet of workers killed by the same fault must
  // not thunder back in lockstep. Deterministic in (seed, salt, attempt)
  // so a retry schedule can be asserted in tests.
  const std::uint64_t draw =
      util::task_seed(seed, salt * 0x100000001b3ull + attempt);
  const double unit = static_cast<double>(draw >> 11) /
                      static_cast<double>(1ull << 53);
  return expo * (1.0 + 0.5 * unit);
}

std::string worker_grid_spec(const Grid& grid, const WorkUnit& unit) {
  std::ostringstream os;
  os << "benchmarks=" << unit.benchmark << ";seeds=" << unit.seed
     << ";splits=";
  for (std::size_t i = 0; i < grid.split_layers.size(); ++i)
    os << (i ? "," : "") << grid.split_layers[i];
  os << ";defenses=" << to_string(unit.defense) << ";attackers=";
  for (std::size_t i = 0; i < grid.attackers.size(); ++i)
    os << (i ? "," : "") << to_string(grid.attackers[i]);
  // format_double round-trips the double bit-exactly through Grid::parse,
  // so the worker's config hashes match the supervisor's.
  os << ";scale=" << util::format_double(grid.scale);
  return os.str();
}

std::vector<WorkUnit> work_units(const Grid& grid, const Options& opts) {
  const auto cells = expand_cells(grid, opts);
  const std::size_t cpt = grid.split_layers.size() * grid.attackers.size();
  std::vector<WorkUnit> units;
  if (cpt == 0) return units;
  units.reserve(cells.size() / cpt);
  for (std::size_t i = 0; i < cells.size(); i += cpt) {
    WorkUnit u;
    u.task_index = cells[i].task_index;
    u.benchmark = cells[i].benchmark;
    u.seed = cells[i].seed;
    u.defense = cells[i].defense;
    u.cells.assign(cells.begin() + static_cast<std::ptrdiff_t>(i),
                   cells.begin() + static_cast<std::ptrdiff_t>(i + cpt));
    units.push_back(std::move(u));
  }
  return units;
}

ServeReport serve(const Grid& grid, const ServeOptions& opts) {
  if (opts.sweep.store_path.empty())
    throw std::invalid_argument("serve: a store path is required");
  if (opts.sweep.resume || opts.sweep.shard_count != 1 ||
      opts.sweep.shard_index != 0)
    throw std::invalid_argument(
        "serve: resume/shard sweep options are owned by the supervisor");
  if (opts.cell_timeout_s <= 0)
    throw std::invalid_argument("serve: cell timeout must be > 0");
  if (opts.max_retries < 1)
    throw std::invalid_argument("serve: max retries must be >= 1");
  // The supervisor must ride through the very faults it injects into its
  // workers: disarm this process's SM_FAULT schedule (children inherit the
  // environment variable itself, untouched).
  util::fault_arm("");

  const auto log = [&](const std::string& msg) {
    if (opts.log) opts.log(msg);
  };

  const double t0 = now_ms();
  ServeReport report;
  auto units = work_units(grid, opts.sweep);

  // Missing = grid cells with no record; failed records are already
  // quarantined (a prior serve gave up on them) and are not retried.
  // One incremental reader lives for the whole serve: the initial poll
  // pays O(log) once, every later poll (one per worker event) reads only
  // the bytes workers appended since. The tail is never consumed — a
  // worker may be mid-append; an unterminated line stays pending until
  // its newline lands (and a torn crash tail glues into the next append,
  // parsing as one skipped line, exactly load_store's view of it).
  StoreReader reader(opts.sweep.store_path);
  StoreContents stored;
  reader.poll(stored);
  std::vector<TaskState> tasks;
  tasks.reserve(units.size());
  for (auto& unit : units) {
    TaskState ts;
    ts.unit = std::move(unit);
    for (std::size_t ci = 0; ci < ts.unit.cells.size(); ++ci) {
      ++report.total_cells;
      const auto it = stored.records.find(ts.unit.cells[ci].config_hash);
      if (it == stored.records.end())
        ts.missing.push_back(ci);
      else if (it->second.failed)
        ++report.pre_quarantined;
      else
        ++report.already_stored;
    }
    tasks.push_back(std::move(ts));
  }

  // Opening the writer up front creates the log (and fsyncs its directory
  // entry) before any worker races us to it; it is only ever used for
  // quarantine records — workers append their own results.
  StoreWriter writer(opts.sweep.store_path);
  std::unordered_map<std::string, std::size_t> attempts;  // hash → deaths

  const std::size_t max_workers = util::resolve_jobs(opts.workers, tasks.size());
  std::vector<Running> running;
  running.reserve(max_workers);

  const auto pending = [&](const TaskState& ts) {
    return !ts.missing.empty() && !ts.queued;
  };

  // Poll the log's tail into the accumulated view and refresh a task's
  // missing list; returns how many of its cells landed since the last
  // look. O(bytes appended since the previous poll), not O(log).
  const auto refresh = [&](TaskState& ts) {
    reader.poll(stored);
    std::vector<std::size_t> still;
    std::size_t landed = 0;
    for (const std::size_t ci : ts.missing) {
      const auto it = stored.records.find(ts.unit.cells[ci].config_hash);
      if (it == stored.records.end())
        still.push_back(ci);
      else if (!it->second.failed)
        ++landed;
      // failed: quarantined (by us, moments ago) — drop silently.
    }
    ts.missing = std::move(still);
    report.computed += landed;
    return landed;
  };

  // One death event: charge the first still-missing cell (records append
  // in cell order, so it is the one that was in flight), quarantine it
  // once it has exhausted max_retries, and re-queue the task after an
  // exponentially backed-off, jittered delay.
  const auto on_death = [&](TaskState& ts, const std::string& why) {
    ++report.worker_deaths;
    const CellRef& blame = ts.unit.cells[ts.missing.front()];
    const std::size_t a = ++attempts[blame.config_hash];
    log("worker for " + ts.unit.benchmark + " seed=" +
        std::to_string(ts.unit.seed) + " " + to_string(ts.unit.defense) +
        " died (" + why + "), attempt " + std::to_string(a) + "/" +
        std::to_string(opts.max_retries) + " on " + describe(blame));
    if (a >= opts.max_retries) {
      writer.append(quarantine_record(grid, opts.sweep, blame, a));
      ts.missing.erase(ts.missing.begin());
      ++report.quarantined;
      log("quarantined " + describe(blame) + " after " + std::to_string(a) +
          " attempts");
    }
    if (!ts.missing.empty())
      ts.not_before_ms =
          now_ms() + backoff_delay_ms(a, opts.backoff_base_ms,
                                      opts.backoff_seed, ts.unit.task_index);
  };

  while (true) {
    const double now = now_ms();

    // Dispatch: fill free worker slots with ready tasks (backoff-gated).
    for (auto& ts : tasks) {
      if (running.size() >= max_workers) break;
      if (!pending(ts) || ts.not_before_ms > now) continue;
      const auto argv = opts.command ? opts.command(ts.unit)
                                     : default_command(grid, opts, ts.unit);
      Running r;
      r.child = util::Child::spawn(argv);
      r.task = static_cast<std::size_t>(&ts - tasks.data());
      r.deadline_ms =
          now + opts.cell_timeout_s * 1000.0 *
                    static_cast<double>(ts.missing.size());
      ts.queued = true;
      ++report.workers_spawned;
      log("spawned worker pid " + std::to_string(r.child.pid()) + " for " +
          ts.unit.benchmark + " seed=" + std::to_string(ts.unit.seed) + " " +
          to_string(ts.unit.defense) + " (" +
          std::to_string(ts.missing.size()) + " missing cells)");
      running.push_back(std::move(r));
    }

    // Reap: exits, and watchdog expiries escalated to SIGKILL.
    bool progressed = false;
    for (std::size_t i = running.size(); i-- > 0;) {
      Running& r = running[i];
      auto st = r.child.try_wait();
      bool timed_out = false;
      if (!st && now > r.deadline_ms) {
        r.child.kill(SIGKILL);
        st = r.child.wait();
        timed_out = true;
        ++report.watchdog_kills;
      }
      if (!st) continue;
      progressed = true;
      TaskState& ts = tasks[r.task];
      ts.queued = false;
      if (st->exited && st->code == 127)
        throw std::runtime_error(
            "serve: worker exec failed (exit 127) — bad worker command");
      refresh(ts);
      if (!ts.missing.empty())
        on_death(ts, timed_out ? "watchdog timeout" : st->describe());
      // A worker that landed every missing cell is a success even if it
      // died on the way out (crash-after-append) — the log has the truth.
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
    }

    const bool work_left =
        std::any_of(tasks.begin(), tasks.end(), pending) || !running.empty();
    if (!work_left) break;
    if (!progressed)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  report.wall_ms = now_ms() - t0;
  return report;
}

}  // namespace sm::sweep
