#include "sweep/sweep.hpp"

#include "attack/proximity.hpp"
#include "core/baselines.hpp"
#include "core/pipeline.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/generator.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace sm::sweep {
namespace {

/// One (benchmark, seed, defense) work unit; attacked at every split layer.
/// Tasks of one (benchmark, seed) pair share a LayoutCache entry under
/// `cache_key` — the generated netlist always, the base layout when the
/// defense is Unprotected.
struct Task {
  std::string benchmark;
  std::uint64_t seed = 0;
  Defense defense = Defense::Unprotected;
  bool superblue = false;
  std::string cache_key;
};

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Same flow tuning the benches and sm_flow use: M6 correction pins for
/// ISCAS, M8 for superblue, utilization derated so the router stays
/// congestion-free (bench/common.hpp is the reference).
core::FlowOptions flow_for(const Task& t, const workloads::GenSpec& spec,
                           std::size_t router_jobs) {
  core::FlowOptions f;
  f.seed = t.seed;
  f.router.passes = 3;
  f.router.jobs = router_jobs;
  f.placer.seed = t.seed;
  if (t.superblue) {
    f.lift_layer = 8;
    f.placer.target_utilization = spec.utilization * 0.5;
    f.placer.detailed_passes = 1;
  } else {
    f.lift_layer = 6;
    f.placer.target_utilization = 0.45;
    f.placer.detailed_passes = 2;
  }
  return f;
}

core::RandomizeOptions randomize_for(const Task& t) {
  core::RandomizeOptions r;
  r.seed = t.seed;
  r.target_oer = 0.995;
  r.check_patterns = 4096;
  return r;
}

/// Run one task and fill its split-layer rows (rows[0..splits-1]).
/// Everything written to `rows` is a function of the task's grid
/// coordinates and `opts` alone — this is where the thread-count
/// independence of the whole sweep is decided. Cached stage products keep
/// that property: they are deterministic in (benchmark, seed, options), so
/// whether this task builds them or reuses a sibling defense's build is
/// invisible in the metrics.
void run_task(const Task& t, const Grid& grid, const Options& opts,
              std::size_t router_jobs, const netlist::CellLibrary& lib,
              core::LayoutCache& cache, Row* rows) {
  const double t0 = now_ms();
  const auto spec = t.superblue
                        ? workloads::superblue_profile(t.benchmark, grid.scale)
                        : workloads::iscas85_profile(t.benchmark);
  const auto& nl = cache.netlist(
      t.cache_key, [&] { return workloads::generate(lib, spec, t.seed); });
  const auto flow = flow_for(t, spec, router_jobs);

  const netlist::Netlist* feol = &nl;
  const core::LayoutResult* layout = nullptr;
  const core::SwapLedger* ledger = nullptr;

  std::optional<core::ProtectedDesign> design;
  std::size_t swaps = 0;
  if (t.defense == Defense::Unprotected) {
    const auto& base = cache.base_layout(t.cache_key, nl, flow);
    feol = &base.physical(nl);
    layout = &base;
  } else {
    design = core::protect(nl, randomize_for(t), flow);
    feol = &design->erroneous;
    layout = &design->layout;
    ledger = &design->ledger;
    swaps = design->ledger.entries.size();
  }

  for (std::size_t li = 0; li < grid.split_layers.size(); ++li) {
    const int split = grid.split_layers[li];
    const auto view =
        core::split_layout(*feol, layout->placement, layout->routing,
                           layout->tasks, layout->num_net_tasks, split);
    attack::ProximityOptions aopts;
    aopts.eval_patterns = opts.patterns;
    // Attack randomness depends on (grid seed, split layer) only, never on
    // the worker thread — the sweep's determinism guarantee.
    aopts.seed = util::task_seed(t.seed, static_cast<std::uint64_t>(split));
    const auto res =
        attack::proximity_attack(*feol, nl, layout->placement, view, ledger,
                                 aopts);

    Row& row = rows[li];
    row.benchmark = t.benchmark;
    row.seed = t.seed;
    row.split_layer = split;
    row.defense = t.defense;
    row.ccr = res.ccr();
    row.ccr_protected = res.ccr_protected();
    row.oer = res.rates.oer;
    row.hd = res.rates.hd;
    row.open_sinks = res.open_sinks;
    row.swaps = swaps;
  }
  const double wall = now_ms() - t0;
  for (std::size_t li = 0; li < grid.split_layers.size(); ++li)
    rows[li].wall_ms = wall;
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    // stoull would silently wrap "-1" to 2^64-1; require plain digits.
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
      throw std::invalid_argument(s);
    std::size_t used = 0;
    const auto v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("sweep: bad ") + what + " '" + s +
                                "'");
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

const char* to_string(Defense d) {
  return d == Defense::Unprotected ? "unprotected" : "proposed";
}

Defense defense_from_string(const std::string& name) {
  if (name == "unprotected" || name == "original") return Defense::Unprotected;
  if (name == "proposed" || name == "protected") return Defense::Proposed;
  throw std::invalid_argument("sweep: unknown defense '" + name +
                              "' (want unprotected|proposed)");
}

std::size_t Grid::combinations() const {
  return benchmarks.size() * seeds.size() * split_layers.size() *
         defenses.size();
}

void Grid::set(const std::string& key, const std::string& value) {
  const auto items = util::split_list(value, ',');
  if (key == "benchmarks") {
    benchmarks = items;
  } else if (key == "seeds") {
    seeds.clear();
    for (const auto& s : items) seeds.push_back(parse_u64(s, "seed"));
  } else if (key == "splits" || key == "split-layers") {
    split_layers.clear();
    for (const auto& s : items)
      split_layers.push_back(static_cast<int>(parse_u64(s, "split layer")));
  } else if (key == "defenses") {
    defenses.clear();
    for (const auto& s : items) defenses.push_back(defense_from_string(s));
  } else if (key == "scale") {
    std::size_t used = 0;
    try {
      scale = std::stod(value, &used);
    } catch (const std::exception&) {
      used = std::string::npos;
    }
    if (used != value.size())
      throw std::invalid_argument("sweep: bad scale '" + value + "'");
  } else {
    throw std::invalid_argument(
        "sweep: unknown grid key '" + key +
        "' (want benchmarks|seeds|splits|defenses|scale)");
  }
}

Grid Grid::parse(const std::string& spec) {
  Grid g;
  for (const auto& part : util::split_list(spec, ';')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("sweep: grid entry '" + part +
                                  "' is not key=value");
    g.set(part.substr(0, eq), part.substr(eq + 1));
  }
  return g;
}

util::Table Result::table() const {
  util::Table t({"Benchmark", "Seed", "Split", "Defense", "CCR", "CCR(rand)",
                 "OER", "HD", "Open sinks", "Task ms"});
  for (const auto& r : rows)
    t.add_row({r.benchmark, std::to_string(r.seed),
               "M" + std::to_string(r.split_layer), to_string(r.defense),
               util::Table::pct(100 * r.ccr, 1),
               util::Table::pct(100 * r.ccr_protected, 1),
               util::Table::pct(100 * r.oer, 1),
               util::Table::pct(100 * r.hd, 1),
               util::Table::count(r.open_sinks),
               util::Table::num(r.wall_ms, 0)});
  return t;
}

util::Table Result::summary() const {
  struct Acc {
    double ccr = 0, ccr_prot = 0, oer = 0, hd = 0;
    std::size_t n = 0;
  };
  // std::map keeps the summary ordering deterministic and readable
  // (alphabetical benchmark, unprotected before proposed).
  std::map<std::pair<std::string, int>, Acc> acc;
  for (const auto& r : rows) {
    auto& a = acc[{r.benchmark, static_cast<int>(r.defense)}];
    a.ccr += r.ccr;
    a.ccr_prot += r.ccr_protected;
    a.oer += r.oer;
    a.hd += r.hd;
    ++a.n;
  }
  util::Table t({"Benchmark", "Defense", "CCR", "CCR(rand)", "OER", "HD",
                 "Cells"});
  for (const auto& [key, a] : acc) {
    const double n = static_cast<double>(a.n);
    t.add_row({key.first, to_string(static_cast<Defense>(key.second)),
               util::Table::pct(100 * a.ccr / n, 1),
               util::Table::pct(100 * a.ccr_prot / n, 1),
               util::Table::pct(100 * a.oer / n, 1),
               util::Table::pct(100 * a.hd / n, 1), util::Table::count(a.n)});
  }
  return t;
}

std::string Result::to_csv() const {
  std::ostringstream os;
  os << "benchmark,seed,split_layer,defense,ccr,ccr_protected,oer,hd,"
        "open_sinks,swaps,task_wall_ms\n";
  for (const auto& r : rows) {
    os << r.benchmark << ',' << r.seed << ',' << r.split_layer << ','
       << to_string(r.defense) << ',' << r.ccr << ',' << r.ccr_protected
       << ',' << r.oer << ',' << r.hd << ',' << r.open_sinks << ',' << r.swaps
       << ',' << r.wall_ms << '\n';
  }
  return os.str();
}

std::string Result::to_json() const {
  std::ostringstream os;
  os << "{\n  \"jobs\": " << jobs << ",\n  \"router_jobs\": " << router_jobs
     << ",\n  \"wall_ms\": " << wall_ms
     << ",\n  \"cache\": {\"netlists\": " << cache_stats.netlists
     << ", \"placements\": " << cache_stats.placements
     << ", \"base_routes\": " << cache_stats.base_routes
     << ", \"hits\": " << cache_stats.hits << "},\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << (i ? "," : "") << "\n    {\"benchmark\": \""
       << json_escape(r.benchmark) << "\", \"seed\": " << r.seed
       << ", \"split_layer\": " << r.split_layer << ", \"defense\": \""
       << to_string(r.defense) << "\", \"ccr\": " << r.ccr
       << ", \"ccr_protected\": " << r.ccr_protected << ", \"oer\": " << r.oer
       << ", \"hd\": " << r.hd << ", \"open_sinks\": " << r.open_sinks
       << ", \"swaps\": " << r.swaps << ", \"task_wall_ms\": " << r.wall_ms
       << "}";
  }
  os << (rows.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

Result run(const Grid& grid, const Options& opts) {
  // Resolve benchmark names up front so a typo throws before hours of work.
  const auto& sb = workloads::superblue_names();
  const auto& iscas = workloads::iscas85_names();
  std::vector<Task> tasks;
  tasks.reserve(grid.benchmarks.size() * grid.seeds.size() *
                grid.defenses.size());
  for (const auto& bench : grid.benchmarks) {
    const bool superblue = std::find(sb.begin(), sb.end(), bench) != sb.end();
    if (!superblue &&
        std::find(iscas.begin(), iscas.end(), bench) == iscas.end())
      throw std::invalid_argument("sweep: unknown benchmark '" + bench + "'");
    for (const auto seed : grid.seeds) {
      // All defenses of one (bench, seed) share one cache entry. The key
      // needn't carry scale/options: they are constant within a run and
      // the cache lives exactly as long as the run.
      const std::string key = bench + "/" + std::to_string(seed);
      for (const auto defense : grid.defenses)
        tasks.push_back({bench, seed, defense, superblue, key});
    }
  }

  Result result;
  const std::size_t splits = grid.split_layers.size();
  result.rows.resize(tasks.size() * splits);
  result.jobs = util::resolve_jobs(opts.jobs, tasks.size());
  // When the grid has fewer tasks than the requested worker budget, the
  // leftover workers would idle — hand them to each task's router instead
  // (the router is itself jobs-invariant, so this never changes metrics).
  // A full grid keeps router_jobs = 1: task-level parallelism scales better
  // than nested router threads.
  const std::size_t budget = util::resolve_jobs(
      opts.jobs, std::numeric_limits<std::size_t>::max());
  result.router_jobs =
      std::max<std::size_t>(1, budget / std::max<std::size_t>(1, result.jobs));

  // The libraries and the cache outlive every task (cached netlists keep a
  // pointer to their library); both are only read concurrently.
  const netlist::CellLibrary lib_iscas{6};
  const netlist::CellLibrary lib_superblue{8};
  core::LayoutCache cache;

  const double t0 = now_ms();
  // Row block for task i is [i*splits, (i+1)*splits): grid-major order, and
  // no two tasks share a row — workers never contend on results.
  util::parallel_for(opts.jobs, tasks.size(), [&](std::size_t i) {
    run_task(tasks[i], grid, opts, result.router_jobs,
             tasks[i].superblue ? lib_superblue : lib_iscas, cache,
             result.rows.data() + i * splits);
  });
  result.wall_ms = now_ms() - t0;
  result.cache_stats = cache.stats();
  return result;
}

}  // namespace sm::sweep
