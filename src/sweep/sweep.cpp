#include "sweep/sweep.hpp"

#include "attack/crouting.hpp"
#include "attack/proximity.hpp"
#include "core/baselines.hpp"
#include "core/equivalence.hpp"
#include "core/pipeline.hpp"
#include "core/protect.hpp"
#include "core/split.hpp"
#include "netlist/topo.hpp"
#include "sweep/store.hpp"
#include "util/args.hpp"
#include "util/config_hash.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/generator.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace sm::sweep {
namespace {

/// One (benchmark, seed, defense) work unit; split at every split layer and
/// attacked by every attacker of the grid. Tasks of one (benchmark, seed)
/// pair share a LayoutCache entry under `cache_key` — the generated netlist
/// always, the base placement for the placement-keeping baselines, the base
/// layout when the defense is Unprotected.
struct Task {
  std::string benchmark;
  std::uint64_t seed = 0;
  Defense defense = Defense::Unprotected;
  Workload workload = Workload::Iscas85;
  std::string cache_key;
};

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Fires once per cell this task actually computed, after the task's rows
/// (including the shared wall stamp) are final — the store appends here,
/// so a record only ever describes a completed, fully-written cell.
/// `cell_index` is the task-local index: split_index * attackers + ai.
using CellCallback = std::function<void(std::size_t cell_index)>;

core::PerturbStrategy perturb_strategy(Defense d) {
  switch (d) {
    case Defense::GColor: return core::PerturbStrategy::GColor;
    case Defense::GType1: return core::PerturbStrategy::GType1;
    case Defense::GType2: return core::PerturbStrategy::GType2;
    default: return core::PerturbStrategy::Random;
  }
}

int verdict_code(core::EquivVerdict v) {
  switch (v) {
    case core::EquivVerdict::Equivalent: return 1;
    case core::EquivVerdict::Inequivalent: return 0;
    case core::EquivVerdict::Unknown: break;
  }
  return 2;
}

/// Run one task and fill the rows of its *computed* cells
/// (compute[ci] == 0 marks cells prefilled from the resume store — their
/// rows are left untouched and their attacks skipped). Everything written
/// to `rows` is a function of the task's grid coordinates and `opts`
/// alone — this is where the thread-count independence of the whole sweep
/// is decided, and why attacking only the missing subset of cells is
/// bit-identical to a from-scratch run: each cell's attack seeds from
/// (grid seed, split layer), never from which siblings ran beside it.
/// Cached stage products keep that property too: they are deterministic
/// in (benchmark, seed, options), so whether this task builds them or
/// reuses a sibling defense's build is invisible in the metrics.
void run_task(const Task& t, const Grid& grid, const Options& opts,
              std::size_t router_jobs, const netlist::CellLibrary& lib,
              core::LayoutCache& cache, Row* rows,
              const std::vector<char>& compute, const CellCallback& on_cell) {
  const double t0 = now_ms();
  const auto spec = [&] {
    switch (t.workload) {
      case Workload::Superblue:
        return workloads::superblue_profile(t.benchmark, grid.scale);
      case Workload::Synthetic:
        return workloads::synthetic_profile(t.benchmark, grid.scale);
      case Workload::Iscas85:
        break;
    }
    return workloads::iscas85_profile(t.benchmark);
  }();
  const auto& nl = cache.netlist(
      t.cache_key, [&] { return workloads::generate(lib, spec, t.seed); });
  auto flow = task_flow(t.benchmark, t.workload, t.seed, grid.scale);
  // Scheduling only — applied outside task_flow so the config hash (which
  // digests task_flow's output) can never cover it.
  flow.router.jobs = router_jobs;

  const netlist::Netlist* feol = &nl;
  const core::LayoutResult* layout = nullptr;
  const core::SwapLedger* ledger = nullptr;

  std::optional<core::ProtectedDesign> design;
  std::optional<core::LayoutResult> local;     // baseline-defense layouts
  std::optional<core::SwappedLayout> swapped;  // pin-swap baseline
  std::size_t swaps = 0;
  const BaselineRecipe recipe = baseline_recipe(t.defense);
  switch (t.defense) {
    case Defense::Unprotected: {
      const auto& base = cache.base_layout(t.cache_key, nl, flow);
      feol = &base.physical(nl);
      layout = &base;
      break;
    }
    case Defense::Proposed: {
      design = core::protect(nl, task_randomize(t.seed), flow);
      feol = &design->erroneous;
      layout = &design->layout;
      ledger = &design->ledger;
      swaps = design->ledger.entries.size();
      break;
    }
    case Defense::PlacePerturb:
    case Defense::GColor:
    case Defense::GType1:
    case Defense::GType2: {
      // Perturbation starts from the shared base placement (it swaps
      // locations after placement — re-placing per defense would waste the
      // cache and change nothing).
      const auto& placed = cache.placed(t.cache_key, nl, flow);
      local = core::layout_placement_perturbed(
          nl, flow, placed, perturb_strategy(t.defense), recipe.fraction,
          t.seed, recipe.radius_frac);
      layout = &*local;
      break;
    }
    case Defense::PinSwap: {
      // The swap budget scales with instance size (the bench-harness rule);
      // the *rule* is what the config hash covers.
      const std::size_t n =
          std::max(recipe.min_swaps,
                   static_cast<std::size_t>(nl.num_nets()) /
                       recipe.swap_divisor);
      swapped = core::layout_pin_swapped(nl, flow, n, t.seed);
      feol = &swapped->erroneous;
      layout = &swapped->layout;
      ledger = &swapped->ledger;
      swaps = swapped->ledger.entries.size();
      break;
    }
    case Defense::RoutePerturb: {
      const auto& placed = cache.placed(t.cache_key, nl, flow);
      local = core::layout_routing_perturbed(nl, flow, placed, recipe.fraction,
                                             flow.lift_layer, t.seed);
      layout = &*local;
      break;
    }
    case Defense::RouteBlockage: {
      const auto& placed = cache.placed(t.cache_key, nl, flow);
      const double size = placed.placement.floorplan.die.width() /
                          static_cast<double>(recipe.width_divisor);
      local = core::layout_routing_blockage(nl, flow, placed, recipe.blockages,
                                            size, recipe.blockage_max_layer,
                                            t.seed);
      layout = &*local;
      break;
    }
  }

  const std::size_t n_att = grid.attackers.size();
  for (std::size_t li = 0; li < grid.split_layers.size(); ++li) {
    const std::size_t cell0 = li * n_att;
    bool any = compute.empty();
    for (std::size_t ai = 0; !any && ai < n_att; ++ai)
      any = compute[cell0 + ai] != 0;
    if (!any) continue;
    const int split = grid.split_layers[li];
    // One split view per layer, shared by every attacker of the cell — the
    // view is a pure function of (layout, split).
    const auto view =
        core::split_layout(*feol, layout->placement, layout->routing,
                           layout->tasks, layout->num_net_tasks, split);
    for (std::size_t ai = 0; ai < n_att; ++ai) {
      if (!compute.empty() && !compute[cell0 + ai]) continue;
      const Attacker attacker = grid.attackers[ai];
      Row& row = rows[cell0 + ai];
      row.benchmark = t.benchmark;
      row.seed = t.seed;
      row.split_layer = split;
      row.defense = t.defense;
      row.attacker = attacker;
      row.swaps = swaps;

      if (attacker == Attacker::CRouting) {
        // Fully deterministic (no RNG, no threads): candidate confinement
        // per vpin. The row reports the middle bounding box of the 15/30/45
        // ladder — the paper's headline E[LS]/match-in-list column.
        const auto res = attack::crouting_attack(view);
        row.open_sinks = res.num_vpins;
        if (!res.failed) {
          const std::size_t mid = res.candidate_list_size.size() / 2;
          row.ccr = res.match_in_list[mid];
          row.ccr_protected = res.match_in_list[mid];
          row.els = res.candidate_list_size[mid];
        }
        continue;  // oer/hd stay 0: crouting recovers nothing to simulate
      }

      attack::ProximityOptions aopts;
      aopts.eval_patterns = opts.patterns;
      // Attack randomness depends on (grid seed, split layer) only, never
      // on the worker thread — the sweep's determinism guarantee.
      aopts.seed = util::task_seed(t.seed, static_cast<std::uint64_t>(split));
      aopts.keep_recovered = attacker == Attacker::Sat;
      const auto res = attack::proximity_attack(*feol, nl, layout->placement,
                                                view, ledger, aopts);
      row.ccr = res.ccr();
      row.ccr_protected = res.ccr_protected();
      row.oer = res.rates.oer;
      row.hd = res.rates.hd;
      row.open_sinks = res.open_sinks;

      if (attacker == Attacker::Sat) {
        // Dis-correlation: equivalence-check the recovered netlist against
        // the original. Anything the checker cannot decide (cyclic
        // recovery, incomparable interfaces, SAT budget) reports Unknown —
        // never a crash mid-sweep.
        int code = 2;
        if (res.recovered && netlist::is_acyclic(*res.recovered)) {
          core::EquivOptions eopts;
          eopts.seed = aopts.seed;
          try {
            code = verdict_code(
                core::check_equivalence(nl, *res.recovered, eopts).verdict);
          } catch (const std::invalid_argument&) {
            code = 2;
          }
        }
        row.equiv = code;
      }
    }
  }
  // Task-granularity wall stamp (one timer per task: the cells share its
  // layout), then the completion callbacks — record append happens last so
  // the log never holds a cell whose row is still being written.
  const double wall = now_ms() - t0;
  const std::size_t n_cells = grid.split_layers.size() * n_att;
  for (std::size_t ci = 0; ci < n_cells; ++ci) {
    if (!compute.empty() && !compute[ci]) continue;
    rows[ci].wall_ms = wall;
    if (on_cell) on_cell(ci);
  }
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    // stoull would silently wrap "-1" to 2^64-1; require plain digits.
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
      throw std::invalid_argument(s);
    std::size_t used = 0;
    const auto v = std::stoull(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("sweep: bad ") + what + " '" + s +
                                "'");
  }
}

}  // namespace

core::FlowOptions task_flow(const std::string& benchmark, Workload workload,
                            std::uint64_t seed, double scale) {
  // Same flow tuning the benches and sm_flow use: M6 correction pins for
  // ISCAS, M8 for superblue and the large synthetic clones, utilization
  // derated so the router stays congestion-free (bench/common.hpp is the
  // reference). Scheduling knobs (router jobs/partition_depth) are NOT set
  // here — the run loop applies them after hashing, see run_task.
  core::FlowOptions f;
  f.seed = seed;
  f.router.passes = 3;
  f.placer.seed = seed;
  switch (workload) {
    case Workload::Superblue: {
      const auto spec = workloads::superblue_profile(benchmark, scale);
      f.lift_layer = 8;
      f.placer.target_utilization = spec.utilization * 0.5;
      f.placer.detailed_passes = 1;
      break;
    }
    case Workload::Synthetic: {
      const auto spec = workloads::synthetic_profile(benchmark, scale);
      f.lift_layer = 8;
      f.placer.target_utilization = spec.utilization * 0.5;
      f.placer.detailed_passes = 1;
      break;
    }
    case Workload::Iscas85:
      f.lift_layer = 6;
      f.placer.target_utilization = 0.45;
      f.placer.detailed_passes = 2;
      break;
  }
  return f;
}

core::RandomizeOptions task_randomize(std::uint64_t seed) {
  core::RandomizeOptions r;
  r.seed = seed;
  r.target_oer = 0.995;
  r.check_patterns = 4096;
  return r;
}

const char* to_string(Defense d) {
  switch (d) {
    case Defense::Unprotected: return "unprotected";
    case Defense::Proposed: return "proposed";
    case Defense::PlacePerturb: return "place-perturb";
    case Defense::GColor: return "g-color";
    case Defense::GType1: return "g-type1";
    case Defense::GType2: return "g-type2";
    case Defense::PinSwap: return "pin-swap";
    case Defense::RoutePerturb: return "route-perturb";
    case Defense::RouteBlockage: return "route-blockage";
  }
  return "unprotected";
}

Defense defense_from_string(const std::string& name) {
  if (name == "unprotected" || name == "original") return Defense::Unprotected;
  if (name == "proposed" || name == "protected") return Defense::Proposed;
  if (name == "place-perturb") return Defense::PlacePerturb;
  if (name == "g-color") return Defense::GColor;
  if (name == "g-type1") return Defense::GType1;
  if (name == "g-type2") return Defense::GType2;
  if (name == "pin-swap") return Defense::PinSwap;
  if (name == "route-perturb") return Defense::RoutePerturb;
  if (name == "route-blockage") return Defense::RouteBlockage;
  throw std::invalid_argument(
      "sweep: unknown defense '" + name +
      "' (want unprotected|proposed|place-perturb|g-color|g-type1|g-type2|"
      "pin-swap|route-perturb|route-blockage)");
}

bool is_baseline(Defense d) {
  return d != Defense::Unprotected && d != Defense::Proposed;
}

BaselineRecipe baseline_recipe(Defense d) {
  // The bench-harness parameter precedents: Table 4 perturbs 5% of gates
  // within 0.1 die widths for Wang [5] and 25% within 0.2 for the Sengupta
  // strategies [8]; Table 5 swaps max(4, nets/50) pins [3] and elevates 15%
  // of the nets [12]; Table 6 scatters 5 blockages of die/14 up to M4 [7].
  BaselineRecipe r;
  switch (d) {
    case Defense::PlacePerturb:
      r.fraction = 0.05;
      r.radius_frac = 0.1;
      break;
    case Defense::GColor:
    case Defense::GType1:
    case Defense::GType2:
      r.fraction = 0.25;
      r.radius_frac = 0.2;
      break;
    case Defense::PinSwap:
      r.min_swaps = 4;
      r.swap_divisor = 50;
      break;
    case Defense::RoutePerturb:
      r.fraction = 0.15;
      break;
    case Defense::RouteBlockage:
      r.blockages = 5;
      r.blockage_max_layer = 4;
      r.width_divisor = 14;
      break;
    case Defense::Unprotected:
    case Defense::Proposed:
      break;
  }
  return r;
}

const char* to_string(Attacker a) {
  switch (a) {
    case Attacker::Proximity: return "proximity";
    case Attacker::CRouting: return "crouting";
    case Attacker::Sat: return "sat";
  }
  return "proximity";
}

Attacker attacker_from_string(const std::string& name) {
  if (name == "proximity") return Attacker::Proximity;
  if (name == "crouting") return Attacker::CRouting;
  if (name == "sat") return Attacker::Sat;
  throw std::invalid_argument("sweep: unknown attacker '" + name +
                              "' (want proximity|crouting|sat)");
}

const char* to_string(Workload w) {
  switch (w) {
    case Workload::Iscas85: return "iscas85";
    case Workload::Superblue: return "superblue";
    case Workload::Synthetic: return "synthetic";
  }
  return "iscas85";
}

std::size_t Grid::combinations() const {
  return benchmarks.size() * seeds.size() * split_layers.size() *
         defenses.size() * attackers.size();
}

void Grid::set(const std::string& key, const std::string& value) {
  const auto items = util::split_list(value, ',');
  if (key == "benchmarks") {
    benchmarks = items;
  } else if (key == "seeds") {
    seeds.clear();
    for (const auto& s : items) seeds.push_back(parse_u64(s, "seed"));
  } else if (key == "splits" || key == "split-layers") {
    split_layers.clear();
    for (const auto& s : items)
      split_layers.push_back(static_cast<int>(parse_u64(s, "split layer")));
  } else if (key == "defenses") {
    defenses.clear();
    for (const auto& s : items) defenses.push_back(defense_from_string(s));
  } else if (key == "attackers") {
    attackers.clear();
    for (const auto& s : items) attackers.push_back(attacker_from_string(s));
  } else if (key == "scale") {
    std::size_t used = 0;
    try {
      scale = std::stod(value, &used);
    } catch (const std::exception&) {
      used = std::string::npos;
    }
    if (used != value.size())
      throw std::invalid_argument("sweep: bad scale '" + value + "'");
  } else {
    throw std::invalid_argument(
        "sweep: unknown grid key '" + key +
        "' (want benchmarks|seeds|splits|defenses|attackers|scale)");
  }
}

Grid Grid::parse(const std::string& spec) {
  Grid g;
  for (const auto& part : util::split_list(spec, ';')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("sweep: grid entry '" + part +
                                  "' is not key=value");
    g.set(part.substr(0, eq), part.substr(eq + 1));
  }
  return g;
}

namespace {

/// Render Row::equiv for the table ("-" when not applicable).
const char* equiv_text(int equiv) {
  switch (equiv) {
    case 1: return "eq";
    case 0: return "NEQ";
    case 2: return "?";
    default: return "-";
  }
}

}  // namespace

util::Table Result::table() const {
  util::Table t({"Benchmark", "Seed", "Split", "Defense", "Attacker", "CCR",
                 "CCR(rand)", "OER", "HD", "Open sinks", "E[LS]", "Equiv",
                 "Task ms"});
  for (const auto& r : rows)
    t.add_row({r.benchmark, std::to_string(r.seed),
               "M" + std::to_string(r.split_layer), to_string(r.defense),
               to_string(r.attacker), util::Table::pct(100 * r.ccr, 1),
               util::Table::pct(100 * r.ccr_protected, 1),
               util::Table::pct(100 * r.oer, 1),
               util::Table::pct(100 * r.hd, 1),
               util::Table::count(r.open_sinks), util::Table::num(r.els, 1),
               equiv_text(r.equiv), util::Table::num(r.wall_ms, 0)});
  return t;
}

util::Table Result::summary() const {
  struct Acc {
    double ccr = 0, ccr_prot = 0, oer = 0, hd = 0;
    std::size_t n = 0;
  };
  // std::map keeps the summary ordering deterministic and readable
  // (alphabetical benchmark, defenses then attackers in enum order).
  std::map<std::tuple<std::string, int, int>, Acc> acc;
  for (const auto& r : rows) {
    auto& a = acc[{r.benchmark, static_cast<int>(r.defense),
                   static_cast<int>(r.attacker)}];
    a.ccr += r.ccr;
    a.ccr_prot += r.ccr_protected;
    a.oer += r.oer;
    a.hd += r.hd;
    ++a.n;
  }
  util::Table t({"Benchmark", "Defense", "Attacker", "CCR", "CCR(rand)",
                 "OER", "HD", "Cells"});
  for (const auto& [key, a] : acc) {
    const double n = static_cast<double>(a.n);
    t.add_row({std::get<0>(key),
               to_string(static_cast<Defense>(std::get<1>(key))),
               to_string(static_cast<Attacker>(std::get<2>(key))),
               util::Table::pct(100 * a.ccr / n, 1),
               util::Table::pct(100 * a.ccr_prot / n, 1),
               util::Table::pct(100 * a.oer / n, 1),
               util::Table::pct(100 * a.hd / n, 1), util::Table::count(a.n)});
  }
  return t;
}

std::string Result::to_csv() const {
  std::ostringstream os;
  os << "benchmark,seed,split_layer,defense,attacker,ccr,ccr_protected,oer,"
        "hd,open_sinks,swaps,els,equiv,task_wall_ms\n";
  for (const auto& r : rows) {
    os << r.benchmark << ',' << r.seed << ',' << r.split_layer << ','
       << to_string(r.defense) << ',' << to_string(r.attacker) << ',' << r.ccr
       << ',' << r.ccr_protected << ',' << r.oer << ',' << r.hd << ','
       << r.open_sinks << ',' << r.swaps << ',' << r.els << ',' << r.equiv
       << ',' << r.wall_ms << '\n';
  }
  return os.str();
}

std::string Result::to_json() const {
  std::ostringstream os;
  os << "{\n  \"jobs\": " << jobs << ",\n  \"router_jobs\": " << router_jobs
     << ",\n  \"wall_ms\": " << wall_ms
     << ",\n  \"computed_cells\": " << computed_cells
     << ",\n  \"resumed_cells\": " << resumed_cells
     << ",\n  \"quarantined_cells\": " << quarantined_cells
     << ",\n  \"shard_index\": " << shard_index
     << ",\n  \"shard_count\": " << shard_count
     << ",\n  \"cache\": {\"netlists\": " << cache_stats.netlists
     << ", \"placements\": " << cache_stats.placements
     << ", \"base_routes\": " << cache_stats.base_routes
     << ", \"hits\": " << cache_stats.hits << "},\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    os << (i ? "," : "") << "\n    {\"benchmark\": \""
       << util::json_escape(r.benchmark) << "\", \"seed\": " << r.seed
       << ", \"split_layer\": " << r.split_layer << ", \"defense\": \""
       << to_string(r.defense) << "\", \"attacker\": \""
       << to_string(r.attacker) << "\", \"ccr\": " << r.ccr
       << ", \"ccr_protected\": " << r.ccr_protected << ", \"oer\": " << r.oer
       << ", \"hd\": " << r.hd << ", \"open_sinks\": " << r.open_sinks
       << ", \"swaps\": " << r.swaps << ", \"els\": " << r.els
       << ", \"equiv\": " << r.equiv << ", \"task_wall_ms\": " << r.wall_ms
       << "}";
  }
  os << (rows.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

Result run(const Grid& grid, const Options& opts) {
  if (opts.shard_count < 1)
    throw std::invalid_argument("sweep: shard count must be >= 1");
  if (opts.shard_index >= opts.shard_count)
    throw std::invalid_argument(
        "sweep: shard index " + std::to_string(opts.shard_index) +
        " out of range for " + std::to_string(opts.shard_count) + " shards");
  if (opts.resume && opts.store_path.empty())
    throw std::invalid_argument("sweep: resume requires a store path");

  // Expand the grid into hashed cells (validates every benchmark name up
  // front, so a typo throws before hours of work). Cells are task-major:
  // task ti owns cells [ti*cpt, (ti+1)*cpt), attacker innermost.
  const auto cells = expand_cells(grid, opts);
  const std::size_t cpt = grid.split_layers.size() * grid.attackers.size();
  const std::size_t total_tasks = cpt ? cells.size() / cpt : 0;

  // Deterministic shard split: task ti belongs to shard ti % shard_count.
  // Round-robin (not contiguous blocks) so every shard sees a mix of cheap
  // and expensive benchmarks.
  std::vector<std::size_t> kept;  // global task index per local task
  kept.reserve(total_tasks / opts.shard_count + 1);
  for (std::size_t ti = 0; ti < total_tasks; ++ti)
    if (ti % opts.shard_count == opts.shard_index) kept.push_back(ti);

  Result result;
  result.shard_index = opts.shard_index;
  result.shard_count = opts.shard_count;
  result.rows.resize(kept.size() * cpt);

  // Resume prefill: rows whose config hash is already logged are copied
  // from the store and their cells masked off; a task with no missing
  // cell never runs at all. The recomputed subset is bit-identical to a
  // from-scratch run (test-enforced), because each cell's attack depends
  // only on (grid seed, split layer) — see run_task.
  const StoreContents resumed =
      opts.resume ? load_store({opts.store_path}, /*must_exist=*/false)
                  : StoreContents{};
  std::vector<std::vector<char>> compute(kept.size());
  std::vector<char> quarantined(kept.size() * cpt, 0);
  std::vector<std::size_t> runnable;  // local task indices with work left
  runnable.reserve(kept.size());
  for (std::size_t k = 0; k < kept.size(); ++k) {
    compute[k].assign(cpt, 1);
    std::size_t missing = cpt;
    for (std::size_t ci = 0; ci < cpt; ++ci) {
      const CellRef& cell = cells[kept[k] * cpt + ci];
      const auto it = resumed.records.find(cell.config_hash);
      if (it == resumed.records.end()) continue;
      compute[k][ci] = 0;
      --missing;
      if (it->second.failed) {
        // Quarantined by a supervisor after repeated worker deaths:
        // recomputing it here would just die the same way. Skip it and
        // drop its row (no metrics exist) — the cell stays visible through
        // Result::quarantined_cells and `sm_flow materialize`.
        quarantined[k * cpt + ci] = 1;
        ++result.quarantined_cells;
        continue;
      }
      result.rows[k * cpt + ci] = it->second.row;
      ++result.resumed_cells;
    }
    result.computed_cells += missing;
    if (missing) runnable.push_back(k);
  }

  result.jobs = util::resolve_jobs(opts.jobs, runnable.size());
  // When the grid has fewer runnable tasks than the requested worker
  // budget, the leftover workers would idle — hand them to each task's
  // router instead (the router is itself jobs-invariant, so this never
  // changes metrics). A full grid keeps router_jobs = 1: task-level
  // parallelism scales better than nested router threads.
  const std::size_t budget = util::resolve_jobs(
      opts.jobs, std::numeric_limits<std::size_t>::max());
  result.router_jobs =
      std::max<std::size_t>(1, budget / std::max<std::size_t>(1, result.jobs));

  // The event log. Appends are keyed by config hash, so re-running into an
  // existing store is safe (duplicate keys materialize last-wins).
  std::unique_ptr<StoreWriter> writer;
  if (!opts.store_path.empty())
    writer = std::make_unique<StoreWriter>(opts.store_path);

  // The libraries and the cache outlive every task (cached netlists keep a
  // pointer to their library); both are only read concurrently.
  const netlist::CellLibrary lib_iscas{6};
  const netlist::CellLibrary lib_superblue{8};
  core::LayoutCache cache;

  const double t0 = now_ms();
  // Local row block for task k is [k*cpt, (k+1)*cpt): grid-major order
  // among this shard's tasks, and no two tasks share a row — workers
  // never contend on results. The per-cell completion callback appends to
  // the store (its own lock serializes writers) the moment a cell's row is
  // final, which is what makes a mid-sweep crash resumable.
  util::parallel_for(opts.jobs, runnable.size(), [&](std::size_t i) {
    const std::size_t k = runnable[i];
    const CellRef& first = cells[kept[k] * cpt];
    const Task task{first.benchmark, first.seed, first.defense,
                    first.workload,
                    // All defenses of one (bench, seed) share one cache
                    // entry. The key needn't carry scale/options: they are
                    // constant within a run and the cache lives exactly as
                    // long as the run.
                    first.benchmark + "/" + std::to_string(first.seed)};
    Row* rows = result.rows.data() + k * cpt;
    const CellCallback on_cell = [&, k](std::size_t ci) {
      if (!writer) return;
      const CellRef& cell = cells[kept[k] * cpt + ci];
      StoreRecord rec;
      rec.config_hash = cell.config_hash;
      rec.row = rows[ci];
      rec.patterns = opts.patterns;
      rec.scale = grid.scale;
      rec.config_json = cell_config_json(grid, opts, cell.benchmark,
                                         cell.workload, cell.seed,
                                         cell.defense, cell.split_layer,
                                         cell.attacker);
      writer->append(rec);
    };
    run_task(task, grid, opts, result.router_jobs,
             task.workload == Workload::Iscas85 ? lib_iscas : lib_superblue,
             cache, rows, compute[k], on_cell);
  });
  result.wall_ms = now_ms() - t0;
  result.cache_stats = cache.stats();
  if (result.quarantined_cells) {
    // Quarantined cells hold no metrics — compact their placeholder rows
    // out so tables/CSV only ever show real results (grid-major order
    // among the surviving cells is preserved).
    std::vector<Row> rows;
    rows.reserve(result.rows.size() - result.quarantined_cells);
    for (std::size_t i = 0; i < result.rows.size(); ++i)
      if (!quarantined[i]) rows.push_back(std::move(result.rows[i]));
    result.rows = std::move(rows);
  }
  return result;
}

}  // namespace sm::sweep
