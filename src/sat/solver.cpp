#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

namespace sm::sat {

int Solver::new_var() {
  const int v = num_vars();
  assign_.push_back(-1);
  phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return false;
  // Normalize: drop duplicate literals; detect tautologies.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i)
    if (lits[i].code == (lits[i + 1].code ^ 1)) return true;  // tautology
  // Remove literals already false at level 0; satisfied clause is dropped.
  std::vector<Lit> keep;
  for (const Lit l : lits) {
    if (lit_true(l) && level_[static_cast<std::size_t>(l.var())] == 0)
      return true;
    if (lit_false(l) && level_[static_cast<std::size_t>(l.var())] == 0)
      continue;
    keep.push_back(l);
  }
  if (keep.empty()) {
    unsat_ = true;
    return false;
  }
  if (keep.size() == 1) {
    if (lit_false(keep[0])) {
      unsat_ = true;
      return false;
    }
    if (lit_unassigned(keep[0])) {
      enqueue(keep[0], -1);
      if (propagate() >= 0) {
        unsat_ = true;
        return false;
      }
    }
    return true;
  }
  clauses_.push_back({std::move(keep), false, 0.0});
  attach_clause(static_cast<std::int32_t>(clauses_.size() - 1));
  return true;
}

void Solver::attach_clause(std::int32_t ci) {
  const Clause& c = clauses_[static_cast<std::size_t>(ci)];
  watches_[c.lits[0].negated().code].push_back(ci);
  watches_[c.lits[1].negated().code].push_back(ci);
}

void Solver::enqueue(Lit l, std::int32_t reason) {
  assign_[static_cast<std::size_t>(l.var())] = l.positive() ? 1 : 0;
  level_[static_cast<std::size_t>(l.var())] = current_level();
  reason_[static_cast<std::size_t>(l.var())] = reason;
  trail_.push_back(l);
}

std::int32_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];  // p became true
    auto& watch_list = watches_[p.code];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < watch_list.size(); ++wi) {
      const std::int32_t ci = watch_list[wi];
      Clause& c = clauses_[static_cast<std::size_t>(ci)];
      // Ensure the false literal (~p) sits at position 1.
      const Lit not_p = p.negated();
      if (c.lits[0] == not_p) std::swap(c.lits[0], c.lits[1]);
      if (lit_true(c.lits[0])) {
        watch_list[keep++] = ci;  // clause satisfied; keep watching
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (!lit_false(c.lits[k])) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[c.lits[1].negated().code].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = ci;
      if (lit_false(c.lits[0])) {
        // Conflict: keep remaining watches, report.
        for (std::size_t rest = wi + 1; rest < watch_list.size(); ++rest)
          watch_list[keep++] = watch_list[rest];
        watch_list.resize(keep);
        return ci;
      }
      enqueue(c.lits[0], ci);
    }
    watch_list.resize(keep);
  }
  return -1;
}

void Solver::bump_var(int var) {
  activity_[static_cast<std::size_t>(var)] += var_inc_;
  if (activity_[static_cast<std::size_t>(var)] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
}

void Solver::decay_activities() { var_inc_ /= 0.95; }

void Solver::analyze(std::int32_t confl, std::vector<Lit>& learnt,
                     int& back_level) {
  learnt.clear();
  learnt.push_back(Lit{0});  // placeholder for the asserting literal
  std::vector<bool> seen(static_cast<std::size_t>(num_vars()), false);
  int counter = 0;
  Lit p{0};
  bool have_p = false;
  std::size_t trail_index = trail_.size();

  for (;;) {
    const Clause& c = clauses_[static_cast<std::size_t>(confl)];
    for (std::size_t i = have_p ? 1 : 0; i < c.lits.size(); ++i) {
      const Lit q = c.lits[i];
      const auto v = static_cast<std::size_t>(q.var());
      if (seen[v] || level_[v] == 0) continue;
      seen[v] = true;
      bump_var(q.var());
      if (level_[v] == current_level()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Find the next literal on the trail at the current level.
    do {
      --trail_index;
      p = trail_[trail_index];
    } while (!seen[static_cast<std::size_t>(p.var())]);
    seen[static_cast<std::size_t>(p.var())] = false;
    --counter;
    if (counter == 0) break;
    confl = reason_[static_cast<std::size_t>(p.var())];
    have_p = true;
    // Reorder so lits[0] is p (the literal we resolve on).
    Clause& rc = clauses_[static_cast<std::size_t>(confl)];
    if (!(rc.lits[0] == p))
      for (std::size_t i = 1; i < rc.lits.size(); ++i)
        if (rc.lits[i] == p) {
          std::swap(rc.lits[0], rc.lits[i]);
          break;
        }
  }
  learnt[0] = p.negated();

  // Backtrack level: max level among the other learnt literals.
  back_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const int lv = level_[static_cast<std::size_t>(learnt[i].var())];
    if (lv > back_level) {
      back_level = lv;
      max_i = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_i]);
}

void Solver::backtrack(int target) {
  while (current_level() > target) {
    const std::size_t lim = trail_lim_.back();
    trail_lim_.pop_back();
    while (trail_.size() > lim) {
      const Lit l = trail_.back();
      trail_.pop_back();
      const auto v = static_cast<std::size_t>(l.var());
      phase_[v] = assign_[v];
      assign_[v] = -1;
      reason_[v] = -1;
    }
  }
  propagate_head_ = trail_.size();
}

int Solver::pick_branch_var() {
  int best = -1;
  double best_act = -1.0;
  for (int v = 0; v < num_vars(); ++v) {
    if (assign_[static_cast<std::size_t>(v)] >= 0) continue;
    if (activity_[static_cast<std::size_t>(v)] > best_act) {
      best_act = activity_[static_cast<std::size_t>(v)];
      best = v;
    }
  }
  return best;
}

void Solver::reduce_learnts() {
  // Drop the lower-activity half of the learnt clauses (keep binaries and
  // reasons). Detach-and-rebuild keeps the watch lists consistent.
  std::vector<std::int32_t> learnt_ids;
  for (std::int32_t ci = 0; ci < static_cast<std::int32_t>(clauses_.size()); ++ci)
    if (clauses_[static_cast<std::size_t>(ci)].learnt &&
        clauses_[static_cast<std::size_t>(ci)].lits.size() > 2)
      learnt_ids.push_back(ci);
  if (learnt_ids.size() < 2000) return;
  std::sort(learnt_ids.begin(), learnt_ids.end(), [&](int a, int b) {
    return clauses_[static_cast<std::size_t>(a)].activity <
           clauses_[static_cast<std::size_t>(b)].activity;
  });
  std::vector<bool> in_use(clauses_.size(), false);
  for (int v = 0; v < num_vars(); ++v)
    if (reason_[static_cast<std::size_t>(v)] >= 0)
      in_use[static_cast<std::size_t>(reason_[static_cast<std::size_t>(v)])] = true;
  std::vector<bool> drop(clauses_.size(), false);
  for (std::size_t i = 0; i < learnt_ids.size() / 2; ++i)
    if (!in_use[static_cast<std::size_t>(learnt_ids[i])])
      drop[static_cast<std::size_t>(learnt_ids[i])] = true;
  // Rebuild clause storage and watches.
  std::vector<Clause> kept;
  std::vector<std::int32_t> remap(clauses_.size(), -1);
  for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
    if (drop[ci]) continue;
    remap[ci] = static_cast<std::int32_t>(kept.size());
    kept.push_back(std::move(clauses_[ci]));
  }
  clauses_ = std::move(kept);
  for (auto& w : watches_) w.clear();
  for (std::int32_t ci = 0; ci < static_cast<std::int32_t>(clauses_.size()); ++ci)
    attach_clause(ci);
  for (int v = 0; v < num_vars(); ++v) {
    auto& r = reason_[static_cast<std::size_t>(v)];
    if (r >= 0) r = remap[static_cast<std::size_t>(r)];
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     std::int64_t max_conflicts) {
  if (unsat_) return Result::Unsat;
  stats_conflicts_ = 0;
  backtrack(0);
  if (propagate() >= 0) {
    unsat_ = true;
    return Result::Unsat;
  }

  std::int64_t restart_limit = 128;
  std::int64_t conflicts_since_restart = 0;

  for (;;) {
    const std::int32_t confl = propagate();
    if (confl >= 0) {
      ++stats_conflicts_;
      ++conflicts_since_restart;
      if (current_level() == 0) {
        unsat_ = true;
        return Result::Unsat;
      }
      std::vector<Lit> learnt;
      int back_level = 0;
      analyze(confl, learnt, back_level);
      backtrack(back_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], -1);
      } else {
        clauses_.push_back({learnt, true, var_inc_});
        const auto ci = static_cast<std::int32_t>(clauses_.size() - 1);
        attach_clause(ci);
        enqueue(learnt[0], ci);
      }
      decay_activities();
      if (max_conflicts > 0 && stats_conflicts_ >= max_conflicts) {
        backtrack(0);
        return Result::Unknown;
      }
      if (conflicts_since_restart >= restart_limit) {
        conflicts_since_restart = 0;
        restart_limit = restart_limit + restart_limit / 2;
        backtrack(0);
        reduce_learnts();
      }
      continue;
    }

    // Apply assumptions, then decide.
    bool assumption_pending = false;
    for (const Lit a : assumptions) {
      if (lit_false(a)) {
        backtrack(0);
        return Result::Unsat;  // conflicts with assumptions
      }
      if (lit_unassigned(a)) {
        trail_lim_.push_back(trail_.size());
        enqueue(a, -1);
        assumption_pending = true;
        break;
      }
    }
    if (assumption_pending) continue;

    const int v = pick_branch_var();
    if (v < 0) return Result::Sat;  // full assignment
    trail_lim_.push_back(trail_.size());
    enqueue(Lit::make(v, phase_[static_cast<std::size_t>(v)] == 1), -1);
  }
}

}  // namespace sm::sat
