// A compact CDCL SAT solver (watched literals, 1-UIP clause learning,
// VSIDS-style activities, geometric restarts, phase saving).
//
// Used by sm::core::check_equivalence as the complete decision procedure
// behind the combinational equivalence check (the Formality substitute):
// the miter CNF of two netlists is UNSAT iff they are equivalent.
#pragma once

#include <cstdint>
#include <vector>

namespace sm::sat {

/// A literal: variable index v with sign. Encoded as 2*v (+) / 2*v+1 (-).
struct Lit {
  std::uint32_t code = 0;

  static Lit make(int var, bool positive) {
    return Lit{static_cast<std::uint32_t>(2 * var + (positive ? 0 : 1))};
  }
  int var() const { return static_cast<int>(code >> 1); }
  bool positive() const { return (code & 1) == 0; }
  Lit negated() const { return Lit{code ^ 1}; }
  friend bool operator==(Lit a, Lit b) { return a.code == b.code; }
};

enum class Result { Sat, Unsat, Unknown };

class Solver {
 public:
  /// Allocate a fresh variable; returns its index.
  int new_var();
  int num_vars() const { return static_cast<int>(assign_.size()); }

  /// Add a clause (disjunction of literals). Empty clause makes the
  /// instance trivially UNSAT. Returns false if the formula is already
  /// known unsatisfiable.
  bool add_clause(std::vector<Lit> lits);

  /// Solve under optional assumptions. `max_conflicts` bounds the effort
  /// (<=0 means unbounded); exceeding it yields Result::Unknown.
  Result solve(const std::vector<Lit>& assumptions = {},
               std::int64_t max_conflicts = -1);

  /// Model access after Result::Sat.
  bool value(int var) const { return assign_[static_cast<std::size_t>(var)] == 1; }

  std::int64_t conflicts() const { return stats_conflicts_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0.0;
  };

  // Assignment: -1 unassigned, 0 false, 1 true (indexed by var).
  std::vector<std::int8_t> assign_;
  std::vector<std::int8_t> phase_;      ///< saved phase per var
  std::vector<int> level_;              ///< decision level per var
  std::vector<std::int32_t> reason_;    ///< clause index or -1
  std::vector<double> activity_;        ///< VSIDS score per var
  std::vector<Clause> clauses_;
  std::vector<std::vector<std::int32_t>> watches_;  ///< per literal code
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t propagate_head_ = 0;
  double var_inc_ = 1.0;
  bool unsat_ = false;
  std::int64_t stats_conflicts_ = 0;

  bool lit_true(Lit l) const {
    const auto a = assign_[static_cast<std::size_t>(l.var())];
    return a >= 0 && (a == 1) == l.positive();
  }
  bool lit_false(Lit l) const {
    const auto a = assign_[static_cast<std::size_t>(l.var())];
    return a >= 0 && (a == 1) != l.positive();
  }
  bool lit_unassigned(Lit l) const {
    return assign_[static_cast<std::size_t>(l.var())] < 0;
  }
  int current_level() const { return static_cast<int>(trail_lim_.size()); }

  void enqueue(Lit l, std::int32_t reason);
  std::int32_t propagate();  ///< returns conflicting clause index or -1
  void analyze(std::int32_t confl, std::vector<Lit>& learnt, int& back_level);
  void backtrack(int level);
  void bump_var(int var);
  void decay_activities();
  int pick_branch_var();
  void attach_clause(std::int32_t ci);
  void reduce_learnts();
};

}  // namespace sm::sat
