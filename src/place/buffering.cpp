#include "place/buffering.hpp"

#include <algorithm>

namespace sm::place {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sink;

BufferingResult insert_buffers(Netlist& nl, Placement& pl,
                               const BufferingOptions& opts) {
  BufferingResult result;
  const auto& lib = nl.library();
  std::vector<bool> skip(nl.num_nets(), false);
  for (const NetId n : opts.skip)
    if (n < skip.size()) skip[n] = true;

  // Snapshot the net count: nets created by inserted buffers are final.
  const NetId original_nets = static_cast<NetId>(nl.num_nets());
  for (NetId n = 0; n < original_nets; ++n) {
    if (skip[n]) continue;
    const auto& net = nl.net(n);
    if (net.sinks.empty()) continue;
    const double hpwl = net_hpwl(nl, pl, n);
    if (hpwl < opts.hpwl_threshold_um) continue;

    int strength = 2;
    if (hpwl >= opts.strength8_um) strength = 8;
    else if (hpwl >= opts.strength4_um) strength = 4;

    const util::Point center = net_bbox(nl, pl, n).center();
    const CellId buf = nl.add_cell(
        "rep" + std::to_string(result.buffers_inserted) + "_" + net.name,
        lib.buffer(strength));
    // Re-point every sink at the repeater output, then feed the repeater.
    const std::vector<Sink> sinks = nl.net(n).sinks;  // copy: list mutates
    const NetId buf_out = nl.cell(buf).output;
    for (const Sink& s : sinks) nl.reconnect_sink(s.cell, s.pin, buf_out);
    nl.connect_input(buf, 0, n);

    pl.pos.push_back(center);
    result.buffers.push_back(buf);
    ++result.buffers_inserted;
  }
  nl.validate();
  return result;
}

}  // namespace sm::place
