#include "place/placer.hpp"

#include "place/fm.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace sm::place {

using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;
using util::Point;
using util::Rect;

Floorplan Placer::make_floorplan(const Netlist& nl) const {
  double cell_area = 0.0;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    cell_area += nl.type_of(id).area_um2;
  cell_area = std::max(cell_area, 10.0);
  const double core_area = cell_area / opts_.target_utilization;
  Floorplan fp;
  fp.row_height_um = nl.library().row_height_um();
  const double width = std::sqrt(core_area / opts_.aspect_ratio);
  fp.num_rows = std::max(
      1, static_cast<int>(std::ceil(width * opts_.aspect_ratio / fp.row_height_um)));
  fp.die = Rect{{0.0, 0.0},
                {width, static_cast<double>(fp.num_rows) * fp.row_height_um}};
  return fp;
}

namespace {

/// Distribute chip ports evenly around the die boundary: PIs on the west and
/// north edges, POs on the east and south edges (stable, deterministic).
void place_ports(const Netlist& nl, Placement& pl) {
  const Rect& die = pl.floorplan.die;
  const auto& pis = nl.primary_inputs();
  const auto& pos_ports = nl.primary_outputs();
  auto along = [&](std::size_t i, std::size_t n, double lo, double hi) {
    return lo + (hi - lo) * (static_cast<double>(i) + 0.5) /
                    static_cast<double>(std::max<std::size_t>(n, 1));
  };
  for (std::size_t i = 0; i < pis.size(); ++i) {
    const std::size_t half = (pis.size() + 1) / 2;
    if (i < half)  // west edge, bottom-to-top
      pl.pos[pis[i]] = {die.lo.x, along(i, half, die.lo.y, die.hi.y)};
    else  // north edge, left-to-right
      pl.pos[pis[i]] = {along(i - half, pis.size() - half, die.lo.x, die.hi.x),
                        die.hi.y};
  }
  for (std::size_t i = 0; i < pos_ports.size(); ++i) {
    const std::size_t half = (pos_ports.size() + 1) / 2;
    if (i < half)  // east edge
      pl.pos[pos_ports[i]] = {die.hi.x, along(i, half, die.lo.y, die.hi.y)};
    else  // south edge
      pl.pos[pos_ports[i]] = {
          along(i - half, pos_ports.size() - half, die.lo.x, die.hi.x),
          die.lo.y};
  }
}

struct Region {
  Rect rect;
  std::vector<CellId> cells;
  std::uint64_t seed;
};

}  // namespace

Placement Placer::place(const Netlist& nl) const {
  Placement pl;
  pl.floorplan = make_floorplan(nl);
  pl.pos.assign(nl.num_cells(), pl.floorplan.die.center());
  place_ports(nl, pl);

  std::vector<CellId> movable;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (!nl.is_port(id)) movable.push_back(id);

  std::deque<Region> queue;
  queue.push_back({pl.floorplan.die, std::move(movable), opts_.seed});

  while (!queue.empty()) {
    Region region = std::move(queue.front());
    queue.pop_front();
    const std::size_t n = region.cells.size();
    if (n == 0) continue;

    if (n <= static_cast<std::size_t>(opts_.leaf_cells)) {
      // Spread leaf cells on a small grid inside the region.
      const int cols = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                    static_cast<double>(n)))));
      const int rows = (static_cast<int>(n) + cols - 1) / cols;
      for (std::size_t i = 0; i < n; ++i) {
        const int cx = static_cast<int>(i) % cols;
        const int cy = static_cast<int>(i) / cols;
        pl.pos[region.cells[i]] = {
            region.rect.lo.x + region.rect.width() * (cx + 0.5) / cols,
            region.rect.lo.y + region.rect.height() * (cy + 0.5) / rows};
      }
      continue;
    }

    // Split along the longer axis.
    const bool vertical_cut = region.rect.width() >= region.rect.height();

    // Build the FM problem over nets touching this region.
    FmProblem prob;
    prob.balance_tolerance = opts_.fm_balance;
    prob.seed = region.seed;
    prob.max_passes = opts_.fm_passes;
    prob.weight.resize(n);
    std::unordered_map<CellId, std::uint32_t> index;
    index.reserve(n * 2);
    for (std::uint32_t i = 0; i < n; ++i) {
      index[region.cells[i]] = i;
      // Zero-area cells still need weight so balance works.
      prob.weight[i] = std::max(nl.type_of(region.cells[i]).area_um2, 0.2);
    }
    const double cut_coord = vertical_cut ? region.rect.center().x
                                          : region.rect.center().y;
    std::unordered_set<NetId> seen;
    for (const CellId c : region.cells) {
      const auto& cell = nl.cell(c);
      auto consider = [&](NetId net) {
        if (net == netlist::kInvalidNet || !seen.insert(net).second) return;
        std::vector<std::uint32_t> members;
        std::uint32_t e0 = 0, e1 = 0;
        auto add_pin = [&](CellId pin_cell) {
          const auto it = index.find(pin_cell);
          if (it != index.end()) {
            members.push_back(it->second);
          } else {
            const Point& p = pl.pos[pin_cell];
            const double coord = vertical_cut ? p.x : p.y;
            (coord <= cut_coord ? e0 : e1) += 1;
          }
        };
        add_pin(nl.net(net).driver);
        for (const auto& s : nl.net(net).sinks) add_pin(s.cell);
        if (members.size() + std::min<std::uint32_t>(e0 + e1, 1) < 2) return;
        prob.edges.push_back(std::move(members));
        prob.ext0.push_back(e0);
        prob.ext1.push_back(e1);
      };
      consider(cell.output);
      for (const NetId in : cell.inputs) consider(in);
    }

    const FmResult fm = fm_bipartition(prob);

    // Split the rectangle in proportion to the area on each side.
    double w0 = 0, wt = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      wt += prob.weight[i];
      if (fm.side[i] == 0) w0 += prob.weight[i];
    }
    const double frac = std::clamp(wt > 0 ? w0 / wt : 0.5, 0.1, 0.9);

    Region a, b;
    if (vertical_cut) {
      const double cut_x = region.rect.lo.x + region.rect.width() * frac;
      a.rect = {region.rect.lo, {cut_x, region.rect.hi.y}};
      b.rect = {{cut_x, region.rect.lo.y}, region.rect.hi};
    } else {
      const double cut_y = region.rect.lo.y + region.rect.height() * frac;
      a.rect = {region.rect.lo, {region.rect.hi.x, cut_y}};
      b.rect = {{region.rect.lo.x, cut_y}, region.rect.hi};
    }
    a.cells.reserve(n / 2 + 1);
    b.cells.reserve(n / 2 + 1);
    for (std::uint32_t i = 0; i < n; ++i)
      (fm.side[i] == 0 ? a : b).cells.push_back(region.cells[i]);
    // Update position estimates for terminal propagation in other regions.
    for (const CellId c : a.cells) pl.pos[c] = a.rect.center();
    for (const CellId c : b.cells) pl.pos[c] = b.rect.center();
    a.seed = region.seed * 2862933555777941757ULL + 3037000493ULL;
    b.seed = a.seed + 0x9e3779b97f4a7c15ULL;
    queue.push_back(std::move(a));
    queue.push_back(std::move(b));
  }

  legalize_rows(nl, pl);
  force_refine(nl, pl, opts_.force_iterations, opts_.force_alpha);
  detailed_place(nl, pl, opts_.detailed_passes, opts_.seed ^ 0xd37aULL);
  legalize_rows(nl, pl);
  return pl;
}

double force_refine(const Netlist& nl, Placement& pl, int iterations,
                    double alpha) {
  if (iterations <= 0) return total_hpwl(nl, pl);

  // Jacobi iteration of the quadratic star model: each cell moves toward
  // the centroid of its nets' centroids, with decaying step size; the row
  // legalizer re-spreads after every step. No HPWL rollback on purpose —
  // quadratic placement does not minimize HPWL, and the long-edge drag is
  // exactly the physical behaviour the erroneous-netlist defense exploits.
  for (int iter = 0; iter < iterations; ++iter) {
    const double step = alpha / (1.0 + 0.5 * iter);
    // Accumulate centroid targets from the current positions.
    std::vector<double> sx(nl.num_cells(), 0.0), sy(nl.num_cells(), 0.0);
    std::vector<double> cnt(nl.num_cells(), 0.0);
    for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
      const auto& net = nl.net(n);
      // Every pin of the net attracts every other pin; use the net centroid
      // as the shared target. Weighting the pull by the net's current
      // extent approximates the bound-to-bound quadratic model: long nets
      // dominate, which is what physically drags a gate across the die when
      // one of its connections is (erroneously) remote.
      double cx = pl.pos[net.driver].x, cy = pl.pos[net.driver].y;
      int pins = 1;
      for (const auto& s : net.sinks) {
        cx += pl.pos[s.cell].x;
        cy += pl.pos[s.cell].y;
        ++pins;
      }
      cx /= pins;
      cy /= pins;
      const double w = std::max(net_hpwl(nl, pl, n), 1.0);
      auto pull = [&](CellId c) {
        sx[c] += w * cx;
        sy[c] += w * cy;
        cnt[c] += w;
      };
      pull(net.driver);
      for (const auto& s : net.sinks) pull(s.cell);
    }
    for (CellId id = 0; id < nl.num_cells(); ++id) {
      if (nl.type_of(id).cls != netlist::CellClass::Standard) continue;
      if (cnt[id] == 0) continue;
      const double tx = sx[id] / cnt[id];
      const double ty = sy[id] / cnt[id];
      pl.pos[id].x += step * (tx - pl.pos[id].x);
      pl.pos[id].y += step * (ty - pl.pos[id].y);
    }
    legalize_rows(nl, pl);
  }
  return total_hpwl(nl, pl);
}

void legalize_rows(const Netlist& nl, Placement& pl) {
  const Floorplan& fp = pl.floorplan;
  struct Item {
    CellId cell;
    double x, y, width;
  };
  std::vector<Item> items;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const auto& t = nl.type_of(id);
    if (t.cls != netlist::CellClass::Standard) continue;  // ports stay fixed
    items.push_back({id, pl.pos[id].x, pl.pos[id].y, std::max(t.width_um, 0.2)});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.x < b.x || (a.x == b.x && a.cell < b.cell);
  });

  std::vector<double> cursor(static_cast<std::size_t>(fp.num_rows), fp.die.lo.x);
  const int rows = fp.num_rows;
  struct Placed {
    CellId cell;
    double x, width;
  };
  std::vector<std::vector<Placed>> row_members(
      static_cast<std::size_t>(fp.num_rows));
  for (const Item& it : items) {
    const int want = std::clamp(
        static_cast<int>((it.y - fp.die.lo.y) / fp.row_height_um), 0, rows - 1);
    int best_row = -1;
    double best_cost = std::numeric_limits<double>::max();
    double best_x = 0;
    // Examine a window of rows around the desired one; widen until the
    // whole row range has been covered.
    for (int radius = 4;; radius *= 4) {
      for (int r = std::max(0, want - radius);
           r <= std::min(rows - 1, want + radius); ++r) {
        // Clamp the desired x so right-edge cells can still enter the row.
        const double want_x =
            std::min(it.x, fp.die.hi.x - it.width);
        const double x = std::max(cursor[static_cast<std::size_t>(r)], want_x);
        if (x + it.width > fp.die.hi.x + 1e-9) continue;  // row full
        const double cost =
            std::abs(x - it.x) + std::abs(fp.row_y(r) - it.y) * 1.5;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = r;
          best_x = x;
        }
      }
      if (best_row >= 0 || radius >= rows) break;
    }
    if (best_row < 0) {
      // No row can honor the desired x (right-edge congestion). Fall back to
      // gap-free packing: place at the cursor of the best row that still has
      // physical space, preferring rows close to the desired y.
      for (int r = 0; r < rows; ++r) {
        const double x = cursor[static_cast<std::size_t>(r)];
        if (x + it.width > fp.die.hi.x + 1e-9) continue;
        const double cost =
            std::abs(x - it.x) + std::abs(fp.row_y(r) - it.y) * 1.5;
        if (cost < best_cost) {
          best_cost = cost;
          best_row = r;
          best_x = x;
        }
      }
    }
    if (best_row < 0) {
      // Total cell width exceeds row capacity (utilization ~1); keep the
      // layout legal-ish by dropping into the emptiest row at its cursor.
      best_row = 0;
      for (int r = 1; r < rows; ++r)
        if (cursor[static_cast<std::size_t>(r)] <
            cursor[static_cast<std::size_t>(best_row)])
          best_row = r;
      best_x = cursor[static_cast<std::size_t>(best_row)];
    }
    pl.pos[it.cell] = {best_x + it.width / 2, fp.row_y(best_row)};
    cursor[static_cast<std::size_t>(best_row)] = best_x + it.width;
    row_members[static_cast<std::size_t>(best_row)].push_back(
        {it.cell, best_x, it.width});
  }

  // Squeeze pass: cells that were dumped past the die edge (all cursors
  // pegged right) are pushed back left into earlier gaps. Right-to-left so
  // each cell only needs to respect its right neighbor.
  for (auto& members : row_members) {
    double allowed_hi = fp.die.hi.x;
    for (std::size_t k = members.size(); k-- > 0;) {
      auto& m = members[k];
      if (m.x + m.width > allowed_hi) {
        m.x = std::max(fp.die.lo.x, allowed_hi - m.width);
        pl.pos[m.cell].x = m.x + m.width / 2;
      }
      allowed_hi = m.x;
    }
  }
}

double detailed_place(const Netlist& nl, Placement& pl, int passes,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  // Incident nets per cell (inputs + output, deduplicated).
  std::vector<std::vector<NetId>> cell_nets(nl.num_cells());
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    auto& v = cell_nets[id];
    const auto& c = nl.cell(id);
    if (c.output != netlist::kInvalidNet) v.push_back(c.output);
    for (const NetId in : c.inputs)
      if (in != netlist::kInvalidNet &&
          std::find(v.begin(), v.end(), in) == v.end())
        v.push_back(in);
  }

  std::vector<CellId> movable;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (nl.type_of(id).cls == netlist::CellClass::Standard) movable.push_back(id);
  if (movable.size() < 2) return total_hpwl(nl, pl);

  auto cost_of = [&](CellId a, CellId b) {
    double sum = 0;
    for (const NetId n : cell_nets[a]) sum += net_hpwl(nl, pl, n);
    for (const NetId n : cell_nets[b]) {
      // Avoid double counting shared nets.
      if (std::find(cell_nets[a].begin(), cell_nets[a].end(), n) ==
          cell_nets[a].end())
        sum += net_hpwl(nl, pl, n);
    }
    return sum;
  };

  // Spatial bucket grid so each cell can find a swap partner near the
  // centroid of its connected pins (random distant swaps almost never help).
  const Rect& die = pl.floorplan.die;
  const int gw = std::max(1, static_cast<int>(std::sqrt(
                                 static_cast<double>(movable.size()) / 4.0)));
  auto bucket_of = [&](const Point& p) {
    const int bx = std::clamp(
        static_cast<int>((p.x - die.lo.x) / std::max(die.width(), 1e-9) * gw), 0,
        gw - 1);
    const int by = std::clamp(
        static_cast<int>((p.y - die.lo.y) / std::max(die.height(), 1e-9) * gw),
        0, gw - 1);
    return by * gw + bx;
  };

  for (int pass = 0; pass < passes; ++pass) {
    std::vector<std::vector<CellId>> grid(static_cast<std::size_t>(gw * gw));
    for (const CellId c : movable)
      grid[static_cast<std::size_t>(bucket_of(pl.pos[c]))].push_back(c);

    std::vector<CellId> order = movable;
    rng.shuffle(order);
    for (const CellId a : order) {
      // Centroid of the other pins on a's nets.
      double sx = 0, sy = 0;
      int cnt = 0;
      for (const NetId n : cell_nets[a]) {
        const auto& net = nl.net(n);
        if (net.driver != a) {
          sx += pl.pos[net.driver].x;
          sy += pl.pos[net.driver].y;
          ++cnt;
        }
        for (const auto& s : net.sinks)
          if (s.cell != a) {
            sx += pl.pos[s.cell].x;
            sy += pl.pos[s.cell].y;
            ++cnt;
          }
      }
      if (cnt == 0) continue;
      const Point want{sx / cnt, sy / cnt};
      const auto& bucket = grid[static_cast<std::size_t>(bucket_of(want))];
      if (bucket.empty()) continue;
      const CellId b =
          bucket[static_cast<std::size_t>(rng.below(bucket.size()))];
      if (a == b) continue;
      const double before = cost_of(a, b);
      std::swap(pl.pos[a], pl.pos[b]);
      const double after = cost_of(a, b);
      if (after >= before - 1e-12) std::swap(pl.pos[a], pl.pos[b]);  // revert
    }
  }
  return total_hpwl(nl, pl);
}

}  // namespace sm::place
