#include "place/placement.hpp"

namespace sm::place {

using netlist::NetId;
using netlist::Netlist;
using util::Point;
using util::Rect;

Rect net_bbox(const Netlist& nl, const Placement& pl, NetId net) {
  const auto& n = nl.net(net);
  Rect box = Rect::around(pl.of(n.driver));
  for (const auto& s : n.sinks) box.expand(pl.of(s.cell));
  return box;
}

double net_hpwl(const Netlist& nl, const Placement& pl, NetId net) {
  return net_bbox(nl, pl, net).half_perimeter();
}

double total_hpwl(const Netlist& nl, const Placement& pl) {
  double sum = 0.0;
  for (NetId n = 0; n < nl.num_nets(); ++n) sum += net_hpwl(nl, pl, n);
  return sum;
}

std::vector<double> driver_sink_distances(const Netlist& nl,
                                          const Placement& pl, NetId net) {
  const auto& n = nl.net(net);
  std::vector<double> d;
  d.reserve(n.sinks.size());
  const Point& drv = pl.of(n.driver);
  for (const auto& s : n.sinks) d.push_back(util::manhattan(drv, pl.of(s.cell)));
  return d;
}

}  // namespace sm::place
