#include "place/fm.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

namespace sm::place {
namespace {

/// Gain-bucket FM kernel. Buckets give O(1) best-gain selection and O(1)
/// (amortized) gain updates, the property that makes FM near-linear per pass.
class State {
 public:
  explicit State(const FmProblem& prob) : p_(&prob) {
    const std::size_t n = prob.weight.size();
    item_edges_.resize(n);
    for (std::uint32_t e = 0; e < prob.edges.size(); ++e)
      for (const auto it : prob.edges[e]) {
        if (it >= n) throw std::out_of_range("fm: edge references bad item");
        item_edges_[it].push_back(e);
      }
    cnt_[0].assign(prob.edges.size(), 0);
    cnt_[1].assign(prob.edges.size(), 0);
    gain_.assign(n, 0);
    for (const double w : prob.weight) total_ += w;
    max_degree_ = 1;
    for (const auto& ie : item_edges_)
      max_degree_ = std::max(max_degree_, static_cast<int>(ie.size()));
    buckets_.assign(static_cast<std::size_t>(2 * max_degree_ + 1), {});
    bucket_pos_.assign(n, kNone);
    locked_.assign(n, 1);  // everything locked until begin_pass
  }

  const std::vector<std::uint8_t>& side() const { return side_; }
  double w0() const { return w0_; }
  double total() const { return total_; }

  void set_assignment(std::vector<std::uint8_t> assign) {
    side_ = std::move(assign);
    std::fill(cnt_[0].begin(), cnt_[0].end(), 0);
    std::fill(cnt_[1].begin(), cnt_[1].end(), 0);
    w0_ = 0;
    for (std::size_t i = 0; i < side_.size(); ++i)
      if (side_[i] == 0) w0_ += p_->weight[i];
    for (std::uint32_t e = 0; e < p_->edges.size(); ++e) {
      cnt_[0][e] = ext(0, e);
      cnt_[1][e] = ext(1, e);
      for (const auto it : p_->edges[e]) ++cnt_[side_[it]][e];
    }
  }

  int cut() const {
    int c = 0;
    for (std::uint32_t e = 0; e < p_->edges.size(); ++e)
      if (cnt_[0][e] > 0 && cnt_[1][e] > 0) ++c;
    return c;
  }

  /// Unlock all items and (re)build the gain buckets.
  void begin_pass() {
    for (auto& b : buckets_) b.clear();
    const std::size_t n = side_.size();
    for (std::uint32_t i = 0; i < n; ++i) {
      locked_[i] = 0;
      gain_[i] = compute_gain(i);
      bucket_insert(i);
    }
    max_ptr_ = static_cast<int>(buckets_.size()) - 1;
  }

  /// Pick the highest-gain unlocked item whose move keeps balance.
  /// Returns (item, gain) or nullopt.
  struct Pick { std::uint32_t item; int gain; };
  std::optional<Pick> select() {
    for (int b = max_ptr_; b >= 0; --b) {
      const auto& bucket = buckets_[static_cast<std::size_t>(b)];
      for (const auto i : bucket) {
        const double new_w0 =
            w0_ + (side_[i] == 1 ? p_->weight[i] : -p_->weight[i]);
        if (!balance_ok(new_w0)) continue;
        max_ptr_ = b;
        return Pick{i, b - max_degree_};
      }
    }
    return std::nullopt;
  }

  /// Move item i to the other side; lock it; update neighbor gains.
  void move_and_lock(std::uint32_t i) {
    bucket_erase(i);
    locked_[i] = 1;
    apply_move(i);
  }

  /// Move without bucket maintenance (used for rollback after the pass).
  void raw_move(std::uint32_t i) { apply_move(i); }

  bool balance_ok(double new_w0) const {
    return std::abs(new_w0 - total_ / 2) <= p_->balance_tolerance * total_;
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffU;

  std::uint32_t ext(int s, std::uint32_t e) const {
    const auto& v = (s == 0) ? p_->ext0 : p_->ext1;
    return e < v.size() ? v[e] : 0;
  }

  int compute_gain(std::uint32_t i) const {
    const auto from = static_cast<std::size_t>(side_[i]);
    const std::size_t to = 1 - from;
    int g = 0;
    for (const auto e : item_edges_[i]) {
      if (cnt_[from][e] == 1) ++g;
      if (cnt_[to][e] == 0) --g;
    }
    return g;
  }

  void bucket_insert(std::uint32_t i) {
    auto& b = buckets_[static_cast<std::size_t>(gain_[i] + max_degree_)];
    bucket_pos_[i] = static_cast<std::uint32_t>(b.size());
    b.push_back(i);
    max_ptr_ = std::max(max_ptr_, gain_[i] + max_degree_);
  }

  void bucket_erase(std::uint32_t i) {
    if (bucket_pos_[i] == kNone) return;
    auto& b = buckets_[static_cast<std::size_t>(gain_[i] + max_degree_)];
    const std::uint32_t pos = bucket_pos_[i];
    const std::uint32_t last = b.back();
    b[pos] = last;
    bucket_pos_[last] = pos;
    b.pop_back();
    bucket_pos_[i] = kNone;
  }

  void update_gain(std::uint32_t j) {
    if (locked_[j]) return;
    const int g = compute_gain(j);
    if (g == gain_[j]) return;
    bucket_erase(j);
    gain_[j] = g;
    bucket_insert(j);
  }

  void apply_move(std::uint32_t i) {
    const auto from = static_cast<std::size_t>(side_[i]);
    const std::size_t to = 1 - from;
    for (const auto e : item_edges_[i]) {
      --cnt_[from][e];
      ++cnt_[to][e];
    }
    side_[i] = static_cast<std::uint8_t>(to);
    w0_ += (to == 0) ? p_->weight[i] : -p_->weight[i];
    for (const auto e : item_edges_[i])
      for (const auto j : p_->edges[e])
        if (j != i) update_gain(j);
  }

  const FmProblem* p_;
  std::vector<std::vector<std::uint32_t>> item_edges_;
  std::vector<std::uint32_t> cnt_[2];
  std::vector<std::uint8_t> side_;
  std::vector<int> gain_;
  std::vector<std::uint8_t> locked_;
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint32_t> bucket_pos_;
  int max_ptr_ = 0;
  int max_degree_ = 1;
  double w0_ = 0, total_ = 0;
};

}  // namespace

int fm_cut_size(const FmProblem& problem, const std::vector<std::uint8_t>& side) {
  State st(problem);
  st.set_assignment(side);
  return st.cut();
}

FmResult fm_bipartition(const FmProblem& problem) {
  const std::size_t n = problem.weight.size();
  FmResult result;
  if (n == 0) return result;

  util::Rng rng(problem.seed);
  State st(problem);

  // Random area-balanced start.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::uint8_t> init(n, 1);
  double acc = 0, total = 0;
  for (const double w : problem.weight) total += w;
  for (const auto i : order) {
    if (acc < total / 2) {
      init[i] = 0;
      acc += problem.weight[i];
    }
  }
  st.set_assignment(std::move(init));

  std::vector<std::uint8_t> best_side = st.side();
  int best_cut = st.cut();

  std::vector<std::uint32_t> moved;
  moved.reserve(n);

  for (int pass = 0; pass < problem.max_passes; ++pass) {
    st.begin_pass();
    moved.clear();
    const int pass_start_cut = st.cut();
    int cur_cut = pass_start_cut;
    int best_prefix_cut = cur_cut;
    std::size_t best_prefix = 0;

    for (std::size_t step = 0; step < n; ++step) {
      const auto pick = st.select();
      if (!pick) break;
      st.move_and_lock(pick->item);
      moved.push_back(pick->item);
      cur_cut -= pick->gain;
      if (cur_cut < best_prefix_cut) {
        best_prefix_cut = cur_cut;
        best_prefix = moved.size();
      }
    }

    // Roll back moves past the best prefix.
    for (std::size_t k = moved.size(); k > best_prefix; --k)
      st.raw_move(moved[k - 1]);

    if (best_prefix_cut < best_cut) {
      best_cut = best_prefix_cut;
      best_side = st.side();
    }
    if (best_prefix_cut >= pass_start_cut) break;  // no improvement
  }

  result.side = std::move(best_side);
  result.cut = best_cut;
  return result;
}

}  // namespace sm::place
