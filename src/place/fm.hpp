// Fiduccia–Mattheyses bipartitioning.
//
// Used by the recursive-bisection global placer. Items are cells of one
// placement region; hyperedges are the nets touching them. Terminal
// propagation is expressed with per-edge external pin counts (pins of the
// net already fixed left/right of the cut line).
#pragma once

#include <cstdint>
#include <vector>

namespace sm::place {

struct FmProblem {
  /// Item weights (cell areas); size = number of items.
  std::vector<double> weight;
  /// Hyperedges: lists of item indices (indices < weight.size()).
  std::vector<std::vector<std::uint32_t>> edges;
  /// Per-edge count of external pins fixed on side 0 / side 1.
  std::vector<std::uint32_t> ext0, ext1;  ///< may be empty (= all zero)
  /// Allowed deviation of side-0 weight from half the total (fraction).
  double balance_tolerance = 0.1;
  std::uint64_t seed = 1;
  int max_passes = 8;
};

struct FmResult {
  std::vector<std::uint8_t> side;  ///< 0 or 1 per item
  int cut = 0;                     ///< number of cut hyperedges (externals count)
};

/// Run FM from a random balanced start. Deterministic in problem+seed.
FmResult fm_bipartition(const FmProblem& problem);

/// Count cut edges for a given assignment (exposed for tests).
int fm_cut_size(const FmProblem& problem, const std::vector<std::uint8_t>& side);

}  // namespace sm::place
