// Placement data model: die floorplan, per-cell locations, HPWL metrics.
//
// Positions are cell centers in microns. Port marker cells are fixed on the
// die boundary; standard cells and DFFs occupy legalized row sites.
// Correction/naive-lift cells are *not* placed here — they are BEOL-only
// objects managed by sm::core (they have no device-layer footprint).
#pragma once

#include "netlist/netlist.hpp"
#include "util/geometry.hpp"

#include <vector>

namespace sm::place {

struct Floorplan {
  util::Rect die;
  double row_height_um = 1.4;
  int num_rows = 0;

  double row_y(int row) const {  ///< center y of a row
    return die.lo.y + (static_cast<double>(row) + 0.5) * row_height_um;
  }
};

struct Placement {
  Floorplan floorplan;
  /// Cell center per CellId (ports included).
  std::vector<util::Point> pos;

  const util::Point& of(netlist::CellId id) const { return pos.at(id); }
};

/// Bounding box of a net's pins (driver + sinks) under `pl`.
util::Rect net_bbox(const netlist::Netlist& nl, const Placement& pl,
                    netlist::NetId net);

/// Half-perimeter wirelength of one net.
double net_hpwl(const netlist::Netlist& nl, const Placement& pl,
                netlist::NetId net);

/// Total HPWL over all nets.
double total_hpwl(const netlist::Netlist& nl, const Placement& pl);

/// Driver-to-sink Manhattan distance for every (driver, sink) pair of `net`.
std::vector<double> driver_sink_distances(const netlist::Netlist& nl,
                                          const Placement& pl,
                                          netlist::NetId net);

}  // namespace sm::place
