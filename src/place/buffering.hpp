// Post-placement drive-strength fixing (repeater insertion).
//
// Commercial flows buffer long nets and upsize overloaded drivers; the
// resulting drive strengths are one of the proximity-attack hints the paper
// discusses (Sec. 3): "a large buffer such as BUFX8 typically hints that
// its sink(s) is/are relatively far away. In the original netlist, however,
// this buffer may actually drive some nearby sink(s)." Running this pass on
// the *erroneous* netlist therefore bakes misleading drive strengths into
// the FEOL — exactly the paper's argument.
//
// The pass inserts a buffer of distance-appropriate strength next to the
// driver of every net whose placed HPWL exceeds a threshold, re-pointing
// the far sinks at the buffer output. Function is preserved (buffers are
// identity); sequential elements are untouched.
#pragma once

#include "netlist/netlist.hpp"
#include "place/placement.hpp"

#include <cstdint>
#include <vector>

namespace sm::place {

struct BufferingOptions {
  /// Nets with HPWL above this (in units of average row height x this
  /// factor... plainly: microns) get a repeater.
  double hpwl_threshold_um = 25.0;
  /// Strength thresholds: HPWL above k-th entry selects strength 2/4/8.
  double strength2_um = 25.0;
  double strength4_um = 50.0;
  double strength8_um = 100.0;
  /// Nets to skip (e.g. protected nets whose connectivity the defense owns).
  std::vector<netlist::NetId> skip;
};

struct BufferingResult {
  std::size_t buffers_inserted = 0;
  std::vector<netlist::CellId> buffers;  ///< the new repeater cells
};

/// Insert repeaters into `nl` based on placement `pl`; new cells are placed
/// at their net's bounding-box center (caller re-legalizes via Placer or
/// legalize_rows). Extends pl.pos for the new cells.
BufferingResult insert_buffers(netlist::Netlist& nl, Placement& pl,
                               const BufferingOptions& opts = {});

}  // namespace sm::place
