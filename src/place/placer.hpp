// The placer: recursive min-cut bisection (FM at each level), Tetris row
// legalization, and greedy-swap detailed placement.
//
// This substitutes for Cadence Innovus' placement step (see DESIGN.md). The
// property the attacks rely on — *connected gates end up physically close* —
// emerges from min-cut bisection exactly as it does from commercial
// analytical placement, which is what makes proximity attacks work on
// original layouts and fail on layouts placed from randomized netlists.
#pragma once

#include "place/placement.hpp"
#include "util/rng.hpp"

#include <cstdint>

namespace sm::place {

struct PlacerOptions {
  double target_utilization = 0.7;  ///< cell area / core area
  std::uint64_t seed = 1;
  int leaf_cells = 10;          ///< stop bisection at this region size
  int fm_passes = 6;
  double fm_balance = 0.1;
  int detailed_passes = 2;      ///< greedy swap refinement sweeps
  /// Force-directed refinement iterations between bisection and detailed
  /// placement. This gives the placer analytic-placement behaviour: a cell
  /// is pulled toward the centroid of its connected pins, so one long
  /// (e.g. erroneous) net drags its endpoints measurably — the effect the
  /// paper's Table 1 relies on. Iterations that worsen HPWL are rolled back.
  int force_iterations = 3;
  double force_alpha = 0.5;     ///< pull strength toward the centroid
  double aspect_ratio = 1.0;    ///< die height / width
};

class Placer {
 public:
  explicit Placer(PlacerOptions opts = {}) : opts_(opts) {}

  /// Place every cell of `nl`. Ports go to the die boundary; standard cells
  /// and DFFs are legalized into rows. Deterministic in (netlist, options).
  Placement place(const netlist::Netlist& nl) const;

  /// Compute the floorplan a netlist needs at the configured utilization.
  Floorplan make_floorplan(const netlist::Netlist& nl) const;

 private:
  PlacerOptions opts_;
};

/// Row-legalize `pl` in place: snap movable cells to non-overlapping row
/// sites nearest their current locations (Tetris). Exposed for reuse and for
/// tests; the Placer calls it internally.
void legalize_rows(const netlist::Netlist& nl, Placement& pl);

/// Greedy-swap detailed placement: `passes` sweeps of profitable pair swaps
/// and single-cell nudges. Returns the HPWL after refinement.
double detailed_place(const netlist::Netlist& nl, Placement& pl, int passes,
                      std::uint64_t seed);

/// Force-directed refinement: pull every movable cell toward the weighted
/// centroid of its connected pins, then re-legalize; keep the iteration only
/// if total HPWL improves. Returns the final HPWL.
double force_refine(const netlist::Netlist& nl, Placement& pl, int iterations,
                    double alpha);

}  // namespace sm::place
