#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace sm::util::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at byte " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.type = Value::Type::Bool;
        v.boolean = c == 't';
        if (!consume_literal(v.boolean ? "true" : "false"))
          fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (v.find(key)) fail("duplicate object key '" + key + "'");
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The writer only emits \u00XX for control bytes; decode the
          // BMP subset as UTF-8 and reject surrogates (never produced).
          if (code >= 0xd800 && code <= 0xdfff) fail("surrogate \\u escape");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    Value v;
    v.type = Value::Type::Number;
    v.raw = std::string(text_.substr(start, pos_ - start));
    v.number = std::strtod(v.raw.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* want) {
  throw std::invalid_argument(std::string("json: value is not ") + want);
}

}  // namespace

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const std::string& Value::as_string() const {
  if (type != Type::String) type_error("a string");
  return string;
}

double Value::as_double() const {
  if (type != Type::Number) type_error("a number");
  return number;
}

std::uint64_t Value::as_u64() const {
  if (type != Type::Number) type_error("a number");
  errno = 0;
  char* end = nullptr;
  const auto v = std::strtoull(raw.c_str(), &end, 10);
  if (errno != 0 || end != raw.c_str() + raw.size() || raw[0] == '-')
    type_error("an unsigned integer");
  return v;
}

std::int64_t Value::as_int() const {
  if (type != Type::Number) type_error("a number");
  errno = 0;
  char* end = nullptr;
  const auto v = std::strtoll(raw.c_str(), &end, 10);
  if (errno != 0 || end != raw.c_str() + raw.size())
    type_error("an integer");
  return v;
}

bool Value::as_bool() const {
  if (type != Type::Bool) type_error("a bool");
  return boolean;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (!v)
    throw std::invalid_argument("json: missing field '" + std::string(key) +
                                "'");
  return *v;
}

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace sm::util::json
