// ASCII table rendering — every bench prints paper-style tables through this.
#pragma once

#include <string>
#include <vector>

namespace sm::util {

/// A simple left/right-aligned column table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; missing cells render empty, extra cells are dropped.
  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal separator before the next row.
  void add_separator();

  std::string render() const;
  std::size_t rows() const { return rows_.size(); }

  /// Format helpers for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);
  static std::string count(unsigned long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

}  // namespace sm::util
