// Minimal JSON parser — just enough to read back what util::JsonWriter
// writes (the sweep store's JSONL records and the bench baseline files).
//
// Full JSON value model (null/bool/number/string/array/object) with strict
// syntax checking; numbers keep their raw token so integer fields (seeds
// are full 64-bit values) parse exactly instead of through a double.
// Object keys preserve insertion order and duplicate keys are rejected —
// canonical configs never repeat a key, and silently keeping one of two
// values would corrupt a hash comparison.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sm::util::json {

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  ///< the untouched number token (Type::Number only)
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }

  /// Object member lookup; nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

  /// Typed accessors. Throw std::invalid_argument on type mismatch (and,
  /// for as_u64/as_int, on tokens that are not exactly an integer of the
  /// target range) — store records with missing/mistyped fields must fail
  /// loudly, not read as zero.
  const std::string& as_string() const;
  double as_double() const;
  std::uint64_t as_u64() const;
  std::int64_t as_int() const;
  bool as_bool() const;

  /// find() + typed access with a "missing field" error naming `key`.
  const Value& at(std::string_view key) const;
};

/// Parse one JSON document; the whole input must be consumed (trailing
/// whitespace allowed). Throws std::invalid_argument with a byte offset on
/// malformed input.
Value parse(std::string_view text);

}  // namespace sm::util::json
