#include "util/fault.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <unistd.h>

namespace sm::util {
namespace {

struct Arm {
  FaultPoint point = FaultPoint::CrashBeforeAppend;
  // Trigger: nth > 0 fires once on exactly the nth hit; nth == 0 means a
  // hash trigger that fires on every context-prefix match.
  std::size_t nth = 0;
  std::string hash_prefix;
  std::uint64_t sleep_ms = 30000;
  bool fired = false;  ///< nth arms are one-shot
};

struct State {
  std::mutex mu;
  bool armed_once = false;  ///< lazily arm from env on first hit
  std::vector<Arm> arms;
  std::size_t hits[kNumFaultPoints] = {};
};

State& state() {
  static State s;
  return s;
}

FaultPoint point_from_string(const std::string& name) {
  if (name == "crash-before-append") return FaultPoint::CrashBeforeAppend;
  if (name == "crash-after-append") return FaultPoint::CrashAfterAppend;
  if (name == "torn-write") return FaultPoint::TornWrite;
  if (name == "slow-cell") return FaultPoint::SlowCell;
  throw std::invalid_argument(
      "fault: unknown point '" + name +
      "' (want crash-before-append|crash-after-append|torn-write|slow-cell)");
}

std::size_t parse_positive(const std::string& s, const char* what) {
  if (s.empty()) throw std::invalid_argument(std::string("fault: empty ") + what);
  std::size_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9')
      throw std::invalid_argument(std::string("fault: bad ") + what + " '" + s +
                                  "'");
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  if (v == 0)
    throw std::invalid_argument(std::string("fault: ") + what +
                                " must be >= 1 in '" + s + "'");
  return v;
}

/// "<point>:<nth|hash=H>[:ms=N]" → Arm. See fault.hpp for the grammar.
Arm parse_arm(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const auto colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 2 || parts.size() > 3)
    throw std::invalid_argument("fault: bad arm '" + spec +
                                "' (want point:trigger[:ms=N])");
  Arm arm;
  arm.point = point_from_string(parts[0]);
  if (parts[1].rfind("hash=", 0) == 0) {
    arm.hash_prefix = parts[1].substr(5);
    if (arm.hash_prefix.empty())
      throw std::invalid_argument("fault: empty hash trigger in '" + spec +
                                  "'");
  } else {
    arm.nth = parse_positive(parts[1], "trigger count");
  }
  if (parts.size() == 3) {
    if (parts[2].rfind("ms=", 0) != 0)
      throw std::invalid_argument("fault: bad arm option '" + parts[2] +
                                  "' (want ms=N)");
    arm.sleep_ms = parse_positive(parts[2].substr(3), "ms");
  }
  return arm;
}

std::vector<Arm> parse_spec(const std::string& spec) {
  std::vector<Arm> arms;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string part =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!part.empty()) arms.push_back(parse_arm(part));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return arms;
}

void arm_locked(State& s, const std::string& spec) {
  // Parse fully before installing, so a malformed spec throws without
  // disturbing the schedule or counters already in place.
  auto arms = parse_spec(spec);
  s.arms = std::move(arms);
  for (auto& h : s.hits) h = 0;
  s.armed_once = true;
}

}  // namespace

const char* to_string(FaultPoint p) {
  switch (p) {
    case FaultPoint::CrashBeforeAppend: return "crash-before-append";
    case FaultPoint::CrashAfterAppend: return "crash-after-append";
    case FaultPoint::TornWrite: return "torn-write";
    case FaultPoint::SlowCell: return "slow-cell";
  }
  return "?";
}

void fault_arm(const std::string& spec) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  arm_locked(s, spec);
}

void fault_arm_from_env() {
  const char* env = std::getenv("SM_FAULT");
  fault_arm(env ? env : "");
}

FaultAction fault_hit(FaultPoint p, std::string_view context) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (!s.armed_once) {
    const char* env = std::getenv("SM_FAULT");
    arm_locked(s, env ? env : "");
  }
  const std::size_t hit = ++s.hits[static_cast<std::size_t>(p)];
  FaultAction action;
  for (auto& arm : s.arms) {
    if (arm.point != p) continue;
    bool fire = false;
    if (!arm.hash_prefix.empty()) {
      fire = context.substr(0, arm.hash_prefix.size()) == arm.hash_prefix;
    } else if (!arm.fired && hit == arm.nth) {
      fire = true;
      arm.fired = true;
    }
    if (fire) {
      action.fire = true;
      action.sleep_ms = arm.sleep_ms;
    }
  }
  return action;
}

std::size_t fault_hits(FaultPoint p) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.hits[static_cast<std::size_t>(p)];
}

void fault_crash(FaultPoint) {
  // _exit, not exit or abort: no atexit handlers, no stream flushing, no
  // core dump noise in CI — the same abrupt disappearance a SIGKILL'd
  // worker presents to its supervisor and to the store log.
  ::_exit(kFaultCrashExit);
}

}  // namespace sm::util
