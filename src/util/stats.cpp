#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sm::util {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  for (double v : values) s.sum += v;
  s.mean = s.sum / static_cast<double>(s.count);
  const std::size_t n = values.size();
  s.median = (n % 2 == 1) ? values[n / 2]
                          : (values[n / 2 - 1] + values[n / 2]) / 2.0;
  double var = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    var += d * d;
  }
  // Population variance: matches how layout distance spreads are reported.
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  return s;
}

double percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (pct <= 0.0) return values.front();
  if (pct >= 100.0) return values.back();
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

Histogram::Histogram(double low, double high, std::size_t bins)
    : lo(low), hi(high), counts(bins, 0) {}

void Histogram::add(double v) {
  if (counts.empty()) return;
  const double span = hi - lo;
  std::size_t idx = 0;
  if (span > 0.0) {
    const double t = (v - lo) / span;
    const auto raw = static_cast<long long>(t * static_cast<double>(counts.size()));
    idx = static_cast<std::size_t>(
        std::clamp<long long>(raw, 0, static_cast<long long>(counts.size()) - 1));
  }
  ++counts[idx];
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (auto c : counts) t += c;
  return t;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 0;
  for (auto c : counts) peak = std::max(peak, c);
  std::ostringstream os;
  const double span = hi - lo;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double bl = lo + span * static_cast<double>(i) /
                               static_cast<double>(counts.size());
    const double bh = lo + span * static_cast<double>(i + 1) /
                               static_cast<double>(counts.size());
    const std::size_t bar =
        peak == 0 ? 0 : counts[i] * width / peak;
    os << '[';
    os.width(8);
    os << bl;
    os << ',';
    os.width(8);
    os << bh;
    os << ") ";
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << ' ' << counts[i] << '\n';
  }
  return os.str();
}

double pct_delta(double base, double now) {
  if (base == 0.0) return 0.0;
  return 100.0 * (now - base) / base;
}

}  // namespace sm::util
