// Deterministic fault injection for robustness tests and chaos smokes.
//
// Production code declares *named injection points* at the exact places a
// crash, torn write, or hang would be most damaging (today: the store's
// append path, see sweep/store.cpp). Each point is inert — a counter bump
// behind one branch — until *armed* through the SM_FAULT environment
// variable, which child worker processes inherit from their supervisor, so
// one variable describes a whole fleet's fault schedule:
//
//   SM_FAULT=<arm>[,<arm>...]
//   <arm>  = <point>:<trigger>[:ms=<N>]
//   point  = crash-before-append | crash-after-append | torn-write
//          | slow-cell
//   trigger= <nth>      fire exactly on the nth hit of the point in this
//                       process (1-based), then never again — models a
//                       one-shot transient (a worker that dies mid-sweep);
//          = hash=<hex> fire on EVERY hit whose context string starts with
//                       <hex> (the context at the store points is the
//                       record's config hash) — models a poison cell that
//                       kills any worker that ever touches it;
//   ms=N   slow-cell's sleep duration in milliseconds (default 30000).
//
// Determinism: hit counters are per-process and per-point, the schedule is
// a pure function of (spec, hit sequence), and the hit sequence at the
// store points is the deterministic cell completion order — so an injected
// fault lands at the same cell on every run, which is what lets CI
// byte-diff a chaos run against a clean one. Unarmed points stay cheap
// (one atomic-free counter increment under a mutex only on the hit path,
// nothing at all in code that never hits a point).
//
// tests/test_fault.cpp holds the contract: nth arming fires exactly once
// on exactly the nth hit, hash arming fires on every matching hit,
// unarmed points never fire, bad specs throw, and the spec round-trips
// through a child process environment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sm::util {

enum class FaultPoint {
  CrashBeforeAppend,  ///< store append: die before the record is written
  CrashAfterAppend,   ///< store append: die after write + fsync
  TornWrite,          ///< store append: write a prefix of the line, then die
  SlowCell,           ///< store append: sleep (trips the serve watchdog)
};
inline constexpr std::size_t kNumFaultPoints = 4;

const char* to_string(FaultPoint p);

/// Exit code of a process killed by an injected crash — distinct from every
/// real sm_flow exit so a supervisor test can tell "fault fired" from
/// "genuine bug".
inline constexpr int kFaultCrashExit = 70;

/// Parse `spec` and install it as this process's fault schedule, replacing
/// any previous one and resetting all hit counters. The empty string
/// disarms everything. Throws std::invalid_argument on malformed specs
/// (unknown point, zero/garbage nth, empty hash, bad ms).
void fault_arm(const std::string& spec);

/// Arm from the SM_FAULT environment variable (empty/unset disarms). This
/// is also what the first fault_hit of a process does implicitly, so a
/// child worker is armed the moment it hits a point — no opt-in needed in
/// main(). A malformed SM_FAULT throws (better than silently running a
/// chaos test without the chaos).
void fault_arm_from_env();

struct FaultAction {
  bool fire = false;        ///< this hit triggers the armed fault
  std::uint64_t sleep_ms = 0;  ///< slow-cell only: how long to sleep
};

/// Register one hit of `p` with an optional context string (the config hash
/// at the store points) and report whether an armed fault fires here.
/// Always counts the hit, armed or not.
FaultAction fault_hit(FaultPoint p, std::string_view context = {});

/// Hits of `p` so far in this process (diagnostics/tests).
std::size_t fault_hits(FaultPoint p);

/// Terminate the process the way an injected crash does: _exit(
/// kFaultCrashExit) — no atexit handlers, no flushing, exactly the torn
/// state a real kill would leave.
[[noreturn]] void fault_crash(FaultPoint p);

}  // namespace sm::util
