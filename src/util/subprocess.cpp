#include "util/subprocess.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace sm::util {
namespace {

ExitStatus decode(int status) {
  ExitStatus st;
  if (WIFEXITED(status)) {
    st.exited = true;
    st.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    st.signaled = true;
    st.sig = WTERMSIG(status);
  }
  return st;
}

}  // namespace

std::string ExitStatus::describe() const {
  if (exited) return "exit " + std::to_string(code);
  if (signaled) return "signal " + std::to_string(sig);
  return "unknown";
}

Child Child::spawn(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& extra_env,
    const std::string& stdout_path) {
  if (argv.empty()) throw std::runtime_error("subprocess: empty argv");
  // Build the exec vector before forking — no allocation between fork and
  // exec (the child of a multithreaded parent may only call async-signal-
  // safe functions; setenv/open below are the pragmatic exceptions every
  // spawner makes, but malloc is where real deadlocks live).
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0)
    throw std::runtime_error(std::string("subprocess: fork failed: ") +
                             std::strerror(errno));
  if (pid == 0) {
    for (const auto& [k, v] : extra_env) ::setenv(k.c_str(), v.c_str(), 1);
    if (!stdout_path.empty()) {
      const int fd =
          ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        if (fd != STDOUT_FILENO) ::close(fd);
      }
    }
    ::execvp(cargv[0], cargv.data());
    // exec failed: 127 is the shell convention for "command not found" and
    // unambiguous to the supervisor (never a fault-injection or sweep code).
    ::_exit(127);
  }
  Child c;
  c.pid_ = pid;
  return c;
}

Child::~Child() {
  if (pid_ > 0 && !status_) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
  }
}

Child& Child::operator=(Child&& other) noexcept {
  if (this != &other) {
    // Reap our own child first (same policy as the destructor).
    if (pid_ > 0 && !status_) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
    }
    pid_ = other.pid_;
    status_ = other.status_;
    other.pid_ = -1;
    other.status_.reset();
  }
  return *this;
}

std::optional<ExitStatus> Child::try_wait() {
  if (status_ || pid_ <= 0) return status_;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == 0) return std::nullopt;
  if (r < 0) {
    if (errno == EINTR) return std::nullopt;
    throw std::runtime_error(std::string("subprocess: waitpid failed: ") +
                             std::strerror(errno));
  }
  status_ = decode(status);
  return status_;
}

ExitStatus Child::wait() {
  if (status_) return *status_;
  if (pid_ <= 0) throw std::runtime_error("subprocess: wait on invalid child");
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0) {
    if (errno != EINTR)
      throw std::runtime_error(std::string("subprocess: waitpid failed: ") +
                               std::strerror(errno));
  }
  status_ = decode(status);
  return *status_;
}

void Child::kill(int sig) {
  if (pid_ > 0 && !status_) ::kill(pid_, sig);
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace sm::util
