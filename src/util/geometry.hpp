// Planar geometry primitives used by placement, routing, and the attacks.
// Coordinates are in microns (double) for physical positions and in gcell
// units (int) for the routing grid.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace sm::util {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
  friend Point operator+(const Point& a, const Point& b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend Point operator-(const Point& a, const Point& b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend std::ostream& operator<<(std::ostream& os, const Point& p) {
    return os << '(' << p.x << ", " << p.y << ')';
  }
};

inline double manhattan(const Point& a, const Point& b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline double euclidean(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Axis-aligned rectangle; lo is the lower-left corner, hi the upper-right.
struct Rect {
  Point lo;
  Point hi;

  double width() const noexcept { return hi.x - lo.x; }
  double height() const noexcept { return hi.y - lo.y; }
  double area() const noexcept { return width() * height(); }
  Point center() const noexcept {
    return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }
  bool contains(const Point& p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool overlaps(const Rect& o) const noexcept {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y;
  }
  /// Grow the rectangle by `d` on every side.
  Rect inflated(double d) const noexcept {
    return {{lo.x - d, lo.y - d}, {hi.x + d, hi.y + d}};
  }
  /// Smallest rectangle covering this one and `p`.
  void expand(const Point& p) noexcept {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  /// Half-perimeter (the HPWL contribution of a net whose bbox this is).
  double half_perimeter() const noexcept { return width() + height(); }

  static Rect around(const Point& p) noexcept { return {p, p}; }
};

/// Integer grid coordinate (gcell column/row + metal layer, 1-based layer).
struct GridPoint {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t layer = 1;

  friend bool operator==(const GridPoint& a, const GridPoint& b) noexcept {
    return a.x == b.x && a.y == b.y && a.layer == b.layer;
  }
  friend std::ostream& operator<<(std::ostream& os, const GridPoint& g) {
    return os << '(' << g.x << ',' << g.y << ",M" << g.layer << ')';
  }
};

inline int manhattan(const GridPoint& a, const GridPoint& b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace sm::util
