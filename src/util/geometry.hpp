// Planar geometry primitives used by placement, routing, and the attacks.
// Coordinates are in microns (double) for physical positions and in gcell
// units (int) for the routing grid.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace sm::util {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) noexcept {
    return a.x == b.x && a.y == b.y;
  }
  friend Point operator+(const Point& a, const Point& b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend Point operator-(const Point& a, const Point& b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend std::ostream& operator<<(std::ostream& os, const Point& p) {
    return os << '(' << p.x << ", " << p.y << ')';
  }
};

inline double manhattan(const Point& a, const Point& b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline double euclidean(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Axis-aligned rectangle; lo is the lower-left corner, hi the upper-right.
struct Rect {
  Point lo;
  Point hi;

  double width() const noexcept { return hi.x - lo.x; }
  double height() const noexcept { return hi.y - lo.y; }
  double area() const noexcept { return width() * height(); }
  Point center() const noexcept {
    return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }
  bool contains(const Point& p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool overlaps(const Rect& o) const noexcept {
    return lo.x < o.hi.x && o.lo.x < hi.x && lo.y < o.hi.y && o.lo.y < hi.y;
  }
  /// Grow the rectangle by `d` on every side.
  Rect inflated(double d) const noexcept {
    return {{lo.x - d, lo.y - d}, {hi.x + d, hi.y + d}};
  }
  /// Smallest rectangle covering this one and `p`.
  void expand(const Point& p) noexcept {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  /// Half-perimeter (the HPWL contribution of a net whose bbox this is).
  double half_perimeter() const noexcept { return width() + height(); }

  static Rect around(const Point& p) noexcept { return {p, p}; }
};

/// Integer grid coordinate (gcell column/row + metal layer, 1-based layer).
struct GridPoint {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t layer = 1;

  friend bool operator==(const GridPoint& a, const GridPoint& b) noexcept {
    return a.x == b.x && a.y == b.y && a.layer == b.layer;
  }
  friend std::ostream& operator<<(std::ostream& os, const GridPoint& g) {
    return os << '(' << g.x << ',' << g.y << ",M" << g.layer << ')';
  }
};

inline int manhattan(const GridPoint& a, const GridPoint& b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Inclusive integer rectangle in gcell units: the cells [x0, x1] × [y0, y1].
/// The routing partition tree (route/partition_tree.hpp) uses these for net
/// search windows and node regions; route::GridIndex-style spatial code can
/// share them. A default-constructed rect is empty (x1 < x0).
struct GridRect {
  std::int32_t x0 = 0;
  std::int32_t y0 = 0;
  std::int32_t x1 = -1;
  std::int32_t y1 = -1;

  bool empty() const noexcept { return x1 < x0 || y1 < y0; }
  std::int32_t width() const noexcept { return x1 - x0 + 1; }
  std::int32_t height() const noexcept { return y1 - y0 + 1; }
  std::int64_t cells() const noexcept {
    return empty() ? 0
                   : static_cast<std::int64_t>(width()) *
                         static_cast<std::int64_t>(height());
  }
  /// Half-perimeter in gcell steps (0 for a single cell).
  std::int32_t half_perimeter() const noexcept {
    return (x1 - x0) + (y1 - y0);
  }

  bool contains(std::int32_t x, std::int32_t y) const noexcept {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
  bool contains(const GridRect& o) const noexcept {
    return !o.empty() && o.x0 >= x0 && o.x1 <= x1 && o.y0 >= y0 && o.y1 <= y1;
  }
  bool overlaps(const GridRect& o) const noexcept {
    return !empty() && !o.empty() && x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 &&
           o.y0 <= y1;
  }

  /// Smallest rectangle covering this one and the cell (x, y).
  void expand(std::int32_t x, std::int32_t y) noexcept {
    if (empty()) {
      x0 = x1 = x;
      y0 = y1 = y;
      return;
    }
    x0 = std::min(x0, x);
    x1 = std::max(x1, x);
    y0 = std::min(y0, y);
    y1 = std::max(y1, y);
  }
  /// Grow by `d` cells on every side (no clamping; pair with clamped()).
  GridRect inflated(std::int32_t d) const noexcept {
    return {x0 - d, y0 - d, x1 + d, y1 + d};
  }
  /// Intersection with `bounds`; empty when they do not overlap.
  GridRect clamped(const GridRect& bounds) const noexcept {
    return {std::max(x0, bounds.x0), std::max(y0, bounds.y0),
            std::min(x1, bounds.x1), std::min(y1, bounds.y1)};
  }

  static GridRect around(std::int32_t x, std::int32_t y) noexcept {
    return {x, y, x, y};
  }

  friend bool operator==(const GridRect& a, const GridRect& b) noexcept {
    return a.x0 == b.x0 && a.y0 == b.y0 && a.x1 == b.x1 && a.y1 == b.y1;
  }
  friend std::ostream& operator<<(std::ostream& os, const GridRect& r) {
    return os << '[' << r.x0 << ',' << r.y0 << "]..[" << r.x1 << ',' << r.y1
              << ']';
  }
};

}  // namespace sm::util
