// Minimal child-process management for the sweep supervisor.
//
// The supervisor's whole job is to outlive its workers, so this wrapper is
// deliberately tiny and allocation-free after spawn: fork + execvp, a
// non-blocking reap (try_wait) the supervisor polls alongside its
// watchdog deadlines, a SIGKILL escalation, and a destructor that never
// leaks a zombie (a still-running child is killed and reaped — a
// supervisor unwinding from an exception must not leave orphan workers
// appending to the store).
//
// No pipes: workers communicate through the append-only store log (their
// stdout is routed to /dev/null or a file), which is what makes worker
// death recoverable in the first place — there is no in-flight protocol
// state to lose.
#pragma once

#include <csignal>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <sys/types.h>

namespace sm::util {

/// Decoded waitpid status.
struct ExitStatus {
  bool exited = false;    ///< terminated via exit/_exit
  int code = 0;           ///< exit code when `exited`
  bool signaled = false;  ///< terminated by a signal
  int sig = 0;            ///< the signal when `signaled`

  bool ok() const { return exited && code == 0; }
  /// "exit 3" / "signal 9" — for logs.
  std::string describe() const;
};

/// One spawned child. Move-only; the destructor kills (SIGKILL) and reaps
/// any child still running.
class Child {
 public:
  /// Fork + execvp. `argv[0]` is the program (PATH-searched), `extra_env`
  /// entries are setenv'd in the child on top of the inherited environment,
  /// and the child's stdout is redirected to `stdout_path` ("" = inherit;
  /// default /dev/null — workers report through the store, not stdout).
  /// stderr is always inherited so worker failures surface in CI logs.
  /// Throws std::runtime_error if fork fails; exec failure surfaces as the
  /// child exiting 127.
  static Child spawn(
      const std::vector<std::string>& argv,
      const std::vector<std::pair<std::string, std::string>>& extra_env = {},
      const std::string& stdout_path = "/dev/null");

  Child() = default;
  ~Child();
  Child(Child&& other) noexcept { *this = std::move(other); }
  Child& operator=(Child&& other) noexcept;
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Non-blocking reap: nullopt while still running, the decoded status
  /// once exited (cached — safe to call again after it returns a value).
  std::optional<ExitStatus> try_wait();
  /// Blocking reap.
  ExitStatus wait();
  /// Send `sig` (default SIGKILL). No-op once reaped.
  void kill(int sig = SIGKILL);

 private:
  pid_t pid_ = -1;
  std::optional<ExitStatus> status_;
};

/// Absolute path of the running executable (/proc/self/exe), or "" when
/// the platform can't say — the supervisor uses it to re-exec itself as
/// `sm_flow sweep` workers.
std::string self_exe_path();

}  // namespace sm::util
