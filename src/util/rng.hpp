// Deterministic random number generation for reproducible experiments.
//
// All randomized stages of the flow (netlist generation, randomization swaps,
// placement tie-breaking, attack tie-breaking) draw from an explicitly seeded
// Rng instance so a (benchmark, seed) pair always yields the same layout and
// the same security metrics.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace sm::util {

/// SplitMix64 — used to expand a single 64-bit seed into a full state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive an independent seed for task `task_index` of a parallel batch from
/// one master seed. Depends only on (master, index) — never on the thread
/// that runs the task — so parallel_for results are bit-identical for any
/// --jobs value (the sweep subsystem's determinism guarantee rests on this).
constexpr std::uint64_t task_seed(std::uint64_t master,
                                  std::uint64_t task_index) noexcept {
  std::uint64_t s = master ^ (0x9e3779b97f4a7c15ULL * (task_index + 1));
  return splitmix64(s);
}

/// xoshiro256** — fast, high-quality PRNG; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire-style with rejection on the low word.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    if (c.empty()) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Sample k distinct indices from [0, n). Returns fewer if k > n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    if (k >= n) {
      shuffle(all);
      return all;
    }
    // Partial Fisher–Yates: only the first k slots need to be finalized.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }

  /// Geometric-ish fanout sampler used by netlist generators: returns a value
  /// in [1, cap] with P(v) proportional to decay^(v-1).
  int decaying(int cap, double decay) noexcept {
    int v = 1;
    while (v < cap && chance(decay)) ++v;
    return v;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace sm::util
