// Work-stealing thread pool for the embarrassingly parallel sweeps
// (sweep::run, the table benches, and any future sharded attack loop).
//
// Determinism contract: parallel_for(jobs, n, fn) calls fn(i) exactly once
// for every i in [0, n), with no ordering guarantee *between* indices but a
// hard guarantee that which-thread-ran-what never leaks into results: fn
// receives only the task index, so any task that derives its randomness from
// the index (see util::task_seed) produces bit-identical output for every
// jobs value. Callers keep results in index-addressed storage and reduce in
// index order after the join; nothing else is needed for N-thread == 1-thread
// reproducibility.
//
// Scheduling: each worker owns a deque seeded with a contiguous slice of the
// index range (cheap locality for neighbouring tasks) and pops from its
// front; an idle worker steals from the back of a victim's deque. Our tasks
// are whole place/route/attack pipelines — milliseconds to minutes each — so
// mutex-guarded deques are well below the noise floor and keep the
// implementation obviously correct.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace sm::util {

/// A persistent pool of worker threads executing indexed task batches.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  std::size_t size() const noexcept { return num_threads_; }

  /// Run fn(i) for every i in [0, n); blocks until all tasks finished.
  /// If any task throws, every remaining task still runs, then the exception
  /// of the *lowest* failing index is rethrown (deterministic choice).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  Impl* impl_;
  std::size_t num_threads_ = 1;
};

/// The worker count parallel_for(jobs, n, fn) will actually use: 0 resolves
/// to hardware concurrency, then clamps to [1, max(n, 1)].
std::size_t resolve_jobs(std::size_t jobs, std::size_t n);

/// One-shot convenience: run fn(i) for i in [0, n) over resolve_jobs(jobs, n)
/// threads. A resolved count of 1 (or n <= 1) runs inline on the calling
/// thread with identical semantics, including the lowest-index exception
/// rule.
///
/// Spawns and joins a fresh pool per call — fine for the once-per-run
/// batches the sweep and benches issue, wrong for hot inner loops. Code
/// that batches repeatedly (e.g. sharding an attack's candidate loop per
/// the ROADMAP) must hold a ThreadPool and call its parallel_for instead.
void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sm::util
