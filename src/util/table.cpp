#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sm::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto hline = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };
  std::string out = hline() + emit_row(header_) + hline();
  for (const auto& row : rows_) {
    out += row.empty() ? hline() : emit_row(row);
  }
  out += hline();
  return out;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << '%';
  return os.str();
}

std::string Table::count(unsigned long long v) {
  // Thousands separators make the via tables readable (paper prints them too).
  std::string raw = std::to_string(v);
  std::string out;
  int seen = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (seen != 0 && seen % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++seen;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace sm::util
