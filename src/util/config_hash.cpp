#include "util/config_hash.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sm::util {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Exactly-representable integers print as integers ("50", not the
  // "5e+01" a minimal %g would pick).
  if (v == std::trunc(v) && std::fabs(v) < 9007199254740992.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Otherwise try increasing precision until the rendering round-trips
  // bit-exactly; %.17g always does (DBL_DECIMAL_DIG), shorter often
  // suffices ("0.45" instead of "0.45000000000000001"). Deterministic for
  // a given v.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string config_hash(std::string_view canonical_json) {
  static const char* hex = "0123456789abcdef";
  const std::uint64_t h = fnv1a64(canonical_json);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i)
    out[i] = hex[(h >> (60 - 4 * i)) & 0xf];
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows "key":
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  out_ += format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

}  // namespace sm::util
