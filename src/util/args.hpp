// Minimal command-line option parsing shared by benches and examples.
// Syntax: --key=value or --key value or bare --flag.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sm::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace sm::util
