// Minimal command-line option parsing shared by benches and examples.
// Syntax: --key=value or --key value or bare --flag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sm::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Strictly parsed non-negative integer (plain digits only). Throws
  /// std::invalid_argument on anything else — get_int maps garbage to 0 and
  /// lets negatives through, the wrong failure mode for counts like --jobs.
  std::size_t get_count(const std::string& key, std::size_t fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

/// Split a separator-joined list value ("c432,c880"). Empty entries are
/// skipped, so trailing/doubled separators ("c432,", "a,,b") and the empty
/// string parse to what the user meant instead of injecting "" items.
std::vector<std::string> split_list(const std::string& text, char sep = ',');

}  // namespace sm::util
