// Canonical JSON serialization + FNV-1a hashing for configuration keys.
//
// The sweep store (src/sweep/store.hpp) keys every result record by a
// config hash: a 64-bit FNV-1a digest of a *canonical* JSON rendering of
// the cell's full recipe. "Canonical" means the bytes are a pure function
// of the values — fixed field order (the writer emits keys in the order the
// caller adds them; callers sort their keys lexicographically by
// convention), no whitespace, and shortest-round-trip double formatting —
// so the same configuration hashes identically across processes, shards,
// and releases. tests/test_store.cpp pins golden hash values as a
// cross-release stability regression.
//
// JsonWriter is also the store's record serializer: records written by one
// shard must be byte-stable so merged shard logs and resumed runs
// materialize bit-identical tables (doubles round-trip exactly through
// format_double / strtod).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sm::util {

/// Shortest decimal string that parses back (strtod) to exactly `v`.
/// Deterministic: the same double always yields the same bytes. Infinities
/// and NaN (never part of a valid config) serialize as null.
std::string format_double(double v);

/// 64-bit FNV-1a over `bytes`.
std::uint64_t fnv1a64(std::string_view bytes);

/// The store's key format: fnv1a64 rendered as 16 lowercase hex digits.
std::string config_hash(std::string_view canonical_json);

/// Minimal streaming JSON writer producing canonical bytes: no whitespace,
/// commas managed automatically, strings escaped, doubles via
/// format_double. The caller is responsible for key order (canonical
/// configs list keys lexicographically) and for balanced begin/end calls.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);  // also std::size_t on LP64
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// Embed pre-serialized JSON verbatim (e.g. a nested canonical object).
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void comma();
  std::string out_;
  /// One entry per open container: true once the first element was written
  /// (so the next element needs a comma prefix).
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

/// Escape `s` for a JSON string literal (quotes not included).
std::string json_escape(std::string_view s);

}  // namespace sm::util
