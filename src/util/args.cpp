#include "util/args.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace sm::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(std::move(tok));
      continue;
    }
    tok.erase(0, 2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      kv_[tok.substr(0, eq)] = tok.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[tok] = argv[++i];
    } else {
      kv_[tok] = "true";
    }
  }
}

bool Args::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::size_t Args::get_count(const std::string& key,
                            std::size_t fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  unsigned long long parsed = 0;
  std::size_t used = 0;
  if (!v.empty() && std::isdigit(static_cast<unsigned char>(v[0]))) {
    try {
      parsed = std::stoull(v, &used);
    } catch (const std::exception&) {
      used = 0;
    }
  }
  if (v.empty() || used != v.size())
    throw std::invalid_argument("--" + key +
                                ": expected a non-negative integer, got '" +
                                v + "'");
  return static_cast<std::size_t>(parsed);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> split_list(const std::string& text, char sep) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    if (end > start) items.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return items;
}

}  // namespace sm::util
