// Spatial bucket-grid index over a fixed 2-D point set.
//
// Built once from a vector of points, the index answers nearest-neighbour
// style queries by enumerating uniform grid cells in expanding Chebyshev
// rings around the query. Callers that rank by a metric other than plain
// Manhattan distance (e.g. the proximity attack's pair_cost) drive the
// enumeration through for_each_ring and stop it with a lower bound: after
// ring r, every unvisited point provably lies at Manhattan distance >=
// the bound handed to keep_expanding, so a caller whose cost is bounded
// below by a monotone function of that distance can terminate exactly —
// the result equals a brute-force scan, only without touching most points.
//
// Determinism: enumeration order within a query depends only on the point
// set and the query (cell-major within a ring, insertion order within a
// cell) — never on threads — so parallel per-query use is safe and
// reproducible. The index itself is immutable after construction and may
// be shared across threads.
#pragma once

#include "util/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace sm::util {

class GridIndex {
 public:
  GridIndex() = default;

  /// Index `pts`; `target_per_cell` tunes the expected bucket occupancy
  /// (cells ~ n / target_per_cell). Degenerate inputs — empty sets, all
  /// points coincident, zero-area bounding boxes — collapse to a 1x1 grid
  /// and stay fully functional.
  explicit GridIndex(const std::vector<Point>& pts,
                     double target_per_cell = 4.0)
      : pts_(pts) {
    if (pts_.empty()) return;
    Rect bbox = Rect::around(pts_.front());
    for (const auto& p : pts_) bbox.expand(p);
    origin_ = bbox.lo;
    const double n = static_cast<double>(pts_.size());
    const double cells = std::max(1.0, n / std::max(target_per_cell, 1.0));
    const double w = std::max(bbox.width(), 1e-9);
    const double h = std::max(bbox.height(), 1e-9);
    // Clamp each dimension: a degenerate bounding box (all points nearly
    // collinear) would otherwise push one axis toward millions of cells,
    // making ring enumeration quadratic in the ring count and the CSR
    // arrays enormous. The cap keeps nx*ny within a small factor of the
    // target cell count while preserving the aspect-ratio split for sane
    // geometries.
    const std::int64_t dim_cap = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(8.0 * std::sqrt(cells)));
    nx_ = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::sqrt(cells * w / h)), 1, dim_cap);
    ny_ = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::sqrt(cells * h / w)), 1, dim_cap);
    csx_ = w / static_cast<double>(nx_);
    csy_ = h / static_cast<double>(ny_);

    // CSR layout: counting sort of point indices by cell keeps per-cell
    // enumeration in point-index order (the determinism anchor for ties).
    std::vector<std::size_t> count(static_cast<std::size_t>(nx_ * ny_) + 1, 0);
    std::vector<std::size_t> cell_of(pts_.size());
    for (std::size_t i = 0; i < pts_.size(); ++i) {
      cell_of[i] = cell_id(cell_x(pts_[i].x), cell_y(pts_[i].y));
      ++count[cell_of[i] + 1];
    }
    for (std::size_t c = 1; c < count.size(); ++c) count[c] += count[c - 1];
    start_ = count;
    ids_.resize(pts_.size());
    for (std::size_t i = 0; i < pts_.size(); ++i) ids_[count[cell_of[i]]++] = i;
  }

  std::size_t size() const noexcept { return pts_.size(); }
  bool empty() const noexcept { return pts_.empty(); }

  /// Visit points in expanding rings around `q`. `visit(index)` is called
  /// exactly once per point reached. After each ring, `keep_expanding(lb)`
  /// is consulted with a proven lower bound on the Manhattan distance from
  /// `q` to every not-yet-visited point; returning false stops the query.
  /// The enumeration also stops once every cell has been visited.
  template <class Visit, class KeepExpanding>
  void for_each_ring(const Point& q, Visit&& visit,
                     KeepExpanding&& keep_expanding) const {
    if (pts_.empty()) return;
    const std::int64_t cx = cell_x(q.x);
    const std::int64_t cy = cell_y(q.y);
    const std::int64_t max_ring =
        std::max(std::max(cx, nx_ - 1 - cx), std::max(cy, ny_ - 1 - cy));
    for (std::int64_t r = 0; r <= max_ring; ++r) {
      const std::int64_t x0 = std::max<std::int64_t>(0, cx - r);
      const std::int64_t x1 = std::min(nx_ - 1, cx + r);
      const std::int64_t y0 = std::max<std::int64_t>(0, cy - r);
      const std::int64_t y1 = std::min(ny_ - 1, cy + r);
      for (std::int64_t y = y0; y <= y1; ++y) {
        const bool edge_row = (y == cy - r || y == cy + r);
        const std::int64_t step = edge_row ? 1 : std::max<std::int64_t>(1, x1 - x0);
        for (std::int64_t x = x0; x <= x1; x += step) {
          if (!edge_row && x != cx - r && x != cx + r) continue;
          const std::size_t c = cell_id(x, y);
          for (std::size_t k = start_[c]; k < start_[c + 1]; ++k)
            visit(ids_[k]);
        }
      }
      if (r == max_ring) return;  // every cell visited; bound is +infinity
      if (!keep_expanding(ring_lower_bound(q, cx, cy, r))) return;
    }
  }

  /// The `k` nearest points to `q` ordered by (Manhattan distance, index);
  /// exact, ties broken toward the lower index. Returns all points when
  /// k >= size().
  std::vector<std::size_t> k_nearest(const Point& q, std::size_t k) const {
    std::vector<std::pair<double, std::size_t>> best;
    if (k == 0) return {};
    for_each_ring(
        q,
        [&](std::size_t i) { best.push_back({manhattan(q, pts_[i]), i}); },
        [&](double lb) {
          if (best.size() < k) return true;
          std::nth_element(best.begin(),
                           best.begin() + static_cast<std::ptrdiff_t>(k - 1),
                           best.end());
          // `<=` keeps expanding on exact ties so a lower-index point in an
          // outer ring can still displace an equal-distance one.
          return lb <= best[k - 1].first;
        });
    std::sort(best.begin(), best.end());
    if (best.size() > k) best.resize(k);
    std::vector<std::size_t> out;
    out.reserve(best.size());
    for (const auto& [d, i] : best) out.push_back(i);
    return out;
  }

 private:
  std::int64_t cell_x(double x) const noexcept {
    return std::clamp<std::int64_t>(
        static_cast<std::int64_t>((x - origin_.x) / csx_), 0, nx_ - 1);
  }
  std::int64_t cell_y(double y) const noexcept {
    return std::clamp<std::int64_t>(
        static_cast<std::int64_t>((y - origin_.y) / csy_), 0, ny_ - 1);
  }
  std::size_t cell_id(std::int64_t x, std::int64_t y) const noexcept {
    return static_cast<std::size_t>(y * nx_ + x);
  }

  /// Manhattan distance from `q` to the nearest point outside the box of
  /// cells [cx-r, cx+r] x [cy-r, cy+r] (clipped to the grid): every point
  /// not yet visited after ring r lies out there. Conservative (never
  /// larger than the true distance), which preserves query exactness.
  double ring_lower_bound(const Point& q, std::int64_t cx, std::int64_t cy,
                          std::int64_t r) const noexcept {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    double lb = kInf;
    if (cx - r > 0)  // unvisited cells exist to the left
      lb = std::min(lb, q.x - (origin_.x + static_cast<double>(cx - r) * csx_));
    if (cx + r < nx_ - 1)
      lb = std::min(lb,
                    origin_.x + static_cast<double>(cx + r + 1) * csx_ - q.x);
    if (cy - r > 0)
      lb = std::min(lb, q.y - (origin_.y + static_cast<double>(cy - r) * csy_));
    if (cy + r < ny_ - 1)
      lb = std::min(lb,
                    origin_.y + static_cast<double>(cy + r + 1) * csy_ - q.y);
    return std::max(0.0, lb);  // q may sit outside the grid entirely
  }

  std::vector<Point> pts_;
  Point origin_;
  std::int64_t nx_ = 1, ny_ = 1;
  double csx_ = 1.0, csy_ = 1.0;
  std::vector<std::size_t> start_;  ///< CSR cell offsets (nx*ny + 1)
  std::vector<std::size_t> ids_;    ///< point indices grouped by cell
};

}  // namespace sm::util
