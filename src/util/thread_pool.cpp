#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace sm::util {
namespace {

/// One in-flight parallel_for: per-worker index deques plus completion and
/// first-error bookkeeping. Lives on the caller's stack; the hand-off
/// protocol in ThreadPool::parallel_for guarantees no worker touches it
/// after the call returns.
struct Batch {
  explicit Batch(std::size_t workers) : queues(workers), locks(workers) {}

  std::vector<std::deque<std::size_t>> queues;
  std::vector<std::mutex> locks;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> outstanding{0};

  std::mutex err_mutex;
  std::exception_ptr error;
  std::size_t error_index = 0;

  /// Next index for worker `self`: own front first, then steal from the
  /// back of the nearest non-empty victim.
  bool pop(std::size_t self, std::size_t& out) {
    {
      std::lock_guard<std::mutex> g(locks[self]);
      if (!queues[self].empty()) {
        out = queues[self].front();
        queues[self].pop_front();
        return true;
      }
    }
    for (std::size_t k = 1; k < queues.size(); ++k) {
      const std::size_t victim = (self + k) % queues.size();
      std::lock_guard<std::mutex> g(locks[victim]);
      if (!queues[victim].empty()) {
        out = queues[victim].back();
        queues[victim].pop_back();
        return true;
      }
    }
    return false;
  }

  /// Keep only the lowest-index failure so the rethrow is deterministic.
  void record_error(std::size_t index) {
    std::lock_guard<std::mutex> g(err_mutex);
    if (!error || index < error_index) {
      error = std::current_exception();
      error_index = index;
    }
  }

  void drain(std::size_t self) {
    std::size_t i = 0;
    while (pop(self, i)) {
      try {
        (*fn)(i);
      } catch (...) {
        record_error(i);
      }
      outstanding.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
};

/// Inline execution with the same semantics as the pool: every index runs
/// even after a failure, and the lowest failing index's exception wins.
void run_serial(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::exception_ptr error;
  for (std::size_t i = 0; i < n; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex m;
  std::condition_variable cv_work;  ///< workers park here between batches
  std::condition_variable cv_done;  ///< parallel_for caller parks here
  bool stop = false;
  std::uint64_t generation = 0;  ///< bumped per batch so workers join once
  Batch* batch = nullptr;
  std::size_t busy = 0;  ///< workers currently draining the batch
  std::vector<std::thread> workers;

  void worker_main(std::size_t self) {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
      cv_work.wait(lock,
                   [&] { return stop || (batch && generation != seen); });
      if (stop) return;
      seen = generation;
      Batch* b = batch;
      ++busy;
      lock.unlock();
      b->drain(self);
      lock.lock();
      --busy;
      cv_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t num_threads) : impl_(new Impl) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  num_threads_ = num_threads == 0 ? 1 : num_threads;
  impl_->workers.reserve(num_threads_);
  for (std::size_t t = 0; t < num_threads_; ++t)
    impl_->workers.emplace_back([this, t] { impl_->worker_main(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(impl_->m);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1) {
    run_serial(n, fn);
    return;
  }

  Batch b(num_threads_);
  b.fn = &fn;
  b.outstanding.store(n, std::memory_order_relaxed);
  // Contiguous slices per worker: neighbouring grid tasks usually share a
  // benchmark, so keeping them on one worker helps cache locality; load
  // imbalance is what stealing is for.
  const std::size_t chunk = (n + num_threads_ - 1) / num_threads_;
  for (std::size_t t = 0, i = 0; t < num_threads_ && i < n; ++t)
    for (std::size_t k = 0; k < chunk && i < n; ++k) b.queues[t].push_back(i++);

  std::unique_lock<std::mutex> lock(impl_->m);
  impl_->batch = &b;
  ++impl_->generation;
  impl_->cv_work.notify_all();
  impl_->cv_done.wait(lock, [&] {
    return b.outstanding.load(std::memory_order_acquire) == 0 &&
           impl_->busy == 0;
  });
  impl_->batch = nullptr;
  lock.unlock();

  if (b.error) std::rethrow_exception(b.error);
}

std::size_t resolve_jobs(std::size_t jobs, std::size_t n) {
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (n == 0) n = 1;
  return jobs < n ? jobs : n;
}

void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  jobs = resolve_jobs(jobs, n);
  if (jobs <= 1 || n <= 1) {
    run_serial(n, fn);
    return;
  }
  ThreadPool pool(jobs);
  pool.parallel_for(n, fn);
}

}  // namespace sm::util
