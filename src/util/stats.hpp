// Descriptive statistics used by the evaluation section:
// Table 1 reports mean/median/stddev of driver–sink distances; Fig. 4 plots
// their distributions; several benches report percentage deltas.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sm::util {

/// Summary of a sample: count, mean, median, standard deviation, min, max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Compute a Summary over `values`. Sorts a copy for the median.
Summary summarize(std::vector<double> values);

/// Percentile (0..100) of a sample; linear interpolation between ranks.
double percentile(std::vector<double> values, double pct);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped to the first/last bucket.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  Histogram(double low, double high, std::size_t bins);
  void add(double v);
  std::size_t total() const;
  /// Render as a compact ASCII bar chart (for Fig. 4-style output).
  std::string ascii(std::size_t width = 50) const;
};

/// Percentage change from `base` to `now`: 100*(now-base)/base.
/// Returns 0 when base == 0 to keep tables printable.
double pct_delta(double base, double now);

}  // namespace sm::util
