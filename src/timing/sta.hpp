// Static timing analysis and power estimation.
//
// Substitutes for the paper's Cadence Innovus PPA reports (slow corner,
// 0.95 V). Delay model: cell delay = intrinsic + drive_res * load; wire
// delay = lumped Elmore (Rw * (Cw/2 + Csinks)). Dynamic power uses per-net
// switching activities measured by sm::sim; leakage is summed per cell.
// Linear models are sufficient because the paper's Fig. 6 compares
// *relative* overheads (protected vs original layout), not absolute signoff
// numbers.
#pragma once

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"

#include <vector>

namespace sm::timing {

/// Lumped electrical model of one routed net.
struct NetParasitics {
  double cap_ff = 0.0;
  double res_kohm = 0.0;
};

/// Extract per-net parasitics from actual routes (wire + via RC per layer).
/// Nets without a route get zero parasitics (pin caps still count).
std::vector<NetParasitics> extract_parasitics(
    const netlist::Netlist& nl, const route::RoutingResult& routing);

/// HPWL-based fallback when no routing is available (estimates with M3 RC).
std::vector<NetParasitics> estimate_parasitics(
    const netlist::Netlist& nl, const place::Placement& pl);

struct PpaReport {
  double critical_path_ps = 0.0;
  double dynamic_power_uw = 0.0;
  double leakage_power_uw = 0.0;
  double die_area_um2 = 0.0;
  double wirelength_um = 0.0;

  double total_power_uw() const { return dynamic_power_uw + leakage_power_uw; }
};

/// Per-net additional load (used by sm::core to model correction cells: each
/// protected net carries the pin caps and gate delay of its cell pair).
struct NetExtra {
  double cap_ff = 0.0;
  double delay_ps = 0.0;
};

class Sta {
 public:
  explicit Sta(netlist::OperatingPoint op = {}) : op_(op) {}

  /// Arrival time (ps) at every net, in topological order. `extra` may be
  /// empty or indexed by NetId.
  std::vector<double> arrival_times(const netlist::Netlist& nl,
                                    const std::vector<NetParasitics>& par,
                                    const std::vector<NetExtra>& extra = {}) const;

  /// Critical path delay: max arrival over observers (PO and DFF inputs).
  double critical_path_ps(const netlist::Netlist& nl,
                          const std::vector<NetParasitics>& par,
                          const std::vector<NetExtra>& extra = {}) const;

  /// Full PPA roll-up. `activity` is per-net toggle probability (from
  /// sm::sim::toggle_rates) or empty for the default activity.
  PpaReport analyze(const netlist::Netlist& nl, const place::Placement& pl,
                    const route::RoutingResult& routing,
                    const std::vector<double>& activity = {},
                    const std::vector<NetExtra>& extra = {}) const;

  /// Same roll-up with caller-provided parasitics and wirelength (used by
  /// sm::core to evaluate the *restored* functionality on the fabricated
  /// layout, where protected nets span erroneous routes plus BEOL
  /// restoration wires).
  PpaReport analyze_with(const netlist::Netlist& nl,
                         const place::Placement& pl,
                         const std::vector<NetParasitics>& par,
                         double wirelength_um,
                         const std::vector<double>& activity = {},
                         const std::vector<NetExtra>& extra = {}) const;

 private:
  netlist::OperatingPoint op_;
};

}  // namespace sm::timing
