#include "timing/sta.hpp"

#include "netlist/topo.hpp"

#include <algorithm>
#include <stdexcept>

namespace sm::timing {

using netlist::CellId;
using netlist::kInvalidNet;
using netlist::NetId;
using netlist::Netlist;

std::vector<NetParasitics> extract_parasitics(
    const Netlist& nl, const route::RoutingResult& routing) {
  std::vector<NetParasitics> par(nl.num_nets());
  const auto& stack = nl.library().metal();
  const double g = routing.grid.gcell_um();
  for (const auto& r : routing.routes) {
    if (r.net == kInvalidNet || r.net >= nl.num_nets()) continue;
    NetParasitics& p = par[r.net];
    for (const auto& seg : r.segments) {
      if (seg.is_via()) {
        const int lo = std::min(seg.a.layer, seg.b.layer);
        const int hi = std::max(seg.a.layer, seg.b.layer);
        for (int l = lo; l < hi; ++l) {
          p.cap_ff += stack.via_cap_ff(l);
          p.res_kohm += stack.via_res_ohm(l) / 1000.0;
        }
      } else {
        const double len = seg.gcell_length() * g;
        const auto& m = stack.layer(seg.a.layer);
        p.cap_ff += len * m.cap_ff_per_um;
        p.res_kohm += len * m.res_ohm_per_um / 1000.0;
      }
    }
  }
  return par;
}

std::vector<NetParasitics> estimate_parasitics(const Netlist& nl,
                                               const place::Placement& pl) {
  std::vector<NetParasitics> par(nl.num_nets());
  const auto& m3 = nl.library().metal().layer(3);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const double len = place::net_hpwl(nl, pl, n);
    par[n].cap_ff = len * m3.cap_ff_per_um;
    par[n].res_kohm = len * m3.res_ohm_per_um / 1000.0;
  }
  return par;
}

std::vector<double> Sta::arrival_times(const Netlist& nl,
                                       const std::vector<NetParasitics>& par,
                                       const std::vector<NetExtra>& extra) const {
  if (par.size() != nl.num_nets())
    throw std::invalid_argument("Sta: parasitics size mismatch");
  const auto order = netlist::topological_order(nl);
  if (!order) throw std::logic_error("Sta: combinational cycle");

  // Load on each net: wire cap + sink pin caps (+ correction-cell extras).
  std::vector<double> load(nl.num_nets(), 0.0);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    double c = par[n].cap_ff;
    for (const auto& s : nl.net(n).sinks)
      c += nl.type_of(s.cell).input_cap_ff;
    if (n < extra.size()) c += extra[n].cap_ff;
    load[n] = c;
  }

  std::vector<double> arrival(nl.num_nets(), 0.0);
  for (const CellId id : *order) {
    const auto& cell = nl.cell(id);
    const auto& t = nl.type_of(id);
    if (cell.output == kInvalidNet) continue;
    const NetId out = cell.output;

    // Input arrival: max over input nets, plus that net's wire delay
    // (Elmore: Rw * (Cw/2 + Cpin)). DFF/port outputs launch at t=0.
    double in_arrival = 0.0;
    if (nl.is_combinational(id)) {
      for (const NetId in : cell.inputs) {
        if (in == kInvalidNet) continue;
        const double wire_delay =
            par[in].res_kohm * (par[in].cap_ff / 2.0 + t.input_cap_ff);
        in_arrival = std::max(in_arrival, arrival[in] + wire_delay);
      }
    }
    double cell_delay = 0.0;
    if (!nl.is_port(id))
      cell_delay = t.intrinsic_delay_ps + t.drive_res_kohm * load[out];
    double a = in_arrival + cell_delay;
    if (out < extra.size()) a += extra[out].delay_ps;
    arrival[out] = a;
  }
  return arrival;
}

double Sta::critical_path_ps(const Netlist& nl,
                             const std::vector<NetParasitics>& par,
                             const std::vector<NetExtra>& extra) const {
  const auto arrival = arrival_times(nl, par, extra);
  double worst = 0.0;
  auto observe = [&](NetId n, double pin_cap) {
    const double wire_delay = par[n].res_kohm * (par[n].cap_ff / 2.0 + pin_cap);
    worst = std::max(worst, arrival[n] + wire_delay);
  };
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (nl.is_dff(id)) {
      observe(nl.cell(id).inputs.at(0), nl.type_of(id).input_cap_ff);
    }
  }
  for (std::size_t i = 0; i < nl.primary_outputs().size(); ++i) {
    const CellId po = nl.primary_outputs()[i];
    observe(nl.primary_output_net(i), nl.type_of(po).input_cap_ff);
  }
  return worst;
}

PpaReport Sta::analyze(const Netlist& nl, const place::Placement& pl,
                       const route::RoutingResult& routing,
                       const std::vector<double>& activity,
                       const std::vector<NetExtra>& extra) const {
  return analyze_with(nl, pl, extract_parasitics(nl, routing),
                      routing.stats.total_wire_um(), activity, extra);
}

PpaReport Sta::analyze_with(const Netlist& nl, const place::Placement& pl,
                            const std::vector<NetParasitics>& par,
                            double wirelength_um,
                            const std::vector<double>& activity,
                            const std::vector<NetExtra>& extra) const {
  PpaReport rep;
  rep.critical_path_ps = critical_path_ps(nl, par, extra);
  rep.die_area_um2 = pl.floorplan.die.area();
  rep.wirelength_um = wirelength_um;

  const double f_ghz = 1.0 / op_.clock_period_ns;  // GHz
  const double v2 = op_.vdd * op_.vdd;
  double dyn_uw = 0.0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    double c = par[n].cap_ff;
    for (const auto& s : nl.net(n).sinks)
      c += nl.type_of(s.cell).input_cap_ff;
    if (n < extra.size()) c += extra[n].cap_ff;
    const double a =
        (n < activity.size()) ? activity[n] : op_.default_activity;
    // fF * V^2 * GHz = uW.
    dyn_uw += 0.5 * a * c * v2 * f_ghz;
  }
  rep.dynamic_power_uw = dyn_uw;

  double leak_nw = 0.0;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    leak_nw += nl.type_of(id).leakage_nw;
  rep.leakage_power_uw = leak_nw / 1000.0;
  return rep;
}

}  // namespace sm::timing
