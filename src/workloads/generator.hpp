// Synthetic benchmark generation.
//
// The paper evaluates on nine ISCAS-85 circuits and five IBM superblue
// designs (ISPD-2011). Neither suite is redistributable inside this offline
// repo, so we generate *clones*: random layered DAG netlists whose published
// structural parameters (PI/PO counts, gate count, sequential fraction,
// design utilization) match the originals — scaled down for superblue so the
// full place/route/attack pipeline runs in minutes. The security and layout
// metrics the paper reports are functions of graph structure and physical
// design, not of the specific Boolean functions, so the clones exercise the
// same code paths and reproduce the same qualitative behaviour (see
// DESIGN.md section 2).
#pragma once

#include "netlist/netlist.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace sm::workloads {

/// Parameters of a generated netlist.
struct GenSpec {
  std::string name = "bench";
  int num_pi = 16;
  int num_po = 8;
  int num_gates = 200;        ///< combinational gates + DFFs
  double dff_fraction = 0.0;  ///< fraction of gates that are DFFs
  /// Input-selection locality: inputs are drawn from the most recent
  /// `locality_window` nets with high probability; larger windows give
  /// shallower, wider circuits.
  int locality_window = 64;
  /// Two-scale locality (Rent-like): with probability `short_bias` the input
  /// comes from the last `short_window` nets instead of the full window.
  /// Real designs are dominated by adjacent-gate connections — this is what
  /// makes placed layouts exhibit the small driver-sink distances that
  /// proximity attacks feed on (paper Table 1: superblue medians ~3 um).
  double short_bias = 0.8;
  int short_window = 12;
  /// Probability of continuing to grow a net's fanout (geometric).
  double fanout_decay = 0.35;
  int max_fanout = 12;
  /// Target placement utilization (consumed by the placer).
  double utilization = 0.70;
};

/// Generate a random, acyclic, fully connected netlist for `spec`.
/// Deterministic in (spec, seed). Every net has at least one sink and the
/// result passes Netlist::validate().
netlist::Netlist generate(const netlist::CellLibrary& lib, const GenSpec& spec,
                          std::uint64_t seed);

/// The nine ISCAS-85 profiles used in Tables 4/5 (published PI/PO/gate
/// counts). Throws std::invalid_argument for unknown names.
GenSpec iscas85_profile(const std::string& name);
const std::vector<std::string>& iscas85_names();

/// The five superblue profiles used in Tables 1/2/3/6 and Figs. 4/5.
/// `scale` in (0, 1] shrinks cell and I/O counts (I/O scales with sqrt of
/// the cell scale, mirroring perimeter-vs-area); scale=1 approximates the
/// published instance sizes (~0.7-1.5M cells — impractically slow here).
GenSpec superblue_profile(const std::string& name, double scale = 0.02);
const std::vector<std::string>& superblue_names();

/// Pure synthetic scaling ladder: synth1k, synth4k, synth16k, synth64k,
/// synth128k — gate counts past the ISCAS suite and (at full `scale`) past
/// the scaled superblue clones, for pushing the sweep beyond the published
/// benchmarks. `scale` shrinks cell and I/O counts exactly like
/// superblue_profile (I/O with sqrt of the cell scale); the structural
/// parameters follow the superblue recipe (sequential share, Rent-like
/// locality) so the flow treats them as large flat designs. Throws
/// std::invalid_argument for unknown names or scale outside (0, 1].
GenSpec synthetic_profile(const std::string& name, double scale = 1.0);
const std::vector<std::string>& synthetic_names();

}  // namespace sm::workloads
