#include "workloads/generator.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace sm::workloads {

using netlist::CellId;
using netlist::CellLibrary;
using netlist::CellTypeId;
using netlist::NetId;
using netlist::Netlist;

Netlist generate(const CellLibrary& lib, const GenSpec& spec,
                 std::uint64_t seed) {
  if (spec.num_pi < 1 || spec.num_po < 1 || spec.num_gates < 1)
    throw std::invalid_argument("generate: spec must have >=1 PI/PO/gate");
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  Netlist nl(lib, spec.name);

  // All nets created so far, in creation order (drives locality selection).
  std::vector<NetId> pool;
  pool.reserve(static_cast<std::size_t>(spec.num_pi + spec.num_gates));
  // Remaining fanout budget per pool entry; nets with budget left are
  // preferred so every net ends up with at least one sink.
  std::deque<std::size_t> starving;  // pool indices with zero sinks so far
  std::vector<int> sink_count;

  auto push_net = [&](NetId n) {
    starving.push_back(pool.size());
    pool.push_back(n);
    sink_count.push_back(0);
  };

  for (int i = 0; i < spec.num_pi; ++i)
    push_net(nl.add_primary_input("pi" + std::to_string(i)));

  // Gate-type mix. Random AND/OR-heavy DAGs saturate signal probabilities
  // toward 0/1, which makes deep outputs nearly constant and blocks error
  // propagation — the opposite of real ISCAS-85 circuits (adders,
  // multipliers, ALUs are XOR/MUX-rich). Weight probability-preserving gates
  // heavily so random stimuli keep ~0.5 signal probability at depth, the
  // property both the OER-driven randomizer and the HD metric rely on.
  std::vector<CellTypeId> gates;
  const auto add_weighted = [&](const char* type_name, int weight) {
    const CellTypeId id = lib.id_of(type_name);
    for (int i = 0; i < weight; ++i) gates.push_back(id);
  };
  add_weighted("XOR2_X1", 8);
  add_weighted("XNOR2_X1", 8);
  add_weighted("MUX2_X1", 4);
  add_weighted("INV_X1", 3);
  add_weighted("NAND2_X1", 2);
  add_weighted("NOR2_X1", 2);
  add_weighted("AND2_X1", 1);
  add_weighted("OR2_X1", 1);
  add_weighted("NAND3_X1", 1);
  add_weighted("NOR3_X1", 1);
  add_weighted("AOI21_X1", 1);
  add_weighted("OAI21_X1", 1);
  add_weighted("NAND4_X1", 1);
  const int num_dff = static_cast<int>(
      std::lround(spec.dff_fraction * spec.num_gates));

  // Choose an input net for the gate being created at pool position `end`.
  auto pick_input = [&](std::size_t end) -> std::size_t {
    // Drain nets that still have no sink (guarantees connectivity). Mostly
    // from the back — the *recent* sinkless nets — so drained connections
    // stay local; a small front-drain retires stragglers.
    while (!starving.empty() && starving.front() >= end) starving.pop_back();
    if (!starving.empty() && rng.chance(0.6)) {
      if (rng.chance(0.85)) {
        const std::size_t idx = starving.back();
        starving.pop_back();
        return idx;
      }
      const std::size_t idx = starving.front();
      starving.pop_front();
      return idx;
    }
    // Two-scale window: mostly very recent nets (adjacent-gate locality),
    // occasionally the full window (global nets).
    const int w = rng.chance(spec.short_bias)
                      ? std::min(spec.short_window, spec.locality_window)
                      : spec.locality_window;
    const std::size_t window = std::min<std::size_t>(
        std::max<std::size_t>(static_cast<std::size_t>(w), 1), end);
    const std::size_t lo = end - window;
    return lo + static_cast<std::size_t>(rng.below(window));
  };

  for (int g = 0; g < spec.num_gates; ++g) {
    const bool make_dff = g < num_dff;  // DFFs early: their outputs feed logic
    const CellTypeId type =
        make_dff ? lib.dff()
                 : gates[static_cast<std::size_t>(rng.below(gates.size()))];
    const std::string name = (make_dff ? "ff" : "g") + std::to_string(g);
    const CellId cell = nl.add_cell(name, type);
    const std::size_t end = pool.size();
    const int arity = lib.type(type).num_inputs;
    // Avoid duplicate input nets where possible (real netlists rarely tie
    // two pins of one gate to the same net).
    std::vector<std::size_t> used;
    for (int p = 0; p < arity; ++p) {
      std::size_t idx = pick_input(end);
      for (int attempt = 0;
           attempt < 4 && std::find(used.begin(), used.end(), idx) != used.end();
           ++attempt)
        idx = pick_input(end);
      used.push_back(idx);
      nl.connect_input(cell, p, pool[idx]);
      ++sink_count[idx];
    }
    push_net(nl.cell(cell).output);
  }

  // Primary outputs: prefer nets that still have no sink, then the most
  // recently created gate outputs (circuit "tips").
  std::vector<std::size_t> po_choice;
  for (std::size_t idx : starving)
    if (idx >= static_cast<std::size_t>(spec.num_pi)) po_choice.push_back(idx);
  for (std::size_t idx = pool.size(); idx-- > static_cast<std::size_t>(spec.num_pi);) {
    if (po_choice.size() >= static_cast<std::size_t>(spec.num_po) * 2) break;
    if (sink_count[idx] == 0) continue;  // already collected above
    po_choice.push_back(idx);
  }
  // Deduplicate, preserve order.
  std::vector<std::size_t> po_final;
  for (std::size_t idx : po_choice) {
    if (std::find(po_final.begin(), po_final.end(), idx) == po_final.end())
      po_final.push_back(idx);
    if (po_final.size() == static_cast<std::size_t>(spec.num_po)) break;
  }
  // Edge case: tiny circuits may need PI nets as POs to hit the count.
  for (std::size_t idx = 0; po_final.size() < static_cast<std::size_t>(spec.num_po) &&
                            idx < pool.size(); ++idx) {
    if (std::find(po_final.begin(), po_final.end(), idx) == po_final.end())
      po_final.push_back(idx);
  }
  for (std::size_t i = 0; i < po_final.size(); ++i)
    nl.add_primary_output("po" + std::to_string(i), pool[po_final[i]]);

  // Any net still sinkless (e.g. starving PIs in gate-poor specs) feeds an
  // extra observer port so simulation observes the whole circuit.
  std::vector<bool> is_po_net(nl.num_nets(), false);
  for (std::size_t i = 0; i < nl.primary_outputs().size(); ++i)
    is_po_net[nl.primary_output_net(i)] = true;
  int extra = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (nl.net(n).sinks.empty() && !is_po_net[n])
      nl.add_primary_output("po_x" + std::to_string(extra++), n);
  }

  nl.validate();
  return nl;
}

namespace {

GenSpec iscas(const std::string& name, int pi, int po, int gates, int window) {
  GenSpec s;
  s.name = name;
  s.num_pi = pi;
  s.num_po = po;
  s.num_gates = gates;
  s.dff_fraction = 0.0;
  s.locality_window = window;
  // Mild two-scale locality only: the tight superblue defaults cause so much
  // reconvergence on these small, deep circuits that outputs go near
  // constant (no observability, no error propagation).
  s.short_bias = 0.3;
  s.short_window = std::max(16, window / 2);
  s.fanout_decay = 0.30;
  s.utilization = 0.60;
  return s;
}

struct SuperblueRow {
  const char* name;
  int cells;       ///< published instance scale proxy (paper Table 2 nets)
  int io_in, io_out;
  double util;     ///< published utilization (paper Table 2)
};

// Published parameters from the paper's Table 2 (nets, I/O pins, util).
constexpr SuperblueRow kSuperblue[] = {
    {"superblue1", 873712, 8320, 13025, 0.69},
    {"superblue5", 754907, 11661, 9617, 0.77},
    {"superblue10", 1147401, 10454, 23663, 0.75},
    {"superblue12", 1520046, 1936, 4629, 0.56},
    {"superblue18", 670323, 3921, 7465, 0.67},
};

}  // namespace

GenSpec iscas85_profile(const std::string& name) {
  // Published ISCAS-85 PI/PO/gate counts.
  if (name == "c432") return iscas(name, 36, 7, 160, 24);
  if (name == "c880") return iscas(name, 60, 26, 383, 40);
  if (name == "c1355") return iscas(name, 41, 32, 546, 40);
  if (name == "c1908") return iscas(name, 33, 25, 880, 48);
  if (name == "c2670") return iscas(name, 233, 140, 1193, 64);
  if (name == "c3540") return iscas(name, 50, 22, 1669, 64);
  if (name == "c5315") return iscas(name, 178, 123, 2307, 96);
  // c6288 (multiplier): a very narrow locality window on a random DAG causes
  // so much reconvergence that outputs lose input sensitivity; 160 keeps the
  // clone deep but observable.
  if (name == "c6288") return iscas(name, 32, 32, 2406, 160);
  if (name == "c7552") return iscas(name, 207, 108, 3512, 96);
  throw std::invalid_argument("iscas85_profile: unknown benchmark '" + name + "'");
}

const std::vector<std::string>& iscas85_names() {
  static const std::vector<std::string> names = {
      "c432", "c880", "c1355", "c1908", "c2670",
      "c3540", "c5315", "c6288", "c7552"};
  return names;
}

GenSpec superblue_profile(const std::string& name, double scale) {
  if (scale <= 0.0 || scale > 1.0)
    throw std::invalid_argument("superblue_profile: scale must be in (0,1]");
  for (const auto& row : kSuperblue) {
    if (name != row.name) continue;
    GenSpec s;
    s.name = name;
    s.num_gates = std::max(1000, static_cast<int>(std::lround(
                                     static_cast<double>(row.cells) * scale)));
    const double io_scale = std::sqrt(scale);
    s.num_pi = std::max(16, static_cast<int>(std::lround(row.io_in * io_scale)));
    s.num_po = std::max(16, static_cast<int>(std::lround(row.io_out * io_scale)));
    s.dff_fraction = 0.12;  // typical sequential share of the superblue suite
    s.locality_window = std::max(64, s.num_gates / 100);
    s.fanout_decay = 0.35;
    s.utilization = row.util;
    return s;
  }
  throw std::invalid_argument("superblue_profile: unknown benchmark '" + name + "'");
}

const std::vector<std::string>& superblue_names() {
  static const std::vector<std::string> names = {
      "superblue1", "superblue5", "superblue10", "superblue12", "superblue18"};
  return names;
}

namespace {

struct SyntheticRow {
  const char* name;
  int gates;
  int io_in, io_out;
};

// A clean power-of-4 scaling ladder: largest ISCAS clone is c7552 at 3512
// gates and the default superblue clones land around 15-30k, so the ladder
// starts above the former and tops out well past the latter. I/O follows a
// perimeter-vs-area rule of thumb (~3*sqrt(gates) in, ~2*sqrt(gates) out).
constexpr SyntheticRow kSynthetic[] = {
    {"synth1k", 1000, 96, 64},
    {"synth4k", 4000, 192, 128},
    {"synth16k", 16000, 384, 256},
    {"synth64k", 64000, 768, 512},
    {"synth128k", 128000, 1086, 724},
};

}  // namespace

GenSpec synthetic_profile(const std::string& name, double scale) {
  if (scale <= 0.0 || scale > 1.0)
    throw std::invalid_argument("synthetic_profile: scale must be in (0,1]");
  for (const auto& row : kSynthetic) {
    if (name != row.name) continue;
    GenSpec s;
    s.name = name;
    s.num_gates = std::max(200, static_cast<int>(std::lround(
                                    static_cast<double>(row.gates) * scale)));
    const double io_scale = std::sqrt(scale);
    s.num_pi = std::max(16, static_cast<int>(std::lround(row.io_in * io_scale)));
    s.num_po = std::max(16, static_cast<int>(std::lround(row.io_out * io_scale)));
    s.dff_fraction = 0.10;
    s.locality_window = std::max(64, s.num_gates / 100);
    s.fanout_decay = 0.35;
    s.utilization = 0.60;
    return s;
  }
  throw std::invalid_argument("synthetic_profile: unknown benchmark '" + name +
                              "'");
}

const std::vector<std::string>& synthetic_names() {
  static const std::vector<std::string> names = {
      "synth1k", "synth4k", "synth16k", "synth64k", "synth128k"};
  return names;
}

}  // namespace sm::workloads
