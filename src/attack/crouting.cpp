#include "attack/crouting.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace sm::attack {

using core::SplitView;

CRoutingResult crouting_attack(const SplitView& view,
                               const CRoutingOptions& opts) {
  CRoutingResult result;

  struct P {
    double x, y;
    netlist::NetId net;
    std::size_t frag;
  };
  std::vector<P> pins;
  for (std::size_t fi = 0; fi < view.fragments.size(); ++fi)
    for (const auto& v : view.fragments[fi].vpins)
      pins.push_back({v.pos.x, v.pos.y, view.fragments[fi].net, fi});
  result.num_vpins = pins.size();
  if (pins.empty()) {
    result.failed = true;
    result.candidate_list_size.assign(opts.bboxes.size(), 0.0);
    result.match_in_list.assign(opts.bboxes.size(), 0.0);
    return result;
  }

  // Bucket grid sized by the largest bbox for neighborhood queries.
  const double bmax =
      *std::max_element(opts.bboxes.begin(), opts.bboxes.end());
  const double cell = std::max(bmax, 1.0);
  auto bucket = [&](double x, double y) {
    return std::make_pair(static_cast<long>(std::floor(x / cell)),
                          static_cast<long>(std::floor(y / cell)));
  };
  std::map<std::pair<long, long>, std::vector<std::size_t>> grid;
  for (std::size_t i = 0; i < pins.size(); ++i)
    grid[bucket(pins[i].x, pins[i].y)].push_back(i);

  result.candidate_list_size.assign(opts.bboxes.size(), 0.0);
  result.match_in_list.assign(opts.bboxes.size(), 0.0);
  std::vector<std::size_t> has_partner(opts.bboxes.size(), 0);
  std::vector<double> cand_sum(opts.bboxes.size(), 0.0);
  std::size_t with_counterpart = 0;

  for (std::size_t i = 0; i < pins.size(); ++i) {
    const auto [bx, by] = bucket(pins[i].x, pins[i].y);
    std::vector<std::size_t> cand(opts.bboxes.size(), 0);
    std::vector<bool> matched(opts.bboxes.size(), false);
    bool counterpart_exists = false;
    for (long dy = -1; dy <= 1; ++dy) {
      for (long dx = -1; dx <= 1; ++dx) {
        const auto it = grid.find({bx + dx, by + dy});
        if (it == grid.end()) continue;
        for (const std::size_t j : it->second) {
          if (j == i) continue;
          // A candidate partner must belong to a *different* fragment: two
          // vpins of one fragment are already connected in the FEOL.
          if (pins[j].frag == pins[i].frag) continue;
          const double d = std::max(std::abs(pins[i].x - pins[j].x),
                                    std::abs(pins[i].y - pins[j].y));
          const bool same_net = pins[j].net == pins[i].net;
          for (std::size_t b = 0; b < opts.bboxes.size(); ++b) {
            if (d <= opts.bboxes[b]) {
              ++cand[b];
              if (same_net) matched[b] = true;
            }
          }
          if (same_net) counterpart_exists = true;
        }
      }
    }
    // Counterparts can also sit outside the grid neighborhood.
    if (!counterpart_exists) {
      for (std::size_t j = 0; j < pins.size() && !counterpart_exists; ++j)
        if (j != i && pins[j].frag != pins[i].frag &&
            pins[j].net == pins[i].net)
          counterpart_exists = true;
    }
    if (counterpart_exists) ++with_counterpart;
    for (std::size_t b = 0; b < opts.bboxes.size(); ++b) {
      cand_sum[b] += static_cast<double>(cand[b]);
      if (counterpart_exists && matched[b]) ++has_partner[b];
    }
  }

  for (std::size_t b = 0; b < opts.bboxes.size(); ++b) {
    result.candidate_list_size[b] =
        cand_sum[b] / static_cast<double>(pins.size());
    result.match_in_list[b] =
        with_counterpart == 0
            ? 0.0
            : static_cast<double>(has_partner[b]) /
                  static_cast<double>(with_counterpart);
  }
  return result;
}

}  // namespace sm::attack
