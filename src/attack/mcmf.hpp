// Minimal successive-shortest-path min-cost max-flow (SPFA variant), used by
// the network-flow proximity attack to assign sink fragments to driver
// fragments at least total cost — the formulation of Wang et al. [5].
#pragma once

#include <cstdint>
#include <vector>

namespace sm::attack {

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  /// Add a directed edge with capacity and cost; returns the edge id.
  int add_edge(int from, int to, int capacity, double cost);

  /// Send up to `max_flow` units from s to t; returns (flow, cost).
  std::pair<int, double> solve(int s, int t, int max_flow);

  /// Flow currently on edge `id` (forward direction).
  int flow_on(int id) const;

 private:
  struct Edge {
    int to;
    int cap;
    double cost;
    int rev;  ///< index of the reverse edge in graph_[to]
  };
  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edge_ref_;  ///< id -> (node, index)
};

}  // namespace sm::attack
