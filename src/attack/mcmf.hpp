// Min-cost max-flow via successive shortest paths over Johnson-reduced
// costs (Dijkstra on a 4-ary heap), used by the network-flow proximity
// attack to assign sink fragments to driver fragments at least total cost —
// the formulation of Wang et al. [5].
//
// This replaces the original SPFA solver, which re-scanned the whole
// residual graph per augmentation. With node potentials every residual arc
// keeps a non-negative reduced cost, so each augmentation is one
// early-terminating Dijkstra — and on the attack's assignment-shaped
// network (all source arcs cost 0) the solver routes each unit from its
// source arc head directly, exploring only the local candidate
// neighborhood instead of the full graph.
//
// Incremental API: after a solve(), remove_edge()/update_edge() may perturb
// individual arcs and resolve() repairs the flow *warm* — only the
// imbalances the perturbations created are re-routed, and the potentials
// carry over. Cold re-solves of the same final network and warm repairs
// produce identical assignments (not merely equal cost): every shortest-
// path search breaks distance ties on the lowest node index, relaxes arcs
// in insertion (edge-id) order, and replaces a predecessor only on strict
// improvement, so the optimum reached is pinned as long as it is unique.
// The contract (and what invalidates the potentials) is documented in
// ARCHITECTURE.md, "MCMF warm-start contract", and enforced by the
// randomized cold-vs-warm harness in tests/test_mcmf.cpp plus the real
// attack rigs in tests/test_attack.cpp.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace sm::attack {

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  /// Add a directed edge with capacity and cost; returns the edge id.
  /// Edges added after a solve() participate from the next resolve()/
  /// solve() on (a post-solve edge whose reduced cost is already negative
  /// is saturated immediately to keep the potentials valid).
  int add_edge(int from, int to, int capacity, double cost);

  /// Send up to `max_flow` *additional* units from s to t; returns the
  /// total (flow, cost) over the edge set. Repeated calls must keep the
  /// same terminals. Throws std::logic_error on a negative-cost cycle.
  std::pair<int, double> solve(int s, int t, int max_flow);

  /// Flow currently on edge `id` (forward direction).
  int flow_on(int id) const;

  // ---- Incremental (warm-start) API — valid after a solve() ----

  /// Drop edge `id` (capacity 0, cost kept). Flow it carried becomes an
  /// excess/deficit imbalance that the next resolve() re-routes.
  void remove_edge(int id);

  /// Change capacity and cost of edge `id`. Capacity below the current
  /// flow pushes the overhang back as an imbalance; a cost change that
  /// turns a residual arc's reduced cost negative saturates (or drains)
  /// the arc so the potentials invariant survives until resolve().
  void update_edge(int id, int capacity, double cost);

  /// Repair all outstanding imbalances along shortest reduced-cost paths
  /// and re-augment toward the accumulated solve() target; returns the
  /// total (flow, cost), identical to a cold re-solve of the same network.
  std::pair<int, double> resolve();

  int flow() const { return flow_; }
  double cost() const;  ///< Σ flow·cost over edges, recomputed exactly

 private:
  /// One residual arc; arcs_[2*id] is edge id's forward arc, arcs_[2*id+1]
  /// its reverse (so `a ^ 1` pairs them and arcs_[a ^ 1].to is a's tail).
  struct Arc {
    int to;
    int cap;  ///< residual capacity (reverse arc's cap == pushed flow)
    double cost;
  };

  double reduced_cost(int arc) const;
  void bellman_ford_init();
  /// Dijkstra over reduced costs from `sources` until a node satisfying
  /// `is_target` pops (first pop = smallest (dist, node) — the pinned
  /// tie-break). Returns that node or -1. On success (unless the caller
  /// defers it for a blocking phase) applies apply_potentials(found).
  template <class IsTarget>
  int dijkstra(const int* sources, int num_sources, IsTarget is_target,
               bool update_pi = true);
  /// Shifted Johnson update over the last search: pi[v] += dist[v] -
  /// dist[target] for scanned nodes — a uniform offset of the classic
  /// capped rule (offsets cancel in every reduced cost), keeping the
  /// update O(scanned) instead of O(nodes).
  void apply_potentials(int target);
  /// Dinic-style blocking flow over the last search's bitwise shortest-
  /// path DAG (arcs with dist[u] + rc == dist[v], both endpoints scanned):
  /// saturates every admissible s->t path of the current shortest length
  /// at once, up to `budget` units. Runs BEFORE apply_potentials (the
  /// admissibility test needs the pre-update potentials). Returns the
  /// units pushed. This is the Hopcroft-Karp-style phase structure that
  /// makes assignment-shaped networks cheap: one Dijkstra per distinct
  /// path length instead of one per unit.
  int blocking_flow(int budget);
  /// Push up to `limit` units along prev_arc_ into `target`; returns the
  /// amount pushed (path bottleneck).
  int augment(int target, int limit);
  /// Saturate a residual arc whose reduced cost went negative, recording
  /// the resulting imbalance for resolve().
  void saturate(int arc);
  /// Fold s/t imbalances into flow_ (terminals are allowed any net flow).
  void normalize_terminals();
  /// Route non-terminal excesses/deficits, trim overshoot, re-augment to
  /// target_.
  void repair_and_augment();

  std::vector<Arc> arcs_;
  std::vector<std::vector<int>> adj_;  ///< node -> arc ids, insertion order
  std::vector<double> pi_;             ///< Johnson potentials
  std::vector<long long> excess_;      ///< >0 surplus inflow, <0 deficit
  int s_ = -1, t_ = -1;
  int target_ = 0;  ///< accumulated solve() budget
  int flow_ = 0;    ///< units currently delivered to t_
  bool solved_ = false;
  bool has_negative_ = false;  ///< a pre-solve edge had negative cost

  // Dijkstra scratch, reset sparsely via touched_.
  std::vector<double> dist_;
  std::vector<int> prev_arc_;
  std::vector<char> scanned_;
  std::vector<int> touched_;
  std::vector<std::pair<double, int>> heap_;

  // blocking_flow() scratch (current-arc pointers, DFS path, cycle guard).
  std::vector<int> cur_arc_;
  std::vector<char> on_path_;
  std::vector<int> path_;
};

}  // namespace sm::attack
