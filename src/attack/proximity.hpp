// Network-flow proximity attack (Wang et al., DAC'16 [5]).
//
// The attacker holds the FEOL: all gates, and every net fragment routed at
// or below the split layer. Cut nets leave open driver fragments (containing
// the driving cell) and open sink fragments (containing input pins). The
// attack matches sink fragments to driver fragments using the published
// hints:
//   (i)  physical proximity of the dangling vpins,
//   (ii) avoidance of combinational loops in the hypothesis netlist,
//   (iii) load-capacitance constraints per driver strength,
//   (iv) direction of the dangling wires at the split layer.
// Matching is greedy-global over candidate pairs ordered by cost (a faithful
// stand-in for the min-cost-flow formulation: both realize least-total-cost
// assignment under the same feasibility rules). Every sink is eventually
// connected (falling back to the nearest loop-free driver), so the recovered
// netlist is complete and simulable — exactly what the CCR/OER/HD metrics
// need.
//
// Scoring is against the true (original) netlist: CCR is the fraction of
// recovered connections that match it; OER/HD are measured by simulating
// the recovered netlist against the original.
//
// Scale: candidate generation ranks driver fragments per sink through a
// util::GridIndex over the driver fragments' vpins (expanding-ring queries
// with an exact pair_cost lower bound), turning the O(ns*nd) all-pairs scan
// into O(ns*k) for large instances, and shards the per-sink queries — plus
// the repair orderings and the OER/HD simulation blocks — over
// ProximityOptions::jobs worker threads. Metrics are bit-identical for any
// jobs value and for indexed vs brute-force candidate generation.
#pragma once

#include "core/randomizer.hpp"
#include "core/split.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "sim/simulator.hpp"

#include <cstdint>
#include <optional>

namespace sm::attack {

struct ProximityOptions {
  int candidates_per_sink = 16;   ///< nearest driver fragments considered
  double direction_bonus = 0.75;  ///< cost factor when dangling wires align
  /// Weight of gate-to-gate placement distance added to the vpin-to-vpin
  /// cost (hint (i): the placer put truly connected gates close together).
  /// Empirically the vpin geometry dominates, so this defaults off; it is
  /// kept as an ablation knob.
  double anchor_weight = 0.0;
  /// Cost factor for vpin pairs sharing a routing track (straight BEOL
  /// bridges are the most plausible continuation).
  double track_bonus = 0.5;
  /// Drive-strength prior (paper Sec. 3's BUFX8 argument): a strong driver
  /// "should" reach a distant sink, a weak one a nearby sink; candidates
  /// violating the prior cost more. Off by default — it only bites when the
  /// layout ran drive-strength fixing (FlowOptions::buffering), and on the
  /// erroneous netlist it actively misleads, which is the paper's point.
  bool use_strength_prior = false;
  double strength_prior_weight = 0.4;
  double strength_prior_scale_um = 180.0;  ///< expected dist = this / res_kohm
  double load_budget_ff_per_ks = 220.0;  ///< load budget = this / drive_res
  bool use_loops = true;
  bool use_direction = true;
  bool use_load = true;
  std::size_t eval_patterns = 100000;  ///< for OER/HD of the recovered netlist
  std::uint64_t seed = 7;
  /// Worker threads (0 = hardware concurrency) sharding candidate
  /// generation, the repair-ordering scan, and the OER/HD simulation.
  /// Results are bit-identical for every value — no attack randomness may
  /// depend on the executing thread.
  std::size_t jobs = 1;
  /// Build the spatial vpin index when at least this many open driver
  /// fragments exist; below it (or when exotic negative weights void the
  /// index's cost lower bound) candidates come from the brute-force scan.
  /// Both paths rank by (pair_cost, driver index) and return identical
  /// candidate sets — the index only skips provably-too-far drivers.
  int index_min_drivers = 64;
  double index_target_per_cell = 4.0;  ///< bucket occupancy of the index
  /// Keep the recovered netlist in ProximityResult::recovered. Off by
  /// default (a full netlist clone per attack is pure overhead for metric
  /// sweeps); the SAT-equivalence attacker turns it on to feed
  /// core::check_equivalence.
  bool keep_recovered = false;
  /// Warm-start the min-cost-flow solver across loop-repair rounds (the
  /// removed edges' imbalances re-route against the carried-over
  /// potentials). Off forces a cold rebuild of the reduced network per
  /// round — same assignment, strictly more work; kept as the equality
  /// oracle for the cold==warm rig tests.
  bool mcmf_warm = true;
  /// SIMD lane width (uint64 words evaluated together) for the OER/HD
  /// simulation: 1, 4, or 8; 0 picks sim::kDefaultSimLanes. Results are
  /// byte-identical for every value.
  std::size_t sim_lanes = 0;
};

struct ProximityResult {
  std::size_t open_sinks = 0;      ///< sink pins the attacker had to connect
  std::size_t matched = 0;         ///< connected by the main matching
  std::size_t correct = 0;         ///< equal to the original netlist
  std::size_t protected_total = 0; ///< swapped (randomized) sink pins seen
  std::size_t protected_correct = 0;
  sim::ErrorRates rates;           ///< recovered vs original
  /// The attacker's completed netlist, populated only when
  /// ProximityOptions::keep_recovered is set.
  std::optional<netlist::Netlist> recovered;

  double ccr() const {
    return open_sinks == 0 ? 1.0
                           : static_cast<double>(correct) /
                                 static_cast<double>(open_sinks);
  }
  /// CCR restricted to the connections the defense randomized.
  double ccr_protected() const {
    return protected_total == 0
               ? ccr()
               : static_cast<double>(protected_correct) /
                     static_cast<double>(protected_total);
  }
};

/// Run the attack. `feol` is the netlist the FEOL implements (erroneous for
/// the proposed defense / pin swapping, the original otherwise); `original`
/// is ground truth. `ledger` (optional) marks the protected connections for
/// the CCR-protected accounting.
ProximityResult proximity_attack(const netlist::Netlist& feol,
                                 const netlist::Netlist& original,
                                 const place::Placement& pl,
                                 const core::SplitView& view,
                                 const core::SwapLedger* ledger,
                                 const ProximityOptions& opts = {});

}  // namespace sm::attack
