#include "attack/proximity.hpp"

#include "attack/mcmf.hpp"
#include "netlist/topo.hpp"
#include "util/grid_index.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace sm::attack {

using core::Fragment;
using core::SplitView;
using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sink;
using util::GridIndex;
using util::Point;

namespace {

/// Hypothesis connectivity the attacker grows: visible FEOL connections plus
/// committed guesses. Supports incremental combinational-loop checks. The
/// visited set is an epoch-stamped vector reused across queries — would_loop
/// sits in the innermost commit loops and must not allocate per call.
class Hypothesis {
 public:
  explicit Hypothesis(const Netlist& nl) : nl_(&nl) {
    adj_.resize(nl.num_cells());
    mark_.assign(nl.num_cells(), 0);
  }

  void add_edge(CellId from, CellId to) { adj_[from].push_back(to); }

  /// Undo one earlier add_edge(from, to) — the latest matching occurrence
  /// (duplicates are legitimate: two sink fragments may pull the same
  /// driver->cell pair). The caller guarantees the edge exists.
  void remove_edge(CellId from, CellId to) {
    auto& v = adj_[from];
    const auto it = std::find(v.rbegin(), v.rend(), to);
    v.erase(std::next(it).base());
  }

  /// Would from->to close a combinational cycle? (from reachable from to)
  bool would_loop(CellId from, CellId to) const {
    if (!nl_->is_combinational(from)) return false;
    if (from == to) return true;
    if (++epoch_ == 0) {  // epoch wrapped: old stamps are ambiguous, reset
      std::fill(mark_.begin(), mark_.end(), 0);
      epoch_ = 1;
    }
    stack_.clear();
    stack_.push_back(to);
    mark_[to] = epoch_;
    while (!stack_.empty()) {
      const CellId cur = stack_.back();
      stack_.pop_back();
      if (!nl_->is_combinational(cur)) continue;
      for (const CellId nxt : adj_[cur]) {
        if (nxt == from) return true;
        if (mark_[nxt] != epoch_) {
          mark_[nxt] = epoch_;
          stack_.push_back(nxt);
        }
      }
    }
    return false;
  }

 private:
  const Netlist* nl_;
  std::vector<std::vector<CellId>> adj_;
  mutable std::vector<std::uint32_t> mark_;  ///< visited iff == epoch_
  mutable std::uint32_t epoch_ = 0;
  mutable std::vector<CellId> stack_;
};

Point frag_anchor(const Fragment& f) {
  return f.vpins.empty() ? f.anchor : f.vpins.front().pos;
}

/// Largest Manhattan offset of any vpin from the fragment's indexed anchor.
/// The index stores one point per fragment; this slack restores a valid
/// distance lower bound for the whole vpin cloud.
double vpin_spread(const Fragment& f) {
  double r = 0.0;
  const Point a = frag_anchor(f);
  for (const auto& v : f.vpins) r = std::max(r, util::manhattan(a, v.pos));
  return r;
}

/// Matching cost between a driver fragment and a sink fragment: closest
/// vpin-pair Manhattan distance, discounted when the dangling-wire stubs
/// point at each other (hint (iv) of [5] — the BEOL continuation of a wire
/// usually proceeds in the direction its FEOL stub was heading).
double pair_cost(const Netlist& feol, const Fragment& drv,
                 const Fragment& snk, const ProximityOptions& opts) {
  const bool use_dir = opts.use_direction;
  const double dir_bonus = opts.direction_bonus;
  // Drive-strength prior: penalize matches whose distance disagrees with
  // what the driver's strength suggests (hint discussed in paper Sec. 3).
  double prior_factor = 1.0;
  if (opts.use_strength_prior) {
    const auto& t = feol.type_of(feol.net(drv.net).driver);
    const double expected =
        opts.strength_prior_scale_um / std::max(t.drive_res_kohm, 0.5);
    const double actual =
        util::manhattan(frag_anchor(drv), frag_anchor(snk)) + 1.0;
    const double mismatch = std::abs(std::log((actual + 1.0) / (expected + 1.0)));
    prior_factor += opts.strength_prior_weight * std::min(mismatch, 2.0);
  }
  // Hint (i): gate placement proximity (anchor = driver/sink gate location).
  const double anchor_term =
      opts.anchor_weight * util::manhattan(drv.anchor, snk.anchor);
  double best = util::manhattan(frag_anchor(drv), frag_anchor(snk)) + 1.0;
  auto consider = [&](const core::VPin& d, const core::VPin& s) {
    const double vx = s.pos.x - d.pos.x;
    const double vy = s.pos.y - d.pos.y;
    const double dist = std::abs(vx) + std::abs(vy) + 1.0;
    const double norm = std::sqrt(vx * vx + vy * vy) + 1e-9;
    double factor = 1.0;
    if (use_dir) {
      const double half = (1.0 - dir_bonus) / 2.0;
      if (d.dir_dx != 0 || d.dir_dy != 0) {
        const double cosd = (vx * d.dir_dx + vy * d.dir_dy) / norm;
        factor -= half * std::max(0.0, cosd);
      }
      if (s.dir_dx != 0 || s.dir_dy != 0) {
        const double coss = (-vx * s.dir_dx - vy * s.dir_dy) / norm;
        factor -= half * std::max(0.0, coss);
      }
      // Track alignment: preferred-direction BEOL layers keep one grid
      // coordinate constant, so a partner sharing the vpin's routing track
      // is far more plausible than an off-track one (a straight bridge beats
      // an L- or Z-shaped one).
      if (d.grid.x == s.grid.x || d.grid.y == s.grid.y)
        factor *= opts.track_bonus;
    }
    best = std::min(best, dist * factor);
  };
  if (drv.vpins.empty() || snk.vpins.empty())
    return best * prior_factor + anchor_term;
  for (const auto& dv : drv.vpins)
    for (const auto& sv : snk.vpins) consider(dv, sv);
  return best * prior_factor + anchor_term;
}

/// One candidate pairing; per-sink lists are sorted by (cost, di) — the
/// explicit driver-index tie-break keeps the indexed and brute-force paths
/// (and reruns on any thread count) bit-identical.
struct Cand {
  double cost;
  std::size_t di;

  friend bool operator<(const Cand& a, const Cand& b) {
    return a.cost < b.cost || (a.cost == b.cost && a.di < b.di);
  }
};

/// Ranks driver fragments per sink fragment by pair_cost. Large instances
/// go through a GridIndex holding every driver-fragment vpin (plus the
/// anchor of vpin-less fragments) tagged with its owning driver; a query
/// walks expanding rings from the sink's anchor and prunes with the exact
/// lower bound
///   pair_cost >= (max(0, vpin_dist - sink vpin spread) + 1) * cost_floor,
/// valid because every distance pair_cost can be built from starts at one
/// of the driver's indexed points. The query stops once every unvisited
/// driver is provably worse than the current k-th candidate, so the result
/// equals the brute-force scan. Small instances (or exotic negative
/// weights that void the bound) use brute force directly. Immutable after
/// construction: concurrent cheapest()/ranking() calls from the
/// candidate-generation shards are safe (per-thread visit scratch).
class CandidateFinder {
 public:
  CandidateFinder(const Netlist& feol, const SplitView& view,
                  const std::vector<std::size_t>& drv_frag_ids,
                  const ProximityOptions& opts)
      : feol_(&feol), view_(&view), drv_ids_(&drv_frag_ids), opts_(&opts) {
    const std::size_t nd = drv_frag_ids.size();
    cost_floor_ = 1.0;
    if (opts.use_direction) {
      // The stub cosine is taken against an unnormalized direction vector
      // whose components are in {-1, 0, 1}, so it reaches sqrt(2) for
      // diagonal stubs — the per-endpoint discount can exceed `half`.
      // factor >= 1 - 2*half*sqrt(2) = 1 - (1-bonus)*sqrt(2) is the
      // universally sound floor; when it is <= 0 (direction_bonus below
      // ~0.3) the use_index_ guard falls back to brute force.
      const double dir_min =
          1.0 - (1.0 - std::min(1.0, opts.direction_bonus)) * std::sqrt(2.0);
      cost_floor_ = std::max(0.0, dir_min) * std::min(1.0, opts.track_bonus);
    }
    if (opts.use_strength_prior)
      cost_floor_ *=
          std::min(1.0, 1.0 + 2.0 * opts.strength_prior_weight);
    use_index_ = nd >= static_cast<std::size_t>(
                           std::max(1, opts.index_min_drivers)) &&
                 cost_floor_ > 0.0 && opts.anchor_weight >= 0.0;
    if (!use_index_) return;
    std::vector<Point> points;
    for (std::size_t di = 0; di < nd; ++di) {
      const Fragment& f = view.fragments[drv_frag_ids[di]];
      if (f.vpins.empty()) {
        points.push_back(f.anchor);
        owner_.push_back(di);
      } else {
        for (const auto& v : f.vpins) {
          points.push_back(v.pos);
          owner_.push_back(di);
        }
      }
    }
    index_ = GridIndex(points, opts.index_target_per_cell);
  }

  bool indexed() const { return use_index_; }

  /// The k cheapest drivers for `sf`, ascending by (cost, di).
  std::vector<Cand> cheapest(const Fragment& sf, std::size_t k) const {
    const std::size_t nd = drv_ids_->size();
    k = std::min(k, nd);
    if (k == 0) return {};
    if (!use_index_ || k == nd) {
      std::vector<Cand> all;
      all.reserve(nd);
      for (std::size_t di = 0; di < nd; ++di)
        all.push_back({cost_of(sf, di), di});
      std::partial_sort(all.begin(),
                        all.begin() + static_cast<std::ptrdiff_t>(k),
                        all.end(),
                        std::less<Cand>());
      all.resize(k);
      return all;
    }
    // Per-worker scratch deduplicating multi-vpin drivers within a query.
    // Purely an intra-query visited set — nothing carries across queries,
    // so results stay independent of which thread (or epoch) served them.
    static thread_local std::vector<std::uint32_t> mark;
    static thread_local std::uint32_t epoch = 0;
    if (mark.size() < nd) mark.assign(nd, 0);
    if (++epoch == 0) {
      std::fill(mark.begin(), mark.end(), 0);
      epoch = 1;
    }
    const Point q = frag_anchor(sf);
    const double slack = vpin_spread(sf);
    // Max-heap of the k best seen; heap.front() is the current worst kept.
    std::vector<Cand> heap;
    heap.reserve(k + 1);
    const auto worse = [](const Cand& a, const Cand& b) { return a < b; };
    index_.for_each_ring(
        q,
        [&](std::size_t pt) {
          const std::size_t di = owner_[pt];
          if (mark[di] == epoch) return;  // another vpin already scored it
          mark[di] = epoch;
          const Cand c{cost_of(sf, di), di};
          if (heap.size() < k) {
            heap.push_back(c);
            std::push_heap(heap.begin(), heap.end(), worse);
          } else if (c < heap.front()) {
            std::pop_heap(heap.begin(), heap.end(), worse);
            heap.back() = c;
            std::push_heap(heap.begin(), heap.end(), worse);
          }
        },
        [&](double lb) {
          if (heap.size() < k) return true;
          const double floor =
              (std::max(0.0, lb - slack) + 1.0) * cost_floor_;
          // `<=`: an unvisited driver at exactly the k-th cost may still win
          // the (cost, di) tie-break.
          return floor <= heap.front().cost;
        });
    std::sort(heap.begin(), heap.end());
    return heap;
  }

  /// All drivers for `sf`, ascending by (cost, di) — the repair fallback.
  /// (k == nd takes cheapest()'s brute branch, so both orderings share one
  /// comparator by construction.)
  std::vector<Cand> ranking(const Fragment& sf) const {
    return cheapest(sf, drv_ids_->size());
  }

 private:
  double cost_of(const Fragment& sf, std::size_t di) const {
    return pair_cost(*feol_, view_->fragments[(*drv_ids_)[di]], sf, *opts_);
  }

  const Netlist* feol_;
  const SplitView* view_;
  const std::vector<std::size_t>* drv_ids_;
  const ProximityOptions* opts_;
  GridIndex index_;
  std::vector<std::size_t> owner_;  ///< indexed point -> driver index
  double cost_floor_ = 1.0;
  bool use_index_ = false;
};

}  // namespace

ProximityResult proximity_attack(const Netlist& feol, const Netlist& original,
                                 const place::Placement& pl,
                                 const SplitView& view,
                                 const core::SwapLedger* ledger,
                                 const ProximityOptions& opts) {
  (void)pl;  // fragment anchors already carry the physical positions
  ProximityResult result;

  const auto drv_frag_ids = view.open_driver_fragments();
  const auto snk_frag_ids = view.open_sink_fragments();
  const std::size_t nd = drv_frag_ids.size();
  const std::size_t ns = snk_frag_ids.size();

  // One pool for every sharded phase (candidate generation, repair
  // orderings); fresh-pool-per-batch would violate thread_pool.hpp's
  // hot-loop guidance. Serial when jobs resolves to 1.
  const std::size_t jobs = util::resolve_jobs(opts.jobs, std::max(ns, nd));
  std::optional<util::ThreadPool> pool;
  if (jobs > 1) pool.emplace(jobs);
  const auto pfor = [&](std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
    if (pool && n > 1)
      pool->parallel_for(n, fn);
    else
      for (std::size_t i = 0; i < n; ++i) fn(i);
  };

  // Sink pins the attacker must recover (everything else is FEOL-visible).
  // Sorted flat vector: queried in the per-driver budget loops and the
  // scoring pass, where a node-based set's allocations would dominate.
  std::vector<std::pair<CellId, int>> open_pins;
  for (const auto fi : snk_frag_ids)
    for (const auto& s : view.fragments[fi].sinks)
      open_pins.push_back({s.cell, s.pin});
  std::sort(open_pins.begin(), open_pins.end());
  open_pins.erase(std::unique(open_pins.begin(), open_pins.end()),
                  open_pins.end());
  const auto pin_open = [&](CellId cell, int pin) {
    return std::binary_search(open_pins.begin(), open_pins.end(),
                              std::make_pair(cell, pin));
  };

  Hypothesis hyp(feol);
  for (NetId n = 0; n < feol.num_nets(); ++n) {
    const auto& net = feol.net(n);
    for (const auto& s : net.sinks)
      if (!pin_open(s.cell, s.pin)) hyp.add_edge(net.driver, s.cell);
  }

  // Driver fanout capacity from the load budget (hint (iii)).
  auto sink_caps = [&](const Fragment& sf) {
    double c = 0;
    for (const auto& s : sf.sinks) c += feol.type_of(s.cell).input_cap_ff;
    return std::max(c, 0.1);
  };
  std::vector<int> drv_capacity(nd, static_cast<int>(ns));
  if (opts.use_load) {
    // Average open-sink-fragment load translates budget into a count.
    double avg_frag_cap = 0.0;
    for (const auto fi : snk_frag_ids)
      avg_frag_cap += sink_caps(view.fragments[fi]);
    avg_frag_cap = ns > 0 ? avg_frag_cap / static_cast<double>(ns) : 1.0;
    for (std::size_t di = 0; di < nd; ++di) {
      const Fragment& f = view.fragments[drv_frag_ids[di]];
      const auto& t = feol.type_of(feol.net(f.net).driver);
      double budget =
          opts.load_budget_ff_per_ks / std::max(t.drive_res_kohm, 0.5);
      for (const auto& s : feol.net(f.net).sinks)
        if (!pin_open(s.cell, s.pin))
          budget -= feol.type_of(s.cell).input_cap_ff;
      drv_capacity[di] = std::max(1, static_cast<int>(budget / avg_frag_cap));
    }
  }

  // Candidate edges: the k cheapest driver fragments per sink fragment,
  // queried through the spatial index (brute force for small nd) and
  // sharded per sink — each query writes only its own slot, so the lists
  // are identical for any jobs value.
  const CandidateFinder finder(feol, view, drv_frag_ids, opts);
  const std::size_t k =
      opts.candidates_per_sink <= 0
          ? nd
          : std::min(nd, static_cast<std::size_t>(opts.candidates_per_sink));
  std::vector<std::vector<Cand>> per_sink(ns);
  pfor(ns, [&](std::size_t si) {
    per_sink[si] = finder.cheapest(view.fragments[snk_frag_ids[si]], k);
  });

  // Min-cost flow: source -> sink-fragments (cap 1) -> candidate drivers
  // (cap 1 each edge) -> drivers -> target (cap = fanout budget).
  std::vector<std::size_t> assigned(ns, static_cast<std::size_t>(-1));
  if (nd > 0 && ns > 0) {
    const int S = 0;
    const int T = 1;
    const auto sink_node = [&](std::size_t si) { return 2 + static_cast<int>(si); };
    const auto drv_node = [&](std::size_t di) {
      return 2 + static_cast<int>(ns) + static_cast<int>(di);
    };
    MinCostFlow flow(2 + static_cast<int>(ns + nd));
    for (std::size_t si = 0; si < ns; ++si) flow.add_edge(S, sink_node(si), 1, 0);
    for (std::size_t di = 0; di < nd; ++di)
      flow.add_edge(drv_node(di), T, drv_capacity[di], 0);
    struct EdgeRef {
      int edge;
      std::size_t si, di;
      double cost;
    };
    std::vector<EdgeRef> refs;
    for (std::size_t si = 0; si < ns; ++si)
      for (const auto& c : per_sink[si]) {
        // Integer-exact edge cost (the MCMF warm-start contract,
        // ARCHITECTURE.md): the geometric cost quantized to 1/64 um in
        // the high bits, 28 pseudorandom per-edge bits in the low bits.
        // Every value the solver then forms — costs, potentials, path
        // sums — is an integer below 2^53, so double arithmetic is EXACT
        // and the cold and warm solver paths make identical comparisons;
        // and by the isolation lemma the random low bits make the
        // min-cost assignment UNIQUE (w.p. 1 - edges/2^28) — equal-cost
        // optima are exactly where the two paths could legitimately land
        // on different (equally good) assignments, and the attack
        // promises they never do. The quantization (0.016 um) and the
        // tie-break (1/64-um ulp) are both far below any real geometric
        // preference.
        const double base =
            std::min(std::round(c.cost * 64.0), 4194304.0 /* 2^22 */);
        std::uint64_t state =
            0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(refs.size()) + 1);
        const double tie =
            static_cast<double>(util::splitmix64(state) >> 36);  // 28 bits
        const double cost = base * 268435456.0 /* 2^28 */ + tie;
        refs.push_back(
            {flow.add_edge(sink_node(si), drv_node(c.di), 1, cost), si,
             c.di, cost});
      }
    flow.solve(S, T, static_cast<int>(ns));
    auto commit = [&](std::size_t si, std::size_t di) {
      assigned[si] = di;
      const CellId drv =
          feol.net(view.fragments[drv_frag_ids[di]].net).driver;
      for (const auto& s : view.fragments[snk_frag_ids[si]].sinks)
        hyp.add_edge(drv, s.cell);
      ++result.matched;
    };
    auto creates_loop = [&](std::size_t si, std::size_t di) {
      if (!opts.use_loops) return false;
      const CellId drv =
          feol.net(view.fragments[drv_frag_ids[di]].net).driver;
      for (const auto& s : view.fragments[snk_frag_ids[si]].sinks)
        if (hyp.would_loop(drv, s.cell)) return true;
      return false;
    };
    // Loop repair through the solver itself: commit the flow's assignment
    // in ascending (cost, si, di) order; edges that would close a
    // combinational cycle are removed from the network and the flow
    // re-solved — warm by default (only the removed arcs' imbalances
    // re-route, the potentials carry over), or as a cold rebuild of the
    // reduced network when opts.mcmf_warm is off. The perturbed costs
    // make every round's optimum unique, so both paths walk identical
    // rounds and land on the identical assignment (rig-enforced in
    // tests/test_attack.cpp). Rounds are INCREMENTAL: commitments whose
    // assignment the flow kept stay in the hypothesis untouched; only
    // sinks the re-solve moved get uncommitted, re-checked and
    // re-committed — so a round costs O(displaced) loop checks, not
    // O(sinks). Each non-final round removes at least one edge, so the
    // loop terminates.
    std::vector<char> removed(refs.size(), 0);
    std::vector<std::size_t> chosen;
    std::vector<std::size_t> current(ns, static_cast<std::size_t>(-1));
    for (;;) {
      chosen.clear();
      for (std::size_t i = 0; i < refs.size(); ++i)
        if (!removed[i] && flow.flow_on(refs[i].edge) > 0)
          chosen.push_back(i);
      std::sort(chosen.begin(), chosen.end(),
                [&](std::size_t a, std::size_t b) {
                  const EdgeRef& x = refs[a];
                  const EdgeRef& y = refs[b];
                  if (x.cost != y.cost) return x.cost < y.cost;
                  if (x.si != y.si) return x.si < y.si;
                  return x.di < y.di;
                });
      std::fill(current.begin(), current.end(),
                static_cast<std::size_t>(-1));
      for (const std::size_t i : chosen) current[refs[i].si] = refs[i].di;
      // Uncommit the sinks the re-solve moved (or dropped); survivors keep
      // their hypothesis edges so the loop checks below run against
      // exactly the standing commitments.
      for (std::size_t si = 0; si < ns; ++si) {
        if (assigned[si] == static_cast<std::size_t>(-1) ||
            assigned[si] == current[si])
          continue;
        const CellId drv =
            feol.net(view.fragments[drv_frag_ids[assigned[si]]].net).driver;
        for (const auto& s : view.fragments[snk_frag_ids[si]].sinks)
          hyp.remove_edge(drv, s.cell);
        assigned[si] = static_cast<std::size_t>(-1);
      }
      std::vector<std::size_t> bad;
      for (const std::size_t i : chosen) {
        const EdgeRef& r = refs[i];
        if (assigned[r.si] == r.di) continue;  // kept from an earlier round
        if (creates_loop(r.si, r.di)) {
          bad.push_back(i);
          continue;
        }
        assigned[r.si] = r.di;
        const CellId drv =
            feol.net(view.fragments[drv_frag_ids[r.di]].net).driver;
        for (const auto& s : view.fragments[snk_frag_ids[r.si]].sinks)
          hyp.add_edge(drv, s.cell);
      }
      if (getenv("SM_MCMF_DEBUG")) {
        std::uint64_t h = 1469598103934665603ull;
        for (const std::size_t i : chosen) {
          h = (h ^ refs[i].si) * 1099511628211ull;
          h = (h ^ refs[i].di) * 1099511628211ull;
        }
        fprintf(stderr,
                "round: chosen=%zu bad=%zu flow=%d cost=%.15f hash=%016llx\n",
                chosen.size(), bad.size(), flow.flow(), flow.cost(),
                static_cast<unsigned long long>(h));
      }
      if (bad.empty()) break;  // commits stand
      for (const std::size_t i : bad) removed[i] = 1;
      if (opts.mcmf_warm) {
        for (const std::size_t i : bad) flow.remove_edge(refs[i].edge);
        flow.resolve();
      } else {
        flow = MinCostFlow(2 + static_cast<int>(ns + nd));
        for (std::size_t si = 0; si < ns; ++si)
          flow.add_edge(S, sink_node(si), 1, 0);
        for (std::size_t di = 0; di < nd; ++di)
          flow.add_edge(drv_node(di), T, drv_capacity[di], 0);
        for (std::size_t i = 0; i < refs.size(); ++i)
          if (!removed[i])
            refs[i].edge = flow.add_edge(sink_node(refs[i].si),
                                         drv_node(refs[i].di), 1,
                                         refs[i].cost);
        flow.solve(S, T, static_cast<int>(ns));
      }
    }
    for (std::size_t si = 0; si < ns; ++si)
      if (assigned[si] != static_cast<std::size_t>(-1)) ++result.matched;
    // Loop/completion repair, stage 1: walk each unassigned sink's cached
    // candidate list — it already holds the k cheapest drivers in commit
    // order, so no pair_cost is recomputed here.
    std::vector<std::size_t> exhausted;
    for (std::size_t si = 0; si < ns; ++si) {
      if (assigned[si] != static_cast<std::size_t>(-1)) continue;
      bool done = false;
      for (const auto& c : per_sink[si]) {
        if (creates_loop(si, c.di)) continue;
        commit(si, c.di);
        done = true;
        break;
      }
      if (!done) exhausted.push_back(si);
    }
    // Stage 2 (rare): sinks whose every cached candidate closes a loop get
    // the full cost ranking — computed in parallel (pure function of the
    // view), then committed serially in sink order.
    if (!exhausted.empty()) {
      std::vector<std::vector<Cand>> full(exhausted.size());
      pfor(exhausted.size(), [&](std::size_t j) {
        full[j] = finder.ranking(view.fragments[snk_frag_ids[exhausted[j]]]);
      });
      for (std::size_t j = 0; j < exhausted.size(); ++j) {
        const std::size_t si = exhausted[j];
        for (const auto& c : full[j]) {
          if (creates_loop(si, c.di)) continue;
          commit(si, c.di);
          break;
        }
      }
    }
  }

  // Build the recovered netlist and score it.
  Netlist recovered = feol.clone();
  std::map<std::pair<CellId, int>, NetId> truth;
  if (ledger != nullptr)
    for (const auto& [net, sink] : ledger->true_connections())
      truth[{sink.cell, sink.pin}] = net;

  for (std::size_t si = 0; si < ns; ++si) {
    const Fragment& sf = view.fragments[snk_frag_ids[si]];
    const std::size_t di = assigned[si];
    for (const auto& s : sf.sinks) {
      ++result.open_sinks;
      const NetId true_net =
          original.cell(s.cell).inputs.at(static_cast<std::size_t>(s.pin));
      NetId guess = netlist::kInvalidNet;
      if (di != static_cast<std::size_t>(-1)) {
        guess = view.fragments[drv_frag_ids[di]].net;
        recovered.reconnect_sink(s.cell, s.pin, guess);
      }
      if (guess == true_net) ++result.correct;
      const auto it = truth.find({s.cell, s.pin});
      if (it != truth.end()) {
        ++result.protected_total;
        if (guess == it->second) ++result.protected_correct;
      }
    }
  }
  // Protected connections fully visible in the FEOL are "recovered" as the
  // erroneous wiring — count them (they score as correct only if the
  // erroneous connection happens to equal the original one, which swaps
  // preclude).
  for (const auto& [key, true_net] : truth) {
    if (pin_open(key.first, key.second)) continue;
    const NetId visible = feol.cell(key.first).inputs.at(
        static_cast<std::size_t>(key.second));
    ++result.protected_total;
    if (visible == true_net) ++result.protected_correct;
  }

  recovered.validate();
  if (netlist::is_acyclic(recovered)) {
    result.rates = sim::compare(original, recovered, opts.eval_patterns,
                                opts.seed, opts.jobs, opts.sim_lanes);
  } else {
    // Should not happen with loop checks on; report total failure honestly.
    result.rates.oer = 1.0;
    result.rates.hd = 0.5;
    result.rates.patterns = 0;
  }
  if (opts.keep_recovered) result.recovered.emplace(std::move(recovered));
  return result;
}

}  // namespace sm::attack
