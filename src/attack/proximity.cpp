#include "attack/proximity.hpp"

#include "attack/mcmf.hpp"
#include "netlist/topo.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace sm::attack {

using core::Fragment;
using core::SplitView;
using netlist::CellId;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sink;
using util::Point;

namespace {

/// Hypothesis connectivity the attacker grows: visible FEOL connections plus
/// committed guesses. Supports incremental combinational-loop checks.
class Hypothesis {
 public:
  explicit Hypothesis(const Netlist& nl) : nl_(&nl) {
    adj_.resize(nl.num_cells());
  }

  void add_edge(CellId from, CellId to) { adj_[from].push_back(to); }

  /// Would from->to close a combinational cycle? (from reachable from to)
  bool would_loop(CellId from, CellId to) const {
    if (!nl_->is_combinational(from)) return false;
    if (from == to) return true;
    std::vector<CellId> stack{to};
    std::set<CellId> seen{to};
    while (!stack.empty()) {
      const CellId cur = stack.back();
      stack.pop_back();
      if (!nl_->is_combinational(cur)) continue;
      for (const CellId nxt : adj_[cur]) {
        if (nxt == from) return true;
        if (seen.insert(nxt).second) stack.push_back(nxt);
      }
    }
    return false;
  }

 private:
  const Netlist* nl_;
  std::vector<std::vector<CellId>> adj_;
};

Point frag_anchor(const Fragment& f) {
  return f.vpins.empty() ? f.anchor : f.vpins.front().pos;
}

/// Matching cost between a driver fragment and a sink fragment: closest
/// vpin-pair Manhattan distance, discounted when the dangling-wire stubs
/// point at each other (hint (iv) of [5] — the BEOL continuation of a wire
/// usually proceeds in the direction its FEOL stub was heading).
double pair_cost(const Netlist& feol, const Fragment& drv,
                 const Fragment& snk, const ProximityOptions& opts) {
  const bool use_dir = opts.use_direction;
  const double dir_bonus = opts.direction_bonus;
  // Drive-strength prior: penalize matches whose distance disagrees with
  // what the driver's strength suggests (hint discussed in paper Sec. 3).
  double prior_factor = 1.0;
  if (opts.use_strength_prior) {
    const auto& t = feol.type_of(feol.net(drv.net).driver);
    const double expected =
        opts.strength_prior_scale_um / std::max(t.drive_res_kohm, 0.5);
    const double actual =
        util::manhattan(frag_anchor(drv), frag_anchor(snk)) + 1.0;
    const double mismatch = std::abs(std::log((actual + 1.0) / (expected + 1.0)));
    prior_factor += opts.strength_prior_weight * std::min(mismatch, 2.0);
  }
  // Hint (i): gate placement proximity (anchor = driver/sink gate location).
  const double anchor_term =
      opts.anchor_weight * util::manhattan(drv.anchor, snk.anchor);
  double best = util::manhattan(frag_anchor(drv), frag_anchor(snk)) + 1.0;
  auto consider = [&](const core::VPin& d, const core::VPin& s) {
    const double vx = s.pos.x - d.pos.x;
    const double vy = s.pos.y - d.pos.y;
    const double dist = std::abs(vx) + std::abs(vy) + 1.0;
    const double norm = std::sqrt(vx * vx + vy * vy) + 1e-9;
    double factor = 1.0;
    if (use_dir) {
      const double half = (1.0 - dir_bonus) / 2.0;
      if (d.dir_dx != 0 || d.dir_dy != 0) {
        const double cosd = (vx * d.dir_dx + vy * d.dir_dy) / norm;
        factor -= half * std::max(0.0, cosd);
      }
      if (s.dir_dx != 0 || s.dir_dy != 0) {
        const double coss = (-vx * s.dir_dx - vy * s.dir_dy) / norm;
        factor -= half * std::max(0.0, coss);
      }
      // Track alignment: preferred-direction BEOL layers keep one grid
      // coordinate constant, so a partner sharing the vpin's routing track
      // is far more plausible than an off-track one (a straight bridge beats
      // an L- or Z-shaped one).
      if (d.grid.x == s.grid.x || d.grid.y == s.grid.y)
        factor *= opts.track_bonus;
    }
    best = std::min(best, dist * factor);
  };
  if (drv.vpins.empty() || snk.vpins.empty())
    return best * prior_factor + anchor_term;
  for (const auto& dv : drv.vpins)
    for (const auto& sv : snk.vpins) consider(dv, sv);
  return best * prior_factor + anchor_term;
}

}  // namespace

ProximityResult proximity_attack(const Netlist& feol, const Netlist& original,
                                 const place::Placement& pl,
                                 const SplitView& view,
                                 const core::SwapLedger* ledger,
                                 const ProximityOptions& opts) {
  (void)pl;  // fragment anchors already carry the physical positions
  ProximityResult result;

  const auto drv_frag_ids = view.open_driver_fragments();
  const auto snk_frag_ids = view.open_sink_fragments();
  const std::size_t nd = drv_frag_ids.size();
  const std::size_t ns = snk_frag_ids.size();

  // Sink pins the attacker must recover (everything else is FEOL-visible).
  std::set<std::pair<CellId, int>> open_pins;
  for (const auto fi : snk_frag_ids)
    for (const auto& s : view.fragments[fi].sinks)
      open_pins.insert({s.cell, s.pin});

  Hypothesis hyp(feol);
  for (NetId n = 0; n < feol.num_nets(); ++n) {
    const auto& net = feol.net(n);
    for (const auto& s : net.sinks)
      if (!open_pins.count({s.cell, s.pin})) hyp.add_edge(net.driver, s.cell);
  }

  // Driver fanout capacity from the load budget (hint (iii)).
  auto sink_caps = [&](const Fragment& sf) {
    double c = 0;
    for (const auto& s : sf.sinks) c += feol.type_of(s.cell).input_cap_ff;
    return std::max(c, 0.1);
  };
  std::vector<int> drv_capacity(nd, static_cast<int>(ns));
  if (opts.use_load) {
    // Average open-sink-fragment load translates budget into a count.
    double avg_frag_cap = 0.0;
    for (const auto fi : snk_frag_ids)
      avg_frag_cap += sink_caps(view.fragments[fi]);
    avg_frag_cap = ns > 0 ? avg_frag_cap / static_cast<double>(ns) : 1.0;
    for (std::size_t di = 0; di < nd; ++di) {
      const Fragment& f = view.fragments[drv_frag_ids[di]];
      const auto& t = feol.type_of(feol.net(f.net).driver);
      double budget =
          opts.load_budget_ff_per_ks / std::max(t.drive_res_kohm, 0.5);
      for (const auto& s : feol.net(f.net).sinks)
        if (!open_pins.count({s.cell, s.pin}))
          budget -= feol.type_of(s.cell).input_cap_ff;
      drv_capacity[di] = std::max(1, static_cast<int>(budget / avg_frag_cap));
    }
  }

  // Candidate edges: k cheapest driver fragments per sink fragment.
  struct Cand {
    double cost;
    std::size_t si, di;
  };
  std::vector<std::vector<Cand>> per_sink(ns);
  for (std::size_t si = 0; si < ns; ++si) {
    const Fragment& sf = view.fragments[snk_frag_ids[si]];
    auto& local = per_sink[si];
    local.reserve(nd);
    for (std::size_t di = 0; di < nd; ++di) {
      const Fragment& df = view.fragments[drv_frag_ids[di]];
      local.push_back({pair_cost(feol, df, sf, opts), si, di});
    }
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(opts.candidates_per_sink), local.size());
    std::partial_sort(local.begin(),
                      local.begin() + static_cast<std::ptrdiff_t>(k),
                      local.end(),
                      [](const Cand& a, const Cand& b) { return a.cost < b.cost; });
    local.resize(k);
  }

  // Min-cost flow: source -> sink-fragments (cap 1) -> candidate drivers
  // (cap 1 each edge) -> drivers -> target (cap = fanout budget).
  std::vector<std::size_t> assigned(ns, static_cast<std::size_t>(-1));
  if (nd > 0 && ns > 0) {
    const int S = 0;
    const int T = 1;
    const auto sink_node = [&](std::size_t si) { return 2 + static_cast<int>(si); };
    const auto drv_node = [&](std::size_t di) {
      return 2 + static_cast<int>(ns) + static_cast<int>(di);
    };
    MinCostFlow flow(2 + static_cast<int>(ns + nd));
    for (std::size_t si = 0; si < ns; ++si) flow.add_edge(S, sink_node(si), 1, 0);
    for (std::size_t di = 0; di < nd; ++di)
      flow.add_edge(drv_node(di), T, drv_capacity[di], 0);
    struct EdgeRef {
      int edge;
      std::size_t si, di;
      double cost;
    };
    std::vector<EdgeRef> refs;
    for (std::size_t si = 0; si < ns; ++si)
      for (const auto& c : per_sink[si])
        refs.push_back({flow.add_edge(sink_node(si), drv_node(c.di), 1, c.cost),
                        si, c.di, c.cost});
    flow.solve(S, T, static_cast<int>(ns));
    // Extract the assignment, then commit in cost order with loop repair.
    std::vector<EdgeRef> chosen;
    for (const auto& r : refs)
      if (flow.flow_on(r.edge) > 0) chosen.push_back(r);
    std::stable_sort(chosen.begin(), chosen.end(),
                     [](const EdgeRef& a, const EdgeRef& b) {
                       return a.cost < b.cost;
                     });
    auto commit = [&](std::size_t si, std::size_t di) {
      assigned[si] = di;
      const CellId drv =
          feol.net(view.fragments[drv_frag_ids[di]].net).driver;
      for (const auto& s : view.fragments[snk_frag_ids[si]].sinks)
        hyp.add_edge(drv, s.cell);
      ++result.matched;
    };
    auto creates_loop = [&](std::size_t si, std::size_t di) {
      if (!opts.use_loops) return false;
      const CellId drv =
          feol.net(view.fragments[drv_frag_ids[di]].net).driver;
      for (const auto& s : view.fragments[snk_frag_ids[si]].sinks)
        if (hyp.would_loop(drv, s.cell)) return true;
      return false;
    };
    for (const auto& r : chosen) {
      if (creates_loop(r.si, r.di)) continue;  // repaired below
      commit(r.si, r.di);
    }
    // Loop/completion repair: nearest loop-free driver for the rest.
    for (std::size_t si = 0; si < ns; ++si) {
      if (assigned[si] != static_cast<std::size_t>(-1)) continue;
      const Fragment& sf = view.fragments[snk_frag_ids[si]];
      std::vector<std::pair<double, std::size_t>> order;
      for (std::size_t di = 0; di < nd; ++di)
        order.push_back(
            {pair_cost(feol, view.fragments[drv_frag_ids[di]], sf, opts), di});
      std::sort(order.begin(), order.end());
      for (const auto& [cost, di] : order) {
        if (creates_loop(si, di)) continue;
        commit(si, di);
        break;
      }
    }
  }

  // Build the recovered netlist and score it.
  Netlist recovered = feol.clone();
  std::map<std::pair<CellId, int>, NetId> truth;
  if (ledger != nullptr)
    for (const auto& [net, sink] : ledger->true_connections())
      truth[{sink.cell, sink.pin}] = net;

  for (std::size_t si = 0; si < ns; ++si) {
    const Fragment& sf = view.fragments[snk_frag_ids[si]];
    const std::size_t di = assigned[si];
    for (const auto& s : sf.sinks) {
      ++result.open_sinks;
      const NetId true_net =
          original.cell(s.cell).inputs.at(static_cast<std::size_t>(s.pin));
      NetId guess = netlist::kInvalidNet;
      if (di != static_cast<std::size_t>(-1)) {
        guess = view.fragments[drv_frag_ids[di]].net;
        recovered.reconnect_sink(s.cell, s.pin, guess);
      }
      if (guess == true_net) ++result.correct;
      const auto it = truth.find({s.cell, s.pin});
      if (it != truth.end()) {
        ++result.protected_total;
        if (guess == it->second) ++result.protected_correct;
      }
    }
  }
  // Protected connections fully visible in the FEOL are "recovered" as the
  // erroneous wiring — count them (they score as correct only if the
  // erroneous connection happens to equal the original one, which swaps
  // preclude).
  for (const auto& [key, true_net] : truth) {
    if (open_pins.count(key)) continue;
    const NetId visible = feol.cell(key.first).inputs.at(
        static_cast<std::size_t>(key.second));
    ++result.protected_total;
    if (visible == true_net) ++result.protected_correct;
  }

  recovered.validate();
  if (netlist::is_acyclic(recovered)) {
    result.rates =
        sim::compare(original, recovered, opts.eval_patterns, opts.seed);
  } else {
    // Should not happen with loop checks on; report total failure honestly.
    result.rates.oer = 1.0;
    result.rates.hd = 0.5;
    result.rates.patterns = 0;
  }
  return result;
}

}  // namespace sm::attack
