#include "attack/mcmf.hpp"

#include <deque>
#include <limits>

namespace sm::attack {

MinCostFlow::MinCostFlow(int num_nodes) : graph_(static_cast<std::size_t>(num_nodes)) {}

int MinCostFlow::add_edge(int from, int to, int capacity, double cost) {
  const int id = static_cast<int>(edge_ref_.size());
  auto& fwd = graph_[static_cast<std::size_t>(from)];
  auto& bwd = graph_[static_cast<std::size_t>(to)];
  fwd.push_back({to, capacity, cost, static_cast<int>(bwd.size())});
  bwd.push_back({from, 0, -cost, static_cast<int>(fwd.size()) - 1});
  edge_ref_.emplace_back(from, static_cast<int>(fwd.size()) - 1);
  return id;
}

int MinCostFlow::flow_on(int id) const {
  const auto [node, idx] = edge_ref_.at(static_cast<std::size_t>(id));
  const Edge& e = graph_[static_cast<std::size_t>(node)][static_cast<std::size_t>(idx)];
  // Residual of the reverse edge equals the pushed flow.
  return graph_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)].cap;
}

std::pair<int, double> MinCostFlow::solve(int s, int t, int max_flow) {
  const int n = static_cast<int>(graph_.size());
  int flow = 0;
  double cost = 0;
  while (flow < max_flow) {
    // SPFA shortest path on residual graph (costs may be negative on
    // residual arcs; SPFA handles that without potentials).
    std::vector<double> dist(static_cast<std::size_t>(n),
                             std::numeric_limits<double>::infinity());
    std::vector<int> prev_node(static_cast<std::size_t>(n), -1);
    std::vector<int> prev_edge(static_cast<std::size_t>(n), -1);
    std::vector<bool> in_queue(static_cast<std::size_t>(n), false);
    std::deque<int> queue;
    dist[static_cast<std::size_t>(s)] = 0;
    queue.push_back(s);
    in_queue[static_cast<std::size_t>(s)] = true;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      in_queue[static_cast<std::size_t>(u)] = false;
      for (std::size_t i = 0; i < graph_[static_cast<std::size_t>(u)].size(); ++i) {
        const Edge& e = graph_[static_cast<std::size_t>(u)][i];
        if (e.cap <= 0) continue;
        const double nd = dist[static_cast<std::size_t>(u)] + e.cost;
        if (nd + 1e-12 < dist[static_cast<std::size_t>(e.to)]) {
          dist[static_cast<std::size_t>(e.to)] = nd;
          prev_node[static_cast<std::size_t>(e.to)] = u;
          prev_edge[static_cast<std::size_t>(e.to)] = static_cast<int>(i);
          if (!in_queue[static_cast<std::size_t>(e.to)]) {
            in_queue[static_cast<std::size_t>(e.to)] = true;
            queue.push_back(e.to);
          }
        }
      }
    }
    if (prev_node[static_cast<std::size_t>(t)] < 0) break;  // no augmenting path
    // Bottleneck along the path.
    int push = max_flow - flow;
    for (int v = t; v != s;) {
      const int u = prev_node[static_cast<std::size_t>(v)];
      const Edge& e = graph_[static_cast<std::size_t>(u)]
                            [static_cast<std::size_t>(prev_edge[static_cast<std::size_t>(v)])];
      push = std::min(push, e.cap);
      v = u;
    }
    for (int v = t; v != s;) {
      const int u = prev_node[static_cast<std::size_t>(v)];
      Edge& e = graph_[static_cast<std::size_t>(u)]
                      [static_cast<std::size_t>(prev_edge[static_cast<std::size_t>(v)])];
      e.cap -= push;
      graph_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)].cap += push;
      v = u;
    }
    flow += push;
    cost += dist[static_cast<std::size_t>(t)] * push;
  }
  return {flow, cost};
}

}  // namespace sm::attack
