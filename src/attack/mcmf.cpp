#include "attack/mcmf.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sm::attack {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MinCostFlow::MinCostFlow(int num_nodes)
    : adj_(static_cast<std::size_t>(num_nodes)),
      pi_(static_cast<std::size_t>(num_nodes), 0.0),
      excess_(static_cast<std::size_t>(num_nodes), 0),
      dist_(static_cast<std::size_t>(num_nodes), kInf),
      prev_arc_(static_cast<std::size_t>(num_nodes), -1),
      scanned_(static_cast<std::size_t>(num_nodes), 0),
      cur_arc_(static_cast<std::size_t>(num_nodes), 0),
      on_path_(static_cast<std::size_t>(num_nodes), 0) {}

int MinCostFlow::add_edge(int from, int to, int capacity, double cost) {
  const int id = static_cast<int>(arcs_.size() / 2);
  arcs_.push_back({to, capacity, cost});
  arcs_.push_back({from, 0, -cost});
  adj_[static_cast<std::size_t>(from)].push_back(2 * id);
  adj_[static_cast<std::size_t>(to)].push_back(2 * id + 1);
  if (!solved_) {
    if (cost < 0) has_negative_ = true;
  } else if (capacity > 0 && reduced_cost(2 * id) < 0) {
    // A post-solve edge already violating the potentials: saturate it now
    // (the imbalance re-routes on the next resolve()), so every residual
    // arc keeps a non-negative reduced cost.
    saturate(2 * id);
  }
  return id;
}

int MinCostFlow::flow_on(int id) const {
  // Residual of the reverse arc equals the pushed flow.
  return arcs_[static_cast<std::size_t>(2 * id + 1)].cap;
}

double MinCostFlow::cost() const {
  double total = 0;
  for (std::size_t a = 0; a + 1 < arcs_.size(); a += 2)
    total += static_cast<double>(arcs_[a + 1].cap) * arcs_[a].cost;
  return total;
}

double MinCostFlow::reduced_cost(int arc) const {
  const Arc& e = arcs_[static_cast<std::size_t>(arc)];
  const int u = arcs_[static_cast<std::size_t>(arc ^ 1)].to;
  return e.cost + pi_[static_cast<std::size_t>(u)] -
         pi_[static_cast<std::size_t>(e.to)];
}

void MinCostFlow::saturate(int arc) {
  Arc& e = arcs_[static_cast<std::size_t>(arc)];
  const int u = arcs_[static_cast<std::size_t>(arc ^ 1)].to;
  const int c = e.cap;
  arcs_[static_cast<std::size_t>(arc ^ 1)].cap += c;
  e.cap = 0;
  excess_[static_cast<std::size_t>(e.to)] += c;
  excess_[static_cast<std::size_t>(u)] -= c;
}

void MinCostFlow::bellman_ford_init() {
  // Virtual super-source at distance 0 from every node — valid potentials
  // for arbitrary (possibly disconnected) graphs with no negative cycle.
  const std::size_t n = adj_.size();
  std::vector<double>& dist = pi_;  // becomes the potential directly
  std::fill(dist.begin(), dist.end(), 0.0);
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (std::size_t a = 0; a < arcs_.size(); ++a) {
      const Arc& e = arcs_[a];
      if (e.cap <= 0) continue;
      const int u = arcs_[a ^ 1].to;
      const double nd = dist[static_cast<std::size_t>(u)] + e.cost;
      if (nd < dist[static_cast<std::size_t>(e.to)]) {
        dist[static_cast<std::size_t>(e.to)] = nd;
        changed = true;
      }
    }
    if (!changed) return;
  }
  throw std::logic_error("MinCostFlow: negative-cost cycle");
}

template <class IsTarget>
int MinCostFlow::dijkstra(const int* sources, int num_sources,
                          IsTarget is_target, bool update_pi) {
  // Reset only what the previous search touched.
  for (const int v : touched_) {
    dist_[static_cast<std::size_t>(v)] = kInf;
    prev_arc_[static_cast<std::size_t>(v)] = -1;
    scanned_[static_cast<std::size_t>(v)] = 0;
  }
  touched_.clear();
  heap_.clear();

  // 4-ary min-heap over (dist, node): pair comparison breaks distance ties
  // toward the lower node index — the pinned cold==warm tie-break.
  const auto sift_up = [&](std::size_t i) {
    const auto item = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!(item < heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = item;
  };
  const auto sift_down = [&](std::size_t i) {
    const auto item = heap_[i];
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= size) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, size);
      for (std::size_t c = first + 1; c < last; ++c)
        if (heap_[c] < heap_[best]) best = c;
      if (!(heap_[best] < item)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = item;
  };
  const auto push = [&](double d, int v) {
    heap_.emplace_back(d, v);
    sift_up(heap_.size() - 1);
  };

  for (int i = 0; i < num_sources; ++i) {
    const int s = sources[i];
    dist_[static_cast<std::size_t>(s)] = 0.0;
    touched_.push_back(s);
    push(0.0, s);
  }

  int found = -1;
  while (!heap_.empty()) {
    const auto [d, u] = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    const auto su = static_cast<std::size_t>(u);
    if (scanned_[su] || d != dist_[su]) continue;  // stale heap entry
    scanned_[su] = 1;
    if (is_target(u)) {
      found = u;
      break;
    }
    for (const int a : adj_[su]) {
      const Arc& e = arcs_[static_cast<std::size_t>(a)];
      if (e.cap <= 0) continue;
      const auto sv = static_cast<std::size_t>(e.to);
      if (scanned_[sv]) continue;
      // Clamp: the potentials keep reduced costs >= 0 exactly in exact
      // arithmetic; floating-point pi updates can leave a -1e-16 residue
      // that would break Dijkstra's scanned-is-final property.
      const double rc = std::max(0.0, e.cost + pi_[su] - pi_[sv]);
      const double nd = d + rc;
      if (nd < dist_[sv]) {
        if (dist_[sv] == kInf) touched_.push_back(e.to);
        dist_[sv] = nd;
        prev_arc_[sv] = a;
        push(nd, e.to);
      }
    }
  }
  if (found < 0) return -1;
  if (update_pi) apply_potentials(found);
  return found;
}

void MinCostFlow::apply_potentials(int target) {
  // Shifted Johnson update: pi[v] += dist[v] - D for scanned nodes only.
  // It differs from the classic capped rule by a uniform -D on every node,
  // which cancels in every reduced cost — and costs O(scanned), not O(n).
  const double target_dist = dist_[static_cast<std::size_t>(target)];
  for (const int v : touched_) {
    const auto sv = static_cast<std::size_t>(v);
    if (scanned_[sv]) pi_[sv] += dist_[sv] - target_dist;
  }
}

int MinCostFlow::blocking_flow(int budget) {
  // Saturate every s->t path of the just-computed shortest length before
  // the potentials move. Admissible arcs are the ones Dijkstra's own
  // arithmetic would re-derive bit-for-bit (dist[u] + rc == dist[v] with
  // both endpoints scanned) — a sub-DAG of the true shortest-path DAG that
  // always contains the predecessor tree, so at least the tree path
  // augments; anything the bitwise test misses is picked up by the next
  // Dijkstra phase at the same distance. DFS with current-arc pointers
  // (Dinic): each retreat permanently advances a pointer, each augment
  // saturates an arc, so the walk is O(arcs + path lengths). on_path_
  // guards the zero-reduced-cost two-cycles a residual graph is full of.
  for (const int v : touched_) {
    cur_arc_[static_cast<std::size_t>(v)] = 0;
    on_path_[static_cast<std::size_t>(v)] = 0;
  }
  int total = 0;
  path_.clear();
  int u = s_;
  on_path_[static_cast<std::size_t>(s_)] = 1;
  while (total < budget) {
    const auto su = static_cast<std::size_t>(u);
    const auto& alist = adj_[su];
    int& ci = cur_arc_[su];
    bool advanced = false;
    while (ci < static_cast<int>(alist.size())) {
      const int a = alist[static_cast<std::size_t>(ci)];
      const Arc& e = arcs_[static_cast<std::size_t>(a)];
      const auto sv = static_cast<std::size_t>(e.to);
      if (e.cap > 0 && scanned_[sv] && !on_path_[sv]) {
        const double rc = std::max(0.0, e.cost + pi_[su] - pi_[sv]);
        if (dist_[su] + rc == dist_[sv]) {
          path_.push_back(a);
          on_path_[sv] = 1;
          u = e.to;
          advanced = true;
          break;
        }
      }
      ++ci;
    }
    if (advanced) {
      if (u != t_) continue;
      int push = budget - total;
      for (const int a : path_)
        push = std::min(push, arcs_[static_cast<std::size_t>(a)].cap);
      for (const int a : path_) {
        arcs_[static_cast<std::size_t>(a)].cap -= push;
        arcs_[static_cast<std::size_t>(a ^ 1)].cap += push;
        on_path_[static_cast<std::size_t>(
            arcs_[static_cast<std::size_t>(a)].to)] = 0;
      }
      total += push;
      path_.clear();
      u = s_;
      continue;
    }
    if (u == s_) break;  // source exhausted: no admissible path remains
    on_path_[su] = 0;
    const int a = path_.back();
    path_.pop_back();
    u = arcs_[static_cast<std::size_t>(a ^ 1)].to;
    ++cur_arc_[static_cast<std::size_t>(u)];  // skip the dead branch
  }
  on_path_[static_cast<std::size_t>(s_)] = 0;
  return total;
}

int MinCostFlow::augment(int target, int limit) {
  if (limit <= 0 || prev_arc_[static_cast<std::size_t>(target)] < 0) return 0;
  int push = limit;
  for (int a = prev_arc_[static_cast<std::size_t>(target)]; a >= 0;
       a = prev_arc_[static_cast<std::size_t>(arcs_[static_cast<std::size_t>(a ^ 1)].to)])
    push = std::min(push, arcs_[static_cast<std::size_t>(a)].cap);
  for (int a = prev_arc_[static_cast<std::size_t>(target)]; a >= 0;
       a = prev_arc_[static_cast<std::size_t>(arcs_[static_cast<std::size_t>(a ^ 1)].to)]) {
    arcs_[static_cast<std::size_t>(a)].cap -= push;
    arcs_[static_cast<std::size_t>(a ^ 1)].cap += push;
  }
  return push;
}

void MinCostFlow::normalize_terminals() {
  // Terminals may carry any net flow: an s imbalance just changes how much
  // the source emits, and a t imbalance is by definition a delivered-flow
  // change.
  excess_[static_cast<std::size_t>(s_)] = 0;
  flow_ += static_cast<int>(excess_[static_cast<std::size_t>(t_)]);
  excess_[static_cast<std::size_t>(t_)] = 0;
}

void MinCostFlow::repair_and_augment() {
  normalize_terminals();
  const int n = static_cast<int>(adj_.size());

  // 1) Route non-terminal excesses (ascending node order — part of the
  //    pinned determinism) to the nearest deficit, or t when under target,
  //    or back toward s as the absorber of last resort.
  const auto drain_excess = [&](int u) {
    while (excess_[static_cast<std::size_t>(u)] > 0) {
      const bool room = flow_ < target_;
      const auto allowed = [&](int v) {
        if (v == s_) return true;
        if (v == t_) return room;
        return excess_[static_cast<std::size_t>(v)] < 0;
      };
      int tgt = dijkstra(&u, 1, allowed);
      if (tgt < 0) {
        // Over-target t is still a valid absorber; the trim phase pushes
        // the overshoot back when a t->s residual path exists.
        const auto any = [&](int v) {
          return v == s_ || v == t_ ||
                 excess_[static_cast<std::size_t>(v)] < 0;
        };
        tgt = dijkstra(&u, 1, any);
        if (tgt < 0)
          throw std::logic_error("MinCostFlow: unroutable imbalance");
      }
      long long limit = excess_[static_cast<std::size_t>(u)];
      if (tgt == t_ && room)
        limit = std::min<long long>(limit, target_ - flow_);
      else if (tgt != s_ && tgt != t_)
        limit = std::min(limit, -excess_[static_cast<std::size_t>(tgt)]);
      const int pushed = augment(tgt, static_cast<int>(limit));
      if (pushed <= 0)
        throw std::logic_error("MinCostFlow: stalled imbalance repair");
      excess_[static_cast<std::size_t>(u)] -= pushed;
      if (tgt == t_)
        flow_ += pushed;
      else if (tgt != s_)
        excess_[static_cast<std::size_t>(tgt)] += pushed;
    }
  };
  for (int u = 0; u < n; ++u)
    if (u != s_ && u != t_) drain_excess(u);

  // 2) Fill the remaining deficits from whichever terminal is nearer in
  //    reduced cost: s supplies fresh flow, t cancels delivered flow.
  for (int v = 0; v < n; ++v) {
    if (v == s_ || v == t_) continue;
    while (excess_[static_cast<std::size_t>(v)] < 0) {
      const int sources[2] = {std::min(s_, t_), std::max(s_, t_)};
      const int tgt = dijkstra(sources, 2, [&](int x) { return x == v; });
      if (tgt < 0) throw std::logic_error("MinCostFlow: unroutable deficit");
      // The path's origin decides the flow accounting.
      int origin = v;
      while (prev_arc_[static_cast<std::size_t>(origin)] >= 0)
        origin = arcs_[static_cast<std::size_t>(
                           prev_arc_[static_cast<std::size_t>(origin)] ^ 1)]
                     .to;
      const int pushed = augment(
          v, static_cast<int>(-excess_[static_cast<std::size_t>(v)]));
      if (pushed <= 0)
        throw std::logic_error("MinCostFlow: stalled deficit repair");
      excess_[static_cast<std::size_t>(v)] += pushed;
      if (origin == t_) flow_ -= pushed;
    }
  }

  // 3) Trim overshoot (updates can force flow above the target).
  while (flow_ > target_) {
    if (dijkstra(&t_, 1, [&](int x) { return x == s_; }) < 0) break;
    const int pushed = augment(s_, flow_ - target_);
    if (pushed <= 0) break;
    flow_ -= pushed;
  }

  // 4) Augment toward the target, one *distance class* at a time: Dijkstra
  //    finds the current shortest s->t length (potentials deferred), a
  //    blocking flow saturates every admissible path of that length at
  //    once, then the potentials catch up. With tie-rich costs this is the
  //    Hopcroft-Karp phase structure (one Dijkstra routes many units); the
  //    attack's integer-exact salted costs make every path length unique,
  //    so each phase typically routes one unit — the win there is that the
  //    warm potentials keep each Dijkstra confined to a small frontier
  //    instead of rescanning the whole graph like SPFA did.
  while (flow_ < target_) {
    if (dijkstra(&s_, 1, [&](int x) { return x == t_; },
                 /*update_pi=*/false) < 0)
      break;
    const int pushed = blocking_flow(target_ - flow_);
    apply_potentials(t_);
    if (pushed <= 0) break;  // defensive: the tree path always admits one
    flow_ += pushed;
  }
}

std::pair<int, double> MinCostFlow::solve(int s, int t, int max_flow) {
  if (s == t) throw std::invalid_argument("MinCostFlow: s == t");
  if (!solved_) {
    s_ = s;
    t_ = t;
    if (has_negative_) bellman_ford_init();
    solved_ = true;
  } else if (s != s_ || t != t_) {
    throw std::logic_error(
        "MinCostFlow: terminals are fixed after the first solve");
  }
  const long long want = static_cast<long long>(target_) + max_flow;
  target_ = static_cast<int>(
      std::min<long long>(want, std::numeric_limits<int>::max()));
  repair_and_augment();
  return {flow_, cost()};
}

void MinCostFlow::remove_edge(int id) {
  update_edge(id, 0, arcs_[static_cast<std::size_t>(2 * id)].cost);
}

void MinCostFlow::update_edge(int id, int capacity, double cost) {
  if (capacity < 0)
    throw std::invalid_argument("MinCostFlow: negative capacity");
  Arc& f = arcs_[static_cast<std::size_t>(2 * id)];
  Arc& r = arcs_[static_cast<std::size_t>(2 * id + 1)];
  const int u = r.to;
  const int v = f.to;
  f.cost = cost;
  r.cost = -cost;
  if (!solved_) {
    f.cap = capacity;
    if (cost < 0) has_negative_ = true;
    return;
  }
  const int flow = r.cap;
  if (capacity < flow) {
    // The overhang stops flowing here and now: the tail keeps receiving
    // it (excess) and the head keeps forwarding it (deficit) until the
    // next resolve() re-routes both.
    const int df = flow - capacity;
    r.cap = capacity;
    f.cap = 0;
    excess_[static_cast<std::size_t>(u)] += df;
    excess_[static_cast<std::size_t>(v)] -= df;
  } else {
    f.cap = capacity - flow;
  }
  // Keep the potentials invariant (every residual arc has reduced cost
  // >= 0) across the cost change: a now-negative forward arc saturates, a
  // now-positive arc still carrying flow drains. Either way the imbalance
  // is re-routed optimally by resolve().
  const double rc = f.cost + pi_[static_cast<std::size_t>(u)] -
                    pi_[static_cast<std::size_t>(v)];
  if (f.cap > 0 && rc < 0)
    saturate(2 * id);
  else if (r.cap > 0 && rc > 0)
    saturate(2 * id + 1);
}

std::pair<int, double> MinCostFlow::resolve() {
  if (!solved_)
    throw std::logic_error("MinCostFlow: resolve() before solve()");
  repair_and_augment();
  return {flow_, cost()};
}

}  // namespace sm::attack
