// Routing-centric "crouting" attack (Magana et al., ICCAD'16 [6]).
//
// The attack does not recover a netlist; it confines the solution space.
// For every vpin (via in the topmost FEOL layer) it enumerates candidate
// partner vpins within a square search window. Reported metrics (paper
// Table 3):
//   #vpins          — size of the attack problem,
//   E[LS]           — average candidate-list size per bounding-box size,
//   match-in-list   — fraction of vpins whose true counterpart (another
//                     fragment of the same net) appears in the list.
#pragma once

#include "core/split.hpp"

#include <vector>

namespace sm::attack {

struct CRoutingOptions {
  /// Bounding-box half-widths in microns (paper uses 15/30/45 gcell units;
  /// our gcells are 2.8 um, so these are the same regime).
  std::vector<double> bboxes = {15.0, 30.0, 45.0};
};

struct CRoutingResult {
  std::size_t num_vpins = 0;
  std::vector<double> candidate_list_size;  ///< E[LS] per bbox
  std::vector<double> match_in_list;        ///< fraction per bbox
  bool failed = false;  ///< no vpins -> nothing to attack ("N/A" rows)
};

CRoutingResult crouting_attack(const core::SplitView& view,
                               const CRoutingOptions& opts = {});

}  // namespace sm::attack
