// Netlist randomization (paper Sec. 4, step (i)).
//
// The defense iteratively swaps the connectivity of randomly selected pairs
// of drivers and their sinks: after a swap of (D1->S1, D2->S2), the netlist
// contains (D1->S2, D2->S1). Swaps that would create a combinational loop
// are rejected (loops would reveal the modification to an attacker). Swapping
// continues until the output error rate of the erroneous netlist against the
// original approaches 100%, so the modified netlist produces errors for
// essentially any input.
//
// The ledger records every swap so the true functionality can be restored —
// in the real flow through BEOL re-routing between correction-cell pairs, in
// this model additionally at the netlist level for validation.
#pragma once

#include "netlist/netlist.hpp"

#include <cstdint>
#include <vector>

namespace sm::core {

/// One committed swap. Both sinks are identified by (cell, pin); net_a/net_b
/// are the nets each sink was attached to *before* the swap (sink_a on
/// net_a, sink_b on net_b; afterwards sink_a is on net_b and vice versa).
struct SwapEntry {
  netlist::NetId net_a = netlist::kInvalidNet;
  netlist::Sink sink_a;
  netlist::NetId net_b = netlist::kInvalidNet;
  netlist::Sink sink_b;
};

struct SwapLedger {
  std::vector<SwapEntry> entries;

  /// All nets touched by any swap, deduplicated — these are the "protected
  /// nets" that get correction cells and lifting.
  std::vector<netlist::NetId> protected_nets() const;

  /// The original (driver net -> sink) connections broken by the swaps:
  /// exactly the connections an attacker must recover. Accounts for sinks
  /// swapped multiple times (the *first* recorded net is the true source).
  std::vector<std::pair<netlist::NetId, netlist::Sink>> true_connections() const;
};

struct RandomizeOptions {
  double target_oer = 0.995;       ///< stop once OER reaches this
  std::size_t max_swaps = 10000;   ///< hard cap (PPA budget proxy)
  /// Minimum number of swaps. 0 = auto: max(8, gates/30). The OER criterion
  /// alone saturates after a handful of swaps on error-amplifying logic,
  /// but the paper keeps randomizing while the PPA budget allows — heavier
  /// randomization is what drives the attacker's CCR to zero.
  std::size_t min_swaps = 0;
  std::size_t batch = 4;           ///< swaps between OER evaluations
  std::size_t check_patterns = 4096;
  std::uint64_t seed = 1;
  int max_attempts_factor = 200;   ///< give up after this many rejects/swap
};

struct RandomizeResult {
  netlist::Netlist erroneous;   ///< the randomized netlist
  SwapLedger ledger;
  double oer = 0.0;             ///< final OER vs the original
  double hd = 0.0;              ///< final HD vs the original
  std::size_t swaps = 0;
};

/// Randomize a copy of `original`. Deterministic in (netlist, options).
RandomizeResult randomize(const netlist::Netlist& original,
                          const RandomizeOptions& opts);

/// Undo all ledger swaps on `erroneous` (BEOL restoration at netlist level).
/// After this the netlist is functionally identical to the original.
void restore_netlist(netlist::Netlist& erroneous, const SwapLedger& ledger);

}  // namespace sm::core
