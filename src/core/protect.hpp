// The end-to-end protection flow (paper Fig. 2) and its baselines.
//
// protect():
//   1. randomize the netlist (driver/sink swaps, no combinational loops,
//      OER-driven stop);
//   2. place the erroneous netlist;
//   3. embed correction cells (pins in M6/M8, overlap-legal) and lift the
//      protected nets to the correction layer;
//   4. route everything — the FEOL now encodes only the erroneous netlist;
//   5. restore the true functionality with BEOL wires between correction
//      cell pairs; validate functional equivalence at the netlist level;
//   6. report the restored design's PPA.
//
// layout_original() and layout_naive_lift() produce the paper's two
// comparison layouts (Tables 1-3, Fig. 4-5 all compare the three).
#pragma once

#include "core/correction.hpp"
#include "core/randomizer.hpp"
#include "place/buffering.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "timing/sta.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace sm::core {

struct FlowOptions {
  place::PlacerOptions placer;
  route::RouterOptions router;
  int lift_layer = 6;  ///< correction-cell pin layer (M6 ISCAS, M8 superblue)
  netlist::OperatingPoint op;
  std::size_t activity_patterns = 4096;  ///< stimuli for power activities
  std::uint64_t seed = 1;
  /// Adapt the routing gcell to the die size (small ISCAS dies need a fine
  /// grid or vpin positions quantize away the proximity signal). Set false
  /// to honor router.gcell_um verbatim.
  bool auto_gcell = true;
  /// Post-placement repeater insertion (drive-strength fixing). On the
  /// erroneous netlist this bakes misleading buffer strengths into the FEOL
  /// (paper Sec. 3's BUFX8 argument). Off by default so cell counts stay
  /// comparable across flows; bench_ablation_buffering exercises it.
  bool buffering = false;
  place::BufferingOptions buffering_opts;
};

/// gcell sizing rule used when auto_gcell is on: roughly 80 gcells across
/// the die, clamped to [0.7, 2.8] um.
double tuned_gcell_um(const FlowOptions& opts, const place::Floorplan& fp);

/// A placed-and-routed design with its PPA.
struct LayoutResult {
  place::Placement placement;
  std::vector<route::RouteTask> tasks;  ///< net tasks first
  std::size_t num_net_tasks = 0;        ///< tasks beyond this are BEOL wires
  route::RoutingResult routing;
  timing::PpaReport ppa;
  /// When FlowOptions::buffering ran, the repeater-sized netlist the layout
  /// actually implements (route net ids refer to it). Absent otherwise.
  std::optional<netlist::Netlist> sized_netlist;

  /// The netlist this layout physically realizes.
  const netlist::Netlist& physical(const netlist::Netlist& logical) const {
    return sized_netlist ? *sized_netlist : logical;
  }
};

/// Unprotected reference layout of a netlist.
LayoutResult layout_original(const netlist::Netlist& nl,
                             const FlowOptions& opts);

/// Naive-lifting baseline: same lifting mechanics over `nets` (typically the
/// protected nets of a matching protect() run), no erroneous connections.
struct NaiveLiftDesign {
  LayoutResult layout;
  CorrectionPlan plan;
};
NaiveLiftDesign layout_naive_lift(const netlist::Netlist& nl,
                                  const std::vector<netlist::NetId>& nets,
                                  const FlowOptions& opts);

/// The proposed scheme's output.
struct ProtectedDesign {
  netlist::Netlist erroneous;  ///< what the FEOL fab sees (netlist level)
  /// The netlist the finished (BEOL-restored) chip implements: true
  /// connectivity, including any repeaters the sizing pass added. Equals
  /// the original netlist functionally; shares the erroneous netlist's
  /// cell/net id space (useful as attack ground truth under buffering).
  netlist::Netlist restored;
  SwapLedger ledger;
  CorrectionPlan plan;
  LayoutResult layout;  ///< fabricated layout: erroneous nets + BEOL wires
  double oer = 0.0;     ///< erroneous vs original
  double hd = 0.0;
  bool restored_ok = false;  ///< netlist-level restoration equivalence check
};

ProtectedDesign protect(const netlist::Netlist& original,
                        const RandomizeOptions& rand_opts,
                        const FlowOptions& opts);

/// PPA-budget loop (paper: keep adding randomization while the budget is
/// not expended). Doubles the swap budget until power or delay overhead vs
/// `reference` exceeds `budget_pct`, returning the most-randomized design
/// within budget (or the first attempt if even it overshoots).
ProtectedDesign protect_with_budget(const netlist::Netlist& original,
                                    RandomizeOptions rand_opts,
                                    const FlowOptions& opts,
                                    const timing::PpaReport& reference,
                                    double budget_pct, int max_rounds = 4);

}  // namespace sm::core
