// Split-manufacturing cut: everything at or below the split layer is the
// FEOL (visible to the untrusted fab); everything above is the BEOL.
//
// For each routed net the FEOL part decomposes into connected *fragments*.
// A fragment that reaches the split layer and continues upward exposes one
// or more vpins ("virtual pins" [6,7]): the via locations in the topmost
// FEOL layer where the BEOL will connect. The metal stub attached to a vpin
// in the topmost FEOL layer is the "dangling wire"; its direction is one of
// the attack hints of Wang et al. [5].
#pragma once

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"

#include <vector>

namespace sm::core {

struct VPin {
  util::GridPoint grid;   ///< location at the split layer
  util::Point pos;        ///< same, in microns
  int dir_dx = 0;         ///< dangling-wire direction (unit or 0)
  int dir_dy = 0;
};

struct Fragment {
  netlist::NetId net = netlist::kInvalidNet;  ///< net tag of the route
  bool has_driver = false;
  std::vector<netlist::Sink> sinks;  ///< sink pins inside this fragment
  std::vector<VPin> vpins;
  util::Point anchor;  ///< representative location (driver pin or first pin)
};

struct SplitView {
  int split_layer = 3;
  std::vector<Fragment> fragments;

  std::size_t num_vpins() const;
  /// Fragments that contain the driver and expose at least one vpin.
  std::vector<std::size_t> open_driver_fragments() const;
  /// Fragments that contain sinks but not the driver.
  std::vector<std::size_t> open_sink_fragments() const;
};

/// Cut the fabricated layout after `split_layer`. Only the first
/// `num_net_tasks` routes are nets (the rest are BEOL-only restoration
/// wires, invisible in the FEOL).
SplitView split_layout(const netlist::Netlist& nl, const place::Placement& pl,
                       const route::RoutingResult& routing,
                       const std::vector<route::RouteTask>& tasks,
                       std::size_t num_net_tasks, int split_layer);

}  // namespace sm::core
