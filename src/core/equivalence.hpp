// Combinational equivalence checking (the Formality substitute).
//
// The paper validates restored functionality with Synopsys Formality. This
// module implements a layered checker:
//   1. structural hashing — canonical classes over both netlists; equal
//      classes on every observer prove equivalence instantly (this closes
//      the common case: a restored netlist is structurally the original);
//   2. random simulation — 64-wide patterns find counterexamples fast on
//      inequivalent pairs (an erroneous netlist with OER ~100% falls here
//      within one word);
//   3. CDCL SAT on the miter — complete decision procedure, with a conflict
//      budget so pathological instances return Unknown instead of hanging.
//
// Sequential netlists are compared on the standard combinational core: DFF
// outputs are free inputs, DFF inputs are observed outputs.
#pragma once

#include "netlist/netlist.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace sm::core {

enum class EquivVerdict { Equivalent, Inequivalent, Unknown };

struct EquivOptions {
  std::size_t sim_patterns = 4096;
  std::int64_t sat_conflict_budget = 200000;
  std::uint64_t seed = 1;
};

struct EquivResult {
  EquivVerdict verdict = EquivVerdict::Unknown;
  std::string method;  ///< "structural", "simulation", or "sat"
  /// For Inequivalent: one distinguishing input assignment, one bit per
  /// source (primary inputs first, then DFF outputs in id order).
  std::vector<bool> counterexample;
  std::int64_t sat_conflicts = 0;
};

/// Check combinational equivalence of `a` and `b`. Requires matching source
/// and observer counts (throws std::invalid_argument otherwise).
EquivResult check_equivalence(const netlist::Netlist& a,
                              const netlist::Netlist& b,
                              const EquivOptions& opts = {});

/// Validate a counterexample: true iff the assignment produces different
/// observer values on `a` vs `b` (used by tests and callers for defense in
/// depth).
bool counterexample_distinguishes(const netlist::Netlist& a,
                                  const netlist::Netlist& b,
                                  const std::vector<bool>& assignment);

}  // namespace sm::core
