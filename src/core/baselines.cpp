#include "core/baselines.hpp"

#include "sim/simulator.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <map>

namespace sm::core {

using netlist::CellId;
using netlist::CellLibrary;
using netlist::NetId;
using netlist::Netlist;

namespace {

timing::PpaReport quick_ppa(const Netlist& nl, const LayoutResult& layout,
                            const FlowOptions& opts) {
  timing::Sta sta(opts.op);
  const auto activity =
      sim::toggle_rates(nl, opts.activity_patterns, opts.seed ^ 0xac7ULL);
  return sta.analyze(nl, layout.placement, layout.routing, activity);
}

void route_layout(const Netlist& nl, LayoutResult& layout,
                  const FlowOptions& opts,
                  const std::vector<int>& min_layer = {}) {
  layout.tasks = route::make_tasks(nl, layout.placement, min_layer);
  layout.num_net_tasks = layout.tasks.size();
  route::RouterOptions ropts = opts.router;
  ropts.gcell_um = tuned_gcell_um(opts, layout.placement.floorplan);
  route::Router router(ropts);
  layout.routing = router.route(layout.tasks, layout.placement.floorplan.die,
                                nl.library().metal());
  layout.ppa = quick_ppa(nl, layout, opts);
}

}  // namespace

LayoutResult layout_placement_perturbed(const Netlist& nl,
                                        const FlowOptions& opts,
                                        PerturbStrategy strategy,
                                        double fraction, std::uint64_t seed,
                                        double radius_frac) {
  // Self-placing entry point: place directly (no buffering stage), exactly
  // as before the PlacedDesign overload existed.
  place::Placer placer(opts.placer);
  PlacedDesign placed;
  placed.placement = placer.place(nl);
  return layout_placement_perturbed(nl, opts, placed, strategy, fraction, seed,
                                    radius_frac);
}

LayoutResult layout_placement_perturbed(const Netlist& nl,
                                        const FlowOptions& opts,
                                        const PlacedDesign& placed,
                                        PerturbStrategy strategy,
                                        double fraction, std::uint64_t seed,
                                        double radius_frac) {
  const Netlist& phys = placed.physical(nl);
  LayoutResult out;
  out.placement = placed.placement;
  util::Rng rng(seed ^ 0x9137ULL);
  const double radius =
      radius_frac * out.placement.floorplan.die.width();

  // Candidate classes: gates are only swapped with gates of the same class.
  auto class_of = [&](CellId id) -> std::uint64_t {
    const auto& t = phys.type_of(id);
    switch (strategy) {
      case PerturbStrategy::Random:
        return 0;
      case PerturbStrategy::GColor:  // gates of equal fan-in
        return static_cast<std::uint64_t>(t.num_inputs);
      case PerturbStrategy::GType1:  // identical cell type
        return phys.cell(id).type;
      case PerturbStrategy::GType2:  // same logic function, any drive
        return static_cast<std::uint64_t>(t.fn) + 1000;
    }
    return 0;
  };

  std::map<std::uint64_t, std::vector<CellId>> classes;
  for (CellId id = 0; id < phys.num_cells(); ++id) {
    if (phys.type_of(id).cls != netlist::CellClass::Standard) continue;
    classes[class_of(id)].push_back(id);
  }
  for (auto& [cls, members] : classes) {
    rng.shuffle(members);
    const std::size_t n_swap =
        static_cast<std::size_t>(fraction * static_cast<double>(members.size()));
    std::size_t done = 0;
    std::vector<bool> used(members.size(), false);
    for (std::size_t i = 0; i < members.size() && done < n_swap; ++i) {
      if (used[i]) continue;
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (used[j]) continue;
        if (util::manhattan(out.placement.pos[members[i]],
                            out.placement.pos[members[j]]) > radius)
          continue;
        std::swap(out.placement.pos[members[i]], out.placement.pos[members[j]]);
        used[i] = used[j] = true;
        ++done;
        break;
      }
    }
  }
  route_layout(phys, out, opts);
  return out;
}

SwappedLayout layout_pin_swapped(const Netlist& nl, const FlowOptions& opts,
                                 std::size_t num_swaps, std::uint64_t seed) {
  SwappedLayout out{Netlist(nl.library()), {}, {}};
  RandomizeOptions ropts;
  ropts.max_swaps = num_swaps;
  ropts.min_swaps = num_swaps;    // no OER-driven stop: fixed budget
  ropts.target_oer = 2.0;         // unreachable: run to max_swaps
  ropts.batch = std::max<std::size_t>(1, num_swaps / 4);
  ropts.seed = seed;
  RandomizeResult rr = randomize(nl, ropts);
  out.erroneous = std::move(rr.erroneous);
  out.ledger = std::move(rr.ledger);

  place::Placer placer(opts.placer);
  out.layout.placement = placer.place(out.erroneous);
  route_layout(out.erroneous, out.layout, opts);
  return out;
}

LayoutResult layout_routing_perturbed(const Netlist& nl,
                                      const FlowOptions& opts, double fraction,
                                      int elevate_to, std::uint64_t seed) {
  place::Placer placer(opts.placer);
  PlacedDesign placed;
  placed.placement = placer.place(nl);
  return layout_routing_perturbed(nl, opts, placed, fraction, elevate_to, seed);
}

LayoutResult layout_routing_perturbed(const Netlist& nl,
                                      const FlowOptions& opts,
                                      const PlacedDesign& placed,
                                      double fraction, int elevate_to,
                                      std::uint64_t seed) {
  const Netlist& phys = placed.physical(nl);
  LayoutResult out;
  out.placement = placed.placement;
  util::Rng rng(seed ^ 0x7712ULL);
  std::vector<int> min_layer(phys.num_nets(), 1);
  for (NetId n = 0; n < phys.num_nets(); ++n)
    if (!phys.net(n).sinks.empty() && rng.chance(fraction))
      min_layer[n] = elevate_to;
  route_layout(phys, out, opts, min_layer);
  return out;
}

LayoutResult layout_routing_blockage(const Netlist& nl,
                                     const FlowOptions& opts,
                                     int num_blockages, double size_um,
                                     int max_layer, std::uint64_t seed) {
  place::Placer placer(opts.placer);
  PlacedDesign placed;
  placed.placement = placer.place(nl);
  return layout_routing_blockage(nl, opts, placed, num_blockages, size_um,
                                 max_layer, seed);
}

LayoutResult layout_routing_blockage(const Netlist& nl,
                                     const FlowOptions& opts,
                                     const PlacedDesign& placed,
                                     int num_blockages, double size_um,
                                     int max_layer, std::uint64_t seed) {
  const Netlist& phys = placed.physical(nl);
  LayoutResult out;
  out.placement = placed.placement;
  util::Rng rng(seed ^ 0xb10cULL);

  FlowOptions blocked = opts;
  const auto& die = out.placement.floorplan.die;
  for (int i = 0; i < num_blockages; ++i) {
    const double x = rng.uniform(die.lo.x, die.hi.x - size_um);
    const double y = rng.uniform(die.lo.y, die.hi.y - size_um);
    blocked.router.blockages.push_back(
        {util::Rect{{x, y}, {x + size_um, y + size_um}}, 1, max_layer});
  }
  route_layout(phys, out, blocked, {});
  return out;
}

}  // namespace sm::core
