// Correction cells (paper Sec. 4 and Fig. 3).
//
// Each committed swap (D1->S2, D2->S1 in the erroneous netlist; truth is
// D1->S1, D2->S2) gets a *pair* of correction cells, modeled as
// 2-input/2-output OR gates with pins on a high metal layer (M6/M8):
//
//   cell A: C <- D1 (erroneous net_a), Z -> S2   [arc C->Z used in FEOL]
//   cell B: C <- D2 (erroneous net_b), Z -> S1
//
// Restoration disables C->Z / D->Y and adds two BEOL wires between the pair:
//   A.Y -> B.D   (D1's signal reaches S1 through B's D->Z arc)
//   B.Y -> A.D   (D2's signal reaches S2 through A's D->Z arc)
//
// The cells occupy no device-layer area and may overlap standard cells;
// custom legalization only keeps correction cells apart from each other.
#pragma once

#include "core/randomizer.hpp"
#include "place/placement.hpp"
#include "util/geometry.hpp"

#include <cstdint>
#include <vector>

namespace sm::core {

struct CorrectionCell {
  util::Point pos;             ///< legalized location (pin stack position)
  int pin_layer = 6;           ///< M6 (ISCAS-85) or M8 (superblue)
  netlist::NetId tapped_net = netlist::kInvalidNet;  ///< erroneous net via C/Z
  std::size_t entry = 0;       ///< ledger entry index
  int side = 0;                ///< 0 = cell A (net_a), 1 = cell B (net_b)
};

/// One BEOL restoration wire between a cell pair (Y of `from` to D of `to`).
struct PairWire {
  std::size_t from_cell = 0;
  std::size_t to_cell = 0;
};

struct CorrectionPlan {
  std::vector<CorrectionCell> cells;  ///< 2 per ledger entry: [A0,B0,A1,B1,...]
  std::vector<PairWire> wires;        ///< 2 per ledger entry
  int pin_layer = 6;

  /// Correction cells tapping a given erroneous net.
  std::vector<std::size_t> cells_on_net(netlist::NetId net) const;
};

/// Plan correction cells for every ledger entry. Each cell starts at the
/// midpoint of its erroneous connection (driver of the tapped net to the
/// swapped-in sink), which places it on the erroneous route; positions are
/// then legalized so no two correction cells overlap (standard cells are
/// fair game — the cells only exist in the BEOL).
CorrectionPlan plan_corrections(const netlist::Netlist& erroneous,
                                const SwapLedger& ledger,
                                const place::Placement& pl, int pin_layer);

/// Naive-lifting baseline: one lift cell per net, at the net's pin centroid,
/// same overlap-legalization, no erroneous connections and no pair wires.
CorrectionPlan plan_naive_lift(const netlist::Netlist& nl,
                               const std::vector<netlist::NetId>& nets,
                               const place::Placement& pl, int pin_layer);

/// Shift cells minimally so no two occupy the same site of a `site_um` grid.
/// Exposed for tests.
void legalize_corrections(CorrectionPlan& plan, const util::Rect& die,
                          double site_um);

}  // namespace sm::core
