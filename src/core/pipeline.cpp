#include "core/pipeline.hpp"

#include "sim/simulator.hpp"
#include "util/config_hash.hpp"

#include <utility>

namespace sm::core {

using netlist::Netlist;

route::RouterOptions tuned_router(const FlowOptions& opts,
                                  const place::Floorplan& fp) {
  route::RouterOptions r = opts.router;
  r.gcell_um = tuned_gcell_um(opts, fp);
  return r;
}

timing::PpaReport evaluate_ppa(const Netlist& nl, const LayoutResult& layout,
                               const FlowOptions& opts,
                               const std::vector<timing::NetExtra>& extra) {
  timing::Sta sta(opts.op);
  const auto activity =
      sim::toggle_rates(nl, opts.activity_patterns, opts.seed ^ 0xac7ULL);
  return sta.analyze(nl, layout.placement, layout.routing, activity, extra);
}

std::string canonical_flow_json(const FlowOptions& opts) {
  // Keys are lexicographic within each object (the canonical-JSON
  // convention of util::config_hash); adding a field here intentionally
  // changes every hash — bump-and-recompute is the upgrade path, silently
  // reusing stale cells is the failure mode this guards against.
  util::JsonWriter w;
  w.begin_object();
  w.key("activity_patterns").value(opts.activity_patterns);
  w.key("auto_gcell").value(opts.auto_gcell);
  w.key("buffering").value(opts.buffering);
  w.key("buffering_opts").begin_object();
  w.key("hpwl_threshold_um").value(opts.buffering_opts.hpwl_threshold_um);
  w.key("strength2_um").value(opts.buffering_opts.strength2_um);
  w.key("strength4_um").value(opts.buffering_opts.strength4_um);
  w.key("strength8_um").value(opts.buffering_opts.strength8_um);
  w.end_object();
  w.key("lift_layer").value(opts.lift_layer);
  w.key("op").begin_object();
  w.key("clock_period_ns").value(opts.op.clock_period_ns);
  w.key("default_activity").value(opts.op.default_activity);
  w.key("vdd").value(opts.op.vdd);
  w.end_object();
  w.key("placer").begin_object();
  w.key("aspect_ratio").value(opts.placer.aspect_ratio);
  w.key("detailed_passes").value(opts.placer.detailed_passes);
  w.key("fm_balance").value(opts.placer.fm_balance);
  w.key("fm_passes").value(opts.placer.fm_passes);
  w.key("force_alpha").value(opts.placer.force_alpha);
  w.key("force_iterations").value(opts.placer.force_iterations);
  w.key("leaf_cells").value(opts.placer.leaf_cells);
  w.key("seed").value(opts.placer.seed);
  w.key("target_utilization").value(opts.placer.target_utilization);
  w.end_object();
  w.key("router").begin_object();
  w.key("bbox_margin").value(opts.router.bbox_margin);
  w.key("blockages").begin_array();
  for (const auto& b : opts.router.blockages) {
    w.begin_object();
    w.key("max_layer").value(b.max_layer);
    w.key("min_layer").value(b.min_layer);
    w.key("x0").value(b.region.lo.x);
    w.key("x1").value(b.region.hi.x);
    w.key("y0").value(b.region.lo.y);
    w.key("y1").value(b.region.hi.y);
    w.end_object();
  }
  w.end_array();
  w.key("gcell_um").value(opts.router.gcell_um);
  w.key("history_increment").value(opts.router.history_increment);
  w.key("overflow_penalty").value(opts.router.overflow_penalty);
  w.key("partition").value(route::to_string(opts.router.partition));
  w.key("passes").value(opts.router.passes);
  w.key("seed").value(opts.router.seed);
  w.key("tie_jitter").value(opts.router.tie_jitter);
  w.key("via_cost").value(opts.router.via_cost);
  w.end_object();
  w.key("seed").value(opts.seed);
  w.end_object();
  return w.str();
}

PlacedDesign place_design(const Netlist& nl, const FlowOptions& opts) {
  PlacedDesign out;
  place::Placer placer(opts.placer);
  if (opts.buffering) {
    // Buffering mutates the netlist; size a copy and carry it along.
    Netlist sized = nl.clone();
    out.placement = placer.place(sized);
    place::insert_buffers(sized, out.placement, opts.buffering_opts);
    place::legalize_rows(sized, out.placement);
    out.sized = std::move(sized);
  } else {
    out.placement = placer.place(nl);
  }
  return out;
}

LayoutResult route_design(const Netlist& nl, const PlacedDesign& placed,
                          const FlowOptions& opts) {
  return route_design(nl, PlacedDesign(placed), opts);
}

LayoutResult route_design(const Netlist& nl, PlacedDesign&& placed,
                          const FlowOptions& opts) {
  LayoutResult out;
  out.placement = std::move(placed.placement);
  out.sized_netlist = std::move(placed.sized);
  const Netlist& phys = out.sized_netlist ? *out.sized_netlist : nl;
  out.tasks = route::make_tasks(phys, out.placement);
  out.num_net_tasks = out.tasks.size();
  route::Router router(tuned_router(opts, out.placement.floorplan));
  out.routing = router.route(out.tasks, out.placement.floorplan.die,
                             phys.library().metal());
  out.ppa = evaluate_ppa(phys, out, opts);
  return out;
}

/// One benchmark instance. Each stage pairs a once_flag with its product;
/// call_once gives the build-at-most-once and block-later-callers
/// semantics, and the products live behind stable unique_ptr entries so
/// returned references survive map rehashing.
struct LayoutCache::Entry {
  std::once_flag netlist_once;
  std::optional<netlist::Netlist> netlist;
  std::once_flag placed_once;
  std::optional<PlacedDesign> placed;
  std::once_flag base_once;
  std::optional<LayoutResult> base;
};

LayoutCache::LayoutCache() = default;
LayoutCache::~LayoutCache() = default;

LayoutCache::Entry& LayoutCache::entry(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = entries_[key];
  if (!slot) slot = std::make_unique<Entry>();
  return *slot;
}

const netlist::Netlist& LayoutCache::netlist(
    const std::string& key, const std::function<netlist::Netlist()>& build) {
  Entry& e = entry(key);
  bool built = false;
  std::call_once(e.netlist_once, [&] {
    e.netlist.emplace(build());
    built = true;
  });
  const std::lock_guard<std::mutex> lock(mu_);
  if (built)
    ++stats_.netlists;
  else
    ++stats_.hits;
  return *e.netlist;
}

const PlacedDesign& LayoutCache::placed(const std::string& key,
                                        const netlist::Netlist& nl,
                                        const FlowOptions& opts) {
  Entry& e = entry(key);
  bool built = false;
  std::call_once(e.placed_once, [&] {
    e.placed.emplace(place_design(nl, opts));
    built = true;
  });
  const std::lock_guard<std::mutex> lock(mu_);
  if (built)
    ++stats_.placements;
  else
    ++stats_.hits;
  return *e.placed;
}

const LayoutResult& LayoutCache::base_layout(const std::string& key,
                                             const netlist::Netlist& nl,
                                             const FlowOptions& opts) {
  Entry& e = entry(key);
  bool built = false;
  std::call_once(e.base_once, [&] {
    e.base.emplace(route_design(nl, placed(key, nl, opts), opts));
    built = true;
  });
  const std::lock_guard<std::mutex> lock(mu_);
  if (built)
    ++stats_.base_routes;
  else
    ++stats_.hits;
  return *e.base;
}

LayoutCache::Stats LayoutCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sm::core
