// Library-definition export for the custom cells.
//
// The paper releases "the library definitions for the correction cells" on
// top of the Nangate 45nm library. This module generates the equivalent
// artifacts for this substrate:
//   - a Liberty-style (.lib) snippet for SM_CORR (2-input/2-output OR-type,
//     timing/power borrowed from BUF_X2, all four arcs C->Y/C->Z/D->Y/D->Z)
//     and SM_LIFT, plus
//   - a LEF-style macro with the pin geometry on the configured high metal
//     layer (M6/M8), sized and offset to land on that layer's tracks, and
//   - the set_disable_timing command list used at restoration time to kill
//     the misleading arcs (paper Sec. 4).
#pragma once

#include "netlist/cell_library.hpp"

#include <iosfwd>
#include <vector>
#include <string>

namespace sm::core {

/// Liberty-style description of SM_CORR and SM_LIFT for `lib`.
void write_correction_liberty(const netlist::CellLibrary& lib,
                              std::ostream& os);

/// LEF-style macros with pins on the correction layer.
void write_correction_lef(const netlist::CellLibrary& lib, std::ostream& os);

/// The restoration-time timing constraints: disable the erroneous arcs
/// (C->Z, D->Y) of every correction cell instance name passed in.
void write_restore_constraints(const std::vector<std::string>& instances,
                               std::ostream& os);

std::string correction_liberty(const netlist::CellLibrary& lib);
std::string correction_lef(const netlist::CellLibrary& lib);

}  // namespace sm::core
