#include "core/split.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace sm::core {

using netlist::NetId;
using netlist::Netlist;
using route::RouteGrid;
using util::GridPoint;

std::size_t SplitView::num_vpins() const {
  std::size_t n = 0;
  for (const auto& f : fragments) n += f.vpins.size();
  return n;
}

std::vector<std::size_t> SplitView::open_driver_fragments() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < fragments.size(); ++i)
    if (fragments[i].has_driver && !fragments[i].vpins.empty()) out.push_back(i);
  return out;
}

std::vector<std::size_t> SplitView::open_sink_fragments() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < fragments.size(); ++i)
    if (!fragments[i].has_driver && !fragments[i].sinks.empty()) out.push_back(i);
  return out;
}

namespace {

/// Per-net FEOL connectivity built by expanding route segments into grid
/// nodes (layers <= split only) and union-finding adjacency.
class FragmentBuilder {
 public:
  explicit FragmentBuilder(const RouteGrid& grid, int split)
      : grid_(&grid), split_(split) {}

  void add_segment(const route::RouteSegment& seg) {
    GridPoint cur = seg.a;
    for (;;) {
      GridPoint nxt = cur;
      bool done = (cur == seg.b);
      if (!done) {
        if (cur.x != seg.b.x) nxt.x += (seg.b.x > cur.x) ? 1 : -1;
        else if (cur.y != seg.b.y) nxt.y += (seg.b.y > cur.y) ? 1 : -1;
        else nxt.layer += (seg.b.layer > cur.layer) ? 1 : -1;
      }
      const bool cur_feol = cur.layer <= split_;
      const bool nxt_feol = nxt.layer <= split_;
      if (cur_feol) touch(cur);
      if (!done) {
        if (cur_feol && nxt_feol) {
          link(cur, nxt);
        } else if (cur_feol != nxt_feol) {
          // Crossing the split boundary: the FEOL-side node is a vpin.
          const GridPoint& feol_side = cur_feol ? cur : nxt;
          vpin_nodes_.push_back(grid_->index(feol_side));
        }
        // Remember lateral wire direction at the split layer for dangling
        // hints.
        if (cur_feol && nxt_feol && cur.layer == split_ &&
            nxt.layer == split_) {
          last_dir_[grid_->index(cur)] = {nxt.x - cur.x, nxt.y - cur.y};
          last_dir_[grid_->index(nxt)] = {nxt.x - cur.x, nxt.y - cur.y};
        }
      }
      if (done) break;
      cur = nxt;
    }
  }

  /// Component id of a FEOL node; npos if the node is not in the FEOL part.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t component_of(const GridPoint& g) {
    if (g.layer > split_) return npos;
    const auto it = node_comp_.find(grid_->index(g));
    return it == node_comp_.end() ? npos : find(it->second);
  }

  /// Finalize: returns (component -> vpins) plus canonical component count.
  std::map<std::size_t, std::vector<VPin>> vpins_by_component() {
    std::map<std::size_t, std::vector<VPin>> out;
    for (const auto nidx : vpin_nodes_) {
      const auto it = node_comp_.find(nidx);
      if (it == node_comp_.end()) continue;
      const std::size_t comp = find(it->second);
      VPin v;
      v.grid = grid_->at(nidx);
      v.pos = grid_->to_um(v.grid);
      const auto dit = last_dir_.find(nidx);
      if (dit != last_dir_.end()) {
        v.dir_dx = dit->second.first;
        v.dir_dy = dit->second.second;
      }
      out[comp].push_back(v);
    }
    return out;
  }

 private:
  void touch(const GridPoint& g) {
    const std::size_t idx = grid_->index(g);
    if (!node_comp_.count(idx)) {
      const std::size_t c = parent_.size();
      parent_.push_back(c);
      node_comp_[idx] = c;
    }
  }
  void link(const GridPoint& a, const GridPoint& b) {
    touch(a);
    touch(b);
    const std::size_t ra = find(node_comp_[grid_->index(a)]);
    const std::size_t rb = find(node_comp_[grid_->index(b)]);
    if (ra != rb) parent_[ra] = rb;
  }
  std::size_t find(std::size_t c) {
    while (parent_[c] != c) {
      parent_[c] = parent_[parent_[c]];
      c = parent_[c];
    }
    return c;
  }

  const RouteGrid* grid_;
  int split_;
  std::map<std::size_t, std::size_t> node_comp_;  ///< node index -> comp
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> vpin_nodes_;
  std::map<std::size_t, std::pair<int, int>> last_dir_;
};

}  // namespace

SplitView split_layout(const Netlist& nl, const place::Placement& pl,
                       const route::RoutingResult& routing,
                       const std::vector<route::RouteTask>& tasks,
                       std::size_t num_net_tasks, int split_layer) {
  if (split_layer < 1 || split_layer >= routing.grid.layers())
    throw std::invalid_argument("split_layout: bad split layer");
  SplitView view;
  view.split_layer = split_layer;

  for (std::size_t ti = 0; ti < num_net_tasks && ti < routing.routes.size();
       ++ti) {
    const auto& r = routing.routes[ti];
    if (!r.success || r.net == netlist::kInvalidNet) continue;
    const auto& net = nl.net(r.net);

    FragmentBuilder fb(routing.grid, split_layer);
    for (const auto& seg : r.segments) fb.add_segment(seg);

    // Map terminals to components via their pin-layer grid nodes.
    std::map<std::size_t, Fragment> frags;  // component -> fragment
    auto frag_for = [&](std::size_t comp) -> Fragment& {
      auto [it, fresh] = frags.try_emplace(comp);
      if (fresh) it->second.net = r.net;
      return it->second;
    };

    const GridPoint drv =
        routing.grid.snap(pl.of(net.driver), nl.type_of(net.driver).pin_layer);
    const std::size_t drv_comp = fb.component_of(drv);
    if (drv_comp != FragmentBuilder::npos) {
      Fragment& f = frag_for(drv_comp);
      f.has_driver = true;
      f.anchor = pl.of(net.driver);
    }
    for (const auto& s : net.sinks) {
      const GridPoint pin =
          routing.grid.snap(pl.of(s.cell), nl.type_of(s.cell).pin_layer);
      const std::size_t comp = fb.component_of(pin);
      if (comp == FragmentBuilder::npos) continue;
      Fragment& f = frag_for(comp);
      f.sinks.push_back(s);
      if (!f.has_driver && f.sinks.size() == 1) f.anchor = pl.of(s.cell);
    }
    for (auto& [comp, vpins] : fb.vpins_by_component()) {
      Fragment& f = frag_for(comp);
      f.vpins.insert(f.vpins.end(), vpins.begin(), vpins.end());
      if (!f.has_driver && f.sinks.empty() && !f.vpins.empty())
        f.anchor = f.vpins.front().pos;
    }
    for (auto& [comp, f] : frags) view.fragments.push_back(std::move(f));
  }
  (void)tasks;
  return view;
}

}  // namespace sm::core
