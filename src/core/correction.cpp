#include "core/correction.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace sm::core {

using netlist::NetId;
using netlist::Netlist;
using util::Point;
using util::Rect;

std::vector<std::size_t> CorrectionPlan::cells_on_net(NetId net) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (cells[i].tapped_net == net) out.push_back(i);
  return out;
}

namespace {

Point cell_pos(const Netlist& nl, const place::Placement& pl, NetId net,
               const netlist::Sink& wrong_sink) {
  const Point d = pl.of(nl.net(net).driver);
  const Point s = pl.of(wrong_sink.cell);
  return {(d.x + s.x) / 2.0, (d.y + s.y) / 2.0};
}

}  // namespace

CorrectionPlan plan_corrections(const Netlist& erroneous,
                                const SwapLedger& ledger,
                                const place::Placement& pl, int pin_layer) {
  CorrectionPlan plan;
  plan.pin_layer = pin_layer;
  plan.cells.reserve(ledger.entries.size() * 2);
  for (std::size_t e = 0; e < ledger.entries.size(); ++e) {
    const SwapEntry& entry = ledger.entries[e];
    // Cell A taps net_a, which now erroneously drives sink_b.
    CorrectionCell a;
    a.pos = cell_pos(erroneous, pl, entry.net_a, entry.sink_b);
    a.pin_layer = pin_layer;
    a.tapped_net = entry.net_a;
    a.entry = e;
    a.side = 0;
    // Cell B taps net_b, which now erroneously drives sink_a.
    CorrectionCell b;
    b.pos = cell_pos(erroneous, pl, entry.net_b, entry.sink_a);
    b.pin_layer = pin_layer;
    b.tapped_net = entry.net_b;
    b.entry = e;
    b.side = 1;
    const std::size_t ia = plan.cells.size();
    plan.cells.push_back(a);
    plan.cells.push_back(b);
    plan.wires.push_back({ia, ia + 1});      // A.Y -> B.D
    plan.wires.push_back({ia + 1, ia});      // B.Y -> A.D
  }
  legalize_corrections(plan, pl.floorplan.die, 1.4);
  return plan;
}

CorrectionPlan plan_naive_lift(const Netlist& nl,
                               const std::vector<NetId>& nets,
                               const place::Placement& pl, int pin_layer) {
  CorrectionPlan plan;
  plan.pin_layer = pin_layer;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const NetId n = nets[i];
    const auto& net = nl.net(n);
    double sx = pl.of(net.driver).x, sy = pl.of(net.driver).y;
    int cnt = 1;
    for (const auto& s : net.sinks) {
      sx += pl.of(s.cell).x;
      sy += pl.of(s.cell).y;
      ++cnt;
    }
    CorrectionCell c;
    c.pos = {sx / cnt, sy / cnt};
    c.pin_layer = pin_layer;
    c.tapped_net = n;
    c.entry = i;
    c.side = 0;
    plan.cells.push_back(c);
  }
  legalize_corrections(plan, pl.floorplan.die, 1.4);
  return plan;
}

void legalize_corrections(CorrectionPlan& plan, const Rect& die,
                          double site_um) {
  if (site_um <= 0) site_um = 1.0;
  const int nx = std::max(1, static_cast<int>(die.width() / site_um));
  const int ny = std::max(1, static_cast<int>(die.height() / site_um));
  std::unordered_set<std::int64_t> occupied;
  auto key = [&](int x, int y) {
    return static_cast<std::int64_t>(y) * (nx + 1) + x;
  };
  auto snap = [&](const Point& p, int& ix, int& iy) {
    ix = std::clamp(static_cast<int>((p.x - die.lo.x) / site_um), 0, nx - 1);
    iy = std::clamp(static_cast<int>((p.y - die.lo.y) / site_um), 0, ny - 1);
  };
  for (auto& cell : plan.cells) {
    int ix, iy;
    snap(cell.pos, ix, iy);
    // Spiral outward until a free site is found (the plan never holds more
    // cells than sites for realistic designs; give up gracefully otherwise).
    bool placed = false;
    for (int radius = 0; radius <= std::max(nx, ny) && !placed; ++radius) {
      for (int dy = -radius; dy <= radius && !placed; ++dy) {
        for (int dx = -radius; dx <= radius && !placed; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
          const int x = ix + dx, y = iy + dy;
          if (x < 0 || x >= nx || y < 0 || y >= ny) continue;
          if (occupied.count(key(x, y))) continue;
          occupied.insert(key(x, y));
          cell.pos = {die.lo.x + (x + 0.5) * site_um,
                      die.lo.y + (y + 0.5) * site_um};
          placed = true;
        }
      }
    }
  }
}

}  // namespace sm::core
