#include "core/libgen.hpp"

#include <ostream>
#include <sstream>
#include <vector>

namespace sm::core {

using netlist::CellLibrary;
using netlist::CellType;

namespace {

void write_timing_arc(std::ostream& os, const char* from, const CellType& t) {
  os << "      timing() {\n"
     << "        related_pin : \"" << from << "\";\n"
     << "        timing_sense : positive_unate;\n"
     << "        cell_rise(scalar) { values(\"" << t.intrinsic_delay_ps / 1000.0
     << "\"); }\n"
     << "        cell_fall(scalar) { values(\"" << t.intrinsic_delay_ps / 1000.0
     << "\"); }\n"
     << "        rise_resistance : " << t.drive_res_kohm << ";\n"
     << "        fall_resistance : " << t.drive_res_kohm << ";\n"
     << "      }\n";
}

}  // namespace

void write_correction_liberty(const CellLibrary& lib, std::ostream& os) {
  const CellType& corr = lib.type(lib.correction_cell());
  const CellType& lift = lib.type(lib.naive_lift_cell());

  os << "/* Correction-cell library definitions (on top of the Nangate-45-"
        "like base library).\n"
        " * SM_CORR is modeled as a 2-input-2-output OR gate; power/timing\n"
        " * characteristics are leveraged from BUF_X2. Pins sit in M"
     << corr.pin_layer << ".\n */\n";
  os << "library (sm_correction_cells) {\n";
  os << "  cell (" << corr.name << ") {\n"
     << "    area : " << corr.area_um2 << ";\n"
     << "    cell_leakage_power : " << corr.leakage_nw << ";\n";
  for (const char* pin : {"C", "D"}) {
    os << "    pin (" << pin << ") {\n"
       << "      direction : input;\n"
       << "      capacitance : " << corr.input_cap_ff / 1000.0 << ";\n"
       << "    }\n";
  }
  // Output Y: true arc from C, misleading arc from D (disabled after
  // restoration); output Z: misleading arc from C, true arc from D.
  for (const char* out : {"Y", "Z"}) {
    os << "    pin (" << out << ") {\n"
       << "      direction : output;\n"
       << "      function : \"(C | D)\";\n";
    write_timing_arc(os, "C", corr);
    write_timing_arc(os, "D", corr);
    os << "    }\n";
  }
  os << "  }\n";

  os << "  cell (" << lift.name << ") {\n"
     << "    area : " << lift.area_um2 << ";\n"
     << "    cell_leakage_power : " << lift.leakage_nw << ";\n"
     << "    pin (A) {\n      direction : input;\n      capacitance : "
     << lift.input_cap_ff / 1000.0 << ";\n    }\n"
     << "    pin (Y) {\n      direction : output;\n      function : \"A\";\n";
  write_timing_arc(os, "A", lift);
  os << "    }\n  }\n}\n";
}

void write_correction_lef(const CellLibrary& lib, std::ostream& os) {
  const CellType& corr = lib.type(lib.correction_cell());
  const auto& layer = lib.metal().layer(corr.pin_layer);
  const double pitch = layer.pitch_um;
  const double w = corr.width_um;
  const double h = lib.row_height_um();

  os << "# LEF-style macro for the correction cell. Pins are placed on "
     << layer.name << " tracks\n"
     << "# (pitch " << pitch << " um) so lifting and BEOL re-routing do not "
        "add congestion.\n"
     << "# The macro has no device-layer geometry: overlap with standard "
        "cells is legal.\n";
  os << "MACRO " << corr.name << "\n  CLASS COVER ;\n  SIZE " << w << " BY "
     << h << " ;\n";
  struct PinDef {
    const char* name;
    const char* dir;
    int track;
  };
  const PinDef pins[] = {
      {"C", "INPUT", 0}, {"D", "INPUT", 1}, {"Y", "OUTPUT", 2}, {"Z", "OUTPUT", 3}};
  for (const auto& p : pins) {
    const double y0 = (p.track + 0.5) * pitch;
    os << "  PIN " << p.name << "\n    DIRECTION " << p.dir << " ;\n"
       << "    PORT\n      LAYER " << layer.name << " ;\n        RECT 0.0 "
       << y0 - pitch / 4 << ' ' << w << ' ' << y0 + pitch / 4 << " ;\n"
       << "    END\n  END " << p.name << "\n";
  }
  os << "END " << corr.name << "\n";
}

void write_restore_constraints(const std::vector<std::string>& instances,
                               std::ostream& os) {
  os << "# Restoration constraints: only the true paths C->Y and D->Z remain\n"
     << "# active for timing/power optimization and evaluation (paper "
        "Sec. 4).\n";
  for (const auto& inst : instances) {
    os << "set_disable_timing " << inst << " -from C -to Z\n";
    os << "set_disable_timing " << inst << " -from D -to Y\n";
  }
}

std::string correction_liberty(const CellLibrary& lib) {
  std::ostringstream os;
  write_correction_liberty(lib, os);
  return os.str();
}

std::string correction_lef(const CellLibrary& lib) {
  std::ostringstream os;
  write_correction_lef(lib, os);
  return os.str();
}

}  // namespace sm::core
