#include "core/equivalence.hpp"

#include "sat/solver.hpp"
#include "netlist/topo.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <map>
#include <stdexcept>

// The miter construction leans on C++20 <bit> (std::popcount /
// std::countr_zero); without this guard a -std=c++17 build dies deep inside
// the function bodies with inscrutable lookup errors.
#if !defined(__cpp_lib_bitops) || __cpp_lib_bitops < 201907L
#error "sm requires C++20 <bit> (std::popcount/std::countr_zero); build with -std=c++20 or newer"
#endif

namespace sm::core {

using netlist::CellId;
using netlist::kInvalidNet;
using netlist::LogicFn;
using netlist::NetId;
using netlist::Netlist;
using sat::Lit;

namespace {

/// Source nets in canonical order: primary inputs, then DFF outputs.
std::vector<NetId> source_nets(const Netlist& nl) {
  std::vector<NetId> src;
  for (const CellId pi : nl.primary_inputs()) src.push_back(nl.cell(pi).output);
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (nl.is_dff(id)) src.push_back(nl.cell(id).output);
  return src;
}

/// Observer nets in canonical order: PO inputs, then DFF inputs.
std::vector<NetId> observer_nets(const Netlist& nl) {
  std::vector<NetId> obs;
  for (std::size_t i = 0; i < nl.primary_outputs().size(); ++i)
    obs.push_back(nl.primary_output_net(i));
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (nl.is_dff(id)) obs.push_back(nl.cell(id).inputs.at(0));
  return obs;
}

bool commutative(LogicFn fn) {
  switch (fn) {
    case LogicFn::And:
    case LogicFn::Nand:
    case LogicFn::Or:
    case LogicFn::Nor:
    case LogicFn::Xor:
    case LogicFn::Xnor:
      return true;
    default:
      return false;
  }
}

/// Canonical structural class per net, shared across both netlists.
class StructuralClasses {
 public:
  /// Class for a source with canonical index `i`.
  std::uint64_t source_class(std::size_t i) {
    return intern({~static_cast<std::uint64_t>(i), 0, 0});
  }

  std::uint64_t gate_class(LogicFn fn, std::vector<std::uint64_t> children) {
    if (commutative(fn)) std::sort(children.begin(), children.end());
    // Aoi21/Oai21: the first two children commute.
    if ((fn == LogicFn::Aoi21 || fn == LogicFn::Oai21) && children.size() == 3 &&
        children[0] > children[1])
      std::swap(children[0], children[1]);
    std::uint64_t h = 1469598103934665603ULL ^ static_cast<std::uint64_t>(fn);
    for (const auto c : children) {
      h ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return intern({h, static_cast<std::uint64_t>(fn), children.size()});
  }

 private:
  std::uint64_t intern(const std::array<std::uint64_t, 3>& key) {
    const auto [it, fresh] = ids_.try_emplace(key, ids_.size() + 1);
    return it->second;
  }
  std::map<std::array<std::uint64_t, 3>, std::uint64_t> ids_;
};

/// Compute structural classes for all nets of `nl` using shared `classes`.
std::vector<std::uint64_t> classify(const Netlist& nl,
                                    StructuralClasses& classes) {
  std::vector<std::uint64_t> cls(nl.num_nets(), 0);
  const auto srcs = source_nets(nl);
  for (std::size_t i = 0; i < srcs.size(); ++i)
    cls[srcs[i]] = classes.source_class(i);
  const auto order = netlist::topological_order(nl);
  if (!order) throw std::logic_error("check_equivalence: cyclic netlist");
  for (const CellId id : *order) {
    if (!nl.is_combinational(id)) continue;
    const auto& c = nl.cell(id);
    if (c.output == kInvalidNet || cls[c.output] != 0) continue;
    std::vector<std::uint64_t> children;
    for (const NetId in : c.inputs) children.push_back(cls[in]);
    cls[c.output] = classes.gate_class(nl.type_of(id).fn, std::move(children));
  }
  return cls;
}

/// Tseitin encoding of one netlist into `solver`; source nets use the shared
/// `source_vars`. Returns the variable of every net.
std::vector<int> encode(const Netlist& nl, sat::Solver& solver,
                        const std::vector<int>& source_vars) {
  std::vector<int> var(nl.num_nets(), -1);
  const auto srcs = source_nets(nl);
  for (std::size_t i = 0; i < srcs.size(); ++i) var[srcs[i]] = source_vars[i];
  const auto order = netlist::topological_order(nl);
  for (const CellId id : *order) {
    if (!nl.is_combinational(id)) continue;
    const auto& c = nl.cell(id);
    if (c.output == kInvalidNet || var[c.output] >= 0) continue;
    const int y = solver.new_var();
    var[c.output] = y;
    auto in = [&](std::size_t i) {
      return Lit::make(var[c.inputs[i]], true);
    };
    const Lit ly = Lit::make(y, true);
    switch (nl.type_of(id).fn) {
      case LogicFn::Buf:
        solver.add_clause({ly.negated(), in(0)});
        solver.add_clause({ly, in(0).negated()});
        break;
      case LogicFn::Inv:
        solver.add_clause({ly.negated(), in(0).negated()});
        solver.add_clause({ly, in(0)});
        break;
      case LogicFn::And:
      case LogicFn::Nand: {
        const bool neg = nl.type_of(id).fn == LogicFn::Nand;
        const Lit out = neg ? ly.negated() : ly;
        std::vector<Lit> big{out};
        for (std::size_t i = 0; i < c.inputs.size(); ++i) {
          solver.add_clause({out.negated(), in(i)});
          big.push_back(in(i).negated());
        }
        solver.add_clause(big);
        break;
      }
      case LogicFn::Or:
      case LogicFn::Nor: {
        const bool neg = nl.type_of(id).fn == LogicFn::Nor;
        const Lit out = neg ? ly.negated() : ly;
        std::vector<Lit> big{out.negated()};
        for (std::size_t i = 0; i < c.inputs.size(); ++i) {
          solver.add_clause({out, in(i).negated()});
          big.push_back(in(i));
        }
        solver.add_clause(big);
        break;
      }
      case LogicFn::Xor:
      case LogicFn::Xnor: {
        // y = a ^ b (^ 1 for xnor): flip y literal for xnor.
        const bool neg = nl.type_of(id).fn == LogicFn::Xnor;
        const Lit out = neg ? ly.negated() : ly;
        solver.add_clause({out.negated(), in(0), in(1)});
        solver.add_clause({out.negated(), in(0).negated(), in(1).negated()});
        solver.add_clause({out, in(0), in(1).negated()});
        solver.add_clause({out, in(0).negated(), in(1)});
        break;
      }
      case LogicFn::Aoi21:
      case LogicFn::Oai21: {
        // t = A op1 B; y = !(t op2 C). Aoi: op1=and, op2=or.
        const bool aoi = nl.type_of(id).fn == LogicFn::Aoi21;
        const int t = solver.new_var();
        const Lit lt = Lit::make(t, true);
        if (aoi) {  // t = a & b
          solver.add_clause({lt.negated(), in(0)});
          solver.add_clause({lt.negated(), in(1)});
          solver.add_clause({lt, in(0).negated(), in(1).negated()});
        } else {  // t = a | b
          solver.add_clause({lt, in(0).negated()});
          solver.add_clause({lt, in(1).negated()});
          solver.add_clause({lt.negated(), in(0), in(1)});
        }
        const Lit ny = ly.negated();  // s = !y, so y = !(t op2 c)
        if (aoi) {  // !y = t | c
          solver.add_clause({ny, lt.negated()});
          solver.add_clause({ny, in(2).negated()});
          solver.add_clause({ny.negated(), lt, in(2)});
        } else {  // !y = t & c
          solver.add_clause({ny.negated(), lt});
          solver.add_clause({ny.negated(), in(2)});
          solver.add_clause({ny, lt.negated(), in(2).negated()});
        }
        break;
      }
      case LogicFn::Mux2: {
        // y = s ? b : a   (inputs a=0, b=1, s=2)
        solver.add_clause({in(2).negated(), in(1).negated(), ly});
        solver.add_clause({in(2).negated(), in(1), ly.negated()});
        solver.add_clause({in(2), in(0).negated(), ly});
        solver.add_clause({in(2), in(0), ly.negated()});
        break;
      }
      case LogicFn::Const0:
        solver.add_clause({ly.negated()});
        break;
      case LogicFn::Const1:
        solver.add_clause({ly});
        break;
      case LogicFn::Dff:
      case LogicFn::Port:
        break;  // handled as sources/observers
    }
  }
  return var;
}

}  // namespace

bool counterexample_distinguishes(const Netlist& a, const Netlist& b,
                                  const std::vector<bool>& assignment) {
  sim::Simulator sa(a), sb(b);
  if (sa.num_sources() != assignment.size()) return false;
  std::vector<std::uint64_t> words(assignment.size());
  for (std::size_t i = 0; i < assignment.size(); ++i)
    words[i] = assignment[i] ? ~0ULL : 0ULL;
  std::vector<std::uint64_t> oa, ob;
  sa.eval(words, oa);
  sb.eval(words, ob);
  for (std::size_t i = 0; i < oa.size(); ++i)
    if ((oa[i] & 1) != (ob[i] & 1)) return true;
  return false;
}

EquivResult check_equivalence(const Netlist& a, const Netlist& b,
                              const EquivOptions& opts) {
  EquivResult result;
  const auto src_a = source_nets(a);
  const auto src_b = source_nets(b);
  const auto obs_a = observer_nets(a);
  const auto obs_b = observer_nets(b);
  if (src_a.size() != src_b.size() || obs_a.size() != obs_b.size())
    throw std::invalid_argument(
        "check_equivalence: source/observer count mismatch");

  // Layer 1: structural hashing.
  {
    StructuralClasses classes;
    const auto cls_a = classify(a, classes);
    const auto cls_b = classify(b, classes);
    bool all_equal = true;
    for (std::size_t i = 0; i < obs_a.size(); ++i)
      if (cls_a[obs_a[i]] != cls_b[obs_b[i]]) all_equal = false;
    if (all_equal) {
      result.verdict = EquivVerdict::Equivalent;
      result.method = "structural";
      return result;
    }
  }

  // Layer 2: random simulation.
  {
    sim::Simulator sa(a), sb(b);
    util::Rng rng(opts.seed ^ 0xec21ULL);
    std::vector<std::uint64_t> in(sa.num_sources());
    std::vector<std::uint64_t> oa, ob;
    const std::size_t words = (opts.sim_patterns + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
      for (auto& word : in) word = rng();
      sa.eval(in, oa);
      sb.eval(in, ob);
      std::uint64_t diff = 0;
      for (std::size_t i = 0; i < oa.size(); ++i) diff |= oa[i] ^ ob[i];
      if (diff != 0) {
        const int bit = std::countr_zero(diff);
        result.verdict = EquivVerdict::Inequivalent;
        result.method = "simulation";
        result.counterexample.resize(in.size());
        for (std::size_t i = 0; i < in.size(); ++i)
          result.counterexample[i] = ((in[i] >> bit) & 1) != 0;
        return result;
      }
    }
  }

  // Layer 3: SAT on the miter.
  sat::Solver solver;
  std::vector<int> source_vars(src_a.size());
  for (auto& v : source_vars) v = solver.new_var();
  const auto var_a = encode(a, solver, source_vars);
  const auto var_b = encode(b, solver, source_vars);
  std::vector<Lit> any_diff;
  for (std::size_t i = 0; i < obs_a.size(); ++i) {
    const int va = var_a[obs_a[i]];
    const int vb = var_b[obs_b[i]];
    const int d = solver.new_var();
    const Lit ld = Lit::make(d, true);
    const Lit la = Lit::make(va, true);
    const Lit lb = Lit::make(vb, true);
    // d = va ^ vb
    solver.add_clause({ld.negated(), la, lb});
    solver.add_clause({ld.negated(), la.negated(), lb.negated()});
    solver.add_clause({ld, la, lb.negated()});
    solver.add_clause({ld, la.negated(), lb});
    any_diff.push_back(ld);
  }
  solver.add_clause(any_diff);

  const sat::Result sr = solver.solve({}, opts.sat_conflict_budget);
  result.sat_conflicts = solver.conflicts();
  result.method = "sat";
  switch (sr) {
    case sat::Result::Unsat:
      result.verdict = EquivVerdict::Equivalent;
      break;
    case sat::Result::Sat: {
      result.verdict = EquivVerdict::Inequivalent;
      result.counterexample.resize(source_vars.size());
      for (std::size_t i = 0; i < source_vars.size(); ++i)
        result.counterexample[i] = solver.value(source_vars[i]);
      break;
    }
    case sat::Result::Unknown:
      result.verdict = EquivVerdict::Unknown;
      break;
  }
  return result;
}

}  // namespace sm::core
