#include "core/protect.hpp"

#include "core/equivalence.hpp"
#include "core/pipeline.hpp"

#include "sim/simulator.hpp"
#include "util/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace sm::core {

using netlist::NetId;
using netlist::Netlist;
using route::RouteTask;
using route::Terminal;

double tuned_gcell_um(const FlowOptions& opts, const place::Floorplan& fp) {
  if (!opts.auto_gcell) return opts.router.gcell_um;
  const double dim = std::max(fp.die.width(), fp.die.height());
  return std::clamp(dim / 48.0, 1.0, 2.8);
}

LayoutResult layout_original(const Netlist& nl, const FlowOptions& opts) {
  // The unprotected reference is exactly the staged pipeline, stage by
  // stage: place (buffering included), then route + PPA.
  return route_design(nl, place_design(nl, opts), opts);
}

NaiveLiftDesign layout_naive_lift(const Netlist& nl,
                                  const std::vector<NetId>& nets,
                                  const FlowOptions& opts) {
  NaiveLiftDesign out;
  place::Placer placer(opts.placer);
  out.layout.placement = placer.place(nl);
  out.plan =
      plan_naive_lift(nl, nets, out.layout.placement, opts.lift_layer);

  // Lift constraints per net.
  std::vector<int> min_layer(nl.num_nets(), 1);
  for (const NetId n : nets) min_layer[n] = opts.lift_layer;
  out.layout.tasks = route::make_tasks(nl, out.layout.placement, min_layer);
  // Add the lift cell as an extra terminal of its net (pin in M6/M8).
  for (auto& task : out.layout.tasks) {
    for (const auto ci : out.plan.cells_on_net(task.net))
      task.terminals.push_back({out.plan.cells[ci].pos, opts.lift_layer});
  }
  out.layout.num_net_tasks = out.layout.tasks.size();
  route::Router router(tuned_router(opts, out.layout.placement.floorplan));
  out.layout.routing = router.route(
      out.layout.tasks, out.layout.placement.floorplan.die, nl.library().metal());

  // Lift cells load their nets like a BUF_X2 input (paper: characteristics
  // borrowed from BUF_X2) and add one cell traversal of delay.
  const auto& lift_type = nl.library().type(nl.library().naive_lift_cell());
  std::vector<timing::NetExtra> extra(nl.num_nets());
  for (const NetId n : nets) {
    extra[n].cap_ff += lift_type.input_cap_ff;
    extra[n].delay_ps += lift_type.intrinsic_delay_ps;
  }
  out.layout.ppa = evaluate_ppa(nl, out.layout, opts, extra);
  return out;
}

ProtectedDesign protect(const Netlist& original,
                        const RandomizeOptions& rand_opts,
                        const FlowOptions& opts) {
  ProtectedDesign out{Netlist(original.library()), Netlist(original.library()),
                      {}, {}, {}, 0, 0, false};

  // (1) Randomize.
  RandomizeResult rr = randomize(original, rand_opts);
  out.erroneous = std::move(rr.erroneous);
  out.ledger = std::move(rr.ledger);
  out.oer = rr.oer;
  out.hd = rr.hd;

  // (2) Place the erroneous netlist. Swapped drivers/sinks are "don't
  // touch" in the paper's Innovus flow, which maps to: the placer simply
  // places what it is given, no logic restructuring exists in this model.
  place::Placer placer(opts.placer);
  out.layout.placement = placer.place(out.erroneous);
  if (opts.buffering) {
    // Drive-strength fixing on the *erroneous* netlist: the repeater sizes
    // the FEOL reveals now describe wrong connectivity (paper Sec. 3).
    // Swapped drivers/sinks are "don't touch": protected nets are skipped.
    place::BufferingOptions bopts = opts.buffering_opts;
    bopts.skip = out.ledger.protected_nets();
    place::insert_buffers(out.erroneous, out.layout.placement, bopts);
    place::legalize_rows(out.erroneous, out.layout.placement);
  }

  // (3) Embed correction cells and prepare lifting.
  out.plan = plan_corrections(out.erroneous, out.ledger, out.layout.placement,
                              opts.lift_layer);
  const auto protected_nets = out.ledger.protected_nets();
  std::vector<int> min_layer(out.erroneous.num_nets(), 1);
  for (const NetId n : protected_nets) min_layer[n] = opts.lift_layer;

  // (4) Route: erroneous nets (through their correction cells, lifted) plus
  // the BEOL restoration wires between correction-cell pairs.
  out.layout.tasks = route::make_tasks(out.erroneous, out.layout.placement,
                                       min_layer);
  for (auto& task : out.layout.tasks) {
    if (task.min_layer != opts.lift_layer) continue;
    for (const auto ci : out.plan.cells_on_net(task.net))
      task.terminals.push_back({out.plan.cells[ci].pos, opts.lift_layer});
  }
  out.layout.num_net_tasks = out.layout.tasks.size();
  for (const auto& wire : out.plan.wires) {
    RouteTask t;
    t.net = netlist::kInvalidNet;  // BEOL-only, not a netlist net
    t.min_layer = opts.lift_layer;
    t.terminals = {
        Terminal{out.plan.cells[wire.from_cell].pos, opts.lift_layer},
        Terminal{out.plan.cells[wire.to_cell].pos, opts.lift_layer}};
    out.layout.tasks.push_back(std::move(t));
  }
  route::Router router(tuned_router(opts, out.layout.placement.floorplan));
  out.layout.routing =
      router.route(out.layout.tasks, out.layout.placement.floorplan.die,
                   out.erroneous.library().metal());

  // (5) Restore at the netlist level and check equivalence (the physical
  // restoration is the pair wires routed above; the netlist-level check is
  // our Formality substitute). `restored` keeps any repeaters the sizing
  // pass added, so it is the netlist the finished chip implements.
  out.restored = out.erroneous.clone();
  restore_netlist(out.restored, out.ledger);
  EquivOptions eopts;
  eopts.seed = opts.seed ^ 0xec01ULL;
  out.restored_ok = check_equivalence(original, out.restored, eopts).verdict ==
                    EquivVerdict::Equivalent;
  const Netlist& restored = out.restored;

  // (6) PPA of the restored functionality on the fabricated layout.
  // A restored protected connection D1->S1 runs: D1's erroneous net (to
  // correction cell A), one BEOL pair wire, and the sink-side piece of the
  // partner erroneous net (cell B's Z pin stub to S1). We model the partner
  // piece as half that net's parasitics, and each traversal adds two
  // correction-cell delays/input loads (characteristics of BUF_X2).
  auto par = timing::extract_parasitics(out.erroneous, out.layout.routing);
  std::vector<timing::NetParasitics> wire_par(out.plan.wires.size());
  for (std::size_t w = 0; w < out.plan.wires.size(); ++w) {
    const auto& r = out.layout.routing.routes[out.layout.num_net_tasks + w];
    const auto& stack = original.library().metal();
    const double g = out.layout.routing.grid.gcell_um();
    for (const auto& seg : r.segments) {
      if (seg.is_via()) {
        const int lo = std::min(seg.a.layer, seg.b.layer);
        const int hi = std::max(seg.a.layer, seg.b.layer);
        for (int l = lo; l < hi; ++l) {
          wire_par[w].cap_ff += stack.via_cap_ff(l);
          wire_par[w].res_kohm += stack.via_res_ohm(l) / 1000.0;
        }
      } else {
        const auto& m = stack.layer(seg.a.layer);
        wire_par[w].cap_ff += seg.gcell_length() * g * m.cap_ff_per_um;
        wire_par[w].res_kohm += seg.gcell_length() * g * m.res_ohm_per_um / 1000.0;
      }
    }
  }
  const auto& corr = original.library().type(original.library().correction_cell());
  std::vector<timing::NetExtra> extra(restored.num_nets());
  // Snapshot the fabricated parasitics: partner contributions must come from
  // the base routes, not from values already inflated by earlier entries
  // (nets may participate in several swaps).
  const std::vector<timing::NetParasitics> base_par = par;
  for (std::size_t e = 0; e < out.ledger.entries.size(); ++e) {
    const auto& entry = out.ledger.entries[e];
    // Wire 2e restores net_a's signal (A.Y -> B.D), wire 2e+1 net_b's.
    auto account = [&](NetId net, NetId partner, std::size_t w) {
      par[net].cap_ff += wire_par[w].cap_ff + 0.5 * base_par[partner].cap_ff;
      par[net].res_kohm +=
          wire_par[w].res_kohm + 0.5 * base_par[partner].res_kohm;
      extra[net].cap_ff += 2.0 * corr.input_cap_ff;
      extra[net].delay_ps +=
          2.0 * corr.intrinsic_delay_ps +
          corr.drive_res_kohm * (wire_par[w].cap_ff + corr.input_cap_ff);
    };
    account(entry.net_a, entry.net_b, 2 * e);
    account(entry.net_b, entry.net_a, 2 * e + 1);
  }
  timing::Sta sta(opts.op);
  const auto activity =
      sim::toggle_rates(restored, opts.activity_patterns, opts.seed ^ 0xac7ULL);
  out.layout.ppa = sta.analyze_with(restored, out.layout.placement, par,
                                    out.layout.routing.stats.total_wire_um(),
                                    activity, extra);
  return out;
}

ProtectedDesign protect_with_budget(const Netlist& original,
                                    RandomizeOptions rand_opts,
                                    const FlowOptions& opts,
                                    const timing::PpaReport& reference,
                                    double budget_pct, int max_rounds) {
  ProtectedDesign best = protect(original, rand_opts, opts);
  auto overhead = [&](const ProtectedDesign& d) {
    const double pwr = util::pct_delta(reference.total_power_uw(),
                                       d.layout.ppa.total_power_uw());
    const double dly = util::pct_delta(reference.critical_path_ps,
                                       d.layout.ppa.critical_path_ps);
    return std::max(pwr, dly);
  };
  if (overhead(best) > budget_pct) return best;  // even the base overshoots

  for (int round = 1; round < max_rounds; ++round) {
    rand_opts.max_swaps *= 2;
    rand_opts.target_oer = 1.1;  // OER can't exceed 1: spend the full budget
    ProtectedDesign next = protect(original, rand_opts, opts);
    if (overhead(next) > budget_pct) break;
    if (next.ledger.entries.size() <= best.ledger.entries.size()) break;
    best = std::move(next);
  }
  return best;
}

}  // namespace sm::core
