// The staged layout pipeline and its cross-defense cache.
//
// Producing a layout is a chain of defense-independent stages —
//
//   netlist  ──place_design──▶  PlacedDesign  ──route_design──▶  LayoutResult
//
// — and `layout_original()` is exactly that chain. The protection flow and
// the prior-art baselines branch off it: protect() re-places a *different*
// (erroneous) netlist, but every defense of one (bench, seed) pair starts
// from the same generated netlist, and every attack on the unprotected
// reference starts from the same base placement and route. LayoutCache
// memoizes those shared products so a sweep computes them once per
// (bench, seed) instead of once per (bench, seed, defense).
#pragma once

#include "core/protect.hpp"

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sm::core {

/// Stage-1 product: a netlist placed and, when FlowOptions::buffering is
/// on, repeater-sized (the sized netlist is what the layout implements).
struct PlacedDesign {
  place::Placement placement;
  /// Present only when buffering ran; route/report against this netlist.
  std::optional<netlist::Netlist> sized;

  const netlist::Netlist& physical(const netlist::Netlist& logical) const {
    return sized ? *sized : logical;
  }
};

/// Stage 1: place `nl` (plus optional repeater insertion + re-legalization).
/// Deterministic in (nl, opts).
PlacedDesign place_design(const netlist::Netlist& nl, const FlowOptions& opts);

/// Stage 2: route a placed design and evaluate its PPA. Deterministic in
/// (nl, placed, opts); RouterOptions::jobs never changes the result.
/// The const-ref overload copies the stage-1 products (what a cached,
/// shared PlacedDesign needs); the rvalue overload moves them (the
/// single-use layout_original path).
LayoutResult route_design(const netlist::Netlist& nl,
                          const PlacedDesign& placed, const FlowOptions& opts);
LayoutResult route_design(const netlist::Netlist& nl, PlacedDesign&& placed,
                          const FlowOptions& opts);

/// Router options tuned to a floorplan (the auto-gcell sizing rule).
/// Shared by every stage that routes, including protect().
route::RouterOptions tuned_router(const FlowOptions& opts,
                                  const place::Floorplan& fp);

/// Linear-model STA + activity-based power of a routed layout.
timing::PpaReport evaluate_ppa(const netlist::Netlist& nl,
                               const LayoutResult& layout,
                               const FlowOptions& opts,
                               const std::vector<timing::NetExtra>& extra = {});

/// Canonical JSON of every FlowOptions field that can change a layout —
/// the flow half of a sweep cell's config hash (util::config_hash over the
/// cell recipe, see sweep/store.hpp). Covers the placer, the router, the
/// lift layer, the operating point, the activity/seed inputs, and the
/// buffering knobs. Deliberately EXCLUDED, because they are scheduling
/// only and provably never change results: `router.jobs` and
/// `router.partition_depth` (both bit-identity-tested) — two runs that
/// differ only in those must resolve to the same stored cell.
/// `buffering_opts.skip` is also omitted: it is per-call runtime state
/// (the protected-net list), fully determined by fields already hashed.
std::string canonical_flow_json(const FlowOptions& opts);

/// Memoizes the defense-independent stage products of benchmark instances:
/// the generated netlist, its placement (stage 1), and the unprotected
/// base layout (stage 2). Stages build lazily and independently — a sweep
/// whose grid holds only protected defenses never routes a base layout.
///
/// Keys are caller-chosen strings. Invalidation contract: the cache trusts
/// a key to fully determine every builder input (generator spec, seed,
/// FlowOptions), entries are immutable once built, and nothing is ever
/// evicted — callers changing any stage input must fold it into the key or
/// use a fresh cache, and returned references stay valid for the cache's
/// lifetime.
///
/// Thread-safe: concurrent calls build each (key, stage) at most once
/// (later callers block until the builder finishes). Builders must not
/// re-enter the cache with the same key.
class LayoutCache {
 public:
  LayoutCache();
  ~LayoutCache();  // out of line: Entry is incomplete here
  LayoutCache(const LayoutCache&) = delete;
  LayoutCache& operator=(const LayoutCache&) = delete;

  /// The generated netlist for `key`, built on first use.
  const netlist::Netlist& netlist(
      const std::string& key,
      const std::function<netlist::Netlist()>& build);

  /// Stage 1 for `key`: placement of `nl` under `opts`, built on first use.
  const PlacedDesign& placed(const std::string& key,
                             const netlist::Netlist& nl,
                             const FlowOptions& opts);

  /// Stage 2 for `key`: the unprotected base layout (routes stage 1's
  /// placement), built on first use.
  const LayoutResult& base_layout(const std::string& key,
                                  const netlist::Netlist& nl,
                                  const FlowOptions& opts);

  /// Build counters (how often each stage actually ran) plus the number of
  /// calls served from an already-built stage. The sweep's
  /// placement-once-per-(bench, seed) guarantee is asserted against these.
  struct Stats {
    std::size_t netlists = 0;
    std::size_t placements = 0;
    std::size_t base_routes = 0;
    std::size_t hits = 0;
  };
  Stats stats() const;

 private:
  struct Entry;
  Entry& entry(const std::string& key);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  Stats stats_;
};

}  // namespace sm::core
