// Simplified DEF-style layout export.
//
// The paper releases its protected layouts as DEF files together with a DEF
// splitting script. We provide the equivalent for this substrate: a
// DEF-flavoured text dump of the floorplan, placed components, and routed
// nets (wire segments and vias per metal layer), plus a split export that
// keeps only the FEOL (layers <= split) and emits the vpin list — exactly
// what an attacker in the untrusted fab would receive.
//
// The syntax follows DEF conventions (DESIGN/DIEAREA/COMPONENTS/NETS) but is
// intentionally a subset; the reader in this module round-trips it.
#pragma once

#include "core/split.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/router.hpp"

#include <iosfwd>
#include <string>

namespace sm::core {

/// Write the full layout (all layers).
void write_def(const netlist::Netlist& nl, const place::Placement& pl,
               const route::RoutingResult& routing,
               const std::vector<route::RouteTask>& tasks, std::ostream& os);

/// Write the FEOL-only view after splitting: wiring at layers <= split_layer
/// plus a VPINS section listing the dangling via locations.
void write_split_def(const netlist::Netlist& nl, const place::Placement& pl,
                     const route::RoutingResult& routing,
                     const std::vector<route::RouteTask>& tasks,
                     std::size_t num_net_tasks, int split_layer,
                     std::ostream& os);

std::string to_def(const netlist::Netlist& nl, const place::Placement& pl,
                   const route::RoutingResult& routing,
                   const std::vector<route::RouteTask>& tasks);

/// Parsed summary of a DEF dump (component count, net count, per-layer
/// segment counts) — enough for integrity checks and tests.
struct DefSummary {
  std::string design;
  std::size_t components = 0;
  std::size_t nets = 0;
  std::size_t vpins = 0;
  std::array<std::size_t, netlist::MetalStack::kNumLayers + 1> segments{};
};
DefSummary read_def_summary(std::istream& is);

}  // namespace sm::core
