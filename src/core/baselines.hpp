// Prior-art defense baselines the paper compares against (Tables 4, 5, 6).
//
// The paper quotes the original publications' numbers; we additionally
// *implement* each mechanism so the benches can measure all defenses under
// one attack harness on the same benchmarks:
//
//  - Placement perturbation, Wang et al. [5]: selectively swap gate
//    locations after placement (netlist untouched).
//  - Randomization strategies, Sengupta et al. [8]: location shuffling
//    within candidate classes — Random (any gate), G-Color (gates of equal
//    fan-in), G-Type1 (identical cell type), G-Type2 (same logic function,
//    any drive strength).
//  - Pin swapping, Rajendran et al. [3]: a small number of real connection
//    swaps corrected in the BEOL, without lifting or correction cells.
//  - Routing perturbation, Wang et al. [12]: selected nets are detoured and
//    elevated above the split layer (netlist untouched).
//  - Routing blockage, Magana et al. [7]: lateral routing blockages force
//    wires upward implicitly.
#pragma once

#include "core/pipeline.hpp"

#include <cstdint>

namespace sm::core {

enum class PerturbStrategy { Random, GColor, GType1, GType2 };

/// [5]/[8]: place the netlist, then swap the locations of `fraction` of the
/// gates within the strategy's candidate classes, and re-route. Swaps are
/// bounded to `radius_frac` of the die width — the published schemes bound
/// displacement to keep the layout routable, which is also why they only
/// dent the proximity signal instead of destroying it.
///
/// Each placement-consuming baseline has two entry points: the original
/// self-placing signature, and an overload taking a shared stage-1
/// `PlacedDesign` (what `sweep` feeds from `LayoutCache::placed` so one
/// placement serves every baseline defense of a (bench, seed) pair). The
/// self-placing form places directly — bit-identical to its pre-overload
/// behavior — and the overload perturbs a *copy* of the given placement.
LayoutResult layout_placement_perturbed(const netlist::Netlist& nl,
                                        const FlowOptions& opts,
                                        PerturbStrategy strategy,
                                        double fraction, std::uint64_t seed,
                                        double radius_frac = 0.2);
LayoutResult layout_placement_perturbed(const netlist::Netlist& nl,
                                        const FlowOptions& opts,
                                        const PlacedDesign& placed,
                                        PerturbStrategy strategy,
                                        double fraction, std::uint64_t seed,
                                        double radius_frac = 0.2);

/// [3]: `num_swaps` real connection swaps (tracked in the ledger for BEOL
/// correction), routed without lifting or correction cells.
struct SwappedLayout {
  netlist::Netlist erroneous;
  SwapLedger ledger;
  LayoutResult layout;
};
SwappedLayout layout_pin_swapped(const netlist::Netlist& nl,
                                 const FlowOptions& opts,
                                 std::size_t num_swaps, std::uint64_t seed);

/// [12]: elevate and detour `fraction` of the nets above `elevate_to`.
LayoutResult layout_routing_perturbed(const netlist::Netlist& nl,
                                      const FlowOptions& opts, double fraction,
                                      int elevate_to, std::uint64_t seed);
LayoutResult layout_routing_perturbed(const netlist::Netlist& nl,
                                      const FlowOptions& opts,
                                      const PlacedDesign& placed,
                                      double fraction, int elevate_to,
                                      std::uint64_t seed);

/// [7]: scatter `num_blockages` square lateral blockages of `size_um` on
/// layers up to `max_layer`, then route normally.
LayoutResult layout_routing_blockage(const netlist::Netlist& nl,
                                     const FlowOptions& opts,
                                     int num_blockages, double size_um,
                                     int max_layer, std::uint64_t seed);
LayoutResult layout_routing_blockage(const netlist::Netlist& nl,
                                     const FlowOptions& opts,
                                     const PlacedDesign& placed,
                                     int num_blockages, double size_um,
                                     int max_layer, std::uint64_t seed);

}  // namespace sm::core
