#include "core/defio.hpp"

#include <ostream>
#include <sstream>

namespace sm::core {

using netlist::Netlist;
using route::RouteTask;
using route::RoutingResult;

namespace {

constexpr double kDbu = 1000.0;  // database units per micron

long dbu(double um) { return std::lround(um * kDbu); }

void write_header(const Netlist& nl, const place::Placement& pl,
                  std::ostream& os) {
  os << "VERSION 5.8 ;\nDESIGN " << nl.name() << " ;\nUNITS DISTANCE MICRONS "
     << static_cast<long>(kDbu) << " ;\n";
  const auto& die = pl.floorplan.die;
  os << "DIEAREA ( " << dbu(die.lo.x) << ' ' << dbu(die.lo.y) << " ) ( "
     << dbu(die.hi.x) << ' ' << dbu(die.hi.y) << " ) ;\n";
}

void write_components(const Netlist& nl, const place::Placement& pl,
                      std::ostream& os) {
  std::size_t count = 0;
  for (netlist::CellId id = 0; id < nl.num_cells(); ++id)
    if (!nl.is_port(id)) ++count;
  os << "COMPONENTS " << count << " ;\n";
  for (netlist::CellId id = 0; id < nl.num_cells(); ++id) {
    if (nl.is_port(id)) continue;
    const auto& p = pl.of(id);
    os << "- " << nl.cell(id).name << ' ' << nl.type_of(id).name
       << " + PLACED ( " << dbu(p.x) << ' ' << dbu(p.y) << " ) N ;\n";
  }
  os << "END COMPONENTS\n";
}

void write_nets(const Netlist& nl, const RoutingResult& routing,
                const std::vector<RouteTask>& tasks, int max_layer,
                std::ostream& os) {
  os << "NETS " << tasks.size() << " ;\n";
  for (std::size_t ti = 0; ti < tasks.size() && ti < routing.routes.size();
       ++ti) {
    const auto& r = routing.routes[ti];
    const std::string name = (r.net == netlist::kInvalidNet)
                                 ? "beol_wire_" + std::to_string(ti)
                                 : nl.net(r.net).name;
    os << "- " << name << "\n";
    for (const auto& seg : r.segments) {
      if (std::min(seg.a.layer, seg.b.layer) > max_layer) continue;
      const auto a = routing.grid.to_um(seg.a);
      const auto b = routing.grid.to_um(
          {seg.b.x, seg.b.y, std::min(seg.b.layer, max_layer)});
      if (seg.is_via()) {
        const int top = std::min(std::max(seg.a.layer, seg.b.layer), max_layer);
        os << "  + ROUTED M" << std::min(seg.a.layer, seg.b.layer) << " ( "
           << dbu(a.x) << ' ' << dbu(a.y) << " ) VIA" << top << "\n";
      } else {
        os << "  + ROUTED M" << seg.a.layer << " ( " << dbu(a.x) << ' '
           << dbu(a.y) << " ) ( " << dbu(b.x) << ' ' << dbu(b.y) << " )\n";
      }
    }
    os << "  ;\n";
  }
  os << "END NETS\n";
}

}  // namespace

void write_def(const Netlist& nl, const place::Placement& pl,
               const RoutingResult& routing,
               const std::vector<RouteTask>& tasks, std::ostream& os) {
  write_header(nl, pl, os);
  write_components(nl, pl, os);
  write_nets(nl, routing, tasks, netlist::MetalStack::kNumLayers, os);
  os << "END DESIGN\n";
}

void write_split_def(const Netlist& nl, const place::Placement& pl,
                     const RoutingResult& routing,
                     const std::vector<RouteTask>& tasks,
                     std::size_t num_net_tasks, int split_layer,
                     std::ostream& os) {
  write_header(nl, pl, os);
  write_components(nl, pl, os);
  // Only net tasks appear in the FEOL; BEOL-only restoration wires vanish.
  const std::vector<RouteTask> feol_tasks(tasks.begin(),
                                          tasks.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  std::min(num_net_tasks,
                                                           tasks.size())));
  write_nets(nl, routing, feol_tasks, split_layer, os);
  const SplitView view =
      split_layout(nl, pl, routing, tasks, num_net_tasks, split_layer);
  os << "VPINS " << view.num_vpins() << " ;\n";
  for (const auto& f : view.fragments)
    for (const auto& v : f.vpins)
      os << "- ( " << dbu(v.pos.x) << ' ' << dbu(v.pos.y) << " ) M"
         << split_layer << " DIR ( " << v.dir_dx << ' ' << v.dir_dy << " ) ;\n";
  os << "END VPINS\nEND DESIGN\n";
}

std::string to_def(const Netlist& nl, const place::Placement& pl,
                   const RoutingResult& routing,
                   const std::vector<RouteTask>& tasks) {
  std::ostringstream os;
  write_def(nl, pl, routing, tasks, os);
  return os.str();
}

DefSummary read_def_summary(std::istream& is) {
  DefSummary s;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "DESIGN") {
      ls >> s.design;
    } else if (tok == "COMPONENTS") {
      ls >> s.components;
    } else if (tok == "NETS") {
      ls >> s.nets;
    } else if (tok == "VPINS") {
      ls >> s.vpins;
    } else if (tok == "+") {
      std::string kind, layer;
      ls >> kind >> layer;
      if (kind == "ROUTED" && layer.size() >= 2 && layer[0] == 'M') {
        const int l = std::atoi(layer.c_str() + 1);
        if (l >= 1 && l <= netlist::MetalStack::kNumLayers)
          ++s.segments[static_cast<std::size_t>(l)];
      }
    }
  }
  return s;
}

}  // namespace sm::core
