#include "core/randomizer.hpp"

#include "netlist/topo.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace sm::core {

using netlist::CellId;
using netlist::kInvalidNet;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sink;

std::vector<NetId> SwapLedger::protected_nets() const {
  std::vector<NetId> nets;
  for (const auto& e : entries) {
    nets.push_back(e.net_a);
    nets.push_back(e.net_b);
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
  return nets;
}

std::vector<std::pair<NetId, Sink>> SwapLedger::true_connections() const {
  // Replaying forward, remember the first net each sink was seen on — that
  // is its true (original) source regardless of later re-swaps.
  std::map<std::pair<CellId, int>, NetId> first_net;
  for (const auto& e : entries) {
    first_net.emplace(std::make_pair(e.sink_a.cell, e.sink_a.pin), e.net_a);
    first_net.emplace(std::make_pair(e.sink_b.cell, e.sink_b.pin), e.net_b);
  }
  std::vector<std::pair<NetId, Sink>> out;
  out.reserve(first_net.size());
  for (const auto& [key, net] : first_net)
    out.push_back({net, Sink{key.first, key.second}});
  return out;
}

RandomizeResult randomize(const Netlist& original,
                          const RandomizeOptions& opts) {
  RandomizeResult result{original.clone(), {}, 0.0, 0.0, 0};
  Netlist& nl = result.erroneous;
  util::Rng rng(opts.seed ^ 0xbe01be01ULL);

  // Candidate sinks: input pins of gates and POs whose driver is a real
  // signal. Exclude DFF clocks (none modeled) — every pin is fair game, as
  // long as acyclicity holds.
  struct Candidate {
    NetId net;
    Sink sink;
  };
  auto collect_candidates = [&]() {
    std::vector<Candidate> cands;
    for (NetId n = 0; n < nl.num_nets(); ++n)
      for (const auto& s : nl.net(n).sinks) cands.push_back({n, s});
    return cands;
  };

  const auto try_one_swap = [&]() -> bool {
    const auto cands = collect_candidates();
    if (cands.size() < 2) return false;
    const std::size_t max_attempts =
        static_cast<std::size_t>(opts.max_attempts_factor);
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      const auto& a = cands[static_cast<std::size_t>(rng.below(cands.size()))];
      const auto& b = cands[static_cast<std::size_t>(rng.below(cands.size()))];
      if (a.net == b.net) continue;
      if (a.sink == b.sink) continue;
      // A re-swapped sink must never land back on its true source — that
      // connection would not be erroneous and would hand the attacker a
      // correct recovery for free.
      if (original.cell(a.sink.cell).inputs.at(
              static_cast<std::size_t>(a.sink.pin)) == b.net)
        continue;
      if (original.cell(b.sink.cell).inputs.at(
              static_cast<std::size_t>(b.sink.pin)) == a.net)
        continue;
      // Swapping must change functionality locally: the sinks must not end
      // up on a net they are already attached to.
      const CellId drv_a = nl.net(a.net).driver;
      const CellId drv_b = nl.net(b.net).driver;
      // Loop checks: b.net's driver will feed a.sink's cell and vice versa.
      if (netlist::creates_combinational_loop(nl, drv_b, a.sink.cell)) continue;
      if (netlist::creates_combinational_loop(nl, drv_a, b.sink.cell)) continue;
      nl.reconnect_sink(a.sink.cell, a.sink.pin, b.net);
      nl.reconnect_sink(b.sink.cell, b.sink.pin, a.net);
      result.ledger.entries.push_back({a.net, a.sink, b.net, b.sink});
      return true;
    }
    return false;
  };

  // OER saturates at 1 - 2^-observers (the probability that a random pattern
  // leaves every observer bit accidentally correct), so an absolute target
  // like 0.995 is unreachable for circuits with few outputs. Track a plateau:
  // once OER is high and stops improving, "approaching 100%" is achieved.
  double best_oer = 0.0;
  int stalled_checks = 0;
  const std::size_t min_swaps =
      opts.min_swaps != 0
          ? opts.min_swaps
          : std::max<std::size_t>(8, original.num_gates() / 30);
  while (result.ledger.entries.size() < opts.max_swaps) {
    bool progressed = false;
    for (std::size_t i = 0; i < opts.batch; ++i)
      if (try_one_swap()) progressed = true;
    if (!progressed) break;  // no legal swaps remain
    result.swaps = result.ledger.entries.size();
    if (result.swaps < min_swaps) continue;
    const auto rates =
        sim::compare(original, nl, opts.check_patterns, opts.seed ^ 0x5132ULL);
    result.oer = rates.oer;
    result.hd = rates.hd;
    if (rates.oer >= opts.target_oer) break;
    if (rates.oer > best_oer + 5e-4) {
      best_oer = rates.oer;
      stalled_checks = 0;
    } else if (opts.target_oer <= 1.0 && rates.oer >= 0.98 &&
               ++stalled_checks >= 3) {
      break;  // high OER and three checks without improvement: saturated
    }
  }
  // Final measurement if the loop exited without one.
  if (result.swaps != 0 && result.hd == 0.0) {
    const auto rates =
        sim::compare(original, nl, opts.check_patterns, opts.seed ^ 0x5132ULL);
    result.oer = rates.oer;
    result.hd = rates.hd;
  }
  result.swaps = result.ledger.entries.size();
  nl.validate();
  if (!netlist::is_acyclic(nl))
    throw std::logic_error("randomize: produced a cyclic netlist");
  return result;
}

void restore_netlist(Netlist& erroneous, const SwapLedger& ledger) {
  for (std::size_t i = ledger.entries.size(); i-- > 0;) {
    const SwapEntry& e = ledger.entries[i];
    erroneous.reconnect_sink(e.sink_a.cell, e.sink_a.pin, e.net_a);
    erroneous.reconnect_sink(e.sink_b.cell, e.sink_b.pin, e.net_b);
  }
  erroneous.validate();
}

}  // namespace sm::core
