#include "netlist/topo.hpp"

#include <stdexcept>

namespace sm::netlist {
namespace {

/// Combinational in-degree: number of input pins whose driver is a
/// combinational cell (ports/DFF drivers do not constrain ordering).
std::vector<int> comb_indegree(const Netlist& nl) {
  std::vector<int> indeg(nl.num_cells(), 0);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    const Cell& c = nl.cell(id);
    for (NetId in : c.inputs) {
      if (in == kInvalidNet) continue;
      const CellId drv = nl.net(in).driver;
      if (nl.is_combinational(drv)) ++indeg[id];
    }
  }
  return indeg;
}

}  // namespace

std::optional<std::vector<CellId>> topological_order(const Netlist& nl) {
  std::vector<int> indeg = comb_indegree(nl);
  std::vector<CellId> order;
  order.reserve(nl.num_cells());
  std::vector<CellId> frontier;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (indeg[id] == 0) frontier.push_back(id);

  while (!frontier.empty()) {
    const CellId id = frontier.back();
    frontier.pop_back();
    order.push_back(id);
    // Only combinational cells propagate dependencies downstream.
    if (!nl.is_combinational(id)) continue;
    const NetId out = nl.cell(id).output;
    if (out == kInvalidNet) continue;
    for (const Sink& s : nl.net(out).sinks) {
      if (--indeg[s.cell] == 0) frontier.push_back(s.cell);
    }
  }
  if (order.size() != nl.num_cells()) return std::nullopt;
  return order;
}

bool is_acyclic(const Netlist& nl) { return topological_order(nl).has_value(); }

std::vector<int> levelize(const Netlist& nl) {
  const auto order = topological_order(nl);
  if (!order) throw std::logic_error("levelize: combinational cycle present");
  std::vector<int> level(nl.num_cells(), 0);
  for (const CellId id : *order) {
    int lv = 0;
    for (NetId in : nl.cell(id).inputs) {
      if (in == kInvalidNet) continue;
      const CellId drv = nl.net(in).driver;
      if (nl.is_combinational(drv)) lv = std::max(lv, level[drv] + 1);
    }
    level[id] = lv;
  }
  return level;
}

bool creates_combinational_loop(const Netlist& nl, CellId driver,
                                CellId sink_cell) {
  // A DFF/port output does not combinationally depend on its inputs, so a
  // new edge from it can never close a combinational cycle.
  if (!nl.is_combinational(driver)) return false;
  if (driver == sink_cell) return true;
  if (!nl.is_combinational(sink_cell)) return false;  // path dies immediately
  // DFS from sink_cell's fanout looking for `driver`.
  std::vector<bool> seen(nl.num_cells(), false);
  std::vector<CellId> stack{sink_cell};
  seen[sink_cell] = true;
  while (!stack.empty()) {
    const CellId cur = stack.back();
    stack.pop_back();
    const NetId out = nl.cell(cur).output;
    if (out == kInvalidNet) continue;
    for (const Sink& s : nl.net(out).sinks) {
      if (s.cell == driver) return true;
      if (!seen[s.cell] && nl.is_combinational(s.cell)) {
        seen[s.cell] = true;
        stack.push_back(s.cell);
      }
    }
  }
  return false;
}

std::vector<CellId> combinational_fanout(const Netlist& nl, NetId net) {
  std::vector<bool> seen(nl.num_cells(), false);
  std::vector<CellId> result;
  std::vector<CellId> stack;
  for (const Sink& s : nl.net(net).sinks) {
    if (!seen[s.cell]) {
      seen[s.cell] = true;
      stack.push_back(s.cell);
    }
  }
  while (!stack.empty()) {
    const CellId cur = stack.back();
    stack.pop_back();
    result.push_back(cur);
    if (!nl.is_combinational(cur)) continue;
    const NetId out = nl.cell(cur).output;
    if (out == kInvalidNet) continue;
    for (const Sink& s : nl.net(out).sinks) {
      if (!seen[s.cell]) {
        seen[s.cell] = true;
        stack.push_back(s.cell);
      }
    }
  }
  return result;
}

}  // namespace sm::netlist
