// Gate-level netlist graph.
//
// Cells are single-output (the standard-cell abstraction); a Net has exactly
// one driver (a cell output or a primary input port) and a list of sinks
// (cell input pins or primary output ports). Primary I/O is modeled with
// port marker pseudo-cells so every net uniformly has a driving cell.
//
// The randomization defense (sm::core::Randomizer) mutates connectivity via
// reconnect_sink(); everything else treats the netlist as immutable.
#pragma once

#include "netlist/cell_library.hpp"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sm::netlist {

using CellId = std::uint32_t;
using NetId = std::uint32_t;
constexpr CellId kInvalidCell = 0xffffffffU;
constexpr NetId kInvalidNet = 0xffffffffU;

/// A sink: input pin `pin` of cell `cell`.
struct Sink {
  CellId cell = kInvalidCell;
  int pin = 0;
  friend bool operator==(const Sink& a, const Sink& b) noexcept {
    return a.cell == b.cell && a.pin == b.pin;
  }
};

struct Net {
  std::string name;
  CellId driver = kInvalidCell;
  std::vector<Sink> sinks;
};

struct Cell {
  std::string name;
  CellTypeId type = kInvalidCellType;
  std::vector<NetId> inputs;  ///< indexed by pin
  NetId output = kInvalidNet;
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary& lib, std::string name = "top");

  const CellLibrary& library() const { return *lib_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------------
  /// Create a primary input: a port cell driving a fresh net. Returns the net.
  NetId add_primary_input(const std::string& name);
  /// Create a primary output port cell consuming `net`. Returns the port cell.
  CellId add_primary_output(const std::string& name, NetId net);
  /// Create a cell of `type` with all input pins unconnected and a fresh
  /// output net named after the cell.
  CellId add_cell(const std::string& name, CellTypeId type);
  /// Connect input pin `pin` of `cell` to `net` (replacing any prior net).
  void connect_input(CellId cell, int pin, NetId net);

  // ---- mutation (used by the randomizer) ----------------------------------
  /// Re-point input pin `pin` of `cell` from its current net to `new_net`.
  void reconnect_sink(CellId cell, int pin, NetId new_net);

  // ---- access --------------------------------------------------------------
  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  const Cell& cell(CellId id) const { return cells_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }
  const CellType& type_of(CellId id) const { return lib_->type(cells_.at(id).type); }

  const std::vector<CellId>& primary_inputs() const { return pis_; }
  const std::vector<CellId>& primary_outputs() const { return pos_; }
  /// Net driven by the i-th primary input port.
  NetId primary_input_net(std::size_t i) const;
  /// Net consumed by the i-th primary output port.
  NetId primary_output_net(std::size_t i) const;

  bool is_port(CellId id) const { return type_of(id).fn == LogicFn::Port; }
  bool is_dff(CellId id) const { return type_of(id).fn == LogicFn::Dff; }
  /// True for gates that participate in combinational evaluation.
  bool is_combinational(CellId id) const {
    return !is_port(id) && !is_dff(id);
  }

  /// Count of logic gates (excludes port markers; includes DFFs).
  std::size_t num_gates() const;

  /// All cells, ports included (for iteration by id).
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Find a cell by name; kInvalidCell when absent (linear scan — test use).
  CellId find_cell(const std::string& name) const;

  /// Sanity-check invariants: every input pin connected, driver/sink lists
  /// mutually consistent, arities match. Throws std::logic_error on failure.
  void validate() const;

  /// Deep copy (cells/nets are value types; the library is shared).
  Netlist clone() const { return *this; }

 private:
  NetId add_net(const std::string& name, CellId driver);
  void detach_sink(NetId net, CellId cell, int pin);

  const CellLibrary* lib_;
  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<CellId> pis_;
  std::vector<CellId> pos_;
};

}  // namespace sm::netlist
