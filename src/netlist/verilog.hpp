// Structural Verilog writer/reader for the library's gate-level subset.
//
// The paper exports protected layouts as DEF/Verilog for the community; we
// provide the Verilog side here (layout export lives in sm::core::defio).
// Supported subset: one module, scalar ports, `wire` declarations, named
// port connections (.A(net)), cell types from the CellLibrary. Input pins
// are named A, B, C, ... and the output pin is Y.
#pragma once

#include "netlist/netlist.hpp"

#include <iosfwd>
#include <string>

namespace sm::netlist {

/// Serialize `nl` as structural Verilog.
void write_verilog(const Netlist& nl, std::ostream& os);
std::string to_verilog(const Netlist& nl);

/// Parse the supported structural subset. Throws std::runtime_error with a
/// line number on malformed input or unknown cell types.
Netlist read_verilog(const CellLibrary& lib, std::istream& is);
Netlist read_verilog_string(const CellLibrary& lib, const std::string& text);

/// Pin naming convention shared by writer and reader.
std::string input_pin_name(int pin);   ///< 0 -> "A", 1 -> "B", ...
int input_pin_index(const std::string& name);  ///< "A" -> 0; -1 if not input
}  // namespace sm::netlist
