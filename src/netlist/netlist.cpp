#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace sm::netlist {

Netlist::Netlist(const CellLibrary& lib, std::string name)
    : lib_(&lib), name_(std::move(name)) {}

NetId Netlist::add_net(const std::string& net_name, CellId driver) {
  Net n;
  n.name = net_name;
  n.driver = driver;
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Netlist::add_primary_input(const std::string& pi_name) {
  Cell c;
  c.name = pi_name;
  c.type = lib_->input_port();
  cells_.push_back(std::move(c));
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  const NetId net = add_net(pi_name, id);
  cells_[id].output = net;
  pis_.push_back(id);
  return net;
}

CellId Netlist::add_primary_output(const std::string& po_name, NetId net) {
  Cell c;
  c.name = po_name;
  c.type = lib_->output_port();
  c.inputs.assign(1, kInvalidNet);
  cells_.push_back(std::move(c));
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  pos_.push_back(id);
  connect_input(id, 0, net);
  return id;
}

CellId Netlist::add_cell(const std::string& cell_name, CellTypeId type) {
  const CellType& t = lib_->type(type);
  Cell c;
  c.name = cell_name;
  c.type = type;
  c.inputs.assign(static_cast<std::size_t>(t.num_inputs), kInvalidNet);
  cells_.push_back(std::move(c));
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  cells_[id].output = add_net(cell_name + "_o", id);
  return id;
}

void Netlist::connect_input(CellId cell_id, int pin, NetId net) {
  Cell& c = cells_.at(cell_id);
  const auto pin_idx = static_cast<std::size_t>(pin);
  if (pin_idx >= c.inputs.size())
    throw std::out_of_range("connect_input: pin out of range");
  if (c.inputs[pin_idx] != kInvalidNet) detach_sink(c.inputs[pin_idx], cell_id, pin);
  c.inputs[pin_idx] = net;
  nets_.at(net).sinks.push_back(Sink{cell_id, pin});
}

void Netlist::reconnect_sink(CellId cell_id, int pin, NetId new_net) {
  connect_input(cell_id, pin, new_net);
}

void Netlist::detach_sink(NetId net, CellId cell_id, int pin) {
  auto& sinks = nets_.at(net).sinks;
  const auto it = std::find(sinks.begin(), sinks.end(), Sink{cell_id, pin});
  if (it != sinks.end()) sinks.erase(it);
}

NetId Netlist::primary_input_net(std::size_t i) const {
  return cells_.at(pis_.at(i)).output;
}

NetId Netlist::primary_output_net(std::size_t i) const {
  return cells_.at(pos_.at(i)).inputs.at(0);
}

std::size_t Netlist::num_gates() const {
  std::size_t n = 0;
  for (CellId id = 0; id < cells_.size(); ++id)
    if (!is_port(id)) ++n;
  return n;
}

CellId Netlist::find_cell(const std::string& cell_name) const {
  for (CellId id = 0; id < cells_.size(); ++id)
    if (cells_[id].name == cell_name) return id;
  return kInvalidCell;
}

void Netlist::validate() const {
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    const CellType& t = lib_->type(c.type);
    if (c.inputs.size() != static_cast<std::size_t>(t.num_inputs))
      throw std::logic_error("validate: cell '" + c.name + "' arity mismatch");
    for (std::size_t p = 0; p < c.inputs.size(); ++p) {
      const NetId n = c.inputs[p];
      if (n == kInvalidNet)
        throw std::logic_error("validate: cell '" + c.name +
                               "' has unconnected pin " + std::to_string(p));
      const auto& sinks = nets_.at(n).sinks;
      if (std::find(sinks.begin(), sinks.end(),
                    Sink{id, static_cast<int>(p)}) == sinks.end())
        throw std::logic_error("validate: sink list of net '" + nets_.at(n).name +
                               "' missing cell '" + c.name + "'");
    }
    if (c.output != kInvalidNet && nets_.at(c.output).driver != id)
      throw std::logic_error("validate: net '" + nets_.at(c.output).name +
                             "' driver mismatch for cell '" + c.name + "'");
  }
  for (NetId n = 0; n < nets_.size(); ++n) {
    const Net& net = nets_[n];
    if (net.driver == kInvalidCell)
      throw std::logic_error("validate: net '" + net.name + "' undriven");
    for (const Sink& s : net.sinks) {
      if (cells_.at(s.cell).inputs.at(static_cast<std::size_t>(s.pin)) != n)
        throw std::logic_error("validate: stale sink on net '" + net.name + "'");
    }
  }
}

}  // namespace sm::netlist
