// Technology model: a Nangate-45-like 10-metal-layer back end.
//
// The paper uses the NanGate FreePDK45 Open Cell Library with ten metal
// layers; correction cells put their pins on M6 (ISCAS-85) or M8 (superblue)
// and layouts are split after M3..M6. We model each layer's routing pitch,
// preferred direction, and per-micron parasitics — that is all the placer,
// router, STA, and the attacks need.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sm::netlist {

/// Preferred routing direction of a metal layer (alternating by convention).
enum class Direction : std::uint8_t { Horizontal, Vertical };

struct MetalLayer {
  std::string name;       ///< "M1".."M10"
  int index = 1;          ///< 1-based layer index
  Direction preferred = Direction::Horizontal;
  double pitch_um = 0.19;      ///< track pitch
  double cap_ff_per_um = 0.2;  ///< wire capacitance
  double res_ohm_per_um = 2.0; ///< wire resistance
};

/// The full metal stack. Lower layers are fine-pitch and slow; upper layers
/// are coarse-pitch and fast — this asymmetry is why splitting after higher
/// layers is commercially attractive and why lifting costs wirelength.
class MetalStack {
 public:
  static constexpr int kNumLayers = 10;

  MetalStack();

  const MetalLayer& layer(int index) const;  ///< 1-based
  int num_layers() const { return kNumLayers; }

  /// Capacitance of a via between layer `l` and `l+1` (fF).
  double via_cap_ff(int lower_layer) const;
  /// Resistance of a via between layer `l` and `l+1` (ohm).
  double via_res_ohm(int lower_layer) const;

 private:
  std::array<MetalLayer, kNumLayers> layers_;
};

/// Operating point used for the conservative PPA analysis (paper: slow
/// corner, 0.95 V).
struct OperatingPoint {
  double vdd = 0.95;          ///< volts
  double clock_period_ns = 2.0;
  double default_activity = 0.1;  ///< toggle probability per cycle fallback
};

}  // namespace sm::netlist
