// Topological utilities over the combinational dependency graph.
//
// DFF cells break dependency cycles: a DFF output is available at level 0
// (like a primary input) and a DFF input pin terminates a combinational path
// (like a primary output). The paper's randomizer must never create a
// *combinational* loop — `creates_combinational_loop` is the check it calls
// before committing a swap (loops would let an attacker spot the
// modifications, per Wang et al.).
#pragma once

#include "netlist/netlist.hpp"

#include <optional>
#include <vector>

namespace sm::netlist {

/// Cells in combinational evaluation order (ports and DFFs included as
/// sources/sinks). Returns std::nullopt if a combinational cycle exists.
std::optional<std::vector<CellId>> topological_order(const Netlist& nl);

/// True iff the netlist has no combinational cycle.
bool is_acyclic(const Netlist& nl);

/// Combinational depth (level) per cell; sources are level 0.
/// Requires an acyclic netlist (throws std::logic_error otherwise).
std::vector<int> levelize(const Netlist& nl);

/// Would connecting the output of `driver` to an input of `sink_cell`
/// create a combinational cycle? I.e., is `driver` combinationally reachable
/// *from* `sink_cell`'s output? (DFS over fanout, stopping at DFFs/ports.)
bool creates_combinational_loop(const Netlist& nl, CellId driver,
                                CellId sink_cell);

/// Transitive fanout cell set of a net through combinational cells.
std::vector<CellId> combinational_fanout(const Netlist& nl, NetId net);

}  // namespace sm::netlist
